package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hydradb/internal/lease"
	"hydradb/internal/stats"
	"hydradb/internal/testutil"
	"hydradb/internal/timing"
)

func testStore(t testing.TB, clk timing.Clock) *Store {
	t.Helper()
	return NewStore(Config{
		ArenaBytes: 1 << 20,
		MaxItems:   4096,
		Clock:      clk,
	})
}

func TestItemCodecRoundTrip(t *testing.T) {
	f := func(key, val []byte) bool {
		if len(key) == 0 || len(key) > 100 || len(val) > 1000 {
			return true
		}
		buf := make([]byte, ItemSize(len(key), len(val)))
		EncodeItem(buf, key, val)
		k, v, ok := DecodeItem(buf)
		return ok && bytes.Equal(k, key) && bytes.Equal(v, val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeItemMalformed(t *testing.T) {
	if _, _, ok := DecodeItem(nil); ok {
		t.Fatal("nil buffer decoded")
	}
	if _, _, ok := DecodeItem(make([]byte, 4)); ok {
		t.Fatal("short buffer decoded")
	}
	// Zeroed area (freshly reclaimed memory) must not decode: keyLen == 0.
	if _, _, ok := DecodeItem(make([]byte, 64)); ok {
		t.Fatal("zeroed buffer decoded")
	}
	// Lengths exceeding the buffer must not decode.
	buf := make([]byte, 16)
	EncodeItem(buf, []byte("k"), []byte("v"))
	buf[2] = 0xFF // inflate valLen
	if _, _, ok := DecodeItem(buf); ok {
		t.Fatal("overflowing lengths decoded")
	}
}

func TestPutGetDelete(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := testStore(t, clk)

	if _, ok := s.Get([]byte("missing")); ok {
		t.Fatal("get of missing key succeeded")
	}
	res, existed, err := s.Put([]byte("alpha"), []byte("one"))
	if err != nil || existed {
		t.Fatalf("put: existed=%v err=%v", existed, err)
	}
	if res.Ptr.Zero() {
		t.Fatal("put returned zero remote pointer")
	}
	got, ok := s.Get([]byte("alpha"))
	if !ok || string(got.Value) != "one" {
		t.Fatalf("get: %q ok=%v", got.Value, ok)
	}
	if !s.Delete([]byte("alpha")) {
		t.Fatal("delete failed")
	}
	if s.Delete([]byte("alpha")) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := s.Get([]byte("alpha")); ok {
		t.Fatal("get after delete succeeded")
	}
}

func TestOutOfPlaceUpdate(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := testStore(t, clk)

	res1, _, err := s.Put([]byte("k"), []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	res2, existed, err := s.Put([]byte("k"), []byte("v2"))
	if err != nil || !existed {
		t.Fatalf("update: existed=%v err=%v", existed, err)
	}
	if res1.Ptr.DataOff == res2.Ptr.DataOff && res1.Ptr.MetaIdx == res2.Ptr.MetaIdx {
		t.Fatal("update was in-place")
	}
	// Old guardian flipped; new guardian live.
	if s.Guardian(res1.Ptr.MetaIdx) != GuardianDead {
		t.Fatal("old guardian not flipped")
	}
	if s.Guardian(res2.Ptr.MetaIdx) != GuardianLive {
		t.Fatal("new guardian not live")
	}
	// A stale RDMA Read through the old pointer still sees intact bytes
	// (lease not expired) but a dead guardian.
	buf := make([]byte, res1.Ptr.DataLen)
	n, guard, _, err := s.ReadAt(res1.Ptr, buf)
	if err != nil || n != int(res1.Ptr.DataLen) {
		t.Fatalf("stale read: n=%d err=%v", n, err)
	}
	if guard != GuardianDead {
		t.Fatal("stale read did not observe dead guardian")
	}
	k, v, ok := DecodeItem(buf)
	if !ok || string(k) != "k" || string(v) != "v1" {
		t.Fatalf("stale read corrupted: %q %q ok=%v", k, v, ok)
	}
	// Fresh read through the new pointer sees v2 + live guardian.
	buf2 := make([]byte, res2.Ptr.DataLen)
	_, guard2, _ := testutil.Must3(s.ReadAt(res2.Ptr, buf2))
	if guard2 != GuardianLive {
		t.Fatal("fresh read saw dead guardian")
	}
	_, v2, _ := DecodeItem(buf2)
	if string(v2) != "v2" {
		t.Fatalf("fresh read value %q", v2)
	}
}

func TestReclaimAfterLeaseExpiry(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := testStore(t, clk)
	res1, _ := testutil.Must2(s.Put([]byte("k"), []byte("v1")))
	testutil.Must2(s.Put([]byte("k"), []byte("v2")))
	if s.PendingReclaims() != 1 {
		t.Fatalf("pending reclaims = %d", s.PendingReclaims())
	}
	// Before expiry nothing is reclaimed.
	if n := s.ReclaimDue(); n != 0 {
		t.Fatalf("premature reclaim of %d items", n)
	}
	// Advance past lease + grace.
	clk.Advance(int64(lease.DefaultPolicy().BaseTermNs*70 + lease.DefaultPolicy().GraceNs))
	if n := s.ReclaimDue(); n != 1 {
		t.Fatalf("reclaimed %d items, want 1", n)
	}
	if s.PendingReclaims() != 0 {
		t.Fatal("reclaim queue not drained")
	}
	// The old area is zeroed: a stale read now fails validation at decode.
	buf := make([]byte, res1.Ptr.DataLen)
	testutil.Must3(s.ReadAt(res1.Ptr, buf))
	if _, _, ok := DecodeItem(buf); ok {
		t.Fatal("reclaimed area still decodes")
	}
}

func TestLeaseExtensionAndPopularity(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	s := testStore(t, clk)
	testutil.Must2(s.Put([]byte("hot"), []byte("v")))

	res, _ := s.Get([]byte("hot"))
	first := res.LeaseExp
	if first <= clk.Now() {
		t.Fatal("lease not in the future")
	}
	// Hammer the key: term must grow towards 64s.
	for i := 0; i < 200; i++ {
		res, _ = s.Get([]byte("hot"))
	}
	term := res.LeaseExp - clk.Now()
	if term != 64e9 {
		t.Fatalf("hot key lease term = %d, want 64s", term)
	}
	// A cold key gets the base term.
	testutil.Must2(s.Put([]byte("cold"), []byte("v")))
	resC, _ := s.Get([]byte("cold"))
	if got := resC.LeaseExp - clk.Now(); got != 2e9 {
		// one access => level(1)=0 is base 1s... but Put also touches, so 2 accesses.
		if got != 1e9 && got != 2e9 {
			t.Fatalf("cold key lease term = %d", got)
		}
	}
}

func TestPopularityDecay(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := testStore(t, clk)
	testutil.Must2(s.Put([]byte("k"), []byte("v")))
	for i := 0; i < 300; i++ {
		s.Get([]byte("k"))
	}
	res, _ := s.Get([]byte("k"))
	if res.LeaseExp-clk.Now() != 64e9 {
		t.Fatal("key did not become hot")
	}
	// After many decay epochs the popularity collapses back to base-ish.
	clk.Advance(40 * 10e9) // 40 epochs of 10s
	res, _ = s.Get([]byte("k"))
	if term := res.LeaseExp - clk.Now(); term > 2e9 {
		t.Fatalf("popularity did not decay: term=%d", term)
	}
}

func TestLeaseEpochWraparoundDecays(t *testing.T) {
	// Regression: popularity must keep decaying when the uint32 decay-epoch
	// counter wraps. With 1 ms epochs the counter wraps after ~49.7 days of
	// server uptime; the skipped decay froze every key's popularity — and
	// thus its lease term — at the pre-wrap value for another 49.7 days.
	const epochNs = 1e6
	start := (int64(^uint32(0)) - 1) * epochNs // two epochs short of the wrap
	clk := timing.NewManualClock(start)
	s := NewStore(Config{
		ArenaBytes: 1 << 20,
		MaxItems:   64,
		Clock:      clk,
		Policy: lease.Policy{
			BaseTermNs:   1e9,
			MaxShift:     6,
			GraceNs:      100e6,
			DecayEpochNs: epochNs,
		},
	})
	testutil.Must2(s.Put([]byte("k"), []byte("v")))
	for i := 0; i < 300; i++ {
		s.Get([]byte("k"))
	}
	res, _ := s.Get([]byte("k"))
	if res.LeaseExp-clk.Now() != 64e9 {
		t.Fatal("key did not become hot before the wrap")
	}
	// Idle across the wrap: far more than 32 decay epochs and past the hot
	// lease's expiry, so the next grant reflects the decayed popularity.
	clk.Advance(100e9)
	res, _ = s.Get([]byte("k"))
	if term := res.LeaseExp - clk.Now(); term != 1e9 {
		t.Fatalf("popularity survived the epoch wraparound: term=%d, want base 1s", term)
	}
}

func TestRenewLease(t *testing.T) {
	clk := timing.NewManualClock(0)
	var ctr stats.OpCounters
	s := NewStore(Config{ArenaBytes: 1 << 20, MaxItems: 1024, Clock: clk, Counters: &ctr})
	testutil.Must2(s.Put([]byte("k"), []byte("v")))
	exp, ok := s.RenewLease([]byte("k"))
	if !ok || exp <= clk.Now() {
		t.Fatalf("renew: exp=%d ok=%v", exp, ok)
	}
	if _, ok := s.RenewLease([]byte("nope")); ok {
		t.Fatal("renewal of absent key succeeded")
	}
	s.Delete([]byte("k"))
	if _, ok := s.RenewLease([]byte("k")); ok {
		t.Fatal("renewal of deleted key succeeded")
	}
	snap := ctr.Snapshot()
	if snap.LeaseRenewals != 1 || snap.LeaseRejects != 2 {
		t.Fatalf("counters: %+v", snap)
	}
}

func TestStoreFullAndReclaimRetry(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := NewStore(Config{ArenaBytes: 4096, MaxItems: 8, Clock: clk})
	var keys [][]byte
	for i := 0; ; i++ {
		key := []byte(fmt.Sprintf("key%02d", i))
		_, _, err := s.Put(key, bytes.Repeat([]byte("x"), 200))
		if err == ErrStoreFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
		if i > 100 {
			t.Fatal("store never filled")
		}
	}
	if len(keys) == 0 {
		t.Fatal("no keys inserted before exhaustion")
	}
	// Delete one and expire its lease: the next Put must succeed through the
	// internal reclaim-retry path.
	s.Delete(keys[0])
	clk.Advance(100e9)
	if _, _, err := s.Put([]byte("fresh"), bytes.Repeat([]byte("y"), 200)); err != nil {
		t.Fatalf("put after reclaimable space available: %v", err)
	}
}

func TestStoreNeverBreaksLeaseForAllocation(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := NewStore(Config{ArenaBytes: 2048, MaxItems: 8, Clock: clk})
	testutil.Must2(s.Put([]byte("a"), bytes.Repeat([]byte("x"), 400)))
	testutil.Must2(s.Put([]byte("a"), bytes.Repeat([]byte("y"), 400))) // old area now pending, lease alive
	// Fill the rest.
	for i := 0; ; i++ {
		_, _, err := s.Put([]byte(fmt.Sprintf("f%d", i)), bytes.Repeat([]byte("z"), 400))
		if err != nil {
			break
		}
		if i > 20 {
			t.Fatal("never filled")
		}
	}
	// The pending entry's lease has NOT expired; allocation must fail rather
	// than recycle leased memory.
	if _, _, err := s.Put([]byte("big"), bytes.Repeat([]byte("w"), 400)); err != ErrStoreFull {
		t.Fatalf("expected ErrStoreFull, got %v", err)
	}
	if s.PendingReclaims() == 0 {
		t.Fatal("expected a pending reclaim to still be queued")
	}
}

func TestRangeVisitsLiveItems(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := testStore(t, clk)
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("key%02d", i), fmt.Sprintf("val%02d", i)
		testutil.Must2(s.Put([]byte(k), []byte(v)))
		want[k] = v
	}
	s.Delete([]byte("key00"))
	delete(want, "key00")
	got := map[string]string{}
	s.Range(func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("range saw %d items, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("range mismatch for %s: %q != %q", k, got[k], v)
		}
	}
}

func TestReadAtOutOfRange(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := testStore(t, clk)
	bad := RemotePtr{DataOff: 1 << 30, DataLen: 64, MetaIdx: 0}
	if _, _, _, err := s.ReadAt(bad, make([]byte, 64)); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	bad2 := RemotePtr{DataOff: 0, DataLen: 64, MetaIdx: 1 << 30}
	if _, _, _, err := s.ReadAt(bad2, make([]byte, 64)); err == nil {
		t.Fatal("out-of-range meta read succeeded")
	}
}

func TestKeyValidation(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := testStore(t, clk)
	if _, _, err := s.Put(nil, []byte("v")); err != ErrKeyTooLarge {
		t.Fatalf("empty key: %v", err)
	}
	if _, _, err := s.Put(bytes.Repeat([]byte("k"), MaxKeyLen+1), []byte("v")); err != ErrKeyTooLarge {
		t.Fatal("oversized key accepted")
	}
}

// TestRandomizedStoreAgainstModel drives a mixed workload with time advance
// and compares against a map model, with reclamation active throughout.
func TestRandomizedStoreAgainstModel(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := NewStore(Config{ArenaBytes: 1 << 20, MaxItems: 2048, Clock: clk})
	model := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 30000; step++ {
		key := fmt.Sprintf("user%03d", rng.Intn(300))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			val := fmt.Sprintf("v%d", step)
			_, existed, err := s.Put([]byte(key), []byte(val))
			if err != nil {
				t.Fatalf("step %d put: %v", step, err)
			}
			if _, inModel := model[key]; inModel != existed {
				t.Fatalf("step %d put existed=%v, model=%v", step, existed, !existed)
			}
			model[key] = val
		case 4, 5, 6, 7:
			res, ok := s.Get([]byte(key))
			mv, mok := model[key]
			if ok != mok || (ok && string(res.Value) != mv) {
				t.Fatalf("step %d get %s: (%q,%v) model (%q,%v)", step, key, res.Value, ok, mv, mok)
			}
		case 8:
			ok := s.Delete([]byte(key))
			_, mok := model[key]
			if ok != mok {
				t.Fatalf("step %d delete %s: %v model %v", step, key, ok, mok)
			}
			delete(model, key)
		default:
			clk.Advance(rng.Int63n(3e9))
			s.ReclaimDue()
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("final len %d != model %d", s.Len(), len(model))
	}
	// Drain all reclaims and ensure nothing live was harmed.
	clk.Advance(200e9)
	s.ReclaimDue()
	for k, v := range model {
		res, ok := s.Get([]byte(k))
		if !ok || string(res.Value) != v {
			t.Fatalf("post-reclaim get %s: (%q,%v) want %q", k, res.Value, ok, v)
		}
	}
	if s.PendingReclaims() != 0 {
		t.Fatalf("reclaims left: %d", s.PendingReclaims())
	}
}

func TestNextReclaimDue(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := testStore(t, clk)
	if _, ok := s.NextReclaimDue(); ok {
		t.Fatal("empty queue reported a due time")
	}
	testutil.Must2(s.Put([]byte("k"), []byte("v1")))
	testutil.Must2(s.Put([]byte("k"), []byte("v2")))
	due, ok := s.NextReclaimDue()
	if !ok || due <= clk.Now() {
		t.Fatalf("due=%d ok=%v", due, ok)
	}
}

func BenchmarkStorePut(b *testing.B) {
	clk := timing.NewManualClock(0)
	s := NewStore(Config{ArenaBytes: 256 << 20, MaxItems: 1 << 21, Clock: clk})
	key := make([]byte, 16)
	val := bytes.Repeat([]byte("v"), 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(key, fmt.Sprintf("user%012d", i%(1<<20)))
		if _, _, err := s.Put(key, val); err != nil {
			b.Fatal(err)
		}
		if i%4096 == 0 {
			clk.Advance(1e9)
			s.ReclaimDue()
		}
	}
}

func BenchmarkStoreGet(b *testing.B) {
	clk := timing.NewManualClock(0)
	s := NewStore(Config{ArenaBytes: 64 << 20, MaxItems: 1 << 18, Clock: clk})
	const n = 1 << 16
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%012d", i))
		testutil.Must2(s.Put(keys[i], bytes.Repeat([]byte("v"), 32)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(keys[i&(n-1)]); !ok {
			b.Fatal("miss")
		}
	}
}
