package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureCase is one self-contained package dropped into a throwaway module
// named hydradb (so the path-scoped checks see the same module-relative
// layout as the real repo). want is the number of findings of the named
// check the package must produce; cases with want > 0 are then re-linted
// with a //hydralint:ignore directive inserted above each finding and must
// go quiet.
type fixtureCase struct {
	name  string
	path  string // file path within the module
	src   string
	check string
	want  int
}

var fixtures = []fixtureCase{
	{
		name:  "clock-now",
		path:  "internal/c1/c1.go",
		check: "clock-discipline",
		want:  1,
		src: `package c1

import "time"

func Deadline() int64 { return time.Now().UnixNano() }
`,
	},
	{
		name:  "clock-sleep",
		path:  "internal/c2/c2.go",
		check: "clock-discipline",
		want:  1,
		src: `package c2

import "time"

func Nap() { time.Sleep(time.Millisecond) }
`,
	},
	{
		name:  "clock-outside-internal-ok",
		path:  "cmd/tool/main.go",
		check: "clock-discipline",
		want:  0,
		src: `package main

import "time"

func main() { println(time.Now().UnixNano()) }
`,
	},
	{
		name:  "shard-go-stmt",
		path:  "internal/shard/go_stmt.go",
		check: "shard-exclusivity",
		want:  1,
		src: `package shard

func SpawnWorker(f func()) { go f() }
`,
	},
	{
		name:  "shard-pipelined-allowlisted",
		path:  "internal/shard/pipelined.go",
		check: "shard-exclusivity",
		want:  0,
		src: `package shard

import "sync"

type pipelinedQueue struct {
	mu sync.Mutex
	ch chan int
}

func (p *pipelinedQueue) Push(v int) {
	p.mu.Lock()
	p.ch <- v
	p.mu.Unlock()
}
`,
	},
	{
		name:  "kv-mutex",
		path:  "internal/kv/store.go",
		check: "shard-exclusivity",
		want:  1,
		src: `package kv

import "sync"

type Store struct {
	mu sync.Mutex
}
`,
	},
	{
		name:  "hashtable-send",
		path:  "internal/hashtable/send.go",
		check: "shard-exclusivity",
		want:  1,
		src: `package hashtable

func Notify(ch chan int) { ch <- 1 }
`,
	},
	{
		name:  "atomic-copy",
		path:  "internal/c3/c3.go",
		check: "atomic-word",
		want:  1,
		src: `package c3

import "sync/atomic"

type Counter struct{ n atomic.Int64 }

var sink Counter

func Copy(c *Counter) { sink = *c }
`,
	},
	{
		name:  "atomic-range",
		path:  "internal/c4/c4.go",
		check: "atomic-word",
		want:  1,
		src: `package c4

import "sync/atomic"

type Slot struct{ v atomic.Uint64 }

func Sum(slots []Slot) (n uint64) {
	for _, s := range slots {
		n += s.v.Load()
	}
	return
}
`,
	},
	{
		name:  "atomic-by-value-param",
		path:  "internal/c5/c5.go",
		check: "atomic-word",
		want:  1,
		src: `package c5

import "sync/atomic"

type Gauge struct{ v atomic.Int64 }

func Observe(g Gauge) int64 { return g.v.Load() }
`,
	},
	{
		name:  "atomic-unsafe-alias",
		path:  "internal/c6/c6.go",
		check: "atomic-word",
		want:  1,
		src: `package c6

import (
	"sync/atomic"
	"unsafe"
)

type W struct{ v atomic.Uint64 }

var P unsafe.Pointer

func Alias(w *W) { P = unsafe.Pointer(&w.v) }
`,
	},
	{
		name:  "hotpath-make",
		path:  "internal/c7/c7.go",
		check: "hotpath-alloc",
		want:  1,
		src: `package c7

// Grow allocates.
//
// hydralint:hotpath
func Grow(n int) []byte { return make([]byte, n) }
`,
	},
	{
		name:  "hotpath-fmt",
		path:  "internal/c8/c8.go",
		check: "hotpath-alloc",
		want:  1,
		src: `package c8

import "fmt"

// Describe formats.
//
// hydralint:hotpath
func Describe(x int) string { return fmt.Sprintf("%d", x) }
`,
	},
	{
		name:  "hotpath-composite-addr",
		path:  "internal/c9/c9.go",
		check: "hotpath-alloc",
		want:  1,
		src: `package c9

type hdr struct{ a, b int }

// NewHdr escapes.
//
// hydralint:hotpath
func NewHdr() *hdr { return &hdr{a: 1} }
`,
	},
	{
		name:  "hotpath-self-append-ok",
		path:  "internal/c10/c10.go",
		check: "hotpath-alloc",
		want:  0,
		src: `package c10

// Push uses the caller's buffer.
//
// hydralint:hotpath
func Push(dst []byte, b byte) []byte {
	dst = append(dst, b)
	return dst
}
`,
	},
	{
		name:  "hotpath-growing-append",
		path:  "internal/c11/c11.go",
		check: "hotpath-alloc",
		want:  1,
		src: `package c11

// Join grows.
//
// hydralint:hotpath
func Join(a, b []byte) []byte {
	out := append(a, b...)
	return out
}
`,
	},
	{
		name:  "error-blank-discard",
		path:  "internal/c12/c12.go",
		check: "error-discipline",
		want:  1,
		src: `package c12

import "errors"

func fail() error { return errors.New("x") }

func Ignore() { _ = fail() }
`,
	},
	{
		name:  "error-bare-call",
		path:  "internal/c13/c13.go",
		check: "error-discipline",
		want:  1,
		src: `package c13

import "errors"

func fail2() (int, error) { return 0, errors.New("x") }

func Bare() { fail2() }
`,
	},
	{
		name:  "error-builder-ok",
		path:  "internal/c14/c14.go",
		check: "error-discipline",
		want:  0,
		src: `package c14

import "strings"

func Render() string {
	var b strings.Builder
	b.WriteString("hi")
	return b.String()
}
`,
	},
	{
		name:  "unmarked-function-may-alloc",
		path:  "internal/c15/c15.go",
		check: "hotpath-alloc",
		want:  0,
		src: `package c15

import "fmt"

func Cold(n int) string { return fmt.Sprint(make([]byte, n)) }
`,
	},
	{
		// Stub of the real invariant.Owner so the lease-discipline fixtures
		// can exercise the Acquire/Release pairing; clean by construction.
		name:  "lease-owner-stub",
		path:  "internal/invariant/invariant.go",
		check: "lease-discipline",
		want:  0,
		src: `package invariant

type Owner struct{ who string }

func (o *Owner) Acquire(who string) { o.who = who }

func (o *Owner) Release() { o.who = "" }
`,
	},
	{
		name:  "lease-unreleased-branch",
		path:  "internal/l1/l1.go",
		check: "lease-discipline",
		want:  1,
		src: `package l1

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Bad(x int) int {
	s.mu.Lock()
	if x < 0 {
		return -1
	}
	s.mu.Unlock()
	return s.n
}
`,
	},
	{
		name:  "lease-defer-and-loop-ok",
		path:  "internal/l2/l2.go",
		check: "lease-discipline",
		want:  0,
		src: `package l2

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func Sum(ss []*S) int {
	t := 0
	for _, s := range ss {
		s.mu.Lock()
		t += s.n
		s.mu.Unlock()
	}
	return t
}
`,
	},
	{
		name:  "lease-rwmutex-mismatched-pair",
		path:  "internal/l3/l3.go",
		check: "lease-discipline",
		want:  1,
		src: `package l3

import "sync"

type S struct {
	mu sync.RWMutex
	n  int
}

func (s *S) Bad() int {
	s.mu.RLock()
	n := s.n
	s.mu.Unlock()
	return n
}
`,
	},
	{
		name:  "lease-holds-marker-ok",
		path:  "internal/l4/l4.go",
		check: "lease-discipline",
		want:  0,
		src: `package l4

import "sync"

type S struct{ mu sync.Mutex }

// LockForUpdate hands the lock to the caller.
//
// hydralint:holds
func (s *S) LockForUpdate() { s.mu.Lock() }
`,
	},
	{
		name:  "lease-owner-unbalanced",
		path:  "internal/l5/l5.go",
		check: "lease-discipline",
		want:  1,
		src: `package l5

import "hydradb/internal/invariant"

type Shard struct{ owner invariant.Owner }

func (s *Shard) Enter(ok bool) {
	s.owner.Acquire("enter")
	if !ok {
		return
	}
	s.owner.Release()
}
`,
	},
	{
		// Stub of rdma.MemoryRegion so the published-escape fixtures have a
		// source; rdma itself is an owner package and exempt.
		name:  "escape-rdma-stub",
		path:  "internal/rdma/rdma.go",
		check: "published-escape",
		want:  0,
		src: `package rdma

type MemoryRegion struct{ data []byte }

func NewRegion(b []byte) *MemoryRegion { return &MemoryRegion{data: b} }

func (m *MemoryRegion) Data() []byte { return m.data }
`,
	},
	{
		name:  "escape-field-store",
		path:  "internal/e1/e1.go",
		check: "published-escape",
		want:  1,
		src: `package e1

import "hydradb/internal/rdma"

type Cache struct{ view []byte }

func (c *Cache) Stash(mr *rdma.MemoryRegion) {
	c.view = mr.Data()
}
`,
	},
	{
		name:  "escape-return-view",
		path:  "internal/e2/e2.go",
		check: "published-escape",
		want:  1,
		src: `package e2

import "hydradb/internal/rdma"

func Header(mr *rdma.MemoryRegion) []byte {
	hdr := mr.Data()[:8]
	return hdr
}
`,
	},
	{
		name:  "escape-copy-launders-ok",
		path:  "internal/e3/e3.go",
		check: "published-escape",
		want:  0,
		src: `package e3

import "hydradb/internal/rdma"

func Snapshot(mr *rdma.MemoryRegion) ([]byte, byte) {
	view := mr.Data()
	cp := append([]byte(nil), view...)
	return cp, view[0]
}
`,
	},
	{
		name:  "escape-aliases-marker-ok",
		path:  "internal/e4/e4.go",
		check: "published-escape",
		want:  0,
		src: `package e4

import "hydradb/internal/rdma"

// View returns a window into the region; callers hold the lease.
//
// hydralint:aliases
func View(mr *rdma.MemoryRegion) []byte { return mr.Data() }
`,
	},
	{
		name:  "escape-channel-send",
		path:  "internal/e5/e5.go",
		check: "published-escape",
		want:  1,
		src: `package e5

import "hydradb/internal/rdma"

func Publish(mr *rdma.MemoryRegion, ch chan []byte) {
	v := mr.Data()
	ch <- v
}
`,
	},
}

// writeModule materializes the fixture module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module hydradb\n\ngo 1.22\n"
	for path, src := range files {
		full := filepath.Join(dir, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestChecksFireOnFixtures(t *testing.T) {
	files := map[string]string{}
	for _, c := range fixtures {
		files[c.path] = c.src
	}
	dir := writeModule(t, files)

	diags, err := RunLint(dir, []string{"./..."}, nil, true)
	if err != nil {
		t.Fatalf("RunLint: %v", err)
	}

	byFile := map[string][]Diagnostic{}
	for _, d := range diags {
		byFile[filepath.ToSlash(d.File)] = append(byFile[filepath.ToSlash(d.File)], d)
		if d.Line <= 0 || d.File == "" {
			t.Errorf("diagnostic without position: %+v", d)
		}
	}

	for _, c := range fixtures {
		got := 0
		for _, d := range byFile[c.path] {
			if d.Check == c.check {
				got++
			}
		}
		if got != c.want {
			t.Errorf("%s: %d %s finding(s) in %s, want %d\nall: %v",
				c.name, got, c.check, c.path, c.want, byFile[c.path])
		}
		// No collateral findings from other checks in any fixture.
		for _, d := range byFile[c.path] {
			if d.Check != c.check {
				t.Errorf("%s: unexpected %s finding: %+v", c.name, d.Check, d)
			}
		}
	}
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	files := map[string]string{}
	for _, c := range fixtures {
		files[c.path] = c.src
	}
	dir := writeModule(t, files)

	diags, err := RunLint(dir, []string{"./..."}, nil, true)
	if err != nil {
		t.Fatalf("RunLint: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture set produced no findings to suppress")
	}

	// Rebuild the module with an ignore directive above every reported
	// line; the tree must then lint clean. Insert bottom-up per file so
	// earlier insertions don't shift later line numbers.
	perFile := map[string][]Diagnostic{}
	for _, d := range diags {
		perFile[filepath.ToSlash(d.File)] = append(perFile[filepath.ToSlash(d.File)], d)
	}
	suppressed := map[string]string{}
	for _, c := range fixtures {
		suppressed[c.path] = c.src
	}
	for path, ds := range perFile {
		lines := strings.Split(suppressed[path], "\n")
		for i := len(ds) - 1; i >= 0; i-- {
			d := ds[i]
			directive := fmt.Sprintf("//hydralint:ignore %s suppressed by self-test", d.Check)
			lines = append(lines[:d.Line-1], append([]string{directive}, lines[d.Line-1:]...)...)
		}
		suppressed[path] = strings.Join(lines, "\n")
	}
	dir2 := writeModule(t, suppressed)

	diags2, err := RunLint(dir2, []string{"./..."}, nil, true)
	if err != nil {
		t.Fatalf("RunLint (suppressed): %v", err)
	}
	if len(diags2) != 0 {
		t.Errorf("ignore directives did not silence findings: %v", diags2)
	}
}

func TestChecksFlagRestrictsRun(t *testing.T) {
	files := map[string]string{}
	for _, c := range fixtures {
		files[c.path] = c.src
	}
	dir := writeModule(t, files)

	diags, err := RunLint(dir, []string{"./..."}, []string{"clock-discipline"}, true)
	if err != nil {
		t.Fatalf("RunLint: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("clock-discipline-only run: %d findings, want 2 (c1, c2): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Check != "clock-discipline" {
			t.Errorf("unexpected check in restricted run: %+v", d)
		}
	}
}

// TestRepoIsClean is the dogfooding gate: the repository this linter ships
// in must satisfy its own checks.
func TestRepoIsClean(t *testing.T) {
	diags, err := RunLint("../..", []string{"./..."}, nil, true)
	if err != nil {
		t.Fatalf("RunLint on repo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Msg, d.Check)
	}
}
