package hydradb

import (
	"fmt"
	"testing"
	"time"

	"hydradb/internal/timing"
)

func TestStartDefaults(t *testing.T) {
	db, err := Start(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := len(db.ShardIDs()); got != 4 {
		t.Fatalf("shards = %d", got)
	}
	c := db.NewClient()
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("get: %q %v", v, err)
	}
	if _, err := c.Get([]byte("absent")); err != ErrNotFound {
		t.Fatalf("absent: %v", err)
	}
	if db.Stats().Gets == 0 {
		t.Fatal("stats empty")
	}
}

func TestReplicasRequireMachines(t *testing.T) {
	opts := DefaultOptions()
	opts.Replicas = 1 // with 1 server machine
	if _, err := Start(opts); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestEndToEndFailover(t *testing.T) {
	opts := DefaultOptions()
	opts.ServerMachines = 2
	opts.ShardsPerMachine = 2
	opts.Replicas = 1
	opts.ArenaBytesPerShard = 2 << 20
	opts.MaxItemsPerShard = 8192
	db, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	c := db.NewClient()
	const n = 150
	for i := 0; i < n; i++ {
		if err := c.Put([]byte(fmt.Sprintf("user%08d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.KillShard(db.ShardIDs()[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for db.Cluster().Promotions.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no promotion")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%08d", i))
		if v, err := c.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("get %s: %q %v", k, v, err)
		}
	}
}

func TestModesSmoke(t *testing.T) {
	for _, mode := range []struct {
		name string
		mod  func(*Options)
	}{
		{"send-recv", func(o *Options) { o.SendRecv = true }},
		{"no-rdma-read", func(o *Options) { o.DisableRDMARead = true }},
		{"pipelined", func(o *Options) { o.Pipelined = true }},
		{"private-cache", func(o *Options) { o.SharedPointerCache = false }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.ShardsPerMachine = 2
			opts.ArenaBytesPerShard = 1 << 20
			opts.MaxItemsPerShard = 4096
			opts.Clock = timing.NewManualClock(1e9)
			mode.mod(&opts)
			db, err := Start(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			c := db.NewClient()
			for i := 0; i < 30; i++ {
				k := []byte(fmt.Sprintf("k%02d", i))
				if err := c.Put(k, []byte("v")); err != nil {
					t.Fatal(err)
				}
				if v, err := c.Get(k); err != nil || string(v) != "v" {
					t.Fatalf("get: %q %v", v, err)
				}
			}
		})
	}
}

func TestSharedCacheAcrossDBClients(t *testing.T) {
	opts := DefaultOptions()
	opts.ShardsPerMachine = 1
	opts.ArenaBytesPerShard = 1 << 20
	opts.MaxItemsPerShard = 4096
	db, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	a := db.NewClientOn(0)
	b := db.NewClientOn(0)
	a.Put([]byte("hot"), []byte("v"))
	if _, err := b.Get([]byte("hot")); err != nil {
		t.Fatal(err)
	}
	if b.Counters().Snapshot().RDMAReadHits != 1 {
		t.Fatal("shared cache not wired through the public API")
	}
}

func TestPublicRenewer(t *testing.T) {
	opts := DefaultOptions()
	opts.ShardsPerMachine = 1
	opts.ArenaBytesPerShard = 1 << 20
	opts.MaxItemsPerShard = 4096
	db, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c := db.NewClientOn(0)
	c.Put([]byte("hot"), []byte("v"))
	for i := 0; i < 10; i++ {
		c.Get([]byte("hot"))
	}
	r := db.NewRenewer(0, 10*time.Millisecond, 64*time.Second, 2)
	if n := r.ScanOnce(); n != 1 {
		t.Fatalf("renewed %d, want 1", n)
	}
	r.Start()
	defer r.Stop()
}
