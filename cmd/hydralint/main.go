// Command hydralint is HydraDB's project linter: a stdlib-only static
// analyzer (go/parser + go/types) that enforces the paper's structural
// invariants at review time, before the hydradebug runtime sanitizers ever
// get a chance to fire. The analysis is interprocedural: a call graph over
// the loaded packages feeds per-function summaries (net lock effect, escape
// behaviour, atomic-vs-plain pointer use) that let the flow passes step over
// calls into module functions instead of stopping at them.
//
// Checks (each individually suppressible with a `//hydralint:ignore <check>`
// comment on the offending line or the line above):
//
//	clock-discipline   no direct time.Now/Since/Sleep in internal/ data-plane
//	                   code; time flows through an injected timing.Clock
//	                   (§4.1.3 leases are meaningless under an unmockable
//	                   clock), with timing.Wall/timing.Sleep as the audited
//	                   liveness escape hatches.
//	shard-exclusivity  no `go` statements, sync.Mutex/RWMutex, or channel
//	                   sends on the shard hot path (internal/shard,
//	                   internal/kv, internal/hashtable) — the §4.1.1
//	                   single-threaded ownership model. The §6.2.1 pipelined
//	                   ablation baseline (internal/shard/pipelined.go) is
//	                   allowlisted.
//	atomic-word        values containing sync/atomic types are never copied,
//	                   ranged over by value, or aliased via unsafe — a copied
//	                   guardian/lease word silently stops being the word the
//	                   fabric CASes (§4.2.3).
//	hotpath-alloc      functions marked `// hydralint:hotpath` must not
//	                   allocate: no &composite / slice / map literals, no
//	                   make/new, no growing appends, no fmt, no
//	                   string<->[]byte conversions.
//	error-discipline   no discarded errors (`_ = f()` or a bare call) in
//	                   internal/ packages.
//	lease-discipline   dataflow pass on the function CFG: every acquire
//	                   (sync.Mutex/RWMutex Lock/RLock, invariant.Owner
//	                   Acquire) must be matched by the paired release on
//	                   every path to a function exit, directly or via defer.
//	                   Interprocedural: release helpers and handoff acquirers
//	                   with a provable net lock effect are stepped over.
//	                   Functions that intentionally return while holding a
//	                   lock carry a `hydralint:holds` marker in their doc
//	                   comment.
//	published-escape   taint pass: a pointer into an RDMA-registered region
//	                   (arena bytes, MemoryRegion data, decoded item views)
//	                   must not escape to a longer-lived un-leased reference
//	                   — no stores to fields/globals, channel sends, or
//	                   returns. Interprocedural: taint follows calls whose
//	                   summary proves the result aliases an argument, and
//	                   passing a view to a callee that publishes it is a
//	                   sink. Functions whose contract is to return a view
//	                   carry a `hydralint:aliases` marker in their doc
//	                   comment.
//	mixed-access       whole-program: a word accessed with sync/atomic
//	                   anywhere must never see a plain load or store anywhere
//	                   else. Deliberate exceptions carry a
//	                   `//hydralint:plainread <justification>` annotation.
//	layout             compile-time layout verification: `hydralint:assert`
//	                   constant expressions, `hydralint:layout size=/align=`
//	                   pins on type declarations, and `hydralint:cacheline`
//	                   false-sharing checks over `hydralint:owner` fields.
//	region-bounds      def-use abstract interpretation over offset and pointer
//	                   arithmetic: every index into a `hydralint:region`
//	                   backing array, every slice window from a
//	                   `hydralint:region-view` accessor, and every offset
//	                   argument of a `hydralint:offset-sink` verb must be
//	                   provably non-negative, in bounds (guard-refined
//	                   intervals with congruence through named geometry
//	                   constants), and derived from a `hydralint:offset-source`
//	                   allocator result; `hydralint:aligned <n>` pins word
//	                   alignment.
//	model-conformance  whole-program diff of each covered package's atomic
//	                   footprint — the atomic words it touches and the
//	                   invariant.SchedPoint tags it declares — against the
//	                   Footprint declarations shipped by internal/modelcheck.
//	                   Drift in either direction (an undeclared access, or a
//	                   stale declaration nothing implements) fails the lint,
//	                   so the hydramc models provably talk about the code as
//	                   written.
//	spec-order         the happens-before edges declared in protocolspec.Spec
//	                   literals hold on every code path. The
//	                   payload-before-release leg is the out-of-place PUT
//	                   flow pass (§4.2.3): every store into region memory
//	                   reachable from a to-be-published pointer must sequence
//	                   before the guardian/indicator release store, with
//	                   publication events keyed on `hydralint:publish`
//	                   constants and `hydralint:publishes` functions,
//	                   interprocedural via write-effect call summaries.
//	                   retract-before-free requires the retraction store to
//	                   precede any declared free in the same function;
//	                   apply-after-replicate requires an applier call before
//	                   any store to the declared commit word.
//	spec-coverage      whole-program: every atomic store to a word a spec
//	                   declares must be sanctioned — by a Writers entry, a
//	                   covering apply edge, a publish/unpublish constant, or
//	                   a publishes/unpublishes function the flow pass orders.
//	spec-drift         a spec may only name atomic words, functions, marker
//	                   constants, edge kinds, and hydramc footprints that
//	                   still exist; a declaration nothing implements fails
//	                   the lint (specs must not rot).
//	spec-guard         the declared torn-read guards still compare against
//	                   their bound in the reader's body, and declared
//	                   reclaimers call their quiescence gate before any
//	                   declared free.
//	goroutine-lifecycle  whole-program liveness: every `go` statement in
//	                   non-test code must have a provable stop path. A body
//	                   with no unbounded loop terminates on its own; one that
//	                   loops must observe a cancellation signal (stop-channel
//	                   receive, range over a closable channel, atomic flag
//	                   load) whose trigger — close/send/atomic store on the
//	                   same nominal identity — is reachable from a Stop/Close
//	                   surface or sits in the spawner. Deliberate process-
//	                   lifetime goroutines carry `//hydralint:daemon <why>`.
//	wait-cycle         whole-program liveness: static wait-for graph over
//	                   mutexes, channel rendezvous, and WaitGroups; any cycle
//	                   is reported, lock nesting is checked against the
//	                   declared invariant.LockOrder DAG, and a blocking op
//	                   inside a ReadSlot probe section (contractually wait-
//	                   free) is an immediate finding.
//	bounded-spin       liveness: a loop whose iteration neither blocks nor
//	                   does observable work (a busy-wait) must both yield
//	                   (Gosched / timing.Sleep / SchedPoint, directly or via
//	                   a module callee) and have an exit (condition, break,
//	                   return). Deliberately unbounded spins carry
//	                   `//hydralint:spins <why>`.
//	stale-suppression  a `hydralint:ignore` that no longer filters any
//	                   finding is itself a finding — suppressions only
//	                   ratchet down.
//
// Usage:
//
//	hydralint [-checks clock-discipline,...] [-tests=false] [-list]
//	          [-listchecks] [-json] [-sarif out.sarif]
//	          [-budget .hydralint-budget]
//	          [-budget-write .hydralint-budget] [packages]
//
// Packages default to ./... and use `go list` syntax. -checks selects what
// runs: positive names run exactly that subset, `-name` entries skip checks
// ("all,-region-bounds" or just "-region-bounds" runs everything else), and
// a selection resolving to the full registry behaves like an unrestricted
// run. _test.go files are linted too unless -tests=false; checks whose
// rules only govern production code (clock-discipline, shard-exclusivity,
// published-escape, the liveness passes) always skip them. -listchecks
// prints the README check table (generated from the registry; a test keeps
// README in sync).
//
// -json prints findings in a versioned envelope {"version": N,
// "findings": [...]} sorted deterministically; -sarif writes a SARIF 2.1.0
// log for code-scanning upload (always written, even when clean), with each
// result fingerprinted by check+package+symbol so findings track across
// refactors. -budget compares the suppression census — keyed by
// check+package+enclosing-symbol since format version 2 — against a
// checked-in baseline and fails when a key grew or appeared; -budget-write
// regenerates the baseline. Exit status is 0 when clean, 1 when findings
// were reported or the budget was exceeded, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		listFlag    = flag.Bool("list", false, "list registered checks and exit")
		listChecks  = flag.Bool("listchecks", false, "print the README check table (markdown) and exit")
		checksFlag  = flag.String("checks", "", "comma-separated checks to run; -name skips a check (default: all)")
		testsFlag   = flag.Bool("tests", true, "also lint _test.go files")
		jsonFlag    = flag.Bool("json", false, "print findings as a versioned JSON envelope")
		sarifFlag   = flag.String("sarif", "", "write a SARIF 2.1.0 log to this file")
		budgetFlag  = flag.String("budget", "", "fail if suppression counts exceed this baseline file")
		budgetWrite = flag.String("budget-write", "", "write the current suppression counts to this baseline file")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hydralint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, c := range allChecks {
			fmt.Printf("%-18s %s\n", c.Name, c.Desc)
		}
		return
	}

	if *listChecks {
		fmt.Print(checkTableMarkdown())
		return
	}

	var only []string
	if *checksFlag != "" {
		var err error
		only, err = resolveCheckSelection(*checksFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydralint: %v\n", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := RunLint(".", patterns, only, *testsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydralint: %v\n", err)
		os.Exit(2)
	}
	diags := res.Diags

	if *sarifFlag != "" {
		f, err := os.Create(*sarifFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydralint: %v\n", err)
			os.Exit(2)
		}
		if err := writeSARIF(f, diags); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydralint: writing SARIF: %v\n", err)
			os.Exit(2)
		}
	}

	if *jsonFlag {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "hydralint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Col, d.Msg, d.Check)
		}
	}

	failed := len(diags) > 0
	if failed {
		fmt.Fprintf(os.Stderr, "hydralint: %d finding(s)\n", len(diags))
	}

	if *budgetWrite != "" {
		if err := os.WriteFile(*budgetWrite, []byte(formatBudget(res.Suppressions)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hydralint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "hydralint: wrote %s (%d suppressions)\n", *budgetWrite, res.Suppressions.Total())
	}

	if *budgetFlag != "" {
		baseline, err := parseBudget(*budgetFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydralint: %v\n", err)
			os.Exit(2)
		}
		failures, notes := checkBudget(res.Suppressions, baseline)
		for _, n := range notes {
			fmt.Fprintf(os.Stderr, "hydralint: note: %s\n", n)
		}
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "hydralint: %s\n", f)
		}
		if len(failures) > 0 {
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}
