package simcluster

import (
	"hydradb/internal/kv"
	"hydradb/internal/sim"
)

// This file holds the topology primitives every simulated deployment shares
// — testbed machines, clients with remote-pointer caches, and the NIC/wire
// hop — so HydraSim, BaselineSim, and FleetSim model the network one way.

// machine is one testbed box: a finite NIC resource plus the queue-pair
// count that drives the §6.3 driver-scalability overhead.
type machine struct {
	id  int
	nic *sim.Resource
	qps int
}

// ptrEntry is one cached remote pointer with its lease horizon (§4.2.2).
type ptrEntry struct {
	ptr      kv.RemotePtr
	leaseExp int64
}

// simClient is a full-fidelity simulated client: it owns (or shares) a
// pointer cache and a scratch key buffer for zero-allocation key rendering.
type simClient struct {
	id     int
	m      *machine
	cache  map[string]*ptrEntry
	keyBuf [64]byte
}

// rawHop moves one message from machine a to machine b on engine eng:
// source NIC service, wire propagation, destination NIC service, then cont.
// Collocated endpoints still pay both NIC passes on the shared device
// (loopback through the HCA). srcCost/dstCost carry any transport-specific
// per-message extras (kernel crossings, higher IPoIB copy costs) so every
// transport flavor funnels through the same three-stage pipeline.
func rawHop(eng *sim.Engine, a, b *machine, srcCost, dstCost, wireNs int64, cont func()) {
	a.nic.Acquire(srcCost, func() {
		eng.Delay(wireNs, func() {
			b.nic.Acquire(dstCost, cont)
		})
	})
}
