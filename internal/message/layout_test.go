package message

import (
	"testing"
	"unsafe"
)

// TestMailboxCursorLayoutGolden pins the Mailbox cursor padding with
// unsafe.Offsetof: the owner-written read cursor and the writer-written write
// cursor must live on distinct 64-byte cache lines, or every message pays
// coherence traffic between the two goroutines. The hydralint layout pass
// checks the same facts from the cacheline/owner annotations.
func TestMailboxCursorLayoutGolden(t *testing.T) {
	const line = 64
	var m Mailbox
	if got := unsafe.Sizeof(m); got != 192 {
		t.Fatalf("Mailbox is %d bytes, want 192 (three full cache lines)", got)
	}
	rd := unsafe.Offsetof(m.rd)
	wr := unsafe.Offsetof(m.wr)
	if rd != 64 || wr != 128 {
		t.Fatalf("cursor offsets rd=%d wr=%d, want 64 and 128 (one private line each)", rd, wr)
	}
	if rd/line == wr/line {
		t.Fatalf("rd (offset %d) and wr (offset %d) share a cache line: false sharing between owner and writer", rd, wr)
	}
	if unsafe.Sizeof(m)%line != 0 {
		t.Fatalf("Mailbox size %d is not a cache-line multiple; adjacent Mailboxes would share wr's line", unsafe.Sizeof(m))
	}
}

// TestIndicatorPackingGolden drives the indicator word format at the bit
// boundaries: present|seq|size must partition the word exactly, a maximal
// sequence number must not bleed into the size field, and the zero word must
// read as "slot free".
func TestIndicatorPackingGolden(t *testing.T) {
	if presentBits+seqBits+sizeBits != 64 {
		t.Fatalf("indicator fields sum to %d bits, must fill one word", presentBits+seqBits+sizeBits)
	}
	const maxSeq = uint32(1)<<seqBits - 1
	const size = 0x12345
	w := makeIndicator(maxSeq, size)
	seq, gotSize, present := splitIndicator(w)
	if !present || seq != maxSeq || gotSize != size {
		t.Fatalf("round trip at max seq: got (seq=%#x size=%#x present=%v)", seq, gotSize, present)
	}
	if _, _, present := splitIndicator(0); present {
		t.Fatal("zero word must read as slot free")
	}
	// A sequence number overflowing its field wraps within it instead of
	// clobbering the present bit or the size.
	w = makeIndicator(maxSeq+1, size)
	seq, gotSize, present = splitIndicator(w)
	if !present || seq != 0 || gotSize != size {
		t.Fatalf("seq overflow must wrap in-field: got (seq=%#x size=%#x present=%v)", seq, gotSize, present)
	}
}
