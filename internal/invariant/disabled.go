//go:build !hydradebug

package invariant

// Enabled reports whether the sanitizers are armed (-tags hydradebug).
const Enabled = false

// Owner is a no-op placeholder; see enabled.go for the armed version.
type Owner struct{}

// Acquire is a no-op without -tags hydradebug.
func (*Owner) Acquire(string) {}

// Release is a no-op without -tags hydradebug.
func (*Owner) Release() {}

// Assert is a no-op without -tags hydradebug.
func (*Owner) Assert(string) {}

// SchedPoint is a no-op without -tags hydradebug: the compiler inlines the
// empty body away, so instrumented word operations pay nothing in production.
func SchedPoint(string) {}

// SetSchedPoint is a no-op without -tags hydradebug.
func SetSchedPoint(func(string)) {}

// AllocTracker is a no-op placeholder; see enabled.go for the armed version.
type AllocTracker struct{}

// OnAlloc is a no-op without -tags hydradebug.
func (*AllocTracker) OnAlloc(uint32, int) {}

// OnFree is a no-op without -tags hydradebug.
func (*AllocTracker) OnFree(uint32, int) {}

// CheckLive is a no-op without -tags hydradebug.
func (*AllocTracker) CheckLive(uint32, int) {}
