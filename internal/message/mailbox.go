package message

import (
	"errors"

	"hydradb/internal/rdma"
)

// Errors returned by mailbox operations.
var (
	// ErrTooLarge reports a body exceeding the slot capacity.
	ErrTooLarge = errors.New("message: body exceeds mailbox slot capacity")
	// ErrRingFull reports a loopback write into a slot the owner has not
	// consumed yet (remote writers cannot observe this; they must respect
	// the window protocol instead).
	ErrRingFull = errors.New("message: mailbox ring full")
)

// Mailbox is one direction of a Shard↔Client connection: a ring of
// indicator-encapsulated message slots in the owner's memory region that the
// remote side fills with single RDMA Writes and the owner detects by
// sustained polling (§4.2.1, Fig. 7).
//
// Each slot follows the paper's format exactly: the head indicator both
// announces arrival and carries the message size; the tail indicator (the
// "last word of the message") confirms the body landed — RDMA Write's
// in-order delivery makes head-after-tail publication sufficient. After
// processing, the owner zeroes the indicators ("the shard zeros out the
// request buffer") which doubles as writer-side flow control.
//
// A depth-1 ring reproduces the paper's single-slot protocol bit for bit:
// exactly one message in flight, exclusivity guaranteed by request/response
// alternation. Deeper rings generalize it into a pipeline: the writer fills
// slots in order and may keep up to depth messages outstanding, the owner
// polls and consumes slots strictly in order, and the credit rule "one new
// request per consumed response" guarantees neither side ever overwrites an
// unconsumed slot (see DESIGN.md, "Slot rings and the pipeline window").
//
// The same Mailbox value is shared by both ends of a connection in-process:
// the owner advances the read cursor, the writer the write cursor, and the
// indicator words carry all cross-goroutine synchronization. The cursors are
// padded onto private cache lines: each is written by exactly one goroutine
// on every message, and sharing a line would put coherence traffic on the
// per-message hot path (the in-process analogue of §4.2.1's single-writer
// cursor split).
//
// hydralint:layout size=192 align=8
// hydralint:cacheline
type Mailbox struct {
	mr       *rdma.MemoryRegion
	dataOff  int // hydralint:offset-source byte base, validated by NewRing
	slotCap  int // hydralint:offset-source slot capacity, validated by NewRing
	depth    int
	wordBase int       // hydralint:offset-source word base, validated by NewRing
	_        [3]uint64 // pad: the read-only config above fills its own line

	// owner-side read cursor (slot index)
	// hydralint:owner owner
	// hydralint:offset-source cursor stays in [0, depth)
	rd int
	_  [7]uint64 // pad: rd gets a private cache line

	// writer-side write cursor (slot index)
	// hydralint:owner writer
	// hydralint:offset-source cursor stays in [0, depth)
	wr int
	_  [7]uint64 // pad: keep wr's line private even in Mailbox arrays
}

// Indicator word format: one present bit, a 31-bit sequence number, and a
// 32-bit body size, packed most-significant first so a zero word means
// "slot free". Each ring slot owns an adjacent (head, tail) indicator pair.
const (
	presentBits           = 1
	seqBits               = 31
	sizeBits              = 32
	seqMask               = (uint64(1) << seqBits) - 1
	sizeMask              = (uint64(1) << sizeBits) - 1
	indicatorWordsPerSlot = 2
)

// hydralint:assert presentBits+seqBits+sizeBits == 64
// hydralint:assert 64%(8*indicatorWordsPerSlot) == 0

const presentBit = uint64(1) << (seqBits + sizeBits)

func makeIndicator(seq uint32, size int) uint64 {
	return presentBit | (uint64(seq)&seqMask)<<sizeBits | uint64(uint32(size))
}

func splitIndicator(w uint64) (seq uint32, size int, present bool) {
	return uint32((w >> sizeBits) & seqMask), int(uint32(w & sizeMask)), w&presentBit != 0
}

// NewMailbox creates a single-slot mailbox over [dataOff, dataOff+dataCap)
// of mr's byte area, using words headIdx and tailIdx of its word area. It is
// the depth-1 ring; the indicator words must be adjacent, as slots store
// (head, tail) pairs.
func NewMailbox(mr *rdma.MemoryRegion, dataOff, dataCap, headIdx, tailIdx int) *Mailbox {
	if tailIdx != headIdx+1 {
		panic("message: mailbox indicator words must be adjacent (head, tail)")
	}
	return NewRing(mr, dataOff, dataCap, 1, headIdx)
}

// NewRing creates a mailbox ring of depth slots of slotCap bytes each over
// [dataOff, dataOff+depth*slotCap) of mr's byte area. Slot i uses words
// wordBase+2i (head) and wordBase+2i+1 (tail) of the word area.
func NewRing(mr *rdma.MemoryRegion, dataOff, slotCap, depth, wordBase int) *Mailbox {
	if mr.Words() == nil {
		panic("message: mailbox region needs a word area")
	}
	if depth < 1 || slotCap <= 0 {
		panic("message: mailbox ring needs depth >= 1 and positive slot capacity")
	}
	if wordBase < 0 || wordBase+indicatorWordsPerSlot*depth > mr.Words().Len() {
		panic("message: mailbox ring exceeds word area")
	}
	if dataOff < 0 || dataOff+depth*slotCap > len(mr.Data()) {
		panic("message: mailbox ring exceeds byte area")
	}
	return &Mailbox{mr: mr, dataOff: dataOff, slotCap: slotCap, depth: depth, wordBase: wordBase}
}

// Capacity reports the largest body one slot can carry.
func (m *Mailbox) Capacity() int { return m.slotCap }

// Depth reports the number of slots — the maximum messages in flight.
func (m *Mailbox) Depth() int { return m.depth }

// Poll checks for a delivered message in the slot at the read cursor (owner
// side). Slots are consumed strictly in ring order, so a message in a later
// slot stays invisible until every earlier slot is consumed. The returned
// body aliases the mailbox buffer and is valid until Consume.
//
// hydralint:hotpath
func (m *Mailbox) Poll() (body []byte, seq uint32, ok bool) {
	words := m.mr.Words()
	headIdx := m.wordBase + indicatorWordsPerSlot*m.rd
	head := words.Load(headIdx)
	if head == 0 {
		return nil, 0, false
	}
	seq, size, present := splitIndicator(head)
	if !present || size < 0 || size > m.slotCap {
		return nil, 0, false
	}
	// The paper polls the last word after the size-bearing first word; with
	// in-order RDMA Write, tail==head means the body between them landed.
	if words.Load(headIdx+1) != head {
		return nil, 0, false
	}
	off := m.dataOff + m.rd*m.slotCap
	return m.mr.Data()[off : off+size], seq, true
}

// Consume clears the indicators of the slot at the read cursor, releasing it
// to the writer, and advances the cursor to the next slot.
//
// hydralint:hotpath
// hydralint:unpublishes clearing the head indicator retires the slot
func (m *Mailbox) Consume() {
	words := m.mr.Words()
	headIdx := m.wordBase + indicatorWordsPerSlot*m.rd
	words.Store(headIdx+1, 0)
	words.Store(headIdx, 0)
	m.rd++
	if m.rd == m.depth {
		m.rd = 0
	}
}

// Busy reports whether a message is pending in the slot at the read cursor
// (owner side).
//
// hydralint:hotpath
func (m *Mailbox) Busy() bool { return m.mr.Words().Load(m.wordBase+indicatorWordsPerSlot*m.rd) != 0 }

// WriteVia delivers body into the slot at the write cursor through qp as one
// RDMA Write (writer side) and advances the cursor. The caller must respect
// the window protocol — at most depth messages outstanding, one new write
// per consumed slot; writing into a busy slot corrupts it, exactly as on
// real hardware where the writer cannot see the remote indicators.
//
// hydralint:hotpath
func (m *Mailbox) WriteVia(qp *rdma.QP, body []byte, seq uint32) error {
	if len(body) > m.slotCap {
		return ErrTooLarge
	}
	headIdx := m.wordBase + indicatorWordsPerSlot*m.wr
	off := m.dataOff + m.wr*m.slotCap
	ind := makeIndicator(seq, len(body))
	if err := qp.WriteIndicated(m.mr, off, body, headIdx+1, headIdx, ind); err != nil {
		return err
	}
	m.wr++
	if m.wr == m.depth {
		m.wr = 0
	}
	return nil
}

// WriteLocal delivers body written by the region owner itself (used by
// loopback connections when client and shard share a machine). Unlike a
// remote writer, the owner can see the indicators, so a write into an
// unconsumed slot is rejected with ErrRingFull instead of corrupting it.
//
// hydralint:hotpath
// hydralint:publishes
func (m *Mailbox) WriteLocal(body []byte, seq uint32) error {
	if len(body) > m.slotCap {
		return ErrTooLarge
	}
	words := m.mr.Words()
	headIdx := m.wordBase + indicatorWordsPerSlot*m.wr
	if words.Load(headIdx) != 0 {
		return ErrRingFull
	}
	off := m.dataOff + m.wr*m.slotCap
	copy(m.mr.Data()[off:], body)
	ind := makeIndicator(seq, len(body))
	words.Store(headIdx+1, ind)
	words.Store(headIdx, ind)
	m.wr++
	if m.wr == m.depth {
		m.wr = 0
	}
	return nil
}
