package sim

// Fleet coordinates N instance engines behind one shared clock: events from
// all instances execute in global timestamp order, exactly one event at a
// time. Each instance keeps its own event heap, virtual clock, and random
// source; the fleet merely decides *which instance advances next*, so an
// instance's clock only moves when one of its own events runs — machines
// legitimately observe slightly stale local time between their events, as
// real machines do between interrupts.
//
// Determinism: ties on the global timestamp break by instance index, and
// within an instance by insertion sequence (the engine heap's own order).
// Two fleets built identically therefore execute identical event traces.
//
// Cross-instance interactions schedule on the *destination* instance:
//
//	dst.At(fleet.Now()+delayNs, deliver)
//
// Because the fleet always runs the globally earliest event, such a
// scheduled time can never lie in the destination's past.
type Fleet struct {
	insts []*Engine
	now   int64 // timestamp of the last executed event (global clock)
	ran   int64
}

// NewFleet creates a fleet of n instance engines. Instance i's randomness
// derives deterministically from seed and i.
func NewFleet(seed int64, n int) *Fleet {
	f := &Fleet{}
	for i := 0; i < n; i++ {
		f.insts = append(f.insts, NewEngine(seed*1_000_003+int64(i)))
	}
	return f
}

// Instance returns engine i.
func (f *Fleet) Instance(i int) *Engine { return f.insts[i] }

// Size reports the instance count.
func (f *Fleet) Size() int { return len(f.insts) }

// Now reports the shared clock: the timestamp of the last executed event.
func (f *Fleet) Now() int64 { return f.now }

// Events reports how many events have executed fleet-wide.
func (f *Fleet) Events() int64 { return f.ran }

// next returns the instance index holding the globally earliest event, or
// -1 when every heap is empty. Ties break by instance index.
func (f *Fleet) next() int {
	best, bestT := -1, int64(0)
	for i, e := range f.insts {
		t, ok := e.PeekNextEventTime()
		if !ok {
			continue
		}
		if best == -1 || t < bestT {
			best, bestT = i, t
		}
	}
	return best
}

// Step executes the globally earliest event; false when all heaps are
// drained. The shared clock never moves backwards: instance heaps pop in
// timestamp order and new events are always scheduled at or after the
// moment their creating event ran.
func (f *Fleet) Step() bool {
	i := f.next()
	if i < 0 {
		return false
	}
	t, _ := f.insts[i].PeekNextEventTime()
	if t > f.now {
		f.now = t
	}
	f.insts[i].ProcessNextEvent()
	f.ran++
	return true
}

// Run executes events until every instance heap drains.
func (f *Fleet) Run() {
	for f.Step() {
	}
}

// RunUntil executes all events with timestamp <= t (global order) and
// advances the shared clock to t, leaving later events queued.
func (f *Fleet) RunUntil(t int64) {
	for {
		i := f.next()
		if i < 0 {
			break
		}
		et, _ := f.insts[i].PeekNextEventTime()
		if et > t {
			break
		}
		f.Step()
	}
	if t > f.now {
		f.now = t
	}
}
