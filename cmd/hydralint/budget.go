package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The suppression ratchet. Every escape hatch the linter offers (the ignore,
// holds, aliases, and plainread directives) is counted repo-wide and compared
// against a checked-in baseline (.hydralint-budget). A run whose count
// exceeds the baseline fails: new suppressions need a reviewer to consciously
// raise the budget in the same change. A run whose count is lower only
// reports that the baseline can be tightened; `hydralint -budget-write`
// regenerates the file. The stale-suppression check closes the loop from the
// other side by flagging ignore directives that no longer filter anything.
//
// Since format version 2, hydralint:ignore directives are keyed by
// check + package + enclosing symbol rather than counted as one repo-wide
// total. Moving a suppression to another file or line inside the same
// declaration changes nothing; adding one to a new symbol — or renaming the
// check it suppresses — shows up as a new key the baseline does not cover
// and fails the ratchet. Version-1 baselines (a single "ignore N" total) are
// still read and compared by total, so the transition does not break older
// checkouts.

// ignoreKey identifies one budgeted suppression site nominally.
type ignoreKey struct {
	Check  string
	Pkg    string
	Symbol string // enclosing top-level declaration; "-" at file scope
}

func (k ignoreKey) String() string {
	return k.Check + " " + k.Pkg + " " + k.Symbol
}

// SuppressionCounts is the repo-wide census of linter escape hatches.
type SuppressionCounts struct {
	Ignore    map[ignoreKey]int
	Holds     int
	Aliases   int
	Plainread int
	Daemon    int
	Spins     int

	// legacyIgnore carries the aggregate total of a version-1 baseline file;
	// legacy is set when the file had no keyed entries to compare against.
	legacyIgnore int
	legacy       bool
}

func (c SuppressionCounts) IgnoreTotal() int {
	n := 0
	for _, v := range c.Ignore {
		n += v
	}
	return n
}

func (c SuppressionCounts) Total() int {
	return c.IgnoreTotal() + c.Holds + c.Aliases + c.Plainread + c.Daemon + c.Spins
}

// aggregates orders the non-keyed categories deterministically.
func (c SuppressionCounts) aggregates() []struct {
	Name  string
	Count int
} {
	return []struct {
		Name  string
		Count int
	}{
		{"holds", c.Holds},
		{"aliases", c.Aliases},
		{"plainread", c.Plainread},
		{"daemon", c.Daemon},
		{"spins", c.Spins},
	}
}

// countSuppressions counts directive comments across all loaded files. The
// ignore directives are keyed by (check, package, enclosing symbol); a
// directive naming several checks budgets each. Only comments that
// *start* with a marker count — prose that mentions a marker mid-sentence
// does not. Files shared between a package and its test variant are counted
// once.
func countSuppressions(pkgs []*Package) SuppressionCounts {
	c := SuppressionCounts{Ignore: map[ignoreKey]int{}}
	seen := map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Package).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := commentText(cm)
					if rest, ok := directiveRest(text, "hydralint:ignore"); ok {
						fields := strings.Fields(rest)
						if len(fields) == 0 {
							continue
						}
						sym := enclosingSymbol(p, cm.Pos())
						if sym == "" {
							sym = "-"
						}
						for _, check := range strings.Split(fields[0], ",") {
							c.Ignore[ignoreKey{Check: check, Pkg: p.ImportPath, Symbol: sym}]++
						}
						continue
					}
					switch {
					case matchesMarker(text, "hydralint:holds"):
						c.Holds++
					case matchesMarker(text, "hydralint:aliases"):
						c.Aliases++
					case matchesMarker(text, "hydralint:plainread"):
						c.Plainread++
					case matchesMarker(text, "hydralint:daemon"):
						c.Daemon++
					case matchesMarker(text, "hydralint:spins"):
						c.Spins++
					}
				}
			}
		}
	}
	return c
}

func matchesMarker(text, marker string) bool {
	_, ok := directiveRest(text, marker)
	return ok
}

// parseBudget reads a baseline file ('#' comments and blank lines allowed).
// Version 2 files carry a "version 2" line and keyed entries
// "ignore <check> <pkg> <symbol> <count>"; version 1 files carry a single
// "ignore <total>" and are compared by total only. A missing file is an
// error: the ratchet cannot hold against nothing — regenerate the baseline
// with -budget-write.
func parseBudget(path string) (SuppressionCounts, error) {
	c := SuppressionCounts{Ignore: map[ignoreKey]int{}, legacy: true}
	data, err := os.ReadFile(path)
	if err != nil {
		return c, fmt.Errorf("suppression baseline unreadable (regenerate with -budget-write): %w", err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(why string) (SuppressionCounts, error) {
			return c, fmt.Errorf("%s:%d: %s: %q", path, i+1, why, line)
		}
		switch fields[0] {
		case "version":
			if len(fields) != 2 || fields[1] != "2" {
				return bad("unsupported budget format version")
			}
			c.legacy = false
		case "ignore":
			switch len(fields) {
			case 2: // version-1 aggregate
				n, err := strconv.Atoi(fields[1])
				if err != nil {
					return bad("bad count")
				}
				c.legacyIgnore += n
			case 5:
				n, err := strconv.Atoi(fields[4])
				if err != nil {
					return bad("bad count")
				}
				c.Ignore[ignoreKey{Check: fields[1], Pkg: fields[2], Symbol: fields[3]}] += n
			default:
				return bad("malformed line (want \"ignore <check> <pkg> <symbol> <count>\")")
			}
		case "holds", "aliases", "plainread", "daemon", "spins":
			if len(fields) != 2 {
				return bad("malformed line (want \"category count\")")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return bad("bad count")
			}
			switch fields[0] {
			case "holds":
				c.Holds = n
			case "aliases":
				c.Aliases = n
			case "plainread":
				c.Plainread = n
			case "daemon":
				c.Daemon = n
			case "spins":
				c.Spins = n
			}
		default:
			return bad("unknown category")
		}
	}
	return c, nil
}

// formatBudget renders the baseline file content (format version 2, keyed
// ignores sorted for a stable diff).
func formatBudget(c SuppressionCounts) string {
	var b strings.Builder
	b.WriteString("# hydralint suppression budget — the ratchet only goes down.\n")
	b.WriteString("# Regenerate with: go run ./cmd/hydralint -budget-write .hydralint-budget ./...\n")
	b.WriteString("# ignore entries are keyed by check + package + enclosing symbol, so moving\n")
	b.WriteString("# a suppression between files is free; adding one to a new symbol is not.\n")
	b.WriteString("version 2\n")
	keys := make([]ignoreKey, 0, len(c.Ignore))
	for k := range c.Ignore {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, k := range keys {
		fmt.Fprintf(&b, "ignore %s %d\n", k, c.Ignore[k])
	}
	for _, cat := range c.aggregates() {
		fmt.Fprintf(&b, "%s %d\n", cat.Name, cat.Count)
	}
	return b.String()
}

// checkBudget compares the current census against the baseline. It returns
// human-readable failures (count exceeded, or a key the baseline does not
// know) and notes (budget can be tightened); an empty failures slice means
// the ratchet holds.
func checkBudget(current, baseline SuppressionCounts) (failures, notes []string) {
	if baseline.legacy {
		// Version-1 baseline: only the total is comparable.
		cur, base := current.IgnoreTotal(), baseline.legacyIgnore
		switch {
		case cur > base:
			failures = append(failures, fmt.Sprintf(
				"suppression budget exceeded: %d hydralint:ignore directives, version-1 baseline allows %d — remove the new suppression or regenerate the baseline (now keyed) in this change",
				cur, base))
		case cur < base:
			notes = append(notes, fmt.Sprintf(
				"budget for hydralint:ignore can be tightened: %d in tree, baseline says %d (run -budget-write; the new baseline is keyed per check+package+symbol)",
				cur, base))
		}
	} else {
		for k, n := range current.Ignore {
			allowed, known := baseline.Ignore[k]
			switch {
			case !known:
				failures = append(failures, fmt.Sprintf(
					"suppression budget exceeded: hydralint:ignore %s in %s (%s) is not in the baseline — a new or renamed suppression needs the budget consciously raised in the same change",
					k.Check, k.Pkg, k.Symbol))
			case n > allowed:
				failures = append(failures, fmt.Sprintf(
					"suppression budget exceeded: %d hydralint:ignore %s in %s (%s), baseline allows %d",
					n, k.Check, k.Pkg, k.Symbol, allowed))
			}
		}
		for k, allowed := range baseline.Ignore {
			if n := current.Ignore[k]; n < allowed {
				notes = append(notes, fmt.Sprintf(
					"budget for hydralint:ignore %s in %s (%s) can be tightened: %d in tree, baseline says %d (run -budget-write)",
					k.Check, k.Pkg, k.Symbol, n, allowed))
			}
		}
	}
	for i, cur := range current.aggregates() {
		base := baseline.aggregates()[i]
		switch {
		case cur.Count > base.Count:
			failures = append(failures, fmt.Sprintf(
				"suppression budget exceeded: %d hydralint:%s directives, baseline allows %d — remove the new suppression or consciously raise .hydralint-budget in this change",
				cur.Count, cur.Name, base.Count))
		case cur.Count < base.Count:
			notes = append(notes, fmt.Sprintf(
				"budget for hydralint:%s can be tightened: %d in tree, baseline says %d (run -budget-write)",
				cur.Name, cur.Count, base.Count))
		}
	}
	sort.Strings(failures)
	sort.Strings(notes)
	return failures, notes
}
