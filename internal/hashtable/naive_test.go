package hashtable

import (
	"fmt"
	"math/rand"
	"testing"

	"hydradb/internal/hashx"
	"hydradb/internal/testutil"
)

func TestNaiveTableAgreesWithCompact(t *testing.T) {
	compact := New(16)
	naive := NewNaive(16)
	keyOf := map[uint64]string{}
	nextRef := uint64(1)
	matcher := func(key string) MatchFunc {
		return func(ref uint64) bool { return keyOf[ref] == key }
	}
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 10000; step++ {
		key := fmt.Sprintf("user%04d", rng.Intn(500))
		h := hashx.HashString(key)
		switch rng.Intn(3) {
		case 0:
			ref := nextRef
			nextRef++
			keyOf[ref] = key
			o1, r1, err := compact.Insert(h, ref, matcher(key))
			if err != nil {
				t.Fatal(err)
			}
			// naive insert uses a distinct ref for the same key to keep
			// keyOf consistent.
			ref2 := nextRef
			nextRef++
			keyOf[ref2] = key
			o2, r2 := naive.Insert(h, ref2, matcher(key))
			if r1 != r2 {
				t.Fatalf("step %d: replace disagreement %v vs %v", step, r1, r2)
			}
			if r1 && keyOf[o1] != keyOf[o2] {
				t.Fatalf("step %d: replaced different keys", step)
			}
		case 1:
			_, ok1 := compact.Lookup(h, matcher(key))
			_, ok2 := naive.Lookup(h, matcher(key))
			if ok1 != ok2 {
				t.Fatalf("step %d: lookup disagreement for %s", step, key)
			}
		default:
			_, ok1 := compact.Delete(h, matcher(key))
			_, ok2 := naive.Delete(h, matcher(key))
			if ok1 != ok2 {
				t.Fatalf("step %d: delete disagreement for %s", step, key)
			}
		}
		if compact.Len() != naive.Len() {
			t.Fatalf("step %d: sizes diverge %d vs %d", step, compact.Len(), naive.Len())
		}
	}
}

// TestCompactTouchesFewerLines quantifies §4.1.3: at equal load the compact
// table touches far fewer memory locations per lookup than the pointer-
// chasing naive table.
func TestCompactTouchesFewerLines(t *testing.T) {
	const n = 20000
	// Size both for ~5 entries per bucket so chains actually form.
	compact := New(n / 5)
	naive := NewNaive(n / 5)
	keys := make([]string, n)
	keyOf := map[uint64]string{}
	for i := range keys {
		keys[i] = fmt.Sprintf("user%016d", i)
		h := hashx.HashString(keys[i])
		ref := uint64(i + 1)
		keyOf[ref] = keys[i]
		match := func(r uint64) bool { return keyOf[r] == keys[i] }
		testutil.Must2(compact.Insert(h, ref, match))
		naive.Insert(h, ref, match)
	}
	compact.Lookups, compact.LinesTouched, compact.KeyCompares = 0, 0, 0
	naive.Lookups, naive.NodesTouched, naive.KeyCompares = 0, 0, 0
	for i := range keys {
		h := hashx.HashString(keys[i])
		match := func(r uint64) bool { return keyOf[r] == keys[i] }
		if _, ok := compact.Lookup(h, match); !ok {
			t.Fatal("compact miss")
		}
		if _, ok := naive.Lookup(h, match); !ok {
			t.Fatal("naive miss")
		}
	}
	compactLines := float64(compact.LinesTouched) / float64(compact.Lookups)
	naiveNodes := float64(naive.NodesTouched) / float64(naive.Lookups)
	if naiveNodes < 2*compactLines {
		t.Fatalf("expected naive to touch >=2x locations: compact=%.2f naive=%.2f",
			compactLines, naiveNodes)
	}
	// Signatures must also suppress full-key comparisons.
	if compact.KeyCompares > compact.Lookups*11/10 {
		t.Fatalf("compact key compares %d for %d lookups", compact.KeyCompares, compact.Lookups)
	}
}

func BenchmarkCompactLookup(b *testing.B) { benchTable(b, true) }
func BenchmarkNaiveLookup(b *testing.B)   { benchTable(b, false) }

func benchTable(b *testing.B, useCompact bool) {
	const n = 1 << 17
	keys := make([][]byte, n)
	hs := make([]uint64, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%016d", i))
		hs[i] = hashx.Hash(keys[i])
	}
	match := func(uint64) bool { return true }
	if useCompact {
		tb := New(n / 5)
		for i := range keys {
			testutil.Must2(tb.Insert(hs[i], uint64(i+1), match))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb.Lookup(hs[i&(n-1)], match)
		}
	} else {
		tb := NewNaive(n / 5)
		for i := range keys {
			tb.Insert(hs[i], uint64(i+1), match)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb.Lookup(hs[i&(n-1)], match)
		}
	}
}
