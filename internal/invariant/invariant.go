// Package invariant provides build-tag-gated runtime sanitizers for the
// correctness invariants the Go compiler cannot see (DESIGN.md, "Machine-
// checked invariants").
//
// Build with -tags hydradebug to arm the sanitizers:
//
//	go test -tags hydradebug ./...
//
// Without the tag every type here is zero-sized and every method is an empty
// function the compiler inlines away, so production and benchmark builds pay
// nothing. The hydralint static checks are the compile-time half of the same
// contract; these sanitizers are the runtime half:
//
//   - Owner asserts the single-threaded shard discipline of paper §4.1.1: the
//     goroutine that enters the shard event loop records itself as the owner,
//     and every request handled is asserted to run on that goroutine.
//   - AllocTracker canaries the arena's out-of-place update discipline
//     (§4.2.3): double frees, frees of foreign offsets, size-class mismatches
//     and local access to non-live regions all panic at the faulty call site
//     instead of corrupting a neighbour item.
//   - The guardian-word validator (installed by kv, enforced by the simulated
//     fabric) panics when a one-sided operation observes or publishes a
//     guardian word that is neither live nor dead — the signature of a torn
//     or misdirected write into the metadata word area (§4.2.3).
package invariant
