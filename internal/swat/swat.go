// Package swat implements the Status Watcher and reAct Team (paper §5.1):
// an independent group of processes that watch shard liveness through the
// coordination service and react to status changes. The team elects a
// leader; only the leader carries out reconfiguration (promoting a secondary
// to primary, repairing routing metadata); when the leader itself fails, a
// new leader is elected and takes over future reactions.
package swat

import (
	"fmt"
	"sync"

	"hydradb/internal/coord"
	"hydradb/internal/invariant"
)

// Reactor is invoked by the current SWAT leader when a watched shard's
// liveness node disappears. name is the znode name (e.g. "shard-3").
// Implementations perform the environment reconfiguration: selecting a new
// primary among the secondaries, migrating data, bumping the routing epoch.
type Reactor func(name string)

// Team is a SWAT ensemble.
type Team struct {
	server   *coord.Server
	livePath string
	reactor  Reactor

	mu      sync.Mutex
	members []*member
	reacted map[string]bool // de-dup: several members may observe an event
	stopped bool
	gen     int // replacement-member name counter
}

type member struct {
	name     string
	sess     *coord.Session
	election *coord.Election
	events   <-chan coord.Event
	cancel   func()
	stop     chan struct{}
	done     chan struct{}
}

// NewTeam starts size SWAT members against the coordination server,
// watching the children of livePath and reacting through reactor.
func NewTeam(server *coord.Server, size int, livePath string, reactor Reactor) (*Team, error) {
	if size <= 0 {
		size = 3
	}
	t := &Team{
		server:   server,
		livePath: livePath,
		reactor:  reactor,
		reacted:  map[string]bool{},
	}
	bootstrap := server.NewSession()
	if err := bootstrap.EnsurePath(livePath); err != nil {
		return nil, err
	}
	bootstrap.Close()
	for i := 0; i < size; i++ {
		m, err := t.newMember(fmt.Sprintf("swat-%d", i))
		if err != nil {
			t.Stop()
			return nil, err
		}
		t.members = append(t.members, m)
		go t.run(m)
	}
	return t, nil
}

func (t *Team) newMember(name string) (*member, error) {
	sess := t.server.NewSession()
	el, err := coord.NewElection(sess, t.livePath+"-election", name)
	if err != nil {
		sess.Close()
		return nil, err
	}
	events, cancel, err := sess.Watch(t.livePath)
	if err != nil {
		el.Resign()
		sess.Close()
		return nil, err
	}
	return &member{
		name:     name,
		sess:     sess,
		election: el,
		events:   events,
		cancel:   cancel,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// run is one member's event loop.
func (t *Team) run(m *member) {
	defer close(m.done)
	defer t.replace(m)
	// Registered last so it deregisters first (LIFO): by the time a joining
	// Stop sees m.done closed, the registry entry is already gone. replace
	// runs in between, but under Stop it observes t.stopped and spawns
	// nothing.
	spawnDone := invariant.Spawned(fmt.Sprintf("swat/%p/%s", t, m.name))
	defer spawnDone()
	for {
		select {
		case <-m.stop:
			return
		case ev, ok := <-m.events:
			if !ok {
				return
			}
			if ev.Type == coord.EventSessionExpired {
				return
			}
			if ev.Type != coord.EventDeleted {
				continue
			}
			// Only the leader reacts (§5.1).
			isLeader, err := m.election.IsLeader()
			if err != nil || !isLeader {
				continue
			}
			name := ev.Path[len(t.livePath)+1:]
			t.mu.Lock()
			already := t.reacted[ev.Path+"#"+name]
			if !already {
				t.reacted[ev.Path+"#"+name] = true
			}
			t.mu.Unlock()
			if !already && t.reactor != nil {
				t.reactor(name)
				// Allow a future failure of a re-registered shard with the
				// same name to trigger again.
				t.mu.Lock()
				delete(t.reacted, ev.Path+"#"+name)
				t.mu.Unlock()
			}
		}
	}
}

// LeaderName reports the current leader (empty when none).
func (t *Team) LeaderName() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, m := range t.members {
		//hydralint:ignore error-discipline an expired session simply reads as not-leader here
		if ok, _ := m.election.IsLeader(); ok {
			return m.name
		}
	}
	return ""
}

// KillLeader fails the current leader member (failure injection): its
// session closes, its candidacy vanishes, and a new leader takes over.
func (t *Team) KillLeader() string {
	t.mu.Lock()
	var victim *member
	for _, m := range t.members {
		//hydralint:ignore error-discipline an expired session simply reads as not-leader here
		if ok, _ := m.election.IsLeader(); ok {
			victim = m
			break
		}
	}
	t.mu.Unlock()
	if victim == nil {
		return ""
	}
	// Kill without holding the team lock: the member loop's reactor path
	// also takes it.
	select {
	case <-victim.stop:
	default:
		close(victim.stop)
	}
	victim.cancel()
	victim.sess.Close()
	<-victim.done
	return victim.name
}

// replace self-heals the team: a member that dies outside Stop (leader
// failure injection, an expired session) is replaced with a fresh session
// under a new name, so the watcher ensemble recovers its size and repeated
// leader failures never wear the team down to nothing (§5.1 — the SWAT is
// itself supposed to be a resilient, self-sustaining group).
func (t *Team) replace(dead *member) {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.gen++
	name := fmt.Sprintf("swat-r%d", t.gen)
	t.mu.Unlock()

	nm, err := t.newMember(name)
	if err != nil {
		return
	}
	t.mu.Lock()
	if t.stopped {
		// Stop won the race while the replacement was being built.
		t.mu.Unlock()
		nm.cancel()
		nm.sess.Close()
		return
	}
	for i, m := range t.members {
		if m == dead {
			t.members[i] = nm
			break
		}
	}
	t.mu.Unlock()
	go t.run(nm)
}

// Members reports the number of live members.
func (t *Team) Members() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, m := range t.members {
		if t.server.SessionAlive(m.sess.ID()) {
			n++
		}
	}
	return n
}

// Stop shuts the team down.
func (t *Team) Stop() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.stopped = true
	members := append([]*member(nil), t.members...)
	t.mu.Unlock()
	for _, m := range members {
		select {
		case <-m.stop:
		default:
			close(m.stop)
		}
		m.cancel()
		m.sess.Close()
		<-m.done
	}
	invariant.AssertDrained(fmt.Sprintf("swat/%p/", t))
}
