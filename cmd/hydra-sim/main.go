// Command hydra-sim runs a single virtual-time HydraDB scenario with
// tunable topology, workload and cost knobs — the exploration companion to
// the fixed figures of hydra-bench.
//
// Examples:
//
//	hydra-sim -mode write+read -dist zipfian -read 90 -clients 50
//	hydra-sim -servers 4 -shards 1 -clients 60 -dist uniform -read 50
//	hydra-sim -replicas 2 -strict -read 0 -clients 8 -shards 1
package main

import (
	"flag"
	"fmt"
	"os"

	"hydradb/internal/simcluster"
	"hydradb/internal/ycsb"
)

func main() {
	var (
		mode     = flag.String("mode", "write+read", "send/recv | write-only | write+read | pipeline | tcp")
		dist     = flag.String("dist", "zipfian", "zipfian | uniform | scrambled | latest")
		readPct  = flag.Int("read", 90, "GET percentage (rest are UPDATEs; 0 with -insert makes INSERTs)")
		insert   = flag.Bool("insert", false, "make the write portion INSERTs of new keys")
		records  = flag.Int64("records", 50_000, "pre-loaded records")
		ops      = flag.Int("ops", 200_000, "operations to run")
		clients  = flag.Int("clients", 50, "client count")
		servers  = flag.Int("servers", 1, "server machines (of an 8-machine testbed)")
		shards   = flag.Int("shards", 4, "shards per server machine")
		replicas = flag.Int("replicas", 0, "secondaries per primary")
		strict   = flag.Bool("strict", false, "strict request/ack replication")
		shared   = flag.Bool("shared-cache", true, "share pointer caches per machine")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var m simcluster.Mode
	switch *mode {
	case "send/recv", "sendrecv":
		m = simcluster.ModeSendRecv
	case "write-only":
		m = simcluster.ModeWriteOnly
	case "write+read":
		m = simcluster.ModeWriteRead
	case "pipeline":
		m = simcluster.ModePipelineWrite
	case "tcp":
		m = simcluster.ModeTCP
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var d ycsb.Distribution
	switch *dist {
	case "zipfian":
		d = ycsb.Zipfian
	case "uniform":
		d = ycsb.Uniform
	case "scrambled":
		d = ycsb.ScrambledZipfian
	case "latest":
		d = ycsb.Latest
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	spec := ycsb.StandardSpec(*records, *ops, *readPct, d, 20150415)
	if *insert {
		spec.InsertProportion = spec.UpdateProportion
		spec.UpdateProportion = 0
	}
	w, err := ycsb.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	serverMs := make([]int, *servers)
	for i := range serverMs {
		serverMs[i] = i
	}
	cfg := simcluster.HydraConfig{
		Machines:         8,
		ServerMachines:   serverMs,
		ShardsPerMachine: *shards,
		Clients:          *clients,
		ClientMachines:   []int{2, 3, 4, 5, 6, 7},
		Mode:             m,
		SharedCache:      *shared,
		Replicas:         *replicas,
		Strict:           *strict,
		Workload:         w,
		Seed:             *seed,
	}
	h, err := simcluster.NewHydraSim(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r := h.Run(fmt.Sprintf("%s/%s/%d%%GET", m, d, *readPct))
	fmt.Printf("label:            %s\n", r.Label)
	fmt.Printf("ops:              %d in %.3f virtual s (%d events)\n",
		r.Ops, float64(r.VirtualNs)/1e9, h.Engine().Events())
	fmt.Printf("throughput:       %.3f Mops/s\n", r.ThroughputMops)
	fmt.Printf("get latency:      mean %.1f us, p99 %.1f us\n", r.GetMeanUs, r.GetP99Us)
	fmt.Printf("update latency:   mean %.1f us, p99 %.1f us\n", r.UpdMeanUs, r.UpdP99Us)
	fmt.Printf("pointer cache:    hits=%d invalid=%d misses=%d\n", r.Hits, r.Stale, r.Misses)
	fmt.Printf("hot shard util:   %.1f%%   server NIC util: %.1f%%\n", r.MaxShardUtil*100, r.NICUtil*100)
	if r.Replicated > 0 {
		fmt.Printf("replicated:       %d records\n", r.Replicated)
	}
}
