package message

import (
	"bytes"
	"testing"

	"hydradb/internal/kv"
)

// FuzzMessageRoundTrip fuzzes the request/response framing from both
// directions: structured values must survive encode→decode unchanged, and
// arbitrary bytes must never panic the decoders — a shard polls its request
// mailbox straight off RDMA-written memory (§4.2.1), so the decoder is the
// only thing between a hostile byte pattern and the shard loop.
func FuzzMessageRoundTrip(f *testing.F) {
	f.Add(byte(1), uint32(7), uint32(1), []byte("key"), []byte("value"), []byte{})
	f.Add(byte(3), uint32(0), uint32(9), []byte(""), []byte(""), []byte("\x01\x00garbage"))
	f.Add(byte(200), ^uint32(0), uint32(42), bytes.Repeat([]byte("k"), 300), bytes.Repeat([]byte("v"), 1000), bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, opByte byte, seq, epoch uint32, key, val, raw []byte) {
		// --- Structured round trip: request. ---
		if len(key) > 0xffff {
			key = key[:0xffff]
		}
		req := Request{
			Op:    Op(opByte%byte(OpMigrate) + 1), // clamp into the valid op range
			Seq:   seq,
			Epoch: epoch,
			Key:   key,
			Val:   val,
		}
		buf := make([]byte, req.EncodedSize())
		if n := req.EncodeTo(buf); n != len(buf) {
			t.Fatalf("EncodeTo wrote %d, EncodedSize %d", n, len(buf))
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("DecodeRequest(encoded): %v", err)
		}
		if got.Op != req.Op || got.Seq != req.Seq || got.Epoch != req.Epoch ||
			!bytes.Equal(got.Key, req.Key) || !bytes.Equal(got.Val, req.Val) {
			t.Fatalf("request round trip mismatch: %+v != %+v", got, req)
		}

		// --- Structured round trip: response. ---
		resp := Response{
			Status:   Status(opByte%byte(StatusError) + 1),
			Existed:  seq%2 == 1,
			Seq:      seq,
			Epoch:    epoch,
			LeaseExp: int64(seq)<<32 | int64(epoch),
			Ptr: kv.RemotePtr{
				ShardID: epoch,
				DataOff: seq ^ 0x5a5a5a5a,
				DataLen: uint32(len(val)),
				MetaIdx: seq >> 3,
			},
			Val: val,
		}
		rbuf := make([]byte, resp.EncodedSize())
		if n := resp.EncodeTo(rbuf); n != len(rbuf) {
			t.Fatalf("Response EncodeTo wrote %d, EncodedSize %d", n, len(rbuf))
		}
		rgot, err := DecodeResponse(rbuf)
		if err != nil {
			t.Fatalf("DecodeResponse(encoded): %v", err)
		}
		if rgot.Status != resp.Status || rgot.Existed != resp.Existed ||
			rgot.Seq != resp.Seq || rgot.Epoch != resp.Epoch ||
			rgot.LeaseExp != resp.LeaseExp || rgot.Ptr != resp.Ptr ||
			!bytes.Equal(rgot.Val, resp.Val) {
			t.Fatalf("response round trip mismatch: %+v != %+v", rgot, resp)
		}

		// --- Adversarial bytes: decoders must reject or decode, never
		// panic, and anything they accept must re-encode decodable. ---
		if r, err := DecodeRequest(raw); err == nil {
			b2 := make([]byte, r.EncodedSize())
			r.EncodeTo(b2)
			r2, err := DecodeRequest(b2)
			if err != nil {
				t.Fatalf("re-encoded accepted request rejected: %v", err)
			}
			if r2.Op != r.Op || !bytes.Equal(r2.Key, r.Key) || !bytes.Equal(r2.Val, r.Val) {
				t.Fatalf("accepted request not stable: %+v != %+v", r2, r)
			}
		}
		if r, err := DecodeResponse(raw); err == nil {
			b2 := make([]byte, r.EncodedSize())
			r.EncodeTo(b2)
			r2, err := DecodeResponse(b2)
			if err != nil {
				t.Fatalf("re-encoded accepted response rejected: %v", err)
			}
			if r2.Status != r.Status || r2.Ptr != r.Ptr || !bytes.Equal(r2.Val, r.Val) {
				t.Fatalf("accepted response not stable: %+v != %+v", r2, r)
			}
		}
	})
}

// FuzzMailboxRing drives a ring mailbox with a fuzzer-chosen schedule of
// writes and consumes and checks it against a simple FIFO queue model:
// every delivered message must come out in write order with its seq and
// body intact, the ring must report full exactly when the model says depth
// messages are outstanding, and no schedule may panic or corrupt a slot.
func FuzzMailboxRing(f *testing.F) {
	f.Add(uint8(1), []byte{0, 1, 0, 1})
	f.Add(uint8(4), []byte{0, 0, 0, 0, 1, 1, 1, 1, 0, 1})
	f.Add(uint8(16), bytes.Repeat([]byte{0, 0, 1}, 20))

	f.Fuzz(func(t *testing.T, depthByte uint8, schedule []byte) {
		depth := int(depthByte)%16 + 1
		ring, qp := ringPair(t, 64, depth)

		type msg struct {
			seq  uint32
			body string
		}
		var model []msg // FIFO of in-flight messages, oldest first
		next := uint32(0)

		for _, step := range schedule {
			if step%2 == 0 { // write
				if len(model) == depth {
					// Window closed: a remote writer must not write (it would
					// corrupt the slot), but the loopback writer must detect it.
					if err := ring.WriteLocal([]byte("x"), next); err != ErrRingFull {
						t.Fatalf("full ring (depth %d) accepted local write: %v", depth, err)
					}
					continue
				}
				body := []byte{byte(next), byte(next >> 8), 'p'}
				var err error
				if next%2 == 0 {
					err = ring.WriteVia(qp, body, next)
				} else {
					err = ring.WriteLocal(body, next)
				}
				if err != nil {
					t.Fatalf("write seq %d with %d in flight: %v", next, len(model), err)
				}
				model = append(model, msg{next, string(body)})
				next++
			} else { // consume
				body, seq, ok := ring.Poll()
				if len(model) == 0 {
					if ok {
						t.Fatalf("empty ring delivered seq %d", seq)
					}
					continue
				}
				if !ok {
					t.Fatalf("ring with %d in flight polled empty", len(model))
				}
				want := model[0]
				if seq != want.seq || string(body) != want.body {
					t.Fatalf("FIFO order broken: got seq=%d %q, want seq=%d %q",
						seq, body, want.seq, want.body)
				}
				ring.Consume()
				model = model[1:]
			}
		}

		// Drain what the schedule left behind.
		for _, want := range model {
			body, seq, ok := ring.Poll()
			if !ok || seq != want.seq || string(body) != want.body {
				t.Fatalf("drain mismatch: got seq=%d %q ok=%v, want seq=%d %q",
					seq, body, ok, want.seq, want.body)
			}
			ring.Consume()
		}
		if _, _, ok := ring.Poll(); ok {
			t.Fatal("drained ring still delivers")
		}
	})
}
