// The harness: build a replicated cluster, run N recording clients against
// it while the injector and the event script tear at the fabric, then
// quiesce and hold the recorded history against the linearizability oracle.
package chaos

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hydradb/internal/client"
	"hydradb/internal/cluster"
	"hydradb/internal/history"
	"hydradb/internal/invariant"
	"hydradb/internal/kv"
	"hydradb/internal/testutil"
	"hydradb/internal/timing"
)

// Options configures one chaos run.
type Options struct {
	Schedule Schedule
	// SeededBug silently corrupts one acked key after the run (bypassing the
	// replication path), proving the checker and lost-write scan can see.
	SeededBug bool
	// ReaderThreads > 0 runs every shard with a parallel read plane
	// (DESIGN.md §13), so the chaos oracle checks linearizability with
	// reader goroutines probing across crashes, promotions, and faults.
	ReaderThreads int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Result is the outcome of a chaos run.
type Result struct {
	Schedule   Schedule
	Ops        int64              // client operations completed
	OpErrors   int64              // transient op-level errors (retries exhausted etc.)
	Violation  *history.Violation // nil when every per-key history linearizes
	LostKeys   []string           // keys with an acked write missing at the end
	RecoverNs  []int64            // per ActKill event: crash → promotion, ns
	Promotions int32
	Injected   string       // injector counters, human-readable
	History    []history.Op // the full recorded history (debugging, stats)
	// LeakedGoroutines is the goroutine-count delta after the full cluster
	// teardown settled (0 when every stop path drained).
	LeakedGoroutines int
}

// Failed reports whether the run found a correctness violation.
func (r *Result) Failed() bool {
	return r.Violation != nil || len(r.LostKeys) > 0 || r.LeakedGoroutines > 0
}

// Run executes one chaos run to completion.
func Run(opts Options) (*Result, error) {
	sched := opts.Schedule
	if err := sched.validate(); err != nil {
		return nil, err
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Data-plane clock: a stalled manual clock (leases never expire, lease
	// arithmetic deterministic). Liveness — client timeouts, recovery
	// measurement — runs on the wall clock.
	clk := timing.NewManualClock(1e9)
	baseline := runtime.NumGoroutine()
	cl, err := cluster.New(cluster.Config{
		ServerMachines:   3,
		ClientMachines:   sched.Clients,
		ShardsPerMachine: 1,
		Replicas:         2,
		VNodes:           16,
		ReaderThreads:    opts.ReaderThreads,
		Store: kv.Config{
			ArenaBytes: 4 << 20,
			MaxItems:   16384,
			Clock:      clk,
		},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Stop()

	in := NewInjector(sched)
	cl.Fabric().SetFaultHook(in.Hook)
	defer cl.Fabric().SetFaultHook(nil)

	rec := history.NewRecorder()
	res := &Result{Schedule: sched}
	var total, opErrs atomic.Int64

	// Workers: one client per goroutine, a seeded private RNG each, so the
	// workload itself is deterministic per (seed, client).
	var wg sync.WaitGroup
	for w := 0; w < sched.Clients; w++ {
		wg.Add(1)
		rc := &history.RecordingClient{
			C: cl.NewClient(w, client.Options{
				UseRDMARead:    w%2 == 0, // half one-sided readers, half message-only
				RequestTimeout: 150 * time.Millisecond,
				MaxRetries:     30,
				// At-least-once retries re-execute a mutation whose response
				// was lost, which is visible to the oracle as a double write;
				// the harness runs the honest at-most-once mode and records
				// timed-out writes as maybe-applied.
				AtMostOnceWrites: true,
			}),
			R:  rec,
			ID: w,
		}
		go func(w int, rc *history.RecordingClient) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(sched.Seed) + int64(w)))
			key := func() []byte { return []byte(fmt.Sprintf("k%03d", rng.Intn(sched.Keys))) }
			for op := 0; op < sched.Ops; op++ {
				var err error
				switch roll := rng.Intn(100); {
				case roll < 45:
					err = rc.Put(key(), []byte(fmt.Sprintf("c%d-%d", w, op)))
				case roll < 80:
					_, err = rc.Get(key())
				case roll < 85:
					err = rc.Delete(key())
				case roll < 95:
					keys := [][]byte{key(), key(), key()}
					_, err = rc.MultiGet(keys)
				default:
					pairs := []client.KV{
						{Key: key(), Val: []byte(fmt.Sprintf("c%d-%da", w, op))},
						{Key: key(), Val: []byte(fmt.Sprintf("c%d-%db", w, op))},
					}
					err = rc.MultiPut(pairs)
				}
				if err != nil && err != client.ErrNotFound {
					opErrs.Add(1)
				}
				total.Add(1)
			}
		}(w, rc)
	}

	// Controller: fire the event script as the op counter crosses each
	// threshold; measure crash-to-promotion for every kill.
	ctlDone := make(chan struct{})
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	go func() {
		defer close(ctlDone)
		wall := timing.Wall()
		ids := cl.ShardIDs()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, ev := range sched.Events {
			for total.Load() < ev.AtOp {
				select {
				case <-workersDone:
				default:
					timing.Sleep(1e5)
					continue
				}
				break // workers already done: fire the tail events now
			}
			logf("event %s (ops=%d)", ev.String(), total.Load())
			switch ev.Action {
			case ActKill:
				id := ids[ev.Shard%len(ids)]
				before := cl.Promotions.Load()
				t0 := wall.Now()
				if err := cl.KillShard(id); err != nil {
					logf("kill shard %d: %v", id, err)
					continue
				}
				if testutil.Eventually(15*time.Second, func() bool { return cl.Promotions.Load() > before }) {
					res.RecoverNs = append(res.RecoverNs, wall.Now()-t0)
				} else {
					logf("shard %d never promoted after kill", id)
					res.RecoverNs = append(res.RecoverNs, -1)
				}
			case ActKillLeader:
				dead := cl.SWAT().KillLeader()
				logf("killed SWAT leader %s", dead)
				testutil.Eventually(15*time.Second, func() bool {
					l := cl.SWAT().LeaderName()
					return l != "" && l != dead
				})
			case ActMove:
				id := ids[ev.Shard%len(ids)]
				if err := cl.MoveShard(id, ev.Arg%3); err != nil {
					logf("move shard %d: %v", id, err)
				}
			case ActPartitionSec:
				id := ids[ev.Shard%len(ids)]
				_, secs, err := cl.GroupMachines(id)
				if err != nil || len(secs) == 0 {
					logf("partitionsec shard %d: no secondary (%v)", id, err)
					continue
				}
				in.Partition(fmt.Sprintf("server-%d", secs[0]))
			case ActHeal:
				in.Heal()
			case ActStop:
				id := ids[ev.Shard%len(ids)]
				stopDrain(cl, id, logf)
			case ActCloseAll:
				for _, id := range ids {
					stopDrain(cl, id, logf)
				}
			}
		}
	}()

	<-workersDone
	<-ctlDone
	res.Ops = total.Load()
	res.OpErrors = opErrs.Load()
	res.Promotions = cl.Promotions.Load()

	// Quiesce: no more faults; everything still pending settles.
	in.Quiesce()
	res.Injected = fmt.Sprintf("drops=%d dups=%d reorders=%d delays=%d partition-errs=%d",
		in.Drops.Load(), in.Dups.Load(), in.Reorders.Load(), in.Delays.Load(), in.PartitionErrs.Load())

	if opts.SeededBug {
		corruptOneAckedKey(cl, rec, logf)
	}

	// Final verification reads: a fresh client reads every key on the clean
	// fabric; the reads join the recorded history, so a lost or stale value
	// fails the linearizability check like any other bad read.
	verifier := &history.RecordingClient{
		C:  cl.NewClient(0, client.Options{RequestTimeout: time.Second, MaxRetries: 30}),
		R:  rec,
		ID: sched.Clients,
	}
	finalFound := map[string]bool{}
	for k := 0; k < sched.Keys; k++ {
		key := fmt.Sprintf("k%03d", k)
		_, err := verifier.Get([]byte(key))
		if err != nil && err != client.ErrNotFound {
			return nil, fmt.Errorf("chaos: verification read of %s on quiesced fabric failed: %v", key, err)
		}
		finalFound[key] = err == nil
	}

	ops := rec.Ops()
	res.History = ops
	res.LostKeys = lostAckedWrites(ops, finalFound)
	res.Violation = history.Check(ops)

	// Explicit teardown with leak accounting (the deferred Stop is then a
	// no-op). Every stop path the run exercised — kills, moves, stops, the
	// final Stop — must have drained its goroutines; under -tags hydradebug
	// the spawn registry names any straggler, and the plain-count delta
	// catches leaks even in the default build. The count settles with a
	// grace period: runtime bookkeeping lags the last goroutine exit.
	cl.Stop()
	invariant.AssertDrained("")
	testutil.Eventually(5*time.Second, func() bool { return runtime.NumGoroutine() <= baseline })
	if n := runtime.NumGoroutine() - baseline; n > 0 {
		res.LeakedGoroutines = n
		logf("%d goroutine(s) leaked past cluster teardown", n)
	}

	logf("checked %d recorded ops across %d keys: violation=%v lost=%v leaked=%d",
		len(ops), sched.Keys, res.Violation != nil, res.LostKeys, res.LeakedGoroutines)
	return res, nil
}

// stopDrain gracefully stops a partition — primary, pipeline, secondaries —
// and restarts it in place on its current machine under a new epoch. Errors
// are logged and tolerated: chaos may have the partition mid-promotion.
func stopDrain(cl *cluster.Cluster, id uint32, logf func(string, ...any)) {
	prim, _, err := cl.GroupMachines(id)
	if err != nil {
		logf("stop shard %d: %v", id, err)
		return
	}
	if err := cl.MoveShard(id, prim); err != nil {
		logf("stop shard %d: %v", id, err)
	}
}

// corruptOneAckedKey deletes an acked key directly from the owning shard's
// store, bypassing replication and the request path — the seeded bug the
// oracle must catch.
func corruptOneAckedKey(cl *cluster.Cluster, rec *history.Recorder, logf func(string, ...any)) {
	var victim string
	var latest int64
	for _, op := range rec.Ops() {
		if op.Kind == history.KindPut && !op.Err && op.Return > latest {
			victim, latest = op.Key, op.Return
		}
	}
	if victim == "" {
		logf("seeded bug: no acked put to corrupt")
		return
	}
	sid := cl.Ring().OwnerOfKey([]byte(victim))
	sh := cl.Shard(sid)
	if sh == nil {
		logf("seeded bug: shard %d gone", sid)
		return
	}
	sh.Store().Delete([]byte(victim))
	logf("seeded bug: silently deleted acked key %s from shard %d", victim, sid)
}

// lostAckedWrites flags keys whose final verification read observed absence
// although an acked put exists with no delete that could have linearized
// after it. Conservative by construction: only certain losses are reported;
// the linearizability check is the complete oracle.
func lostAckedWrites(ops []history.Op, finalFound map[string]bool) []string {
	lastAck := map[string]int64{} // key -> Invoke of latest acked put
	for _, op := range ops {
		if op.Kind == history.KindPut && !op.Err && op.Invoke > lastAck[op.Key] {
			lastAck[op.Key] = op.Invoke
		}
	}
	var lost []string
	for key, inv := range lastAck {
		if finalFound[key] {
			continue
		}
		excused := false
		for _, op := range ops {
			// Any delete that may linearize after the acked put excuses the
			// absence: still in flight (Infinity), or returned after the
			// put's invocation.
			if op.Kind == history.KindDelete && op.Key == key && op.Return > inv {
				excused = true
				break
			}
		}
		if !excused {
			lost = append(lost, key)
		}
	}
	sort.Strings(lost)
	return lost
}
