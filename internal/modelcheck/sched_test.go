package modelcheck

import (
	"errors"
	"strings"
	"testing"
)

// twoThreads builds a model of two threads doing `steps` steps each with the
// given tags; body, when non-nil, runs inside every step.
func twoThreads(tagA, tagB string, steps int, body func(thread, step int)) Model {
	return Model{
		Name: "test",
		Setup: func(r *Run, bug bool) {
			for ti, tag := range []string{tagA, tagB} {
				ti, tag := ti, tag
				r.Spawn(tag+"-thread", func(t *Thread) {
					for i := 0; i < steps; i++ {
						i := i
						t.Step(tag, func() {
							if body != nil {
								body(ti, i)
							}
						})
					}
				})
			}
		},
	}
}

func TestExploreEnumeratesDependentInterleavings(t *testing.T) {
	// Two threads, two steps each, all steps conflicting: the full
	// interleaving count is C(4,2) = 6 and none may be pruned.
	res := Explore(twoThreads("x", "x", 2, nil), false, Options{})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if res.Schedules != 6 {
		t.Fatalf("explored %d schedules, want 6 (all interleavings of dependent steps)", res.Schedules)
	}
}

func TestExplorePrunesIndependentInterleavings(t *testing.T) {
	// Disjoint tags: every interleaving is equivalent, so sleep sets must
	// prune the space below the full count (ideally to 1).
	res := Explore(twoThreads("a", "b", 2, nil), false, Options{})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if res.Schedules >= 6 {
		t.Fatalf("explored %d schedules, want < 6 (independent steps must be pruned)", res.Schedules)
	}
}

func TestExploreFindsOrderDependentViolation(t *testing.T) {
	// The violation exists only in schedules where thread 1's step runs
	// before thread 0's — a strict subset of interleavings.
	m := Model{
		Name: "race",
		Setup: func(r *Run, bug bool) {
			flag := false
			r.Spawn("setter", func(t *Thread) {
				t.Step("flag", func() { flag = true })
			})
			r.Spawn("checker", func(t *Thread) {
				t.Step("flag", func() {
					if !flag {
						t.Fail("checker ran before setter")
					}
				})
			})
		},
	}
	res := Explore(m, false, Options{})
	if res.Violation == nil {
		t.Fatal("explorer missed the order-dependent violation")
	}
	if !strings.Contains(res.Violation.Msg, "checker ran before setter") {
		t.Fatalf("unexpected violation message: %q", res.Violation.Msg)
	}

	// The recorded schedule must reproduce the violation deterministically.
	rep, trace := Replay(m, false, res.Violation.Schedule, Options{})
	if rep.Violation == nil || rep.Violation.Msg != res.Violation.Msg {
		t.Fatalf("replay did not reproduce the violation: %+v", rep.Violation)
	}
	if len(trace) != len(res.Violation.Trace) {
		t.Fatalf("replay trace %v differs from recorded trace %v", trace, res.Violation.Trace)
	}
}

func TestAwaitEnablesOnCondition(t *testing.T) {
	m := Model{
		Name: "await",
		Setup: func(r *Run, bug bool) {
			ready := false
			got := false
			r.Spawn("producer", func(t *Thread) {
				t.Step("state", func() { ready = true })
			})
			r.Spawn("consumer", func(t *Thread) {
				t.Await("state", func() bool { return ready }, func() { got = true })
			})
			r.AtEnd(func() error {
				if !got {
					return errors.New("consumer never ran")
				}
				return nil
			})
		},
	}
	res := Explore(m, false, Options{})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if res.Schedules == 0 {
		t.Fatal("no schedules explored")
	}
}

func TestDeadlockIsReported(t *testing.T) {
	m := Model{
		Name: "stuck",
		Setup: func(r *Run, bug bool) {
			r.Spawn("waiter", func(t *Thread) {
				t.Await("never", func() bool { return false }, func() {})
			})
		},
	}
	res := Explore(m, false, Options{})
	if res.Violation == nil || !strings.Contains(res.Violation.Msg, "deadlock") {
		t.Fatalf("want deadlock violation, got %+v", res.Violation)
	}
	if !strings.Contains(res.Violation.Msg, "waiter") {
		t.Fatalf("deadlock report must name the blocked thread: %q", res.Violation.Msg)
	}
}

func TestAtEndViolationWins(t *testing.T) {
	// AtEnd invariants are checked before the generic deadlock report, so a
	// protocol-level diagnosis shadows the bare "blocked" message.
	m := Model{
		Name: "atend",
		Setup: func(r *Run, bug bool) {
			r.Spawn("waiter", func(t *Thread) {
				t.Await("never", func() bool { return false }, func() {})
			})
			r.AtEnd(func() error { return errors.New("specific protocol diagnosis") })
		},
	}
	res := Explore(m, false, Options{})
	if res.Violation == nil || res.Violation.Msg != "specific protocol diagnosis" {
		t.Fatalf("want AtEnd diagnosis, got %+v", res.Violation)
	}
}

func TestMaxStepsTruncatesRunawaySchedules(t *testing.T) {
	m := Model{
		Name: "spin",
		Setup: func(r *Run, bug bool) {
			r.Spawn("spinner", func(t *Thread) {
				for {
					t.Step("x", func() {})
				}
			})
		},
	}
	res := Explore(m, false, Options{MaxSteps: 50, MaxSchedules: 4})
	if !res.Truncated {
		t.Fatal("runaway model must report truncation")
	}
	if res.Violation != nil {
		t.Fatalf("truncation is not a violation: %v", res.Violation)
	}
}

func TestMaxSchedulesBoundsExploration(t *testing.T) {
	res := Explore(twoThreads("x", "x", 4, nil), false, Options{MaxSchedules: 3})
	if res.Schedules > 3 {
		t.Fatalf("explored %d schedules past the bound of 3", res.Schedules)
	}
	if !res.Truncated {
		t.Fatal("hitting MaxSchedules must mark the result truncated")
	}
}

func TestSetupFailureIsReported(t *testing.T) {
	m := Model{
		Name: "setupfail",
		Setup: func(r *Run, bug bool) {
			r.Spawn("early", func(t *Thread) {
				t.Fail("broken before first yield")
			})
		},
	}
	res := Explore(m, false, Options{})
	if res.Violation == nil || !strings.Contains(res.Violation.Msg, "broken before first yield") {
		t.Fatalf("setup-time failure lost: %+v", res.Violation)
	}
}

func TestModelPanicBecomesViolation(t *testing.T) {
	m := Model{
		Name: "panicky",
		Setup: func(r *Run, bug bool) {
			r.Spawn("oops", func(t *Thread) {
				t.Step("x", func() { panic("kaboom") })
			})
		},
	}
	res := Explore(m, false, Options{})
	if res.Violation == nil || !strings.Contains(res.Violation.Msg, "kaboom") {
		t.Fatalf("model panic must surface as a violation: %+v", res.Violation)
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	in := []int{0, 2, 1, 1, 0}
	got, err := ParseSchedule(formatSchedule(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("round trip: got %v want %v", got, in)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("round trip: got %v want %v", got, in)
		}
	}
	if _, err := ParseSchedule("1,x,2"); err == nil {
		t.Fatal("malformed schedule must not parse")
	}
	if s, err := ParseSchedule("  "); err != nil || s != nil {
		t.Fatalf("blank schedule: got %v, %v", s, err)
	}
}

func TestDependentTagAlgebra(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"x", "x", true},
		{"a", "b", false},
		{"*", "anything", true},
		{"store,clock", "clock", true},
		{"store,clock", "ring", false},
		{"req,credit", "resp,credit", true},
	}
	for _, c := range cases {
		if got := dependent(c.a, c.b); got != c.want {
			t.Errorf("dependent(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if dependent("a", "b") != dependent("b", "a") {
		t.Error("dependence must be symmetric")
	}
}
