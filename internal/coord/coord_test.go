package coord

import (
	"fmt"
	"testing"

	"hydradb/internal/testutil"
	"hydradb/internal/timing"
)

func newTestServer() (*Server, *timing.ManualClock) {
	clk := timing.NewManualClock(0)
	return NewServer(clk, 2e9), clk
}

func TestCreateGetSetDelete(t *testing.T) {
	srv, _ := newTestServer()
	s := srv.NewSession()

	if _, err := s.Create("/a", []byte("x"), FlagPersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/a", nil, FlagPersistent); err != ErrNodeExists {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := s.Create("/missing/child", nil, FlagPersistent); err != ErrNoNode {
		t.Fatalf("create under missing parent: %v", err)
	}
	data, ver, err := s.Get("/a")
	if err != nil || string(data) != "x" || ver != 0 {
		t.Fatalf("get: %q v%d %v", data, ver, err)
	}
	if _, err := s.Set("/a", []byte("y"), 5); err != ErrBadVersion {
		t.Fatalf("set with stale version: %v", err)
	}
	nv, err := s.Set("/a", []byte("y"), 0)
	if err != nil || nv != 1 {
		t.Fatalf("set: v%d %v", nv, err)
	}
	if _, err := s.Set("/a", []byte("z"), -1); err != nil {
		t.Fatalf("set any-version: %v", err)
	}
	if err := s.Delete("/a", 0); err != ErrBadVersion {
		t.Fatalf("delete stale version: %v", err)
	}
	if err := s.Delete("/a", -1); err != nil {
		t.Fatal(err)
	}
	if ok := testutil.Must1(s.Exists("/a")); ok {
		t.Fatal("node survives delete")
	}
}

func TestPathValidation(t *testing.T) {
	srv, _ := newTestServer()
	s := srv.NewSession()
	for _, bad := range []string{"", "a", "/a/", "//a", "/a//b"} {
		if _, err := s.Create(bad, nil, FlagPersistent); err != ErrBadPath {
			t.Errorf("path %q: %v", bad, err)
		}
	}
}

func TestDeleteNonEmpty(t *testing.T) {
	srv, _ := newTestServer()
	s := srv.NewSession()
	testutil.Must1(s.Create("/p", nil, FlagPersistent))
	testutil.Must1(s.Create("/p/c", nil, FlagPersistent))
	if err := s.Delete("/p", -1); err != ErrNotEmpty {
		t.Fatalf("delete of non-empty: %v", err)
	}
}

func TestChildrenSorted(t *testing.T) {
	srv, _ := newTestServer()
	s := srv.NewSession()
	testutil.Must1(s.Create("/p", nil, FlagPersistent))
	for _, c := range []string{"b", "a", "c"} {
		testutil.Must1(s.Create("/p/"+c, nil, FlagPersistent))
	}
	kids, err := s.Children("/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 3 || kids[0] != "a" || kids[2] != "c" {
		t.Fatalf("children: %v", kids)
	}
}

func TestSequentialNodes(t *testing.T) {
	srv, _ := newTestServer()
	s := srv.NewSession()
	testutil.Must1(s.Create("/q", nil, FlagPersistent))
	p1 := testutil.Must1(s.Create("/q/n-", nil, FlagSequential))
	p2 := testutil.Must1(s.Create("/q/n-", nil, FlagSequential))
	if p1 != "/q/n-0000000000" || p2 != "/q/n-0000000001" {
		t.Fatalf("sequential paths: %s %s", p1, p2)
	}
}

func TestEphemeralLifecycle(t *testing.T) {
	srv, clk := newTestServer()
	s1 := srv.NewSession()
	s2 := srv.NewSession()
	testutil.Must1(s1.Create("/live", nil, FlagPersistent))
	testutil.Must1(s1.Create("/live/a", nil, FlagEphemeral))

	// Heartbeats keep it alive.
	for i := 0; i < 5; i++ {
		clk.Advance(1e9)
		testutil.Must(s1.Ping())
		testutil.Must(s2.Ping())
		srv.Tick()
	}
	if ok := testutil.Must1(s2.Exists("/live/a")); !ok {
		t.Fatal("ephemeral died despite heartbeats")
	}
	// Stop pinging s1: after timeout the ephemeral disappears.
	clk.Advance(3e9)
	testutil.Must(s2.Ping()) // cannot ping s1: would revive it; ping before tick
	if n := srv.Tick(); n != 1 {
		t.Fatalf("expired %d sessions, want 1", n)
	}
	if ok := testutil.Must1(s2.Exists("/live/a")); ok {
		t.Fatal("ephemeral survived session expiry")
	}
	// Expired session is unusable.
	if err := s1.Ping(); err != ErrSessionExpired {
		t.Fatalf("ping on expired session: %v", err)
	}
	if _, _, err := s1.Get("/live"); err != ErrSessionExpired {
		t.Fatalf("get on expired session: %v", err)
	}
}

func TestExplicitClose(t *testing.T) {
	srv, _ := newTestServer()
	s1 := srv.NewSession()
	s2 := srv.NewSession()
	testutil.Must1(s1.Create("/x", nil, FlagEphemeral))
	s1.Close()
	if ok := testutil.Must1(s2.Exists("/x")); ok {
		t.Fatal("ephemeral survived close")
	}
	if srv.SessionAlive(s1.ID()) {
		t.Fatal("closed session alive")
	}
}

func TestWatchEvents(t *testing.T) {
	srv, _ := newTestServer()
	s := srv.NewSession()
	w := srv.NewSession()
	testutil.Must1(s.Create("/w", nil, FlagPersistent))
	events, cancel, err := w.Watch("/w")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	testutil.Must1(s.Create("/w/c", []byte("v"), FlagPersistent))
	expectEvent(t, events, EventCreated, "/w/c")
	expectEvent(t, events, EventChildrenChanged, "/w")

	testutil.Must1(s.Set("/w/c", []byte("v2"), -1))
	expectEvent(t, events, EventDataChanged, "/w/c")

	testutil.Must(s.Delete("/w/c", -1))
	expectEvent(t, events, EventDeleted, "/w/c")
	expectEvent(t, events, EventChildrenChanged, "/w")
}

func expectEvent(t *testing.T, ch <-chan Event, typ EventType, path string) {
	t.Helper()
	select {
	case ev := <-ch:
		if ev.Type != typ || ev.Path != path {
			t.Fatalf("event %v %q, want %v %q", ev.Type, ev.Path, typ, path)
		}
	default:
		t.Fatalf("no event; wanted %v %q", typ, path)
	}
}

func TestWatchEphemeralExpiry(t *testing.T) {
	srv, clk := newTestServer()
	owner := srv.NewSession()
	watcher := srv.NewSession()
	testutil.Must1(owner.Create("/shards", nil, FlagPersistent))
	testutil.Must1(owner.Create("/shards/s1", nil, FlagEphemeral))
	events, cancel := testutil.Must2(watcher.Watch("/shards"))
	defer cancel()

	clk.Advance(5e9)
	testutil.Must(watcher.Ping())
	srv.Tick()
	// Watcher must see the ephemeral vanish — the SWAT failure signal.
	var sawDelete bool
	for {
		select {
		case ev := <-events:
			if ev.Type == EventDeleted && ev.Path == "/shards/s1" {
				sawDelete = true
			}
			continue
		default:
		}
		break
	}
	if !sawDelete {
		t.Fatal("watcher missed ephemeral expiry")
	}
}

func TestEnsurePath(t *testing.T) {
	srv, _ := newTestServer()
	s := srv.NewSession()
	if err := s.EnsurePath("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if ok := testutil.Must1(s.Exists("/a/b/c")); !ok {
		t.Fatal("ensure path did not create")
	}
	// Idempotent.
	if err := s.EnsurePath("/a/b/c"); err != nil {
		t.Fatal(err)
	}
}

func TestElection(t *testing.T) {
	srv, clk := newTestServer()
	sessions := make([]*Session, 3)
	elections := make([]*Election, 3)
	for i := range sessions {
		sessions[i] = srv.NewSession()
		var err error
		elections[i], err = NewElection(sessions[i], "/swat/election", fmt.Sprintf("swat-%d", i))
		if err != nil {
			t.Fatal(err)
		}
	}
	leaders := 0
	leaderIdx := -1
	for i, e := range elections {
		if ok := testutil.Must1(e.IsLeader()); ok {
			leaders++
			leaderIdx = i
		}
	}
	if leaders != 1 || leaderIdx != 0 {
		t.Fatalf("leaders=%d idx=%d", leaders, leaderIdx)
	}
	if name := testutil.Must1(elections[1].Leader()); name != "swat-0" {
		t.Fatalf("leader name %q", name)
	}

	// Leader dies: session expiry removes its candidate node; next lowest
	// takes over.
	clk.Advance(5e9)
	testutil.Must(sessions[1].Ping())
	testutil.Must(sessions[2].Ping())
	srv.Tick()
	if alive := srv.SessionAlive(sessions[0].ID()); alive {
		t.Fatal("leader session still alive")
	}
	if ok := testutil.Must1(elections[1].IsLeader()); !ok {
		t.Fatal("successor did not take leadership")
	}
	if ok := testutil.Must1(elections[2].IsLeader()); ok {
		t.Fatal("wrong successor")
	}
	// The successor received membership events to re-check on.
	select {
	case <-elections[1].Events():
	default:
		t.Fatal("no election event delivered")
	}

	// Explicit resignation promotes the last candidate.
	elections[1].Resign()
	if ok := testutil.Must1(elections[2].IsLeader()); !ok {
		t.Fatal("resignation did not promote")
	}
}

func TestWatchOverflowKeepsNewest(t *testing.T) {
	srv, _ := newTestServer()
	s := srv.NewSession()
	testutil.Must1(s.Create("/burst", nil, FlagPersistent))
	events, cancel := testutil.Must2(s.Watch("/burst"))
	defer cancel()
	// Generate far more events than the buffer holds.
	for i := 0; i < 300; i++ {
		testutil.Must1(s.Set("/burst", []byte{byte(i)}, -1))
	}
	// Drain: the channel must contain events and not have blocked mutations.
	n := 0
	for {
		select {
		case <-events:
			n++
			continue
		default:
		}
		break
	}
	if n == 0 || n > 128 {
		t.Fatalf("drained %d events", n)
	}
}

func TestSessionIsolation(t *testing.T) {
	srv, clk := newTestServer()
	a := srv.NewSession()
	b := srv.NewSession()
	testutil.Must1(a.Create("/pa", nil, FlagEphemeral))
	testutil.Must1(b.Create("/pb", nil, FlagEphemeral))
	clk.Advance(3e9)
	testutil.Must(b.Ping())
	srv.Tick()
	if ok := testutil.Must1(b.Exists("/pa")); ok {
		t.Fatal("expired session's ephemeral survived")
	}
	if ok := testutil.Must1(b.Exists("/pb")); !ok {
		t.Fatal("live session's ephemeral deleted")
	}
}
