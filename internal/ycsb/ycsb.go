// Package ycsb generates YCSB-style workloads (Cooper et al., SoCC '10) —
// the benchmark the paper evaluates with (§6): request streams with
// configurable GET/UPDATE mixes over Zipfian or Uniform key popularity,
// 16-byte keys and 32-byte values, pre-generated in memory before
// measurement starts ("all the workloads are pre-generated", §6).
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Distribution selects key popularity.
type Distribution int

// Distributions. Zipfian uses the YCSB constant theta=0.99; Scrambled
// spreads the hot items across the keyspace (YCSB's default request
// distribution); Latest skews towards recently inserted records.
const (
	Uniform Distribution = iota
	Zipfian
	ScrambledZipfian
	Latest
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case ScrambledZipfian:
		return "scrambled-zipfian"
	case Latest:
		return "latest"
	default:
		return fmt.Sprintf("dist(%d)", int(d))
	}
}

// OpType is a workload operation.
type OpType byte

// Operations. The paper's mixes use READ ("GET") and UPDATE; INSERT drives
// the replication experiment (Fig. 13).
const (
	OpRead OpType = iota + 1
	OpUpdate
	OpInsert
)

// Request is one pre-generated operation.
type Request struct {
	Op     OpType
	KeyIdx int64
}

// Spec describes a workload.
type Spec struct {
	// Records is the number of pre-loaded records.
	Records int64
	// Operations is the number of requests to generate.
	Operations int
	// ReadProportion + UpdateProportion + InsertProportion must sum to ~1.
	ReadProportion   float64
	UpdateProportion float64
	InsertProportion float64
	// Dist selects key popularity.
	Dist Distribution
	// KeyLen and ValueLen size items (paper: 16 and 32).
	KeyLen, ValueLen int
	// Seed makes generation reproducible.
	Seed int64
}

// Validate checks the spec.
func (s *Spec) Validate() error {
	if s.Records <= 0 || s.Operations < 0 {
		return fmt.Errorf("ycsb: records/operations must be positive")
	}
	sum := s.ReadProportion + s.UpdateProportion + s.InsertProportion
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("ycsb: proportions sum to %f, want 1", sum)
	}
	if s.KeyLen < 8 || s.KeyLen > 64 {
		return fmt.Errorf("ycsb: key length %d unsupported", s.KeyLen)
	}
	return nil
}

// StandardSpec builds one of the paper's six workloads: readPct percent
// GETs, the rest UPDATEs, over dist.
func StandardSpec(records int64, operations int, readPct int, dist Distribution, seed int64) Spec {
	return Spec{
		Records:          records,
		Operations:       operations,
		ReadProportion:   float64(readPct) / 100,
		UpdateProportion: float64(100-readPct) / 100,
		Dist:             dist,
		KeyLen:           16,
		ValueLen:         32,
		Seed:             seed,
	}
}

// Name renders the paper's workload label, e.g. "90% GET zipfian".
func (s *Spec) Name() string {
	return fmt.Sprintf("%d%%GET/%d%%UPD %s",
		int(s.ReadProportion*100), int(s.UpdateProportion*100+s.InsertProportion*100), s.Dist)
}

// Workload is a pre-generated request stream.
type Workload struct {
	Spec     Spec
	Requests []Request
	value    []byte
}

// Generate materializes the workload.
func Generate(spec Spec) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	gen := newKeyGen(spec.Dist, spec.Records, rng)
	w := &Workload{
		Spec:     spec,
		Requests: make([]Request, spec.Operations),
		value:    make([]byte, spec.ValueLen),
	}
	for i := range w.value {
		w.value[i] = byte('a' + rng.Intn(26))
	}
	inserted := spec.Records
	for i := range w.Requests {
		p := rng.Float64()
		switch {
		case p < spec.ReadProportion:
			w.Requests[i] = Request{Op: OpRead, KeyIdx: gen.next(rng, inserted)}
		case p < spec.ReadProportion+spec.UpdateProportion:
			w.Requests[i] = Request{Op: OpUpdate, KeyIdx: gen.next(rng, inserted)}
		default:
			w.Requests[i] = Request{Op: OpInsert, KeyIdx: inserted}
			inserted++
		}
	}
	return w, nil
}

// Key renders record idx as a 16-byte (or KeyLen-byte) key.
func (w *Workload) Key(idx int64) []byte {
	return []byte(fmt.Sprintf("user%0*d", w.Spec.KeyLen-4, idx))
}

// KeyInto renders the key into dst (len >= KeyLen) without allocating.
func (w *Workload) KeyInto(dst []byte, idx int64) []byte {
	b := dst[:0]
	b = append(b, 'u', 's', 'e', 'r')
	digits := w.Spec.KeyLen - 4
	for i := digits - 1; i >= 0; i-- {
		b = append(b, 0)
	}
	for i := len(b) - 1; i >= 4; i-- {
		b[i] = byte('0' + idx%10)
		idx /= 10
	}
	return b
}

// Value returns the constant-size value payload.
func (w *Workload) Value() []byte { return w.value }

// keyGen produces key indices under a popularity distribution.
type keyGen struct {
	dist Distribution
	zipf *zipfGen
	n    int64
}

func newKeyGen(dist Distribution, n int64, rng *rand.Rand) *keyGen {
	g := &keyGen{dist: dist, n: n}
	if dist != Uniform {
		g.zipf = newZipf(n)
	}
	return g
}

func (g *keyGen) next(rng *rand.Rand, inserted int64) int64 {
	switch g.dist {
	case Uniform:
		return rng.Int63n(g.n)
	case Zipfian:
		return g.zipf.next(rng)
	case ScrambledZipfian:
		v := g.zipf.next(rng)
		return int64(fnv64(uint64(v)) % uint64(g.n))
	case Latest:
		// Skew towards the most recently inserted records.
		v := g.zipf.next(rng)
		idx := inserted - 1 - v
		if idx < 0 {
			idx = 0
		}
		return idx
	default:
		return rng.Int63n(g.n)
	}
}

func fnv64(v uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 0x100000001b3
		v >>= 8
	}
	return h
}

// zipfGen is YCSB's ZipfianGenerator (Gray et al., "Quickly generating
// billion-record synthetic databases") with theta = 0.99.
type zipfGen struct {
	n            int64
	theta, alpha float64
	zetan, zeta2 float64
	eta          float64
}

const zipfTheta = 0.99

var zetaCache sync.Map // n -> zeta(n)

func zetaOf(n int64, theta float64) float64 {
	if v, ok := zetaCache.Load(n); ok {
		return v.(float64)
	}
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	zetaCache.Store(n, sum)
	return sum
}

func newZipf(n int64) *zipfGen {
	z := &zipfGen{n: n, theta: zipfTheta}
	z.zetan = zetaOf(n, zipfTheta)
	z.zeta2 = zetaOf(2, zipfTheta)
	z.alpha = 1 / (1 - zipfTheta)
	z.eta = (1 - math.Pow(2/float64(n), 1-zipfTheta)) / (1 - z.zeta2/z.zetan)
	return z
}

func (z *zipfGen) next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
