package stats

import "sync/atomic"

// Counter is a concurrency-safe monotonically increasing counter. Live-mode
// actors on different goroutines share these; the simulator (single-threaded)
// pays only the uncontended atomic cost.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reports the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter and returns the previous value.
func (c *Counter) Reset() int64 { return c.v.Swap(0) }

// OpCounters aggregates the per-operation counters a shard or client exports.
// Field names follow the paper's terminology: remote-pointer "hits" are GETs
// served by RDMA Read, "invalid hits" are RDMA Reads that fetched an outdated
// item (flipped guardian) and fell back to messaging (§6.2, Fig. 11).
type OpCounters struct {
	Gets           Counter
	Updates        Counter
	Inserts        Counter
	Deletes        Counter
	RDMAReadHits   Counter
	RDMAReadStale  Counter // invalid hits: guardian flipped / lease raced
	PointerMisses  Counter // GETs with no cached pointer (messaging path)
	LeaseRenewals  Counter
	LeaseRejects   Counter // renewal refused because item outdated
	Reclaims       Counter // item areas freed after lease expiry
	Replications   Counter // records shipped to secondaries
	ReplRollbacks  Counter // log re-send episodes (§5.2)
	RoutingRetries Counter // requests re-routed after epoch change

	// Read-plane counters (DESIGN.md §13).
	ReadPlaneHits      Counter // requests fully served by a reader goroutine
	ReadPlaneTorn      Counter // probes that raced an update and retried
	ReadPlaneFallbacks Counter // read-plane requests handed to the shard loop
}

// SnapshotOpCounters copies current values into a plain struct for reports.
type OpSnapshot struct {
	Gets, Updates, Inserts, Deletes       int64
	RDMAReadHits, RDMAReadStale           int64
	PointerMisses                         int64
	LeaseRenewals, LeaseRejects, Reclaims int64
	Replications, ReplRollbacks           int64
	RoutingRetries                        int64
	ReadPlaneHits, ReadPlaneTorn          int64
	ReadPlaneFallbacks                    int64
}

// Snapshot captures the counters.
func (o *OpCounters) Snapshot() OpSnapshot {
	return OpSnapshot{
		Gets:           o.Gets.Load(),
		Updates:        o.Updates.Load(),
		Inserts:        o.Inserts.Load(),
		Deletes:        o.Deletes.Load(),
		RDMAReadHits:   o.RDMAReadHits.Load(),
		RDMAReadStale:  o.RDMAReadStale.Load(),
		PointerMisses:  o.PointerMisses.Load(),
		LeaseRenewals:  o.LeaseRenewals.Load(),
		LeaseRejects:   o.LeaseRejects.Load(),
		Reclaims:       o.Reclaims.Load(),
		Replications:   o.Replications.Load(),
		ReplRollbacks:  o.ReplRollbacks.Load(),
		RoutingRetries: o.RoutingRetries.Load(),

		ReadPlaneHits:      o.ReadPlaneHits.Load(),
		ReadPlaneTorn:      o.ReadPlaneTorn.Load(),
		ReadPlaneFallbacks: o.ReadPlaneFallbacks.Load(),
	}
}

// Add merges another snapshot into s.
func (s *OpSnapshot) Add(o OpSnapshot) {
	s.Gets += o.Gets
	s.Updates += o.Updates
	s.Inserts += o.Inserts
	s.Deletes += o.Deletes
	s.RDMAReadHits += o.RDMAReadHits
	s.RDMAReadStale += o.RDMAReadStale
	s.PointerMisses += o.PointerMisses
	s.LeaseRenewals += o.LeaseRenewals
	s.LeaseRejects += o.LeaseRejects
	s.Reclaims += o.Reclaims
	s.Replications += o.Replications
	s.ReplRollbacks += o.ReplRollbacks
	s.RoutingRetries += o.RoutingRetries
	s.ReadPlaneHits += o.ReadPlaneHits
	s.ReadPlaneTorn += o.ReadPlaneTorn
	s.ReadPlaneFallbacks += o.ReadPlaneFallbacks
}
