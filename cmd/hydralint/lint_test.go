package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fixtureCase is one self-contained package dropped into a throwaway module
// named hydradb (so the path-scoped checks see the same module-relative
// layout as the real repo). want is the number of findings of the named
// check the package must produce; cases with want > 0 are then re-linted
// with a //hydralint:ignore directive inserted above each finding and must
// go quiet.
type fixtureCase struct {
	name  string
	path  string // file path within the module
	src   string
	check string
	want  int
}

var fixtures = []fixtureCase{
	{
		name:  "clock-now",
		path:  "internal/c1/c1.go",
		check: "clock-discipline",
		want:  1,
		src: `package c1

import "time"

func Deadline() int64 { return time.Now().UnixNano() }
`,
	},
	{
		name:  "clock-sleep",
		path:  "internal/c2/c2.go",
		check: "clock-discipline",
		want:  1,
		src: `package c2

import "time"

func Nap() { time.Sleep(time.Millisecond) }
`,
	},
	{
		name:  "clock-outside-internal-ok",
		path:  "cmd/tool/main.go",
		check: "clock-discipline",
		want:  0,
		src: `package main

import "time"

func main() { println(time.Now().UnixNano()) }
`,
	},
	{
		name:  "shard-go-stmt",
		path:  "internal/shard/go_stmt.go",
		check: "shard-exclusivity",
		want:  1,
		src: `package shard

// The go statement is the shard-exclusivity finding under test; the
// trailing daemon marker opts it out of the lifecycle pass (and survives
// the suppression test inserting ignore lines above).
func SpawnWorker(f func()) { go f() } //hydralint:daemon fixture: lifetime intentionally unproven
`,
	},
	{
		name:  "shard-pipelined-allowlisted",
		path:  "internal/shard/pipelined.go",
		check: "shard-exclusivity",
		want:  0,
		src: `package shard

import "sync"

type pipelinedQueue struct {
	mu sync.Mutex
	ch chan int
}

func (p *pipelinedQueue) Push(v int) {
	p.mu.Lock()
	p.ch <- v
	p.mu.Unlock()
}
`,
	},
	{
		name:  "kv-mutex",
		path:  "internal/kv/store.go",
		check: "shard-exclusivity",
		want:  1,
		src: `package kv

import "sync"

type Store struct {
	mu sync.Mutex
}
`,
	},
	{
		name:  "hashtable-send",
		path:  "internal/hashtable/send.go",
		check: "shard-exclusivity",
		want:  1,
		src: `package hashtable

func Notify(ch chan int) { ch <- 1 }
`,
	},
	{
		name:  "atomic-copy",
		path:  "internal/c3/c3.go",
		check: "atomic-word",
		want:  1,
		src: `package c3

import "sync/atomic"

type Counter struct{ n atomic.Int64 }

var sink Counter

func Copy(c *Counter) { sink = *c }
`,
	},
	{
		name:  "atomic-range",
		path:  "internal/c4/c4.go",
		check: "atomic-word",
		want:  1,
		src: `package c4

import "sync/atomic"

type Slot struct{ v atomic.Uint64 }

func Sum(slots []Slot) (n uint64) {
	for _, s := range slots {
		n += s.v.Load()
	}
	return
}
`,
	},
	{
		name:  "atomic-by-value-param",
		path:  "internal/c5/c5.go",
		check: "atomic-word",
		want:  1,
		src: `package c5

import "sync/atomic"

type Gauge struct{ v atomic.Int64 }

func Observe(g Gauge) int64 { return g.v.Load() }
`,
	},
	{
		name:  "atomic-unsafe-alias",
		path:  "internal/c6/c6.go",
		check: "atomic-word",
		want:  1,
		src: `package c6

import (
	"sync/atomic"
	"unsafe"
)

type W struct{ v atomic.Uint64 }

var P unsafe.Pointer

func Alias(w *W) { P = unsafe.Pointer(&w.v) }
`,
	},
	{
		name:  "hotpath-make",
		path:  "internal/c7/c7.go",
		check: "hotpath-alloc",
		want:  1,
		src: `package c7

// Grow allocates.
//
// hydralint:hotpath
func Grow(n int) []byte { return make([]byte, n) }
`,
	},
	{
		name:  "hotpath-fmt",
		path:  "internal/c8/c8.go",
		check: "hotpath-alloc",
		want:  1,
		src: `package c8

import "fmt"

// Describe formats.
//
// hydralint:hotpath
func Describe(x int) string { return fmt.Sprintf("%d", x) }
`,
	},
	{
		name:  "hotpath-composite-addr",
		path:  "internal/c9/c9.go",
		check: "hotpath-alloc",
		want:  1,
		src: `package c9

type hdr struct{ a, b int }

// NewHdr escapes.
//
// hydralint:hotpath
func NewHdr() *hdr { return &hdr{a: 1} }
`,
	},
	{
		name:  "hotpath-self-append-ok",
		path:  "internal/c10/c10.go",
		check: "hotpath-alloc",
		want:  0,
		src: `package c10

// Push uses the caller's buffer.
//
// hydralint:hotpath
func Push(dst []byte, b byte) []byte {
	dst = append(dst, b)
	return dst
}
`,
	},
	{
		name:  "hotpath-growing-append",
		path:  "internal/c11/c11.go",
		check: "hotpath-alloc",
		want:  1,
		src: `package c11

// Join grows.
//
// hydralint:hotpath
func Join(a, b []byte) []byte {
	out := append(a, b...)
	return out
}
`,
	},
	{
		name:  "error-blank-discard",
		path:  "internal/c12/c12.go",
		check: "error-discipline",
		want:  1,
		src: `package c12

import "errors"

func fail() error { return errors.New("x") }

func Ignore() { _ = fail() }
`,
	},
	{
		name:  "error-bare-call",
		path:  "internal/c13/c13.go",
		check: "error-discipline",
		want:  1,
		src: `package c13

import "errors"

func fail2() (int, error) { return 0, errors.New("x") }

func Bare() { fail2() }
`,
	},
	{
		name:  "error-builder-ok",
		path:  "internal/c14/c14.go",
		check: "error-discipline",
		want:  0,
		src: `package c14

import "strings"

func Render() string {
	var b strings.Builder
	b.WriteString("hi")
	return b.String()
}
`,
	},
	{
		name:  "unmarked-function-may-alloc",
		path:  "internal/c15/c15.go",
		check: "hotpath-alloc",
		want:  0,
		src: `package c15

import "fmt"

func Cold(n int) string { return fmt.Sprint(make([]byte, n)) }
`,
	},
	{
		// Stub of the real invariant.Owner so the lease-discipline fixtures
		// can exercise the Acquire/Release pairing; clean by construction.
		name:  "lease-owner-stub",
		path:  "internal/invariant/invariant.go",
		check: "lease-discipline",
		want:  0,
		src: `package invariant

type Owner struct{ who string }

func (o *Owner) Acquire(who string) { o.who = who }

func (o *Owner) Release() { o.who = "" }
`,
	},
	{
		name:  "lease-unreleased-branch",
		path:  "internal/l1/l1.go",
		check: "lease-discipline",
		want:  1,
		src: `package l1

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Bad(x int) int {
	s.mu.Lock()
	if x < 0 {
		return -1
	}
	s.mu.Unlock()
	return s.n
}
`,
	},
	{
		name:  "lease-defer-and-loop-ok",
		path:  "internal/l2/l2.go",
		check: "lease-discipline",
		want:  0,
		src: `package l2

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func Sum(ss []*S) int {
	t := 0
	for _, s := range ss {
		s.mu.Lock()
		t += s.n
		s.mu.Unlock()
	}
	return t
}
`,
	},
	{
		name:  "lease-rwmutex-mismatched-pair",
		path:  "internal/l3/l3.go",
		check: "lease-discipline",
		want:  1,
		src: `package l3

import "sync"

type S struct {
	mu sync.RWMutex
	n  int
}

func (s *S) Bad() int {
	s.mu.RLock()
	n := s.n
	s.mu.Unlock()
	return n
}
`,
	},
	{
		name:  "lease-holds-marker-ok",
		path:  "internal/l4/l4.go",
		check: "lease-discipline",
		want:  0,
		src: `package l4

import "sync"

type S struct{ mu sync.Mutex }

// LockForUpdate hands the lock to the caller.
//
// hydralint:holds
func (s *S) LockForUpdate() { s.mu.Lock() }
`,
	},
	{
		name:  "lease-owner-unbalanced",
		path:  "internal/l5/l5.go",
		check: "lease-discipline",
		want:  1,
		src: `package l5

import "hydradb/internal/invariant"

type Shard struct{ owner invariant.Owner }

func (s *Shard) Enter(ok bool) {
	s.owner.Acquire("enter")
	if !ok {
		return
	}
	s.owner.Release()
}
`,
	},
	{
		// Stub of rdma.MemoryRegion so the published-escape fixtures have a
		// source; rdma itself is an owner package and exempt.
		name:  "escape-rdma-stub",
		path:  "internal/rdma/rdma.go",
		check: "published-escape",
		want:  0,
		src: `package rdma

type MemoryRegion struct{ data []byte }

func NewRegion(b []byte) *MemoryRegion { return &MemoryRegion{data: b} }

func (m *MemoryRegion) Data() []byte { return m.data }
`,
	},
	{
		name:  "escape-field-store",
		path:  "internal/e1/e1.go",
		check: "published-escape",
		want:  1,
		src: `package e1

import "hydradb/internal/rdma"

type Cache struct{ view []byte }

func (c *Cache) Stash(mr *rdma.MemoryRegion) {
	c.view = mr.Data()
}
`,
	},
	{
		name:  "escape-return-view",
		path:  "internal/e2/e2.go",
		check: "published-escape",
		want:  1,
		src: `package e2

import "hydradb/internal/rdma"

func Header(mr *rdma.MemoryRegion) []byte {
	hdr := mr.Data()[:8]
	return hdr
}
`,
	},
	{
		name:  "escape-copy-launders-ok",
		path:  "internal/e3/e3.go",
		check: "published-escape",
		want:  0,
		src: `package e3

import "hydradb/internal/rdma"

func Snapshot(mr *rdma.MemoryRegion) ([]byte, byte) {
	view := mr.Data()
	cp := append([]byte(nil), view...)
	return cp, view[0]
}
`,
	},
	{
		name:  "escape-aliases-marker-ok",
		path:  "internal/e4/e4.go",
		check: "published-escape",
		want:  0,
		src: `package e4

import "hydradb/internal/rdma"

// View returns a window into the region; callers hold the lease.
//
// hydralint:aliases
func View(mr *rdma.MemoryRegion) []byte { return mr.Data() }
`,
	},
	{
		name:  "escape-channel-send",
		path:  "internal/e5/e5.go",
		check: "published-escape",
		want:  1,
		src: `package e5

import "hydradb/internal/rdma"

func Publish(mr *rdma.MemoryRegion, ch chan []byte) {
	v := mr.Data()
	ch <- v
}
`,
	},

	// --- interprocedural lease-discipline: call summaries -----------------
	{
		name:  "lease-helper-releases-ok",
		path:  "internal/l6/l6.go",
		check: "lease-discipline",
		want:  0,
		src: `package l6

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) unlock() { s.mu.Unlock() }

func (s *S) Get() int {
	s.mu.Lock()
	n := s.n
	s.unlock()
	return n
}
`,
	},
	{
		name:  "lease-holds-helper-caller-leaks",
		path:  "internal/l7/l7.go",
		check: "lease-discipline",
		want:  1,
		src: `package l7

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

// lockit hands the lock to the caller.
//
// hydralint:holds
func (s *S) lockit() { s.mu.Lock() }

func (s *S) Bad() int {
	s.lockit()
	return s.n
}
`,
	},
	{
		name:  "lease-holds-helper-caller-releases-ok",
		path:  "internal/l8/l8.go",
		check: "lease-discipline",
		want:  0,
		src: `package l8

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

// lockit hands the lock to the caller.
//
// hydralint:holds
func (s *S) lockit() { s.mu.Lock() }

func (s *S) Good() int {
	s.lockit()
	n := s.n
	s.mu.Unlock()
	return n
}
`,
	},

	// --- interprocedural published-escape: call summaries -----------------
	{
		name:  "escape-helper-returns-view",
		path:  "internal/e6/e6.go",
		check: "published-escape",
		want:  1,
		src: `package e6

import "hydradb/internal/rdma"

type Cache struct{ hdr []byte }

func header(b []byte) []byte { return b[:8] }

func (c *Cache) Stash(mr *rdma.MemoryRegion) {
	c.hdr = header(mr.Data())
}
`,
	},
	{
		name:  "escape-helper-publishes-arg",
		path:  "internal/e7/e7.go",
		check: "published-escape",
		want:  1,
		src: `package e7

import "hydradb/internal/rdma"

var latest []byte

func retain(b []byte) { latest = b }

func Publish(mr *rdma.MemoryRegion) {
	v := mr.Data()
	retain(v)
}
`,
	},
	{
		name:  "escape-helper-copies-ok",
		path:  "internal/e8/e8.go",
		check: "published-escape",
		want:  0,
		src: `package e8

import "hydradb/internal/rdma"

type Cache struct{ snap []byte }

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func (c *Cache) Snapshot(mr *rdma.MemoryRegion) {
	c.snap = clone(mr.Data())
}
`,
	},

	// --- mixed-access ------------------------------------------------------
	{
		name:  "mixed-direct-plain-load",
		path:  "internal/m1/m1.go",
		check: "mixed-access",
		want:  1,
		src: `package m1

import "sync/atomic"

type Counter struct {
	hits uint64
	cold uint64
}

func (c *Counter) Inc() { atomic.AddUint64(&c.hits, 1) }

func (c *Counter) Snapshot() uint64 { return c.hits }
`,
	},
	{
		name:  "mixed-through-helper",
		path:  "internal/m2/m2.go",
		check: "mixed-access",
		want:  1,
		src: `package m2

import "sync/atomic"

type Gate struct{ word uint64 }

func bump(p *uint64) { atomic.AddUint64(p, 1) }

func (g *Gate) Open() { bump(&g.word) }

func (g *Gate) Peek() uint64 { return g.word }
`,
	},
	{
		name:  "mixed-plainread-justified-ok",
		path:  "internal/m3/m3.go",
		check: "mixed-access",
		want:  0,
		src: `package m3

import "sync/atomic"

type Stat struct{ n uint64 }

func (s *Stat) Inc() { atomic.AddUint64(&s.n, 1) }

// Reset runs before the collector goroutines start.
func (s *Stat) Reset() {
	//hydralint:plainread init-time store before the word is shared
	s.n = 0
}
`,
	},
	{
		name:  "mixed-plainread-needs-reason",
		path:  "internal/m4/m4.go",
		check: "mixed-access",
		want:  1,
		src: `package m4

// F is fine; its bare annotation is not.
func F() int {
	//hydralint:plainread
	return 1
}
`,
	},
	{
		name:  "mixed-consistent-atomics-ok",
		path:  "internal/m5/m5.go",
		check: "mixed-access",
		want:  0,
		src: `package m5

import "sync/atomic"

type Seq struct{ n uint64 }

func (s *Seq) Next() uint64 { return atomic.AddUint64(&s.n, 1) }

func (s *Seq) Cur() uint64 { return atomic.LoadUint64(&s.n) }
`,
	},

	// --- layout ------------------------------------------------------------
	{
		name:  "layout-assert-fails",
		path:  "internal/y1/y1.go",
		check: "layout",
		want:  1,
		src: `package y1

const (
	sigBits = 16
	refBits = 48
)

//hydralint:assert sigBits+refBits == 64
//hydralint:assert sigBits == 8
`,
	},
	{
		name:  "layout-size-mismatch",
		path:  "internal/y2/y2.go",
		check: "layout",
		want:  1,
		src: `package y2

// hdr is documented as one cache line, but is not.
//
//hydralint:layout size=64
type hdr struct {
	a uint64
	b uint64
}

var _ = hdr{}
`,
	},
	{
		name:  "layout-size-ok",
		path:  "internal/y3/y3.go",
		check: "layout",
		want:  0,
		src: `package y3

// bucket is exactly one cache line.
//
//hydralint:layout size=64 align=8
type bucket struct {
	words [8]uint64
}

var _ = bucket{}
`,
	},
	{
		name:  "layout-cacheline-false-sharing",
		path:  "internal/y4/y4.go",
		check: "layout",
		want:  1,
		src: `package y4

//hydralint:cacheline
type cursors struct {
	//hydralint:owner reader
	rd uint64
	//hydralint:owner writer
	wr uint64
}

var _ = cursors{}
`,
	},
	{
		name:  "layout-cacheline-padded-ok",
		path:  "internal/y5/y5.go",
		check: "layout",
		want:  0,
		src: `package y5

//hydralint:cacheline
type cursors struct {
	//hydralint:owner reader
	rd uint64
	_  [7]uint64
	//hydralint:owner writer
	wr uint64
	_  [7]uint64
}

var _ = cursors{}
`,
	},

	// --- stale-suppression -------------------------------------------------
	{
		name:  "stale-ignore-flagged",
		path:  "internal/st1/st1.go",
		check: "stale-suppression",
		want:  1,
		src: `package st1

//hydralint:ignore clock-discipline nothing here uses the clock
func Fine() int { return 1 }
`,
	},

	// --- region-bounds -----------------------------------------------------
	{
		name:  "bounds-unguarded-offset",
		path:  "internal/rb1/rb1.go",
		check: "region-bounds",
		want:  1,
		src: `package rb1

type Area struct {
	data []byte // hydralint:region fixture byte region
}

func (a *Area) Peek(off int) byte { return a.data[off] }
`,
	},
	{
		name:  "bounds-guarded-ok",
		path:  "internal/rb2/rb2.go",
		check: "region-bounds",
		want:  0,
		src: `package rb2

type Area struct {
	data []byte // hydralint:region fixture byte region
}

func (a *Area) Peek(off int) (byte, bool) {
	if off < 0 || off >= len(a.data) {
		return 0, false
	}
	return a.data[off], true
}
`,
	},
	{
		name:  "bounds-offset-source-ok",
		path:  "internal/rb3/rb3.go",
		check: "region-bounds",
		want:  0,
		src: `package rb3

type Ring struct {
	data []byte // hydralint:region fixture byte region
	base int    // hydralint:offset-source validated at construction
}

func (r *Ring) First() byte { return r.data[r.base] }
`,
	},

	// --- spec-order (payload-before-release flow pass) ---------------------
	{
		name:  "puborder-write-after-publish",
		path:  "internal/pb1/pb1.go",
		check: "spec-order",
		want:  1,
		src: `package pb1

import "sync/atomic"

const Live = 1 // hydralint:publish fixture guardian value

type Shard struct {
	data  []byte          // hydralint:region payload
	words []atomic.Uint64 // hydralint:region guardians
}

// hydralint:offset-source
func (s *Shard) alloc() (int, int) { return 0, 0 }

func (s *Shard) Put(b byte) {
	off, idx := s.alloc()
	s.words[idx].Store(Live)
	s.data[off] = b
}
`,
	},
	{
		name:  "puborder-write-before-publish-ok",
		path:  "internal/pb2/pb2.go",
		check: "spec-order",
		want:  0,
		src: `package pb2

import "sync/atomic"

const Live = 1 // hydralint:publish fixture guardian value

type Shard struct {
	data  []byte          // hydralint:region payload
	words []atomic.Uint64 // hydralint:region guardians
}

// hydralint:offset-source
func (s *Shard) alloc() (int, int) { return 0, 0 }

func (s *Shard) Put(b byte) {
	off, idx := s.alloc()
	s.data[off] = b
	s.words[idx].Store(Live)
}
`,
	},
	{
		name:  "puborder-unpublish-retracts-ok",
		path:  "internal/pb3/pb3.go",
		check: "spec-order",
		want:  0,
		src: `package pb3

import "sync/atomic"

const (
	Live = 1 // hydralint:publish fixture guardian value
	Dead = 2 // hydralint:unpublish fixture retraction value
)

type Shard struct {
	data  []byte          // hydralint:region payload
	words []atomic.Uint64 // hydralint:region guardians
}

// hydralint:offset-source
func (s *Shard) alloc() (int, int) { return 0, 0 }

func (s *Shard) Rollback(b byte) {
	off, idx := s.alloc()
	s.words[idx].Store(Live)
	s.words[idx].Store(Dead)
	s.data[off] = b
}
`,
	},
	{
		name:  "puborder-payload-after-indicator",
		path:  "internal/pb4/pb4.go",
		check: "spec-order",
		want:  1,
		src: `package pb4

import "sync/atomic"

type Box struct {
	data  []byte          // hydralint:region payload
	words []atomic.Uint64 // hydralint:region indicators
}

// hydralint:offset-source
func (b *Box) slot() int { return 0 }

// Deliver releases the indicator before the body lands: seeded bug.
//
// hydralint:publishes
func (b *Box) Deliver(body []byte, ind uint64) {
	idx := b.slot()
	b.words[idx].Store(ind)
	copy(b.data, body)
}
`,
	},

	// --- protocolspec-driven checks ----------------------------------------
	// The fixture module carries its own protocolspec stub (the engine
	// matches the type by package-path suffix), so the spf packages below can
	// declare Spec literals that seed one violation per spec check.
	{
		name:  "protocolspec-stub",
		path:  "internal/protocolspec/spec.go",
		check: "spec-drift",
		want:  0,
		src: `package protocolspec

type Role string

type EdgeKind string

type Word struct {
	Name      string
	Role      Role
	Footprint bool
	Writers   []string
	Why       string
}

type Edge struct {
	Kind     EdgeKind
	From, To string
	Why      string
}

type Guard struct {
	Reader, Bound, Why string
}

type Reclaim struct {
	Reclaimer, Gate string
	Frees           []string
	Why             string
}

type Spec struct {
	Name, Model string
	Packages    []string
	SchedTags   []string
	Words       []Word
	Edges       []Edge
	Guards      []Guard
	Reclaims    []Reclaim
}
`,
	},
	{
		name:  "spec-retract-after-free",
		path:  "internal/spf1/spf1.go",
		check: "spec-order",
		want:  1,
		src: `package spf1

import (
	"sync/atomic"

	"hydradb/internal/protocolspec"
)

const Dead = 2 // hydralint:unpublish fixture retraction value

var spec = protocolspec.Spec{
	Name: "spf1",
	Words: []protocolspec.Word{
		{Name: "hydradb/internal/spf1.Pool.words[]", Role: "guardian"},
	},
	Edges: []protocolspec.Edge{
		{Kind: "retract-before-free", From: "hydradb/internal/spf1.Dead", To: "(*hydradb/internal/spf1.Pool).free"},
	},
}

var _ = spec

type Pool struct {
	words []atomic.Uint64
}

func (p *Pool) free(idx int) {}

// Retire frees the slot before retracting the guardian: seeded bug.
func (p *Pool) Retire(idx int) {
	p.free(idx)
	p.words[idx].Store(Dead)
}
`,
	},
	{
		name:  "spec-uncovered-store",
		path:  "internal/spf2/spf2.go",
		check: "spec-coverage",
		want:  1,
		src: `package spf2

import (
	"sync/atomic"

	"hydradb/internal/protocolspec"
)

var spec = protocolspec.Spec{
	Name: "spf2",
	Words: []protocolspec.Word{
		{Name: "hydradb/internal/spf2.Gate.ready", Role: "ready-word", Writers: []string{"(*hydradb/internal/spf2.Gate).Publish"}},
	},
}

var _ = spec

type Gate struct {
	ready atomic.Uint64
}

func (g *Gate) Publish() { g.ready.Store(1) }

// Sneak stores to the ready word without a covering Writers entry: seeded bug.
func (g *Gate) Sneak() { g.ready.Store(7) }
`,
	},
	{
		name:  "spec-stale-word",
		path:  "internal/spf3/spf3.go",
		check: "spec-drift",
		want:  1,
		src: `package spf3

import (
	"sync/atomic"

	"hydradb/internal/protocolspec"
)

var spec = protocolspec.Spec{
	Name: "spf3",
	Words: []protocolspec.Word{
		{Name: "hydradb/internal/spf3.Flag.live", Role: "pub-word", Writers: []string{"(*hydradb/internal/spf3.Flag).Set"}},
		{Name: "hydradb/internal/spf3.Flag.gone", Role: "pub-word"},
	},
}

var _ = spec

type Flag struct {
	live atomic.Uint64
}

func (f *Flag) Set() { f.live.Store(1) }
`,
	},
	{
		name:  "spec-guard-removed",
		path:  "internal/spf4/spf4.go",
		check: "spec-guard",
		want:  1,
		src: `package spf4

import "hydradb/internal/protocolspec"

var spec = protocolspec.Spec{
	Name: "spf4",
	Guards: []protocolspec.Guard{
		{Reader: "(*hydradb/internal/spf4.Ring).Poll", Bound: "slotCap"},
	},
}

var _ = spec

type Ring struct {
	slotCap int
}

// Poll lost its torn-read comparison against slotCap: seeded bug.
func (r *Ring) Poll(size int) bool { return size > 0 }
`,
	},
	{
		name:  "spec-free-before-gate",
		path:  "internal/spf5/spf5.go",
		check: "spec-guard",
		want:  1,
		src: `package spf5

import "hydradb/internal/protocolspec"

var spec = protocolspec.Spec{
	Name: "spf5",
	Reclaims: []protocolspec.Reclaim{
		{Reclaimer: "(*hydradb/internal/spf5.Pool).Reclaim", Gate: "(*hydradb/internal/spf5.Pool).Quiet", Frees: []string{"(*hydradb/internal/spf5.Pool).free"}},
	},
}

var _ = spec

type Pool struct{ n int }

func (p *Pool) Quiet() bool { return p.n == 0 }

func (p *Pool) free(idx int) {}

// Reclaim frees before waiting for quiescence: seeded bug.
func (p *Pool) Reclaim(idx int) {
	p.free(idx)
	if !p.Quiet() {
		return
	}
}
`,
	},
	{
		name:  "spec-watermark-ahead-of-apply",
		path:  "internal/spf6/spf6.go",
		check: "spec-order",
		want:  1,
		src: `package spf6

import (
	"sync/atomic"

	"hydradb/internal/protocolspec"
)

var spec = protocolspec.Spec{
	Name: "spf6",
	Words: []protocolspec.Word{
		{Name: "hydradb/internal/spf6.Log.applied", Role: "commit-word"},
	},
	Edges: []protocolspec.Edge{
		{Kind: "apply-after-replicate", From: "Apply", To: "hydradb/internal/spf6.Log.applied"},
	},
}

var _ = spec

type applier interface{ Apply(seq uint64) }

type Log struct {
	sink    applier
	applied atomic.Uint64
}

func (l *Log) Advance(seq uint64) {
	l.sink.Apply(seq)
	l.applied.Store(seq)
}

// Commit bumps the watermark without applying the record: seeded bug.
func (l *Log) Commit(seq uint64) {
	l.applied.Store(seq)
}
`,
	},

	// --- model-conformance -------------------------------------------------
	{
		name:  "conformance-stale-declaration",
		path:  "internal/modelcheck/mc.go",
		check: "model-conformance",
		want:  1,
		src: `package modelcheck

type Footprint struct {
	Model       string
	Packages    []string
	AtomicWords []string
	SchedTags   []string
}

var fixtureFootprint = Footprint{
	Model:       "fixture",
	Packages:    []string{"hydradb/internal/mcfix"},
	AtomicWords: []string{"hydradb/internal/mcfix.ops", "hydradb/internal/mcfix.gone"},
}

var _ = fixtureFootprint
`,
	},
	{
		name:  "conformance-undeclared-word",
		path:  "internal/mcfix/mcfix.go",
		check: "model-conformance",
		want:  1,
		src: `package mcfix

import "sync/atomic"

var ops atomic.Uint64
var extra atomic.Uint64

func Tick() {
	ops.Add(1)
	extra.Add(1)
}
`,
	},

	// goroutine-lifecycle: a spawned loop observing a stop channel that no
	// function in the package ever triggers — the seeded leak.
	{
		name:  "lifecycle-untriggered-stop",
		path:  "internal/lc1/lc1.go",
		check: "goroutine-lifecycle",
		want:  1,
		src: `package lc1

type Pump struct {
	stop chan struct{}
}

func New() *Pump { return &Pump{stop: make(chan struct{})} }

func (p *Pump) Start() { go p.loop() }

func (p *Pump) loop() {
	for {
		select {
		case <-p.stop:
			return
		}
	}
}
`,
	},
	// The corrected twin: Stop closes the channel the loop observes, so the
	// spawn has a provable stop path and the pass stays quiet.
	{
		name:  "lifecycle-stop-path-ok",
		path:  "internal/lc2/lc2.go",
		check: "goroutine-lifecycle",
		want:  0,
		src: `package lc2

type Pump struct {
	stop chan struct{}
}

func New() *Pump { return &Pump{stop: make(chan struct{})} }

func (p *Pump) Start() { go p.loop() }

func (p *Pump) Stop() { close(p.stop) }

func (p *Pump) loop() {
	for {
		select {
		case <-p.stop:
			return
		}
	}
}
`,
	},
	// A spawn through a function value cannot be traced at all.
	{
		name:  "lifecycle-func-value",
		path:  "internal/lc3/lc3.go",
		check: "goroutine-lifecycle",
		want:  1,
		src: `package lc3

func Launch(f func()) { go f() }
`,
	},

	// wait-cycle: the classic AB/BA inversion; both edges of the cycle are
	// reported.
	{
		name:  "waitcycle-abba",
		path:  "internal/wc1/wc1.go",
		check: "wait-cycle",
		want:  2,
		src: `package wc1

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) X() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *S) Y() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`,
	},
	// Lock-order DAG enforcement: the fixture module declares lo before hi,
	// and Bad acquires them inverted. One wait-cycle finding (inversion), no
	// cycle — the nesting is one-directional.
	{
		name:  "waitcycle-lockorder-decl",
		path:  "internal/invariant/lockorder.go",
		check: "wait-cycle",
		want:  0,
		src: `package invariant

// LockOrder is the fixture module's declared lock-order DAG.
var LockOrder = [][]string{
	{"hydradb/internal/wc2.T.lo"},
	{"hydradb/internal/wc2.T.hi"},
}
`,
	},
	{
		name:  "waitcycle-lockorder-inversion",
		path:  "internal/wc2/wc2.go",
		check: "wait-cycle",
		want:  1,
		src: `package wc2

import "sync"

type T struct {
	lo sync.Mutex
	hi sync.Mutex
}

func (t *T) Bad() {
	t.hi.Lock()
	t.lo.Lock()
	t.lo.Unlock()
	t.hi.Unlock()
}
`,
	},
	// Consistent one-directional nesting: no cycle, no declared levels for
	// these locks, nothing to report.
	{
		name:  "waitcycle-consistent-ok",
		path:  "internal/wc3/wc3.go",
		check: "wait-cycle",
		want:  0,
		src: `package wc3

import "sync"

type T struct {
	lo sync.Mutex
	hi sync.Mutex
}

func (t *T) Good() {
	t.lo.Lock()
	t.hi.Lock()
	t.hi.Unlock()
	t.lo.Unlock()
}
`,
	},

	// bounded-spin: a busy-wait on an atomic flag with no yield in the body.
	{
		name:  "spin-no-yield",
		path:  "internal/sp1/sp1.go",
		check: "bounded-spin",
		want:  1,
		src: `package sp1

import "sync/atomic"

type W struct{ done atomic.Bool }

func (w *W) Wait() {
	for !w.done.Load() {
	}
}
`,
	},
	// The corrected twin: same loop, yielding each miss.
	{
		name:  "spin-yield-ok",
		path:  "internal/sp2/sp2.go",
		check: "bounded-spin",
		want:  0,
		src: `package sp2

import (
	"runtime"
	"sync/atomic"
)

type W struct{ done atomic.Bool }

func (w *W) Wait() {
	for !w.done.Load() {
		runtime.Gosched()
	}
}
`,
	},
	// A yielding loop with no exit condition at all: polite, but unbounded.
	{
		name:  "spin-no-exit",
		path:  "internal/sp3/sp3.go",
		check: "bounded-spin",
		want:  1,
		src: `package sp3

import "runtime"

func Forever() {
	for {
		runtime.Gosched()
	}
}
`,
	},
}

// writeModule materializes the fixture module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module hydradb\n\ngo 1.22\n"
	for path, src := range files {
		full := filepath.Join(dir, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestChecksFireOnFixtures(t *testing.T) {
	files := map[string]string{}
	for _, c := range fixtures {
		files[c.path] = c.src
	}
	dir := writeModule(t, files)

	res, err := RunLint(dir, []string{"./..."}, nil, true)
	if err != nil {
		t.Fatalf("RunLint: %v", err)
	}
	diags := res.Diags

	byFile := map[string][]Diagnostic{}
	for _, d := range diags {
		byFile[filepath.ToSlash(d.File)] = append(byFile[filepath.ToSlash(d.File)], d)
		if d.Line <= 0 || d.File == "" {
			t.Errorf("diagnostic without position: %+v", d)
		}
	}

	for _, c := range fixtures {
		got := 0
		for _, d := range byFile[c.path] {
			if d.Check == c.check {
				got++
			}
		}
		if got != c.want {
			t.Errorf("%s: %d %s finding(s) in %s, want %d\nall: %v",
				c.name, got, c.check, c.path, c.want, byFile[c.path])
		}
		// No collateral findings from other checks in any fixture.
		for _, d := range byFile[c.path] {
			if d.Check != c.check {
				t.Errorf("%s: unexpected %s finding: %+v", c.name, d.Check, d)
			}
		}
	}
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	files := map[string]string{}
	for _, c := range fixtures {
		files[c.path] = c.src
	}
	dir := writeModule(t, files)

	res, err := RunLint(dir, []string{"./..."}, nil, true)
	if err != nil {
		t.Fatalf("RunLint: %v", err)
	}
	diags := res.Diags
	if len(diags) == 0 {
		t.Fatal("fixture set produced no findings to suppress")
	}

	// Rebuild the module with an ignore directive above every reported
	// line; the tree must then lint clean. Insert bottom-up per file so
	// earlier insertions don't shift later line numbers.
	perFile := map[string][]Diagnostic{}
	for _, d := range diags {
		perFile[filepath.ToSlash(d.File)] = append(perFile[filepath.ToSlash(d.File)], d)
	}
	suppressed := map[string]string{}
	for _, c := range fixtures {
		suppressed[c.path] = c.src
	}
	for path, ds := range perFile {
		lines := strings.Split(suppressed[path], "\n")
		for i := len(ds) - 1; i >= 0; i-- {
			d := ds[i]
			directive := fmt.Sprintf("//hydralint:ignore %s suppressed by self-test", d.Check)
			lines = append(lines[:d.Line-1], append([]string{directive}, lines[d.Line-1:]...)...)
		}
		suppressed[path] = strings.Join(lines, "\n")
	}
	dir2 := writeModule(t, suppressed)

	res2, err := RunLint(dir2, []string{"./..."}, nil, true)
	if err != nil {
		t.Fatalf("RunLint (suppressed): %v", err)
	}
	if len(res2.Diags) != 0 {
		t.Errorf("ignore directives did not silence findings: %v", res2.Diags)
	}
}

func TestChecksFlagRestrictsRun(t *testing.T) {
	files := map[string]string{}
	for _, c := range fixtures {
		files[c.path] = c.src
	}
	dir := writeModule(t, files)

	res, err := RunLint(dir, []string{"./..."}, []string{"clock-discipline"}, true)
	if err != nil {
		t.Fatalf("RunLint: %v", err)
	}
	diags := res.Diags
	if len(diags) != 2 {
		t.Fatalf("clock-discipline-only run: %d findings, want 2 (c1, c2): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Check != "clock-discipline" {
			t.Errorf("unexpected check in restricted run: %+v", d)
		}
	}
}

// TestResolveCheckSelection covers the -checks grammar: names run, -names
// skip, "all" expands, pure-negation spec means all-minus-skipped, the full
// registry collapses to nil (a full run with stale-suppression armed), and
// empty or unknown selections are errors.
func TestResolveCheckSelection(t *testing.T) {
	if got, err := resolveCheckSelection(""); err != nil || got != nil {
		t.Errorf("empty spec = %v, %v; want nil, nil", got, err)
	}
	if got, err := resolveCheckSelection("all"); err != nil || got != nil {
		t.Errorf("all = %v, %v; want nil, nil", got, err)
	}

	got, err := resolveCheckSelection("clock-discipline, bounded-spin")
	if err != nil {
		t.Fatalf("positive selection: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("positive selection = %v, want 2 names", got)
	}

	got, err = resolveCheckSelection("-bounded-spin")
	if err != nil {
		t.Fatalf("negation selection: %v", err)
	}
	if len(got) != len(allChecks)-1 {
		t.Errorf("-bounded-spin selected %d checks, want %d", len(got), len(allChecks)-1)
	}
	for _, name := range got {
		if name == "bounded-spin" {
			t.Error("-bounded-spin did not skip bounded-spin")
		}
	}

	// A skip cancels an explicit run of the same name.
	if _, err := resolveCheckSelection("bounded-spin,-bounded-spin"); err == nil {
		t.Error("self-cancelling selection did not error")
	}
	if _, err := resolveCheckSelection("no-such-check"); err == nil {
		t.Error("unknown check name did not error")
	}
	if _, err := resolveCheckSelection("-no-such-check"); err == nil {
		t.Error("unknown skipped check name did not error")
	}

	// all,-name: the documented way to run a full sweep minus one pass.
	got, err = resolveCheckSelection("all,-stale-suppression")
	if err != nil {
		t.Fatalf("all,-stale-suppression: %v", err)
	}
	if len(got) != len(allChecks)-1 {
		t.Errorf("all,-stale-suppression = %d checks, want %d", len(got), len(allChecks)-1)
	}
}

// TestSuppressionCensusAndBudget covers the ratchet: the census counts only
// comments that start with a marker, and checkBudget fails on growth,
// notes shrinkage, and accepts equality.
func TestSuppressionCensusAndBudget(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/b1/b1.go": `package b1

import "time"

// The prose mention of hydralint:ignore below must not count; only the
// leading directives do.

//hydralint:ignore clock-discipline startup banner timestamp
func Banner() int64 { return time.Now().UnixNano() }

// Handoff returns holding its lock by contract (fake, for the census).
//
// hydralint:holds
func Handoff() {}
`,
	})
	res, err := RunLint(dir, []string{"./..."}, nil, true)
	if err != nil {
		t.Fatalf("RunLint: %v", err)
	}
	got := res.Suppressions
	bannerKey := ignoreKey{Check: "clock-discipline", Pkg: "hydradb/internal/b1", Symbol: "Banner"}
	want := SuppressionCounts{Ignore: map[ignoreKey]int{bannerKey: 1}, Holds: 1}
	if !reflect.DeepEqual(got.Ignore, want.Ignore) || got.Holds != want.Holds ||
		got.Aliases != want.Aliases || got.Plainread != want.Plainread {
		t.Fatalf("census = %+v, want %+v", got, want)
	}

	if fails, _ := checkBudget(got, want); len(fails) != 0 {
		t.Errorf("equal budget must pass, got failures: %v", fails)
	}
	if fails, _ := checkBudget(got, SuppressionCounts{Ignore: map[ignoreKey]int{}, Holds: 1}); len(fails) != 1 {
		t.Errorf("unknown ignore key must fail once, got: %v", fails)
	}
	loose := SuppressionCounts{Ignore: map[ignoreKey]int{bannerKey: 5}, Holds: 1}
	if fails, notes := checkBudget(got, loose); len(fails) != 0 || len(notes) != 1 {
		t.Errorf("loose budget: fails=%v notes=%v, want 0 fails / 1 note", fails, notes)
	}

	// parseBudget round-trips formatBudget.
	path := filepath.Join(t.TempDir(), ".hydralint-budget")
	if err := os.WriteFile(path, []byte(formatBudget(got)), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := parseBudget(path)
	if err != nil {
		t.Fatalf("parseBudget: %v", err)
	}
	if back.legacy {
		t.Errorf("formatBudget output parsed as legacy v1")
	}
	if !reflect.DeepEqual(back.Ignore, got.Ignore) || back.Holds != got.Holds {
		t.Errorf("round trip = %+v, want %+v", back, got)
	}
}

// TestBudgetRatchetEdgeCases pins the behaviors the keyed ratchet exists for:
// a suppression that moves between files under the same symbol is free, a
// renamed check shows up as an uncovered key and fails, a version-1 baseline
// still compares by total, and a missing baseline file is an error rather
// than a silently-passing ratchet.
func TestBudgetRatchetEdgeCases(t *testing.T) {
	key := func(check, sym string) ignoreKey {
		return ignoreKey{Check: check, Pkg: "hydradb/internal/kv", Symbol: sym}
	}

	t.Run("moved across files", func(t *testing.T) {
		// Same check+package+symbol, different file: the census has no file
		// axis at all, so the key is identical and the ratchet holds.
		baseline := SuppressionCounts{Ignore: map[ignoreKey]int{key("region-bounds", "(*Store).Put"): 1}}
		current := SuppressionCounts{Ignore: map[ignoreKey]int{key("region-bounds", "(*Store).Put"): 1}}
		if fails, notes := checkBudget(current, baseline); len(fails) != 0 || len(notes) != 0 {
			t.Errorf("moved suppression: fails=%v notes=%v, want none", fails, notes)
		}
	})

	t.Run("rule renamed", func(t *testing.T) {
		baseline := SuppressionCounts{Ignore: map[ignoreKey]int{key("region-bounds", "(*Store).Put"): 1}}
		current := SuppressionCounts{Ignore: map[ignoreKey]int{key("bounds", "(*Store).Put"): 1}}
		fails, notes := checkBudget(current, baseline)
		if len(fails) != 1 || !strings.Contains(fails[0], "bounds") {
			t.Errorf("renamed rule must fail as an uncovered key, got fails=%v", fails)
		}
		// The old key now counts zero against a baseline of one — a
		// tightening note, not a failure.
		if len(notes) != 1 {
			t.Errorf("renamed rule: notes=%v, want the stale old key noted", notes)
		}
	})

	t.Run("legacy v1 baseline", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), ".hydralint-budget")
		if err := os.WriteFile(path, []byte("ignore 2\nholds 0\naliases 0\nplainread 0\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		baseline, err := parseBudget(path)
		if err != nil {
			t.Fatalf("parseBudget(v1): %v", err)
		}
		if !baseline.legacy || baseline.legacyIgnore != 2 {
			t.Fatalf("v1 parse = %+v, want legacy total 2", baseline)
		}
		within := SuppressionCounts{Ignore: map[ignoreKey]int{key("x", "A"): 1, key("y", "B"): 1}}
		if fails, _ := checkBudget(within, baseline); len(fails) != 0 {
			t.Errorf("v1 total met: fails=%v, want none", fails)
		}
		over := SuppressionCounts{Ignore: map[ignoreKey]int{key("x", "A"): 3}}
		if fails, _ := checkBudget(over, baseline); len(fails) != 1 {
			t.Errorf("v1 total exceeded: fails=%v, want one", fails)
		}
	})

	t.Run("budget file missing", func(t *testing.T) {
		if _, err := parseBudget(filepath.Join(t.TempDir(), "no-such-budget")); err == nil {
			t.Error("parseBudget on a missing file must error, got nil")
		}
	})

	t.Run("malformed keyed line", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), ".hydralint-budget")
		if err := os.WriteFile(path, []byte("version 2\nignore region-bounds hydradb/internal/kv 1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := parseBudget(path); err == nil {
			t.Error("parseBudget on a 4-field ignore line must error, got nil")
		}
	})
}

// TestEmitters validates the -json and SARIF output shapes.
func TestEmitters(t *testing.T) {
	diags := []Diagnostic{
		{File: "internal/a/a.go", Line: 3, Col: 2, Check: "layout", Msg: "boom"},
	}

	var jbuf strings.Builder
	if err := writeJSON(&jbuf, diags); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var round jsonReport
	if err := json.Unmarshal([]byte(jbuf.String()), &round); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, jbuf.String())
	}
	if round.Version != jsonSchemaVersion {
		t.Errorf("json envelope version = %d, want %d", round.Version, jsonSchemaVersion)
	}
	if len(round.Findings) != 1 || round.Findings[0] != diags[0] {
		t.Errorf("json round trip = %+v, want %+v", round.Findings, diags)
	}
	jbuf.Reset()
	if err := writeJSON(&jbuf, nil); err != nil {
		t.Fatal(err)
	}
	var empty jsonReport
	if err := json.Unmarshal([]byte(jbuf.String()), &empty); err != nil {
		t.Fatalf("empty json output does not parse: %v", err)
	}
	if empty.Findings == nil || len(empty.Findings) != 0 {
		t.Errorf("empty run must emit findings: [], got %q", jbuf.String())
	}

	var sbuf strings.Builder
	if err := writeSARIF(&sbuf, diags); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(sbuf.String()), &log); err != nil {
		t.Fatalf("sarif output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("sarif envelope wrong: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "hydralint" || len(run.Tool.Driver.Rules) != len(allChecks) {
		t.Errorf("driver = %q with %d rules, want hydralint with %d",
			run.Tool.Driver.Name, len(run.Tool.Driver.Rules), len(allChecks))
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	r := run.Results[0]
	loc := r.Locations[0].PhysicalLocation
	if r.RuleID != "layout" || r.Level != "error" ||
		loc.ArtifactLocation.URI != "internal/a/a.go" || loc.Region.StartLine != 3 {
		t.Errorf("sarif result wrong: %+v", r)
	}
	if r.PartialFingerprints["hydralintFinding/v1"] == "" {
		t.Errorf("sarif result missing partial fingerprint: %+v", r)
	}
	// The fingerprint is nominal: shifting the finding's position must not
	// change it, while changing the message must.
	moved := diags[0]
	moved.File, moved.Line = "internal/a/b.go", 99
	if fingerprint(moved) != fingerprint(diags[0]) {
		t.Errorf("fingerprint changed when only the position moved")
	}
	reworded := diags[0]
	reworded.Msg = "different"
	if fingerprint(reworded) == fingerprint(diags[0]) {
		t.Errorf("fingerprint identical across different messages")
	}

	// Spec-attributed findings carry a second fingerprint keyed on the spec
	// name instead of the check name, so code-scanning dedup survives a pass
	// rename; non-spec findings must not grow one.
	if _, ok := r.PartialFingerprints["hydralintFinding/v2"]; ok {
		t.Errorf("non-spec finding must not carry a spec fingerprint: %+v", r)
	}
	specd := Diagnostic{
		File: "internal/kv/store.go", Line: 9, Col: 1,
		Check: "spec-order", Spec: "kv-guardian", Pkg: "hydradb/internal/kv",
		Symbol: "(*Store).Put", Msg: "boom",
	}
	sbuf.Reset()
	if err := writeSARIF(&sbuf, []Diagnostic{specd}); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	var slog sarifLog
	if err := json.Unmarshal([]byte(sbuf.String()), &slog); err != nil {
		t.Fatalf("sarif output does not parse: %v", err)
	}
	sres := slog.Runs[0].Results[0]
	if sres.PartialFingerprints["hydralintFinding/v2"] == "" {
		t.Errorf("spec-attributed finding missing spec fingerprint: %+v", sres)
	}
	renamed := specd
	renamed.Check = "publication-order"
	if specFingerprint(renamed) != specFingerprint(specd) {
		t.Errorf("spec fingerprint changed across a pass rename")
	}
	otherSpec := specd
	otherSpec.Spec = "mailbox-ring"
	if specFingerprint(otherSpec) == specFingerprint(specd) {
		t.Errorf("spec fingerprint identical across different specs")
	}
}

// TestRepoIsClean is the dogfooding gate: the repository this linter ships
// in must satisfy its own checks.
func TestRepoIsClean(t *testing.T) {
	res, err := RunLint("../..", []string{"./..."}, nil, true)
	if err != nil {
		t.Fatalf("RunLint on repo: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("repo finding: %s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Msg, d.Check)
	}
}

// copyRepoGoTree clones the repo's Go sources (and go.mod) into a temp dir so
// a test can deliberately corrupt a file and lint the result.
func copyRepoGoTree(t *testing.T) string {
	t.Helper()
	dst := t.TempDir()
	root := filepath.Clean("../..")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if ext := filepath.Ext(path); ext != ".go" && ext != ".mod" && ext != ".json" {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, src, 0o644)
	})
	if err != nil {
		t.Fatalf("copy repo: %v", err)
	}
	return dst
}

// TestFootprintDriftFailsLint desyncs the checked-in modelcheck footprints —
// renaming the word-area entry the guardian and mailbox models declare — and
// asserts the model-conformance pass fails the drifted tree in both
// directions: the real atomic word becomes undeclared, the renamed one stale.
func TestFootprintDriftFailsLint(t *testing.T) {
	root := copyRepoGoTree(t)
	fp := filepath.Join(root, "internal", "modelcheck", "footprint.go")
	src, err := os.ReadFile(fp)
	if err != nil {
		t.Fatal(err)
	}
	const real, bogus = `"hydradb/internal/arena.WordArea.words[]"`, `"hydradb/internal/arena.WordArea.retired[]"`
	drifted := strings.ReplaceAll(string(src), real, bogus)
	if drifted == string(src) {
		t.Fatalf("footprint.go no longer declares %s; update this test's drift target", real)
	}
	if err := os.WriteFile(fp, []byte(drifted), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := RunLint(root, []string{"./..."}, []string{"model-conformance"}, true)
	if err != nil {
		t.Fatalf("RunLint on drifted tree: %v", err)
	}
	var undeclared, stale, mailbox int
	for _, d := range res.Diags {
		if d.Check != "model-conformance" {
			t.Errorf("unexpected %s finding: %+v", d.Check, d)
			continue
		}
		if strings.Contains(d.Msg, "is not declared in any modelcheck footprint") {
			undeclared++
		}
		if strings.Contains(d.Msg, "the declaration is stale") {
			stale++
		}
		if strings.Contains(d.Msg, "mailbox") {
			mailbox++
		}
	}
	if undeclared == 0 {
		t.Error("drifted footprint produced no undeclared-word finding")
	}
	if stale == 0 {
		t.Error("drifted footprint produced no stale-declaration finding")
	}
	if mailbox == 0 {
		t.Error("no finding names the mailbox model whose footprint drifted")
	}
}

// TestSpecOrderGolden pins the spec-order flow pass to the exact findings
// the retired hardcoded publication-order pass produced on the pb fixtures
// (captured verbatim from the pre-refactor binary before it was deleted):
// the move to the spec-driven engine must not lose, move, or reword a
// single finding.
func TestSpecOrderGolden(t *testing.T) {
	files := map[string]string{}
	for _, c := range fixtures {
		if strings.HasPrefix(c.path, "internal/pb") {
			files[c.path] = c.src
		}
	}
	dir := writeModule(t, files)

	res, err := RunLint(dir, []string{"./..."}, []string{"spec-order"}, true)
	if err != nil {
		t.Fatalf("RunLint: %v", err)
	}
	want := []Diagnostic{
		{
			File: "internal/pb1/pb1.go", Line: 18, Col: 2,
			Check: "spec-order", Pkg: "hydradb/internal/pb1", Symbol: "(*Shard).Put",
			Msg: "store into region memory after the item was published at line 17; sequence all payload writes before the release store, or store the hydralint:unpublish constant first",
		},
		{
			File: "internal/pb4/pb4.go", Line: 19, Col: 2,
			Check: "spec-order", Pkg: "hydradb/internal/pb4", Symbol: "(*Box).Deliver",
			Msg: "copy into the payload after the indicator store in a hydralint:publishes function; the payload must be complete before the indicator is released",
		},
	}
	got := make([]Diagnostic, len(res.Diags))
	for i, d := range res.Diags {
		d.File = filepath.ToSlash(d.File)
		got[i] = d
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spec-order drifted from the publication-order golden:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestReadmeSyncChecksTable keeps the README check table generated: the
// exact markdown `hydralint -listchecks` prints must appear verbatim in
// README.md, so adding or rewording a check forces the docs to follow.
func TestReadmeSyncChecksTable(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	table := checkTableMarkdown()
	if !strings.Contains(string(src), table) {
		t.Errorf("README.md check table is out of date; paste the output of `hydralint -listchecks`:\n%s", table)
	}
}
