// Command hydra-ycsb drives a live (non-simulated) in-process HydraDB
// cluster with a pre-generated YCSB workload and reports wall-clock
// throughput, latency and pointer-cache statistics — the live counterpart
// of the virtual-testbed figures, and the tool used to calibrate the
// simulator's shard-side cost constants.
//
// Example:
//
//	hydra-ycsb -records 100000 -ops 500000 -read 90 -dist zipfian -clients 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"hydradb"
	"hydradb/internal/stats"
	"hydradb/internal/ycsb"
)

func main() {
	var (
		records  = flag.Int64("records", 100_000, "records to preload")
		ops      = flag.Int("ops", 500_000, "operations to run")
		readPct  = flag.Int("read", 90, "GET percentage")
		distName = flag.String("dist", "zipfian", "zipfian | uniform | scrambled | latest")
		clients  = flag.Int("clients", 4, "concurrent client goroutines")
		shards   = flag.Int("shards", 4, "shards")
		noRead   = flag.Bool("no-rdma-read", false, "disable the one-sided GET path")
		sendRecv = flag.Bool("send-recv", false, "two-sided transport baseline")
		seed     = flag.Int64("seed", 20150415, "workload seed")
		loadFile = flag.String("load", "", "replay a pre-generated workload file (see cmd/ycsbgen)")
	)
	flag.Parse()

	var dist ycsb.Distribution
	switch *distName {
	case "zipfian":
		dist = ycsb.Zipfian
	case "uniform":
		dist = ycsb.Uniform
	case "scrambled":
		dist = ycsb.ScrambledZipfian
	case "latest":
		dist = ycsb.Latest
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *distName)
		os.Exit(2)
	}

	var w *ycsb.Workload
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w, err = ycsb.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		*records = w.Spec.Records
		fmt.Printf("replaying %s: %d ops over %d records\n", *loadFile, len(w.Requests), *records)
	} else {
		fmt.Printf("generating %d-op %d%%GET %s workload over %d records...\n",
			*ops, *readPct, dist, *records)
		var err error
		w, err = ycsb.Generate(ycsb.StandardSpec(*records, *ops, *readPct, dist, *seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	opts := hydradb.DefaultOptions()
	opts.ShardsPerMachine = *shards
	opts.DisableRDMARead = *noRead
	opts.SendRecv = *sendRecv
	opts.ArenaBytesPerShard = 256 << 20
	opts.MaxItemsPerShard = int(*records)*2 + *ops
	db, err := hydradb.Start(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()

	// Load phase.
	loader := db.NewClient()
	t0 := time.Now()
	for i := int64(0); i < *records; i++ {
		if err := loader.Put(w.Key(i), w.Value()); err != nil {
			fmt.Fprintf(os.Stderr, "load %d: %v\n", i, err)
			os.Exit(1)
		}
	}
	fmt.Printf("loaded %d records in %v\n", *records, time.Since(t0).Round(time.Millisecond))

	// Run phase: clients split the pre-generated stream round-robin.
	var wg sync.WaitGroup
	getH := make([]*stats.Histogram, *clients)
	updH := make([]*stats.Histogram, *clients)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		getH[c], updH[c] = stats.NewHistogram(), stats.NewHistogram()
		cli := db.NewClient()
		go func(c int, cli *hydradb.Client, gh, uh *stats.Histogram) {
			defer wg.Done()
			keyBuf := make([]byte, w.Spec.KeyLen)
			for i := c; i < len(w.Requests); i += *clients {
				req := w.Requests[i]
				key := w.KeyInto(keyBuf, req.KeyIdx)
				t := time.Now()
				switch req.Op {
				case ycsb.OpRead:
					if _, err := cli.Get(key); err != nil && err != hydradb.ErrNotFound {
						fmt.Fprintf(os.Stderr, "get: %v\n", err)
						return
					}
					gh.Record(int64(time.Since(t)))
				default:
					if err := cli.Put(key, w.Value()); err != nil {
						fmt.Fprintf(os.Stderr, "put: %v\n", err)
						return
					}
					uh.Record(int64(time.Since(t)))
				}
			}
		}(c, cli, getH[c], updH[c])
	}
	wg.Wait()
	elapsed := time.Since(start)

	gets, upds := stats.NewHistogram(), stats.NewHistogram()
	for c := 0; c < *clients; c++ {
		gets.Merge(getH[c])
		upds.Merge(updH[c])
	}
	total := gets.Count() + upds.Count()
	fmt.Printf("\n%d ops in %v — %.0f ops/s wall-clock\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("GET:    %v\n", gets.Summarize())
	if upds.Count() > 0 {
		fmt.Printf("UPDATE: %v\n", upds.Summarize())
	}
	srv := db.Stats()
	fmt.Printf("server: message-GETs=%d inserts=%d updates=%d reclaims=%d\n",
		srv.Gets, srv.Inserts, srv.Updates, srv.Reclaims)
	fmt.Println("note: wall-clock numbers on this host serialize on available cores;")
	fmt.Println("use cmd/hydra-bench for the paper's multi-machine figures.")
}
