package simcluster

import (
	"fmt"

	"hydradb/internal/baselines"
	"hydradb/internal/sim"
	"hydradb/internal/stats"
	"hydradb/internal/ycsb"
)

// BaselineKind selects a comparison system (Fig. 9).
type BaselineKind int

// Baselines.
const (
	KindMemcached BaselineKind = iota
	KindRedis
	KindRAMCloud
)

// String names the baseline with the paper's version tags.
func (k BaselineKind) String() string {
	switch k {
	case KindMemcached:
		return "Memcached(IPoIB)"
	case KindRedis:
		return "Redis(IPoIB)"
	case KindRAMCloud:
		return "RAMCloud(IB)"
	default:
		return fmt.Sprintf("Baseline(%d)", int(k))
	}
}

// BaselineConfig describes one baseline run on a single server machine
// (matching the paper's single-server comparison).
type BaselineConfig struct {
	Kind           BaselineKind
	Clients        int
	ClientMachines int
	Workload       *ycsb.Workload
	Cost           CostModel
	Seed           int64
}

// BaselineSim runs a baseline store under the same testbed model.
type BaselineSim struct {
	cfg     BaselineConfig
	eng     *sim.Engine
	server  *machine
	clients []*simClient

	// architecture resources
	workers   *sim.Resource   // memcached worker pool / ramcloud workers
	dispatch  *sim.Resource   // ramcloud dispatch thread
	instances []*sim.Resource // redis event loops

	mc *baselines.MemcachedLike
	rd *baselines.RedisLike
	rc *baselines.RAMCloudLike

	nextOp    int
	completed int64
	getHist   *stats.Histogram
	updHist   *stats.Histogram
}

// NewBaselineSim builds and preloads a baseline deployment.
func NewBaselineSim(cfg BaselineConfig) (*BaselineSim, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("simcluster: workload required")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 50
	}
	if cfg.ClientMachines <= 0 {
		cfg.ClientMachines = 5
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	b := &BaselineSim{
		cfg:     cfg,
		eng:     sim.NewEngine(cfg.Seed),
		getHist: stats.NewHistogram(),
		updHist: stats.NewHistogram(),
	}
	b.server = &machine{id: 0, nic: sim.NewResource(b.eng, "server-nic", 1)}
	clientMachines := make([]*machine, cfg.ClientMachines)
	for i := range clientMachines {
		clientMachines[i] = &machine{id: i + 1, nic: sim.NewResource(b.eng, fmt.Sprintf("cli-nic-%d", i), 1)}
	}
	for i := 0; i < cfg.Clients; i++ {
		b.clients = append(b.clients, &simClient{id: i, m: clientMachines[i%len(clientMachines)]})
	}

	c := &cfg.Cost
	switch cfg.Kind {
	case KindMemcached:
		b.workers = sim.NewResource(b.eng, "mc-workers", c.MCWorkers)
		b.mc = baselines.NewMemcachedLike(1024)
	case KindRedis:
		b.rd = baselines.NewRedisLike(c.RedisShards)
		for i := 0; i < c.RedisShards; i++ {
			b.instances = append(b.instances, sim.NewResource(b.eng, fmt.Sprintf("redis-%d", i), 1))
		}
	case KindRAMCloud:
		b.dispatch = sim.NewResource(b.eng, "rc-dispatch", 1)
		b.workers = sim.NewResource(b.eng, "rc-workers", c.RCWorkers)
		b.rc = baselines.NewRAMCloudLike(8 << 20)
	}

	// Preload.
	wl := cfg.Workload
	val := wl.Value()
	for i := int64(0); i < wl.Spec.Records; i++ {
		key := wl.Key(i)
		switch cfg.Kind {
		case KindMemcached:
			b.mc.Set(key, val)
		case KindRedis:
			b.rd.Set(b.rd.InstanceOf(key), key, val)
		case KindRAMCloud:
			b.rc.Set(key, val)
		}
	}
	return b, nil
}

// tcpNicCost is the per-message NIC+stack service under IPoIB.
func (b *BaselineSim) tcpNicCost(bytes int) int64 {
	c := &b.cfg.Cost
	return c.NICOpNs + int64(float64(bytes)*c.TCPByteNs)
}

// tcpHop models an IPoIB message: NIC service both ends, wire, plus the
// kernel/protocol latency that dominates the TCP baselines.
func (b *BaselineSim) tcpHop(a, to *machine, bytes int, cont func()) {
	c := &b.cfg.Cost
	cost := b.tcpNicCost(bytes)
	rawHop(b.eng, a, to, cost, cost, c.WireNs+c.TCPExtraNs, cont)
}

// verbsHop is the native InfiniBand Send/Recv transport (RAMCloud).
func (b *BaselineSim) verbsHop(a, to *machine, bytes int, cont func()) {
	c := &b.cfg.Cost
	cost := c.NICOpNs + int64(float64(bytes)*c.NICByteNs)
	rawHop(b.eng, a, to, cost, cost, c.WireNs, cont)
}

// Run executes the workload and reports the result.
func (b *BaselineSim) Run(label string) Result {
	for _, cl := range b.clients {
		cl := cl
		b.eng.After(int64(cl.id), func() { b.step(cl) })
	}
	b.eng.Run()
	r := finalize(label, b.completed, b.eng.Now(), b.getHist, b.updHist)
	r.NICUtil = b.server.nic.Utilization()
	switch b.cfg.Kind {
	case KindMemcached, KindRAMCloud:
		r.MaxShardUtil = b.workers.Utilization()
	case KindRedis:
		for _, inst := range b.instances {
			if u := inst.Utilization(); u > r.MaxShardUtil {
				r.MaxShardUtil = u
			}
		}
	}
	return r
}

func (b *BaselineSim) step(cl *simClient) {
	if b.nextOp >= len(b.cfg.Workload.Requests) {
		return
	}
	req := b.cfg.Workload.Requests[b.nextOp]
	b.nextOp++
	key := string(b.cfg.Workload.KeyInto(cl.keyBuf[:], req.KeyIdx))
	start := b.eng.Now()
	isGet := req.Op == ycsb.OpRead
	b.dispatchOp(cl, key, isGet, start)
}

func (b *BaselineSim) dispatchOp(cl *simClient, key string, isGet bool, start int64) {
	c := &b.cfg.Cost
	wl := b.cfg.Workload
	reqBytes := 40 + len(key)
	if !isGet {
		reqBytes += wl.Spec.ValueLen
	}
	respBytes := 40
	if isGet {
		respBytes += wl.Spec.ValueLen
	}
	finish := func() {
		if isGet {
			b.getHist.Record(b.eng.Now() - start)
		} else {
			b.updHist.Record(b.eng.Now() - start)
		}
		b.completed++
		b.eng.After(c.ClientThinkNs, func() { b.step(cl) })
	}
	apply := func() {
		if isGet {
			b.applyGet(key)
		} else {
			b.applySet(key)
		}
	}
	switch b.cfg.Kind {
	case KindMemcached:
		b.tcpHop(cl.m, b.server, reqBytes, func() {
			b.workers.Acquire(c.KernelNs+c.MCWorkerNs, func() {
				apply()
				b.tcpHop(b.server, cl.m, respBytes, finish)
			})
		})
	case KindRedis:
		inst := b.rd.InstanceOf([]byte(key))
		b.tcpHop(cl.m, b.server, reqBytes, func() {
			b.instances[inst].Acquire(c.KernelNs+c.RedisProcNs, func() {
				apply()
				b.tcpHop(b.server, cl.m, respBytes, finish)
			})
		})
	case KindRAMCloud:
		b.verbsHop(cl.m, b.server, reqBytes, func() {
			b.dispatch.Acquire(c.RCDispatchNs, func() {
				b.workers.Acquire(c.RCWorkerNs, func() {
					apply()
					b.verbsHop(b.server, cl.m, respBytes, func() {
						b.eng.After(c.SendRecvClientNs, finish)
					})
				})
			})
		})
	}
}

func (b *BaselineSim) applyGet(key string) {
	switch b.cfg.Kind {
	case KindMemcached:
		b.mc.Get([]byte(key))
	case KindRedis:
		b.rd.Get(b.rd.InstanceOf([]byte(key)), []byte(key))
	case KindRAMCloud:
		b.rc.Get([]byte(key))
	}
}

func (b *BaselineSim) applySet(key string) {
	val := b.cfg.Workload.Value()
	switch b.cfg.Kind {
	case KindMemcached:
		b.mc.Set([]byte(key), val)
	case KindRedis:
		b.rd.Set(b.rd.InstanceOf([]byte(key)), []byte(key), val)
	case KindRAMCloud:
		b.rc.Set([]byte(key), val)
	}
}
