// Package rdma simulates the RDMA verbs substrate hydradb runs on in live
// mode: NICs, registered memory regions, and reliably connected queue pairs
// offering one-sided Write/Read and two-sided Send/Recv.
//
// The simulation preserves the four properties HydraDB's protocols depend on
// (paper §4.2):
//
//  1. One-sided operations move data without involving the target CPU: a
//     Write/Read is a direct memory copy performed by the initiator into or
//     out of the target's registered region; no goroutine on the target runs.
//  2. Writes within a QP are delivered in order, and an indicator word
//     published *after* the payload (atomic release store) guarantees the
//     payload is visible to a poller that observed the indicator (atomic
//     acquire load) — the property the indicator-encapsulated message format
//     relies on, made race-free under the Go memory model.
//  3. Two-sided Send/Recv involves the receiver's CPU: messages traverse a
//     channel, paying scheduler wakeup just as interrupt-driven reception
//     pays kernel wakeup.
//  4. NICs are a finite resource: per-NIC op accounting plus an optional
//     ops/sec ceiling and a per-QP-count overhead reproduce the device
//     saturation and connection-scalability effects of §6.3.
//
// Latency injection is optional (zero by default: unit tests run at memory
// speed); the discrete-event simulator models time separately and does not
// use this package's injection.
package rdma

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hydradb/internal/arena"
	"hydradb/internal/invariant"
	"hydradb/internal/stats"
	"hydradb/internal/timing"
)

// Errors returned by fabric operations.
var (
	ErrClosed       = errors.New("rdma: queue pair closed")
	ErrNotConnected = errors.New("rdma: memory region not reachable through this queue pair")
	ErrOutOfBounds  = errors.New("rdma: access outside registered region")
	ErrRevoked      = errors.New("rdma: memory registration revoked")
)

// Config tunes the fabric. The zero value is a valid infinitely fast fabric.
type Config struct {
	// WriteNs / ReadNs / SendNs inject busy-wait latency per one-sided
	// write, one-sided read round trip, and two-sided send.
	WriteNs, ReadNs, SendNs int64
	// NICOpNs is the minimum NIC service time per operation; with N
	// concurrent initiators a NIC admits at most 1e9/NICOpNs ops/sec.
	NICOpNs int64
	// QPThreshold and QPExtraNs model driver connection-scalability: each
	// op pays (qps-QPThreshold)*QPExtraNs extra NIC service when the NIC
	// carries more than QPThreshold queue pairs (§6.3).
	QPThreshold int32
	QPExtraNs   int64
	// Clock is the time base for latency injection and NIC admission; nil
	// selects the shared real clock, timing.Wall(). With the zero latency
	// Config the clock is never consulted, so unit-test fabrics stay fully
	// deterministic regardless of this field.
	Clock timing.Clock
}

// Fabric is a collection of NICs that can be wired together.
type Fabric struct {
	cfg   Config
	clock timing.Clock
	mu    sync.Mutex
	nics  []*NIC

	faultState // chaos hook (see faults.go); zero value = no injection
}

// NewFabric creates a fabric.
func NewFabric(cfg Config) *Fabric {
	clock := cfg.Clock
	if clock == nil {
		clock = timing.Wall()
	}
	return &Fabric{cfg: cfg, clock: clock}
}

// NIC models one RDMA adaptor. All queue pairs and memory regions of a node
// hang off its NIC; collocated processes share it (and its ceilings).
type NIC struct {
	fabric *Fabric
	name   string
	id     int

	qps      atomic.Int32
	nextFree atomic.Int64 // virtual NIC-busy horizon for the ops/sec ceiling

	Ops   stats.Counter
	Bytes stats.Counter
}

// NewNIC adds an adaptor to the fabric.
func (f *Fabric) NewNIC(name string) *NIC {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := &NIC{fabric: f, name: name, id: len(f.nics)}
	f.nics = append(f.nics, n)
	return n
}

// Name reports the NIC name.
func (n *NIC) Name() string { return n.name }

// QPCount reports the live queue pairs on this NIC.
func (n *NIC) QPCount() int32 { return n.qps.Load() }

// serviceNs is the per-op NIC time including connection-count overhead.
func (n *NIC) serviceNs() int64 {
	cfg := &n.fabric.cfg
	s := cfg.NICOpNs
	if cfg.QPExtraNs > 0 {
		if extra := n.qps.Load() - cfg.QPThreshold; extra > 0 {
			s += int64(extra) * cfg.QPExtraNs
		}
	}
	return s
}

// admit charges one op (plus nbytes) against the NIC, blocking (with
// cooperative yielding) when the ops/sec ceiling is exceeded.
func (n *NIC) admit(nbytes int) {
	n.Ops.Inc()
	n.Bytes.Add(int64(nbytes))
	cost := n.serviceNs()
	if cost <= 0 {
		return
	}
	now := n.fabric.clock.Now()
	for {
		nf := n.nextFree.Load()
		start := nf
		if now > start {
			start = now
		}
		if n.nextFree.CompareAndSwap(nf, start+cost) {
			n.fabric.spinUntil(start + cost)
			return
		}
	}
}

// spinUntil busy-waits (cooperatively) until the fabric clock reaches the
// deadline. With a real clock this injects latency; a stalled ManualClock
// must therefore never be combined with nonzero latency configuration.
func (f *Fabric) spinUntil(deadline int64) {
	for f.clock.Now() < deadline {
		runtime.Gosched()
	}
}

func (f *Fabric) spinFor(ns int64) {
	if ns <= 0 {
		return
	}
	f.spinUntil(f.clock.Now() + ns)
}

// MemoryRegion is memory registered with a NIC: a byte area plus the aligned
// word area carrying indicators, guardians and leases (see package arena).
type MemoryRegion struct {
	nic     *NIC
	data    []byte // hydralint:region remotely writable registered bytes
	words   *arena.WordArea
	revoked atomic.Bool
}

// Revoke withdraws the registration: every subsequent one-sided access
// through any queue pair fails with ErrRevoked. This is what a remote peer
// observes when the owning process dies — the mapping is gone and the HCA
// answers with a protection fault, not with frozen bytes. Revoking a region
// does not affect later registrations of the same underlying memory.
func (mr *MemoryRegion) Revoke() { mr.revoked.Store(true) }

// Revoked reports whether the registration was withdrawn.
func (mr *MemoryRegion) Revoked() bool { return mr.revoked.Load() }

// Register registers data and words with the NIC. Either may be nil when a
// region only needs one area.
func (n *NIC) Register(data []byte, words *arena.WordArea) *MemoryRegion {
	return &MemoryRegion{nic: n, data: data, words: words}
}

// Data exposes the byte area to its owner (local access only).
//
// hydralint:region-view
func (mr *MemoryRegion) Data() []byte { return mr.data }

// Words exposes the word area to its owner.
func (mr *MemoryRegion) Words() *arena.WordArea { return mr.words }

// NIC reports the owning adaptor.
func (mr *MemoryRegion) NIC() *NIC { return mr.nic }

// QP is one end of a reliably connected queue pair.
type QP struct {
	local, remote *NIC
	sendCh        chan []byte // toward peer
	recvCh        chan []byte // from peer
	closed        atomic.Bool
	peerClosed    *atomic.Bool
	reorder       reorderBuf // chaos: held-back send (see faults.go)
}

// Connect wires two NICs together and returns the two QP ends.
func Connect(a, b *NIC, depth int) (*QP, *QP) {
	if depth <= 0 {
		depth = 16
	}
	ab := make(chan []byte, depth)
	ba := make(chan []byte, depth)
	qa := &QP{local: a, remote: b, sendCh: ab, recvCh: ba}
	qb := &QP{local: b, remote: a, sendCh: ba, recvCh: ab}
	qa.peerClosed = &qb.closed
	qb.peerClosed = &qa.closed
	a.qps.Add(1)
	b.qps.Add(1)
	return qa, qb
}

// Close tears down this end. Double close is safe.
func (qp *QP) Close() {
	if qp.closed.CompareAndSwap(false, true) {
		qp.local.qps.Add(-1)
		qp.remote.qps.Add(-1)
	}
}

// Closed reports whether either end is closed.
func (qp *QP) Closed() bool { return qp.closed.Load() || qp.peerClosed.Load() }

// LocalNIC and RemoteNIC expose endpoints.
func (qp *QP) LocalNIC() *NIC { return qp.local }

// RemoteNIC reports the peer's adaptor.
func (qp *QP) RemoteNIC() *NIC { return qp.remote }

// Depth reports the queue depth the pair was connected with — the number of
// sends that may be outstanding before Send blocks.
func (qp *QP) Depth() int { return cap(qp.sendCh) }

func (qp *QP) checkTarget(mr *MemoryRegion) error {
	if qp.Closed() {
		return ErrClosed
	}
	if mr.nic != qp.remote {
		return ErrNotConnected
	}
	if mr.revoked.Load() {
		return ErrRevoked
	}
	return nil
}

// fault consults the fabric's fault hook for a one-sided verb, applying any
// delay. drop=true means the op must silently do nothing (reads map drop to
// ErrInjected — see faults.go).
//
// hydralint:hotpath
func (qp *QP) fault(verb Verb, nbytes int) (drop bool, err error) {
	out := qp.local.fabric.faultFor(verb, qp.local, qp.remote, nbytes)
	if out.DelayNs > 0 {
		qp.local.fabric.spinFor(out.DelayNs)
	}
	if out.Err != nil {
		return false, out.Err
	}
	if out.Drop {
		if verb == VerbRead {
			return false, ErrInjected
		}
		return true, nil
	}
	return false, nil
}

// WriteBytes performs a one-sided RDMA Write of src into the remote region
// at off. The target CPU is not involved.
//
// hydralint:offset-sink off
func (qp *QP) WriteBytes(mr *MemoryRegion, off int, src []byte) error {
	if err := qp.checkTarget(mr); err != nil {
		return err
	}
	if off < 0 || off+len(src) > len(mr.data) {
		return ErrOutOfBounds
	}
	if drop, err := qp.fault(VerbWrite, len(src)); err != nil {
		return err
	} else if drop {
		return nil
	}
	qp.local.admit(len(src))
	qp.remote.admit(len(src))
	qp.local.fabric.spinFor(qp.local.fabric.cfg.WriteNs)
	copy(mr.data[off:], src)
	return nil
}

// WriteWord performs a one-sided write of a single word (atomic publication).
//
// hydralint:offset-sink wordIdx
func (qp *QP) WriteWord(mr *MemoryRegion, wordIdx int, val uint64) error {
	if err := qp.checkTarget(mr); err != nil {
		return err
	}
	if mr.words == nil || wordIdx < 0 || wordIdx >= mr.words.Len() {
		return ErrOutOfBounds
	}
	if drop, err := qp.fault(VerbWrite, 8); err != nil {
		return err
	} else if drop {
		return nil
	}
	qp.local.admit(8)
	qp.remote.admit(8)
	qp.local.fabric.spinFor(qp.local.fabric.cfg.WriteNs)
	if invariant.Enabled {
		mr.words.Validate(wordIdx, val)
	}
	mr.words.Store(wordIdx, val)
	return nil
}

// WriteIndicated posts one RDMA Write carrying an indicator-encapsulated
// message: the payload bytes land first, then tail and head indicator words
// are published in order. The in-order delivery of RC RDMA Write makes this
// a single posted work request on real hardware; it is charged as one NIC op.
//
// hydralint:offset-sink off tailIdx headIdx
// hydralint:publishes
func (qp *QP) WriteIndicated(mr *MemoryRegion, off int, body []byte, tailIdx, headIdx int, indicator uint64) error {
	if err := qp.checkTarget(mr); err != nil {
		return err
	}
	if off < 0 || off+len(body) > len(mr.data) {
		return ErrOutOfBounds
	}
	if mr.words == nil || tailIdx < 0 || tailIdx >= mr.words.Len() || headIdx < 0 || headIdx >= mr.words.Len() {
		return ErrOutOfBounds
	}
	if drop, err := qp.fault(VerbWrite, len(body)+16); err != nil {
		return err
	} else if drop {
		return nil
	}
	qp.local.admit(len(body) + 16)
	qp.remote.admit(len(body) + 16)
	qp.local.fabric.spinFor(qp.local.fabric.cfg.WriteNs)
	copy(mr.data[off:], body)
	mr.words.Store(tailIdx, indicator)
	mr.words.Store(headIdx, indicator)
	return nil
}

// Read performs a one-sided RDMA Read: it copies n bytes from the remote
// region at off into dst and atomically loads the requested words, all in a
// single round trip with one latency charge. Returns the number of bytes
// copied and the word values.
//
// hydralint:offset-sink off wordIdxs
func (qp *QP) Read(mr *MemoryRegion, off int, dst []byte, wordIdxs ...int) (int, []uint64, error) {
	var words []uint64
	if len(wordIdxs) > 0 {
		words = make([]uint64, len(wordIdxs))
	}
	n, err := qp.ReadInto(mr, off, dst, words, wordIdxs...)
	if err != nil {
		return 0, nil, err
	}
	return n, words, nil
}

// ReadInto is Read with a caller-provided word buffer: words[i] receives the
// value of wordIdxs[i], so steady-state pollers can reuse one scratch slice
// and keep the one-sided GET path allocation-free. len(words) must be at
// least len(wordIdxs).
//
// hydralint:hotpath
// hydralint:offset-sink off wordIdxs
func (qp *QP) ReadInto(mr *MemoryRegion, off int, dst []byte, words []uint64, wordIdxs ...int) (int, error) {
	if err := qp.checkTarget(mr); err != nil {
		return 0, err
	}
	if off < 0 || off+len(dst) > len(mr.data) {
		return 0, ErrOutOfBounds
	}
	if len(words) < len(wordIdxs) {
		return 0, ErrOutOfBounds
	}
	for _, w := range wordIdxs {
		if mr.words == nil || w < 0 || w >= mr.words.Len() {
			return 0, ErrOutOfBounds
		}
	}
	if _, err := qp.fault(VerbRead, len(dst)); err != nil {
		return 0, err
	}
	qp.local.admit(len(dst))
	qp.remote.admit(len(dst))
	qp.local.fabric.spinFor(qp.local.fabric.cfg.ReadNs)
	n := copy(dst, mr.data[off:off+len(dst)])
	for i, w := range wordIdxs {
		words[i] = mr.words.Load(w)
		if invariant.Enabled {
			mr.words.Validate(w, words[i])
		}
	}
	return n, nil
}

// Send transmits msg two-sided; the receiver's CPU must call Recv. The
// message is copied, so the caller may reuse msg.
func (qp *QP) Send(msg []byte) error {
	if qp.Closed() {
		return ErrClosed
	}
	out := qp.local.fabric.faultFor(VerbSend, qp.local, qp.remote, len(msg))
	if out.DelayNs > 0 {
		qp.local.fabric.spinFor(out.DelayNs)
	}
	if out.Err != nil {
		return out.Err
	}
	if out.Drop {
		return nil
	}
	qp.local.admit(len(msg))
	qp.remote.admit(len(msg))
	qp.local.fabric.spinFor(qp.local.fabric.cfg.SendNs)
	buf := make([]byte, len(msg))
	copy(buf, msg)
	if out.Reorder && qp.reorder.hold(buf) {
		return nil // delivered after the next send on this end
	}
	if err := qp.deliver(buf); err != nil {
		return err
	}
	if out.Duplicate {
		dup := make([]byte, len(buf))
		copy(dup, buf)
		if err := qp.deliver(dup); err != nil {
			return err
		}
	}
	if held := qp.reorder.take(); held != nil {
		return qp.deliver(held)
	}
	return nil
}

// deliver enqueues one already-copied message toward the peer, blocking
// cooperatively when the receiver queue is full and bailing out on close.
func (qp *QP) deliver(buf []byte) error {
	select {
	case qp.sendCh <- buf:
		return nil
	default:
	}
	for {
		if qp.Closed() {
			return ErrClosed
		}
		select {
		case qp.sendCh <- buf:
			return nil
		case <-time.After(time.Millisecond):
		}
	}
}

// Recv blocks for the next message. ok=false means the QP closed.
func (qp *QP) Recv() ([]byte, bool) {
	for {
		select {
		case m := <-qp.recvCh:
			return m, true
		default:
		}
		if qp.Closed() {
			// Drain anything already delivered before reporting closure.
			select {
			case m := <-qp.recvCh:
				return m, true
			default:
				return nil, false
			}
		}
		select {
		case m := <-qp.recvCh:
			return m, true
		case <-time.After(time.Millisecond):
		}
	}
}

// TryRecv polls for a message without blocking.
func (qp *QP) TryRecv() ([]byte, bool) {
	select {
	case m := <-qp.recvCh:
		return m, true
	default:
		return nil, false
	}
}

// String identifies the QP for diagnostics.
func (qp *QP) String() string {
	return fmt.Sprintf("qp{%s->%s}", qp.local.name, qp.remote.name)
}
