package main

// Shared machinery of the v4 liveness passes (goroutine-lifecycle,
// wait-cycle, bounded-spin): nominal resource keys for channels, stop flags,
// mutexes and wait groups; the blocking/yield classification of statements;
// and the line-directive lookup behind the `//hydralint:daemon` and
// `//hydralint:spins` opt-out markers.
//
// Where the safety passes reason about values (what bytes an offset can
// reach), the liveness passes reason about *progress*: which goroutines can
// be made to exit, which blocking operations can be ordered into a cycle,
// which backedges can be taken forever without descheduling. All three share
// the same key space so a channel observed by a spawned goroutine, closed by
// a Stop method, and sent on under a lock is one identity across passes.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// livenessKey renders a channel, flag, mutex or wait-group operand as a
// program-wide identity. Struct fields and package vars key nominally
// ("pkgpath.Type.field", "pkgpath.var" — the mixed-access scheme, so the
// same field is one node no matter which function touches it); locals and
// captured variables key by declaration position, which joins uses across
// the closures of one function but never across functions.
func livenessKey(p *Package, e ast.Expr) (string, bool) {
	e = unparen(e)
	if key, ok := mixedWordID(p, e); ok {
		return key, true
	}
	if id, ok := e.(*ast.Ident); ok {
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			return "local:" + p.Fset.Position(v.Pos()).String() + ":" + v.Name(), true
		}
	}
	return "", false
}

// typedFieldKey renders "<pkg>.<Type>.<field>" for the named struct type of
// expr — the key a callee-side selector on the same type would produce. Used
// to map a channel-typed argument at a spawn site into the callee's key
// space without re-walking the callee.
func typedFieldKey(p *Package, expr ast.Expr, field string) (string, bool) {
	tv, ok := p.Info.Types[unparen(expr)]
	if !ok {
		return "", false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field, true
}

// markedLines collects the lines covered by a `//hydralint:<marker>`
// directive in f: the directive's own line (trailing comment) and the line
// below it (comment above the statement), mirroring ignore-directive
// placement.
func markedLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	var lines map[int]bool
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if _, ok := directiveRest(commentText(c), marker); !ok {
				continue
			}
			if lines == nil {
				lines = map[int]bool{}
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// atomicMethodOn classifies a method call on one of the sync/atomic value
// types (atomic.Bool, atomic.Int64, atomic.Pointer[T], ...). It returns the
// receiver expression and method name.
func atomicMethodOn(p *Package, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	s, isMeth := p.Info.Selections[sel]
	if !isMeth || s.Kind() != types.MethodVal {
		return nil, "", false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// atomicStoreMethods are the sync/atomic methods that publish a new value —
// the trigger side of an atomic stop flag.
func atomicStoreMethod(name string) bool {
	switch name {
	case "Store", "Swap", "CompareAndSwap", "Add", "Or", "And":
		return true
	}
	return false
}

// isYieldCall recognizes the sanctioned descheduling points: runtime.Gosched,
// time.Sleep, the timing package's audited Sleep escape hatch, and
// invariant.SchedPoint (which compiles to a yield under hydramc control).
func isYieldCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch path := pn.Imported().Path(); {
	case path == "runtime" && sel.Sel.Name == "Gosched":
		return true
	case path == "time" && (sel.Sel.Name == "Sleep" || sel.Sel.Name == "After"):
		return true
	case strings.HasSuffix(path, "internal/timing") && sel.Sel.Name == "Sleep":
		return true
	case strings.HasSuffix(path, "internal/invariant") && sel.Sel.Name == "SchedPoint":
		return true
	}
	return false
}

// isWaitGroupMethod reports whether the call is m on a sync.WaitGroup
// receiver (including one embedded), with the receiver expression.
func isWaitGroupMethod(p *Package, call *ast.CallExpr, m string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != m {
		return nil, false
	}
	s, isMeth := p.Info.Selections[sel]
	if !isMeth || s.Kind() != types.MethodVal {
		return nil, false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn {
		return nil, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, false
	}
	t := recv.Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "WaitGroup" {
		return nil, false
	}
	return sel.X, true
}

// isProbeSectionMethod recognizes kv.ReadSlot's BeginProbe/EndProbe — the
// read-plane quiescence sections whose contract is "must never block".
// dir is +1 for BeginProbe, -1 for EndProbe.
func isProbeSectionMethod(p *Package, call *ast.CallExpr) (dir int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, false
	}
	s, isMeth := p.Info.Selections[sel]
	if !isMeth || s.Kind() != types.MethodVal {
		return 0, false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/kv") {
		return 0, false
	}
	switch sel.Sel.Name {
	case "BeginProbe":
		return +1, true
	case "EndProbe":
		return -1, true
	}
	return 0, false
}

// stopNamed reports whether a function name reads as part of a shutdown
// surface: the lifecycle pass accepts a cancellation trigger as provable
// when its enclosing function (or a caller of it) matches.
func stopNamed(name string) bool {
	// Method names come through as "(*pkg.T).M"; take the last component.
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	for _, prefix := range []string{
		"Stop", "Close", "Shutdown", "Kill", "Quiesce", "Halt", "Drain",
		"Teardown", "Cancel", "Wait", "Resign",
	} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// callerIndex builds the reverse call graph over resolvable call sites:
// callee FullName -> the FullNames of functions with a call site into it.
// Calls through function values and interfaces are invisible, which is the
// usual conservative gap — a trigger only reachable through an interface
// needs a daemon marker or a stop-named wrapper.
func callerIndex(prog *Program) map[string]map[string]bool {
	callers := map[string]map[string]bool{}
	for name, info := range prog.funcs {
		fnName := name
		fnInfo := info
		ast.Inspect(fnInfo.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, _, resolved := prog.resolveCallee(fnInfo.Pkg, call)
			if !resolved {
				return true
			}
			key := callee.Obj.FullName()
			set := callers[key]
			if set == nil {
				set = map[string]bool{}
				callers[key] = set
			}
			set[fnName] = true
			return true
		})
	}
	return callers
}

// reachesStopSurface walks the reverse call graph from fn, accepting when it
// reaches a stop-named function or the spawner itself (a trigger fired by
// the function that spawned the goroutine — the join-in-spawner pattern).
func reachesStopSurface(callers map[string]map[string]bool, fn, spawner string) bool {
	seen := map[string]bool{}
	work := []string{fn}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if cur == spawner || stopNamed(cur) {
			return true
		}
		for caller := range callers[cur] {
			if !seen[caller] {
				work = append(work, caller)
			}
		}
	}
	return false
}

// localAliases maps a function's channel-typed locals to the nominal key of
// their initializer, one level deep: `stop, done := r.stopCh, r.doneCh`
// makes close(stop) count against "client.Renewer.stopCh". Shadowing and
// reassignment are not tracked; an alias that is later rebound simply keeps
// its first key (over-approximating triggers, never findings).
func localAliases(p *Package, body *ast.BlockStmt) map[types.Object]string {
	var aliases map[types.Object]string
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil && as.Tok == token.ASSIGN {
				obj = p.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
				continue
			}
			key, renders := mixedWordID(p, unparen(as.Rhs[i]))
			if !renders {
				continue
			}
			if aliases == nil {
				aliases = map[types.Object]string{}
			}
			if _, dup := aliases[obj]; !dup {
				aliases[obj] = key
			}
		}
		return true
	})
	return aliases
}

// keyWithAliases renders e like livenessKey but first consults the enclosing
// function's channel-alias map.
func keyWithAliases(p *Package, aliases map[types.Object]string, e ast.Expr) (string, bool) {
	e = unparen(e)
	if id, ok := e.(*ast.Ident); ok && aliases != nil {
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if key, ok := aliases[obj]; ok {
			return key, true
		}
	}
	return livenessKey(p, e)
}

// selectHasDefault reports whether a select statement can fall through
// without communicating.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// boundedLoop reports whether a for statement is structurally bounded: a
// classic counted loop (post statement advances an induction variable), or a
// condition over a local that the body itself advances (`for handled < depth`
// with handled++ inside). Everything else — `for {}`, `for cond {}` over
// state only other goroutines change — is treated as unbounded.
func boundedLoop(p *Package, fs *ast.ForStmt) bool {
	if fs.Cond == nil {
		return false
	}
	if fs.Post != nil {
		switch fs.Post.(type) {
		case *ast.IncDecStmt, *ast.AssignStmt:
			return true
		}
	}
	// Collect local variables the condition reads.
	condVars := map[types.Object]bool{}
	ast.Inspect(fs.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, isVar := p.Info.Uses[id].(*types.Var); isVar && !v.IsField() {
				condVars[v] = true
			}
		}
		return true
	})
	if len(condVars) == 0 {
		return false
	}
	advanced := false
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if id, ok := unparen(n.X).(*ast.Ident); ok && condVars[p.Info.Uses[id]] {
				advanced = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					obj := p.Info.Uses[id]
					if obj == nil {
						obj = p.Info.Defs[id]
					}
					if condVars[obj] {
						advanced = true
					}
				}
			}
		}
		return true
	})
	return advanced
}
