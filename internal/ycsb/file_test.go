package ycsb

import (
	"bytes"
	"strings"
	"testing"

	"hydradb/internal/testutil"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	w, err := Generate(StandardSpec(1000, 5000, 90, Zipfian, 77))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != w.Spec {
		t.Fatalf("spec mismatch: %+v vs %+v", got.Spec, w.Spec)
	}
	if len(got.Requests) != len(w.Requests) {
		t.Fatalf("request count %d vs %d", len(got.Requests), len(w.Requests))
	}
	for i := range w.Requests {
		if got.Requests[i] != w.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	if !bytes.Equal(got.Value(), w.Value()) {
		t.Fatal("value payload not reconstructed")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input loaded")
	}
	if _, err := Load(strings.NewReader("NOTAWORKLOAD FILE AT ALL\n")); err == nil {
		t.Fatal("bad magic loaded")
	}
	if _, err := Load(strings.NewReader(fileMagic + "{not json\n")); err == nil {
		t.Fatal("bad spec loaded")
	}
	if _, err := Load(strings.NewReader(fileMagic + `{"Records":10,"Operations":1,"ReadProportion":1,"KeyLen":16,"ValueLen":32}` + "\n")); err == nil {
		t.Fatal("truncated body loaded")
	}
}

func TestLoadRejectsTruncatedRequests(t *testing.T) {
	w := testutil.Must1(Generate(StandardSpec(100, 100, 100, Uniform, 1)))
	var buf bytes.Buffer
	testutil.Must(w.Save(&buf))
	b := buf.Bytes()
	if _, err := Load(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Fatal("truncated requests loaded")
	}
	// Corrupt an op byte.
	b2 := append([]byte(nil), b...)
	b2[len(b2)-9] = 0xEE
	if _, err := Load(bytes.NewReader(b2)); err == nil {
		t.Fatal("corrupt op loaded")
	}
}
