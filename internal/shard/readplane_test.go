package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hydradb/internal/kv"
	"hydradb/internal/lease"
	"hydradb/internal/message"
	"hydradb/internal/rdma"
	"hydradb/internal/timing"
)

func testReadPlaneShard(t testing.TB, readers int, policy lease.Policy) (*Shard, *rdma.Fabric) {
	t.Helper()
	f := rdma.NewFabric(rdma.Config{})
	sh := New(Config{
		ID:            9,
		NIC:           f.NewNIC("server"),
		ReaderThreads: readers,
		Store: kv.Config{
			ArenaBytes: 1 << 20,
			MaxItems:   4096,
			Policy:     policy,
			Clock:      timing.Wall(),
		},
	})
	return sh, f
}

// TestReadPlaneServesOps runs the full op mix through a read-plane shard:
// GET hits and misses come back from the readers, mutations and renewals of
// live keys from the fallback path, and the counters prove both planes ran.
func TestReadPlaneServesOps(t *testing.T) {
	sh, f := testReadPlaneShard(t, 2, lease.Policy{})
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)

	put := exchange(t, ep, message.Request{Op: message.OpPut, Seq: 1, Key: []byte("k"), Val: []byte("v")})
	if put.Status != message.StatusOK {
		t.Fatalf("put: %+v", put)
	}
	get := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 2, Key: []byte("k")})
	if get.Status != message.StatusOK || string(get.Val) != "v" {
		t.Fatalf("get: %+v", get)
	}
	if get.Ptr.Zero() || get.Ptr.ShardID != 9 || get.LeaseExp == 0 {
		t.Fatalf("read-plane get must carry pointer+lease for the one-sided path: %+v", get)
	}
	miss := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 3, Key: []byte("absent")})
	if miss.Status != message.StatusNotFound {
		t.Fatalf("miss: %+v", miss)
	}
	renMiss := exchange(t, ep, message.Request{Op: message.OpRenewLease, Seq: 4, Key: []byte("absent")})
	if renMiss.Status != message.StatusNotFound {
		t.Fatalf("renew miss: %+v", renMiss)
	}
	ren := exchange(t, ep, message.Request{Op: message.OpRenewLease, Seq: 5, Key: []byte("k")})
	if ren.Status != message.StatusOK {
		t.Fatalf("renew: %+v", ren)
	}
	del := exchange(t, ep, message.Request{Op: message.OpDelete, Seq: 6, Key: []byte("k")})
	if del.Status != message.StatusOK {
		t.Fatalf("delete: %+v", del)
	}

	snap := sh.Counters.Snapshot()
	if snap.ReadPlaneHits < 3 { // get hit, get miss, renew reject
		t.Fatalf("read plane served %d requests, want >= 3", snap.ReadPlaneHits)
	}
	if snap.ReadPlaneFallbacks < 3 { // put, live renew, delete
		t.Fatalf("fallback path served %d requests, want >= 3", snap.ReadPlaneFallbacks)
	}
}

// TestReadPlaneSendRecv covers the two-sided transport under the read plane.
func TestReadPlaneSendRecv(t *testing.T) {
	sh, f := testReadPlaneShard(t, 2, lease.Policy{})
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), true)

	buf := make([]byte, 4096)
	send := func(req message.Request) message.Response {
		n := req.EncodeTo(buf)
		if err := ep.QP.Send(buf[:n]); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			body, ok := ep.QP.TryRecv()
			if ok {
				resp := mustDecodeResponse(t, body)
				return resp
			}
			if time.Now().After(deadline) {
				t.Fatal("no response")
			}
		}
	}
	if r := send(message.Request{Op: message.OpPut, Seq: 1, Key: []byte("sr"), Val: []byte("v")}); r.Status != message.StatusOK {
		t.Fatalf("put: %+v", r)
	}
	if r := send(message.Request{Op: message.OpGet, Seq: 2, Key: []byte("sr")}); r.Status != message.StatusOK || string(r.Val) != "v" {
		t.Fatalf("get: %+v", r)
	}
}

func mustDecodeResponse(t testing.TB, body []byte) message.Response {
	t.Helper()
	resp, err := message.DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Val) > 0 {
		v := make([]byte, len(resp.Val))
		copy(v, resp.Val)
		resp.Val = v
	}
	return resp
}

// TestReadPlaneStress is the satellite-4 churn test: several client
// goroutines on their own connections mix PUT/GET/DELETE/Renew over disjoint
// keys while aggressively short leases force continuous detach/reclaim and
// free-list reuse under the readers' feet. Each client checks
// read-your-writes after every ack — a torn probe, a stale publication word
// or a reclaimed-under-reader item would surface as a wrong value here (and
// as a data race under -race).
func TestReadPlaneStress(t *testing.T) {
	policy := lease.Policy{
		BaseTermNs:   200_000, // 0.2 ms: probes constantly race lease expiry
		MaxShift:     2,
		GraceNs:      100_000, // reclaim hot on the readers' heels
		DecayEpochNs: 1e9,
	}
	sh, f := testReadPlaneShard(t, 4, policy)
	go sh.Run()
	defer sh.Stop()

	const clients = 6
	const keysPerClient = 8
	iters := 400
	if testing.Short() {
		iters = 80
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		ep := sh.Connect(f.NewNIC(fmt.Sprintf("client%d", c)), false)
		wg.Add(1)
		go func(c int, ep *Endpoint) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			version := make(map[int]int) // key index -> last acked version, -1 deleted
			seq := uint32(0)
			next := func() uint32 { seq++; return seq }
			for i := 0; i < iters; i++ {
				ki := rng.Intn(keysPerClient)
				key := []byte(fmt.Sprintf("c%d-k%d", c, ki))
				switch rng.Intn(4) {
				case 0, 1: // PUT a new version, then read it back
					v, ok := version[ki]
					if !ok || v < 0 {
						v = 0
					}
					v++
					version[ki] = v
					val := []byte(fmt.Sprintf("c%d-k%d#%08d", c, ki, v))
					put := exchange(t, ep, message.Request{Op: message.OpPut, Seq: next(), Key: key, Val: val})
					if put.Status != message.StatusOK {
						t.Errorf("put %s: %+v", key, put)
						return
					}
					get := exchange(t, ep, message.Request{Op: message.OpGet, Seq: next(), Key: key})
					if get.Status != message.StatusOK || string(get.Val) != string(val) {
						t.Errorf("read-your-write %s: want %q, got status=%v val=%q", key, val, get.Status, get.Val)
						return
					}
				case 2: // GET: must match the last acked state exactly
					get := exchange(t, ep, message.Request{Op: message.OpGet, Seq: next(), Key: key})
					v, ok := version[ki]
					switch {
					case !ok || v < 0:
						if get.Status != message.StatusNotFound {
							t.Errorf("get deleted %s: %+v", key, get)
							return
						}
					default:
						want := fmt.Sprintf("c%d-k%d#%08d", c, ki, v)
						if get.Status != message.StatusOK || string(get.Val) != want {
							t.Errorf("get %s: want %q, got status=%v val=%q", key, want, get.Status, get.Val)
							return
						}
					}
				case 3: // DELETE or renew
					if rng.Intn(2) == 0 {
						del := exchange(t, ep, message.Request{Op: message.OpDelete, Seq: next(), Key: key})
						v, ok := version[ki]
						existed := ok && v >= 0
						if existed && del.Status != message.StatusOK {
							t.Errorf("delete %s: %+v", key, del)
							return
						}
						version[ki] = -1
					} else {
						exchange(t, ep, message.Request{Op: message.OpRenewLease, Seq: next(), Key: key})
					}
				}
			}
		}(c, ep)
	}
	wg.Wait()

	snap := sh.Counters.Snapshot()
	t.Logf("read plane: hits=%d torn=%d fallbacks=%d reclaims=%d",
		snap.ReadPlaneHits, snap.ReadPlaneTorn, snap.ReadPlaneFallbacks, snap.Reclaims)
	if snap.ReadPlaneHits == 0 {
		t.Fatal("stress run never exercised the read plane")
	}
	if snap.ReadPlaneFallbacks == 0 {
		t.Fatal("stress run never exercised the fallback path")
	}
}

// TestIdleBackoffStateMachine pins the satellite-2 backoff shape: spin phase
// for IdleSpins rounds, then naps doubling from NapNs to the NapMaxNs cap,
// and full reset on progress.
func TestIdleBackoffStateMachine(t *testing.T) {
	b := idleBackoff{spins: 3, napNs: 100, napMaxNs: 800}
	for i := 0; i < 3; i++ {
		if b.idle() {
			t.Fatalf("round %d napped during the spin phase", i)
		}
	}
	wantNaps := []int64{100, 200, 400, 800, 800}
	for i, want := range wantNaps {
		if !b.idle() {
			t.Fatalf("nap round %d did not nap", i)
		}
		if b.nap != want {
			t.Fatalf("nap round %d: nap=%d, want %d", i, b.nap, want)
		}
	}
	b.reset()
	if b.rounds != 0 || b.nap != 0 {
		t.Fatalf("reset did not return to spin phase: %+v", b)
	}
	if b.idle() {
		t.Fatal("first round after reset napped")
	}
}

// TestFreshRequestAfterLongIdle pins that a request arriving after the shard
// has idled all the way to the nap cap is still served promptly — the
// backoff must cap, not grow unboundedly. The bound is deliberately loose
// (scheduler noise) but far below what an uncapped exponential would reach.
func TestFreshRequestAfterLongIdle(t *testing.T) {
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)

	// Warm once, then leave the shard idle long enough to reach the cap:
	// with IdleSpins=64 and NapNs=100 doubling to 1 ms, ~150 ms of idleness
	// is dozens of capped naps.
	exchange(t, ep, message.Request{Op: message.OpPut, Seq: 1, Key: []byte("idle"), Val: []byte("v")})
	time.Sleep(150 * time.Millisecond)

	start := time.Now()
	get := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 2, Key: []byte("idle")})
	elapsed := time.Since(start)
	if get.Status != message.StatusOK {
		t.Fatalf("get after idle: %+v", get)
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("fresh request after long idle took %v, want <= 250ms (nap cap is 1ms)", elapsed)
	}
}
