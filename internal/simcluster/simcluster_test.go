package simcluster

import (
	"testing"

	"hydradb/internal/ycsb"
)

func wl(t testing.TB, records int64, ops, readPct int, dist ycsb.Distribution) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.StandardSpec(records, ops, readPct, dist, 42))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runHydra(t testing.TB, mode Mode, w *ycsb.Workload, mut func(*HydraConfig)) Result {
	t.Helper()
	cfg := HydraConfig{
		Machines:         8,
		ServerMachines:   []int{0},
		ShardsPerMachine: 4,
		Clients:          20,
		ClientMachines:   []int{2, 3, 4, 5, 6, 7},
		Mode:             mode,
		SharedCache:      true,
		Workload:         w,
		Seed:             1,
	}
	if mut != nil {
		mut(&cfg)
	}
	h, err := NewHydraSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h.Run(mode.String())
}

func TestHydraRunCompletesAllOps(t *testing.T) {
	w := wl(t, 2000, 10000, 90, ycsb.Zipfian)
	r := runHydra(t, ModeWriteRead, w, nil)
	if r.Ops != 10000 {
		t.Fatalf("completed %d ops, want 10000", r.Ops)
	}
	if r.VirtualNs <= 0 || r.ThroughputMops <= 0 {
		t.Fatalf("bad result: %+v", r)
	}
	// Hit accounting must cover every GET exactly once.
	gets := int64(0)
	for _, req := range w.Requests {
		if req.Op == ycsb.OpRead {
			gets++
		}
	}
	if r.Hits+r.Stale+r.Misses != gets {
		t.Fatalf("hit analysis %d+%d+%d != %d GETs", r.Hits, r.Stale, r.Misses, gets)
	}
	if r.Hits == 0 {
		t.Fatal("zipfian read-heavy run produced no pointer hits")
	}
}

func TestDeterministicRuns(t *testing.T) {
	w := wl(t, 1000, 5000, 50, ycsb.Zipfian)
	r1 := runHydra(t, ModeWriteRead, w, nil)
	r2 := runHydra(t, ModeWriteRead, w, nil)
	if r1.VirtualNs != r2.VirtualNs || r1.Hits != r2.Hits || r1.Stale != r2.Stale {
		t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

// TestDesignChoiceOrdering verifies the Fig. 10 shape: Send/Recv <
// Pipeline+Write < Write Only <= Write+Read for a read-heavy zipfian
// workload.
func TestDesignChoiceOrdering(t *testing.T) {
	w := wl(t, 5000, 30000, 90, ycsb.Zipfian)
	sr := runHydra(t, ModeSendRecv, w, nil)
	wo := runHydra(t, ModeWriteOnly, w, nil)
	wr := runHydra(t, ModeWriteRead, w, nil)
	pp := runHydra(t, ModePipelineWrite, w, nil)

	if !(wo.ThroughputMops > sr.ThroughputMops) {
		t.Fatalf("RDMA Write (%.3f) must beat Send/Recv (%.3f)", wo.ThroughputMops, sr.ThroughputMops)
	}
	if !(wr.ThroughputMops > wo.ThroughputMops) {
		t.Fatalf("Write+Read (%.3f) must beat Write Only (%.3f) on read-heavy zipfian", wr.ThroughputMops, wo.ThroughputMops)
	}
	if !(wo.ThroughputMops > pp.ThroughputMops) {
		t.Fatalf("single-threaded (%.3f) must beat pipelined (%.3f)", wo.ThroughputMops, pp.ThroughputMops)
	}
	// Latency ordering too.
	if !(wo.GetMeanUs < sr.GetMeanUs) {
		t.Fatalf("write-only latency %.1f !< send/recv %.1f", wo.GetMeanUs, sr.GetMeanUs)
	}
}

func TestPointerCacheBenefitShrinksWithUpdates(t *testing.T) {
	// §6.2: the caching benefit diminishes as update ratio grows, and
	// invalid hits rise.
	wRead := wl(t, 5000, 30000, 100, ycsb.Zipfian)
	wMix := wl(t, 5000, 30000, 50, ycsb.Zipfian)
	rRead := runHydra(t, ModeWriteRead, wRead, nil)
	rMix := runHydra(t, ModeWriteRead, wMix, nil)
	if rRead.Stale != 0 {
		t.Fatalf("100%% GET run saw %d invalid hits", rRead.Stale)
	}
	if rMix.Stale == 0 {
		t.Fatal("50%% update zipfian run saw no invalid hits")
	}
	hitRateRead := float64(rRead.Hits) / float64(rRead.Hits+rRead.Misses+rRead.Stale)
	hitRateMix := float64(rMix.Hits) / float64(rMix.Hits+rMix.Misses+rMix.Stale)
	if hitRateMix >= hitRateRead {
		t.Fatalf("hit rate must fall with updates: %.3f vs %.3f", hitRateMix, hitRateRead)
	}
}

func TestUniformCachesLessThanZipfian(t *testing.T) {
	// Fig. 11: uniform workloads reuse cached pointers far less.
	wz := wl(t, 20000, 30000, 100, ycsb.Zipfian)
	wu := wl(t, 20000, 30000, 100, ycsb.Uniform)
	rz := runHydra(t, ModeWriteRead, wz, nil)
	ru := runHydra(t, ModeWriteRead, wu, nil)
	if ru.Hits >= rz.Hits {
		t.Fatalf("uniform hits %d !< zipfian hits %d", ru.Hits, rz.Hits)
	}
}

func TestZipfianHotShardPressure(t *testing.T) {
	// Skewed requests concentrate on one shard: without the RDMA-Read
	// relief, zipfian throughput must fall below uniform (the hot shard
	// serializes a disproportionate share of the requests), and the hot
	// shard must be effectively saturated.
	wz := wl(t, 5000, 20000, 50, ycsb.Zipfian)
	wu := wl(t, 5000, 20000, 50, ycsb.Uniform)
	rz := runHydra(t, ModeWriteOnly, wz, nil)
	ru := runHydra(t, ModeWriteOnly, wu, nil)
	if rz.ThroughputMops >= ru.ThroughputMops {
		t.Fatalf("zipfian throughput %.3f !< uniform %.3f", rz.ThroughputMops, ru.ThroughputMops)
	}
	if rz.MaxShardUtil < 0.9 {
		t.Fatalf("hot shard not saturated: %.3f", rz.MaxShardUtil)
	}
}

func TestReplicationLatencyOrdering(t *testing.T) {
	// Fig. 13: none < logging < strict, and logging's overhead is small.
	spec := ycsb.Spec{
		Records: 1000, Operations: 20000, InsertProportion: 1,
		Dist: ycsb.Uniform, KeyLen: 16, ValueLen: 32, Seed: 5,
	}
	w, err := ycsb.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := runHydra(t, ModeWriteOnly, w, func(c *HydraConfig) {
		c.ShardsPerMachine = 1
		c.Clients = 8
		c.MaxItemsPerShard = 40000
	})
	logging := runHydra(t, ModeWriteOnly, w, func(c *HydraConfig) {
		c.ShardsPerMachine = 1
		c.Clients = 8
		c.Replicas = 1
		c.MaxItemsPerShard = 40000
	})
	strict := runHydra(t, ModeWriteOnly, w, func(c *HydraConfig) {
		c.ShardsPerMachine = 1
		c.Clients = 8
		c.Replicas = 1
		c.Strict = true
		c.MaxItemsPerShard = 40000
	})
	if !(base.UpdMeanUs < logging.UpdMeanUs) {
		t.Fatalf("no-replication %.2fus !< logging %.2fus", base.UpdMeanUs, logging.UpdMeanUs)
	}
	if !(logging.UpdMeanUs < strict.UpdMeanUs) {
		t.Fatalf("logging %.2fus !< strict %.2fus", logging.UpdMeanUs, strict.UpdMeanUs)
	}
	// Logging overhead must be modest (paper: +12.3% for one replica)
	// while strict roughly doubles latency (paper: "consistently doubles").
	logOverhead := logging.UpdMeanUs/base.UpdMeanUs - 1
	strictOverhead := strict.UpdMeanUs/base.UpdMeanUs - 1
	if logOverhead > 0.5 {
		t.Fatalf("logging overhead %.0f%% too large", logOverhead*100)
	}
	if strictOverhead < 0.5 {
		t.Fatalf("strict overhead %.0f%% too small", strictOverhead*100)
	}
	if logging.Replicated != 20000 || strict.Replicated != 20000 {
		t.Fatalf("replication counts: %d / %d", logging.Replicated, strict.Replicated)
	}
}

func TestBaselinesRunAndLoseToHydra(t *testing.T) {
	w := wl(t, 5000, 20000, 90, ycsb.Zipfian)
	hydra := runHydra(t, ModeWriteRead, w, nil)
	for _, kind := range []BaselineKind{KindMemcached, KindRedis, KindRAMCloud} {
		b, err := NewBaselineSim(BaselineConfig{Kind: kind, Clients: 20, Workload: w, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		r := b.Run(kind.String())
		if r.Ops != 20000 {
			t.Fatalf("%v completed %d ops", kind, r.Ops)
		}
		if r.ThroughputMops >= hydra.ThroughputMops {
			t.Fatalf("%v throughput %.3f !< hydra %.3f", kind, r.ThroughputMops, hydra.ThroughputMops)
		}
		if r.GetMeanUs <= hydra.GetMeanUs {
			t.Fatalf("%v latency %.1f !> hydra %.1f", kind, r.GetMeanUs, hydra.GetMeanUs)
		}
	}
}

func TestRAMCloudBeatsTCPBaselines(t *testing.T) {
	// RAMCloud's native IB transport should beat IPoIB Memcached/Redis on
	// latency, as in the paper's Fig. 9.
	w := wl(t, 5000, 20000, 100, ycsb.Uniform)
	run := func(kind BaselineKind) Result {
		b, err := NewBaselineSim(BaselineConfig{Kind: kind, Clients: 20, Workload: w, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return b.Run(kind.String())
	}
	rc := run(KindRAMCloud)
	mc := run(KindMemcached)
	rd := run(KindRedis)
	if rc.GetMeanUs >= mc.GetMeanUs || rc.GetMeanUs >= rd.GetMeanUs {
		t.Fatalf("RAMCloud %.1fus !< memcached %.1fus / redis %.1fus",
			rc.GetMeanUs, mc.GetMeanUs, rd.GetMeanUs)
	}
}

func TestScaleUpQPOverheadSaturates(t *testing.T) {
	// Fig. 12(c/d): adding shards on one machine helps, then QP counts and
	// the NIC ceiling flatten the curve.
	w := wl(t, 20000, 40000, 50, ycsb.Uniform)
	tput := func(shards int) float64 {
		r := runHydra(t, ModeWriteOnly, w, func(c *HydraConfig) {
			c.ShardsPerMachine = shards
			c.Clients = 60
		})
		return r.ThroughputMops
	}
	t1, t4, t8 := tput(1), tput(4), tput(8)
	if !(t4 > t1*2) {
		t.Fatalf("1->4 shards did not scale: %.3f -> %.3f", t1, t4)
	}
	gain48 := t8 / t4
	gain14 := t4 / t1
	if gain48 >= gain14 {
		t.Fatalf("no saturation: 1->4 gain %.2f, 4->8 gain %.2f", gain14, gain48)
	}
}

func TestScaleOutUniform(t *testing.T) {
	// Fig. 12(a): uniform workloads scale with server machines.
	w := wl(t, 20000, 40000, 50, ycsb.Uniform)
	tput := func(servers []int) float64 {
		r := runHydra(t, ModeWriteRead, w, func(c *HydraConfig) {
			c.ServerMachines = servers
			c.ShardsPerMachine = 1
			c.Clients = 60
		})
		return r.ThroughputMops
	}
	t1 := tput([]int{0})
	t4 := tput([]int{0, 1, 2, 3})
	if !(t4 > t1*2) {
		t.Fatalf("scale-out failed: 1 machine %.3f, 4 machines %.3f", t1, t4)
	}
}

func TestTCPModeCollapsesToBaselineLevel(t *testing.T) {
	// §6: HydraDB supports TCP/IP but the paper omits its numbers, and
	// §4.1.1 explains why the single-threaded design only shines with
	// RDMA: over TCP the kernel crossings land on the one shard thread, so
	// HydraDB(TCP) collapses to the same league as Memcached over IPoIB —
	// an order of magnitude below any verbs configuration.
	w := wl(t, 5000, 20000, 90, ycsb.Zipfian)
	tcp := runHydra(t, ModeTCP, w, nil)
	sr := runHydra(t, ModeSendRecv, w, nil)
	if tcp.ThroughputMops*3 >= sr.ThroughputMops {
		t.Fatalf("TCP (%.3f) must trail even Send/Recv verbs (%.3f) badly",
			tcp.ThroughputMops, sr.ThroughputMops)
	}
	b, err := NewBaselineSim(BaselineConfig{Kind: KindMemcached, Clients: 20, Workload: w, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mc := b.Run("memcached")
	ratio := tcp.ThroughputMops / mc.ThroughputMops
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("HydraDB(TCP) %.3f not in Memcached's league (%.3f)", tcp.ThroughputMops, mc.ThroughputMops)
	}
	if tcp.GetMeanUs < 30 {
		t.Fatalf("TCP latency %.1fus implausibly low", tcp.GetMeanUs)
	}
}
