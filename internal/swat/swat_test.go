package swat

import (
	"sync"
	"testing"
	"time"

	"hydradb/internal/coord"
	"hydradb/internal/testutil"
	"hydradb/internal/timing"
)

func TestTeamElectsOneLeader(t *testing.T) {
	srv := coord.NewServer(timing.NewManualClock(0), 2e9)
	team, err := NewTeam(srv, 3, "/hydra/live", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer team.Stop()
	if team.LeaderName() == "" {
		t.Fatal("no leader elected")
	}
	if team.Members() != 3 {
		t.Fatalf("members = %d", team.Members())
	}
}

func TestLeaderReactsToShardFailure(t *testing.T) {
	srv := coord.NewServer(timing.NewManualClock(0), 2e9)
	var mu sync.Mutex
	var reacted []string
	team, err := NewTeam(srv, 3, "/hydra/live", func(name string) {
		mu.Lock()
		reacted = append(reacted, name)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer team.Stop()

	// A shard registers and dies.
	shardSess := srv.NewSession()
	if _, err := shardSess.Create("/hydra/live/shard-7", nil, coord.FlagEphemeral); err != nil {
		t.Fatal(err)
	}
	shardSess.Close()

	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(reacted) == 1 && reacted[0] == "shard-7"
	}, "reactor did not fire exactly once")
}

func TestFailoverOfSWATLeader(t *testing.T) {
	srv := coord.NewServer(timing.NewManualClock(0), 2e9)
	var mu sync.Mutex
	reacted := map[string]int{}
	team, err := NewTeam(srv, 3, "/hydra/live", func(name string) {
		mu.Lock()
		reacted[name]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer team.Stop()

	first := team.KillLeader()
	if first == "" {
		t.Fatal("no leader to kill")
	}
	waitFor(t, func() bool {
		name := team.LeaderName()
		return name != "" && name != first
	}, "no successor leader")
	// The team self-heals: the dead member is replaced by a fresh session,
	// so the ensemble recovers its full size.
	waitFor(t, func() bool { return team.Members() == 3 }, "team did not replace the dead member")

	// The new leader still reacts to shard failures.
	shardSess := srv.NewSession()
	testutil.Must1(shardSess.Create("/hydra/live/shard-1", nil, coord.FlagEphemeral))
	shardSess.Close()
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return reacted["shard-1"] == 1
	}, "successor leader did not react")
}

func TestReactorFiresOncePerFailure(t *testing.T) {
	srv := coord.NewServer(timing.NewManualClock(0), 2e9)
	var mu sync.Mutex
	count := 0
	team := testutil.Must1(NewTeam(srv, 5, "/hydra/live", func(name string) {
		mu.Lock()
		count++
		mu.Unlock()
		time.Sleep(10 * time.Millisecond) // widen the dedup race window
	}))
	defer team.Stop()

	s := srv.NewSession()
	testutil.Must1(s.Create("/hydra/live/shard-2", nil, coord.FlagEphemeral))
	s.Close()
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count >= 1
	}, "no reaction")
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("reactor fired %d times", count)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

// TestLeaderChurn kills the leader repeatedly. Every round must re-elect a
// fresh leader, and the self-healing replacement must keep the ensemble at
// full strength — the team never wears down no matter how many leaders die.
func TestLeaderChurn(t *testing.T) {
	srv := coord.NewServer(timing.NewManualClock(0), 2e9)
	team := testutil.Must1(NewTeam(srv, 3, "/hydra/live", nil))
	defer team.Stop()

	for round := 0; round < 6; round++ {
		waitFor(t, func() bool { return team.LeaderName() != "" }, "no leader before kill")
		dead := team.KillLeader()
		if dead == "" {
			t.Fatalf("round %d: no leader to kill", round)
		}
		waitFor(t, func() bool {
			l := team.LeaderName()
			return l != "" && l != dead
		}, "no successor leader")
		waitFor(t, func() bool { return team.Members() == 3 }, "team did not recover its size")
	}
}
