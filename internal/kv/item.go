// Package kv implements the per-shard item store: arena-resident key-value
// items indexed by the compact hash table, with out-of-place updates, atomic
// guardian words, popularity-scaled leases and deferred memory reclamation
// (paper §4.1.3, §4.2.3).
//
// A Store is single-threaded — it is owned exclusively by one shard (§4.1.1)
// and is driven either by the live shard event loop or by a simulated shard
// actor. Clients interact with its memory only through one-sided RDMA Reads
// of the arena plus atomic loads of the guardian/lease words, which is safe
// because items are never modified in place.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Item layout inside the arena byte area:
//
//	[0:2)  keyLen  (uint16, little endian)
//	[2:6)  valLen  (uint32, little endian)
//	[6:6+keyLen)           key bytes
//	[6+keyLen:6+keyLen+valLen) value bytes
//
// The guardian word and lease word live in the word area of the same memory
// region at MetaIdx and MetaIdx+1 (see DESIGN.md for why they are not inline).
const (
	ItemHeaderSize = 6

	// GuardianLive marks a valid item; GuardianDead marks an outdated or
	// deleted one. A client RDMA Read always fetches the guardian with the
	// item and discards the data when it is not GuardianLive.
	GuardianLive uint64 = 0 // hydralint:publish storing this releases the item
	GuardianDead uint64 = 1 // hydralint:unpublish storing this retracts the item

	// MetaWordsPerItem is the word-group size: guardian + lease.
	MetaWordsPerItem = 2
)

// MaxKeyLen and MaxValLen bound item dimensions.
const (
	MaxKeyLen = 1 << 16
	MaxValLen = 1 << 24
)

var (
	// ErrKeyTooLarge reports a key above MaxKeyLen.
	ErrKeyTooLarge = errors.New("kv: key too large")
	// ErrValTooLarge reports a value above MaxValLen.
	ErrValTooLarge = errors.New("kv: value too large")
	// ErrStoreFull reports arena or slab exhaustion that reclamation could
	// not relieve.
	ErrStoreFull = errors.New("kv: store full")
)

// ItemSize returns the arena footprint of a key/value pair.
func ItemSize(keyLen, valLen int) int { return ItemHeaderSize + keyLen + valLen }

// EncodeItem writes the item layout into buf, which must be at least
// ItemSize(len(key), len(val)) bytes.
//
// hydralint:hotpath
func EncodeItem(buf, key, val []byte) {
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[2:6], uint32(len(val)))
	copy(buf[ItemHeaderSize:], key)
	copy(buf[ItemHeaderSize+len(key):], val)
}

// DecodeItem parses an item buffer, returning views of the key and value.
// ok is false when the buffer is malformed (e.g. a stale RDMA Read of a
// recycled, zeroed area).
//
// hydralint:hotpath
func DecodeItem(buf []byte) (key, val []byte, ok bool) {
	if len(buf) < ItemHeaderSize {
		return nil, nil, false
	}
	keyLen := int(binary.LittleEndian.Uint16(buf[0:2]))
	valLen := int(binary.LittleEndian.Uint32(buf[2:6]))
	if keyLen == 0 || ItemHeaderSize+keyLen+valLen > len(buf) {
		return nil, nil, false
	}
	key = buf[ItemHeaderSize : ItemHeaderSize+keyLen]
	val = buf[ItemHeaderSize+keyLen : ItemHeaderSize+keyLen+valLen]
	return key, val, true
}

// RemotePtr describes the server-side location of an item: everything a
// client needs to fetch it with a single RDMA Read and validate the result
// (§4.2.2). It is returned alongside GET/PUT responses and cached client-side.
type RemotePtr struct {
	ShardID uint32 // global shard identity (routing epoch scoped)
	DataOff uint32 // hydralint:offset-source arena offset of the item
	DataLen uint32 // ItemSize bytes
	MetaIdx uint32 // hydralint:offset-source guardian word index; lease is MetaIdx+1
}

// Zero reports whether the pointer is unset.
func (p RemotePtr) Zero() bool { return p.DataLen == 0 }

// String renders the pointer for diagnostics.
func (p RemotePtr) String() string {
	return fmt.Sprintf("rp{shard=%d off=%d len=%d meta=%d}", p.ShardID, p.DataOff, p.DataLen, p.MetaIdx)
}
