// Package replication implements HydraDB's RDMA Logging Replication (§5.2).
//
// Each secondary shard exposes a large memory chunk to its primary; the
// primary replicates every write request into it using one-sided RDMA Writes
// in a log-structured fashion (a ring of fixed-capacity record slots, each
// published by a per-slot indicator word). Because the secondary's memory is
// Single-Writer Zero-Reader, the conventional request/acknowledge exchange
// is relaxed: records carry a monotonically increasing sequence number, the
// primary solicits an acknowledgement only every AckEvery records (or when
// its window fills), and the secondary acknowledges by RDMA-writing its
// applied sequence number into the primary's ack word.
//
// Failure handling follows the paper: when the secondary fails to process a
// record it stops advancing its acknowledgement, discards subsequent
// records, and loops until it observes a record flagged as an ack request —
// then it reports the first failed sequence number, and the primary rolls
// back and re-sends every record from that point.
package replication

import (
	"encoding/binary"
	"errors"

	"hydradb/internal/message"
)

// Record is one replicated mutation.
type Record struct {
	Op  message.Op // OpPut or OpDelete
	Key []byte
	Val []byte
}

const recHeader = 1 + 1 + 2 + 4 // op, pad, keyLen, valLen

// ErrRecordTooLarge reports a record exceeding the slot capacity.
var ErrRecordTooLarge = errors.New("replication: record exceeds slot size")

// ErrMalformedRecord reports an undecodable slot.
var ErrMalformedRecord = errors.New("replication: malformed record")

// EncodedSize reports the wire size of the record.
func (r *Record) EncodedSize() int { return recHeader + len(r.Key) + len(r.Val) }

// EncodeTo writes the record into buf.
func (r *Record) EncodeTo(buf []byte) int {
	buf[0] = byte(r.Op)
	buf[1] = 0
	binary.LittleEndian.PutUint16(buf[2:4], uint16(len(r.Key)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(r.Val)))
	n := copy(buf[recHeader:], r.Key)
	copy(buf[recHeader+n:], r.Val)
	return r.EncodedSize()
}

// DecodeRecord parses buf; Key/Val alias buf.
func DecodeRecord(buf []byte) (Record, error) {
	if len(buf) < recHeader {
		return Record{}, ErrMalformedRecord
	}
	r := Record{Op: message.Op(buf[0])}
	keyLen := int(binary.LittleEndian.Uint16(buf[2:4]))
	valLen := int(binary.LittleEndian.Uint32(buf[4:8]))
	if keyLen == 0 || recHeader+keyLen+valLen > len(buf) {
		return Record{}, ErrMalformedRecord
	}
	if r.Op != message.OpPut && r.Op != message.OpDelete {
		return Record{}, ErrMalformedRecord
	}
	r.Key = buf[recHeader : recHeader+keyLen]
	r.Val = buf[recHeader+keyLen : recHeader+keyLen+valLen]
	return r, nil
}

// Ready-word layout: bit 63 = ack request flag, bits 62..32 reserved for the
// body size, bits 31..0 unused... kept simple: bit 63 flag, bits 0..47 = seq,
// bits 48..62 = body size in 8-byte units (slot-capped).
const (
	ackReqBit = uint64(1) << 63
	seqMask   = (uint64(1) << 48) - 1
)

func makeReady(seq uint64, size int, ackReq bool) uint64 {
	w := seq&seqMask | uint64(size)<<48&^ackReqBit
	if ackReq {
		w |= ackReqBit
	}
	return w
}

func splitReady(w uint64) (seq uint64, size int, ackReq bool) {
	return w & seqMask, int(w >> 48 &^ (1 << 15)), w&ackReqBit != 0
}

// Ack-word layout: bit 63 = nack flag; bits 0..47 = last applied seq (acks)
// or first failed seq (nacks); for nacks, bits 48..62 carry the number of
// discarded records whose ready words the secondary zeroed — exactly the
// range the primary must re-send.
const nackBit = uint64(1) << 63

func makeAck(lastApplied uint64) uint64 { return lastApplied & seqMask }

func makeNack(firstFailed uint64, discarded uint64) uint64 {
	return nackBit | (discarded&0x7fff)<<48 | firstFailed&seqMask
}

func splitAck(w uint64) (seq uint64, discarded uint64, nack bool) {
	return w & seqMask, w >> 48 & 0x7fff, w&nackBit != 0
}
