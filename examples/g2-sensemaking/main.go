// G2 Sensemaking example — the paper's §2.2 scenario: an assertion-making
// analytics system absorbing continuous real-time observations. Database
// tables become key-value structures (entities keyed by identifier,
// attribute indexes keyed by attribute value), and a fleet of engines
// performs entity resolution: for each observation, look up candidate
// entities through attribute indexes, merge or create an entity, and write
// the assertion back — read-modify-write chains that a disk/SQL store
// bottlenecks and HydraDB serves at memory speed.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hydradb"
)

type entity struct {
	ID        string   `json:"id"`
	Names     []string `json:"names"`
	Phones    []string `json:"phones"`
	Sightings int      `json:"sightings"`
}

type observation struct {
	Name  string
	Phone string
}

const (
	engines      = 4
	observations = 4000
	population   = 800 // distinct underlying people
)

func main() {
	opts := hydradb.DefaultOptions()
	opts.ArenaBytesPerShard = 32 << 20
	opts.MaxItemsPerShard = 1 << 16
	db, err := hydradb.Start(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	var processed, created, merged atomic.Int64
	var wg sync.WaitGroup
	clients := make([]*hydradb.Client, engines)
	start := time.Now()
	for e := 0; e < engines; e++ {
		wg.Add(1)
		c := db.NewClient()
		clients[e] = c
		go func(e int, c *hydradb.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(e) * 7919))
			for i := 0; i < observations/engines; i++ {
				obs := synthesize(rng)
				if resolve(c, obs, &created) {
					merged.Add(1)
				}
				processed.Add(1)
			}
		}(e, c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("processed %d observations with %d engines in %v (%.0f obs/s)\n",
		processed.Load(), engines, elapsed.Round(time.Millisecond),
		float64(processed.Load())/elapsed.Seconds())
	fmt.Printf("entities created: %d, observations merged into existing entities: %d\n",
		created.Load(), merged.Load())

	s := db.Stats()
	var oneSided int64
	for _, c := range clients {
		oneSided += c.Counters().Snapshot().RDMAReadHits
	}
	fmt.Printf("store ops: gets=%d inserts=%d updates=%d (plus %d one-sided reads that bypassed the shards)\n",
		s.Gets, s.Inserts, s.Updates, oneSided)
}

// resolve performs entity resolution for one observation. Returns true when
// the observation merged into an existing entity.
func resolve(c *hydradb.Client, obs observation, created *atomic.Int64) bool {
	// Attribute index lookups: who has this phone? this name?
	entID := lookupIndex(c, "idx:phone:"+obs.Phone)
	if entID == "" {
		entID = lookupIndex(c, "idx:name:"+obs.Name)
	}
	if entID == "" {
		// New entity.
		id := fmt.Sprintf("ent:%s-%s", obs.Name, obs.Phone)
		ent := entity{ID: id, Names: []string{obs.Name}, Phones: []string{obs.Phone}, Sightings: 1}
		writeEntity(c, ent)
		mustPut(c, "idx:name:"+obs.Name, id)
		mustPut(c, "idx:phone:"+obs.Phone, id)
		created.Add(1)
		return false
	}
	// Merge: read-modify-write the entity, extend indexes.
	raw, err := c.Get([]byte(entID))
	if err != nil {
		log.Fatalf("entity %s vanished: %v", entID, err)
	}
	var ent entity
	if err := json.Unmarshal(raw, &ent); err != nil {
		log.Fatal(err)
	}
	ent.Sightings++
	ent.Names = addUnique(ent.Names, obs.Name)
	ent.Phones = addUnique(ent.Phones, obs.Phone)
	writeEntity(c, ent)
	mustPut(c, "idx:name:"+obs.Name, ent.ID)
	mustPut(c, "idx:phone:"+obs.Phone, ent.ID)
	return true
}

func lookupIndex(c *hydradb.Client, key string) string {
	v, err := c.Get([]byte(key))
	if err == hydradb.ErrNotFound {
		return ""
	}
	if err != nil {
		log.Fatal(err)
	}
	return string(v)
}

func writeEntity(c *hydradb.Client, ent entity) {
	raw, err := json.Marshal(ent)
	if err != nil {
		log.Fatal(err)
	}
	mustPut(c, ent.ID, string(raw))
}

func mustPut(c *hydradb.Client, k, v string) {
	if err := c.Put([]byte(k), []byte(v)); err != nil {
		log.Fatal(err)
	}
}

func addUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// synthesize draws observations about a skewed population: a person may be
// seen under a nickname or with a second phone, driving merges.
func synthesize(rng *rand.Rand) observation {
	person := rng.Intn(population)
	name := fmt.Sprintf("person-%04d", person)
	if rng.Intn(5) == 0 {
		name = fmt.Sprintf("nick-%04d", person) // alias
	}
	phone := fmt.Sprintf("+1-555-%06d", person)
	if rng.Intn(7) == 0 {
		phone = fmt.Sprintf("+1-666-%06d", person) // second phone
	}
	return observation{Name: name, Phone: phone}
}
