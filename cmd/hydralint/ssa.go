package main

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-program def-use layer the region-bounds and
// spec-order passes run on: a pruned-SSA-style abstract interpreter
// over the per-function control flow the summary layer (summaries.go,
// callgraph.go) already walks. Instead of materializing phi nodes, every
// assignment produces a fresh abstract value and join points merge the
// environments, which is exactly the information SSA def-use chains carry
// for a pass that only ever asks "what may this use evaluate to here".
//
// The abstract domain is a reduced product of three components:
//
//	interval    [lo, hi] with optional bounds, saturating int64 arithmetic
//	congruence  v ≡ rem (mod stride) — the word-alignment component
//	origins     provenance labels seeded by hydralint:offset-source markers
//	            (a value derived from a validated region offset keeps its
//	            label through +nonneg arithmetic)
//
// alongside a relational fact set: linear inequalities ("len(mr.data) - off
// - len(src) >= 0") harvested from dominating guards, which is how the
// fabric's `if off < 0 || off+n > len(mr.data) { return }` checks prove the
// slice expressions below them. Facts survive straight-line code and calls
// that cannot write the mentioned objects, and are invalidated by
// reassignment of any mentioned root.

// ---------------------------------------------------------------------------
// Saturating interval + congruence + origins

// absVal is one abstract integer value.
type absVal struct {
	loSet, hiSet bool
	lo, hi       int64
	// Congruence v ≡ rem (mod stride); stride 0 carries no information,
	// stride 1 with rem 0 is "any integer" (kept normalized to stride 0).
	stride, rem int64
	// origins holds hydralint:offset-source provenance labels.
	origins map[string]bool
}

func topVal() absVal { return absVal{} }

func constVal(c int64) absVal {
	return absVal{loSet: true, hiSet: true, lo: c, hi: c, stride: 0, rem: 0}
}

func nonNegVal() absVal { return absVal{loSet: true, lo: 0} }

func (v absVal) isConst() (int64, bool) {
	if v.loSet && v.hiSet && v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

func (v absVal) nonNeg() bool { return v.loSet && v.lo >= 0 }

// alignedTo reports whether the congruence component proves v ≡ 0 (mod n).
func (v absVal) alignedTo(n int64) bool {
	if n <= 0 {
		return false
	}
	if c, ok := v.isConst(); ok {
		return c%n == 0
	}
	return v.stride > 0 && v.stride%n == 0 && v.rem%n == 0
}

func satAdd(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		if a > 0 {
			return int64(^uint64(0) >> 1)
		}
		return -int64(^uint64(0)>>1) - 1
	}
	return s
}

func satMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func mod64(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// congJoin merges two congruence components.
func congJoin(s1, r1, s2, r2 int64) (int64, int64) {
	if s1 == 0 && s2 == 0 {
		// Two exact constants: their difference sets the stride.
		if d := gcd64(r1-r2, 0); d != 0 {
			return d, mod64(r1, d)
		}
		return 0, r1 // equal constants
	}
	if s1 == 0 {
		s1 = gcd64(s2, r1-r2)
		return s1, mod64(r2, max64one(s1))
	}
	if s2 == 0 {
		s2 = gcd64(s1, r1-r2)
		return s2, mod64(r1, max64one(s2))
	}
	g := gcd64(gcd64(s1, s2), r1-r2)
	if g == 0 {
		return 0, r1
	}
	return g, mod64(r1, g)
}

func max64one(a int64) int64 {
	if a == 0 {
		return 1
	}
	return a
}

func joinOrigins(a, b map[string]bool) map[string]bool {
	if a == nil || b == nil {
		return nil
	}
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (v absVal) join(o absVal) absVal {
	var out absVal
	if v.loSet && o.loSet {
		out.loSet = true
		out.lo = min64(v.lo, o.lo)
	}
	if v.hiSet && o.hiSet {
		out.hiSet = true
		out.hi = max64(v.hi, o.hi)
	}
	out.stride, out.rem = congJoin(v.stride, v.rem, o.stride, o.rem)
	if c1, ok1 := v.isConst(); ok1 {
		if c2, ok2 := o.isConst(); ok2 && c1 == c2 {
			out.stride, out.rem = 0, 0
		}
	}
	out.origins = joinOrigins(v.origins, o.origins)
	return out
}

func (v absVal) add(o absVal) absVal {
	var out absVal
	if v.loSet && o.loSet {
		out.loSet, out.lo = true, satAdd(v.lo, o.lo)
	}
	if v.hiSet && o.hiSet {
		out.hiSet, out.hi = true, satAdd(v.hi, o.hi)
	}
	// Congruence addition.
	switch {
	case v.stride == 0 && o.stride == 0:
		out.stride, out.rem = 0, v.rem+o.rem
	case v.stride == 0:
		out.stride, out.rem = o.stride, mod64(o.rem+v.rem, o.stride)
	case o.stride == 0:
		out.stride, out.rem = v.stride, mod64(v.rem+o.rem, v.stride)
	default:
		g := gcd64(v.stride, o.stride)
		out.stride, out.rem = g, mod64(v.rem+o.rem, g)
	}
	// Provenance: an origin-rooted offset plus a non-negative displacement is
	// still rooted at the same validated base.
	if v.origins != nil && o.nonNeg() {
		out.origins = v.origins
	} else if o.origins != nil && v.nonNeg() {
		out.origins = o.origins
	}
	return out
}

func (v absVal) neg() absVal {
	var out absVal
	if v.hiSet {
		out.loSet, out.lo = true, -v.hi
	}
	if v.loSet {
		out.hiSet, out.hi = true, -v.lo
	}
	out.stride = v.stride
	if v.stride > 0 {
		out.rem = mod64(-v.rem, v.stride)
	} else {
		out.rem = -v.rem
	}
	return out
}

func (v absVal) mul(o absVal) absVal {
	var out absVal
	if c, ok := o.isConst(); ok {
		if c2, ok2 := v.isConst(); ok2 {
			if p, fits := satMul(c2, c); fits {
				return constVal(p)
			}
			return topVal()
		}
		if c >= 0 {
			if v.loSet {
				if p, fits := satMul(v.lo, c); fits {
					out.loSet, out.lo = true, p
				}
			}
			if v.hiSet {
				if p, fits := satMul(v.hi, c); fits {
					out.hiSet, out.hi = true, p
				}
			}
			// A validated offset scaled by a non-negative constant is still
			// rooted at the same base (slot index * slot size).
			out.origins = v.origins
		}
		// k*x: stride scales; x of any stride times k is ≡ rem*k (mod s*k),
		// and an arbitrary integer times k is ≡ 0 (mod k).
		if c != 0 {
			if v.stride > 0 {
				if s, fits := satMul(v.stride, c); fits {
					out.stride, out.rem = abs64(s), mod64(v.rem*c, abs64(s))
				}
			} else if _, isC := v.isConst(); !isC {
				out.stride, out.rem = abs64(c), 0
			}
		}
		return out
	}
	if _, ok := v.isConst(); ok {
		return o.mul(v)
	}
	if v.nonNeg() && o.nonNeg() {
		out := nonNegVal()
		// Both factors validated and non-negative: the product stays rooted
		// (cursor * slot capacity).
		if v.origins != nil {
			out.origins = v.origins
		} else {
			out.origins = o.origins
		}
		return out
	}
	return topVal()
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Linear expressions and relational facts

// linExpr is a linear combination over named terms: sum(terms[k]*k) + c.
// Term keys are renderable exprKeys ("off", "m.dataOff") or "len(<key>)".
type linExpr struct {
	terms map[string]int64
	c     int64
	ok    bool
}

func linConst(c int64) linExpr { return linExpr{c: c, ok: true} }

func linTerm(key string) linExpr {
	return linExpr{terms: map[string]int64{key: 1}, ok: true}
}

func (l linExpr) addScaled(o linExpr, k int64) linExpr {
	if !l.ok || !o.ok {
		return linExpr{}
	}
	out := linExpr{terms: map[string]int64{}, c: satAdd(l.c, o.c*k), ok: true}
	for t, co := range l.terms {
		out.terms[t] += co
	}
	for t, co := range o.terms {
		out.terms[t] += co * k
	}
	for t, co := range out.terms {
		if co == 0 {
			delete(out.terms, t)
		}
	}
	return out
}

// canon renders the linear expression as a stable string ("len(a)-b-3"),
// terms sorted, used as the fact-set key for the inequality expr >= 0.
func (l linExpr) canon() string {
	if !l.ok {
		return ""
	}
	keys := make([]string, 0, len(l.terms))
	for t := range l.terms {
		keys = append(keys, t)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, t := range keys {
		fmt.Fprintf(&b, "%+d*%s", l.terms[t], t)
	}
	fmt.Fprintf(&b, "%+d", l.c)
	return b.String()
}

// roots returns the leftmost identifiers mentioned by the expression's terms
// ("m.dataOff" → "m", "len(mr.data)" → "mr"), for invalidation.
func (l linExpr) roots() []string {
	var out []string
	for t := range l.terms {
		t = strings.TrimSuffix(strings.TrimPrefix(t, "len("), ")")
		t = strings.TrimPrefix(strings.TrimPrefix(t, "&"), "*")
		if i := strings.IndexAny(t, ".["); i >= 0 {
			t = t[:i]
		}
		out = append(out, t)
	}
	return out
}

// ---------------------------------------------------------------------------
// Environment

// absEnv is the interpreter state at one program point.
type absEnv struct {
	// vals tracks locals and parameters by object identity.
	vals map[*types.Var]absVal
	// facts maps canon(linExpr) -> true, each meaning "expr >= 0".
	facts map[string]bool
	// factRoots indexes facts by mentioned root identifier for invalidation.
	factRoots map[string][]string
}

func newAbsEnv() *absEnv {
	return &absEnv{vals: map[*types.Var]absVal{}, facts: map[string]bool{}, factRoots: map[string][]string{}}
}

func (e *absEnv) clone() *absEnv {
	c := newAbsEnv()
	for k, v := range e.vals {
		c.vals[k] = v
	}
	for k := range e.facts {
		c.facts[k] = true
	}
	for k, v := range e.factRoots {
		c.factRoots[k] = append([]string(nil), v...)
	}
	return c
}

// joinInto merges o into e (in place): values join, facts intersect.
func (e *absEnv) joinInto(o *absEnv) {
	for k, v := range e.vals {
		if ov, ok := o.vals[k]; ok {
			e.vals[k] = v.join(ov)
		} else {
			delete(e.vals, k)
		}
	}
	for f := range e.facts {
		if !o.facts[f] {
			delete(e.facts, f)
		}
	}
}

func (e *absEnv) addFact(l linExpr) {
	if !l.ok || len(l.terms) == 0 {
		return
	}
	key := l.canon()
	if e.facts[key] {
		return
	}
	e.facts[key] = true
	for _, r := range l.roots() {
		e.factRoots[r] = append(e.factRoots[r], key)
	}
}

// invalidateRoot drops every fact mentioning root (an identifier that was
// reassigned or may have been written through).
func (e *absEnv) invalidateRoot(root string) {
	for _, key := range e.factRoots[root] {
		delete(e.facts, key)
	}
	delete(e.factRoots, root)
}

// provesNonNeg reports whether the environment proves l >= 0: either l is a
// non-negative constant, or some recorded fact F >= 0 has l - F constant and
// non-negative (l = F + k, k >= 0).
func (e *absEnv) provesNonNeg(l linExpr) bool {
	if !l.ok {
		return false
	}
	if len(l.terms) == 0 {
		return l.c >= 0
	}
	if e.facts[l.canon()] {
		return true
	}
	for f := range e.facts {
		d := l.addScaled(parseCanon(f), -1)
		if d.ok && len(d.terms) == 0 && d.c >= 0 {
			return true
		}
	}
	return false
}

// parseCanon reverses linExpr.canon. canon strings are machine-produced, so
// the parse is exact; a malformed string yields !ok and never matches.
func parseCanon(s string) linExpr {
	out := linExpr{terms: map[string]int64{}, ok: true}
	for len(s) > 0 {
		sign := int64(1)
		switch s[0] {
		case '+':
		case '-':
			sign = -1
		default:
			return linExpr{}
		}
		s = s[1:]
		i := 0
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		if i == 0 {
			return linExpr{}
		}
		var n int64
		for _, d := range s[:i] {
			n = n*10 + int64(d-'0')
		}
		s = s[i:]
		if len(s) > 0 && s[0] == '*' {
			// coefficient * term: term runs to the next top-level +/-.
			s = s[1:]
			j, depth := 0, 0
			for j < len(s) {
				switch s[j] {
				case '(', '[':
					depth++
				case ')', ']':
					depth--
				case '+', '-':
					if depth == 0 {
						goto termEnd
					}
				}
				j++
			}
		termEnd:
			out.terms[s[:j]] += sign * n
			s = s[j:]
		} else {
			out.c += sign * n
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// The abstract interpreter

// flowVisitor receives every statement — and every call, index, and slice
// expression — in execution order, with the environment in effect just before
// it and the walker for evaluating operands under that environment.
type flowVisitor func(w *flowWalker, env *absEnv, n ast.Node)

// flowWalker drives the per-function walk.
type flowWalker struct {
	p     *Package
	prog  *Program
	info  *FuncInfo
	visit flowVisitor
}

// walkFunc interprets fn's body, calling visit at each statement and each
// nested expression point with the current environment. Parameters seed the
// environment with type-based intervals and marker-based origins.
func walkFunc(info *FuncInfo, visit flowVisitor) {
	w := &flowWalker{p: info.Pkg, prog: info.Pkg.Prog, info: info, visit: visit}
	env := newAbsEnv()
	for _, v := range inputVars(info) {
		env.vals[v] = w.typeVal(v.Type())
	}
	// A function's own offset-sink marker is a precondition declaration: every
	// call site is obligated to prove the listed params, so the body may
	// assume them (this is how sink verbs forward offsets to each other).
	if w.prog != nil {
		name := info.Obj.FullName()
		if sinkParams := w.prog.markersFor().offsetSinkFuncs[name]; len(sinkParams) > 0 {
			for _, v := range inputVars(info) {
				for _, pn := range sinkParams {
					if v.Name() == pn && isIntType(v.Type()) {
						av := env.vals[v]
						av.origins = map[string]bool{name + ":" + pn: true}
						if !av.loSet {
							av.loSet, av.lo = true, 0
						}
						env.vals[v] = av
					}
				}
			}
		}
	}
	w.block(info.Decl.Body.List, env)
}

// typeVal is the type-based abstract value: unsigned types are non-negative.
func (w *flowWalker) typeVal(t types.Type) absVal {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return topVal()
	}
	switch b.Kind() {
	case types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64, types.Uintptr:
		return nonNegVal()
	}
	return topVal()
}

// lookupVar resolves an identifier to its *types.Var.
func (w *flowWalker) lookupVar(id *ast.Ident) (*types.Var, bool) {
	obj := w.p.Info.Uses[id]
	if obj == nil {
		obj = w.p.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// eval computes the abstract value of e under env.
func (w *flowWalker) eval(env *absEnv, e ast.Expr) absVal {
	e = unparen(e)
	// Constant folding first: go/types evaluates named-constant arithmetic,
	// which is how geometry constants propagate into the intervals.
	if tv, ok := w.p.Info.Types[e]; ok && tv.Value != nil {
		if c, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return constVal(c)
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := w.lookupVar(x); ok {
			if av, tracked := env.vals[v]; tracked {
				return av
			}
			return w.markedVal(e, w.typeVal(v.Type()))
		}
	case *ast.SelectorExpr:
		if tv, ok := w.p.Info.Types[e]; ok && tv.Type != nil {
			return w.markedVal(e, w.typeVal(tv.Type))
		}
	case *ast.IndexExpr:
		// An element read from an offset-source-marked container (a table of
		// validated sizes, e.g. the arena's classSizes) carries the marker.
		if tv, ok := w.p.Info.Types[e]; ok && tv.Type != nil {
			return w.markedVal(x.X, w.typeVal(tv.Type))
		}
	case *ast.BinaryExpr:
		a, b := w.eval(env, x.X), w.eval(env, x.Y)
		var out absVal
		switch x.Op {
		case token.ADD:
			out = a.add(b)
		case token.SUB:
			out = a.add(b.neg())
		case token.MUL:
			out = a.mul(b)
		case token.SHL:
			if k, ok := b.isConst(); ok && k >= 0 && k < 62 {
				out = a.mul(constVal(int64(1) << uint(k)))
			}
		case token.REM:
			if m, ok := b.isConst(); ok && m > 0 && a.nonNeg() {
				out = absVal{loSet: true, hiSet: true, lo: 0, hi: m - 1}
			}
			// x % m with a validated (hence non-negative) modulus: the result
			// is bounded by m, so it inherits m's provenance — a sequence
			// number reduced mod a validated slot count IS a derived offset.
			if out.origins == nil && b.origins != nil {
				out.origins = b.origins
			}
		case token.AND:
			if m, ok := b.isConst(); ok && m >= 0 {
				out = absVal{loSet: true, hiSet: true, lo: 0, hi: m}
			} else if m, ok := a.isConst(); ok && m >= 0 {
				out = absVal{loSet: true, hiSet: true, lo: 0, hi: m}
			}
		case token.SHR, token.QUO:
			if a.nonNeg() {
				out = nonNegVal()
			}
		}
		// The Go spec keeps unsigned arithmetic unsigned: whatever the
		// interval says, the machine value cannot be negative.
		if !out.loSet {
			if tv, ok := w.p.Info.Types[e]; ok && tv.Type != nil && isUnsignedType(tv.Type) {
				out.loSet, out.lo = true, 0
			}
		}
		if out.loSet || out.hiSet || out.stride != 0 || out.origins != nil {
			return out
		}
	case *ast.CallExpr:
		// len/cap are non-negative; len of an array type is exact.
		if id, ok := unparen(x.Fun).(*ast.Ident); ok && len(x.Args) == 1 {
			if _, isBuiltin := w.p.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "len" || id.Name == "cap") {
				if n, fixed := arrayLen(w.p, x.Args[0]); fixed {
					return constVal(n)
				}
				return nonNegVal()
			}
		}
		// Conversions pass the operand through: int(uint32v) stays non-neg.
		if tv, ok := w.p.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			if isIntType(tv.Type) {
				inner := w.eval(env, x.Args[0])
				if src, ok := w.p.Info.Types[x.Args[0]]; ok && isUnsignedType(src.Type) && !inner.loSet {
					inner.loSet, inner.lo = true, 0
				}
				return inner
			}
		}
		// Calls to marker-annotated functions: offset-source provenance and
		// declared alignment on results.
		if callee, _, ok := w.prog.resolveCallee(w.p, x); ok {
			m := w.prog.markersFor()
			name := callee.Obj.FullName()
			out := w.typeVal(calleeFirstResult(callee))
			if m.offsetSourceFuncs[name] {
				out.origins = map[string]bool{name: true}
				out.loSet, out.lo = true, 0
			}
			if n := m.alignedFuncs[name]; n > 1 {
				out.stride, out.rem = n, 0
			}
			return out
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			return w.eval(env, x.X).neg()
		}
	}
	if tv, ok := w.p.Info.Types[e]; ok && tv.Type != nil {
		return w.typeVal(tv.Type)
	}
	return topVal()
}

// markedVal decorates a field/package-var read with its declaration markers
// (offset-source provenance, declared alignment), resolved through the same
// nominal word identity the mixed-access pass uses.
func (w *flowWalker) markedVal(e ast.Expr, base absVal) absVal {
	if w.prog == nil {
		return base
	}
	key, ok := mixedWordID(w.p, e)
	if !ok {
		return base
	}
	m := w.prog.markersFor()
	if m.offsetSourceKeys[key] {
		base.origins = map[string]bool{key: true}
		if !base.loSet {
			base.loSet, base.lo = true, 0
		}
	}
	if n := m.alignedKeys[key]; n > 1 && base.stride == 0 && !base.hiSet {
		base.stride, base.rem = n, 0
	}
	return base
}

// lin canonicalizes e as a linear expression over renderable terms.
func (w *flowWalker) lin(env *absEnv, e ast.Expr) linExpr {
	e = unparen(e)
	if tv, ok := w.p.Info.Types[e]; ok && tv.Value != nil {
		if c, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return linConst(c)
		}
	}
	switch x := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if key, ok := exprKey(e); ok {
			return linTerm(key)
		}
	case *ast.BinaryExpr:
		a, b := w.lin(env, x.X), w.lin(env, x.Y)
		switch x.Op {
		case token.ADD:
			return a.addScaled(b, 1)
		case token.SUB:
			return a.addScaled(b, -1)
		case token.MUL:
			if len(b.terms) == 0 && b.ok {
				return linConst(0).addScaled(a, b.c)
			}
			if len(a.terms) == 0 && a.ok {
				return linConst(0).addScaled(b, a.c)
			}
		}
	case *ast.CallExpr:
		if id, ok := unparen(x.Fun).(*ast.Ident); ok && len(x.Args) == 1 {
			if _, isBuiltin := w.p.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "len" || id.Name == "cap") {
				if n, fixed := arrayLen(w.p, x.Args[0]); fixed {
					return linConst(n)
				}
				if key, ok := exprKey(x.Args[0]); ok && id.Name == "len" {
					return linTerm("len(" + key + ")")
				}
			}
		}
		// Integer conversions are linear-transparent.
		if tv, ok := w.p.Info.Types[x.Fun]; ok && tv.IsType() && isIntType(tv.Type) && len(x.Args) == 1 {
			return w.lin(env, x.Args[0])
		}
	}
	return linExpr{}
}

// arrayLen reports the fixed length when e has an array (or *array) type.
func arrayLen(p *Package, e ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return 0, false
	}
	t := tv.Type.Underlying()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem().Underlying()
	}
	if arr, isArr := t.(*types.Array); isArr {
		return arr.Len(), true
	}
	return 0, false
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isUnsignedType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

func calleeFirstResult(info *FuncInfo) types.Type {
	sig := info.Obj.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return types.Typ[types.Invalid]
	}
	return sig.Results().At(0).Type()
}

// ---------------------------------------------------------------------------
// Condition refinement

// refine applies cond (assumed true when truth, false otherwise) to env.
func (w *flowWalker) refine(env *absEnv, cond ast.Expr, truth bool) {
	cond = unparen(cond)
	switch x := cond.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			w.refine(env, x.X, !truth)
		}
		return
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if truth {
				w.refine(env, x.X, true)
				w.refine(env, x.Y, true)
			}
			return
		case token.LOR:
			if !truth {
				w.refine(env, x.X, false)
				w.refine(env, x.Y, false)
			}
			return
		}
		op := x.Op
		if !truth {
			switch op {
			case token.LSS:
				op = token.GEQ
			case token.LEQ:
				op = token.GTR
			case token.GTR:
				op = token.LEQ
			case token.GEQ:
				op = token.LSS
			case token.EQL:
				op = token.NEQ
			case token.NEQ:
				op = token.EQL
			}
		}
		a, b := w.lin(env, x.X), w.lin(env, x.Y)
		if !a.ok || !b.ok {
			return
		}
		// Record as "expr >= 0" facts over integers (strict ops shift by 1).
		switch op {
		case token.LSS: // a < b  ⇔  b - a - 1 >= 0
			w.assume(env, b.addScaled(a, -1).addScaled(linConst(1), -1), x.X, x.Y)
		case token.LEQ: // a <= b ⇔  b - a >= 0
			w.assume(env, b.addScaled(a, -1), x.X, x.Y)
		case token.GTR: // a > b  ⇔  a - b - 1 >= 0
			w.assume(env, a.addScaled(b, -1).addScaled(linConst(1), -1), x.X, x.Y)
		case token.GEQ:
			w.assume(env, a.addScaled(b, -1), x.X, x.Y)
		case token.EQL:
			w.assume(env, a.addScaled(b, -1), x.X, x.Y)
			w.assume(env, b.addScaled(a, -1), x.X, x.Y)
			w.refineEqMod(env, x.X, x.Y)
		}
	}
}

// assume records fact l >= 0 and, when l isolates a single tracked variable,
// tightens that variable's interval too.
func (w *flowWalker) assume(env *absEnv, l linExpr, lhs, rhs ast.Expr) {
	if !l.ok {
		return
	}
	env.addFact(l)
	// Single-term cases tighten intervals: "+1*x + c >= 0" → x >= -c;
	// "-1*x + c >= 0" → x <= c.
	if len(l.terms) != 1 {
		return
	}
	for t, co := range l.terms {
		v := w.varForTerm(t, lhs, rhs)
		if v == nil {
			return
		}
		av, ok := env.vals[v]
		if !ok {
			av = w.typeVal(v.Type())
		}
		switch co {
		case 1:
			if !av.loSet || av.lo < -l.c {
				av.loSet, av.lo = true, -l.c
			}
		case -1:
			if !av.hiSet || av.hi > l.c {
				av.hiSet, av.hi = true, l.c
			}
		default:
			return
		}
		env.vals[v] = av
	}
}

// refineEqMod handles `x % n == 0`-shaped equalities by updating congruence.
func (w *flowWalker) refineEqMod(env *absEnv, lhs, rhs ast.Expr) {
	bin, ok := unparen(lhs).(*ast.BinaryExpr)
	if !ok || bin.Op != token.REM {
		return
	}
	modVal := w.eval(env, bin.Y)
	remVal := w.eval(env, rhs)
	m, mok := modVal.isConst()
	r, rok := remVal.isConst()
	if !mok || !rok || m <= 1 {
		return
	}
	if id, isID := unparen(bin.X).(*ast.Ident); isID {
		if v, found := w.lookupVar(id); found {
			av, tracked := env.vals[v]
			if !tracked {
				av = w.typeVal(v.Type())
			}
			av.stride, av.rem = m, mod64(r, m)
			env.vals[v] = av
		}
	}
}

// varForTerm maps a single-variable term key back to its object by scanning
// the comparison operands for a matching identifier.
func (w *flowWalker) varForTerm(term string, exprs ...ast.Expr) *types.Var {
	var found *types.Var
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Name != term || found != nil {
				return true
			}
			if v, isVar := w.lookupVar(id); isVar {
				found = v
			}
			return true
		})
	}
	return found
}

// ---------------------------------------------------------------------------
// Statement walk

// exits reports whether stmt definitely leaves the function (return, panic).
func (w *flowWalker) exits(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			return isNoReturnCall(w.p, call)
		}
	case *ast.BlockStmt:
		if len(s.List) > 0 {
			return w.exits(s.List[len(s.List)-1])
		}
	}
	return false
}

func (w *flowWalker) block(stmts []ast.Stmt, env *absEnv) {
	for _, s := range stmts {
		if w.stmt(s, env) {
			return
		}
	}
}

// stmt interprets one statement into env; reports whether the path exited.
func (w *flowWalker) stmt(s ast.Stmt, env *absEnv) bool {
	w.visit(w, env, s)
	switch s := s.(type) {
	case *ast.DeclStmt:
		w.visitCalls(env, s)
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok && len(vs.Values) == len(vs.Names) {
					for i := range vs.Names {
						w.assignOne(env, vs.Names[i], vs.Values[i])
					}
				}
			}
		}
	case *ast.AssignStmt:
		w.visitCalls(env, s)
		w.assign(env, s)
	case *ast.IncDecStmt:
		if id, ok := unparen(s.X).(*ast.Ident); ok {
			if v, found := w.lookupVar(id); found {
				delta := constVal(1)
				if s.Tok == token.DEC {
					delta = constVal(-1)
				}
				cur, tracked := env.vals[v]
				if !tracked {
					cur = w.typeVal(v.Type())
				}
				env.vals[v] = cur.add(delta)
				env.invalidateRoot(id.Name)
			}
		} else {
			w.havocTarget(env, s.X)
		}
	case *ast.ExprStmt:
		w.visitCalls(env, s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			w.callEffect(env, call)
		}
	case *ast.DeferStmt:
		w.visitCalls(env, s)
	case *ast.ReturnStmt:
		w.visitCalls(env, s)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		w.block(s.List, env)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, env)
		}
		w.visitCalls(env, &ast.ExprStmt{X: s.Cond})
		thenEnv := env.clone()
		w.refine(thenEnv, s.Cond, true)
		elseEnv := env.clone()
		w.refine(elseEnv, s.Cond, false)
		w.block(s.Body.List, thenEnv)
		thenExits := w.exits(lastStmt(s.Body.List))
		elseExits := false
		if s.Else != nil {
			elseExits = w.stmt(s.Else, elseEnv) || w.exits(s.Else)
		}
		switch {
		case thenExits && elseExits:
			return true
		case thenExits:
			*env = *elseEnv
		case elseExits:
			*env = *thenEnv
		default:
			thenEnv.joinInto(elseEnv)
			*env = *thenEnv
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, env)
		}
		w.havocAssigned(env, s.Body)
		if s.Post != nil {
			w.havocAssigned(env, &ast.BlockStmt{List: []ast.Stmt{s.Post}})
		}
		bodyEnv := env.clone()
		if s.Cond != nil {
			w.visitCalls(env, &ast.ExprStmt{X: s.Cond})
			w.refine(bodyEnv, s.Cond, true)
		}
		w.block(s.Body.List, bodyEnv)
		if s.Post != nil {
			w.stmt(s.Post, bodyEnv)
		}
		// After the loop only the havocked pre-state (no cond) is sound.
	case *ast.RangeStmt:
		w.visitCalls(env, &ast.ExprStmt{X: s.X})
		w.havocAssigned(env, s.Body)
		bodyEnv := env.clone()
		// The index variable of a slice/array/string range is bounded.
		if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
			if v, found := w.lookupVar(id); found {
				if isSliceLike(w.p, s.X) {
					bodyEnv.vals[v] = nonNegVal()
					if key, rok := exprKey(s.X); rok {
						// idx <= len(x)-1
						bodyEnv.addFact(linTerm("len("+key+")").addScaled(linTerm(id.Name), -1).addScaled(linConst(1), -1))
					}
				} else {
					bodyEnv.vals[v] = topVal()
				}
			}
		}
		if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
			if v, found := w.lookupVar(id); found {
				bodyEnv.vals[v] = w.typeVal(v.Type())
			}
		}
		w.block(s.Body.List, bodyEnv)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, env)
		}
		w.visitCalls(env, s)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				ce := env.clone()
				w.block(cc.Body, ce)
			}
		}
		w.havocAssigned(env, s.Body)
	case *ast.TypeSwitchStmt:
		w.visitCalls(env, s)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				ce := env.clone()
				w.block(cc.Body, ce)
			}
		}
		w.havocAssigned(env, s.Body)
	case *ast.SelectStmt:
		w.visitCalls(env, s)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				ce := env.clone()
				w.block(cc.Body, ce)
			}
		}
		w.havocAssigned(env, s.Body)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, env)
	case *ast.GoStmt:
		w.visitCalls(env, s)
	}
	return false
}

func lastStmt(list []ast.Stmt) ast.Stmt {
	if len(list) == 0 {
		return nil
	}
	return list[len(list)-1]
}

func isSliceLike(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return t.Info()&types.IsString != 0
	case *types.Pointer:
		_, isArr := t.Elem().Underlying().(*types.Array)
		return isArr
	}
	return false
}

// visitCalls visits every nested expression of s (function literals excluded)
// so sink checks see calls and index expressions inside larger statements.
func (w *flowWalker) visitCalls(env *absEnv, s ast.Node) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch n.(type) {
		case *ast.CallExpr, *ast.IndexExpr, *ast.SliceExpr:
			w.visit(w, env, n)
		}
		return true
	})
}

// assign interprets an assignment statement.
func (w *flowWalker) assign(env *absEnv, s *ast.AssignStmt) {
	// Multi-value forms (x, y := f()) havoc their targets but keep the
	// def-group note; single-expr pairs evaluate precisely.
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			w.assignOne(env, lhs, s.Rhs[i])
		}
		return
	}
	for _, rhs := range s.Rhs {
		if call, ok := unparen(rhs).(*ast.CallExpr); ok {
			w.callEffect(env, call)
		}
	}
	// An offset-source producer validates every offset it returns (allocItem
	// hands back both the byte offset and the word index), so each integer
	// tuple position inherits the provenance, not just position 0.
	srcName := ""
	if w.prog != nil && len(s.Rhs) == 1 {
		if call, isCall := unparen(s.Rhs[0]).(*ast.CallExpr); isCall {
			if callee, _, ok := w.prog.resolveCallee(w.p, call); ok && w.prog.markersFor().offsetSourceFuncs[callee.Obj.FullName()] {
				srcName = callee.Obj.FullName()
			}
		}
	}
	for i, lhs := range s.Lhs {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			w.havocTarget(env, lhs)
			continue
		}
		if id.Name == "_" {
			continue
		}
		if v, found := w.lookupVar(id); found {
			env.invalidateRoot(id.Name)
			val := w.typeVal(v.Type())
			// Position 0 evaluates the call fully (alignment markers ride on
			// the first result); later positions take provenance only.
			if i == 0 && len(s.Rhs) == 1 {
				if call, isCall := unparen(s.Rhs[0]).(*ast.CallExpr); isCall {
					val = w.eval(env, call)
				}
			} else if srcName != "" && isIntType(v.Type()) {
				val.origins = map[string]bool{srcName: true}
				val.loSet, val.lo = true, 0
			}
			env.vals[v] = val
		}
	}
}

func (w *flowWalker) assignOne(env *absEnv, lhs, rhs ast.Expr) {
	if call, ok := unparen(rhs).(*ast.CallExpr); ok {
		w.callEffect(env, call)
	}
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		w.havocTarget(env, lhs)
		return
	}
	if id.Name == "_" {
		return
	}
	v, found := w.lookupVar(id)
	if !found {
		return
	}
	val := w.eval(env, rhs)
	env.invalidateRoot(id.Name)
	env.vals[v] = val
	// Re-root equality: x := <linear expr> lets later facts about the rhs
	// terms transfer — record x - rhs >= 0 and rhs - x >= 0.
	if l := w.lin(env, rhs); l.ok && len(l.terms) > 0 {
		lt := linTerm(id.Name)
		env.addFact(lt.addScaled(l, -1))
		env.addFact(l.addScaled(lt, -1))
	}
}

// havocTarget invalidates facts rooted at a non-identifier assignment target
// (field stores, element stores, pointer stores).
func (w *flowWalker) havocTarget(env *absEnv, lhs ast.Expr) {
	if root, ok := exprRoot(lhs); ok {
		env.invalidateRoot(root.Name)
		if v, found := w.lookupVar(root); found {
			// Overwriting part of a struct does not change scalar locals,
			// but any marker-derived info cached for it is gone.
			if _, tracked := env.vals[v]; tracked {
				delete(env.vals, v)
			}
		}
	}
}

// havocAssigned resets every variable assigned anywhere under n (a loop body)
// to its type-based value and drops facts mentioning it.
func (w *flowWalker) havocAssigned(env *absEnv, n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, l := range m.Lhs {
				w.havocExpr(env, l)
			}
		case *ast.IncDecStmt:
			w.havocExpr(env, m.X)
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				w.havocExpr(env, m.X)
			}
		}
		return true
	})
}

func (w *flowWalker) havocExpr(env *absEnv, e ast.Expr) {
	if id, ok := unparen(e).(*ast.Ident); ok {
		if v, found := w.lookupVar(id); found {
			env.vals[v] = w.typeVal(v.Type())
		}
		env.invalidateRoot(id.Name)
		return
	}
	w.havocTarget(env, e)
}

// callEffect invalidates facts whose roots the call may write through: any
// argument (or receiver) root passed by reference.
func (w *flowWalker) callEffect(env *absEnv, call *ast.CallExpr) {
	touch := func(e ast.Expr) {
		if e == nil {
			return
		}
		if root, ok := exprRoot(e); ok {
			tv, hasType := w.p.Info.Types[e]
			if !hasType || refType(tv.Type) {
				env.invalidateRoot(root.Name)
			}
		}
	}
	for _, a := range call.Args {
		touch(a)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, found := w.p.Info.Selections[sel]; found && s.Kind() == types.MethodVal {
			// Methods on the roots mentioned in region facts are assumed not
			// to shrink their regions: registered areas never change length.
			// Value receivers cannot write the caller's object at all, and
			// the facts this layer records are all len()-shaped, so receiver
			// calls do not invalidate. (Explicit stores do, via assign.)
			_ = s
		}
	}
}
