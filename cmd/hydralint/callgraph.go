package main

import (
	"go/ast"
	"go/types"
)

// Program is the whole-run view over every loaded package: the function
// index the interprocedural layer resolves call sites against, and the
// per-function summary caches. Functions are keyed by types.Func.FullName()
// — "pkg.F" or "(*pkg.T).M" — because the same function is a distinct
// go/types object in every package that imports it (each importer reloads
// export data), so object identity cannot cross package boundaries but the
// fully qualified name can.
type Program struct {
	Pkgs  []*Package
	funcs map[string]*FuncInfo

	lockSums   map[string]*lockSummary
	escapeSums map[string]*escapeSummary
	atomicSums map[string]*atomicSummary
	mutateSums map[string]*mutateSummary

	markers *progMarkers

	// specModel is the parsed protocolspec.Spec view plus its computed
	// findings, built once and shared by the four spec-* checks (each
	// check emits only its own category).
	specModel *specModel
	// fps is the memoized Footprint-literal parse (model-conformance
	// reports its errors; spec-drift reads the declarations).
	fps *fpParse
}

// FuncInfo is one source-loaded function or method declaration.
type FuncInfo struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
}

func newProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:       pkgs,
		funcs:      map[string]*FuncInfo{},
		lockSums:   map[string]*lockSummary{},
		escapeSums: map[string]*escapeSummary{},
		atomicSums: map[string]*atomicSummary{},
		mutateSums: map[string]*mutateSummary{},
	}
	for _, p := range pkgs {
		p.Prog = prog
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				// First declaration wins; a test variant re-typechecking the
				// same sources produces an identical body anyway.
				if _, dup := prog.funcs[obj.FullName()]; !dup {
					prog.funcs[obj.FullName()] = &FuncInfo{Pkg: p, Decl: fd, Obj: obj}
				}
			}
		}
	}
	return prog
}

// calleeInputs describes how a call site's expressions map onto the callee's
// inputs: Recv is the receiver expression (nil for plain functions), Args the
// ordinary arguments in declaration order.
type calleeInputs struct {
	Recv ast.Expr
	Args []ast.Expr
}

// inputExpr returns the expression bound to callee input idx, where idx -1 is
// the receiver and 0..n-1 are parameters. Variadic tails and arity mismatches
// return nil.
func (ci calleeInputs) inputExpr(idx int) ast.Expr {
	if idx < 0 {
		return ci.Recv
	}
	if idx < len(ci.Args) {
		return ci.Args[idx]
	}
	return nil
}

// resolveCallee resolves a call expression to a module function the program
// has source for, together with the input mapping. Calls through function
// values, interfaces, builtins, conversions, and functions outside the loaded
// set all fail resolution.
func (prog *Program) resolveCallee(p *Package, call *ast.CallExpr) (*FuncInfo, calleeInputs, bool) {
	var fn *types.Func
	inputs := calleeInputs{Args: call.Args}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = p.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil, calleeInputs{}, false
			}
			fn, _ = sel.Obj().(*types.Func)
			inputs.Recv = fun.X
		} else {
			// Package-qualified call: pkg.F(...).
			fn, _ = p.Info.Uses[fun.Sel].(*types.Func)
		}
	}
	if fn == nil {
		return nil, calleeInputs{}, false
	}
	info, ok := prog.funcs[fn.FullName()]
	if !ok {
		return nil, calleeInputs{}, false
	}
	// Interface methods resolve to the interface's method object, whose
	// FullName never matches a concrete declaration; reaching here means a
	// concrete, source-loaded callee.
	return info, inputs, true
}

// inputIndexOf maps an identifier inside fn's body to a callee input index:
// -1 for the receiver, 0..n-1 for parameters, or ok=false for anything else.
func inputIndexOf(info *FuncInfo, id *ast.Ident) (int, bool) {
	obj := info.Pkg.Info.Uses[id]
	if obj == nil {
		obj = info.Pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return 0, false
	}
	sig := info.Obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && info.Decl.Recv != nil {
		for _, f := range info.Decl.Recv.List {
			for _, n := range f.Names {
				if info.Pkg.Info.Defs[n] == v {
					return -1, true
				}
			}
		}
	}
	idx := 0
	for _, f := range info.Decl.Type.Params.List {
		for _, n := range f.Names {
			if info.Pkg.Info.Defs[n] == v {
				return idx, true
			}
			idx++
		}
		if len(f.Names) == 0 {
			idx++
		}
	}
	return 0, false
}

// inputVars returns the receiver (index -1) and parameter variables of fn in
// input-index order.
func inputVars(info *FuncInfo) map[int]*types.Var {
	out := map[int]*types.Var{}
	if info.Decl.Recv != nil {
		for _, f := range info.Decl.Recv.List {
			for _, n := range f.Names {
				if v, ok := info.Pkg.Info.Defs[n].(*types.Var); ok {
					out[-1] = v
				}
			}
		}
	}
	idx := 0
	for _, f := range info.Decl.Type.Params.List {
		for _, n := range f.Names {
			if v, ok := info.Pkg.Info.Defs[n].(*types.Var); ok {
				out[idx] = v
			}
			idx++
		}
		if len(f.Names) == 0 {
			idx++
		}
	}
	return out
}
