package bench

import (
	"hydradb/internal/simcluster"
	"hydradb/internal/stats"
)

// fig10Results runs the incremental design-choice evaluation once per
// workload×mode; Fig10, Fig11 and SectionClaims render different views of
// the same runs.
func fig10Results(s Scale) map[string]map[simcluster.Mode]simcluster.Result {
	out := map[string]map[simcluster.Mode]simcluster.Result{}
	modes := []simcluster.Mode{
		simcluster.ModeSendRecv,
		simcluster.ModeWriteOnly,
		simcluster.ModeWriteRead,
		simcluster.ModePipelineWrite,
	}
	for _, wd := range sixWorkloads {
		w := workload(s, wd.ReadPct, wd.Dist)
		out[wd.Tag] = map[simcluster.Mode]simcluster.Result{}
		for _, m := range modes {
			out[wd.Tag][m] = runHydra(paperTestbed(s, w, m), m.String())
		}
	}
	return out
}

// Fig10 reproduces Figure 10: throughput of Send/Recv vs RDMA Write Only vs
// RDMA Write + Read vs Pipeline + RDMA Write across the six workloads
// (§6.2, §6.2.1).
func Fig10(s Scale) *stats.Table {
	res := fig10Results(s)
	t := &stats.Table{
		Title:   "Figure 10 — incremental RDMA design choices (" + s.Name + " scale)",
		Headers: []string{"workload", "mode", "Mops/s", "get avg us", "vs Send/Recv"},
	}
	for _, wd := range sixWorkloads {
		r := res[wd.Tag]
		base := r[simcluster.ModeSendRecv]
		for _, m := range []simcluster.Mode{
			simcluster.ModeSendRecv,
			simcluster.ModeWriteOnly,
			simcluster.ModeWriteRead,
			simcluster.ModePipelineWrite,
		} {
			t.AddRow(wd.Tag, m.String(), f2(r[m].ThroughputMops), f1(r[m].GetMeanUs),
				pct(r[m].ThroughputMops, base.ThroughputMops))
		}
	}
	return t
}

// Fig11 reproduces Figure 11: the remote-pointer hit analysis of the
// RDMA Write + Read configuration — successful hits, invalid hits
// (outdated item observed) and misses per workload (§6.2).
func Fig11(s Scale) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 11 — remote pointer hit analysis (" + s.Name + " scale)",
		Headers: []string{"workload", "hits", "invalid hits", "misses", "hit rate"},
	}
	for _, wd := range sixWorkloads {
		w := workload(s, wd.ReadPct, wd.Dist)
		r := runHydra(paperTestbed(s, w, simcluster.ModeWriteRead), "hydra")
		total := r.Hits + r.Stale + r.Misses
		rate := 0.0
		if total > 0 {
			rate = float64(r.Hits) / float64(total)
		}
		t.AddRow(wd.Tag,
			f2(float64(r.Hits)/1e3)+"k",
			f2(float64(r.Stale)/1e3)+"k",
			f2(float64(r.Misses)/1e3)+"k",
			f2(rate*100)+"%")
	}
	return t
}

// SectionClaims derives the §4/§6.2 headline percentages from the Fig. 10
// runs: RDMA-Write messaging vs Send/Recv (paper: up to +162.6%), pointer
// caching on top (paper: up to +29.9% for zipfian reads), and
// single-threaded vs pipelined execution (paper: up to +94.8%).
func SectionClaims(s Scale) *stats.Table {
	res := fig10Results(s)
	t := &stats.Table{
		Title:   "Section 4/6.2 claims — derived from Figure 10 runs",
		Headers: []string{"workload", "Write vs Send/Recv", "+Read vs Write", "Single vs Pipeline"},
	}
	for _, wd := range sixWorkloads {
		r := res[wd.Tag]
		t.AddRow(wd.Tag,
			pct(r[simcluster.ModeWriteOnly].ThroughputMops, r[simcluster.ModeSendRecv].ThroughputMops),
			pct(r[simcluster.ModeWriteRead].ThroughputMops, r[simcluster.ModeWriteOnly].ThroughputMops),
			pct(r[simcluster.ModeWriteOnly].ThroughputMops, r[simcluster.ModePipelineWrite].ThroughputMops))
	}
	return t
}
