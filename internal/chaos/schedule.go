// Package chaos drives HydraDB clusters through deterministic fault
// schedules and checks the surviving behavior against the linearizability
// oracle in internal/history.
//
// A Schedule is the complete, replayable description of one chaos run: the
// workload shape (clients, ops, keys), the probabilistic link-fault rates,
// and the scripted node-level events (primary crashes, SWAT leader kills,
// partitions, migrations) pinned to workload progress points. A schedule
// prints as a single line and parses back losslessly, so every failure the
// harness finds is reproducible with `hydrachaos -replay '<line>'`.
//
// Determinism has one honest caveat: the fault *decision stream* is a pure
// function of (seed, intercepted-op index), so a replay injects the
// identical sequence of drops/delays/duplicates — but which logical client
// operation collides with decision k still depends on goroutine scheduling.
// In practice failures reproduce within a few seeds; the schedule line also
// re-runs the exact event script, which is what most failures hinge on.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Event actions.
const (
	// ActKill crashes the primary of the Shard-th partition (SWAT promotes).
	ActKill = "kill"
	// ActKillLeader crashes the current SWAT leader.
	ActKillLeader = "leaderkill"
	// ActMove migrates the Shard-th partition to server machine Arg.
	ActMove = "move"
	// ActPartitionSec cuts the first secondary machine of the Shard-th
	// partition off from the other server machines (replication stalls;
	// client traffic to that machine is unaffected).
	ActPartitionSec = "partitionsec"
	// ActHeal lifts all partitions.
	ActHeal = "heal"
	// ActStop gracefully stops the Shard-th partition — full stop-drain of
	// the primary, its pipeline, and its secondaries — and restarts it in
	// place on the same machine under a new epoch. Unlike ActKill nothing
	// dies abruptly: this exercises the orderly Close path under chaos.
	ActStop = "stop"
	// ActCloseAll runs the ActStop drain over every partition in turn, so a
	// kill-then-close sequence exercises stop-drain on whatever survived.
	ActCloseAll = "closeall"
)

// Event is one scripted node-level fault, fired when the cluster-wide
// completed-operation count reaches AtOp.
type Event struct {
	AtOp   int64
	Action string
	Shard  int // partition index (into ShardIDs) for kill/move/partitionsec
	Arg    int // target machine for move
}

// String renders the event token (the inverse of parseEvent).
func (e Event) String() string {
	switch e.Action {
	case ActKill, ActPartitionSec, ActStop:
		return fmt.Sprintf("%s:%d@%d", e.Action, e.Shard, e.AtOp)
	case ActMove:
		return fmt.Sprintf("%s:%d:%d@%d", e.Action, e.Shard, e.Arg, e.AtOp)
	default:
		return fmt.Sprintf("%s@%d", e.Action, e.AtOp)
	}
}

// Schedule is a fully replayable chaos run description.
type Schedule struct {
	Seed    uint64
	Name    string // scenario label, informational
	Clients int    // concurrent client goroutines
	Ops     int    // operations per client
	Keys    int    // distinct keys (k000..k{Keys-1})

	// Probabilistic client-link fault rates, per 10 000 intercepted ops.
	// Server↔server (replication) links never receive probabilistic faults:
	// a silently lost replication write is not a fault RC hardware exhibits
	// (persistent loss kills the QP), and the scripted partitions above
	// cover the honest failure mode.
	DropRate    int
	DupRate     int
	ReorderRate int
	DelayRate   int
	DelayNs     int64 // busy-wait per delayed client-link op

	// Scheduled server-link delay (congested replication path).
	SrvDelayRate int
	SrvDelayNs   int64

	Events []Event
}

// String renders the schedule as one replayable line.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1 name=%s seed=%d clients=%d ops=%d keys=%d", s.Name, s.Seed, s.Clients, s.Ops, s.Keys)
	fmt.Fprintf(&b, " drop=%d dup=%d reorder=%d delay=%d:%d srvdelay=%d:%d",
		s.DropRate, s.DupRate, s.ReorderRate, s.DelayRate, s.DelayNs, s.SrvDelayRate, s.SrvDelayNs)
	if len(s.Events) > 0 {
		toks := make([]string, len(s.Events))
		for i, e := range s.Events {
			toks[i] = e.String()
		}
		fmt.Fprintf(&b, " events=%s", strings.Join(toks, ","))
	}
	return b.String()
}

// Parse decodes a schedule line produced by String.
func Parse(line string) (Schedule, error) {
	var s Schedule
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != "v1" {
		return s, fmt.Errorf("chaos: schedule must start with version token v1")
	}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return s, fmt.Errorf("chaos: malformed token %q", f)
		}
		var err error
		switch k {
		case "name":
			s.Name = v
		case "seed":
			s.Seed, err = strconv.ParseUint(v, 10, 64)
		case "clients":
			s.Clients, err = strconv.Atoi(v)
		case "ops":
			s.Ops, err = strconv.Atoi(v)
		case "keys":
			s.Keys, err = strconv.Atoi(v)
		case "drop":
			s.DropRate, err = strconv.Atoi(v)
		case "dup":
			s.DupRate, err = strconv.Atoi(v)
		case "reorder":
			s.ReorderRate, err = strconv.Atoi(v)
		case "delay":
			s.DelayRate, s.DelayNs, err = parseRateNs(v)
		case "srvdelay":
			s.SrvDelayRate, s.SrvDelayNs, err = parseRateNs(v)
		case "events":
			for _, tok := range strings.Split(v, ",") {
				ev, perr := parseEvent(tok)
				if perr != nil {
					return s, perr
				}
				s.Events = append(s.Events, ev)
			}
		default:
			return s, fmt.Errorf("chaos: unknown schedule key %q", k)
		}
		if err != nil {
			return s, fmt.Errorf("chaos: bad value for %s: %v", k, err)
		}
	}
	if err := s.validate(); err != nil {
		return s, err
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].AtOp < s.Events[j].AtOp })
	return s, nil
}

func parseRateNs(v string) (int, int64, error) {
	rs, ns, ok := strings.Cut(v, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want rate:ns, got %q", v)
	}
	rate, err := strconv.Atoi(rs)
	if err != nil {
		return 0, 0, err
	}
	d, err := strconv.ParseInt(ns, 10, 64)
	return rate, d, err
}

func parseEvent(tok string) (Event, error) {
	var e Event
	body, at, ok := strings.Cut(tok, "@")
	if !ok {
		return e, fmt.Errorf("chaos: event %q missing @op", tok)
	}
	n, err := strconv.ParseInt(at, 10, 64)
	if err != nil {
		return e, fmt.Errorf("chaos: event %q: %v", tok, err)
	}
	e.AtOp = n
	parts := strings.Split(body, ":")
	e.Action = parts[0]
	argc := map[string]int{ActKill: 1, ActKillLeader: 0, ActMove: 2, ActPartitionSec: 1, ActHeal: 0, ActStop: 1, ActCloseAll: 0}
	want, known := argc[e.Action]
	if !known {
		return e, fmt.Errorf("chaos: unknown event action %q", e.Action)
	}
	if len(parts)-1 != want {
		return e, fmt.Errorf("chaos: event %q wants %d args", e.Action, want)
	}
	if want >= 1 {
		if e.Shard, err = strconv.Atoi(parts[1]); err != nil {
			return e, fmt.Errorf("chaos: event %q: %v", tok, err)
		}
	}
	if want >= 2 {
		if e.Arg, err = strconv.Atoi(parts[2]); err != nil {
			return e, fmt.Errorf("chaos: event %q: %v", tok, err)
		}
	}
	return e, nil
}

func (s *Schedule) validate() error {
	if s.Clients <= 0 || s.Ops <= 0 || s.Keys <= 0 {
		return fmt.Errorf("chaos: clients/ops/keys must be positive (got %d/%d/%d)", s.Clients, s.Ops, s.Keys)
	}
	for _, r := range []int{s.DropRate, s.DupRate, s.ReorderRate, s.DelayRate, s.SrvDelayRate} {
		if r < 0 || r > 10000 {
			return fmt.Errorf("chaos: rate %d out of range [0,10000]", r)
		}
	}
	return nil
}

// Scenarios lists the named scenarios ForScenario accepts, in the order the
// smoke suite runs them.
func Scenarios() []string {
	return []string{"crash-primary", "partition-secondary", "leader-kill", "stop-drain"}
}

// ForScenario builds the canonical schedule for a named scenario. The same
// (name, seed) always yields the same schedule.
func ForScenario(name string, seed uint64) (Schedule, error) {
	base := Schedule{
		Seed:     seed,
		Name:     name,
		Clients:  4,
		Ops:      300,
		Keys:     24,
		DropRate: 60, DupRate: 25, ReorderRate: 25,
		DelayRate: 80, DelayNs: 20_000,
		SrvDelayRate: 40, SrvDelayNs: 10_000,
	}
	third := int64(base.Clients*base.Ops) / 3
	switch name {
	case "crash-primary":
		// Crash a primary mid-traffic, then migrate another partition while
		// the cluster is still settling.
		base.Events = []Event{
			{AtOp: third, Action: ActKill, Shard: 0},
			{AtOp: 2 * third, Action: ActMove, Shard: 1, Arg: 2},
		}
	case "partition-secondary":
		// Cut a secondary's machine off the replication mesh, heal it, and
		// crash the primary afterwards: promotion must still lose nothing.
		base.Events = []Event{
			{AtOp: third / 2, Action: ActPartitionSec, Shard: 0},
			{AtOp: third, Action: ActHeal},
			{AtOp: 2 * third, Action: ActKill, Shard: 0},
		}
	case "leader-kill":
		// Kill the SWAT leader, then a primary: the re-elected watcher team
		// must still drive the promotion.
		base.Events = []Event{
			{AtOp: third, Action: ActKillLeader},
			{AtOp: 2 * third, Action: ActKill, Shard: 2},
		}
	case "stop-drain":
		// Partition a secondary, gracefully stop-drain one partition while
		// the mesh is cut, heal, crash a primary, then close-drain everything
		// that survived: every stop path runs under and after faults, and the
		// harness's leak accounting must still read zero.
		base.Events = []Event{
			{AtOp: third / 2, Action: ActPartitionSec, Shard: 1},
			{AtOp: third, Action: ActStop, Shard: 0},
			{AtOp: third + third/2, Action: ActHeal},
			{AtOp: 2 * third, Action: ActKill, Shard: 2},
			{AtOp: 2*third + third/2, Action: ActCloseAll},
		}
	default:
		return Schedule{}, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, Scenarios())
	}
	return base, nil
}
