package dfs

import (
	"fmt"
	"sync"

	"hydradb/internal/stats"
)

// KV is the slice of the HydraDB client API the cache layer needs; both
// *client.Client and the public hydradb.Client satisfy it.
type KV interface {
	Put(key, val []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
}

// CacheLayer is the HydraDB-backed cache atop a DFS (§2.1): it prefetches
// input blocks into HydraDB as chunked key-value pairs ("each HDFS block is
// partitioned into several 4MB chunks and stored as key-value pairs within
// HydraDB"), serves application reads from the cache, populates on miss and
// evicts in FIFO order under a block budget.
type CacheLayer struct {
	dfs       *Cluster
	kv        KV
	chunkSize int
	maxBlocks int

	mu     sync.Mutex
	order  []string       // cached block ids, FIFO
	cached map[string]int // block id -> chunk count

	Hits   stats.Counter
	Misses stats.Counter
	Evicts stats.Counter
}

// NewCacheLayer wraps dfs with a HydraDB-backed cache. chunkSize defaults
// to 4 MB; maxBlocks bounds the cache (0 = unbounded).
func NewCacheLayer(dfs *Cluster, kv KV, chunkSize, maxBlocks int) *CacheLayer {
	if chunkSize <= 0 {
		chunkSize = 4 << 20
	}
	return &CacheLayer{
		dfs:       dfs,
		kv:        kv,
		chunkSize: chunkSize,
		maxBlocks: maxBlocks,
		cached:    map[string]int{},
	}
}

func blockID(name string, i int) string { return fmt.Sprintf("%s#%d", name, i) }

func chunkKey(id string, c int) []byte { return []byte(fmt.Sprintf("dfs:%s:%d", id, c)) }

// Prefetch loads every block of a file into the cache (the background
// prefetcher of Fig. 1).
func (cl *CacheLayer) Prefetch(name string) error {
	n, err := cl.dfs.Blocks(name)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := cl.populate(name, i); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlock serves a block from the cache, populating it on miss.
func (cl *CacheLayer) ReadBlock(name string, i int) ([]byte, error) {
	id := blockID(name, i)
	cl.mu.Lock()
	chunks, ok := cl.cached[id]
	cl.mu.Unlock()
	if ok {
		out, err := cl.readChunks(id, chunks)
		if err == nil {
			cl.Hits.Inc()
			return out, nil
		}
		// Cache inconsistency (e.g. evicted underneath): fall through.
	}
	cl.Misses.Inc()
	blk, err := cl.populate(name, i)
	if err != nil {
		return nil, err
	}
	return blk, nil
}

func (cl *CacheLayer) readChunks(id string, chunks int) ([]byte, error) {
	var out []byte
	for c := 0; c < chunks; c++ {
		part, err := cl.kv.Get(chunkKey(id, c))
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
	}
	return out, nil
}

// populate fetches a block from the DFS, stores its chunks in HydraDB and
// registers it, evicting under pressure.
func (cl *CacheLayer) populate(name string, i int) ([]byte, error) {
	blk, err := cl.dfs.ReadBlock(name, i)
	if err != nil {
		return nil, err
	}
	id := blockID(name, i)
	chunks := 0
	for off := 0; off < len(blk) || (off == 0 && len(blk) == 0); off += cl.chunkSize {
		end := off + cl.chunkSize
		if end > len(blk) {
			end = len(blk)
		}
		if err := cl.kv.Put(chunkKey(id, chunks), blk[off:end]); err != nil {
			return nil, err
		}
		chunks++
		if len(blk) == 0 {
			break
		}
	}
	cl.mu.Lock()
	if _, already := cl.cached[id]; !already {
		cl.cached[id] = chunks
		cl.order = append(cl.order, id)
	} else {
		cl.cached[id] = chunks
	}
	var evict []string
	for cl.maxBlocks > 0 && len(cl.order) > cl.maxBlocks {
		victim := cl.order[0]
		cl.order = cl.order[1:]
		evict = append(evict, victim)
	}
	victims := map[string]int{}
	for _, v := range evict {
		victims[v] = cl.cached[v]
		delete(cl.cached, v)
	}
	cl.mu.Unlock()
	for v, n := range victims {
		for c := 0; c < n; c++ {
			//hydralint:ignore error-discipline cache eviction is best-effort; an orphaned chunk is re-evicted next pass
			_ = cl.kv.Delete(chunkKey(v, c))
		}
		cl.Evicts.Inc()
	}
	return blk, nil
}

// CachedBlocks reports the cache population.
func (cl *CacheLayer) CachedBlocks() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.cached)
}
