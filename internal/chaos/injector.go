// The injector turns a Schedule's rates and the controller's partition set
// into per-operation rdma.FaultOutcome decisions. Policy lives here, per the
// fabric's contract: the fabric executes outcomes, the injector decides.
//
// Link policy:
//
//   - client↔server links carry the probabilistic faults (drop, duplicate,
//     reorder, delay). Every one of these is survivable by the client's
//     request protocol: a lost request or response parks the client until
//     RequestTimeout, which refreshes routing (fresh connections, fresh
//     mailbox cursors) and retries.
//   - server↔server links (replication, coordination) receive only the
//     scripted partition errors and scheduled delays — never silent drops.
//     On RC hardware sustained loss surfaces as a QP/completion error, not
//     silence; modeling it as Err is what lets the replication layer's
//     gap catch-up repair the stream after heal.
package chaos

import (
	"strings"
	"sync"
	"sync/atomic"

	"hydradb/internal/rdma"
)

// Injector converts fault schedules into fabric outcomes. Install with
// fabric.SetFaultHook(in.Hook).
type Injector struct {
	sched Schedule

	// ops counts intercepted client-link operations; the fault decision for
	// op k is a pure function of (seed, k).
	ops     atomic.Uint64
	srvOps  atomic.Uint64
	stopped atomic.Bool

	mu          sync.Mutex
	partitioned map[string]bool // server NIC names cut from other servers

	// Injected counts per class, for run reporting.
	Drops, Dups, Reorders, Delays, PartitionErrs atomic.Int64
}

// NewInjector builds an injector for the schedule.
func NewInjector(s Schedule) *Injector {
	return &Injector{sched: s, partitioned: map[string]bool{}}
}

// Partition cuts nicName (a server machine's adaptor) off from the other
// server machines. Client links are unaffected.
func (in *Injector) Partition(nicName string) {
	in.mu.Lock()
	in.partitioned[nicName] = true
	in.mu.Unlock()
}

// Heal lifts all partitions.
func (in *Injector) Heal() {
	in.mu.Lock()
	in.partitioned = map[string]bool{}
	in.mu.Unlock()
}

// Quiesce permanently disables all fault injection (final verification).
func (in *Injector) Quiesce() {
	in.stopped.Store(true)
	in.Heal()
}

// splitmix64 is the decision hash: cheap, stateless, and good enough to
// decorrelate consecutive op indices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func isClientNIC(name string) bool { return strings.HasPrefix(name, "client-") }

// Hook is the rdma.FaultHook the harness installs on the fabric.
//
// hydralint:hotpath
func (in *Injector) Hook(verb rdma.Verb, local, remote *rdma.NIC, nbytes int) rdma.FaultOutcome {
	if in.stopped.Load() {
		return rdma.FaultOutcome{}
	}
	ln, rn := local.Name(), remote.Name()
	if isClientNIC(ln) || isClientNIC(rn) {
		return in.clientFault()
	}
	return in.serverFault(ln, rn)
}

// clientFault rolls the probabilistic client-link faults for the next op
// index. Cumulative thresholds over one roll keep classes exclusive.
func (in *Injector) clientFault() rdma.FaultOutcome {
	idx := in.ops.Add(1)
	roll := int(splitmix64(in.sched.Seed^idx) % 10000)
	s := &in.sched
	if roll < s.DropRate {
		in.Drops.Add(1)
		return rdma.FaultOutcome{Drop: true}
	}
	roll -= s.DropRate
	if roll < s.DupRate {
		in.Dups.Add(1)
		return rdma.FaultOutcome{Duplicate: true}
	}
	roll -= s.DupRate
	if roll < s.ReorderRate {
		in.Reorders.Add(1)
		return rdma.FaultOutcome{Reorder: true}
	}
	roll -= s.ReorderRate
	if roll < s.DelayRate {
		in.Delays.Add(1)
		return rdma.FaultOutcome{DelayNs: s.DelayNs}
	}
	return rdma.FaultOutcome{}
}

// serverFault applies the scripted partitions and scheduled delays to a
// server↔server operation.
func (in *Injector) serverFault(ln, rn string) rdma.FaultOutcome {
	in.mu.Lock()
	cut := len(in.partitioned) > 0 && (in.partitioned[ln] || in.partitioned[rn])
	in.mu.Unlock()
	if cut {
		in.PartitionErrs.Add(1)
		return rdma.FaultOutcome{Err: rdma.ErrInjected}
	}
	if s := &in.sched; s.SrvDelayRate > 0 {
		idx := in.srvOps.Add(1)
		if int(splitmix64(s.Seed^(idx|1<<63))%10000) < s.SrvDelayRate {
			in.Delays.Add(1)
			return rdma.FaultOutcome{DelayNs: s.SrvDelayNs}
		}
	}
	return rdma.FaultOutcome{}
}
