package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The payload-before-release leg of spec-order: enforce the out-of-place
// PUT idiom — every store into memory reachable from a to-be-published
// pointer must be sequenced before the guardian release store that makes
// the item remotely visible.
//
// The pass tracks *allocation groups*: the locals bound by one multi-value
// definition (dataOff, metaIdx, ref, err := s.allocItem(...)) name one item's
// remote-visible memory, and values derived from them inherit the group. A
// store of a //hydralint:publish constant (GuardianLive) through a grouped
// offset — or a call into a //hydralint:publishes function — publishes the
// group. From that point until a //hydralint:unpublish constant
// (GuardianDead) retracts it, any write into region-backed memory named by
// the group is a finding:
//
//	direct      region[groupedOffset] = v, *regionView = v, copy(view, ...)
//	via calls   a callee whose mutate summary writes through a region-derived
//	            argument, or writes the region at an argument-derived offset
//
// Host-side bookkeeping (item records, counters) is deliberately out of
// scope: only writes whose target is region-backed — and therefore remotely
// readable the instant the guardian flips — are ordered. Inside a
// //hydralint:publishes function the roles invert: the first atomic
// indicator store is the publication point, and plain payload writes after
// it are findings.
//
// A package's protocolspec.Spec declares this flow as a
// payload-before-release edge (spec-drift verifies the edge's From still
// carries the publish marker the walker keys on, closing the loop), names
// the spec findings are attributed under, and — via lease-word Writers —
// sanctions the one post-release store the protocol allows: monotonic
// lease renewal. Marker-only packages still get the full flow pass, with
// an empty spec attribution.
func (sm *specModel) flowPass(prog *Program) {
	m := prog.markersFor()
	if len(m.publishConsts) == 0 && len(m.publishesFuncs) == 0 {
		return
	}
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				info := prog.funcs[obj.FullName()]
				if info == nil || info.Decl != fd {
					continue
				}
				w := &pubWalker{
					prog: prog, p: info.Pkg, info: info, sm: sm, m: m,
					spec:        sm.pkgSpec[info.Pkg.ImportPath],
					groups:      map[*types.Var]map[int]bool{},
					regionLocal: map[*types.Var]bool{},
					inPublishes: m.publishesFuncs[obj.FullName()],
				}
				env := &pubEnv{published: map[int]token.Pos{}}
				w.walkStmts(fd.Body.List, env)
			}
		}
	}
}

// pubEnv is the path state: which groups have been published (and where),
// and — inside hydralint:publishes functions — whether the indicator has
// been released yet.
type pubEnv struct {
	published map[int]token.Pos
	pubAll    bool
}

func (e *pubEnv) clone() *pubEnv {
	c := &pubEnv{published: map[int]token.Pos{}, pubAll: e.pubAll}
	for g, pos := range e.published {
		c.published[g] = pos
	}
	return c
}

// union folds a branch outcome back in: published-anywhere stays published.
func (e *pubEnv) union(o *pubEnv) {
	for g, pos := range o.published {
		if _, ok := e.published[g]; !ok {
			e.published[g] = pos
		}
	}
	e.pubAll = e.pubAll || o.pubAll
}

type pubWalker struct {
	prog *Program
	p    *Package
	info *FuncInfo
	sm   *specModel
	m    *progMarkers
	spec string // covering spec name for finding attribution ("" if none)

	groups      map[*types.Var]map[int]bool // var -> allocation groups
	regionLocal map[*types.Var]bool         // var aliases region-backed memory
	nextGroup   int
	inPublishes bool
}

// emit records a spec-order finding attributed to the covering spec.
func (w *pubWalker) emit(pos token.Pos, format string, args ...any) {
	w.sm.add(w.p, pos, "spec-order", w.spec, format, args...)
}

func (w *pubWalker) lookupVar(id *ast.Ident) (*types.Var, bool) {
	obj := w.p.Info.Uses[id]
	if obj == nil {
		obj = w.p.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// groupsOf unions the allocation groups of every identifier under e.
func (w *pubWalker) groupsOf(exprs ...ast.Expr) map[int]bool {
	out := map[int]bool{}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if v, found := w.lookupVar(id); found {
					for g := range w.groups[v] {
						out[g] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// regionDerived reports whether e names region-backed memory: a region-marked
// field/var, a region-view call result, or a local that aliases one.
func (w *pubWalker) regionDerived(e ast.Expr) bool {
	if e == nil {
		return false
	}
	derived := false
	ast.Inspect(e, func(n ast.Node) bool {
		if derived {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := w.lookupVar(n); ok && w.regionLocal[v] {
				derived = true
			}
		case *ast.SelectorExpr:
			if key, ok := mixedWordID(w.p, n); ok && w.m.regionKeys[key] {
				derived = true
			}
		case *ast.CallExpr:
			if callee, _, ok := w.prog.resolveCallee(w.p, n); ok && w.m.regionViewFuncs[callee.Obj.FullName()] {
				derived = true
			}
		}
		return true
	})
	return derived
}

// mentionsInput reports whether e mentions any parameter or receiver of the
// function being walked (the implicit group of a publishes function).
func (w *pubWalker) mentionsInput(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if _, isInput := inputIndexOf(w.info, id); isInput {
				found = true
			}
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------------
// Events

func (w *pubWalker) publish(env *pubEnv, groups map[int]bool, pos token.Pos) {
	for g := range groups {
		if _, ok := env.published[g]; !ok {
			env.published[g] = pos
		}
	}
}

func (w *pubWalker) unpublish(env *pubEnv, groups map[int]bool) {
	for g := range groups {
		delete(env.published, g)
	}
}

// writeCheck flags a region write into a published group.
func (w *pubWalker) writeCheck(env *pubEnv, groups map[int]bool, pos token.Pos, what string) {
	for g := range groups {
		if pubPos, ok := env.published[g]; ok {
			p := w.p.Fset.Position(pubPos)
			w.emit(pos,
				"%s after the item was published at line %d; sequence all payload writes before the release store, or store the hydralint:unpublish constant first",
				what, p.Line)
			return
		}
	}
}

// pubAllCheck flags a plain payload write after the indicator release inside
// a hydralint:publishes function.
func (w *pubWalker) pubAllCheck(env *pubEnv, e ast.Expr, pos token.Pos, what string) {
	if !w.inPublishes || !env.pubAll || e == nil {
		return
	}
	if w.mentionsInput(e) || w.regionDerived(e) {
		w.emit(pos,
			"%s after the indicator store in a hydralint:publishes function; the payload must be complete before the indicator is released", what)
	}
}

// ---------------------------------------------------------------------------
// Calls

// handleCallsIn processes every call under n in source order.
func (w *pubWalker) handleCallsIn(env *pubEnv, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			w.handleCall(env, call)
		}
		return true
	})
}

func (w *pubWalker) handleCall(env *pubEnv, call *ast.CallExpr) {
	// Builtin copy writes its first argument.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := w.p.Info.Uses[id].(*types.Builtin); builtin {
			if (id.Name == "copy" || id.Name == "clear") && len(call.Args) > 0 && w.regionDerived(call.Args[0]) {
				w.writeCheck(env, w.groupsOf(call.Args[0]), call.Pos(), "copy into region memory")
				w.pubAllCheck(env, call.Args[0], call.Pos(), "copy into the payload")
			}
			return
		}
	}

	// Direct sync/atomic operation: classify by the stored constant.
	if addr, valueArgs, ok := atomicOperands(w.p, call); ok {
		groups := w.groupsOf(addr)
		for _, va := range valueArgs {
			if key, isConst := constKeyOf(w.p, va); isConst {
				if w.m.publishConsts[key] {
					w.publish(env, groups, call.Pos())
					return
				}
				if w.m.unpublishConsts[key] {
					w.unpublish(env, groups)
					return
				}
			}
		}
		// Only a *writing* atomic on *region* memory matters here: a Load is
		// no fence, and a CAS on host-side bookkeeping (the NIC's inflight
		// counter) is not the indicator release.
		if atomicOpWrites(call) && w.regionDerived(addr) {
			if w.inPublishes {
				env.pubAll = true // indicator release: publication point
			} else {
				w.writeCheck(env, groups, call.Pos(), "atomic store into region memory")
			}
		}
		return
	}

	callee, inputs, ok := w.prog.resolveCallee(w.p, call)
	if !ok {
		return
	}
	name := callee.Obj.FullName()

	// A Writers entry on a lease-word role is the protocol's one
	// sanctioned post-release store (monotonic renewal under a guardian
	// readers re-validate); its writes are exempt from the order check.
	if w.sm.leaseWriters[name] {
		return
	}

	// A publish/unpublish constant handed to any callee classifies the call.
	for _, a := range call.Args {
		if key, isConst := constKeyOf(w.p, a); isConst {
			if w.m.publishConsts[key] {
				groups := w.groupsOf(append(otherArgs(call, a), inputs.Recv)...)
				w.publish(env, groups, call.Pos())
				return
			}
			if w.m.unpublishConsts[key] {
				w.unpublish(env, w.groupsOf(append(otherArgs(call, a), inputs.Recv)...))
				return
			}
		}
	}

	sum := w.prog.mutateSummaryFor(name)
	if sum.publishes {
		all := append(append([]ast.Expr{}, call.Args...), inputs.Recv)
		w.publish(env, w.groupsOf(all...), call.Pos())
		if w.inPublishes {
			env.pubAll = true
		}
		return
	}
	// A retracting callee (Mailbox.Consume stores the unpublish constant, or
	// is hydralint:unpublishes-marked) withdraws every group its operands
	// name; writes it performs on the way are the sanctioned teardown.
	if sum.unpublishes {
		all := append(append([]ast.Expr{}, call.Args...), inputs.Recv)
		w.unpublish(env, w.groupsOf(all...))
		return
	}
	for idx := range sum.writesInputs {
		e := inputs.inputExpr(idx)
		if e == nil {
			continue
		}
		if w.regionDerived(e) {
			w.writeCheck(env, w.groupsOf(e), call.Pos(), "write through a region buffer ("+callee.Obj.Name()+")")
		}
		w.pubAllCheck(env, e, call.Pos(), "write through the payload buffer ("+callee.Obj.Name()+")")
	}
	for idx := range sum.writesAtInputs {
		e := inputs.inputExpr(idx)
		if e == nil {
			continue
		}
		w.writeCheck(env, w.groupsOf(e), call.Pos(), "region write at a group offset ("+callee.Obj.Name()+")")
	}
	if w.inPublishes && sum.regionAtomicWrite {
		env.pubAll = true
	}
}

func otherArgs(call *ast.CallExpr, not ast.Expr) []ast.Expr {
	var out []ast.Expr
	for _, a := range call.Args {
		if a != not {
			out = append(out, a)
		}
	}
	return out
}

// atomicOperands splits a direct sync/atomic call into the address expression
// and the value operands: atomic.StoreUint64(&x, v) and x.Store(v) forms.
func atomicOperands(p *Package, call *ast.CallExpr) (addr ast.Expr, values []ast.Expr, ok bool) {
	if isAtomicPkgCall(p, call) && len(call.Args) > 0 {
		return addrOperand(call.Args[0]), call.Args[1:], true
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, false
	}
	s, found := p.Info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return nil, nil, false
	}
	recv := s.Recv()
	if ptr, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := types.Unalias(recv).(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return nil, nil, false
	}
	return sel.X, call.Args, true
}

// ---------------------------------------------------------------------------
// Statements

func (w *pubWalker) walkStmts(list []ast.Stmt, env *pubEnv) {
	for _, s := range list {
		w.walkStmt(s, env)
	}
}

func (w *pubWalker) walkStmt(s ast.Stmt, env *pubEnv) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.handleCallsIn(env, rhs)
		}
		for _, lhs := range s.Lhs {
			w.checkDirectWrite(env, lhs, s.Tok)
		}
		w.propagate(s)
	case *ast.ExprStmt:
		w.handleCallsIn(env, s.X)
	case *ast.DeclStmt:
		w.handleCallsIn(env, s)
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					w.propagateSpec(vs)
				}
			}
		}
	case *ast.IncDecStmt:
		w.checkDirectWrite(env, s.X, token.ASSIGN)
	case *ast.DeferStmt:
		w.handleCallsIn(env, s.Call)
	case *ast.GoStmt:
		w.handleCallsIn(env, s.Call)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.handleCallsIn(env, r)
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, env)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		w.handleCallsIn(env, s.Cond)
		thenEnv := env.clone()
		w.walkStmts(s.Body.List, thenEnv)
		elseEnv := env.clone()
		if s.Else != nil {
			w.walkStmt(s.Else, elseEnv)
		}
		env.published = map[int]token.Pos{}
		env.pubAll = false
		env.union(thenEnv)
		env.union(elseEnv)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		w.handleCallsIn(env, s.Cond)
		// Two passes: the second sees state published by the first, catching
		// cross-iteration publish-then-write orders.
		for i := 0; i < 2; i++ {
			body := env.clone()
			w.walkStmts(s.Body.List, body)
			if s.Post != nil {
				w.walkStmt(s.Post, body)
			}
			env.union(body)
		}
	case *ast.RangeStmt:
		w.handleCallsIn(env, s.X)
		for i := 0; i < 2; i++ {
			body := env.clone()
			w.walkStmts(s.Body.List, body)
			env.union(body)
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.walkCompound(s, env)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, env)
	}
}

// walkCompound handles switch/select: each clause runs from the entry state;
// the exit state is the union of clause outcomes.
func (w *pubWalker) walkCompound(s ast.Stmt, env *pubEnv) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		w.handleCallsIn(env, s.Tag)
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := env.clone()
	for _, clause := range body.List {
		ce := env.clone()
		switch c := clause.(type) {
		case *ast.CaseClause:
			w.walkStmts(c.Body, ce)
		case *ast.CommClause:
			w.walkStmts(c.Body, ce)
		}
		out.union(ce)
	}
	*env = *out
}

// checkDirectWrite flags a plain store whose target is region-backed memory
// named by a published group.
func (w *pubWalker) checkDirectWrite(env *pubEnv, lhs ast.Expr, tok token.Token) {
	if tok == token.DEFINE {
		return
	}
	lhs = unparen(lhs)
	switch x := lhs.(type) {
	case *ast.IndexExpr:
		if !w.regionDerived(x.X) {
			return
		}
		groups := w.groupsOf(x.Index, x.X)
		w.writeCheck(env, groups, x.Pos(), "store into region memory")
		w.pubAllCheck(env, x, x.Pos(), "store into the payload")
	case *ast.StarExpr, *ast.SelectorExpr:
		if root, ok := exprRoot(lhs); ok {
			if v, found := w.lookupVar(root); found && w.regionLocal[v] {
				w.writeCheck(env, w.groupsOf(lhs), lhs.Pos(), "store through a region buffer")
				w.pubAllCheck(env, lhs, lhs.Pos(), "store through the payload buffer")
			}
		}
	}
}

// propagate updates group and region taint for an assignment: a multi-value
// definition mints a fresh allocation group shared by all targets; pairwise
// assignments inherit the groups and region-ness of their right-hand sides.
func (w *pubWalker) propagate(s *ast.AssignStmt) {
	fresh := -1
	if s.Tok == token.DEFINE && len(s.Lhs) > 1 && len(s.Lhs) != len(s.Rhs) {
		fresh = w.nextGroup
		w.nextGroup++
	}
	for i, lhs := range s.Lhs {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v, found := w.lookupVar(id)
		if !found {
			continue
		}
		groups := map[int]bool{}
		region := false
		if len(s.Lhs) == len(s.Rhs) {
			rhs := s.Rhs[i]
			for g := range w.groupsOf(rhs) {
				groups[g] = true
			}
			region = w.regionDerived(rhs)
			// A single definition from an offset-source producer mints a
			// group of its own: the returned offset names fresh item memory.
			if s.Tok == token.DEFINE {
				if call, isCall := unparen(rhs).(*ast.CallExpr); isCall {
					if callee, _, ok := w.prog.resolveCallee(w.p, call); ok && w.m.offsetSourceFuncs[callee.Obj.FullName()] {
						groups[w.nextGroup] = true
						w.nextGroup++
					}
				}
			}
		} else {
			for g := range w.groupsOf(s.Rhs...) {
				groups[g] = true
			}
			if fresh >= 0 {
				groups[fresh] = true
			}
		}
		if s.Tok == token.DEFINE {
			w.groups[v] = groups
			w.regionLocal[v] = region
		} else {
			// Plain assignment: accumulate (conservative over paths).
			if w.groups[v] == nil {
				w.groups[v] = map[int]bool{}
			}
			for g := range groups {
				w.groups[v][g] = true
			}
			w.regionLocal[v] = w.regionLocal[v] || region
		}
	}
}

func (w *pubWalker) propagateSpec(vs *ast.ValueSpec) {
	if len(vs.Values) != len(vs.Names) {
		return
	}
	for i, name := range vs.Names {
		if name.Name == "_" {
			continue
		}
		v, ok := w.p.Info.Defs[name].(*types.Var)
		if !ok {
			continue
		}
		w.groups[v] = w.groupsOf(vs.Values[i])
		w.regionLocal[v] = w.regionDerived(vs.Values[i])
	}
}
