package hashx

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	key := []byte("user4839571203948571")
	h1 := Hash(key)
	h2 := Hash(key)
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %x vs %x", h1, h2)
	}
}

func TestHashLengthRegimes(t *testing.T) {
	// Exercise every size branch: 0, <4, 4..8, 9..16, 17..48, >48.
	sizes := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 24, 32, 48, 49, 64, 96, 100, 255}
	seen := make(map[uint64]int)
	for _, n := range sizes {
		key := make([]byte, n)
		for i := range key {
			key[i] = byte(i*7 + 13)
		}
		h := Hash(key)
		if prev, ok := seen[h]; ok {
			t.Errorf("collision between lengths %d and %d", prev, n)
		}
		seen[h] = n
	}
}

func TestHashStringMatchesHash(t *testing.T) {
	f := func(s string) bool {
		return HashString(s) == Hash([]byte(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashDistinguishesSimilarKeys(t *testing.T) {
	// Keys differing in a single byte must hash differently in practice.
	base := []byte("0123456789abcdef") // 16-byte key, the paper's target size
	h0 := Hash(base)
	for i := range base {
		k := append([]byte(nil), base...)
		k[i] ^= 0x01
		if Hash(k) == h0 {
			t.Fatalf("single-byte flip at %d did not change hash", i)
		}
	}
}

func TestSignatureNeverZero(t *testing.T) {
	f := func(h uint64) bool { return Signature(h) != 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Signature(0) == 0 {
		t.Fatal("Signature(0) must not be zero")
	}
	// A hash whose top 16 bits are zero maps to the reserved value 1.
	if got := Signature(0x0000ffffffffffff); got != 1 {
		t.Fatalf("expected reserved signature 1, got %d", got)
	}
}

func TestBucketIndexInRange(t *testing.T) {
	f := func(h uint64) bool {
		const n = 1 << 14
		return BucketIndex(h, n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketDistributionUniformity(t *testing.T) {
	// Chi-square sanity: hashing sequential YCSB-style keys must spread
	// close to uniformly across buckets, otherwise the compact hash table
	// would overflow-chain pathologically.
	const nBuckets = 1 << 10
	const nKeys = 200000
	counts := make([]int, nBuckets)
	for i := 0; i < nKeys; i++ {
		key := []byte(fmt.Sprintf("user%016d", i))
		counts[BucketIndex(Hash(key), nBuckets)]++
	}
	expected := float64(nKeys) / nBuckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// For 1023 degrees of freedom the 99.9th percentile is ~1168.5.
	if chi2 > 1200 {
		t.Fatalf("bucket distribution too skewed: chi2=%.1f", chi2)
	}
}

func TestSignatureDistribution(t *testing.T) {
	const nKeys = 100000
	counts := make(map[uint16]int)
	for i := 0; i < nKeys; i++ {
		key := []byte(fmt.Sprintf("user%016d", i))
		counts[Signature(Hash(key))]++
	}
	// With 65535 possible signatures and 100k keys, the max count should
	// stay near the Poisson tail; anything above 20 indicates clustering.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max > 20 {
		t.Fatalf("signature clustering: max bucket %d", max)
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	totalBits := 0
	samples := 0
	for x := uint64(1); x < 1<<20; x = x*3 + 7 {
		h0 := Hash64(x)
		for b := 0; b < 64; b += 7 {
			h1 := Hash64(x ^ (1 << b))
			diff := h0 ^ h1
			n := 0
			for diff != 0 {
				diff &= diff - 1
				n++
			}
			totalBits += n
			samples++
		}
	}
	avg := float64(totalBits) / float64(samples)
	if math.Abs(avg-32) > 6 {
		t.Fatalf("poor avalanche: average %.1f bits flipped (want ~32)", avg)
	}
}

func BenchmarkHash16(b *testing.B) {
	key := []byte("0123456789abcdef")
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		_ = Hash(key)
	}
}

func BenchmarkHash64B(b *testing.B) {
	key := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		_ = Hash(key)
	}
}
