package sim

import (
	"math/rand"
	"testing"
)

// traceRec is one executed event as observed by the test hooks.
type traceRec struct {
	inst int
	t    int64
}

// buildWorkload schedules a deterministic cascading workload on a fleet and
// returns the pointer to the shared trace the events append to.
func buildWorkload(f *Fleet, seed int64, events int) *[]traceRec {
	trace := &[]traceRec{}
	rng := rand.New(rand.NewSource(seed))
	var spawn func(inst int, depth int)
	spawn = func(inst int, depth int) {
		e := f.Instance(inst)
		delay := rng.Int63n(5000)
		target := rng.Intn(f.Size())
		e.After(delay, func() {
			*trace = append(*trace, traceRec{inst: inst, t: e.Now()})
			if depth > 0 {
				// Cross-instance hand-off: schedule on the destination at a
				// global-now-relative time, as fleet actors do.
				f.Instance(target).At(f.Now()+rng.Int63n(3000), func() {
					*trace = append(*trace, traceRec{inst: target, t: f.Instance(target).Now()})
				})
				spawn(inst, depth-1)
			}
		})
	}
	for i := 0; i < events; i++ {
		spawn(rng.Intn(f.Size()), 3)
	}
	return trace
}

// TestFleetGlobalOrder is the core shared-clock property: events across all
// instances execute in non-decreasing global timestamp order, and each
// instance's own clock is monotone.
func TestFleetGlobalOrder(t *testing.T) {
	f := NewFleet(7, 5)
	trace := buildWorkload(f, 7, 40)
	lastGlobal := int64(-1)
	lastPerInst := map[int]int64{}
	steps := 0
	for f.Step() {
		steps++
		if f.Now() < lastGlobal {
			t.Fatalf("global clock moved backwards: %d -> %d", lastGlobal, f.Now())
		}
		lastGlobal = f.Now()
	}
	if steps == 0 || len(*trace) == 0 {
		t.Fatal("workload executed no events")
	}
	for _, rec := range *trace {
		if rec.t < lastPerInst[rec.inst] {
			t.Fatalf("instance %d time moved backwards: %d -> %d", rec.inst, lastPerInst[rec.inst], rec.t)
		}
		lastPerInst[rec.inst] = rec.t
	}
	// The trace itself must be globally ordered: it was appended in
	// execution order, so timestamps must be non-decreasing.
	prev := int64(-1)
	for i, rec := range *trace {
		if rec.t < prev {
			t.Fatalf("trace[%d] out of order: %d after %d", i, rec.t, prev)
		}
		prev = rec.t
	}
}

// TestFleetDeterministic pins that two identically-built fleets execute
// identical event traces — the foundation of the scenario golden hashes.
func TestFleetDeterministic(t *testing.T) {
	run := func() []traceRec {
		f := NewFleet(42, 4)
		trace := buildWorkload(f, 42, 30)
		f.Run()
		return *trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestFleetTieBreakByInstance pins the deterministic tie rule: same
// timestamp on two instances runs the lower instance index first.
func TestFleetTieBreakByInstance(t *testing.T) {
	f := NewFleet(1, 3)
	var order []int
	// Schedule in reverse instance order at the identical timestamp.
	for i := 2; i >= 0; i-- {
		i := i
		f.Instance(i).At(100, func() { order = append(order, i) })
	}
	f.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("tie-break order = %v, want [0 1 2]", order)
	}
	if f.Now() != 100 {
		t.Fatalf("fleet clock %d, want 100", f.Now())
	}
}

// TestFleetRunUntil pins the bounded-run semantics: events at or before the
// horizon execute, later ones stay queued, and the clock lands on the
// horizon.
func TestFleetRunUntil(t *testing.T) {
	f := NewFleet(1, 2)
	var got []int64
	for _, d := range []int64{50, 150, 250} {
		d := d
		f.Instance(int(d)%2).At(d, func() { got = append(got, d) })
	}
	f.RunUntil(200)
	if len(got) != 2 || got[0] != 50 || got[1] != 150 {
		t.Fatalf("RunUntil executed %v, want [50 150]", got)
	}
	if f.Now() != 200 {
		t.Fatalf("clock %d, want 200", f.Now())
	}
	f.Run()
	if len(got) != 3 || got[2] != 250 {
		t.Fatalf("drain executed %v", got)
	}
}

// TestFleetCrossInstanceNeverInPast: an event scheduled from instance A on
// instance B at fleet-now+delay must never observe B's clock ahead of the
// scheduled time (i.e. the fleet never runs B past the hand-off before
// delivering it).
func TestFleetCrossInstanceNeverInPast(t *testing.T) {
	f := NewFleet(3, 4)
	violations := 0
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		src, dst := rng.Intn(4), rng.Intn(4)
		f.Instance(src).After(rng.Int63n(10_000), func() {
			at := f.Now() + rng.Int63n(2_000)
			f.Instance(dst).At(at, func() {
				if f.Instance(dst).Now() > at {
					violations++
				}
			})
		})
	}
	f.Run()
	if violations != 0 {
		t.Fatalf("%d cross-instance deliveries arrived in the destination's past", violations)
	}
}

// FuzzFleetOrdering feeds arbitrary schedules to the fleet and checks the
// two liveness-critical orderings: global timestamps never decrease across
// Step calls, and no instance clock moves backwards.
func FuzzFleetOrdering(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(1))
	f.Add([]byte{0, 0, 0, 0, 255, 255, 9, 1, 2, 200}, int64(99))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) == 0 || len(data) > 512 {
			return
		}
		fl := NewFleet(seed, 1+int(data[0]%8))
		// Each byte pair schedules one seed event; executed events chain one
		// follow-up each so the heaps interleave.
		for i := 0; i+1 < len(data); i += 2 {
			inst := int(data[i]) % fl.Size()
			delay := int64(data[i+1]) * 37
			e := fl.Instance(inst)
			e.After(delay, func() {
				e.After(int64(data[i%len(data)])*11, func() {})
			})
		}
		lastGlobal := int64(-1)
		lastInst := make([]int64, fl.Size())
		for {
			i := fl.next()
			if i < 0 {
				break
			}
			et, _ := fl.Instance(i).PeekNextEventTime()
			if et < lastInst[i] {
				t.Fatalf("instance %d would run event at %d after %d", i, et, lastInst[i])
			}
			lastInst[i] = et
			if !fl.Step() {
				t.Fatal("Step returned false with pending events")
			}
			if fl.Now() < lastGlobal {
				t.Fatalf("global clock backwards: %d -> %d", lastGlobal, fl.Now())
			}
			lastGlobal = fl.Now()
		}
	})
}
