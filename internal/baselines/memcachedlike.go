// Package baselines implements behavioural models of the three comparison
// systems in the paper's Figure 9 — Memcached v1.4.21, Redis v2.8.17 and
// RAMCloud — as real Go data structures with each system's architectural
// signature:
//
//   - memcachedlike: N worker threads sharing a lock-striped chained hash
//     table (libevent worker model, IPoIB/TCP transport);
//   - redislike: single-threaded instances with client-side sharding
//     (IPoIB/TCP transport);
//   - ramcloudlike: a dispatch thread handing requests to workers over
//     native InfiniBand Send/Recv, backed by log-structured memory.
//
// The discrete-event harness charges each architecture's costs (kernel
// crossings, lock acquisition, dispatch hand-off) while executing these
// stores for real, so capacity effects and correctness are not faked.
package baselines

import (
	"sync"

	"hydradb/internal/hashx"
)

// MemcachedLike is a lock-striped chained hash table with N-way sharding of
// the mutex space, mirroring memcached's item locks.
type MemcachedLike struct {
	stripes []mcStripe
	mask    uint64
}

type mcStripe struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemcachedLike creates a store with the given stripe count (power of
// two; memcached defaults to item_lock hashpower).
func NewMemcachedLike(stripes int) *MemcachedLike {
	n := 1
	for n < stripes {
		n <<= 1
	}
	s := &MemcachedLike{stripes: make([]mcStripe, n), mask: uint64(n - 1)}
	for i := range s.stripes {
		s.stripes[i].m = make(map[string][]byte)
	}
	return s
}

func (s *MemcachedLike) stripe(key []byte) *mcStripe {
	return &s.stripes[hashx.Hash(key)&s.mask]
}

// Get returns a copy of the value.
func (s *MemcachedLike) Get(key []byte) ([]byte, bool) {
	st := s.stripe(key)
	st.mu.RLock()
	v, ok := st.m[string(key)]
	st.mu.RUnlock()
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Set stores a copy of val.
func (s *MemcachedLike) Set(key, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	st := s.stripe(key)
	st.mu.Lock()
	st.m[string(key)] = cp
	st.mu.Unlock()
}

// Delete removes key.
func (s *MemcachedLike) Delete(key []byte) bool {
	st := s.stripe(key)
	st.mu.Lock()
	_, ok := st.m[string(key)]
	delete(st.m, string(key))
	st.mu.Unlock()
	return ok
}

// Len reports total items.
func (s *MemcachedLike) Len() int {
	n := 0
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
		n += len(s.stripes[i].m)
		s.stripes[i].mu.RUnlock()
	}
	return n
}
