package main

import (
	"go/ast"
	"go/types"
)

// runClockDiscipline flags direct wall-clock reads and sleeps in internal/
// packages. Lease arithmetic (§4.1.3) and failure detection (§5.2) are only
// testable when every time source is an injected timing.Clock; the audited
// escape hatches live in internal/timing (timing.Wall for liveness
// deadlines, timing.Sleep for the shard nap), which is the one package
// exempt from this check. time.After is deliberately not banned: it backs
// the blocking two-sided baseline and has no injected equivalent.
func runClockDiscipline(p *Package, r *Reporter) {
	if !p.isInternal() || p.RelPath == "internal/timing" {
		return
	}
	banned := map[string]bool{"Now": true, "Since": true, "Sleep": true}
	for _, f := range p.Files {
		if p.isTestFile(f) {
			// Tests legitimately use real time for deadlines and backoff;
			// the discipline governs the production data plane only.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if banned[sel.Sel.Name] {
				r.report("clock-discipline", call.Pos(),
					"direct time.%s on the data plane; inject a timing.Clock (timing.Wall/timing.Sleep for liveness code)",
					sel.Sel.Name)
			}
			return true
		})
	}
}
