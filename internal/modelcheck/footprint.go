package modelcheck

// Footprint declares the atomic surface one model covers: which packages it
// is the model of, which nominal atomic words those packages may touch, and
// which invariant.SchedPoint tags they may yield at.
//
// hydralint's model-conformance pass parses these declarations *statically*
// (it never executes this package), diffs them against the atomic footprint
// it extracts from the covered packages, and fails the build on any drift in
// either direction: an atomic word or SchedPoint tag that appears in covered
// code without being declared here means the model no longer exercises the
// real interleaving surface, and a declared word no word of code matches
// means the declaration is stale. Every entry must therefore be a literal
// string — no constants-by-computation, no appends.
//
// Word identities use hydralint's nominal form: "pkgpath.Type.field" for
// struct fields ("[]" appended per indexing level) and "pkgpath.var" for
// package-level variables.
type Footprint struct {
	Model       string   // Model.Name this footprint belongs to
	Packages    []string // import paths of the code the model covers
	AtomicWords []string // nominal word ids the covered packages may access
	SchedTags   []string // invariant.SchedPoint tags the covered code may hit
}

// footprints is the declared model coverage, one entry per registered model.
// Keep it in lockstep with Models(); TestFootprintsMatchModels enforces the
// name pairing and hydralint enforces the contents.
var footprints = []Footprint{
	{
		Model:       "guardian",
		Packages:    []string{"hydradb/internal/arena", "hydradb/internal/kv"},
		AtomicWords: []string{"hydradb/internal/arena.WordArea.words[]"},
		SchedTags:   []string{"word"},
	},
	{
		Model: "lease",
		// kv's lease words live in the arena word area; kv's own direct
		// atomics (publication words, read-gate sections) belong to the
		// read plane and are declared by the readerplane footprint below.
		Packages:    []string{"hydradb/internal/kv"},
		AtomicWords: []string{},
		SchedTags:   []string{},
	},
	{
		Model: "mailbox",
		// The ring indicators are arena words toggled through the fabric;
		// message itself stays free of direct atomics.
		Packages:    []string{"hydradb/internal/message", "hydradb/internal/arena"},
		AtomicWords: []string{"hydradb/internal/arena.WordArea.words[]"},
		SchedTags:   []string{"word"},
	},
	{
		Model:       "replication",
		Packages:    []string{"hydradb/internal/replication"},
		AtomicWords: []string{"hydradb/internal/replication.Secondary.applied", "hydradb/internal/replication.Secondary.started"},
		SchedTags:   []string{},
	},
	{
		Model: "readerplane",
		// The read plane's probe surface (DESIGN.md §13): hashtable root
		// buckets flip to atomic stores so readers can scan them, kv gains
		// the publication word per item and the quiescence sections the
		// reclaimer polls. Guardian/lease words stay in the arena word area
		// and are covered by the guardian footprint above.
		Packages: []string{"hydradb/internal/kv", "hydradb/internal/hashtable"},
		AtomicWords: []string{
			"hydradb/internal/kv.Store.pub[]",
			"hydradb/internal/kv.ReadSlot.sec",
			"hydradb/internal/hashtable.Table.main[]",
		},
		SchedTags: []string{},
	},
}

// Footprints returns the declared coverage table.
func Footprints() []Footprint {
	out := make([]Footprint, len(footprints))
	copy(out, footprints)
	return out
}
