package simcluster

import (
	"fmt"
	"math"
	"math/rand"
)

// Statistical read-path modeling: instead of one event per bulk-client
// operation, the fleet simulator draws client-observed latencies from
// per-class distributions whose service-time means are calibrated from the
// live microbenchmarks (calibration.go) and whose network terms come from
// the cost model. This is what lets millions of simulated clients run in
// seconds — O(samples per tick), not O(operations).

// DistKind selects a latency distribution shape.
type DistKind string

// Distribution shapes.
const (
	DistFixed       DistKind = "fixed"
	DistExponential DistKind = "exponential"
	DistLognormal   DistKind = "lognormal"
)

// LatencySpec is one class's client-observed latency distribution. MeanNs
// is the distribution mean regardless of shape (for lognormal the location
// parameter is solved so the mean comes out exactly).
type LatencySpec struct {
	Dist   DistKind
	MeanNs float64
	Sigma  float64 // lognormal shape parameter
}

// Sample draws one latency in nanoseconds.
func (s LatencySpec) Sample(rng *rand.Rand) int64 {
	switch s.Dist {
	case DistExponential:
		return int64(rng.ExpFloat64() * s.MeanNs)
	case DistLognormal:
		// E[exp(mu + sigma Z)] = exp(mu + sigma^2/2) = MeanNs.
		mu := math.Log(s.MeanNs) - s.Sigma*s.Sigma/2
		return int64(math.Exp(mu + s.Sigma*rng.NormFloat64()))
	default:
		return int64(s.MeanNs)
	}
}

// SamplerSet holds the five class samplers.
type SamplerSet struct {
	Hit, Stale, Message, Bounce, Probe LatencySpec
}

// Class returns the spec for a class name.
func (s SamplerSet) Class(c LatencyClass) (LatencySpec, error) {
	switch c {
	case ClassHit:
		return s.Hit, nil
	case ClassStale:
		return s.Stale, nil
	case ClassMessage:
		return s.Message, nil
	case ClassBounce:
		return s.Bounce, nil
	case ClassProbe:
		return s.Probe, nil
	}
	return LatencySpec{}, fmt.Errorf("simcluster: unknown latency class %q", c)
}

// SamplersFromCalibration composes client-observed latency specs: the
// calibrated CPU/service mean per class plus the network round trips the
// class pays under the cost model — one RTT for single-round classes, two
// for the classes that retry through the server (stale, bounce).
func SamplersFromCalibration(cal Calibration, cost CostModel) SamplerSet {
	rtt := 2 * float64(cost.WireNs+cost.NICOpNs)
	spec := func(c LatencyClass, rtts float64) LatencySpec {
		cc := cal.Classes[c]
		return LatencySpec{
			Dist:   DistKind(cc.Dist),
			MeanNs: cc.MeanNs + rtts*rtt,
			Sigma:  cc.Sigma,
		}
	}
	return SamplerSet{
		Hit:     spec(ClassHit, 1),
		Stale:   spec(ClassStale, 2),
		Message: spec(ClassMessage, 1),
		Bounce:  spec(ClassBounce, 2),
		Probe:   spec(ClassProbe, 1),
	}
}
