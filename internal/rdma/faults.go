// Fault injection. The chaos harness (internal/chaos, cmd/hydrachaos)
// layers deterministic fault schedules on the fabric through a single hook
// consulted by every verb. The hook is deliberately minimal: it sees the
// verb class, the two adaptors, and the payload size, and answers with what
// should happen to the operation. All fault *policy* (rates, partitions,
// which links are eligible for which faults) lives in the injector; the
// fabric only executes outcomes.
//
// Fault semantics follow what a reliably connected (RC) HCA can actually
// exhibit:
//
//   - Err models a completion-with-error (partitioned link, flushed work
//     request): the operation has no effect and the initiator learns it.
//   - Drop models silent loss before any effect: the initiator believes the
//     op succeeded. On RC hardware persistent loss surfaces as a QP error,
//     but transient loss followed by recovery at a higher layer is exactly
//     the regime the client request/response protocol must survive, so the
//     harness injects it on client links (where timeouts + routing refresh
//     recover). Read verbs cannot silently lose data the caller is waiting
//     for, so Drop on a read degrades to Err.
//   - DelayNs busy-waits against the fabric clock before the op executes
//     (congestion, a slow switch hop).
//   - Duplicate and Reorder apply to two-sided sends only: Duplicate
//     enqueues the message twice; Reorder holds the message back until the
//     next send on the same QP end and delivers it after that one (a held
//     message with no successor is lost, i.e. reorder degrades to drop at
//     stream end).
package rdma

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrInjected is returned by operations failed by a fault hook.
var ErrInjected = errors.New("rdma: injected fault")

// Verb classifies the fabric operation a fault hook observes.
type Verb uint8

// Verb classes. One-sided writes (WriteBytes, WriteWord, WriteIndicated)
// share VerbWrite; one-sided reads are VerbRead; two-sided sends VerbSend.
const (
	VerbSend Verb = iota
	VerbWrite
	VerbRead
)

// String names the verb.
func (v Verb) String() string {
	switch v {
	case VerbSend:
		return "send"
	case VerbWrite:
		return "write"
	case VerbRead:
		return "read"
	default:
		return "verb?"
	}
}

// FaultOutcome tells the fabric what to do with one intercepted operation.
// The zero value lets the op through untouched.
type FaultOutcome struct {
	// Err fails the op with no side effects; the initiator sees the error.
	Err error
	// Drop discards the op silently: the initiator sees success. Reads
	// treat Drop as Err (see package comment).
	Drop bool
	// DelayNs busy-waits before the op executes.
	DelayNs int64
	// Duplicate (sends only) enqueues the message twice.
	Duplicate bool
	// Reorder (sends only) holds the message until after the next send.
	Reorder bool
}

// FaultHook intercepts fabric operations. It runs on the initiator's
// goroutine for every verb of every QP of the fabric, so it must be cheap
// and safe for concurrent use.
type FaultHook func(verb Verb, local, remote *NIC, nbytes int) FaultOutcome

// SetFaultHook installs (or, with nil, removes) the fabric-wide fault hook.
// Safe to call concurrently with traffic.
func (f *Fabric) SetFaultHook(h FaultHook) {
	if h == nil {
		f.faults.Store((*FaultHook)(nil))
		return
	}
	f.faults.Store(&h)
}

// faultFor consults the installed hook, if any.
//
// hydralint:hotpath
func (f *Fabric) faultFor(verb Verb, local, remote *NIC, nbytes int) FaultOutcome {
	h := f.faults.Load()
	if h == nil || *h == nil {
		return FaultOutcome{}
	}
	return (*h)(verb, local, remote, nbytes)
}

// faultState is the per-fabric hook plus the per-QP reorder buffer state.
type faultState struct {
	faults atomic.Pointer[FaultHook]
}

// reorderBuf is the one-slot hold buffer a QP end uses to implement Reorder.
type reorderBuf struct {
	mu   sync.Mutex
	held []byte
}

// hold stashes msg, returning false when a message is already held (the
// caller should deliver msg normally instead of double-holding).
func (r *reorderBuf) hold(msg []byte) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.held != nil {
		return false
	}
	r.held = msg
	return true
}

// take removes and returns the held message, if any.
func (r *reorderBuf) take() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.held
	r.held = nil
	return m
}
