# HydraDB development entry points. CI (.github/workflows/ci.yml) runs the
# same targets; keeping them here means a laptop run and a CI run cannot
# drift apart.

GO        ?= go
FUZZTIME  ?= 20s

.PHONY: all build vet test race lint lint-budget lint-budget-write lint-sarif lint-liveness lint-spec deep-lint fuzz-smoke debug-test bench-smoke bench-json hydramc-smoke chaos-smoke sim-smoke cover ci

all: build test

build:
	$(GO) build ./...
	$(GO) build -tags hydradebug ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector complements hydralint's static shard-exclusivity check:
# the linter proves no locks/goroutines exist on the hot path, the race
# detector proves the remaining sharing (mailbox words, guardian words,
# conns snapshots) is correctly synchronized.
race:
	$(GO) test -race ./...

# Static invariants (clock discipline, shard exclusivity, atomic-word
# hygiene, hot-path allocations, error discipline, lease/escape dataflow,
# mixed atomic/plain access, wire-layout pins). Non-zero exit on any
# unsuppressed finding.
lint:
	$(GO) run ./cmd/hydralint ./...

# lint plus the suppression ratchet: fails when the repo-wide count of
# ignore/holds/aliases/plainread directives exceeds the checked-in baseline
# (.hydralint-budget). Raising the budget is a reviewed change to that file;
# lowering it is `make lint-budget-write`.
lint-budget:
	$(GO) run ./cmd/hydralint -budget .hydralint-budget ./...

lint-budget-write:
	$(GO) run ./cmd/hydralint -budget-write .hydralint-budget ./...

# The liveness suite alone (DESIGN.md §14): goroutine-lifecycle stop-path
# proofs, wait-cycle deadlock detection against the declared lock-order DAG,
# and bounded-spin yield/exit proofs. Already part of every full lint run;
# this target is the fast loop for concurrency-heavy changes.
lint-liveness:
	$(GO) run ./cmd/hydralint -checks=goroutine-lifecycle,wait-cycle,bounded-spin ./...

# Machine-readable findings for code-scanning upload (written even when clean).
lint-sarif:
	$(GO) run ./cmd/hydralint -sarif hydralint.sarif ./...

# The declarative-spec loop (DESIGN.md §16): the spec engine's self-tests
# (seeded-bug fixtures, the publication-order golden, README table sync),
# the generated-vs-hand-written footprint test, and the hydramc -footprints
# diff on the command line.
lint-spec:
	$(GO) test -count=1 -run 'Spec|Golden|ReadmeSync' ./cmd/hydralint
	$(GO) test -count=1 -run 'TestGeneratedFootprintsMatchHandWritten' ./internal/modelcheck
	$(GO) run ./cmd/hydramc -footprints

# Nightly deep verification (.github/workflows/nightly.yml): the budgeted
# lint plus a hydramc exploration an order of magnitude past the smoke
# bound, including a word-granularity (-fine) mailbox leg. Model drift and
# rare interleavings that hide under the smoke caps surface here instead of
# blocking the per-PR pipeline.
DEEPMCSCHEDULES ?= 200000
DEEPMCTIMEOUT   ?= 2400
deep-lint: lint-budget lint-sarif lint-liveness lint-spec
	timeout $(DEEPMCTIMEOUT) $(GO) run ./cmd/hydramc -all -maxschedules $(DEEPMCSCHEDULES)
	timeout $(DEEPMCTIMEOUT) $(GO) run -tags hydradebug ./cmd/hydramc -model mailbox -fine -maxsteps 800 -maxschedules $(DEEPMCSCHEDULES)
	! timeout $(DEEPMCTIMEOUT) $(GO) run -tags hydradebug ./cmd/hydramc -model mailbox -fine -bug -maxsteps 800 -maxschedules $(DEEPMCSCHEDULES)

# Short fuzz pass over the wire codecs; go test -fuzz accepts only one
# package per invocation.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzBucketEncodeDecode -fuzztime=$(FUZZTIME) ./internal/hashtable
	$(GO) test -run='^$$' -fuzz=FuzzMessageRoundTrip -fuzztime=$(FUZZTIME) ./internal/message
	$(GO) test -run='^$$' -fuzz=FuzzMailboxRing -fuzztime=$(FUZZTIME) ./internal/message

# Live-mode microbenchmarks at a token iteration count with allocation
# reporting: catches hot-path regressions (a new alloc, a broken pipeline)
# without paying for a statistically meaningful perf run in CI.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkLive' -benchtime=100x .

# Machine-readable benchmark snapshot: the live microbenchmarks at a
# meaningful iteration count, rendered to JSON by cmd/benchjson. CI uploads
# the file as a build artifact; the checked-in BENCH_PR7.json is one such
# run capturing the read-plane sweep (regenerate with this target).
BENCHJSONTIME ?= 2000x
BENCHJSONOUT  ?= BENCH_PR7.json
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkLive' -benchtime=$(BENCHJSONTIME) . \
		| tee bench-json.log | $(GO) run ./cmd/benchjson > $(BENCHJSONOUT)
	@rm -f bench-json.log
	@echo wrote $(BENCHJSONOUT)

# Runtime sanitizers: goroutine-ownership assertions, arena double-free /
# use-after-free canaries, guardian-word validation at the fabric boundary.
debug-test:
	$(GO) test -tags hydradebug ./...

# Bounded exhaustive-interleaving pass (DESIGN.md §9): explore every
# protocol model and self-test that each seeded bug is caught, with the
# schedule count capped so the pass stays seconds, not minutes. `timeout`
# backstops a scheduler regression turning the bound into a hang. The fine
# (word-granularity) leg covers only the mailbox model — the one whose
# seeded bug is a torn-indicator race — because fine mode multiplies the
# state space far past a smoke budget on the other models; the healthy run
# must stay silent and the armed seeded bug must exit non-zero.
MCSCHEDULES ?= 20000
MCTIMEOUT   ?= 300
hydramc-smoke:
	timeout $(MCTIMEOUT) $(GO) run ./cmd/hydramc -all -maxschedules $(MCSCHEDULES)
	timeout $(MCTIMEOUT) $(GO) run -tags hydradebug ./cmd/hydramc -model mailbox -fine -maxsteps 400 -maxschedules $(MCSCHEDULES)
	! timeout $(MCTIMEOUT) $(GO) run -tags hydradebug ./cmd/hydramc -model mailbox -fine -bug -maxsteps 400 -maxschedules $(MCSCHEDULES)

# Chaos smoke (DESIGN.md §10): every scenario — crash-primary,
# partition-secondary, leader-kill — under seeded link faults and scripted
# node failures, each run checked for per-key linearizability and lost
# acked writes; then the armed seeded-bug self-test, which must exit
# non-zero or the oracle is blind. Bounded seeds keep the pass in seconds;
# a failing run prints a one-line schedule for `hydrachaos -replay`.
CHAOSSEEDS   ?= 3
CHAOSTIMEOUT ?= 600
chaos-smoke:
	timeout $(CHAOSTIMEOUT) $(GO) run ./cmd/hydrachaos -seed 1 -seeds $(CHAOSSEEDS) -clients 3 -ops 100 -keys 16
	timeout $(CHAOSTIMEOUT) $(GO) run ./cmd/hydrachaos -seed 1 -seeds $(CHAOSSEEDS) -readers 2 -clients 3 -ops 100 -keys 16
	! timeout $(CHAOSTIMEOUT) $(GO) run ./cmd/hydrachaos -scenario crash-primary -bug -clients 2 -ops 60 -keys 8

# Fleet-simulator smoke (DESIGN.md §15): every named scenario at smoke
# scale with its invariant checks, then the armed seeded-bug self-test,
# which must exit non-zero or the scenario checkers are blind. `timeout`
# backstops an event-loop regression turning the bounded run into a hang.
# SIMJSON captures the canonical results (CI uploads it as an artifact).
SIMTIMEOUT ?= 300
SIMJSON    ?= sim-results.json
sim-smoke:
	timeout $(SIMTIMEOUT) $(GO) run ./cmd/hydrasim -scenario all -scale smoke -seed 1 -json $(SIMJSON) > /dev/null
	! timeout $(SIMTIMEOUT) $(GO) run ./cmd/hydrasim -scenario promotion-storm -scale smoke -seed 1 -bug stuck-promotion -json /dev/null > /dev/null 2>&1

# Per-package statement coverage, so the HA packages' verification gain is
# visible at a glance.
cover:
	$(GO) test -cover ./... | grep -v "no test files"

ci: build vet lint-budget lint-liveness lint-spec test race debug-test bench-smoke fuzz-smoke hydramc-smoke chaos-smoke sim-smoke
