package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file computes per-function summaries — the interprocedural layer the
// lease-discipline, published-escape, and mixed-access passes resolve call
// sites against. A summary describes a function's externally visible effect
// on its inputs (receiver = index -1, parameters = 0..n-1) so a caller's
// intra-procedural analysis can step over the call instead of stopping at it:
//
//	lockSummary    net lock acquires/releases on input-rooted lock words
//	               ("releases its receiver's mu on every path")
//	escapeSummary  which inputs a return value may alias, and which inputs
//	               the function publishes to a field/global/channel
//	atomicSummary  which pointer inputs the function dereferences atomically
//	               (sync/atomic calls) and which it dereferences plainly
//
// Summaries are memoized on the Program, keyed by types.Func.FullName(), and
// follow calls into other summarized functions with a cycle guard; a cycle or
// an unanalyzable construct yields a nil summary, which callers treat exactly
// like the pre-interprocedural behaviour (the call has no modeled effect).

// ---------------------------------------------------------------------------
// Lock summaries (lease-discipline)

// lockEffect is one net effect on an input-rooted lock word: n > 0 acquires
// it for the caller, n < 0 releases the caller's hold.
type lockEffect struct {
	input int    // -1 = receiver, else parameter index
	path  string // selector path under the input ("" = the input itself, ".mu" = its field)
	mode  string // "/w" or "/r" for sync mutexes, "" for invariant.Owner
	n     int
}

type lockSummary struct {
	effects []lockEffect
}

// lockOpPkg classifies a call as a lock acquire/release, package-scoped (the
// standalone core of lockFlow.lockOp). dir is +1 for acquires, -1 releases.
func lockOpPkg(p *Package, call *ast.CallExpr) (recv ast.Expr, mode string, dir int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || !lockMethodName(sel.Sel.Name) {
		return nil, "", 0, false
	}
	kind := lockRecvKind(p, sel)
	if kind == lockNone {
		return nil, "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		return sel.X, "/w", +1, true
	case "Unlock":
		return sel.X, "/w", -1, true
	case "RLock":
		return sel.X, "/r", +1, true
	case "RUnlock":
		return sel.X, "/r", -1, true
	case "Acquire":
		if kind == lockOwner {
			return sel.X, "", +1, true
		}
	case "Release":
		if kind == lockOwner {
			return sel.X, "", -1, true
		}
	}
	return nil, "", 0, false
}

// exprRoot returns the leftmost identifier of a selector/index/deref chain.
func exprRoot(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil, false
			}
			e = x.X
		default:
			return nil, false
		}
	}
}

// touchesLocks reports whether fn's body (function literals excluded — they
// run under their own analysis) performs a lock operation directly, or calls
// a module function that transitively does. Memoized with a cycle guard on
// seen; cycles count as touching (conservative).
func (prog *Program) touchesLocks(name string, seen map[string]bool) bool {
	if seen[name] {
		return true
	}
	seen[name] = true
	info, ok := prog.funcs[name]
	if !ok {
		return false
	}
	touches := false
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		if touches {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, _, _, isLock := lockOpPkg(info.Pkg, call); isLock {
			touches = true
			return false
		}
		if callee, _, ok := prog.resolveCallee(info.Pkg, call); ok {
			if prog.touchesLocks(callee.Obj.FullName(), seen) {
				touches = true
				return false
			}
		}
		return true
	})
	return touches
}

// lockSummaryFor returns fn's lock summary, computing and memoizing it. A nil
// result means the function's lock effect could not be proven constant across
// all exits (or the function is unknown); callers must treat the call as
// having no modeled effect.
func (prog *Program) lockSummaryFor(name string) *lockSummary {
	if s, done := prog.lockSums[name]; done {
		return s
	}
	prog.lockSums[name] = nil // cycle guard: self-recursion sees "unknown"
	info, ok := prog.funcs[name]
	if !ok {
		return nil
	}
	if !prog.touchesLocks(name, map[string]bool{}) {
		s := &lockSummary{}
		prog.lockSums[name] = s
		return s
	}
	s := summarizeLocks(prog, info)
	prog.lockSums[name] = s
	return s
}

// lockDeltaState is the evaluator state: net count per lock key, where a key
// is either "input:<idx><path><mode>" (rooted at a receiver/param) or the
// plain caller-side key for anything else (which must net to zero).
type lockDeltaState map[string]int

func (d lockDeltaState) clone() lockDeltaState {
	c := make(lockDeltaState, len(d))
	for k, v := range d {
		c[k] = v
	}
	return c
}

func (d lockDeltaState) equal(o lockDeltaState) bool {
	for k, v := range d {
		if v != o[k] {
			return false
		}
	}
	for k, v := range o {
		if v != d[k] {
			return false
		}
	}
	return true
}

func (d lockDeltaState) add(key string, n int) {
	if v := d[key] + n; v == 0 {
		delete(d, key)
	} else {
		d[key] = v
	}
}

// summarizeLocks abstractly executes fn requiring every exit to carry the
// same net lock delta. Supported shapes: straight-line code, if/else, early
// returns, defers, and calls into other summarized functions; any construct
// with control flow the evaluator does not model is permitted only when its
// subtree performs no lock operations.
func summarizeLocks(prog *Program, info *FuncInfo) *lockSummary {
	ev := &lockSummaryEval{prog: prog, info: info}
	final, exited := ev.block(info.Decl.Body.List, lockDeltaState{})
	if ev.failed {
		return nil
	}
	if !exited {
		ev.recordExit(final)
	}
	if ev.failed || ev.exit == nil {
		// All paths panic/fatal: no live exit, no effect to model.
		if ev.failed {
			return nil
		}
		return &lockSummary{}
	}
	// Defers discharge at every exit identically.
	for k, n := range ev.deferred {
		ev.exit.add(k, n)
	}
	var effects []lockEffect
	for key, n := range *ev.exit {
		if n == 0 {
			continue
		}
		idx, path, mode, ok := splitSummaryKey(key)
		if !ok {
			return nil // net effect on a non-input lock: not expressible
		}
		effects = append(effects, lockEffect{input: idx, path: path, mode: mode, n: n})
	}
	return &lockSummary{effects: effects}
}

type lockSummaryEval struct {
	prog     *Program
	info     *FuncInfo
	deferred lockDeltaState
	exit     *lockDeltaState // common delta of all exits seen so far
	failed   bool
}

func (ev *lockSummaryEval) fail() { ev.failed = true }

func (ev *lockSummaryEval) recordExit(d lockDeltaState) {
	if ev.failed {
		return
	}
	if ev.exit == nil {
		c := d.clone()
		ev.exit = &c
		return
	}
	if !ev.exit.equal(d) {
		ev.fail()
	}
}

// keyFor renders a lock receiver as a summary key: input-rooted receivers
// become "input:<idx><path><mode>"; everything else keeps its syntactic key.
func (ev *lockSummaryEval) keyFor(recv ast.Expr, mode string) (string, bool) {
	full, renderable := exprKey(recv)
	if !renderable {
		return "", false
	}
	root, ok := exprRoot(recv)
	if !ok {
		return "", false
	}
	if idx, isInput := inputIndexOf(ev.info, root); isInput {
		path := strings.TrimPrefix(strings.TrimPrefix(full, "&"), "*")
		path = strings.TrimPrefix(path, root.Name)
		return summaryKey(idx, path, mode), true
	}
	return full + mode, true
}

func summaryKey(idx int, path, mode string) string {
	return "input:" + strconv.Itoa(idx) + "\x00" + path + mode
}

func splitSummaryKey(key string) (idx int, path, mode string, ok bool) {
	rest, found := strings.CutPrefix(key, "input:")
	if !found {
		return 0, "", "", false
	}
	num, rest, found := strings.Cut(rest, "\x00")
	if !found {
		return 0, "", "", false
	}
	idx, err := strconv.Atoi(num)
	if err != nil {
		return 0, "", "", false
	}
	for _, m := range []string{"/w", "/r"} {
		if strings.HasSuffix(rest, m) {
			mode = m
			rest = strings.TrimSuffix(rest, m)
			break
		}
	}
	return idx, rest, mode, true
}

// callDeltas maps a call's lock effects into the current function's key
// space. ok=false means the call is effectful but unmappable → fail.
func (ev *lockSummaryEval) callDeltas(call *ast.CallExpr) (map[string]int, bool) {
	if recv, mode, dir, isLock := lockOpPkg(ev.info.Pkg, call); isLock {
		key, renderable := ev.keyFor(recv, mode)
		if !renderable {
			return nil, false
		}
		return map[string]int{key: dir}, true
	}
	callee, inputs, resolved := ev.prog.resolveCallee(ev.info.Pkg, call)
	if !resolved {
		return nil, true // unknown call, no modeled effect
	}
	sum := ev.prog.lockSummaryFor(callee.Obj.FullName())
	if sum == nil {
		// Callee touches locks but is unanalyzable: unsafe to step over.
		if ev.prog.touchesLocks(callee.Obj.FullName(), map[string]bool{}) {
			return nil, false
		}
		return nil, true
	}
	out := map[string]int{}
	for _, eff := range sum.effects {
		actual := inputs.inputExpr(eff.input)
		if actual == nil {
			return nil, false
		}
		if un, isAddr := actual.(*ast.UnaryExpr); isAddr && un.Op == token.AND {
			actual = un.X
		}
		full, renderable := exprKey(actual)
		if !renderable {
			return nil, false
		}
		root, hasRoot := exprRoot(actual)
		if hasRoot {
			if idx, isInput := inputIndexOf(ev.info, root); isInput {
				rel := strings.TrimPrefix(strings.TrimPrefix(full, "&"), "*")
				rel = strings.TrimPrefix(rel, root.Name)
				out[summaryKey(idx, rel+eff.path, eff.mode)] += eff.n
				continue
			}
		}
		out[full+eff.path+eff.mode] += eff.n
	}
	return out, true
}

// subtreeLockFree verifies a statement the evaluator does not model contains
// no lock operations and no calls into lock-touching module functions
// (function literals excluded).
func (ev *lockSummaryEval) subtreeLockFree(n ast.Node) bool {
	free := true
	ast.Inspect(n, func(m ast.Node) bool {
		if !free {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		call, isCall := m.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if _, _, _, isLock := lockOpPkg(ev.info.Pkg, call); isLock {
			free = false
			return false
		}
		if callee, _, ok := ev.prog.resolveCallee(ev.info.Pkg, call); ok {
			if ev.prog.touchesLocks(callee.Obj.FullName(), map[string]bool{}) {
				free = false
				return false
			}
		}
		return true
	})
	return free
}

// block executes stmts, returning the fall-through delta and whether every
// path exited (returned/panicked) before the end.
func (ev *lockSummaryEval) block(stmts []ast.Stmt, d lockDeltaState) (lockDeltaState, bool) {
	cur := d.clone()
	for _, s := range stmts {
		if ev.failed {
			return cur, true
		}
		var exited bool
		cur, exited = ev.stmt(s, cur)
		if exited {
			return cur, true
		}
	}
	return cur, false
}

func (ev *lockSummaryEval) stmt(s ast.Stmt, d lockDeltaState) (lockDeltaState, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return ev.block(s.List, d)

	case *ast.ExprStmt:
		call, isCall := s.X.(*ast.CallExpr)
		if !isCall {
			if !ev.subtreeLockFree(s) {
				ev.fail()
			}
			return d, false
		}
		if deltas, ok := ev.callDeltas(call); ok {
			for k, n := range deltas {
				d.add(k, n)
			}
			// Arguments may hide lock ops in nested calls; keep it honest.
			for _, arg := range call.Args {
				if !ev.subtreeLockFree(arg) {
					ev.fail()
				}
			}
			return d, false
		}
		if isNoReturnCall(ev.info.Pkg, call) {
			return d, true // crash path: exempt from balancing
		}
		ev.fail()
		return d, false

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if !ev.subtreeLockFree(res) {
				ev.fail()
			}
		}
		ev.recordExit(d)
		return d, true

	case *ast.DeferStmt:
		if deltas, ok := ev.callDeltas(s.Call); ok {
			if ev.deferred == nil {
				ev.deferred = lockDeltaState{}
			}
			for k, n := range deltas {
				ev.deferred.add(k, n)
			}
			return d, false
		}
		if fl, isLit := s.Call.Fun.(*ast.FuncLit); isLit {
			// A deferred literal: fold its straight-line lock effect in.
			body, exited := ev.block(fl.Body.List, lockDeltaState{})
			if !exited {
				if ev.deferred == nil {
					ev.deferred = lockDeltaState{}
				}
				for k, n := range body {
					ev.deferred.add(k, n)
				}
				return d, false
			}
		}
		ev.fail()
		return d, false

	case *ast.IfStmt:
		if s.Init != nil {
			if !ev.subtreeLockFree(s.Init) {
				ev.fail()
				return d, false
			}
		}
		if !ev.subtreeLockFree(s.Cond) {
			ev.fail()
			return d, false
		}
		thenD, thenExit := ev.block(s.Body.List, d)
		elseD, elseExit := d.clone(), false
		if s.Else != nil {
			elseD, elseExit = ev.stmt(s.Else, d.clone())
		}
		switch {
		case thenExit && elseExit:
			return d, true
		case thenExit:
			return elseD, false
		case elseExit:
			return thenD, false
		default:
			if !thenD.equal(elseD) {
				ev.fail()
			}
			return thenD, false
		}

	default:
		// Any other construct is fine only when lock-free throughout.
		if !ev.subtreeLockFree(s) {
			ev.fail()
		}
		return d, false
	}
}

// ---------------------------------------------------------------------------
// Escape summaries (published-escape)

// escapeSummary describes how a function treats reference-typed inputs.
type escapeSummary struct {
	returnsAlias map[int]bool // a return value may alias this input
	escapes      map[int]bool // input is published to a field/global/channel
	// resultsThatAlias is the set of result positions that may carry an
	// aliasing view; tuple-binding callers taint only those positions
	// (DecodeResponse's error result is not a view of the buffer).
	resultsThatAlias map[int]bool
	aliasesMarker    bool // doc carries hydralint:aliases: result is a registered view
}

// escapeSummaryFor computes (and memoizes) fn's escape summary. The zero
// summary — nothing aliases, nothing escapes — is the optimistic default for
// unknown functions, matching the pre-interprocedural assumption that a call
// boundary launders taint.
func (prog *Program) escapeSummaryFor(name string) *escapeSummary {
	if s, done := prog.escapeSums[name]; done {
		if s == nil {
			return &escapeSummary{} // cycle in progress: optimistic
		}
		return s
	}
	prog.escapeSums[name] = nil // cycle guard
	info, ok := prog.funcs[name]
	if !ok {
		s := &escapeSummary{}
		prog.escapeSums[name] = s
		return s
	}
	s := &escapeSummary{
		returnsAlias:     map[int]bool{},
		escapes:          map[int]bool{},
		resultsThatAlias: map[int]bool{},
		aliasesMarker:    docHasMarker(info.Decl.Doc, "hydralint:aliases"),
	}
	for idx, v := range inputVars(info) {
		if !refType(v.Type()) {
			continue
		}
		e := &escapeFlow{p: info.Pkg, prog: prog, summaryMode: true, tainted: map[*types.Var]bool{v: true}}
		e.propagate(info.Decl.Body)
		e.walkSinks(info.Decl.Body, func(pos token.Pos, kind sinkKind, desc string) {
			if kind == sinkReturn {
				s.returnsAlias[idx] = true
				if ri, err := strconv.Atoi(desc); err == nil {
					s.resultsThatAlias[ri] = true
				}
			} else {
				s.escapes[idx] = true
			}
		})
	}
	prog.escapeSums[name] = s
	return s
}

// ---------------------------------------------------------------------------
// Atomic-access summaries (mixed-access)

// atomicSummary records, per pointer input, whether the function accesses the
// pointee with sync/atomic operations, with plain loads/stores, or hands it
// on to a function that does either.
type atomicSummary struct {
	atomicInputs map[int]bool
	plainInputs  map[int]bool
}

func (prog *Program) atomicSummaryFor(name string) *atomicSummary {
	if s, done := prog.atomicSums[name]; done {
		if s == nil {
			return &atomicSummary{}
		}
		return s
	}
	prog.atomicSums[name] = nil
	info, ok := prog.funcs[name]
	if !ok {
		s := &atomicSummary{}
		prog.atomicSums[name] = s
		return s
	}
	s := &atomicSummary{atomicInputs: map[int]bool{}, plainInputs: map[int]bool{}}
	inputOf := func(e ast.Expr) (int, bool) {
		e = unparen(e)
		if un, ok := e.(*ast.UnaryExpr); ok && un.Op == token.AND {
			if st, ok := un.X.(*ast.StarExpr); ok {
				e = unparen(st.X) // &*p is p
			}
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return 0, false
		}
		return inputIndexOf(info, id)
	}
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StarExpr:
			if idx, ok := inputOf(n.X); ok {
				s.plainInputs[idx] = true
			}
		case *ast.CallExpr:
			if isAtomicPkgCall(info.Pkg, n) && len(n.Args) > 0 {
				if idx, ok := inputOf(n.Args[0]); ok {
					s.atomicInputs[idx] = true
					return true
				}
			}
			if callee, inputs, ok := prog.resolveCallee(info.Pkg, n); ok {
				sub := prog.atomicSummaryFor(callee.Obj.FullName())
				for calleeIdx := range sub.atomicInputs {
					if idx, ok := inputOf(inputs.inputExpr(calleeIdx)); ok {
						s.atomicInputs[idx] = true
					}
				}
				for calleeIdx := range sub.plainInputs {
					if idx, ok := inputOf(inputs.inputExpr(calleeIdx)); ok {
						s.plainInputs[idx] = true
					}
				}
			}
		}
		return true
	})
	prog.atomicSums[name] = s
	return s
}

// ---------------------------------------------------------------------------
// Mutation summaries (spec-order)

// mutateSummary records a function's externally visible writes, for the
// spec-order flow pass:
//
//	writesInputs    the function writes *through* this pointer/slice input
//	                (element stores, field stores, copy/clear, or handing it
//	                to a callee that does) — EncodeItem writes its dst
//	writesAtInputs  the function writes a //hydralint:region-marked base at
//	                an offset derived from this input (plain stores, writing
//	                sync/atomic operations, or clear/copy over a region
//	                window) — WordArea.Store writes the word area at idx,
//	                Arena.Free clears the byte region at off
//	publishes       the function performs a publication: stores or forwards
//	                a hydralint:publish constant, is hydralint:publishes
//	                marked, or transitively calls a publisher
//	unpublishes     the inverse: the function retracts visibility by storing
//	                or forwarding a hydralint:unpublish constant, carries the
//	                hydralint:unpublishes marker, or calls an unpublisher —
//	                Mailbox.Consume retires a delivered slot
//	regionAtomicWrite  the function (or a callee) performs a writing
//	                sync/atomic op on a //hydralint:region-marked word — the
//	                store that could act as a release fence for publication
type mutateSummary struct {
	writesInputs      map[int]bool
	writesAtInputs    map[int]bool
	publishes         bool
	unpublishes       bool
	regionAtomicWrite bool
}

func (prog *Program) mutateSummaryFor(name string) *mutateSummary {
	if s, done := prog.mutateSums[name]; done {
		if s == nil {
			return &mutateSummary{} // recursion: optimistic fixpoint
		}
		return s
	}
	prog.mutateSums[name] = nil
	info, ok := prog.funcs[name]
	if !ok {
		s := &mutateSummary{}
		prog.mutateSums[name] = s
		return s
	}
	m := prog.markersFor()
	s := &mutateSummary{writesInputs: map[int]bool{}, writesAtInputs: map[int]bool{}}
	if m.publishesFuncs[name] {
		s.publishes = true
	}
	if m.unpublishesFuncs[name] {
		s.unpublishes = true
	}

	// Shallow local taint: one in-source-order pass mapping each local to the
	// inputs its initializer mentions, so an offset that flows through a local
	// (size := classSizes[classOf(n)]) still attributes region writes to its
	// input. Deliberately not a fixpoint: taint that only flows backward
	// through a loop is missed, an under-approximation that avoids false
	// positives on hash-derived indices.
	taint := map[*types.Var]map[int]bool{}
	inputsOf := func(exprs ...ast.Expr) map[int]bool {
		out := map[int]bool{}
		for _, e := range exprs {
			if e == nil {
				continue
			}
			ast.Inspect(e, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				if id, ok := n.(*ast.Ident); ok {
					if idx, isInput := inputIndexOf(info, id); isInput {
						out[idx] = true
					} else if v, isVar := info.Pkg.Info.Uses[id].(*types.Var); isVar {
						for idx := range taint[v] {
							out[idx] = true
						}
					}
				}
				return true
			})
		}
		return out
	}
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isIdent := unparen(lhs).(*ast.Ident)
			if !isIdent || id.Name == "_" {
				continue
			}
			v, isVar := info.Pkg.Info.Defs[id].(*types.Var)
			if !isVar {
				if v, isVar = info.Pkg.Info.Uses[id].(*types.Var); !isVar {
					continue
				}
			}
			var from map[int]bool
			if len(as.Lhs) == len(as.Rhs) {
				from = inputsOf(as.Rhs[i])
			} else {
				from = inputsOf(as.Rhs...)
			}
			if len(from) > 0 {
				taint[v] = from
			}
		}
		return true
	})

	inputOf := func(e ast.Expr) (int, bool) {
		root, ok := exprRoot(e)
		if !ok {
			return 0, false
		}
		return inputIndexOf(info, root)
	}
	markWrite := func(e ast.Expr) {
		if idx, ok := inputOf(e); ok {
			s.writesInputs[idx] = true
		}
	}
	// markRegionWrite attributes a write whose target is base[...] (or a
	// window of it) to the inputs the offset expressions mention, when base is
	// region-marked.
	markRegionWrite := func(target ast.Expr) {
		switch t := unparen(target).(type) {
		case *ast.IndexExpr:
			if key, ok := mixedWordID(info.Pkg, t.X); ok && m.regionKeys[key] {
				for idx := range inputsOf(t.Index) {
					s.writesAtInputs[idx] = true
				}
			}
		case *ast.SliceExpr:
			if key, ok := mixedWordID(info.Pkg, t.X); ok && m.regionKeys[key] {
				for idx := range inputsOf(t.Low, t.High, t.Max) {
					s.writesAtInputs[idx] = true
				}
			}
		}
	}
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch unparen(lhs).(type) {
				case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
					markWrite(lhs)
					markRegionWrite(lhs)
				}
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if _, builtin := info.Pkg.Info.Uses[id].(*types.Builtin); builtin {
					switch id.Name {
					case "copy", "clear":
						if len(n.Args) > 0 {
							markWrite(n.Args[0])
							markRegionWrite(n.Args[0])
						}
					}
					return true
				}
			}
			// A writing atomic op on a region word attributes to the inputs
			// its index mentions: w.words[idx].Store(v) writes the area at
			// idx. The stored constant classifies the op as a publication or
			// a retraction, and a region-targeted write is the release-fence
			// signal regionAtomicWrite records.
			if addr, values, isAtomic := atomicOperands(info.Pkg, n); isAtomic {
				if atomicOpWrites(n) {
					markRegionWrite(addr)
					if t, isIdx := unparen(addr).(*ast.IndexExpr); isIdx {
						if key, ok := mixedWordID(info.Pkg, t.X); ok && m.regionKeys[key] {
							s.regionAtomicWrite = true
						}
					}
					for _, va := range values {
						if key, ok := constKeyOf(info.Pkg, va); ok {
							if m.publishConsts[key] {
								s.publishes = true
							}
							if m.unpublishConsts[key] {
								s.unpublishes = true
							}
						}
					}
				}
				return true
			}
			for _, a := range n.Args {
				if key, ok := constKeyOf(info.Pkg, a); ok {
					if m.publishConsts[key] {
						s.publishes = true
					}
					if m.unpublishConsts[key] {
						s.unpublishes = true
					}
				}
			}
			if callee, inputs, ok := prog.resolveCallee(info.Pkg, n); ok {
				sub := prog.mutateSummaryFor(callee.Obj.FullName())
				if sub.publishes {
					s.publishes = true
				}
				if sub.unpublishes {
					s.unpublishes = true
				}
				if sub.regionAtomicWrite {
					s.regionAtomicWrite = true
				}
				for calleeIdx := range sub.writesInputs {
					if e := inputs.inputExpr(calleeIdx); e != nil {
						markWrite(e)
					}
				}
				for calleeIdx := range sub.writesAtInputs {
					if e := inputs.inputExpr(calleeIdx); e != nil {
						for idx := range inputsOf(e) {
							s.writesAtInputs[idx] = true
						}
					}
				}
			}
		}
		return true
	})
	prog.mutateSums[name] = s
	return s
}

// atomicOpWrites reports whether a direct sync/atomic call mutates its word
// (everything but the Load family).
func atomicOpWrites(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return !strings.HasPrefix(sel.Sel.Name, "Load")
}

// isAtomicPkgCall reports whether call invokes a sync/atomic package-level
// function (the address-first-argument family: Load*, Store*, Add*, Swap*,
// CompareAndSwap*, And*, Or*).
func isAtomicPkgCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
