package baselines

import "hydradb/internal/hashx"

// RedisLike models a fleet of single-threaded Redis instances with
// client-side sharding ("we run 8 Redis instances on our machine and
// leverage fine-grained sharding on the client sides", §6.1). Each instance
// is a plain map owned by one event-loop; the harness serializes access per
// instance exactly as Redis's single thread does.
type RedisLike struct {
	instances []map[string][]byte
}

// NewRedisLike creates n instances.
func NewRedisLike(n int) *RedisLike {
	if n <= 0 {
		n = 1
	}
	r := &RedisLike{instances: make([]map[string][]byte, n)}
	for i := range r.instances {
		r.instances[i] = make(map[string][]byte)
	}
	return r
}

// Instances reports the instance count.
func (r *RedisLike) Instances() int { return len(r.instances) }

// InstanceOf routes a key client-side.
func (r *RedisLike) InstanceOf(key []byte) int {
	return int(hashx.Hash(key) % uint64(len(r.instances)))
}

// Get reads from the owning instance. The caller must serialize calls per
// instance (the harness's single-server resource does).
func (r *RedisLike) Get(inst int, key []byte) ([]byte, bool) {
	v, ok := r.instances[inst][string(key)]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Set writes to the owning instance.
func (r *RedisLike) Set(inst int, key, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	r.instances[inst][string(key)] = cp
}

// Delete removes key from the owning instance.
func (r *RedisLike) Delete(inst int, key []byte) bool {
	_, ok := r.instances[inst][string(key)]
	delete(r.instances[inst], string(key))
	return ok
}

// Len reports total items.
func (r *RedisLike) Len() int {
	n := 0
	for _, m := range r.instances {
		n += len(m)
	}
	return n
}
