// Call Data Record processing example — the paper's §2.3 scenario:
// telecommunication stream Processing Elements (PEs) perform subscriber
// lookups and CDR updates against HydraDB under stringent throughput
// (millions of accesses/s in production) and latency (sub-hundreds of
// microseconds) requirements. Subscriber reference data is loaded
// periodically; PEs then process a call stream with GET (subscriber
// profile) + PUT (usage counters) per call.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"hydradb"
	"hydradb/internal/stats"
)

const (
	subscribers = 20_000
	pes         = 4
	callsPerPE  = 5_000
)

func subscriberKey(id int) []byte {
	return []byte(fmt.Sprintf("msisdn:%012d", id))
}

func usageKey(id int) []byte {
	return []byte(fmt.Sprintf("usage:%012d", id))
}

func main() {
	opts := hydradb.DefaultOptions()
	opts.ClientMachines = 2
	opts.ArenaBytesPerShard = 32 << 20
	opts.MaxItemsPerShard = 1 << 18
	db, err := hydradb.Start(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Reference-data load: "periodically, subscriber data ... of millions
	// of users are extracted from the reference data source and loaded".
	loader := db.NewClient()
	t0 := time.Now()
	profile := make([]byte, 64)
	for id := 0; id < subscribers; id++ {
		binary.LittleEndian.PutUint64(profile, uint64(id))
		if err := loader.Put(subscriberKey(id), profile); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d subscriber profiles in %v\n", subscribers, time.Since(t0))

	// Stream processing: each PE handles calls with one lookup + one update.
	var wg sync.WaitGroup
	hists := make([]*stats.Histogram, pes)
	start := time.Now()
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		hists[pe] = stats.NewHistogram()
		client := db.NewClient()
		go func(pe int, c *hydradb.Client, h *stats.Histogram) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pe)))
			usage := make([]byte, 16)
			for call := 0; call < callsPerPE; call++ {
				id := zipfish(rng, subscribers)
				t := time.Now()
				if _, err := c.Get(subscriberKey(id)); err != nil {
					log.Printf("PE%d lookup: %v", pe, err)
					return
				}
				binary.LittleEndian.PutUint64(usage, uint64(call))
				if err := c.Put(usageKey(id), usage); err != nil {
					log.Printf("PE%d update: %v", pe, err)
					return
				}
				h.Record(int64(time.Since(t)))
			}
		}(pe, client, hists[pe])
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := stats.NewHistogram()
	for _, h := range hists {
		total.Merge(h)
	}
	sum := total.Summarize()
	calls := int64(pes * callsPerPE)
	fmt.Printf("processed %d calls with %d PEs in %v (%.0f calls/s, %.0f KV ops/s)\n",
		calls, pes, elapsed.Round(time.Millisecond),
		float64(calls)/elapsed.Seconds(), 2*float64(calls)/elapsed.Seconds())
	fmt.Printf("per-call latency: %v\n", sum)
	const sloUs = 200.0
	if sum.P99 <= sloUs {
		fmt.Printf("SLO: p99 %.1fus <= %.0fus — met\n", sum.P99, sloUs)
	} else {
		fmt.Printf("SLO: p99 %.1fus > %.0fus — missed (single-core host; see EXPERIMENTS.md)\n", sum.P99, sloUs)
	}
}

// zipfish skews call volume towards heavy users.
func zipfish(rng *rand.Rand, n int) int {
	if rng.Float64() < 0.5 {
		return rng.Intn(n / 100) // 50% of calls hit the top 1%
	}
	return rng.Intn(n)
}
