package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hydradb/internal/invariant"
)

// Pipelined is the decoupled execution model of Fig. 5(a), implemented as
// the §6.2.1 ablation baseline: dispatcher threads poll connection mailboxes
// and enqueue requests; worker threads process them against the shard's
// store under a mutex and write the responses. Compared to the
// single-threaded shard it burns more cores, pays queue hand-off and lock
// synchronization on every request, and is expected to LOSE — the paper
// measures 27–95% lower throughput for it.
type Pipelined struct {
	shard       *Shard
	dispatchers int
	workers     int

	mu      sync.Mutex // serializes store access across workers
	queue   chan pipelinedReq
	stop    chan struct{}
	done    chan struct{} // closed when Run (and every stage goroutine) has exited
	started atomic.Bool
	wg      sync.WaitGroup
}

type pipelinedReq struct {
	c    *conn
	body []byte
	seq  uint32
}

// NewPipelined wraps a shard in the pipelined execution model. The shard's
// Run must NOT be used; call Pipelined.Run instead.
func NewPipelined(s *Shard, dispatchers, workers int) *Pipelined {
	if dispatchers <= 0 {
		dispatchers = 2
	}
	if workers <= 0 {
		workers = 2
	}
	return &Pipelined{
		shard:       s,
		dispatchers: dispatchers,
		workers:     workers,
		queue:       make(chan pipelinedReq, 1024),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// Run starts dispatchers and workers and blocks until Stop.
func (p *Pipelined) Run() {
	p.started.Store(true)
	defer close(p.done)
	spawnDone := invariant.Spawned(fmt.Sprintf("pipelined/%p/run", p))
	defer spawnDone()
	for d := 0; d < p.dispatchers; d++ {
		p.wg.Add(1)
		go p.dispatch(d)
	}
	for w := 0; w < p.workers; w++ {
		p.wg.Add(1)
		go p.work()
	}
	p.wg.Wait()
}

// dispatch polls a stripe of connections and copies requests into the queue
// (the hand-off copy is part of the cost the single-threaded design avoids).
func (p *Pipelined) dispatch(stripe int) {
	defer p.wg.Done()
	spawnDone := invariant.Spawned(fmt.Sprintf("pipelined/%p/dispatch/%d", p, stripe))
	defer spawnDone()
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		conns := *p.shard.conns.Load()
		progress := false
		for i := stripe; i < len(conns); i += p.dispatchers {
			c := conns[i]
			body, seq, ok := c.reqBox.Poll()
			if !ok {
				continue
			}
			progress = true
			cp := make([]byte, len(body))
			copy(cp, body)
			c.reqBox.Consume()
			select {
			case p.queue <- pipelinedReq{c: c, body: cp, seq: seq}:
			case <-p.stop:
				return
			}
		}
		if !progress {
			runtime.Gosched()
		}
	}
}

func (p *Pipelined) work() {
	defer p.wg.Done()
	spawnDone := invariant.Spawned(fmt.Sprintf("pipelined/%p/work", p))
	defer spawnDone()
	respBuf := make([]byte, p.shard.cfg.MailboxBytes)
	handled := 0
	for {
		select {
		case <-p.stop:
			return
		case r := <-p.queue:
			p.mu.Lock()
			n := p.shard.handle(r.body, respBuf, p.shard.epoch.Load())
			handled++
			if handled%p.shard.cfg.ReclaimEvery == 0 {
				p.shard.store.ReclaimDue()
			}
			// The response write stays inside the critical section: the ring
			// mailbox keeps a writer cursor, so concurrent WriteVia calls on
			// one connection would race. More lock hold time is part of this
			// baseline's documented cost.
			//hydralint:ignore error-discipline response to a vanished client, as in the live shard loop
			_ = r.c.respBox.WriteVia(r.c.qp, respBuf[:n], r.seq)
			p.mu.Unlock()
			p.shard.Handled.Inc()
		}
	}
}

// Stop terminates the pipeline and joins every stage goroutine: without the
// join, dispatchers and workers would still be draining while the cluster
// tears down the fabric under them.
func (p *Pipelined) Stop() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	if p.started.Load() {
		<-p.done
		invariant.AssertDrained(fmt.Sprintf("pipelined/%p/", p))
	}
}
