package simcluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
)

// Named fleet scenarios: each is a reproducible experiment over the fleet
// simulator with pinned invariants, runnable from cmd/hydrasim and pinned
// as a seeded regression test. A scenario may run several fleets (Parts)
// to compare policies; headline numbers land in Metrics.

// ScaleKind picks the scenario problem size.
type ScaleKind string

// Scales: smoke is CI-sized (sub-second), full is the million-client
// configuration the ISSUE's acceptance run uses.
const (
	ScaleSmoke ScaleKind = "smoke"
	ScaleFull  ScaleKind = "full"
)

// ScenarioResult is a scenario run's canonical outcome. Hash covers the
// canonical JSON of everything except Violations and Hash itself.
type ScenarioResult struct {
	Scenario   string                 `json:"scenario"`
	Scale      string                 `json:"scale"`
	Seed       int64                  `json:"seed"`
	Result     *FleetResult           `json:"result,omitempty"`
	Parts      map[string]FleetResult `json:"parts,omitempty"`
	Metrics    map[string]float64     `json:"metrics,omitempty"`
	Hash       string                 `json:"hash,omitempty"`
	Violations []string               `json:"violations,omitempty"`
}

// Scenario is one named experiment.
type Scenario struct {
	Name        string
	Description string
	// Run builds and executes the fleet(s) for one (scale, seed, bug).
	Run func(scale ScaleKind, seed int64, bug BugKind) (*ScenarioResult, error)
	// Check returns invariant violations (empty = pass). Checks must hold
	// for every seed at both scales when bug == BugNone, and must fail for
	// the scenario's seeded bug — the suite's self-test.
	Check func(r *ScenarioResult) []string
}

// Scenarios lists the registry in stable order.
func Scenarios() []Scenario {
	return []Scenario{
		routingConvergenceScenario(),
		promotionStormScenario(),
		renewalHerdScenario(),
		costCurveScenario(),
	}
}

// FindScenario looks a scenario up by name.
func FindScenario(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// RunScenario executes one scenario end to end: run, canonical hash, checks.
func RunScenario(name string, scale ScaleKind, seed int64, bug BugKind) (*ScenarioResult, error) {
	sc, ok := FindScenario(name)
	if !ok {
		return nil, fmt.Errorf("simcluster: unknown scenario %q", name)
	}
	res, err := sc.Run(scale, seed, bug)
	if err != nil {
		return nil, err
	}
	res.Scenario = name
	res.Scale = string(scale)
	res.Seed = seed
	canon, err := res.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	res.Hash = hashBytes(canon)
	res.Violations = sc.Check(res)
	return res, nil
}

// CanonicalJSON renders the hash-covered portion of the result: struct
// field order plus json.Marshal's sorted map keys make it byte-stable.
func (r *ScenarioResult) CanonicalJSON() ([]byte, error) {
	shadow := *r
	shadow.Hash = ""
	shadow.Violations = nil
	b, err := json.Marshal(&shadow)
	if err != nil {
		return nil, fmt.Errorf("simcluster: canonical result: %w", err)
	}
	return b, nil
}

// hashBytes is the FNV-1a 64 pin, matching the ycsb golden-hash style.
func hashBytes(b []byte) string {
	h := fnv.New64a()
	//hydralint:ignore error-discipline hash.Hash Write never fails
	_, _ = h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// opsConserved checks the fundamental accounting identity: admitted
// operations either complete in some class or fail — nothing vanishes.
// (BugDropBounces violates exactly this.)
func opsConserved(r *FleetResult) []string {
	sum := r.OpsFailed
	for _, cr := range r.Classes {
		sum += cr.Ops
	}
	tol := math.Max(1e-6*r.OpsTotal, 0.01)
	if math.Abs(sum-r.OpsTotal) > tol {
		return []string{fmt.Sprintf("ops not conserved: classes+failed=%.3f vs total=%.3f", sum, r.OpsTotal)}
	}
	return nil
}

// --- routing-convergence -------------------------------------------------

func routingConvergenceConfig(scale ScaleKind) FleetConfig {
	cfg := FleetConfig{
		ShardsPerMachine:   10,
		TracersPerMachine:  1,
		RecordsPerShard:    64,
		OpsPerClientPerSec: 500,
		ReadPct:            95,
		TickNs:             10_000_000,
		SamplesPerTick:     100,
	}
	switch scale {
	case ScaleFull:
		cfg.Machines = 100 // 1000 shards
		cfg.ClientsPerMachine = 10_000
		cfg.DurationNs = 2_000_000_000
		cfg.SamplesPerTick = 200
		cfg.Events = []FleetEvent{{AtNs: 500_000_000, Kind: EventReconfigure, AddShards: 50}}
	default:
		cfg.Machines = 10 // 100 shards
		cfg.ClientsPerMachine = 1_000
		cfg.DurationNs = 800_000_000
		cfg.Events = []FleetEvent{{AtNs: 200_000_000, Kind: EventReconfigure, AddShards: 8}}
	}
	return cfg
}

func routingConvergenceScenario() Scenario {
	return Scenario{
		Name: "routing-convergence",
		Description: "reconfigure the ring mid-run (shards added) and measure how fast a " +
			"bounce-driven cohort converges back to fresh routing tables",
		Run: func(scale ScaleKind, seed int64, bug BugKind) (*ScenarioResult, error) {
			cfg := routingConvergenceConfig(scale)
			cfg.Seed = seed
			cfg.Bug = bug
			s, err := NewFleetSim(cfg)
			if err != nil {
				return nil, err
			}
			r := s.Run()
			res := &ScenarioResult{Result: &r, Metrics: map[string]float64{}}
			if r.Reconfig != nil {
				res.Metrics["moved_frac"] = r.Reconfig.MovedFrac
				res.Metrics["bounced_ops"] = r.Reconfig.BouncedOps
				if r.Reconfig.ConvergedNs > 0 {
					res.Metrics["convergence_ms"] = round3(float64(r.Reconfig.ConvergedNs-r.Reconfig.AtNs) / 1e6)
				}
			}
			return res, nil
		},
		Check: func(res *ScenarioResult) []string {
			r := res.Result
			var v []string
			v = append(v, opsConserved(r)...)
			if r.Reconfig == nil {
				return append(v, "no reconfiguration recorded")
			}
			if r.Reconfig.MovedFrac <= 0 || r.Reconfig.MovedFrac > 0.5 {
				v = append(v, fmt.Sprintf("moved_frac %.3f outside (0, 0.5]", r.Reconfig.MovedFrac))
			}
			if r.Reconfig.ConvergedNs == 0 {
				v = append(v, "cohort never converged back to fresh routing tables")
			} else if ms := float64(r.Reconfig.ConvergedNs-r.Reconfig.AtNs) / 1e6; ms > 600 {
				v = append(v, fmt.Sprintf("convergence took %.0f ms (> 600 ms bound)", ms))
			}
			if r.Reconfig.BouncedOps <= 0 {
				v = append(v, "no WrongShard bounces despite a reconfiguration")
			}
			if r.Tracer.Bounces == 0 {
				v = append(v, "tracer clients observed no WrongShard bounce")
			}
			if r.Tracer.Hits == 0 {
				v = append(v, "tracer clients never hit the pointer cache")
			}
			return v
		},
	}
}

// --- promotion-storm -----------------------------------------------------

func promotionStormConfig(scale ScaleKind) FleetConfig {
	cfg := FleetConfig{
		TracersPerMachine:  1,
		RecordsPerShard:    64,
		OpsPerClientPerSec: 200,
		ReadPct:            90,
		TickNs:             10_000_000,
		SamplesPerTick:     100,
	}
	switch scale {
	case ScaleFull:
		cfg.Machines = 100
		cfg.ShardsPerMachine = 10
		cfg.ClientsPerMachine = 10_000
		cfg.DurationNs = 1_500_000_000
		// Correlated failure: a whole chassis of three machines at once.
		cfg.Events = []FleetEvent{
			{AtNs: 500_000_000, Kind: EventKill, Machine: 3},
			{AtNs: 500_000_000, Kind: EventKill, Machine: 4},
			{AtNs: 500_000_000, Kind: EventKill, Machine: 5},
		}
	default:
		cfg.Machines = 10
		cfg.ShardsPerMachine = 4
		cfg.ClientsPerMachine = 1_000
		cfg.DurationNs = 600_000_000
		cfg.Events = []FleetEvent{
			{AtNs: 150_000_000, Kind: EventKill, Machine: 2},
			{AtNs: 150_000_000, Kind: EventKill, Machine: 3},
		}
	}
	return cfg
}

func promotionStormScenario() Scenario {
	return Scenario{
		Name: "promotion-storm",
		Description: "kill a correlated group of machines and verify the SWAT drains the " +
			"promotion backlog within the recovery bound",
		Run: func(scale ScaleKind, seed int64, bug BugKind) (*ScenarioResult, error) {
			cfg := promotionStormConfig(scale)
			cfg.Seed = seed
			cfg.Bug = bug
			s, err := NewFleetSim(cfg)
			if err != nil {
				return nil, err
			}
			r := s.Run()
			res := &ScenarioResult{Result: &r, Metrics: map[string]float64{}}
			if r.Promotion != nil {
				res.Metrics["peak_backlog"] = float64(r.Promotion.PeakBacklog)
				res.Metrics["recovery_ms"] = round3(float64(r.Promotion.RecoveryNs) / 1e6)
				res.Metrics["failed_ops"] = r.OpsFailed
			}
			return res, nil
		},
		Check: func(res *ScenarioResult) []string {
			r := res.Result
			var v []string
			v = append(v, opsConserved(r)...)
			p := r.Promotion
			if p == nil {
				return append(v, "no kills recorded")
			}
			if p.Promoted != p.KilledShards {
				v = append(v, fmt.Sprintf("promotion backlog stuck: %d of %d shards promoted", p.Promoted, p.KilledShards))
			}
			if p.PeakBacklog != p.KilledShards {
				v = append(v, fmt.Sprintf("peak backlog %d, want %d (correlated kill lands at once)", p.PeakBacklog, p.KilledShards))
			}
			if p.Promoted == p.KilledShards {
				if p.RecoveryNs <= 0 {
					v = append(v, "recovery time not recorded")
				} else if p.RecoveryNs > 200_000_000 {
					v = append(v, fmt.Sprintf("recovery took %.0f ms (> 200 ms bound)", float64(p.RecoveryNs)/1e6))
				}
			}
			if r.OpsFailed <= 0 {
				v = append(v, "no failed ops during the unavailability window")
			}
			return v
		},
	}
}

// --- renewal-herd --------------------------------------------------------

func renewalHerdConfig(scale ScaleKind) FleetConfig {
	cfg := FleetConfig{
		ShardsPerMachine:   10,
		TracersPerMachine:  1,
		RecordsPerShard:    64,
		OpsPerClientPerSec: 0, // isolate the renewal traffic
		ReadPct:            100,
		TickNs:             10_000_000,
		SamplesPerTick:     0,
		LeaseTermNs:        200_000_000,
		DurationNs:         1_000_000_000,
	}
	switch scale {
	case ScaleFull:
		cfg.Machines = 100
		cfg.ClientsPerMachine = 10_000
	default:
		cfg.Machines = 10
		cfg.ClientsPerMachine = 1_000
	}
	return cfg
}

func renewalHerdScenario() Scenario {
	return Scenario{
		Name: "renewal-herd",
		Description: "lease-renewal thundering herd: synchronized renewals vs jittered " +
			"renewals vs token-bucket admission, comparing peak per-tick renewal load",
		Run: func(scale ScaleKind, seed int64, bug BugKind) (*ScenarioResult, error) {
			parts := map[string]FleetResult{}
			run := func(name string, mutate func(*FleetConfig)) error {
				cfg := renewalHerdConfig(scale)
				cfg.Seed = seed
				cfg.Bug = bug
				mutate(&cfg)
				s, err := NewFleetSim(cfg)
				if err != nil {
					return err
				}
				parts[name] = s.Run()
				return nil
			}
			if err := run("sync", func(*FleetConfig) {}); err != nil {
				return nil, err
			}
			if err := run("jitter", func(c *FleetConfig) { c.RenewJitterNs = c.LeaseTermNs / 2 }); err != nil {
				return nil, err
			}
			clients := float64(renewalHerdConfig(scale).Machines) * float64(renewalHerdConfig(scale).ClientsPerMachine)
			if err := run("bucket", func(c *FleetConfig) {
				c.Admission = &TokenBucket{RatePerSec: 2 * clients, Burst: 0.05 * clients}
			}); err != nil {
				return nil, err
			}
			sync, jit := parts["sync"], parts["jitter"]
			res := &ScenarioResult{Parts: parts, Metrics: map[string]float64{
				"peak_sync":   sync.PeakRenewPerTick,
				"peak_jitter": jit.PeakRenewPerTick,
				"peak_bucket": parts["bucket"].PeakRenewPerTick,
			}}
			if sync.PeakRenewPerTick > 0 {
				res.Metrics["jitter_ratio"] = round3(jit.PeakRenewPerTick / sync.PeakRenewPerTick)
			}
			return res, nil
		},
		Check: func(res *ScenarioResult) []string {
			var v []string
			sync, okS := res.Parts["sync"]
			jit, okJ := res.Parts["jitter"]
			bucket, okB := res.Parts["bucket"]
			if !okS || !okJ || !okB {
				return []string{"missing herd parts"}
			}
			clients := float64(sync.Clients)
			if sync.PeakRenewPerTick < 0.9*clients {
				v = append(v, fmt.Sprintf("sync herd peak %.0f, want >= 0.9x clients (%.0f)", sync.PeakRenewPerTick, clients))
			}
			if jit.PeakRenewPerTick > 0.2*sync.PeakRenewPerTick {
				v = append(v, fmt.Sprintf("jitter failed to flatten the herd: peak %.0f vs sync %.0f",
					jit.PeakRenewPerTick, sync.PeakRenewPerTick))
			}
			if jit.RenewTotal < 0.9*sync.RenewTotal {
				v = append(v, "jitter lost renewals instead of spreading them")
			}
			if bucket.PeakRenewPerTick > 0.1*sync.PeakRenewPerTick {
				v = append(v, fmt.Sprintf("token bucket failed to cap the herd: peak %.0f", bucket.PeakRenewPerTick))
			}
			if bucket.RenewShed <= 0 {
				v = append(v, "token bucket shed nothing despite the herd exceeding its rate")
			}
			return v
		},
	}
}

// --- cost-curve ----------------------------------------------------------

func costCurveSizes(scale ScaleKind) []int {
	if scale == ScaleFull {
		return []int{25, 50, 100}
	}
	return []int{2, 4, 8}
}

func costCurveScenario() Scenario {
	return Scenario{
		Name: "cost-curve",
		Description: "sweep the machine count at fixed per-machine load and pin that " +
			"throughput scales linearly while per-shard load stays flat (cost.go's capacity model)",
		Run: func(scale ScaleKind, seed int64, bug BugKind) (*ScenarioResult, error) {
			parts := map[string]FleetResult{}
			metrics := map[string]float64{}
			for _, n := range costCurveSizes(scale) {
				cfg := FleetConfig{
					Machines:           n,
					ShardsPerMachine:   10,
					ClientsPerMachine:  2_000,
					TracersPerMachine:  1,
					RecordsPerShard:    64,
					OpsPerClientPerSec: 200,
					ReadPct:            95,
					TickNs:             10_000_000,
					DurationNs:         500_000_000,
					SamplesPerTick:     50,
					Seed:               seed,
					Bug:                bug,
				}
				s, err := NewFleetSim(cfg)
				if err != nil {
					return nil, err
				}
				r := s.Run()
				name := fmt.Sprintf("m%03d", n)
				parts[name] = r
				metrics["mops_"+name] = r.ThroughputMops
			}
			return &ScenarioResult{Parts: parts, Metrics: metrics}, nil
		},
		Check: func(res *ScenarioResult) []string {
			var v []string
			sizes := costCurveSizes(ScaleKind(res.Scale))
			prevMops := 0.0
			prevPerMachine := -1.0
			for _, n := range sizes {
				r, ok := res.Parts[fmt.Sprintf("m%03d", n)]
				if !ok {
					return []string{fmt.Sprintf("missing part m%03d", n)}
				}
				v = append(v, opsConserved(&r)...)
				if r.ThroughputMops <= prevMops {
					v = append(v, fmt.Sprintf("throughput not monotonic at %d machines: %.3f <= %.3f Mops",
						n, r.ThroughputMops, prevMops))
				}
				perMachine := r.ThroughputMops / float64(n)
				if prevPerMachine >= 0 && math.Abs(perMachine-prevPerMachine) > 0.05*prevPerMachine {
					v = append(v, fmt.Sprintf("per-machine throughput drifted at %d machines: %.4f vs %.4f",
						n, perMachine, prevPerMachine))
				}
				prevMops = r.ThroughputMops
				prevPerMachine = perMachine
				if r.PeakShardUtil >= 1.0 {
					v = append(v, fmt.Sprintf("shards saturated at %d machines (peak util %.2f)", n, r.PeakShardUtil))
				}
			}
			return v
		},
	}
}
