package simcluster

import (
	"bytes"
	"math"
	"testing"

	"hydradb/internal/testutil"
)

// TestScenarioGolden pins, per scenario x seed, the FNV-1a hash of the
// canonical result JSON at smoke scale (mirroring the ycsb golden-hash
// pins). Any change to the fleet model, the event ordering, the samplers,
// or the calibration shows up here as an explicit diff. If a hash changed
// ON PURPOSE, rerun the suite, update the constant, and note the break in
// the commit message.
func TestScenarioGolden(t *testing.T) {
	for _, tc := range []struct {
		scenario string
		seed     int64
		hash     string
	}{
		{"routing-convergence", 1, "0a7c1fa95a5c4fdd"},
		{"routing-convergence", 2, "4cca857df1778251"},
		{"routing-convergence", 3, "95e20a6d38ea192f"},
		{"promotion-storm", 1, "b78747012e2baa8a"},
		{"promotion-storm", 2, "300e963390ff3f93"},
		{"promotion-storm", 3, "5999a9aa3ec325ea"},
		{"renewal-herd", 1, "1a0cb8c4c12855a2"},
		{"renewal-herd", 2, "eb6466dd7a484868"},
		{"renewal-herd", 3, "d5b641ec9cc19aff"},
		{"cost-curve", 1, "44eaf10ba5d43e3d"},
		{"cost-curve", 2, "370d2ca7edadc797"},
		{"cost-curve", 3, "aa6cf366a500924a"},
	} {
		res, err := RunScenario(tc.scenario, ScaleSmoke, tc.seed, BugNone)
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.scenario, tc.seed, err)
		}
		if res.Hash != tc.hash {
			t.Errorf("%s seed %d: hash %s, want %s", tc.scenario, tc.seed, res.Hash, tc.hash)
		}
		if len(res.Violations) > 0 {
			t.Errorf("%s seed %d: invariant violations: %v", tc.scenario, tc.seed, res.Violations)
		}
	}
}

// TestScenarioRunTwiceByteIdentical is the determinism pin behind the
// golden hashes: two runs with the same seed+config produce byte-identical
// canonical JSON, not merely equal hashes.
func TestScenarioRunTwiceByteIdentical(t *testing.T) {
	for _, name := range []string{"routing-convergence", "renewal-herd"} {
		a := testutil.Must1(RunScenario(name, ScaleSmoke, 7, BugNone))
		b := testutil.Must1(RunScenario(name, ScaleSmoke, 7, BugNone))
		ca := testutil.Must1(a.CanonicalJSON())
		cb := testutil.Must1(b.CanonicalJSON())
		if !bytes.Equal(ca, cb) {
			t.Errorf("%s: two identical runs produced different canonical bytes", name)
		}
		if a.Hash != b.Hash {
			t.Errorf("%s: hash %s vs %s", name, a.Hash, b.Hash)
		}
	}
}

// TestScenarioSeededBugs is the suite's self-test: every scenario checker
// must fail when its matching bug is seeded — a checker that cannot fail
// proves nothing.
func TestScenarioSeededBugs(t *testing.T) {
	for _, tc := range []struct {
		scenario string
		bug      BugKind
	}{
		{"routing-convergence", BugDropBounces},
		{"promotion-storm", BugStuckPromotion},
		{"renewal-herd", BugIgnoreJitter},
		{"cost-curve", BugLeakOps},
	} {
		res, err := RunScenario(tc.scenario, ScaleSmoke, 1, tc.bug)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.scenario, tc.bug, err)
		}
		if len(res.Violations) == 0 {
			t.Errorf("%s: seeded bug %q slipped past the invariant checks", tc.scenario, tc.bug)
		}
	}
}

// TestScenarioHeadlineMetrics pins the headline numbers of the three
// EXPERIMENTS.md scenarios at smoke scale, seed 1 — the human-readable
// companions to the opaque golden hashes.
func TestScenarioHeadlineMetrics(t *testing.T) {
	conv := testutil.Must1(RunScenario("routing-convergence", ScaleSmoke, 1, BugNone))
	if got := conv.Metrics["convergence_ms"]; got != 170 {
		t.Errorf("routing convergence_ms = %v, want 170", got)
	}
	if got := conv.Metrics["moved_frac"]; got != 0.074 {
		t.Errorf("routing moved_frac = %v, want 0.074", got)
	}

	storm := testutil.Must1(RunScenario("promotion-storm", ScaleSmoke, 1, BugNone))
	if got := storm.Metrics["peak_backlog"]; got != 8 {
		t.Errorf("storm peak_backlog = %v, want 8", got)
	}
	if got := storm.Metrics["recovery_ms"]; got != 2.656 {
		t.Errorf("storm recovery_ms = %v, want 2.656", got)
	}

	herd := testutil.Must1(RunScenario("renewal-herd", ScaleSmoke, 1, BugNone))
	if got := herd.Metrics["peak_sync"]; got != 10_000 {
		t.Errorf("herd peak_sync = %v, want 10000", got)
	}
	if got := herd.Metrics["jitter_ratio"]; got != 0.1 {
		t.Errorf("herd jitter_ratio = %v, want 0.1", got)
	}
	if got := herd.Metrics["peak_bucket"]; got != 500 {
		t.Errorf("herd peak_bucket = %v, want 500", got)
	}
}

// TestScenarioRegistry pins the registry surface cmd/hydrasim exposes.
func TestScenarioRegistry(t *testing.T) {
	want := []string{"routing-convergence", "promotion-storm", "renewal-herd", "cost-curve"}
	got := Scenarios()
	if len(got) != len(want) {
		t.Fatalf("registry has %d scenarios, want %d", len(got), len(want))
	}
	for i, sc := range got {
		if sc.Name != want[i] {
			t.Errorf("scenario[%d] = %s, want %s", i, sc.Name, want[i])
		}
		if sc.Description == "" || sc.Run == nil || sc.Check == nil {
			t.Errorf("scenario %s incomplete", sc.Name)
		}
	}
	if _, ok := FindScenario("nope"); ok {
		t.Error("FindScenario invented a scenario")
	}
	if _, err := RunScenario("nope", ScaleSmoke, 1, BugNone); err == nil {
		t.Error("RunScenario: unknown scenario must error")
	}
}

// smallFleetConfig is a fast config for mechanics tests.
func smallFleetConfig(seed int64) FleetConfig {
	return FleetConfig{
		Machines:           4,
		ShardsPerMachine:   4,
		ClientsPerMachine:  500,
		TracersPerMachine:  2,
		RecordsPerShard:    32,
		OpsPerClientPerSec: 400,
		ReadPct:            90,
		TickNs:             5_000_000,
		DurationNs:         400_000_000,
		SamplesPerTick:     50,
		Seed:               seed,
	}
}

// TestFleetTracerMechanics: the full-fidelity tracers must exercise the
// real pointer-cache machinery — hits through valid cached pointers, plus
// message-path misses installing the cache.
func TestFleetTracerMechanics(t *testing.T) {
	s := testutil.Must1(NewFleetSim(smallFleetConfig(1)))
	r := s.Run()
	if r.Tracer.Ops == 0 {
		t.Fatal("tracers ran no operations")
	}
	if r.Tracer.Hits == 0 {
		t.Error("tracers never hit the pointer cache")
	}
	if r.Tracer.Misses == 0 {
		t.Error("tracers never took the message path")
	}
	if r.Tracer.Errors != 0 {
		t.Errorf("healthy fleet produced %d tracer errors", r.Tracer.Errors)
	}
	if got := r.Tracer.Hits + r.Tracer.Stale + r.Tracer.Misses; got > r.Tracer.Ops {
		t.Errorf("tracer GET outcomes %d exceed total ops %d", got, r.Tracer.Ops)
	}
	// The cohort mix must have picked up the measured hit rate.
	if r.Classes["hit"].Ops <= 0 {
		t.Error("cohort hit class empty despite tracer hits")
	}
}

// TestFleetReconfigureMechanics: after a ring rebuild the tracers must
// observe real WrongShard bounces and the cohort must converge.
func TestFleetReconfigureMechanics(t *testing.T) {
	cfg := smallFleetConfig(2)
	cfg.Events = []FleetEvent{{AtNs: 100_000_000, Kind: EventReconfigure, AddShards: 4}}
	s := testutil.Must1(NewFleetSim(cfg))
	r := s.Run()
	if r.Reconfig == nil {
		t.Fatal("no reconfiguration recorded")
	}
	if r.Shards != 4*4+4 {
		t.Errorf("ring has %d shards, want 20", r.Shards)
	}
	if r.Reconfig.MovedFrac <= 0 {
		t.Error("ring rebuild moved nothing")
	}
	if r.Tracer.Bounces == 0 {
		t.Error("tracers observed no WrongShard bounce after reconfiguration")
	}
	if r.Reconfig.ConvergedNs <= r.Reconfig.AtNs {
		t.Errorf("cohort did not converge (converged_ns=%d)", r.Reconfig.ConvergedNs)
	}
	if r.Classes["bounce"].Ops <= 0 {
		t.Error("cohort bounce class empty despite stale tables")
	}
}

// TestFleetKillMechanics: killing a machine promotes its shards elsewhere
// and the unavailability window produces failed cohort ops.
func TestFleetKillMechanics(t *testing.T) {
	cfg := smallFleetConfig(3)
	cfg.Events = []FleetEvent{{AtNs: 100_000_000, Kind: EventKill, Machine: 1}}
	s := testutil.Must1(NewFleetSim(cfg))
	r := s.Run()
	if r.Promotion == nil {
		t.Fatal("no promotion recorded")
	}
	if r.Promotion.KilledShards != 4 || r.Promotion.Promoted != 4 {
		t.Errorf("killed %d promoted %d, want 4/4", r.Promotion.KilledShards, r.Promotion.Promoted)
	}
	if r.Promotion.RecoveryNs <= 0 {
		t.Error("no recovery time recorded")
	}
	if r.OpsFailed <= 0 {
		t.Error("no failed ops during the unavailability window")
	}
	for _, sh := range s.shards {
		if sh.home == 1 {
			t.Errorf("shard %d still homed on the dead machine", sh.id)
		}
		if !sh.alive {
			t.Errorf("shard %d not alive after promotion", sh.id)
		}
	}
}

// TestFleetOpsConservation: without seeded bugs, admitted = completed +
// failed across a mixed scenario (the core accounting identity).
func TestFleetOpsConservation(t *testing.T) {
	cfg := smallFleetConfig(4)
	cfg.ReadPlane = true
	cfg.LeaseTermNs = 100_000_000
	cfg.RenewJitterNs = 20_000_000
	cfg.Events = []FleetEvent{
		{AtNs: 80_000_000, Kind: EventReconfigure, AddShards: 2},
		{AtNs: 200_000_000, Kind: EventKill, Machine: 2},
	}
	s := testutil.Must1(NewFleetSim(cfg))
	r := s.Run()
	sum := r.OpsFailed
	for _, cr := range r.Classes {
		sum += cr.Ops
	}
	if diff := math.Abs(sum - r.OpsTotal); diff > math.Max(1e-6*r.OpsTotal, 0.01) {
		t.Errorf("ops not conserved: %.3f vs %.3f", sum, r.OpsTotal)
	}
	if r.Classes["probe"].Ops <= 0 {
		t.Error("read-plane config produced no probe-class ops")
	}
	if r.RenewTotal <= 0 {
		t.Error("lease term set but no renewals modeled")
	}
}

// TestRenewalsDue checks the herd spreading math directly: with jitter the
// per-term renewal mass is conserved, just spread; without it the full
// cohort lands in the boundary tick.
func TestRenewalsDue(t *testing.T) {
	cfg := FleetConfig{
		Machines: 1, ShardsPerMachine: 1, ClientsPerMachine: 1000,
		RecordsPerShard: 8, TickNs: 10_000_000, DurationNs: 500_000_000,
		LeaseTermNs: 100_000_000,
	}
	sum := func(jitter int64) (total, peak float64) {
		c := cfg
		c.RenewJitterNs = jitter
		s := testutil.Must1(NewFleetSim(c))
		m := s.machines[0]
		ticks := c.DurationNs / c.TickNs
		for k := int64(1); k <= ticks; k++ {
			due := s.renewalsDue(m, k)
			total += due
			if due > peak {
				peak = due
			}
		}
		return total, peak
	}
	// 5 term boundaries in 500ms (100,200,300,400 fully; the 500ms one is
	// outside the last window for jitter 0, partially inside for jitter>0).
	totalSync, peakSync := sum(0)
	if peakSync != 1000 {
		t.Errorf("sync peak %.1f, want full cohort 1000", peakSync)
	}
	if totalSync != 4000 {
		t.Errorf("sync total %.1f, want 4000 (4 boundaries in window)", totalSync)
	}
	totalJit, peakJit := sum(50_000_000)
	if peakJit > 250 {
		t.Errorf("jitter peak %.1f, want <= tick/jitter share 200 (+rounding)", peakJit)
	}
	if math.Abs(totalJit-4000) > 500 {
		t.Errorf("jitter total %.1f, want ~4000 (mass conserved)", totalJit)
	}
}

// TestFleetConfigValidation pins constructor errors and defaulting.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := NewFleetSim(FleetConfig{}); err == nil {
		t.Error("empty config must error")
	}
	if _, err := NewFleetSim(FleetConfig{Machines: 1, ShardsPerMachine: 1, ReadPct: 101}); err == nil {
		t.Error("ReadPct > 100 must error")
	}
	s := testutil.Must1(NewFleetSim(FleetConfig{Machines: 2, ShardsPerMachine: 1, DurationNs: 15_000_000}))
	if s.cfg.DurationNs%s.cfg.TickNs != 0 {
		t.Errorf("duration %d not rounded to tick %d", s.cfg.DurationNs, s.cfg.TickNs)
	}
}
