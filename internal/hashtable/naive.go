package hashtable

import "hydradb/internal/hashx"

// NaiveTable is the comparison baseline for §4.1.3: a textbook hash table
// resolving collisions with per-bucket linked lists of heap-allocated
// nodes. Every probe chases pointers across cache lines and every candidate
// entry requires a full-key comparison (no signatures) — exactly the
// behaviour the compact table was designed to avoid. It exists for the
// cache-friendliness ablation benchmarks; production code paths use Table.
type NaiveTable struct {
	buckets []*naiveNode
	mask    uint64
	size    int

	Lookups      int64
	NodesTouched int64
	KeyCompares  int64
}

type naiveNode struct {
	hash uint64
	ref  uint64
	next *naiveNode
}

// NewNaive creates a naive table with at least nBuckets buckets.
func NewNaive(nBuckets int) *NaiveTable {
	n := 1
	for n < nBuckets {
		n <<= 1
	}
	return &NaiveTable{buckets: make([]*naiveNode, n), mask: uint64(n - 1)}
}

// Len reports stored entries.
func (t *NaiveTable) Len() int { return t.size }

// Lookup finds the reference stored under hashcode h whose item matches.
func (t *NaiveTable) Lookup(h uint64, match MatchFunc) (uint64, bool) {
	t.Lookups++
	for n := t.buckets[h&t.mask]; n != nil; n = n.next {
		t.NodesTouched++
		if n.hash != h {
			continue
		}
		t.KeyCompares++
		if match(n.ref) {
			return n.ref, true
		}
	}
	return 0, false
}

// Insert stores ref under h, replacing a matching entry.
func (t *NaiveTable) Insert(h uint64, ref uint64, match MatchFunc) (uint64, bool) {
	for n := t.buckets[h&t.mask]; n != nil; n = n.next {
		if n.hash == h && match(n.ref) {
			old := n.ref
			n.ref = ref
			return old, true
		}
	}
	t.buckets[h&t.mask] = &naiveNode{hash: h, ref: ref, next: t.buckets[h&t.mask]}
	t.size++
	return 0, false
}

// Delete removes the matching entry under h.
func (t *NaiveTable) Delete(h uint64, match MatchFunc) (uint64, bool) {
	p := &t.buckets[h&t.mask]
	for n := *p; n != nil; n = *p {
		if n.hash == h && match(n.ref) {
			*p = n.next
			t.size--
			return n.ref, true
		}
		p = &n.next
	}
	return 0, false
}

// BucketOf mirrors the compact table's indexing for apples-to-apples tests.
func (t *NaiveTable) BucketOf(h uint64) uint64 { return hashx.BucketIndex(h, t.mask+1) }
