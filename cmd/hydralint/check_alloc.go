package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// runHotpathAlloc enforces the zero-allocation contract on functions whose
// doc comment carries a `hydralint:hotpath` marker. The paper's latency
// numbers (sub-10µs round trips, §6.1) assume the per-request path touches
// only pre-allocated arenas and mailbox buffers; one escaping literal or
// fmt call puts the Go allocator — and eventually the GC — between a client
// and its lease.
//
// Inside a marked function the check flags:
//   - address-taken composite literals (&T{...}), and slice/map literals
//     (value struct literals are stack-friendly and allowed)
//   - make and new
//   - append, unless it is the self-append idiom `x = append(x, ...)` onto
//     a caller-provided buffer
//   - any call into fmt
//   - string<->[]byte conversions
//
// The marker is opt-in per function; it does not propagate into callees
// (callees on the hot path carry their own marker).
func runHotpathAlloc(p *Package, r *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpathMarked(fn) {
				continue
			}
			checkHotBody(p, r, fn)
		}
	}
}

func isHotpathMarked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.Contains(c.Text, "hydralint:hotpath") {
			return true
		}
	}
	return false
}

func checkHotBody(p *Package, r *Reporter, fn *ast.FuncDecl) {
	name := fn.Name.Name
	// Collect appends that are part of a self-append `x = append(x, ...)`.
	selfAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(p, call, "append") || len(call.Args) == 0 {
			return true
		}
		if types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
			selfAppend[call] = true
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					r.report("hotpath-alloc", n.Pos(),
						"%s is marked hydralint:hotpath but heap-allocates a composite literal", name)
				}
			}
		case *ast.CompositeLit:
			t := p.Info.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					r.report("hotpath-alloc", n.Pos(),
						"%s is marked hydralint:hotpath but allocates a %s literal", name, kindName(t))
				}
			}
		case *ast.CallExpr:
			switch {
			case isBuiltin(p, n, "make"), isBuiltin(p, n, "new"):
				r.report("hotpath-alloc", n.Pos(),
					"%s is marked hydralint:hotpath but calls %s", name, n.Fun.(*ast.Ident).Name)
			case isBuiltin(p, n, "append"):
				if !selfAppend[n] {
					r.report("hotpath-alloc", n.Pos(),
						"%s is marked hydralint:hotpath but grows a slice with append (only `x = append(x, ...)` onto a caller buffer is allowed)", name)
				}
			case isPkgCall(p, n, "fmt"):
				r.report("hotpath-alloc", n.Pos(),
					"%s is marked hydralint:hotpath but calls into fmt, which allocates", name)
			case isStringBytesConv(p, n):
				r.report("hotpath-alloc", n.Pos(),
					"%s is marked hydralint:hotpath but performs a string<->[]byte conversion, which copies", name)
			}
		}
		return true
	})
}

func isBuiltin(p *Package, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

func isPkgCall(p *Package, call *ast.CallExpr, pkgPath string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// isStringBytesConv reports string([]byte) and []byte(string) conversions.
func isStringBytesConv(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	dst := tv.Type.Underlying()
	argT := p.Info.TypeOf(call.Args[0])
	if argT == nil {
		return false
	}
	src := argT.Underlying()
	return (isString(dst) && isByteSlice(src)) || (isByteSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
