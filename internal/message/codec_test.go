package message

import (
	"bytes"
	"runtime"
	"testing"
	"testing/quick"

	"hydradb/internal/arena"
	"hydradb/internal/kv"
	"hydradb/internal/rdma"
)

func TestRequestRoundTrip(t *testing.T) {
	f := func(op uint8, seq, epoch uint32, key, val []byte) bool {
		if len(key) > 1000 || len(val) > 1000 {
			return true
		}
		req := Request{
			Op:    OpGet + Op(op%5),
			Seq:   seq,
			Epoch: epoch,
			Key:   key,
			Val:   val,
		}
		buf := make([]byte, req.EncodedSize())
		n := req.EncodeTo(buf)
		if n != len(buf) {
			return false
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			return false
		}
		return got.Op == req.Op && got.Seq == seq && got.Epoch == epoch &&
			bytes.Equal(got.Key, key) && bytes.Equal(got.Val, val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := Response{
		Status:   StatusOK,
		Existed:  true,
		Seq:      77,
		Epoch:    3,
		LeaseExp: 123456789012,
		Ptr:      kv.RemotePtr{ShardID: 9, DataOff: 4096, DataLen: 54, MetaIdx: 12},
		Val:      []byte("value-bytes"),
	}
	buf := make([]byte, resp.EncodedSize())
	resp.EncodeTo(buf)
	got, err := DecodeResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusOK || !got.Existed || got.Seq != 77 || got.Epoch != 3 ||
		got.LeaseExp != resp.LeaseExp || got.Ptr != resp.Ptr || string(got.Val) != "value-bytes" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDecodeMalformed(t *testing.T) {
	if _, err := DecodeRequest(nil); err != ErrMalformed {
		t.Fatal("nil request decoded")
	}
	if _, err := DecodeRequest(make([]byte, 8)); err != ErrMalformed {
		t.Fatal("short request decoded")
	}
	// Zeroed buffer: op 0 is invalid.
	if _, err := DecodeRequest(make([]byte, 64)); err != ErrMalformed {
		t.Fatal("zeroed request decoded")
	}
	// keyLen pointing past the buffer.
	req := Request{Op: OpGet, Key: []byte("k")}
	buf := make([]byte, req.EncodedSize())
	req.EncodeTo(buf)
	buf[10] = 0xFF
	if _, err := DecodeRequest(buf); err != ErrMalformed {
		t.Fatal("overflowing keyLen decoded")
	}
	if _, err := DecodeResponse(make([]byte, 10)); err != ErrMalformed {
		t.Fatal("short response decoded")
	}
	if _, err := DecodeResponse(make([]byte, 64)); err != ErrMalformed {
		t.Fatal("zeroed response decoded")
	}
}

func TestOpString(t *testing.T) {
	if OpGet.String() != "GET" || OpPut.String() != "PUT" || Op(99).String() != "Op(99)" {
		t.Fatal("op names wrong")
	}
}

func TestIndicatorEncoding(t *testing.T) {
	f := func(seq uint32, rawSize uint16) bool {
		size := int(rawSize)
		ind := makeIndicator(seq, size)
		gotSeq, gotSize, present := splitIndicator(ind)
		return present && gotSeq == seq&0x7fffffff && gotSize == size && ind != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, present := splitIndicator(0); present {
		t.Fatal("zero word must read as absent")
	}
}

func mailboxPair(t testing.TB) (*Mailbox, *rdma.QP) {
	t.Helper()
	f := rdma.NewFabric(rdma.Config{})
	cli, srv := f.NewNIC("cli"), f.NewNIC("srv")
	qc, _ := rdma.Connect(cli, srv, 4)
	mr := srv.Register(make([]byte, 4096), arena.NewWordArea(2, 2))
	return NewMailbox(mr, 0, 4096, 0, 1), qc
}

func TestMailboxDeliverConsume(t *testing.T) {
	mb, qp := mailboxPair(t)
	if _, _, ok := mb.Poll(); ok {
		t.Fatal("empty mailbox polled a message")
	}
	if mb.Busy() {
		t.Fatal("empty mailbox busy")
	}
	body := []byte("request-body")
	if err := mb.WriteVia(qp, body, 5); err != nil {
		t.Fatal(err)
	}
	if !mb.Busy() {
		t.Fatal("mailbox not busy after write")
	}
	got, seq, ok := mb.Poll()
	if !ok || seq != 5 || !bytes.Equal(got, body) {
		t.Fatalf("poll: %q seq=%d ok=%v", got, seq, ok)
	}
	mb.Consume()
	if mb.Busy() {
		t.Fatal("mailbox busy after consume")
	}
	if _, _, ok := mb.Poll(); ok {
		t.Fatal("consumed mailbox still polls")
	}
}

func TestMailboxCapacity(t *testing.T) {
	f := rdma.NewFabric(rdma.Config{})
	cli, srv := f.NewNIC("cli"), f.NewNIC("srv")
	qc, _ := rdma.Connect(cli, srv, 4)
	mr := srv.Register(make([]byte, 64), arena.NewWordArea(1, 2))
	mb := NewMailbox(mr, 0, 64, 0, 1)
	if err := mb.WriteVia(qc, make([]byte, 65), 1); err == nil {
		t.Fatal("oversized body accepted")
	}
	if err := mb.WriteLocal(make([]byte, 65), 1); err == nil {
		t.Fatal("oversized local body accepted")
	}
	if mb.Capacity() != 64 {
		t.Fatalf("capacity = %d", mb.Capacity())
	}
}

func TestMailboxWriteLocal(t *testing.T) {
	mb, _ := mailboxPair(t)
	if err := mb.WriteLocal([]byte("loopback"), 9); err != nil {
		t.Fatal(err)
	}
	got, seq, ok := mb.Poll()
	if !ok || seq != 9 || string(got) != "loopback" {
		t.Fatalf("local write: %q %d %v", got, seq, ok)
	}
}

// TestMailboxPingPong runs the full request/response alternation between a
// polling "shard" goroutine and a client, under the race detector.
func TestMailboxPingPong(t *testing.T) {
	f := rdma.NewFabric(rdma.Config{})
	cli, srv := f.NewNIC("cli"), f.NewNIC("srv")
	qc, qs := rdma.Connect(cli, srv, 4)

	reqMR := srv.Register(make([]byte, 1024), arena.NewWordArea(1, 2))
	respMR := cli.Register(make([]byte, 1024), arena.NewWordArea(1, 2))
	reqBox := NewMailbox(reqMR, 0, 1024, 0, 1)
	respBox := NewMailbox(respMR, 0, 1024, 0, 1)

	const rounds = 500
	go func() { // shard
		for i := 0; i < rounds; i++ {
			var body []byte
			var seq uint32
			for {
				var ok bool
				body, seq, ok = reqBox.Poll()
				if ok {
					break
				}
				runtime.Gosched()
			}
			req, err := DecodeRequest(body)
			if err != nil {
				t.Errorf("round %d: %v", i, err)
				return
			}
			resp := Response{Status: StatusOK, Seq: req.Seq, Val: req.Key}
			out := make([]byte, resp.EncodedSize())
			resp.EncodeTo(out)
			reqBox.Consume()
			if err := respBox.WriteVia(qs, out, seq); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	reqBuf := make([]byte, 1024)
	for i := 0; i < rounds; i++ {
		req := Request{Op: OpGet, Seq: uint32(i), Key: []byte("key")}
		n := req.EncodeTo(reqBuf)
		if err := reqBox.WriteVia(qc, reqBuf[:n], uint32(i)); err != nil {
			t.Fatal(err)
		}
		var body []byte
		for {
			var ok bool
			body, _, ok = respBox.Poll()
			if ok {
				break
			}
			runtime.Gosched()
		}
		resp, err := DecodeResponse(body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Seq != uint32(i) || string(resp.Val) != "key" {
			t.Fatalf("round %d: seq=%d val=%q", i, resp.Seq, resp.Val)
		}
		respBox.Consume()
	}
}

func BenchmarkRequestEncodeDecode(b *testing.B) {
	req := Request{Op: OpPut, Seq: 1, Key: make([]byte, 16), Val: make([]byte, 32)}
	buf := make([]byte, req.EncodedSize())
	for i := 0; i < b.N; i++ {
		req.EncodeTo(buf)
		if _, err := DecodeRequest(buf); err != nil {
			b.Fatal(err)
		}
	}
}
