package bench

import (
	"fmt"

	"hydradb/internal/lease"
	"hydradb/internal/simcluster"
	"hydradb/internal/stats"
	"hydradb/internal/ycsb"
)

// AblationSubsharding evaluates the §6.3 proposed extension: for a fixed
// core budget on one machine, trade independent shard processes (one QP set
// per core) against instances that own the connections and demultiplex onto
// sub-shard cores (one QP set per instance). The paper predicts sub-sharding
// relieves the driver's QP-count bottleneck at high core counts.
func AblationSubsharding(s Scale) *stats.Table {
	t := &stats.Table{
		Title:   "Ablation — sub-sharding (§6.3 extension), 8 cores, 60 clients (" + s.Name + " scale)",
		Headers: []string{"instances x subshards", "QPs at server", "Mops/s", "get avg us"},
	}
	w := workload(s, 50, ycsb.Uniform)
	for _, cfg := range []struct{ inst, sub int }{
		{8, 1}, {4, 2}, {2, 4}, {1, 8},
	} {
		c := paperTestbed(s, w, simcluster.ModeWriteOnly)
		c.ShardsPerMachine = cfg.inst
		c.SubShards = cfg.sub
		c.Clients = 60
		r := runHydra(c, "subshard")
		t.AddRow(fmt.Sprintf("%dx%d", cfg.inst, cfg.sub),
			fmt.Sprintf("%d", cfg.inst*60),
			f2(r.ThroughputMops), f1(r.GetMeanUs))
	}
	return t
}

// AblationPointerSharing evaluates §4.2.4: collocated clients sharing one
// remote-pointer cache versus isolated per-client caches. Sharing
// accelerates warm-up (misses fall) and suppresses the cascading
// invalidation (invalid hits fall) on update-carrying zipfian workloads.
func AblationPointerSharing(s Scale) *stats.Table {
	t := &stats.Table{
		Title:   "Ablation — remote pointer sharing (§4.2.4) (" + s.Name + " scale)",
		Headers: []string{"workload", "cache", "Mops/s", "hits", "invalid", "misses"},
	}
	for _, wd := range []workloadDef{
		{"zipf 90%GET", 90, ycsb.Zipfian},
		{"zipf 50%GET", 50, ycsb.Zipfian},
	} {
		w := workload(s, wd.ReadPct, wd.Dist)
		for _, shared := range []bool{true, false} {
			cfg := paperTestbed(s, w, simcluster.ModeWriteRead)
			cfg.SharedCache = shared
			r := runHydra(cfg, "sharing")
			label := "shared"
			if !shared {
				label = "private"
			}
			t.AddRow(wd.Tag, label, f2(r.ThroughputMops),
				fmt.Sprintf("%d", r.Hits), fmt.Sprintf("%d", r.Stale), fmt.Sprintf("%d", r.Misses))
		}
	}
	return t
}

// AblationLeasePolicy evaluates the §4.2.3 lease design space: the
// popularity-scaled 1–64 s policy versus short and long fixed terms. Short
// leases force expiry fallbacks (counted as invalid hits) and keep memory
// pressure low; long leases maximize one-sided reads but hold detached
// areas longer (MaxPendingReclaims).
func AblationLeasePolicy(s Scale) *stats.Table {
	t := &stats.Table{
		Title:   "Ablation — lease policy (§4.2.3) on zipf 90%GET (" + s.Name + " scale)",
		Headers: []string{"policy", "Mops/s", "hits", "invalid", "peak pending reclaims"},
	}
	w := workload(s, 90, ycsb.Zipfian)
	policies := []struct {
		name   string
		policy lease.Policy
	}{
		// The run lasts a few virtual ms, so "short" must sit near the run
		// length to show expiry effects at this scale.
		{"fixed 2ms", lease.Policy{BaseTermNs: 2e6, MaxShift: 0, GraceNs: 1e5, DecayEpochNs: 10e9}},
		{"fixed 1s", lease.Policy{BaseTermNs: 1e9, MaxShift: 0, GraceNs: 1e8, DecayEpochNs: 10e9}},
		{"popularity 1-64s (paper)", lease.DefaultPolicy()},
	}
	for _, p := range policies {
		cfg := paperTestbed(s, w, simcluster.ModeWriteRead)
		cfg.LeasePolicy = p.policy
		r := runHydra(cfg, p.name)
		t.AddRow(p.name, f2(r.ThroughputMops),
			fmt.Sprintf("%d", r.Hits), fmt.Sprintf("%d", r.Stale),
			fmt.Sprintf("%d", r.MaxPendingReclaims))
	}
	return t
}

// AblationNUMA evaluates §4.1.2: NUMA-aware memory placement (allocation
// confined to the shard thread's domain) versus interleaved allocation that
// pays remote-node latency on every access.
func AblationNUMA(s Scale) *stats.Table {
	t := &stats.Table{
		Title:   "Ablation — NUMA awareness (§4.1.2) (" + s.Name + " scale)",
		Headers: []string{"workload", "placement", "Mops/s", "get avg us"},
	}
	for _, wd := range []workloadDef{
		{"unif 50%GET", 50, ycsb.Uniform},
		{"unif 90%GET", 90, ycsb.Uniform},
	} {
		w := workload(s, wd.ReadPct, wd.Dist)
		for _, interleaved := range []bool{false, true} {
			cfg := paperTestbed(s, w, simcluster.ModeWriteOnly)
			cfg.NUMAInterleaved = interleaved
			r := runHydra(cfg, "numa")
			label := "NUMA-aware"
			if interleaved {
				label = "interleaved"
			}
			t.AddRow(wd.Tag, label, f2(r.ThroughputMops), f1(r.GetMeanUs))
		}
	}
	return t
}
