package main

// bounded-spin: no backedge may be taken forever without descheduling.
//
// A loop is a *spin* when an iteration can complete without blocking
// (channel op, no-default select, mutex lock, WaitGroup wait) and without
// doing observable work (an impure call, an atomic store/RMW, a variable
// update). The classic instance is `for !done.Load() {}` — on a GOMAXPROCS=1
// box or a pinned core that loop can starve the very goroutine that would
// flip the flag, and on the read plane it would burn a reader core against a
// revoked region forever. Every spin loop must therefore carry BOTH:
//
//   - a yield/backoff point — runtime.Gosched, time.Sleep, timing.Sleep,
//     invariant.SchedPoint, or a module call that transitively yields or
//     blocks — so the scheduler can run the goroutine that makes progress;
//   - an exit — a loop condition, or a break/return/panic that leaves the
//     loop — so cancellation can actually terminate it.
//
// Calls the analyzer cannot resolve (stdlib, interface methods) count as
// work: the pass under-reports rather than flagging loops like
// `for sc.Scan() {}` whose progress lives behind an opaque call. The
// `//hydralint:spins <why>` marker exempts a loop that is deliberately
// unbounded (and is counted by the suppression budget).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// spinYields answers "does calling fn deschedule?" — fn directly yields,
// blocks, or calls a module function that does. Memoized across the run;
// recursion cycles resolve to "no" (a cycle of non-yielding calls cannot
// manufacture a yield).
type spinYields struct {
	prog *Program
	memo map[string]int // 0 in-progress, 1 yields, 2 does not
}

func (sy *spinYields) yields(name string) bool {
	if v, ok := sy.memo[name]; ok {
		return v == 1
	}
	info, ok := sy.prog.funcs[name]
	if !ok {
		return false
	}
	sy.memo[name] = 0
	result := false
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		if result {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			result = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				result = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				result = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					result = true
				}
			}
		case *ast.CallExpr:
			if isYieldCall(info.Pkg, n) {
				result = true
				return false
			}
			if _, ok := isWaitGroupMethod(info.Pkg, n, "Wait"); ok {
				result = true
				return false
			}
			if _, mode, dir, ok := lockOpPkg(info.Pkg, n); ok && dir > 0 && mode != "" {
				// A sync mutex Lock/RLock blocks; Owner.Acquire (mode "")
				// is an assertion, not a wait.
				result = true
				return false
			}
			if callee, _, ok := sy.prog.resolveCallee(info.Pkg, n); ok {
				if st, seen := sy.memo[callee.Obj.FullName()]; !seen || st == 1 {
					if sy.yields(callee.Obj.FullName()) {
						result = true
					}
				}
			}
		}
		return !result
	})
	if result {
		sy.memo[name] = 1
	} else {
		sy.memo[name] = 2
	}
	return result
}

// loopTraits is what one walk of a loop body (funclits excluded — their
// bodies run on other goroutines' schedules) establishes about an iteration.
type loopTraits struct {
	blocking bool // an iteration can block: chan op, no-default select, Lock, Wait
	yield    bool // an iteration passes a yield point
	progress bool // an iteration does observable work
	exits    bool // control can leave the loop: break/return/goto/panic
}

func runBoundedSpin(prog *Program, rep func(*Package) *Reporter) {
	sy := &spinYields{prog: prog, memo: map[string]int{}}
	for _, p := range prog.Pkgs {
		r := rep(p)
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			spins := markedLines(p.Fset, f, "hydralint:spins")
			var enclosing *ast.FuncDecl
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				enclosing = fd
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					fs, ok := n.(*ast.ForStmt)
					if !ok {
						return true
					}
					checkSpinLoop(p, r, sy, fs, spins, enclosing)
					return true
				})
			}
		}
	}
}

func checkSpinLoop(p *Package, r *Reporter, sy *spinYields, fs *ast.ForStmt, spins map[int]bool, enclosing *ast.FuncDecl) {
	if spins[p.Fset.Position(fs.Pos()).Line] {
		return
	}
	if enclosing != nil && docHasMarker(enclosing.Doc, "hydralint:spins") {
		return
	}
	var t loopTraits
	if fs.Cond != nil {
		t.exits = true
		spinScanExpr(p, sy, fs.Cond, &t)
	}
	if fs.Post != nil {
		spinScanStmt(p, sy, fs.Post, &t, true)
	}
	spinScanStmt(p, sy, fs.Body, &t, true)
	if t.blocking || t.progress {
		return
	}
	switch {
	case !t.yield:
		r.report("bounded-spin", fs.Pos(),
			"busy-wait loop has no yield or backoff (runtime.Gosched, timing.Sleep, invariant.SchedPoint); it can pin a core and starve the goroutine it waits on — add one or mark //hydralint:spins <why>")
	case !t.exits:
		r.report("bounded-spin", fs.Pos(),
			"busy-wait loop has no cancellation or termination path (no condition, break, or return); it spins forever once entered — add an exit or mark //hydralint:spins <why>")
	}
}

// spinScanStmt folds a statement's liveness traits into t. atLoopLevel
// tracks whether an unlabeled break here would leave the loop under
// analysis (false once inside a nested for/range/switch/select).
func spinScanStmt(p *Package, sy *spinYields, s ast.Stmt, t *loopTraits, atLoopLevel bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			spinScanStmt(p, sy, sub, t, atLoopLevel)
		}
	case *ast.IfStmt:
		spinScanStmt(p, sy, s.Init, t, atLoopLevel)
		spinScanExpr(p, sy, s.Cond, t)
		spinScanStmt(p, sy, s.Body, t, atLoopLevel)
		spinScanStmt(p, sy, s.Else, t, atLoopLevel)
	case *ast.LabeledStmt:
		spinScanStmt(p, sy, s.Stmt, t, atLoopLevel)
	case *ast.ForStmt:
		spinScanStmt(p, sy, s.Init, t, false)
		spinScanExpr(p, sy, s.Cond, t)
		spinScanStmt(p, sy, s.Post, t, false)
		spinScanStmt(p, sy, s.Body, t, false)
	case *ast.RangeStmt:
		if tv, ok := p.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				t.blocking = true
			}
		}
		spinScanExpr(p, sy, s.X, t)
		spinScanStmt(p, sy, s.Body, t, false)
	case *ast.SwitchStmt:
		spinScanStmt(p, sy, s.Init, t, atLoopLevel)
		spinScanExpr(p, sy, s.Tag, t)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					spinScanExpr(p, sy, e, t)
				}
				for _, sub := range cc.Body {
					spinScanStmt(p, sy, sub, t, false)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		spinScanStmt(p, sy, s.Init, t, atLoopLevel)
		spinScanStmt(p, sy, s.Assign, t, atLoopLevel)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, sub := range cc.Body {
					spinScanStmt(p, sy, sub, t, false)
				}
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			t.blocking = true
		}
		for _, cl := range s.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok {
				// The comm op itself is non-blocking when a default exists;
				// scan it only for calls (e.g. a recv from a method call).
				if comm.Comm != nil {
					spinScanStmt(p, sy, comm.Comm, t, false)
				}
				for _, sub := range comm.Body {
					spinScanStmt(p, sy, sub, t, false)
				}
			}
		}
	case *ast.SendStmt:
		t.blocking = true
		spinScanExpr(p, sy, s.Chan, t)
		spinScanExpr(p, sy, s.Value, t)
	case *ast.BranchStmt:
		// An unlabeled break at loop level, or any labeled branch, is exit
		// evidence; goto is treated as leaving conservatively.
		switch s.Tok {
		case token.BREAK:
			if atLoopLevel || s.Label != nil {
				t.exits = true
			}
		case token.GOTO:
			t.exits = true
		}
	case *ast.ReturnStmt:
		t.exits = true
		for _, e := range s.Results {
			spinScanExpr(p, sy, e, t)
		}
	case *ast.IncDecStmt:
		t.progress = true
	case *ast.AssignStmt:
		// Compound assigns and plain reassignments advance state; a pure
		// define (`x := y` with no impure RHS) does not.
		if s.Tok != token.DEFINE {
			t.progress = true
		}
		for _, e := range s.Rhs {
			spinScanExpr(p, sy, e, t)
		}
		for _, e := range s.Lhs {
			spinScanExpr(p, sy, e, t)
		}
	case *ast.ExprStmt:
		spinScanExpr(p, sy, s.X, t)
	case *ast.DeferStmt:
		spinScanExpr(p, sy, s.Call, t)
	case *ast.GoStmt:
		// Spawning is work (and the lifecycle pass owns the spawned body).
		t.progress = true
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						spinScanExpr(p, sy, e, t)
					}
				}
			}
		}
	case *ast.EmptyStmt:
	default:
		// Unknown statement forms count as work, never as a finding.
		t.progress = true
	}
}

// spinScanExpr folds an expression's traits into t: channel receives block,
// calls are classified pure / yield / work.
func spinScanExpr(p *Package, sy *spinYields, e ast.Expr, t *loopTraits) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				t.blocking = true
			}
		case *ast.CallExpr:
			spinClassifyCall(p, sy, n, t)
		}
		return true
	})
}

// spinClassifyCall buckets one call: yield, pure (atomic Load, pure
// builtins, conversions), blocking (Lock/Wait/yielding module callee), or
// work. Unresolvable calls are work — the conservative direction for a
// liveness pass is "assume the callee makes progress".
func spinClassifyCall(p *Package, sy *spinYields, call *ast.CallExpr, t *loopTraits) {
	if isYieldCall(p, call) {
		t.yield = true
		return
	}
	if recv, method, ok := atomicMethodOn(p, call); ok {
		_ = recv
		if atomicStoreMethod(method) {
			t.progress = true
		}
		// atomic Load and friends are pure observation.
		return
	}
	if _, ok := isWaitGroupMethod(p, call, "Wait"); ok {
		t.blocking = true
		return
	}
	if _, mode, dir, ok := lockOpPkg(p, call); ok {
		if dir > 0 && mode != "" {
			t.blocking = true // sync mutex Lock/RLock can wait
		} else {
			t.progress = true // unlocks and owner asserts are work, not waits
		}
		return
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "min", "max", "real", "imag", "complex":
				return // pure observation
			case "panic":
				t.exits = true
				return
			}
			t.progress = true // append, close, delete, copy, clear, ...
			return
		}
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion: pure
	}
	if isNoReturnCall(p, call) {
		t.exits = true
		return
	}
	if callee, _, ok := p.Prog.resolveCallee(p, call); ok {
		if sy.yields(callee.Obj.FullName()) {
			t.yield = true
		} else {
			t.progress = true
		}
		return
	}
	t.progress = true
}
