package arena

import (
	"sync/atomic"

	"hydradb/internal/invariant"
)

// WordArea is the 8-byte-aligned metadata companion of a shard's byte region.
//
// In the paper the guardian word and lease timestamp live inline at the end
// of each key-value area and are fetched by the same RDMA Read (§4.2.3). Go's
// memory model forbids mixing plain copies with concurrent atomic stores over
// the same bytes, so the simulated fabric keeps these words in a parallel
// atomic array of the same memory region; a simulated RDMA Read returns
// payload bytes and named words in one operation with a single latency
// charge (see DESIGN.md §2).
//
// Words are allocated in fixed-size groups (guardian + lease for items; ring
// indicators for replication logs).
type WordArea struct {
	words []atomic.Uint64 // hydralint:region the named-word companion area
	free  []int           // free group start indices
	bump  int
	group int

	// validate, when set (hydradebug sanitizers), vets word values crossing
	// the simulated fabric; see SetValidator.
	validate func(idx int, v uint64)
}

// NewWordArea creates an area of capacity word groups, each groupSize words.
func NewWordArea(capacity, groupSize int) *WordArea {
	if capacity <= 0 || groupSize <= 0 {
		panic("arena: word area capacity and group size must be positive")
	}
	return &WordArea{
		words: make([]atomic.Uint64, capacity*groupSize),
		group: groupSize,
	}
}

// AllocGroup reserves one group and returns the index of its first word.
// Words in a fresh group are zeroed.
//
// hydralint:offset-source
func (w *WordArea) AllocGroup() (int, error) {
	if n := len(w.free); n > 0 {
		idx := w.free[n-1]
		w.free = w.free[:n-1]
		for i := 0; i < w.group; i++ {
			//hydralint:ignore region-bounds free-list entries were minted by this allocator and stay within the area
			w.words[idx+i].Store(0)
		}
		return idx, nil
	}
	if w.bump+w.group > len(w.words) {
		return 0, ErrOutOfMemory
	}
	idx := w.bump
	w.bump += w.group
	return idx, nil
}

// FreeGroup recycles the group starting at idx.
func (w *WordArea) FreeGroup(idx int) {
	w.free = append(w.free, idx)
}

// Load atomically reads word idx. The invariant.SchedPoint call is the model
// checker's fine-grained yield point (a no-op empty function outside -tags
// hydradebug, and a nil-hook check even there unless hydramc is exploring).
//
// hydralint:hotpath
func (w *WordArea) Load(idx int) uint64 {
	invariant.SchedPoint("word")
	//hydralint:ignore region-bounds API boundary: idx is an offset-source word index proven in range at every producer
	return w.words[idx].Load()
}

// Store atomically writes word idx.
//
// hydralint:hotpath
func (w *WordArea) Store(idx int, v uint64) {
	invariant.SchedPoint("word")
	//hydralint:ignore region-bounds API boundary: idx is an offset-source word index proven in range at every producer
	w.words[idx].Store(v)
}

// CompareAndSwap performs an atomic CAS on word idx.
//
// hydralint:hotpath
func (w *WordArea) CompareAndSwap(idx int, old, new uint64) bool {
	invariant.SchedPoint("word")
	//hydralint:ignore region-bounds API boundary: idx is an offset-source word index proven in range at every producer
	return w.words[idx].CompareAndSwap(old, new)
}

// SetValidator installs fn as the area's word validator. The simulated
// fabric calls Validate with every word value a one-sided operation loads
// from or stores into this area, letting the area's owner panic on values
// that violate its encoding (e.g. a guardian word that is neither live nor
// dead — a torn or misdirected write). Only the hydradebug sanitizers
// install validators; the fabric skips the call entirely otherwise.
func (w *WordArea) SetValidator(fn func(idx int, v uint64)) { w.validate = fn }

// Validate runs the installed validator, if any, against word idx holding v.
func (w *WordArea) Validate(idx int, v uint64) {
	if w.validate != nil {
		w.validate(idx, v)
	}
}

// Len reports the total number of words.
func (w *WordArea) Len() int { return len(w.words) }

// GroupSize reports the words per group.
func (w *WordArea) GroupSize() int { return w.group }
