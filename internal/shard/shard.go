// Package shard implements the live-mode HydraDB shard: a single-threaded
// process that exclusively manages one partition (paper §4.1.1).
//
// The shard thread continuously polls the request mailboxes of its client
// connections in round-robin order; upon detecting a message it processes
// the request against its kv.Store and RDMA-writes the response back before
// polling the next mailbox. There are no locks on the data path — the
// partition is owned exclusively — and after a quiet period the loop backs
// off with a short sleep so light workloads impose negligible CPU cost
// without sacrificing latency (§4.2.1).
//
// The package also provides the decoupled pipelined variant (dispatcher
// threads + worker threads sharing the store under a mutex) used purely as
// the ablation baseline of §6.2.1/Fig. 5(a).
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hydradb/internal/arena"
	"hydradb/internal/invariant"
	"hydradb/internal/kv"
	"hydradb/internal/message"
	"hydradb/internal/rdma"
	"hydradb/internal/replication"
	"hydradb/internal/stats"
	"hydradb/internal/timing"
)

// Config assembles a shard.
type Config struct {
	// ID is the global shard identity used in remote pointers and routing.
	ID uint32
	// NIC is the adaptor of the machine hosting this shard.
	NIC *rdma.NIC
	// Store sizes the item store (Clock required).
	Store kv.Config
	// MailboxBytes is the per-slot request/response buffer capacity.
	MailboxBytes int
	// RingDepth is the number of mailbox slots per connection direction — the
	// maximum requests a client may keep in flight on one connection. Depth 1
	// reproduces the paper's single-slot alternation protocol exactly.
	RingDepth int
	// IdleSpins is the number of empty poll rounds before the loop naps.
	IdleSpins int
	// NapNs is the first nap length once idle (paper: ~100 ns); the adaptive
	// backoff doubles it on consecutive idle rounds up to NapMaxNs.
	NapNs int64
	// NapMaxNs caps the exponential idle nap (default 1 ms): the worst-case
	// pickup delay for a fresh request arriving after a long idle period.
	NapMaxNs int64
	// ReaderThreads enables the parallel read plane: that many reader
	// goroutines serve OpGet (and definitive OpRenewLease rejections)
	// directly from connection mailboxes with guardian-validated probes,
	// while every mutation stays exclusive to the shard loop (DESIGN.md
	// §13). 0 keeps the classic single-goroutine shard.
	ReaderThreads int
	// ReclaimEvery runs a reclamation pass after this many handled requests.
	ReclaimEvery int
	// ExistingStore, when non-nil, adopts an already-populated store instead
	// of creating one — the SWAT promotion path, where a secondary's replica
	// store becomes the new primary's (§5.1).
	ExistingStore *kv.Store
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.MailboxBytes == 0 {
		cfg.MailboxBytes = 64 << 10
	}
	if cfg.RingDepth == 0 {
		cfg.RingDepth = 16
	}
	if cfg.IdleSpins == 0 {
		cfg.IdleSpins = 64
	}
	if cfg.NapNs == 0 {
		cfg.NapNs = 100
	}
	if cfg.NapMaxNs == 0 {
		cfg.NapMaxNs = int64(time.Millisecond)
	}
	if cfg.NapMaxNs < cfg.NapNs {
		cfg.NapMaxNs = cfg.NapNs
	}
	if cfg.ReclaimEvery == 0 {
		cfg.ReclaimEvery = 256
	}
	return cfg
}

// Endpoint is what a client holds after connecting to a shard: the writer
// view of the request mailbox, the owner view of its response mailbox, and
// the queue pair for one-sided operations against the shard's arena.
type Endpoint struct {
	ShardID uint32
	// ReqBox delivers requests into the shard (write via QP).
	ReqBox *message.Mailbox
	// RespBox is polled by the client for responses.
	RespBox *message.Mailbox
	// QP is the client's end: request writes, and RDMA Reads of ArenaMR.
	QP *rdma.QP
	// ArenaMR is the shard's item region for RDMA-Read GETs.
	ArenaMR *rdma.MemoryRegion
	// SendRecv selects the two-sided baseline transport (§6.2 ablation):
	// requests go via QP.Send and responses arrive via QP.Recv.
	SendRecv bool
}

type conn struct {
	reqBox   *message.Mailbox
	respBox  *message.Mailbox
	qp       *rdma.QP // shard's end: response writes
	reqMR    *rdma.MemoryRegion
	sendRecv bool
}

// Shard is a live single-threaded shard.
type Shard struct {
	cfg     Config
	id      uint32
	nic     *rdma.NIC
	store   *kv.Store
	arenaMR *rdma.MemoryRegion
	clock   timing.Clock

	epoch   atomic.Uint32
	primary *replication.Primary // nil when replication is off

	// Control-plane only: guards connSet mutation in Connect. The hot path
	// reads the immutable snapshot through the conns atomic pointer.
	mu      sync.Mutex //hydralint:ignore shard-exclusivity control-plane connect path, never taken by the shard loop
	connSet []*conn
	conns   atomic.Pointer[[]*conn]

	stop    chan struct{}
	stopped chan struct{}
	started atomic.Bool
	killed  atomic.Bool
	own     invariant.Owner // hydradebug: goroutine-ownership sanitizer

	Counters stats.OpCounters
	Handled  stats.Counter
}

// New creates a shard. The store is created from cfg.Store with the shard's
// counters attached.
func New(cfg Config) *Shard {
	c := cfg.withDefaults()
	if c.NIC == nil {
		panic("shard: NIC required")
	}
	s := &Shard{
		cfg:     c,
		id:      c.ID,
		nic:     c.NIC,
		clock:   c.Store.Clock,
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	if c.ExistingStore != nil {
		s.store = c.ExistingStore
	} else {
		storeCfg := c.Store
		storeCfg.Counters = &s.Counters
		s.store = kv.NewStore(storeCfg)
	}
	s.arenaMR = c.NIC.Register(s.store.ArenaData(), s.store.Words())
	empty := []*conn{}
	s.conns.Store(&empty)
	return s
}

// ID reports the shard identity.
func (s *Shard) ID() uint32 { return s.id }

// NIC reports the hosting adaptor.
func (s *Shard) NIC() *rdma.NIC { return s.nic }

// Store exposes the underlying item store (tests, promotion, migration).
func (s *Shard) Store() *kv.Store { return s.store }

// Epoch reports the routing epoch the shard currently accepts.
func (s *Shard) Epoch() uint32 { return s.epoch.Load() }

// SetEpoch advances the accepted routing epoch (SWAT reconfiguration).
func (s *Shard) SetEpoch(e uint32) { s.epoch.Store(e) }

// AttachPrimary enables replication through p. Must be set before Run.
func (s *Shard) AttachPrimary(p *replication.Primary) { s.primary = p }

// Primary reports the attached replication primary, if any.
func (s *Shard) Primary() *replication.Primary { return s.primary }

// Connect establishes a connection from a client living on clientNIC and
// returns the client's endpoint. sendRecv selects the two-sided baseline.
func (s *Shard) Connect(clientNIC *rdma.NIC, sendRecv bool) *Endpoint {
	depth := s.cfg.RingDepth
	qpDepth := 16
	if depth > qpDepth {
		qpDepth = depth
	}
	qpClient, qpShard := rdma.Connect(clientNIC, s.nic, qpDepth)

	reqMR := s.nic.Register(make([]byte, depth*s.cfg.MailboxBytes), arena.NewWordArea(depth, 2))
	respMR := clientNIC.Register(make([]byte, depth*s.cfg.MailboxBytes), arena.NewWordArea(depth, 2))
	reqBox := message.NewRing(reqMR, 0, s.cfg.MailboxBytes, depth, 0)
	respBox := message.NewRing(respMR, 0, s.cfg.MailboxBytes, depth, 0)

	c := &conn{reqBox: reqBox, respBox: respBox, qp: qpShard, reqMR: reqMR, sendRecv: sendRecv}
	s.mu.Lock() //hydralint:ignore shard-exclusivity control-plane connect path, never taken by the shard loop
	s.connSet = append(s.connSet, c)
	snapshot := append([]*conn(nil), s.connSet...)
	s.conns.Store(&snapshot)
	s.mu.Unlock() //hydralint:ignore shard-exclusivity control-plane connect path, never taken by the shard loop

	return &Endpoint{
		ShardID:  s.id,
		ReqBox:   reqBox,
		RespBox:  respBox,
		QP:       qpClient,
		ArenaMR:  s.arenaMR,
		SendRecv: sendRecv,
	}
}

// Run executes the single-threaded event loop until Stop. It owns the store
// exclusively; nothing else may touch it while running.
func (s *Shard) Run() {
	// Ownership is acquired before started flips so that anything observing
	// started==true may rely on the owner being recorded (§4.1.1 sanitizer).
	s.own.Acquire("shard.Run")
	defer s.own.Release()
	s.started.Store(true)
	defer close(s.stopped)
	// Leak-sanitizer registration sits after the stopped defer so its
	// deregistration (LIFO) happens-before the close a joining Stop waits on.
	spawnDone := invariant.Spawned(fmt.Sprintf("shard/%p/run", s))
	defer spawnDone()
	if s.cfg.ReaderThreads > 0 {
		s.runReadPlane()
		return
	}
	respBuf := make([]byte, s.cfg.MailboxBytes)
	back := s.newBackoff()
	handledSinceReclaim := 0
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		progress := false
		// One epoch load covers the whole poll round: SetEpoch is
		// control-plane, so every request drained this round may be judged
		// against the same value.
		epoch := s.epoch.Load()
		conns := *s.conns.Load()
		for _, c := range conns {
			n := s.drainConn(c, respBuf, epoch)
			if n > 0 {
				progress = true
				handledSinceReclaim += n
				s.Handled.Add(int64(n))
			}
		}
		if handledSinceReclaim >= s.cfg.ReclaimEvery {
			s.store.ReclaimDue()
			handledSinceReclaim = 0
		}
		if progress {
			back.reset()
			continue
		}
		if back.idle() {
			s.store.ReclaimDue()
		}
	}
}

// drainConn consumes every ready request of one connection — up to a full
// ring (or its equivalent in two-sided receives) per poll round — and reports
// how many it handled. Batching here is what turns the ring depth into
// throughput: one poll round retires a whole pipeline window, and the epoch
// check and reclamation accounting are amortized across the batch.
//
// hydralint:hotpath
func (s *Shard) drainConn(c *conn, respBuf []byte, epoch uint32) int {
	handled := 0
	if c.sendRecv {
		for handled < c.respBox.Depth() {
			body, ok := c.qp.TryRecv()
			if !ok {
				break
			}
			n := s.handle(body, respBuf, epoch)
			//hydralint:ignore error-discipline response to a vanished client; nothing to do but serve the next mailbox
			_ = c.qp.Send(respBuf[:n])
			handled++
		}
		return handled
	}
	for handled < c.reqBox.Depth() {
		body, seq, ok := c.reqBox.Poll()
		if !ok {
			break
		}
		n := s.handle(body, respBuf, epoch)
		// "the shard zeros out the request buffer and sends the response
		// back" (§4.2.1). Consuming before the response write frees the slot
		// for the client's next pipelined request.
		c.reqBox.Consume()
		//hydralint:ignore error-discipline response to a vanished client; nothing to do but serve the next mailbox
		_ = c.respBox.WriteVia(c.qp, respBuf[:n], seq)
		handled++
	}
	return handled
}

// handle processes one request body against the given routing epoch, encodes
// the response into respBuf, and returns its length.
//
// hydralint:hotpath
func (s *Shard) handle(body []byte, respBuf []byte, epoch uint32) int {
	s.own.Assert("shard.handle")
	req, err := message.DecodeRequest(body)
	resp := message.Response{Epoch: epoch}
	if err != nil {
		resp.Status = message.StatusError
	} else {
		resp.Seq = req.Seq
		if req.Epoch != epoch {
			resp.Status = message.StatusWrongShard
		} else {
			s.apply(req, &resp)
		}
	}
	return resp.EncodeTo(respBuf)
}

// apply executes a request against the store, filling resp.
func (s *Shard) apply(req message.Request, resp *message.Response) {
	switch req.Op {
	case message.OpGet:
		res, ok := s.store.Get(req.Key)
		if !ok {
			resp.Status = message.StatusNotFound
			return
		}
		resp.Status = message.StatusOK
		resp.Val = res.Value
		resp.LeaseExp = res.LeaseExp
		resp.Ptr = res.Ptr
		resp.Ptr.ShardID = s.id

	case message.OpPut, message.OpMigrate:
		// Replicate before applying locally: a value only becomes visible to
		// readers once it is in the backup stream, so a primary crash right
		// after a Get can never lose data that Get observed.
		if req.Op == message.OpPut && s.primary != nil {
			if err := s.primary.Replicate(replication.Record{
				Op: message.OpPut, Key: req.Key, Val: req.Val,
			}); err != nil {
				resp.Status = message.StatusError
				return
			}
			s.Counters.Replications.Inc()
		}
		res, existed, err := s.store.Put(req.Key, req.Val)
		if err != nil {
			resp.Status = message.StatusError
			return
		}
		resp.Status = message.StatusOK
		resp.Existed = existed
		resp.LeaseExp = res.LeaseExp
		resp.Ptr = res.Ptr
		resp.Ptr.ShardID = s.id

	case message.OpDelete:
		if s.primary != nil {
			if err := s.primary.Replicate(replication.Record{
				Op: message.OpDelete, Key: req.Key,
			}); err != nil {
				resp.Status = message.StatusError
				return
			}
			s.Counters.Replications.Inc()
		}
		existed := s.store.Delete(req.Key)
		if existed {
			resp.Status = message.StatusOK
		} else {
			resp.Status = message.StatusNotFound
		}

	case message.OpRenewLease:
		exp, ok := s.store.RenewLease(req.Key)
		if !ok {
			resp.Status = message.StatusNotFound
			return
		}
		resp.Status = message.StatusOK
		resp.LeaseExp = exp

	default:
		resp.Status = message.StatusError
	}
}

// Stop terminates the loop gracefully (flushing replication).
func (s *Shard) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	if s.started.Load() {
		<-s.stopped
		invariant.AssertDrained(fmt.Sprintf("shard/%p/", s))
	}
	if s.primary != nil {
		// Bounded: a partitioned or dead secondary must not hang Stop (the
		// chaos stop-drain scenario stops shards while the mesh is cut).
		//hydralint:ignore error-discipline graceful-stop flush; secondaries that miss it recover via the §5.2 resend protocol
		_ = s.primary.FlushTimeout(stopFlushBudgetNs)
	}
}

// stopFlushBudgetNs bounds the replication flush in Stop: long enough for a
// healthy replica set to drain its ring, short enough that stopping a shard
// whose secondary is partitioned completes promptly.
const stopFlushBudgetNs = int64(2 * time.Second)

// Kill terminates the loop abruptly without flushing — the §5 failure
// injection: acknowledged data must still survive on secondaries because
// logging-mode replication placed it there before acking the client.
func (s *Shard) Kill() {
	s.killed.Store(true)
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	if s.started.Load() {
		<-s.stopped
		invariant.AssertDrained(fmt.Sprintf("shard/%p/", s))
	}
	// A dead process takes its memory registrations with it: one-sided reads
	// of the frozen arena must fail at the fabric, not return pre-crash
	// bytes. Without this, a client whose cached pointer targets the dead
	// primary would keep validating stale items forever — the guardian stays
	// GuardianLive in memory nobody will ever write again.
	s.arenaMR.Revoke()
	s.mu.Lock() //hydralint:ignore shard-exclusivity loop is dead; control-plane teardown
	for _, c := range s.connSet {
		c.reqMR.Revoke()
	}
	s.mu.Unlock() //hydralint:ignore shard-exclusivity loop is dead; control-plane teardown
}

// Killed reports whether the shard was failure-injected.
func (s *Shard) Killed() bool { return s.killed.Load() }

// String identifies the shard.
func (s *Shard) String() string { return fmt.Sprintf("shard-%d@%s", s.id, s.nic.Name()) }
