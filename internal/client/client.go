// Package client implements the HydraDB client library (paper §4):
// consistent-hash routing, RDMA-Write message passing with response polling,
// remote-pointer caching with RDMA-Read GETs, stale-read detection via the
// guardian word, lease tracking and renewal, and optional pointer sharing
// among collocated clients through a lock-free cache (§4.2.2–§4.2.4).
package client

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"hydradb/internal/consistent"
	"hydradb/internal/kv"
	"hydradb/internal/lease"
	"hydradb/internal/lfmap"
	"hydradb/internal/message"
	"hydradb/internal/shard"
	"hydradb/internal/stats"
	"hydradb/internal/timing"
)

// Errors surfaced to applications.
var (
	ErrNotFound = errors.New("hydradb: key not found")
	ErrUnrouted = errors.New("hydradb: no shard owns this key")
	ErrRemote   = errors.New("hydradb: server error")
	ErrRetries  = errors.New("hydradb: routing retries exhausted")
)

// PtrEntry is a cached remote pointer plus its lease (§4.2.2).
type PtrEntry struct {
	Ptr      kv.RemotePtr
	LeaseExp int64
	Access   atomic.Uint32 // client-side popularity for renewal decisions
}

// PtrCache abstracts the pointer cache: a private per-client cache or the
// shared lock-free cache of collocated clients (§4.2.4).
type PtrCache interface {
	Get(key string) (*PtrEntry, bool)
	Put(key string, e *PtrEntry)
	CompareAndDelete(key string, old *PtrEntry) bool
	Range(fn func(key string, e *PtrEntry) bool)
	Len() int
}

// NewSharedCache builds the machine-wide lock-free cache.
func NewSharedCache(buckets int) PtrCache {
	return sharedCache{m: lfmap.New[PtrEntry](buckets)}
}

type sharedCache struct{ m *lfmap.Map[PtrEntry] }

func (s sharedCache) Get(key string) (*PtrEntry, bool) { return s.m.Get(key) }
func (s sharedCache) Put(key string, e *PtrEntry)      { s.m.Put(key, e) }
func (s sharedCache) CompareAndDelete(key string, old *PtrEntry) bool {
	return s.m.CompareAndDelete(key, old)
}
func (s sharedCache) Range(fn func(string, *PtrEntry) bool) { s.m.Range(fn) }
func (s sharedCache) Len() int                              { return s.m.Len() }

// NewPrivateCache builds a single-client map cache (used when secure access
// requires cache isolation, §4.2.4).
func NewPrivateCache() PtrCache { return &privateCache{m: map[string]*PtrEntry{}} }

type privateCache struct{ m map[string]*PtrEntry }

func (p *privateCache) Get(key string) (*PtrEntry, bool) { e, ok := p.m[key]; return e, ok }
func (p *privateCache) Put(key string, e *PtrEntry)      { p.m[key] = e }
func (p *privateCache) CompareAndDelete(key string, old *PtrEntry) bool {
	if cur, ok := p.m[key]; ok && cur == old {
		delete(p.m, key)
		return true
	}
	return false
}
func (p *privateCache) Range(fn func(string, *PtrEntry) bool) {
	for k, e := range p.m {
		if !fn(k, e) {
			return
		}
	}
}
func (p *privateCache) Len() int { return len(p.m) }

// RouteTable snapshots the cluster topology under one epoch.
type RouteTable struct {
	Epoch     uint32
	Ring      *consistent.Ring
	Endpoints map[uint32]*shard.Endpoint
}

// Options tune a client.
type Options struct {
	// Clock is required (shared with the cluster for lease arithmetic).
	Clock timing.Clock
	// Cache holds remote pointers; nil selects a private cache.
	Cache PtrCache
	// UseRDMARead enables the one-sided GET path (§4.2.2); disabled it
	// degenerates to pure message passing ("RDMA Write Only", Fig. 10).
	UseRDMARead bool
	// ReadMarginNs is the lease safety margin for RDMA Reads.
	ReadMarginNs int64
	// Refresh is called on StatusWrongShard to obtain a newer RouteTable;
	// nil disables rerouting.
	Refresh func() *RouteTable
	// MaxRetries bounds rerouting attempts.
	MaxRetries int
	// RequestTimeout bounds the wall-clock wait for a response; on expiry the
	// client refreshes its routing table and retries (the shard may have
	// failed and been promoted elsewhere). Zero selects 2 s.
	RequestTimeout time.Duration
	// WallClock supplies the liveness time base for RequestTimeout. It is
	// distinct from Clock: lease arithmetic must follow the (possibly
	// virtual) data-plane clock, while failure detection must keep moving
	// even when that clock is a stalled ManualClock. Nil selects the shared
	// real clock, timing.Wall(); deterministic harnesses may inject a
	// ManualClock and drive timeouts explicitly.
	WallClock timing.Clock
	// Counters, when non-nil, receives operation accounting (shared across
	// clients when aggregating a machine).
	Counters *stats.OpCounters
}

// Client is a HydraDB client instance. A client issues synchronous requests
// and is not safe for concurrent use — run one per goroutine, exactly like
// the paper's client processes; clients may share a PtrCache and counters.
type Client struct {
	opts   Options
	table  *RouteTable
	cache  PtrCache
	clock  timing.Clock
	wall   timing.Clock
	ctr    *stats.OpCounters
	seq    uint32
	reqBuf []byte
	rdBuf  []byte
}

// New creates a client over the given routing snapshot.
func New(table *RouteTable, opts Options) *Client {
	if opts.Clock == nil {
		panic("client: Options.Clock required")
	}
	if opts.ReadMarginNs == 0 {
		opts.ReadMarginNs = 10e6 // 10 ms skew margin
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 8
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 2 * time.Second
	}
	if opts.WallClock == nil {
		opts.WallClock = timing.Wall()
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewPrivateCache()
	}
	ctr := opts.Counters
	if ctr == nil {
		ctr = &stats.OpCounters{}
	}
	return &Client{
		opts:   opts,
		table:  table,
		cache:  cache,
		clock:  opts.Clock,
		wall:   opts.WallClock,
		ctr:    ctr,
		reqBuf: make([]byte, 64<<10),
		rdBuf:  make([]byte, 64<<10),
	}
}

// Counters exposes the client's accounting.
func (c *Client) Counters() *stats.OpCounters { return c.ctr }

// Cache exposes the pointer cache (hit analysis, Fig. 11).
func (c *Client) Cache() PtrCache { return c.cache }

// Table reports the current routing snapshot.
func (c *Client) Table() *RouteTable { return c.table }

// SetTable installs a new routing snapshot (epoch change).
func (c *Client) SetTable(t *RouteTable) { c.table = t }

func (c *Client) endpointFor(key []byte) (*shard.Endpoint, error) {
	sid := c.table.Ring.OwnerOfKey(key)
	ep, ok := c.table.Endpoints[sid]
	if !ok {
		return nil, ErrUnrouted
	}
	return ep, nil
}

// request performs one synchronous message exchange with the shard owning
// key, handling epoch-stale rerouting.
func (c *Client) request(req *message.Request) (message.Response, error) {
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		ep, err := c.endpointFor(req.Key)
		if err != nil {
			return message.Response{}, err
		}
		req.Epoch = c.table.Epoch
		c.seq++
		req.Seq = c.seq

		need := req.EncodedSize()
		if cap(c.reqBuf) < need {
			c.reqBuf = make([]byte, need)
		}
		n := req.EncodeTo(c.reqBuf[:need])

		var resp message.Response
		if ep.SendRecv {
			if err := ep.QP.Send(c.reqBuf[:n]); err != nil {
				return message.Response{}, err
			}
			deadline := c.wall.Now() + int64(c.opts.RequestTimeout)
			var body []byte
			for {
				var ok bool
				body, ok = ep.QP.TryRecv()
				if ok {
					break
				}
				if ep.QP.Closed() {
					return message.Response{}, ErrRemote
				}
				if c.wall.Now() > deadline {
					if c.opts.Refresh == nil {
						return message.Response{}, ErrRemote
					}
					c.ctr.RoutingRetries.Inc()
					c.table = c.opts.Refresh()
					body = nil
					break
				}
				runtime.Gosched()
			}
			if body == nil {
				continue // timed out: retry against the refreshed table
			}
			resp, err = message.DecodeResponse(body)
			if err != nil {
				return message.Response{}, err
			}
		} else {
			if err := ep.ReqBox.WriteVia(ep.QP, c.reqBuf[:n], req.Seq); err != nil {
				return message.Response{}, err
			}
			// Sustained polling for the response (§4.2.1): the client CPU
			// polls its response buffer. A real-time deadline covers shard
			// failure: on expiry, refresh routing and retry.
			var body []byte
			deadline := c.wall.Now() + int64(c.opts.RequestTimeout)
			timedOut := false
			for spins := 0; ; spins++ {
				var ok bool
				body, _, ok = ep.RespBox.Poll()
				if ok {
					break
				}
				if spins&1023 == 1023 && c.wall.Now() > deadline {
					timedOut = true
					break
				}
				runtime.Gosched()
			}
			if timedOut {
				if c.opts.Refresh == nil {
					return message.Response{}, ErrRemote
				}
				c.ctr.RoutingRetries.Inc()
				c.table = c.opts.Refresh()
				continue
			}
			resp, err = message.DecodeResponse(body)
			if err != nil {
				ep.RespBox.Consume()
				return message.Response{}, err
			}
			// Copy the value out before releasing the mailbox.
			if len(resp.Val) > 0 {
				v := make([]byte, len(resp.Val))
				copy(v, resp.Val)
				resp.Val = v
			}
			ep.RespBox.Consume()
		}

		if resp.Status == message.StatusWrongShard {
			c.ctr.RoutingRetries.Inc()
			if c.opts.Refresh == nil {
				return resp, ErrRetries
			}
			c.table = c.opts.Refresh()
			continue
		}
		return resp, nil
	}
	return message.Response{}, ErrRetries
}

// cachePointer installs/overwrites the pointer for key.
func (c *Client) cachePointer(key string, ptr kv.RemotePtr, leaseExp int64) {
	if ptr.Zero() {
		return
	}
	e := &PtrEntry{Ptr: ptr, LeaseExp: leaseExp}
	e.Access.Store(1)
	c.cache.Put(key, e)
}

// Get returns the value for key. Previously accessed keys with a valid
// lease are fetched with a single one-sided RDMA Read that bypasses the
// shard CPU entirely; the guardian word and embedded key validate the fetch,
// falling back to a message GET on any staleness (§4.2.2, §4.2.3).
func (c *Client) Get(key []byte) ([]byte, error) {
	c.ctr.Gets.Inc()
	skey := string(key)
	if c.opts.UseRDMARead {
		if e, ok := c.cache.Get(skey); ok {
			val, ok, err := c.readViaPointer(key, e)
			if err == nil && ok {
				c.ctr.RDMAReadHits.Inc()
				e.Access.Add(1)
				return val, nil
			}
			// Invalid hit: outdated item observed — drop the pointer and
			// issue a message GET for the latest version (§4.2.3).
			c.ctr.RDMAReadStale.Inc()
			c.cache.CompareAndDelete(skey, e)
		} else {
			c.ctr.PointerMisses.Inc()
		}
	} else {
		c.ctr.PointerMisses.Inc()
	}

	resp, err := c.request(&message.Request{Op: message.OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case message.StatusOK:
		if c.opts.UseRDMARead {
			c.cachePointer(skey, resp.Ptr, resp.LeaseExp)
		}
		return resp.Val, nil
	case message.StatusNotFound:
		return nil, ErrNotFound
	default:
		return nil, ErrRemote
	}
}

// readViaPointer attempts the one-sided fetch. ok=false flags a stale or
// lease-expired pointer.
func (c *Client) readViaPointer(key []byte, e *PtrEntry) ([]byte, bool, error) {
	now := c.clock.Now()
	if !lease.ValidForRead(e.LeaseExp, now, c.opts.ReadMarginNs) {
		return nil, false, nil
	}
	ep, ok := c.table.Endpoints[e.Ptr.ShardID]
	if !ok {
		return nil, false, nil
	}
	n := int(e.Ptr.DataLen)
	if cap(c.rdBuf) < n {
		c.rdBuf = make([]byte, n)
	}
	dst := c.rdBuf[:n]
	// One RDMA Read fetches payload + guardian + lease (§4.2.3).
	_, words, err := ep.QP.Read(ep.ArenaMR, int(e.Ptr.DataOff), dst,
		int(e.Ptr.MetaIdx), int(e.Ptr.MetaIdx)+1)
	if err != nil {
		return nil, false, err
	}
	if words[0] != kv.GuardianLive {
		return nil, false, nil // guardian flipped: outdated
	}
	gotKey, gotVal, okDec := kv.DecodeItem(dst)
	if !okDec || string(gotKey) != string(key) {
		// Recycled area republished for another key: treat as stale.
		return nil, false, nil
	}
	// Refresh the lease view fetched with the item.
	if exp := int64(words[1]); exp > e.LeaseExp {
		e.LeaseExp = exp
	}
	out := make([]byte, len(gotVal))
	copy(out, gotVal)
	return out, true, nil
}

// Put inserts or updates key. The returned pointer is cached so subsequent
// GETs can go one-sided immediately.
func (c *Client) Put(key, val []byte) error {
	c.ctr.Updates.Inc()
	resp, err := c.request(&message.Request{Op: message.OpPut, Key: key, Val: val})
	if err != nil {
		return err
	}
	if resp.Status != message.StatusOK {
		return ErrRemote
	}
	if c.opts.UseRDMARead {
		c.cachePointer(string(key), resp.Ptr, resp.LeaseExp)
	}
	return nil
}

// Delete removes key.
func (c *Client) Delete(key []byte) error {
	c.ctr.Deletes.Inc()
	resp, err := c.request(&message.Request{Op: message.OpDelete, Key: key})
	if err != nil {
		return err
	}
	if e, ok := c.cache.Get(string(key)); ok {
		c.cache.CompareAndDelete(string(key), e)
	}
	switch resp.Status {
	case message.StatusOK:
		return nil
	case message.StatusNotFound:
		return ErrNotFound
	default:
		return ErrRemote
	}
}

// Renew extends the lease of key on the server (periodic renewal of popular
// keys, §4.2.3). It updates the cached entry in place.
func (c *Client) Renew(key []byte) error {
	resp, err := c.request(&message.Request{Op: message.OpRenewLease, Key: key})
	if err != nil {
		return err
	}
	if resp.Status != message.StatusOK {
		// Outdated or deleted: drop the pointer.
		if e, ok := c.cache.Get(string(key)); ok {
			c.cache.CompareAndDelete(string(key), e)
		}
		return ErrNotFound
	}
	c.ctr.LeaseRenewals.Inc()
	if e, ok := c.cache.Get(string(key)); ok {
		e.LeaseExp = resp.LeaseExp
	}
	return nil
}

// RenewPopular renews every cached key whose client-side access count is at
// least minAccess and whose lease expires within windowNs — the paper's
// periodic renewal pass. Returns the number of keys renewed.
func (c *Client) RenewPopular(minAccess uint32, windowNs int64) int {
	now := c.clock.Now()
	var keys []string
	c.cache.Range(func(key string, e *PtrEntry) bool {
		if e.Access.Load() >= minAccess && e.LeaseExp-now < windowNs {
			keys = append(keys, key)
		}
		return true
	})
	n := 0
	for _, k := range keys {
		if err := c.Renew([]byte(k)); err == nil {
			n++
		}
	}
	return n
}

// String identifies the client by its routing epoch.
func (c *Client) String() string {
	return fmt.Sprintf("client{epoch=%d shards=%d}", c.table.Epoch, c.table.Ring.Size())
}
