package shard

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hydradb/internal/kv"
	"hydradb/internal/message"
	"hydradb/internal/rdma"
	"hydradb/internal/replication"
	"hydradb/internal/timing"
)

func testShard(t testing.TB) (*Shard, *rdma.Fabric, *timing.ManualClock) {
	t.Helper()
	clk := timing.NewManualClock(1e9)
	f := rdma.NewFabric(rdma.Config{})
	sh := New(Config{
		ID:  7,
		NIC: f.NewNIC("server"),
		Store: kv.Config{
			ArenaBytes: 1 << 20,
			MaxItems:   4096,
			Clock:      clk,
		},
	})
	return sh, f, clk
}

// exchange performs one synchronous request/response over an endpoint.
func exchange(t testing.TB, ep *Endpoint, req message.Request) message.Response {
	t.Helper()
	buf := make([]byte, 4096)
	n := req.EncodeTo(buf)
	if err := ep.ReqBox.WriteVia(ep.QP, buf[:n], req.Seq); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, _, ok := ep.RespBox.Poll()
		if ok {
			resp, err := message.DecodeResponse(body)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Val) > 0 {
				v := make([]byte, len(resp.Val))
				copy(v, resp.Val)
				resp.Val = v
			}
			ep.RespBox.Consume()
			return resp
		}
		if time.Now().After(deadline) {
			t.Fatal("no response")
		}
		runtime.Gosched()
	}
}

func TestShardServesOps(t *testing.T) {
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)

	put := exchange(t, ep, message.Request{Op: message.OpPut, Seq: 1, Key: []byte("k"), Val: []byte("v")})
	if put.Status != message.StatusOK || put.Existed {
		t.Fatalf("put: %+v", put)
	}
	if put.Ptr.ShardID != 7 || put.Ptr.Zero() {
		t.Fatalf("put pointer: %v", put.Ptr)
	}
	if put.LeaseExp == 0 {
		t.Fatal("put carried no lease")
	}
	get := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 2, Key: []byte("k")})
	if get.Status != message.StatusOK || string(get.Val) != "v" {
		t.Fatalf("get: %+v", get)
	}
	ren := exchange(t, ep, message.Request{Op: message.OpRenewLease, Seq: 3, Key: []byte("k")})
	if ren.Status != message.StatusOK || ren.LeaseExp < get.LeaseExp {
		t.Fatalf("renew: %+v", ren)
	}
	del := exchange(t, ep, message.Request{Op: message.OpDelete, Seq: 4, Key: []byte("k")})
	if del.Status != message.StatusOK {
		t.Fatalf("delete: %+v", del)
	}
	miss := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 5, Key: []byte("k")})
	if miss.Status != message.StatusNotFound {
		t.Fatalf("get after delete: %+v", miss)
	}
}

func TestShardRejectsStaleEpoch(t *testing.T) {
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	sh.SetEpoch(5)
	ep := sh.Connect(f.NewNIC("client"), false)
	resp := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 1, Epoch: 4, Key: []byte("k")})
	if resp.Status != message.StatusWrongShard {
		t.Fatalf("stale epoch: %+v", resp)
	}
	if resp.Epoch != 5 {
		t.Fatalf("response must advertise current epoch, got %d", resp.Epoch)
	}
	ok := exchange(t, ep, message.Request{Op: message.OpPut, Seq: 2, Epoch: 5, Key: []byte("k"), Val: []byte("v")})
	if ok.Status != message.StatusOK {
		t.Fatalf("current epoch rejected: %+v", ok)
	}
}

func TestShardMalformedRequest(t *testing.T) {
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)
	// Write garbage into the request mailbox.
	if err := ep.ReqBox.WriteVia(ep.QP, []byte{0xFF, 0x00, 0x01}, 9); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, _, ok := ep.RespBox.Poll()
		if ok {
			resp, err := message.DecodeResponse(body)
			ep.RespBox.Consume()
			if err != nil || resp.Status != message.StatusError {
				t.Fatalf("garbage must yield StatusError: %+v %v", resp, err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no response to malformed request")
		}
		runtime.Gosched()
	}
}

func TestShardRoundRobinAcrossConnections(t *testing.T) {
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	cli := f.NewNIC("clients")
	const conns = 5
	eps := make([]*Endpoint, conns)
	for i := range eps {
		eps[i] = sh.Connect(cli, false)
	}
	// All connections must be served.
	for round := 0; round < 20; round++ {
		for i, ep := range eps {
			key := []byte(fmt.Sprintf("conn%d-key%d", i, round))
			resp := exchange(t, ep, message.Request{Op: message.OpPut, Seq: uint32(round), Key: key, Val: []byte("v")})
			if resp.Status != message.StatusOK {
				t.Fatalf("conn %d round %d: %+v", i, round, resp)
			}
		}
	}
	if sh.Handled.Load() != conns*20 {
		t.Fatalf("handled %d, want %d", sh.Handled.Load(), conns*20)
	}
}

func TestShardReclaimAmortization(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	f := rdma.NewFabric(rdma.Config{})
	sh := New(Config{
		ID:           1,
		NIC:          f.NewNIC("server"),
		Store:        kv.Config{ArenaBytes: 1 << 20, MaxItems: 4096, Clock: clk},
		ReclaimEvery: 8,
	})
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)
	// Update the same key repeatedly: each update detaches the old area.
	for i := 0; i < 16; i++ {
		exchange(t, ep, message.Request{Op: message.OpPut, Seq: uint32(i), Key: []byte("k"), Val: []byte(fmt.Sprintf("v%d", i))})
	}
	if sh.Store().PendingReclaims() == 0 {
		t.Fatal("expected pending reclaims")
	}
	// Let leases lapse, then drive more requests: the in-loop amortized
	// reclamation must free them.
	clk.Advance(300e9)
	for i := 0; i < 16; i++ {
		exchange(t, ep, message.Request{Op: message.OpGet, Seq: uint32(100 + i), Key: []byte("k")})
	}
	deadline := time.Now().Add(5 * time.Second)
	for sh.Counters.Reclaims.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("amortized reclamation never ran")
		}
		runtime.Gosched()
	}
}

func TestShardMigrateOpDoesNotReplicate(t *testing.T) {
	// OpMigrate applies the item without re-replicating (it IS the
	// replication/migration path).
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)
	resp := exchange(t, ep, message.Request{Op: message.OpMigrate, Seq: 1, Key: []byte("moved"), Val: []byte("v")})
	if resp.Status != message.StatusOK {
		t.Fatalf("migrate: %+v", resp)
	}
	if sh.Counters.Replications.Load() != 0 {
		t.Fatal("migrate must not count as replication")
	}
	get := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 2, Key: []byte("moved")})
	if get.Status != message.StatusOK || string(get.Val) != "v" {
		t.Fatalf("get after migrate: %+v", get)
	}
}

func TestShardKillStopsServing(t *testing.T) {
	sh, f, _ := testShard(t)
	go sh.Run()
	ep := sh.Connect(f.NewNIC("client"), false)
	exchange(t, ep, message.Request{Op: message.OpPut, Seq: 1, Key: []byte("k"), Val: []byte("v")})
	put := exchange(t, ep, message.Request{Op: message.OpPut, Seq: 2, Key: []byte("k"), Val: []byte("w")})
	sh.Kill()
	if !sh.Killed() {
		t.Fatal("killed flag")
	}
	// Death revokes the shard's registrations: requests written after the
	// kill fail at the fabric instead of landing in memory nobody drains,
	// and one-sided reads of the frozen arena fail instead of returning
	// pre-crash bytes (the §5 staleness hazard).
	buf := make([]byte, 256)
	req := message.Request{Op: message.OpGet, Seq: 3, Key: []byte("k")}
	n := req.EncodeTo(buf)
	if err := ep.ReqBox.WriteVia(ep.QP, buf[:n], 3); err != rdma.ErrRevoked {
		t.Fatalf("write to dead shard: %v, want ErrRevoked", err)
	}
	dst := make([]byte, put.Ptr.DataLen)
	if _, _, err := ep.QP.Read(ep.ArenaMR, int(put.Ptr.DataOff), dst,
		int(put.Ptr.MetaIdx)); err != rdma.ErrRevoked {
		t.Fatalf("read of dead arena: %v, want ErrRevoked", err)
	}
	if _, _, ok := ep.RespBox.Poll(); ok {
		t.Fatal("dead shard responded")
	}
}

func TestEndpointArenaReadableViaQP(t *testing.T) {
	// The endpoint's QP + ArenaMR enable one-sided reads of items (the
	// client package builds on this; verify at the shard boundary).
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)
	put := exchange(t, ep, message.Request{Op: message.OpPut, Seq: 1, Key: []byte("k"), Val: []byte("val-bytes")})
	dst := make([]byte, put.Ptr.DataLen)
	_, words, err := ep.QP.Read(ep.ArenaMR, int(put.Ptr.DataOff), dst,
		int(put.Ptr.MetaIdx), int(put.Ptr.MetaIdx)+1)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != kv.GuardianLive {
		t.Fatal("guardian not live")
	}
	k, v, ok := kv.DecodeItem(dst)
	if !ok || string(k) != "k" || string(v) != "val-bytes" {
		t.Fatalf("one-sided read: %q %q %v", k, v, ok)
	}
}

func TestPipelinedMatchesSingleThreadSemantics(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	f := rdma.NewFabric(rdma.Config{})
	sh := New(Config{
		ID:    1,
		NIC:   f.NewNIC("server"),
		Store: kv.Config{ArenaBytes: 1 << 20, MaxItems: 4096, Clock: clk},
	})
	pipe := NewPipelined(sh, 2, 2)
	go pipe.Run()
	defer pipe.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)
	for i := 0; i < 30; i++ {
		key := []byte(fmt.Sprintf("key%02d", i))
		if r := exchange(t, ep, message.Request{Op: message.OpPut, Seq: uint32(i), Key: key, Val: []byte("v")}); r.Status != message.StatusOK {
			t.Fatalf("put %d: %+v", i, r)
		}
	}
	for i := 0; i < 30; i++ {
		key := []byte(fmt.Sprintf("key%02d", i))
		if r := exchange(t, ep, message.Request{Op: message.OpGet, Seq: uint32(100 + i), Key: key}); r.Status != message.StatusOK {
			t.Fatalf("get %d: %+v", i, r)
		}
	}
}

func TestShardFailedReplicationLeavesValueInvisible(t *testing.T) {
	// Replicate-before-apply: when the backup link is down, a Put fails AND
	// the value must not be readable afterwards — no client can ever observe
	// a value that is not in the replication stream.
	sh, f, clk := testShard(t)
	pnic := f.NewNIC("repl-primary")
	snic := f.NewNIC("repl-sec")
	cfg := replication.LogConfig{Slots: 16, SlotSize: 256, AckEvery: 4}
	p := replication.NewPrimary(pnic, cfg, 1)
	qpP, qpS := rdma.Connect(pnic, snic, 8)
	log := replication.NewLog(snic, cfg)
	ackIdx, err := p.AddSecondary(qpP, log)
	if err != nil {
		t.Fatal(err)
	}
	backup := kv.NewStore(kv.Config{ArenaBytes: 1 << 20, MaxItems: 4096, Clock: clk})
	applier := replication.ApplierFunc(func(seq uint64, r replication.Record) error {
		switch r.Op {
		case message.OpPut:
			_, _, err := backup.Put(r.Key, r.Val)
			return err
		case message.OpDelete:
			backup.Delete(r.Key)
		}
		return nil
	})
	sec := replication.NewSecondary(log, applier, qpS, p.AckRegion(), ackIdx)
	go sec.Run()
	defer sec.Stop()
	sh.AttachPrimary(p)
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)

	f.SetFaultHook(func(v rdma.Verb, local, remote *rdma.NIC, nbytes int) rdma.FaultOutcome {
		if v == rdma.VerbWrite && remote.Name() == "repl-sec" {
			return rdma.FaultOutcome{Err: rdma.ErrInjected}
		}
		return rdma.FaultOutcome{}
	})
	put := exchange(t, ep, message.Request{Op: message.OpPut, Seq: 1, Key: []byte("k"), Val: []byte("v")})
	if put.Status != message.StatusError {
		t.Fatalf("put over dead backup link: %+v", put)
	}
	get := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 2, Key: []byte("k")})
	if get.Status != message.StatusNotFound {
		t.Fatalf("failed put became visible: %+v", get)
	}

	f.SetFaultHook(nil)
	ok := exchange(t, ep, message.Request{Op: message.OpPut, Seq: 3, Key: []byte("k"), Val: []byte("v2")})
	if ok.Status != message.StatusOK {
		t.Fatalf("put after heal: %+v", ok)
	}
	get2 := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 4, Key: []byte("k")})
	if get2.Status != message.StatusOK || string(get2.Val) != "v2" {
		t.Fatalf("get after heal: %+v", get2)
	}
}
