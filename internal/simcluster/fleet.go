package simcluster

import (
	"fmt"
	"math"

	"hydradb/internal/consistent"
	"hydradb/internal/kv"
	"hydradb/internal/lease"
	"hydradb/internal/sim"
	"hydradb/internal/stats"
	"hydradb/internal/timing"
)

// FleetSim is the shared-clock, multi-machine fleet simulator: every
// machine is its own sim.Engine composed under a sim.Fleet so events
// execute in global timestamp order, while bulk client traffic is modeled
// statistically (sampler.go) — per machine tick the cohort's operations are
// split across the five calibrated latency classes in expected value, so a
// million simulated clients cost O(machines x ticks), not O(operations).
// Real-data-structure fidelity is kept by a small set of tracer clients per
// machine that run full pointer-cache / guardian-validation / WrongShard
// mechanics against real kv.Store shards; their measured hit/stale/miss
// rates feed the cohort class mix.

// BugKind seeds a deliberate defect so the scenario checkers can prove they
// fail (the regression suite's self-test, exercised by `hydrasim -bug`).
type BugKind string

// Seeded bugs.
const (
	BugNone BugKind = ""
	// BugDropBounces loses WrongShard bounces from the operation accounting
	// — the ops-conservation invariant must catch it.
	BugDropBounces BugKind = "drop-bounces"
	// BugStuckPromotion never schedules SWAT promotions after a kill — the
	// recovery invariant must catch the permanent backlog.
	BugStuckPromotion BugKind = "stuck-promotion"
	// BugIgnoreJitter silently disables renewal jitter — the thundering-herd
	// invariant must catch the undiminished renewal peak.
	BugIgnoreJitter BugKind = "ignore-jitter"
	// BugLeakOps drops a slice of message-path completions from the class
	// accounting — the ops-conservation invariant must catch the leak.
	BugLeakOps BugKind = "leak-ops"
)

// FleetConfig describes one fleet scenario run.
type FleetConfig struct {
	Machines          int
	ShardsPerMachine  int
	ClientsPerMachine int64 // statistical cohort size per machine
	TracersPerMachine int   // full-fidelity clients per machine
	RecordsPerShard   int

	OpsPerClientPerSec float64
	ReadPct            int  // GET share of cohort traffic, percent
	ReadPlane          bool // message-path GETs served by read-plane probes

	DurationNs     int64
	TickNs         int64
	SamplesPerTick int // latency samples drawn per machine tick

	// LeaseTermNs > 0 models cohort lease renewal: every client renews once
	// per term, spread over RenewJitterNs (0 = synchronized herd).
	LeaseTermNs   int64
	RenewJitterNs int64
	LeasePolicy   lease.Policy // tracer shard stores; zero = default

	Cost        CostModel
	Calibration *Calibration    // nil = DefaultCalibration
	Admission   AdmissionPolicy // nil = AlwaysAdmit
	Routing     RoutingPolicy   // nil = BounceRefresh
	Events      []FleetEvent

	Seed int64
	Bug  BugKind
}

// class indexes for the per-class arrays (order matches classOrder).
const (
	idxHit = iota
	idxStale
	idxMessage
	idxBounce
	idxProbe
	numClasses
)

var classOrder = [numClasses]LatencyClass{ClassHit, ClassStale, ClassMessage, ClassBounce, ClassProbe}

// fleetShard is one primary shard: a real kv.Store plus its service center
// on the hosting machine's engine. Promotion moves home (and rebinds cpu).
type fleetShard struct {
	id     uint32
	home   int
	cpu    *sim.Resource
	store  *kv.Store
	alive  bool
	inRing bool
}

// fleetMachine is one machine: its own engine (instance in the sim.Fleet),
// NIC, and the statistical client cohort it hosts.
type fleetMachine struct {
	id     int
	eng    *sim.Engine
	nic    *sim.Resource
	alive  bool
	cohort float64 // statistical clients homed here
	stale  float64 // cohort members with a stale routing table
}

// fleetTracer is one full-fidelity client: real pointer cache, possibly
// stale ring view, real guardian-validated reads.
type fleetTracer struct {
	id    int
	home  *fleetMachine
	view  *consistent.Ring
	cache map[string]*ptrEntry
}

// FleetSim is one configured fleet run.
type FleetSim struct {
	cfg      FleetConfig
	fleet    *sim.Fleet
	clock    *timing.ManualClock // shared store clock (merged timeline)
	machines []*fleetMachine
	shards   []*fleetShard // index = id-1; grows on reconfigure
	tracers  []*fleetTracer
	ring     *consistent.Ring
	keys     []string
	val      []byte

	admission AdmissionPolicy
	routing   RoutingPolicy
	specs     [numClasses]LatencySpec
	hists     [numClasses]*stats.Histogram

	ringShards int // shards currently in the ring
	ringAlive  int // of those, alive

	// cohort accounting (expected-value, per tick)
	opsTotal, opsFailed, opsShed float64
	classOps                     [numClasses]float64
	busyTick, renewTick          []float64
	renewTotal, renewShed        float64

	// routing convergence
	movedFrac               float64
	reconfigNs, convergedNs int64

	// promotion storm
	swat                             *sim.Resource
	killedShards, promoted           int
	backlog, peakBacklog             int
	killNs, lastPromoteNs            int64
	firstKillMachine, killedMachines int

	// tracer counters
	trOps, trHits, trStale, trMisses, trBounces, trErrors int64
}

// NewFleetSim builds the fleet: machines, shards, preloaded records,
// calibrated samplers.
func NewFleetSim(cfg FleetConfig) (*FleetSim, error) {
	if cfg.Machines <= 0 || cfg.ShardsPerMachine <= 0 {
		return nil, fmt.Errorf("simcluster: fleet needs machines and shards")
	}
	if cfg.TickNs <= 0 {
		cfg.TickNs = 10_000_000
	}
	if cfg.DurationNs <= 0 {
		cfg.DurationNs = 100 * cfg.TickNs
	}
	if cfg.DurationNs%cfg.TickNs != 0 {
		cfg.DurationNs += cfg.TickNs - cfg.DurationNs%cfg.TickNs
	}
	if cfg.RecordsPerShard <= 0 {
		cfg.RecordsPerShard = 64
	}
	if cfg.SamplesPerTick < 0 {
		cfg.SamplesPerTick = 0
	}
	if cfg.ReadPct < 0 || cfg.ReadPct > 100 {
		return nil, fmt.Errorf("simcluster: ReadPct %d out of range", cfg.ReadPct)
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	cal := DefaultCalibration()
	if cfg.Calibration != nil {
		cal = *cfg.Calibration
	}

	s := &FleetSim{
		cfg:       cfg,
		fleet:     sim.NewFleet(cfg.Seed, cfg.Machines),
		clock:     timing.NewManualClock(0),
		admission: cfg.Admission,
		routing:   cfg.Routing,
		val:       make([]byte, 32),
	}
	if s.admission == nil {
		s.admission = AlwaysAdmit{}
	}
	if s.routing == nil {
		s.routing = BounceRefresh{}
	}
	for i := range s.val {
		s.val[i] = byte('a' + i%26)
	}
	set := SamplersFromCalibration(cal, cfg.Cost)
	for i, c := range classOrder {
		spec, err := set.Class(c)
		if err != nil {
			return nil, err
		}
		s.specs[i] = spec
		s.hists[i] = stats.NewHistogram()
	}
	ticks := cfg.DurationNs / cfg.TickNs
	s.busyTick = make([]float64, ticks)
	s.renewTick = make([]float64, ticks)

	for i := 0; i < cfg.Machines; i++ {
		eng := s.fleet.Instance(i)
		s.machines = append(s.machines, &fleetMachine{
			id:     i,
			eng:    eng,
			nic:    sim.NewResource(eng, fmt.Sprintf("nic-%d", i), 1),
			alive:  true,
			cohort: float64(cfg.ClientsPerMachine),
		})
	}
	var ids []uint32
	for mi := 0; mi < cfg.Machines; mi++ {
		for k := 0; k < cfg.ShardsPerMachine; k++ {
			ids = append(ids, s.addShard(mi))
		}
	}
	ring, err := consistent.Build(ids, 0)
	if err != nil {
		return nil, err
	}
	s.ring = ring

	// Preload: RecordsPerShard records per initial shard, routed by ring.
	total := int64(len(ids)) * int64(cfg.RecordsPerShard)
	s.keys = make([]string, 0, total)
	for i := int64(0); i < total; i++ {
		key := fmt.Sprintf("u%011d", i)
		s.keys = append(s.keys, key)
		sh := s.shards[s.ring.OwnerOfKey([]byte(key))-1]
		if _, _, err := sh.store.Put([]byte(key), s.val); err != nil {
			return nil, fmt.Errorf("simcluster: fleet preload: %w", err)
		}
	}

	s.swat = sim.NewResource(s.fleet.Instance(0), "swat", maxInt(1, cfg.Cost.SwatParallel))
	for i := 0; i < cfg.Machines; i++ {
		for t := 0; t < cfg.TracersPerMachine; t++ {
			s.tracers = append(s.tracers, &fleetTracer{
				id:    len(s.tracers),
				home:  s.machines[i],
				view:  s.ring,
				cache: map[string]*ptrEntry{},
			})
		}
	}
	return s, nil
}

// addShard creates a live in-ring shard homed on machine mi.
func (s *FleetSim) addShard(mi int) uint32 {
	id := uint32(len(s.shards) + 1)
	maxItems := s.cfg.RecordsPerShard*3 + 1024
	itemBytes := kv.ItemSize(12, len(s.val))
	if itemBytes == 0 {
		itemBytes = 64
	}
	sh := &fleetShard{
		id:   id,
		home: mi,
		cpu:  sim.NewResource(s.machines[mi].eng, fmt.Sprintf("shard-%d", id), 1),
		store: kv.NewStore(kv.Config{
			ArenaBytes: maxItems * (itemBytes + 64),
			MaxItems:   maxItems,
			Policy:     s.cfg.LeasePolicy,
			Clock:      s.clock,
		}),
		alive:  true,
		inRing: true,
	}
	s.shards = append(s.shards, sh)
	s.ringShards++
	s.ringAlive++
	return id
}

// Fleet exposes the underlying engine fleet (tests).
func (s *FleetSim) Fleet() *sim.Fleet { return s.fleet }

// hop moves bytes between machines: source NIC, wire, destination NIC. The
// continuation lands on the destination's engine, so cross-machine work
// advances only when the fleet delivers the event in global order.
func (s *FleetSim) hop(a, b *fleetMachine, bytes int, cont func()) {
	c := &s.cfg.Cost
	srcCost := c.NICOpNs + int64(float64(bytes)*c.NICByteNs)
	dstCost := c.NICOpNs + int64(float64(bytes)*c.NICByteNs)
	a.nic.Acquire(srcCost, func() {
		b.eng.At(a.eng.Now()+c.WireNs, func() {
			b.nic.Acquire(dstCost, cont)
		})
	})
}

// hopRT is a request/response round trip ending back on a's engine.
func (s *FleetSim) hopRT(a, b *fleetMachine, bytes int, cont func()) {
	s.hop(a, b, bytes, func() { s.hop(b, a, bytes, cont) })
}

// Run executes the configured duration and reports the result.
func (s *FleetSim) Run() FleetResult {
	// Per-machine cohort ticks, staggered by machine id for a deterministic
	// global interleave.
	for _, m := range s.machines {
		m := m
		m.eng.At(s.cfg.TickNs+int64(m.id), func() { s.machineTick(m, 1) })
	}
	// Control-plane schedule on instance 0.
	for _, ev := range s.cfg.Events {
		ev := ev
		s.fleet.Instance(0).At(ev.AtNs, func() { s.applyEvent(ev) })
	}
	// Tracers.
	think := maxInt64(1, s.cfg.TickNs/4)
	for _, tr := range s.tracers {
		tr := tr
		tr.home.eng.At(int64(tr.id%97)+1, func() { s.tracerStep(tr, think) })
	}
	// Reclamation pump: amortized lease-expiry reclamation across all
	// shards, like the live shard loop's housekeeping slice.
	var pump func()
	pump = func() {
		s.clock.Set(s.fleet.Instance(0).Now())
		for _, sh := range s.shards {
			sh.store.ReclaimDue()
		}
		if s.fleet.Instance(0).Now()+10e6 <= s.cfg.DurationNs {
			s.fleet.Instance(0).After(10e6, pump)
		}
	}
	s.fleet.Instance(0).After(10e6, pump)

	s.fleet.RunUntil(s.cfg.DurationNs)
	return s.finalize()
}

// machineTick applies one tick of statistical cohort traffic on m. Tick k
// covers virtual window [(k-1)*Tick, k*Tick).
func (s *FleetSim) machineTick(m *fleetMachine, k int64) {
	now := m.eng.Now()
	s.clock.Set(now)
	if m.alive && m.cohort > 0 {
		s.tickTraffic(m, k, now)
	}
	if s.reconfigNs > 0 && s.convergedNs == 0 {
		staleSum, clientSum := 0.0, 0.0
		for _, mm := range s.machines {
			if mm.alive {
				staleSum += mm.stale
				clientSum += mm.cohort
			}
		}
		if clientSum > 0 && staleSum <= 0.001*clientSum {
			s.convergedNs = now
		}
	}
	if now+s.cfg.TickNs <= s.cfg.DurationNs+int64(m.id) {
		m.eng.After(s.cfg.TickNs, func() { s.machineTick(m, k+1) })
	}
}

// tickTraffic splits the cohort's expected operations for one tick across
// the latency classes, charges aggregate shard busy time, and draws the
// tick's latency samples.
func (s *FleetSim) tickTraffic(m *fleetMachine, k int64, now int64) {
	c := &s.cfg.Cost
	tickSec := float64(s.cfg.TickNs) / 1e9
	opsPerClient := s.cfg.OpsPerClientPerSec * tickSec

	offered := m.cohort * opsPerClient
	admitted := s.admission.Admit(now, offered)
	s.opsShed += offered - admitted
	s.opsTotal += admitted

	aliveFrac := 1.0
	if s.ringShards > 0 {
		aliveFrac = float64(s.ringAlive) / float64(s.ringShards)
	}
	failed := admitted * (1 - aliveFrac)
	s.opsFailed += failed
	avail := admitted - failed

	// WrongShard bounces from the stale-table share of the cohort, then
	// policy-driven table refresh.
	var bounced float64
	if m.stale > 0 && s.movedFrac > 0 {
		bounced = avail * (m.stale / m.cohort) * s.movedFrac
		if s.cfg.Bug != BugDropBounces {
			s.classOps[idxBounce] += bounced
		}
		avail -= bounced
		m.stale -= s.routing.Refreshed(m.stale, opsPerClient, s.movedFrac, s.cfg.TickNs)
		if m.stale < 0 {
			m.stale = 0
		}
	}

	// Read path mix, calibrated live from the tracer clients.
	reads := avail * float64(s.cfg.ReadPct) / 100
	writes := avail - reads
	var hitF, staleF float64
	if gets := s.trHits + s.trStale + s.trMisses; gets > 0 {
		hitF = float64(s.trHits) / float64(gets)
		staleF = float64(s.trStale) / float64(gets)
	}
	hits := reads * hitF
	stales := reads * staleF
	rest := reads - hits - stales
	s.classOps[idxHit] += hits
	s.classOps[idxStale] += stales
	var probes, msgs float64
	if s.cfg.ReadPlane {
		probes = rest
	} else {
		msgs = rest
	}
	s.classOps[idxProbe] += probes
	leak := 1.0
	if s.cfg.Bug == BugLeakOps {
		leak = 0.9
	}
	s.classOps[idxMessage] += (msgs + writes) * leak

	// Aggregate shard busy time: only through-the-shard classes occupy the
	// shard thread (hits are one-sided, probes run on reader cores).
	msgGet := c.ShardFixedNs + c.ShardGetNs
	msgPut := c.ShardFixedNs + c.ShardPutNs
	busy := (stales+msgs)*float64(msgGet) + writes*float64(msgPut) +
		bounced*float64(msgGet+c.ShardFixedNs)

	// Lease-renewal herd.
	if s.cfg.LeaseTermNs > 0 {
		due := s.renewalsDue(m, k)
		adm := s.admission.Admit(now, due)
		s.renewShed += due - adm
		s.renewTotal += adm
		s.renewTick[k-1] += adm
		busy += adm * float64(c.RenewNs)
	}
	s.busyTick[k-1] += busy

	// Latency samples for this tick's class mix.
	mix := [numClasses]float64{hits, stales, msgs + writes, bounced, probes}
	total := 0.0
	for _, v := range mix {
		total += v
	}
	if total > 0 && s.cfg.SamplesPerTick > 0 {
		rng := m.eng.Rand()
		for i := 0; i < s.cfg.SamplesPerTick; i++ {
			r := rng.Float64() * total
			ci := 0
			for ; ci < numClasses-1; ci++ {
				if r < mix[ci] {
					break
				}
				r -= mix[ci]
			}
			s.hists[ci].Record(s.specs[ci].Sample(rng))
		}
	}
}

// renewalsDue returns the expected cohort renewals for m in tick k's
// window: every client renews once per LeaseTermNs, spread uniformly over
// RenewJitterNs after each term boundary (0 = the full herd at once).
func (s *FleetSim) renewalsDue(m *fleetMachine, k int64) float64 {
	term := s.cfg.LeaseTermNs
	t0 := (k - 1) * s.cfg.TickNs
	t1 := k * s.cfg.TickNs
	jitter := s.cfg.RenewJitterNs
	if s.cfg.Bug == BugIgnoreJitter {
		jitter = 0
	}
	due := 0.0
	jLo := (t0-jitter)/term - 1
	if jLo < 1 {
		jLo = 1
	}
	for j := jLo; j*term < t1; j++ {
		b := j * term
		if jitter <= 0 {
			if b >= t0 && b < t1 {
				due += m.cohort
			}
			continue
		}
		lo, hi := maxInt64(t0, b), minInt64(t1, b+jitter)
		if hi > lo {
			due += m.cohort * float64(hi-lo) / float64(jitter)
		}
	}
	return due
}

// applyEvent executes one control-plane event (instance 0's engine).
func (s *FleetSim) applyEvent(ev FleetEvent) {
	s.clock.Set(s.fleet.Instance(0).Now())
	switch ev.Kind {
	case EventKill:
		s.killMachine(ev.Machine)
	case EventReconfigure:
		s.reconfigure(ev)
	}
}

// killMachine fails one machine; its in-ring shards queue for SWAT
// promotion (§3.3's shadow master promotion, modeled as a k-server SWAT).
func (s *FleetSim) killMachine(mi int) {
	if mi < 0 || mi >= len(s.machines) || !s.machines[mi].alive {
		return
	}
	m := s.machines[mi]
	m.alive = false
	s.killedMachines++
	if s.killNs == 0 {
		s.killNs = s.fleet.Instance(0).Now()
		s.firstKillMachine = mi
	}
	c := &s.cfg.Cost
	for _, sh := range s.shards {
		if sh.home != mi || !sh.alive || !sh.inRing {
			continue
		}
		sh := sh
		sh.alive = false
		s.ringAlive--
		s.killedShards++
		s.backlog++
		if s.backlog > s.peakBacklog {
			s.peakBacklog = s.backlog
		}
		if s.cfg.Bug == BugStuckPromotion {
			continue
		}
		cost := c.PromoteFixedNs + int64(s.cfg.RecordsPerShard)*c.PromotePerRecNs
		s.swat.Acquire(cost, func() { s.promote(sh) })
	}
}

// promote re-homes a failed shard on the next alive machine. The store
// survives (the promoted shadow replica holds the data); the service
// center rebinds to the new home's engine.
func (s *FleetSim) promote(sh *fleetShard) {
	for off := 1; off <= len(s.machines); off++ {
		cand := (sh.home + off) % len(s.machines)
		if s.machines[cand].alive {
			sh.home = cand
			break
		}
	}
	sh.cpu = sim.NewResource(s.machines[sh.home].eng, fmt.Sprintf("shard-%d", sh.id), 1)
	sh.alive = true
	s.ringAlive++
	s.backlog--
	s.promoted++
	s.lastPromoteNs = s.fleet.Instance(0).Now()
	s.clock.Set(s.lastPromoteNs)
}

// reconfigure rebuilds the routing ring (shards removed/added), marks every
// cohort member's table stale, and migrates moved records. Removed shards
// stay readable until leases drain — cached pointers into them keep
// validating, which is exactly HydraDB's lease-bounded migration story.
func (s *FleetSim) reconfigure(ev FleetEvent) {
	old := s.ring
	var ids []uint32
	for _, sh := range s.shards {
		if sh.inRing {
			ids = append(ids, sh.id)
		}
	}
	for i := 0; i < ev.RemoveShards && len(ids) > 1; i++ {
		id := ids[len(ids)-1]
		ids = ids[:len(ids)-1]
		sh := s.shards[id-1]
		sh.inRing = false
		s.ringShards--
		if sh.alive {
			s.ringAlive--
		}
	}
	target := 0
	for i := 0; i < ev.AddShards; i++ {
		for !s.machines[target%len(s.machines)].alive {
			target++
		}
		ids = append(ids, s.addShard(target%len(s.machines)))
		target++
	}
	ring, err := consistent.Build(ids, 0)
	if err != nil {
		return
	}
	s.movedFrac = old.MovedArcs(ring, 8192)
	s.ring = ring
	s.reconfigNs = s.fleet.Instance(0).Now()
	s.convergedNs = 0
	for _, m := range s.machines {
		if m.alive {
			m.stale = m.cohort
		}
	}
	// Migrate moved records to their new owners.
	for _, key := range s.keys {
		oldO := old.OwnerOfKey([]byte(key))
		newO := ring.OwnerOfKey([]byte(key))
		if oldO == newO {
			continue
		}
		if _, _, err := s.shards[newO-1].store.Put([]byte(key), s.val); err == nil {
			s.shards[oldO-1].store.Delete([]byte(key))
		}
	}
}

// tracerStep issues one full-fidelity operation for tr, then reschedules.
func (s *FleetSim) tracerStep(tr *fleetTracer, thinkNs int64) {
	eng := tr.home.eng
	if !tr.home.alive {
		return // the machine died; its tracers die with it
	}
	s.clock.Set(eng.Now())
	start := eng.Now()
	rng := eng.Rand()
	// 80/20 working set: most ops hit the tracer's 64 hot keys so the
	// pointer cache sees realistic reuse (the cohort's hit/stale mix is
	// calibrated from these counters).
	var ki int64
	if rng.Float64() < 0.8 {
		ki = (int64(tr.id)*97 + int64(rng.Intn(64))) % int64(len(s.keys))
	} else {
		ki = rng.Int63n(int64(len(s.keys)))
	}
	key := s.keys[ki]
	done := func(class int) {
		if class >= 0 {
			s.hists[class].Record(eng.Now() - start)
		}
		s.trOps++
		eng.After(thinkNs, func() { s.tracerStep(tr, thinkNs) })
	}
	if int64(rng.Intn(100)) < int64(s.cfg.ReadPct) {
		s.tracerGet(tr, key, done)
	} else {
		s.tracerMsg(tr, key, false, idxMessage, done)
	}
}

// tracerGet tries the one-sided path through the pointer cache, with real
// guardian validation against the owning store (hydra.go's rdmaRead).
func (s *FleetSim) tracerGet(tr *fleetTracer, key string, done func(int)) {
	e, ok := tr.cache[key]
	if !ok {
		s.trMisses++
		s.tracerMsg(tr, key, true, idxMessage, done)
		return
	}
	if !lease.ValidForRead(e.leaseExp, tr.home.eng.Now(), 1e6) {
		s.trStale++
		delete(tr.cache, key)
		s.tracerMsg(tr, key, true, idxStale, done)
		return
	}
	sh := s.shards[e.ptr.ShardID-1]
	bytes := int(e.ptr.DataLen) + 16
	s.hopRT(tr.home, s.machines[sh.home], bytes, func() {
		buf := make([]byte, e.ptr.DataLen)
		_, guardian, leaseExp, err := sh.store.ReadAt(e.ptr, buf)
		valid := err == nil && guardian == kv.GuardianLive
		if valid {
			k, _, okDec := kv.DecodeItem(buf)
			valid = okDec && string(k) == key
		}
		if !valid {
			s.trStale++
			delete(tr.cache, key)
			s.tracerMsg(tr, key, true, idxStale, done)
			return
		}
		s.trHits++
		if leaseExp > e.leaseExp {
			e.leaseExp = leaseExp
		}
		done(idxHit)
	})
}

// tracerMsg routes an operation through tr's (possibly stale) ring view:
// a WrongShard answer bounces, refreshes the view, and retries — the real
// reroute mechanics behind the cohort's bounce class.
func (s *FleetSim) tracerMsg(tr *fleetTracer, key string, isGet bool, class int, done func(int)) {
	viewOwner := tr.view.OwnerOfKey([]byte(key))
	actual := s.ring.OwnerOfKey([]byte(key))
	if viewOwner != actual {
		s.trBounces++
		old := s.shards[viewOwner-1]
		om := s.machines[old.home]
		refresh := func() {
			tr.home.eng.After(s.cfg.Cost.TableRefreshNs, func() {
				tr.view = s.ring
				s.tracerSend(tr, key, isGet, actual, idxBounce, done)
			})
		}
		if !om.alive {
			// Black-holed request: client times out, then refreshes.
			tr.home.eng.After(1_000_000, refresh)
			return
		}
		reqBytes := reqHeaderBytes + len(key)
		s.hop(tr.home, om, reqBytes, func() {
			old.cpu.Acquire(s.cfg.Cost.ShardFixedNs, func() {
				s.hop(om, tr.home, respHeaderBytes, refresh)
			})
		})
		return
	}
	s.tracerSend(tr, key, isGet, actual, class, done)
}

// tracerSend performs the message-path operation against the real store on
// the owning shard.
func (s *FleetSim) tracerSend(tr *fleetTracer, key string, isGet bool, sid uint32, class int, done func(int)) {
	sh := s.shards[sid-1]
	if !sh.alive {
		s.trErrors++
		done(-1)
		return
	}
	dst := s.machines[sh.home]
	c := &s.cfg.Cost
	reqBytes := reqHeaderBytes + len(key)
	proc := c.ShardFixedNs + c.ShardGetNs
	if !isGet {
		reqBytes += len(s.val)
		proc = c.ShardFixedNs + c.ShardPutNs
	}
	s.hop(tr.home, dst, reqBytes, func() {
		sh.cpu.Acquire(proc, func() {
			s.clock.Set(dst.eng.Now())
			var res kv.GetResult
			var ok bool
			respBytes := respHeaderBytes
			if isGet {
				res, ok = sh.store.Get([]byte(key))
				respBytes += len(res.Value)
			} else {
				var err error
				res, _, err = sh.store.Put([]byte(key), s.val)
				ok = err == nil
			}
			s.hop(dst, tr.home, respBytes, func() {
				if ok {
					ptr := res.Ptr
					ptr.ShardID = sid
					tr.cache[key] = &ptrEntry{ptr: ptr, leaseExp: res.LeaseExp}
				}
				done(class)
			})
		})
	})
}

// ClassResult summarizes one latency class.
type ClassResult struct {
	Ops     float64 `json:"ops"`
	Samples int64   `json:"samples"`
	MeanNs  float64 `json:"mean_ns"`
	P99Ns   int64   `json:"p99_ns"`
}

// ReconfigResult reports routing-convergence metrics.
type ReconfigResult struct {
	AtNs        int64   `json:"at_ns"`
	MovedFrac   float64 `json:"moved_frac"`
	ConvergedNs int64   `json:"converged_ns"` // 0 = never converged
	BouncedOps  float64 `json:"bounced_ops"`
}

// PromotionResult reports failure-recovery metrics.
type PromotionResult struct {
	KilledMachines int   `json:"killed_machines"`
	KilledShards   int   `json:"killed_shards"`
	Promoted       int   `json:"promoted"`
	PeakBacklog    int   `json:"peak_backlog"`
	KillNs         int64 `json:"kill_ns"`
	RecoveryNs     int64 `json:"recovery_ns"` // last promotion - first kill; 0 = none
}

// TracerResult reports the full-fidelity tracer clients' counters.
type TracerResult struct {
	Ops     int64 `json:"ops"`
	Hits    int64 `json:"hits"`
	Stale   int64 `json:"stale"`
	Misses  int64 `json:"misses"`
	Bounces int64 `json:"bounces"`
	Errors  int64 `json:"errors"`
}

// FleetResult is one fleet run's canonical outcome. Field order (and
// json.Marshal's sorted map keys) define the canonical encoding the golden
// hashes pin.
type FleetResult struct {
	Machines         int                    `json:"machines"`
	Shards           int                    `json:"shards"`
	Clients          int64                  `json:"clients"`
	DurationNs       int64                  `json:"duration_ns"`
	Events           int64                  `json:"events"`
	OpsTotal         float64                `json:"ops_total"`
	OpsFailed        float64                `json:"ops_failed"`
	OpsShed          float64                `json:"ops_shed"`
	ThroughputMops   float64                `json:"throughput_mops"`
	Classes          map[string]ClassResult `json:"classes"`
	PeakShardUtil    float64                `json:"peak_shard_util"`
	RenewTotal       float64                `json:"renew_total"`
	RenewShed        float64                `json:"renew_shed"`
	PeakRenewPerTick float64                `json:"peak_renew_per_tick"`
	Reconfig         *ReconfigResult        `json:"reconfig,omitempty"`
	Promotion        *PromotionResult       `json:"promotion,omitempty"`
	Tracer           TracerResult           `json:"tracer"`
}

// finalize folds the accounting into a FleetResult.
func (s *FleetSim) finalize() FleetResult {
	r := FleetResult{
		Machines:   s.cfg.Machines,
		Shards:     s.ringShards,
		Clients:    int64(s.cfg.Machines) * s.cfg.ClientsPerMachine,
		DurationNs: s.cfg.DurationNs,
		Events:     s.fleet.Events(),
		OpsTotal:   round3(s.opsTotal),
		OpsFailed:  round3(s.opsFailed),
		OpsShed:    round3(s.opsShed),
		Classes:    map[string]ClassResult{},
		RenewTotal: round3(s.renewTotal),
		RenewShed:  round3(s.renewShed),
		Tracer: TracerResult{
			Ops: s.trOps, Hits: s.trHits, Stale: s.trStale,
			Misses: s.trMisses, Bounces: s.trBounces, Errors: s.trErrors,
		},
	}
	secs := float64(s.cfg.DurationNs) / 1e9
	if secs > 0 {
		r.ThroughputMops = round3(s.opsTotal / secs / 1e6)
	}
	for i, c := range classOrder {
		h := s.hists[i]
		cr := ClassResult{Ops: round3(s.classOps[i]), Samples: h.Count()}
		if h.Count() > 0 {
			cr.MeanNs = round3(h.Mean())
			cr.P99Ns = h.Percentile(99)
		}
		r.Classes[string(c)] = cr
	}
	denom := float64(maxInt(1, s.ringAlive)) * float64(s.cfg.TickNs)
	for i := range s.busyTick {
		if u := s.busyTick[i] / denom; u > r.PeakShardUtil {
			r.PeakShardUtil = u
		}
		if s.renewTick[i] > r.PeakRenewPerTick {
			r.PeakRenewPerTick = s.renewTick[i]
		}
	}
	r.PeakShardUtil = round3(r.PeakShardUtil)
	r.PeakRenewPerTick = round3(r.PeakRenewPerTick)
	if s.reconfigNs > 0 {
		r.Reconfig = &ReconfigResult{
			AtNs:        s.reconfigNs,
			MovedFrac:   round3(s.movedFrac),
			ConvergedNs: s.convergedNs,
			BouncedOps:  round3(s.classOps[idxBounce]),
		}
	}
	if s.killedShards > 0 {
		rec := int64(0)
		if s.lastPromoteNs > s.killNs && s.backlog == 0 {
			rec = s.lastPromoteNs - s.killNs
		}
		r.Promotion = &PromotionResult{
			KilledMachines: s.killedMachines,
			KilledShards:   s.killedShards,
			Promoted:       s.promoted,
			PeakBacklog:    s.peakBacklog,
			KillNs:         s.killNs,
			RecoveryNs:     rec,
		}
	}
	return r
}

// round3 trims accumulated float noise to 3 decimals so canonical JSON
// stays readable; determinism does not depend on it (same seed, same ops).
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
