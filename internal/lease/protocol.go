package lease

import "hydradb/internal/protocolspec"

// RenewalSpec declares the lease protocol (§4.2.3): the lease word
// shares the published item's word group in kv's word area, and
// (*kv.Store).touch is the one writer sanctioned to store it after
// publication — renewal is monotonic and readers re-validate the
// guardian, so the usual no-writes-after-release rule does not apply
// to it. Client-side, ValidForRead must keep its safety margin so
// one-sided reads stop before the server can reclaim. Feeds the
// "lease" model footprint (which interleaves on time, not on atomic
// words, hence no Footprint-marked word here).
var RenewalSpec = protocolspec.Spec{
	Name:     "kv-lease",
	Model:    "lease",
	Packages: []string{"hydradb/internal/kv"},
	Words: []protocolspec.Word{{
		Name:    "hydradb/internal/arena.WordArea.words[]",
		Role:    protocolspec.LeaseWord,
		Writers: []string{"(*hydradb/internal/kv.Store).touch"},
		Why:     "the lease expiry occupies metaIdx+1 of the item's word group; touch renews it in place on the just-published item",
	}},
	Guards: []protocolspec.Guard{{
		Reader: "hydradb/internal/lease.ValidForRead",
		Bound:  "marginNs",
		Why:    "clients must stop trusting a one-sided read a safety margin before expiry so reclamation cannot race the copy",
	}},
}
