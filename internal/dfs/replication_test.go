package dfs

import (
	"bytes"
	"math/rand"
	"testing"

	"hydradb/internal/testutil"
)

func TestReplicatedBlocksPlacedOnRNodes(t *testing.T) {
	c := NewReplicatedCluster(4, 100, 3)
	if c.Replication() != 3 {
		t.Fatalf("replication = %d", c.Replication())
	}
	testutil.Must(c.Write("f", make([]byte, 100*4)))
	total := 0
	for _, dn := range c.dns {
		total += len(dn.blocks)
	}
	if total != 4*3 {
		t.Fatalf("stored %d block copies, want 12", total)
	}
}

func TestReplicationFactorClamped(t *testing.T) {
	c := NewReplicatedCluster(2, 100, 5)
	if c.Replication() != 2 {
		t.Fatalf("replication = %d, want clamp to 2", c.Replication())
	}
}

func TestReadFailsOverAcrossReplicas(t *testing.T) {
	c := NewReplicatedCluster(3, 1000, 2)
	data := make([]byte, 3000)
	testutil.Must1(rand.New(rand.NewSource(1)).Read(data))
	testutil.Must(c.Write("f", data))

	// Kill one datanode: every block keeps a live replica.
	c.FailDataNode(0)
	got, err := c.Read("f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read with one node down: %v", err)
	}
	// Kill a second: some block now has no live replica.
	c.FailDataNode(1)
	if _, err := c.Read("f"); err != ErrAllReplicasDown {
		t.Fatalf("want ErrAllReplicasDown, got %v", err)
	}
	// Recovery restores service.
	c.SetDataNodeUp(0)
	got, err = c.Read("f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after recovery: %v", err)
	}
}

func TestUnreplicatedClusterFailsHard(t *testing.T) {
	c := NewCluster(3, 1000)
	testutil.Must(c.Write("f", make([]byte, 3000)))
	c.FailDataNode(0)
	if _, err := c.Read("f"); err != ErrAllReplicasDown {
		t.Fatalf("want ErrAllReplicasDown with r=1, got %v", err)
	}
}

func TestCacheLayerMasksDataNodeFailure(t *testing.T) {
	// The Fig. 1 story end-to-end: once blocks are cached in HydraDB, the
	// DFS can lose nodes without the application noticing.
	c := NewReplicatedCluster(3, 500, 1)
	data := make([]byte, 2000)
	testutil.Must1(rand.New(rand.NewSource(2)).Read(data))
	testutil.Must(c.Write("f", data))
	kv := newMemKV()
	cache := NewCacheLayer(c, kv, 500, 0)
	if err := cache.Prefetch("f"); err != nil {
		t.Fatal(err)
	}
	for i := range c.dns {
		c.FailDataNode(i)
	}
	for i := 0; i < 4; i++ {
		blk, err := cache.ReadBlock("f", i)
		if err != nil {
			t.Fatalf("cached read with DFS fully down: %v", err)
		}
		if !bytes.Equal(blk, data[i*500:(i+1)*500]) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}
