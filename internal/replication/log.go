package replication

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"hydradb/internal/arena"
	"hydradb/internal/invariant"
	"hydradb/internal/rdma"
	"hydradb/internal/stats"
	"hydradb/internal/timing"
)

// ErrFlushTimeout reports that a bounded flush gave up before every secondary
// acknowledged: some replica is dead or partitioned and its acks may never
// arrive. Records the flush could not confirm are not lost — the §5.2 nack
// protocol re-sends the missing suffix when the replica reappears — but the
// caller must not block on them, or a partition turns a graceful stop into a
// hang.
var ErrFlushTimeout = errors.New("replication: flush timed out waiting for secondary acks")

// LogConfig sizes a replication log ring.
type LogConfig struct {
	// Slots is the ring capacity in records.
	//
	// hydralint:offset-source positive and < 1<<15 after withDefaults
	Slots int
	// SlotSize is the byte capacity of one record (key+val+header).
	//
	// hydralint:offset-source positive and < 1<<15 after withDefaults
	SlotSize int
	// AckEvery solicits an acknowledgement every N records ("several tens
	// of requests", §5.2). Strict mode ignores it and waits on every record.
	AckEvery int
	// Strict selects the conventional request/acknowledge baseline: every
	// record is flagged and the primary waits for its ack before returning
	// (the comparison mode of Fig. 13).
	Strict bool
}

func (c *LogConfig) withDefaults() LogConfig {
	cfg := *c
	if cfg.Slots == 0 {
		cfg.Slots = 256
	}
	if cfg.SlotSize == 0 {
		cfg.SlotSize = 256
	}
	if cfg.AckEvery == 0 {
		cfg.AckEvery = 32
	}
	if cfg.AckEvery >= cfg.Slots {
		cfg.AckEvery = cfg.Slots / 2
	}
	if cfg.SlotSize >= 1<<15 {
		panic("replication: slot size exceeds ready-word size field (15 bits)")
	}
	if cfg.Slots >= 1<<15 {
		panic("replication: slot count exceeds nack discard field (15 bits)")
	}
	return cfg
}

// Applier consumes replicated records on the secondary.
type Applier interface {
	Apply(seq uint64, r Record) error
}

// ApplierFunc adapts a function to Applier.
type ApplierFunc func(seq uint64, r Record) error

// Apply implements Applier.
func (f ApplierFunc) Apply(seq uint64, r Record) error { return f(seq, r) }

// Log is the secondary-side ring: the memory chunk exposed to the primary.
// Word layout of the region: words [0, Slots) are per-slot ready words;
// word Slots is the doorbell the primary rings to solicit an ack out of
// band (used when its window fills and at Flush).
type Log struct {
	cfg LogConfig
	mr  *rdma.MemoryRegion
}

// NewLog allocates a ring on the given NIC.
func NewLog(nic *rdma.NIC, cfg LogConfig) *Log {
	c := cfg.withDefaults()
	data := make([]byte, c.Slots*c.SlotSize)
	words := arena.NewWordArea(c.Slots+1, 1)
	return &Log{cfg: c, mr: nic.Register(data, words)}
}

// Region exposes the ring's memory region for the primary to write into.
func (l *Log) Region() *rdma.MemoryRegion { return l.mr }

// Config reports the effective configuration.
func (l *Log) Config() LogConfig { return l.cfg }

// hydralint:offset-source
func (l *Log) doorbellIdx() int { return l.cfg.Slots }

// Secondary drains a Log and applies records. It is single-threaded: the
// live mode runs Run in a dedicated goroutine (the paper's "dedicated thread
// polls replication requests"); tests and the simulator call PollOnce.
type Secondary struct {
	log     *Log
	applier Applier
	ackQP   *rdma.QP
	ackMR   *rdma.MemoryRegion
	ackIdx  int // hydralint:offset-source assigned by Primary.AddSecondary

	nextSeq        uint64
	applied        atomic.Uint64
	failed         bool
	firstFailed    uint64
	awaitingResend bool   // nacked; record firstFailed not yet re-received
	nackCount      uint64 // discarded-slot count the pending nack reported
	lastDoorbell   uint64
	stop           chan struct{}
	done           chan struct{}
	started        atomic.Bool

	// FailureHook, when non-nil, is consulted before applying each record;
	// a non-nil error injects a processing failure (test/chaos hook).
	FailureHook func(seq uint64, r Record) error

	Applied  stats.Counter
	Discards stats.Counter
	Nacks    stats.Counter
}

// NewSecondary wires a drain loop to log, applying via applier and
// acknowledging through qp into the primary's ack word (ackIdx of ackMR).
func NewSecondary(log *Log, applier Applier, qp *rdma.QP, ackMR *rdma.MemoryRegion, ackIdx int) *Secondary {
	return &Secondary{
		log:     log,
		applier: applier,
		ackQP:   qp,
		ackMR:   ackMR,
		ackIdx:  ackIdx,
		nextSeq: 1,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// AppliedSeq reports the highest contiguously applied sequence number. It is
// safe to read from other goroutines (monitoring, promotion).
func (s *Secondary) AppliedSeq() uint64 { return s.applied.Load() }

// Pending reports whether PollOnce would make progress: an unseen doorbell
// value, or the next expected record published in the ring. It is
// side-effect-free — the stepping hook the model checker (and tests driving
// the drain loop manually) use to know when polling is worthwhile.
func (s *Secondary) Pending() bool {
	words := s.log.mr.Words()
	if db := words.Load(s.log.doorbellIdx()); db != 0 && db != s.lastDoorbell {
		return true
	}
	seq, _, _ := splitReady(words.Load(s.slotOf(s.nextSeq)))
	return seq == s.nextSeq
}

// slotOf maps a sequence number to its ring slot.
//
// hydralint:offset-source the modulus keeps the slot in [0, Slots)
func (s *Secondary) slotOf(seq uint64) int { return int((seq - 1) % uint64(s.log.cfg.Slots)) }

// PollOnce processes at most one pending record or doorbell, returning
// whether progress was made.
func (s *Secondary) PollOnce() bool {
	words := s.log.mr.Words()

	// Doorbell: the primary solicits an acknowledgement out of band.
	if db := words.Load(s.log.doorbellIdx()); db != 0 && db != s.lastDoorbell {
		s.lastDoorbell = db
		switch {
		case s.failed:
			s.nack()
		case s.awaitingResend:
			// Our nack may still be unread or was superseded in the ack
			// word: repeat it verbatim. The discard count must be the one
			// recorded when the slots were zeroed — nack() has already reset
			// nextSeq to firstFailed, so recomputing it here would repeat the
			// nack with count 0 and the primary would re-send nothing. The
			// primary de-duplicates identical repeats.
			s.sendAckWord(makeNack(s.firstFailed, s.nackCount))
		default:
			s.sendAckWord(makeAck(s.applied.Load()))
		}
		return true
	}

	slot := s.slotOf(s.nextSeq)
	w := words.Load(slot)
	seq, size, ackReq := splitReady(w)
	if seq != s.nextSeq {
		return false
	}
	// A ready word whose size exceeds the slot would over-slice into the
	// neighbouring record; treat it like a torn write and wait for the
	// primary to republish the indicator.
	if size < 0 || size > s.log.cfg.SlotSize {
		return false
	}
	if s.awaitingResend && seq == s.firstFailed {
		s.awaitingResend = false
	}
	body := s.log.mr.Data()[slot*s.log.cfg.SlotSize : slot*s.log.cfg.SlotSize+size]

	if s.failed {
		// Discard mode: skip records, answering only ack requests with the
		// first failed sequence number (§5.2).
		s.Discards.Inc()
		s.nextSeq++
		if ackReq {
			s.nack()
		}
		return true
	}

	rec, err := DecodeRecord(body)
	if err == nil && s.FailureHook != nil {
		err = s.FailureHook(seq, rec)
	}
	if err == nil {
		err = s.applier.Apply(seq, rec)
	}
	if err != nil {
		s.failed = true
		s.firstFailed = seq
		s.nextSeq = seq + 1
		if ackReq {
			// The failing record itself carried the ack request.
			s.nack()
		}
		return true
	}
	s.applied.Store(seq)
	s.nextSeq = seq + 1
	s.Applied.Inc()
	if ackReq {
		s.sendAckWord(makeAck(seq))
	}
	return true
}

// nack frees the discarded buffer region and reports the first failed
// sequence plus the discarded count ("sends back the first failed requests
// and freed memory buffer since last acknowledgment", §5.2). Zeroing the
// ready words of every discarded slot *before* publishing the nack makes the
// primary's re-send unambiguous: this secondary reconsiders those slots only
// once a fresh RDMA Write republishes their indicators. Slots beyond the
// scan position keep their original records and are consumed as-is after the
// resent prefix.
func (s *Secondary) nack() {
	words := s.log.mr.Words()
	for seq := s.firstFailed; seq < s.nextSeq; seq++ {
		words.Store(s.slotOf(seq), 0)
	}
	s.Nacks.Inc()
	s.nackCount = s.nextSeq - s.firstFailed
	s.sendAckWord(makeNack(s.firstFailed, s.nackCount))
	s.nextSeq = s.firstFailed
	s.failed = false
	s.awaitingResend = true
}

func (s *Secondary) sendAckWord(w uint64) {
	// One-sided write of the ack word into the primary's region. Errors are
	// deliberately dropped: a dead primary's ack word is irrelevant and SWAT
	// handles the failover.
	//hydralint:ignore error-discipline a dead primary's ack word is irrelevant; SWAT handles the failover
	_ = s.ackQP.WriteWord(s.ackMR, s.ackIdx, w)
}

// Run drains the log until Stop; for the live shard process.
func (s *Secondary) Run() {
	s.started.Store(true)
	defer close(s.done)
	// Registered after the done defer (LIFO): deregistration precedes the
	// close a joining Stop waits on, so AssertDrained after Stop is exact.
	spawnDone := invariant.Spawned(fmt.Sprintf("replication.Secondary/%p", s))
	defer spawnDone()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if !s.PollOnce() {
			runtime.Gosched()
		}
	}
}

// Stop terminates Run and waits for it to exit, so the caller may safely
// take over the drain (promotion calls PollOnce afterwards).
func (s *Secondary) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	if s.started.Load() {
		<-s.done
		invariant.AssertDrained(fmt.Sprintf("replication.Secondary/%p", s))
	}
}

// secondaryState is the primary-side view of one secondary.
type secondaryState struct {
	qp        *rdma.QP
	log       *Log
	ackIdx    int // hydralint:offset-source index into the primary's ack word area
	lastAcked uint64
	doorbell  uint64 // last doorbell value rung

	// written is the highest sequence number written to this secondary with
	// no gap below it. A failed writeRecord (transient partition, chaos
	// injection) leaves written behind seq; Replicate, the ack-wait loops and
	// Flush re-send the missing range before anything newer, because the
	// secondary consumes strictly in sequence order and a permanent hole
	// would stall it forever.
	written uint64

	// rollback de-duplication: a doorbell may re-elicit an already handled
	// nack while the re-sent prefix is in flight.
	lastNackFrom  uint64
	lastNackCount uint64
}

// Primary replicates records to its secondaries. It is single-threaded,
// owned by the primary shard.
type Primary struct {
	cfg     LogConfig
	ackMR   *rdma.MemoryRegion // primary-owned: secondaries write acks here
	secs    []*secondaryState
	seq     uint64 // last assigned sequence number
	pending [][]byte

	Replications stats.Counter
	Rollbacks    stats.Counter
	AckWaits     stats.Counter
}

// NewPrimary creates a primary endpoint. nic is the primary's adaptor;
// maxSecondaries bounds AddSecondary calls.
func NewPrimary(nic *rdma.NIC, cfg LogConfig, maxSecondaries int) *Primary {
	c := cfg.withDefaults()
	if maxSecondaries <= 0 {
		maxSecondaries = 2
	}
	p := &Primary{
		cfg:     c,
		ackMR:   nic.Register(nil, arena.NewWordArea(maxSecondaries, 1)),
		pending: make([][]byte, c.Slots),
	}
	for i := range p.pending {
		p.pending[i] = make([]byte, 0, c.SlotSize)
	}
	return p
}

// AckRegion exposes the primary's ack region; pass it to NewSecondary
// together with the index returned by AddSecondary.
func (p *Primary) AckRegion() *rdma.MemoryRegion { return p.ackMR }

// AddSecondary registers a secondary reachable through qp whose log ring is
// log. It returns the ack word index the secondary must write to.
func (p *Primary) AddSecondary(qp *rdma.QP, log *Log) (ackIdx int, err error) {
	if len(p.secs) >= p.ackMR.Words().Len() {
		return 0, fmt.Errorf("replication: secondary limit %d reached", p.ackMR.Words().Len())
	}
	if log.cfg.Slots != p.cfg.Slots || log.cfg.SlotSize != p.cfg.SlotSize {
		return 0, fmt.Errorf("replication: log geometry mismatch")
	}
	ackIdx = len(p.secs)
	p.secs = append(p.secs, &secondaryState{qp: qp, log: log, ackIdx: ackIdx})
	return ackIdx, nil
}

// RemoveSecondary detaches the secondary at ackIdx (failover).
func (p *Primary) RemoveSecondary(ackIdx int) {
	for i, s := range p.secs {
		if s.ackIdx == ackIdx {
			p.secs = append(p.secs[:i], p.secs[i+1:]...)
			return
		}
	}
}

// Secondaries reports the number of attached secondaries.
func (p *Primary) Secondaries() int { return len(p.secs) }

// Seq reports the last assigned sequence number.
func (p *Primary) Seq() uint64 { return p.seq }

// MinAcked reports the lowest acknowledged sequence across secondaries.
func (p *Primary) MinAcked() uint64 {
	if len(p.secs) == 0 {
		return p.seq
	}
	min := p.secs[0].lastAcked
	for _, s := range p.secs[1:] {
		if s.lastAcked < min {
			min = s.lastAcked
		}
	}
	return min
}

// Replicate ships one record to every secondary, honouring the configured
// acknowledgement mode. In logging mode it typically returns after a single
// one-sided RDMA Write per secondary; in strict mode it waits for every
// secondary's ack.
func (p *Primary) Replicate(r Record) error {
	if len(p.secs) == 0 {
		return nil
	}
	size := r.EncodedSize()
	if size > p.cfg.SlotSize {
		return ErrRecordTooLarge
	}
	// Window control: never overwrite a slot that any secondary has not
	// acknowledged.
	for p.seq-p.MinAcked() >= uint64(p.cfg.Slots) {
		p.AckWaits.Inc()
		p.waitForAckProgress()
	}

	p.seq++
	seq := p.seq
	ackReq := p.cfg.Strict || seq%uint64(p.cfg.AckEvery) == 0
	slot := int((seq - 1) % uint64(p.cfg.Slots))
	buf := p.pending[slot]
	if cap(buf) < size {
		buf = make([]byte, size)
	} else {
		buf = buf[:size]
	}
	r.EncodeTo(buf)
	p.pending[slot] = buf

	for _, s := range p.secs {
		if err := p.writeThrough(s, seq, ackReq); err != nil {
			return err
		}
	}
	p.Replications.Inc()

	if p.cfg.Strict {
		return p.waitAcked(seq)
	}
	return nil
}

func (p *Primary) writeRecord(s *secondaryState, seq uint64, body []byte, ackReq bool) error {
	slot := int((seq - 1) % uint64(p.cfg.Slots))
	ready := makeReady(seq, len(body), ackReq)
	// One posted RDMA Write: body then ready word (in-order delivery).
	return s.qp.WriteIndicated(s.log.Region(), slot*p.cfg.SlotSize, body, slot, slot, ready)
}

// writeThrough writes every record in (s.written, seq] to one secondary in
// sequence order, filling any gap a previously failed write left before the
// newest record. Gap records are re-encoded from the pending ring, which
// still holds them: written never lags the window (written >= lastAcked >=
// seq-Slots), so their slots have not been reused. On failure written stays
// put and a later Replicate/Flush/ack-wait retries.
func (p *Primary) writeThrough(s *secondaryState, seq uint64, ackReq bool) error {
	for w := s.written + 1; w <= seq; w++ {
		slot := int((w - 1) % uint64(p.cfg.Slots))
		body := p.pending[slot]
		req := ackReq
		if w != seq {
			req = p.cfg.Strict || w%uint64(p.cfg.AckEvery) == 0
		}
		if err := p.writeRecord(s, w, body, req); err != nil {
			return err
		}
		s.written = w
	}
	return nil
}

// catchUp retries the gap fill of every secondary lagging the last assigned
// sequence, ignoring errors (the link may still be down); used by the
// ack-wait loops so a healed partition drains without a new Replicate.
func (p *Primary) catchUp() {
	for _, s := range p.secs {
		if s.written < p.seq {
			//hydralint:ignore error-discipline recovery catch-up; the link may still be down and a later pass retries
			_ = p.writeThrough(s, p.seq, p.cfg.Strict)
		}
	}
}

// ring writes the out-of-band doorbell soliciting an ack from s.
func (p *Primary) ring(s *secondaryState) {
	s.doorbell++
	//hydralint:ignore error-discipline doorbell to a possibly-dead secondary; the ack timeout is the real failure signal
	_ = s.qp.WriteWord(s.log.Region(), s.log.doorbellIdx(), s.doorbell)
}

// waitForAckProgress blocks until some secondary's ack state advances,
// ringing doorbells periodically and handling nacks as they surface.
func (p *Primary) waitForAckProgress() {
	before := p.MinAcked()
	p.ringBehind(before + 1)
	for i := 0; ; i++ {
		p.pollAcks()
		if p.MinAcked() != before {
			return
		}
		if i%4096 == 4095 {
			p.catchUp()
			p.ringBehind(before + 1)
		}
		runtime.Gosched()
	}
}

// waitAcked blocks until every secondary acknowledged seq. It has no
// deadline: the strict-mode request path deliberately inherits the
// conventional baseline's blocking semantics (Fig. 13's comparison mode).
// Stop paths must use waitAckedUntil via FlushTimeout instead.
func (p *Primary) waitAcked(seq uint64) error {
	return p.waitAckedUntil(seq, 0)
}

// waitAckedUntil blocks until every secondary acknowledged seq or the wall
// clock passes deadline (0 means no deadline). The deadline is checked on
// the same stride as the doorbell re-ring so the exit test stays off the
// per-spin fast path.
func (p *Primary) waitAckedUntil(seq uint64, deadline int64) error {
	for i := 0; ; i++ {
		p.pollAcks()
		done := true
		for _, s := range p.secs {
			if s.lastAcked < seq {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		if i%4096 == 4095 {
			if deadline > 0 && timing.Wall().Now() >= deadline {
				return ErrFlushTimeout
			}
			p.catchUp()
			if !p.cfg.Strict {
				p.ringBehind(seq)
			}
		}
		runtime.Gosched()
	}
}

func (p *Primary) ringBehind(seq uint64) {
	for _, s := range p.secs {
		if s.lastAcked < seq {
			p.ring(s)
		}
	}
}

// Flush solicits acknowledgements (via doorbells) and waits until every
// secondary caught up to the last assigned sequence — used before promoting
// a secondary. It waits forever; shutdown paths that must stay live under
// partitions use FlushTimeout.
func (p *Primary) Flush() error {
	if len(p.secs) == 0 || p.seq == 0 {
		return nil
	}
	p.catchUp()
	p.ringBehind(p.seq)
	return p.waitAcked(p.seq)
}

// FlushTimeout is Flush with a wall-clock budget: it returns ErrFlushTimeout
// if some secondary has not acknowledged the last assigned sequence within
// budgetNs. Graceful stop paths use it so a partitioned or dead replica
// cannot hang Shard.Stop — the goroutine-lifecycle contract is that Stop
// always returns, and unconfirmed records recover via the §5.2 resend
// protocol once the replica heals.
func (p *Primary) FlushTimeout(budgetNs int64) error {
	if len(p.secs) == 0 || p.seq == 0 {
		return nil
	}
	p.catchUp()
	p.ringBehind(p.seq)
	return p.waitAckedUntil(p.seq, timing.Wall().Now()+budgetNs)
}

// PollAcksOnce consumes pending acknowledgement words exactly once without
// blocking — the stepping hook for tests and the model checker, which must
// interleave primary-side ack handling with secondary-side polling
// deterministically instead of entering the spin in waitForAckProgress. The
// live path keeps using Replicate/Flush.
func (p *Primary) PollAcksOnce() { p.pollAcks() }

// SolicitAcks rings the out-of-band doorbell of every secondary lagging the
// last assigned sequence, without waiting for the answers (the waiting
// counterpart is Flush). Stepping hook for tests and the model checker.
func (p *Primary) SolicitAcks() {
	if p.seq == 0 {
		return
	}
	p.ringBehind(p.seq)
}

// pollAcks consumes every secondary's ack word with a CAS-clear (so a
// concurrent newer write is never lost), advancing ack state and handling
// nacks by re-sending exactly the discarded prefix (§5.2).
func (p *Primary) pollAcks() {
	for _, s := range p.secs {
		w := p.ackMR.Words().Load(s.ackIdx)
		if w == 0 {
			continue
		}
		// Clear only if unchanged; on a lost race the newer value is
		// processed on the next poll.
		p.ackMR.Words().CompareAndSwap(s.ackIdx, w, 0)
		seq, count, nack := splitAck(w)
		if nack {
			if seq == s.lastNackFrom && count == s.lastNackCount && s.lastAcked < seq {
				continue // duplicate of an in-flight rollback
			}
			s.lastNackFrom, s.lastNackCount = seq, count
			p.Rollbacks.Inc()
			p.resendRange(s, seq, count)
			continue
		}
		if seq > s.lastAcked {
			s.lastAcked = seq
		}
	}
}

// resendRange re-sends records [from, from+count) to one secondary — the
// exact range whose ready words the secondary zeroed — flagging the last so
// recovery converges even when no periodic flag falls inside the range.
func (p *Primary) resendRange(s *secondaryState, from, count uint64) {
	for seq := from; seq < from+count && seq <= p.seq; seq++ {
		slot := int((seq - 1) % uint64(p.cfg.Slots))
		body := p.pending[slot]
		ackReq := p.cfg.Strict || seq == from+count-1 || seq%uint64(p.cfg.AckEvery) == 0
		//hydralint:ignore error-discipline recovery resend; a failed write resurfaces as a nack and re-enters this loop
		_ = p.writeRecord(s, seq, body, ackReq)
	}
}
