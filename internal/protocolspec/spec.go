// Package protocolspec is the declarative vocabulary for HydraDB's
// lock-free publication protocols. Each package that owns a protocol
// (the kv guardian word, the hashtable root buckets, the mailbox ring
// indicator, the replication ready word, the lease words) declares a
// package-level Spec literal describing the atomic words it publishes
// through, the happens-before edges the protocol requires, the
// torn-read guards its one-sided readers rely on, and the quiescence
// gates its reclaimers must pass.
//
// A Spec is consumed twice:
//
//   - cmd/hydralint parses Spec literals statically (the same way it
//     parses modelcheck.Footprint literals) and drives the generic
//     spec verification engine off them: the spec-order pass proves
//     the declared edges hold on every code path, spec-coverage flags
//     atomic stores to spec'd words that no edge or Writers entry
//     sanctions, spec-drift flags declarations that no longer match
//     the code, and spec-guard re-proves the torn-read guards and
//     reclamation gates.
//   - internal/modelcheck consumes the same Specs at runtime to
//     generate each hydramc model's Footprint (and its SchedPoint tag
//     skeleton); a test and `hydramc -footprints` diff the generated
//     footprints against the hand-written ones byte-for-byte, so the
//     linter, the model checker, and the code cannot drift apart.
//
// Specs must be pure literals — string constants, bool literals, and
// nested composite literals only — because the linter evaluates them
// without executing code. Words are named with hydralint's nominal
// word ids ("pkgpath.Type.field" plus "[]" per index level, or
// "pkgpath.var"); functions with types.Func.FullName() strings
// ("pkgpath.F" or "(*pkgpath.T).M").
//
// This package deliberately imports nothing, so every data-plane
// package can declare a Spec without widening its dependency cone.
package protocolspec

// Role classifies what a declared atomic word means to the protocol.
type Role string

const (
	// Guardian is the per-item guardian word of the out-of-place PUT
	// protocol (§4.2.3): readers validate it before and after copying
	// the payload.
	Guardian Role = "guardian"
	// PayloadGroup marks a word that names a payload region rather
	// than a single indicator (reserved; payload regions are today
	// declared with hydralint:region markers).
	PayloadGroup Role = "payload-group"
	// PubWord is a publication pointer readers load to find an item
	// (kv pub slots, hashtable root buckets).
	PubWord Role = "pub-word"
	// ReadyWord is a produced-side completeness indicator (mailbox
	// slot header, replication started flag, probe-section counters).
	ReadyWord Role = "ready-word"
	// CommitWord is a watermark that must only advance after the work
	// it acknowledges is durable in memory (replication applied
	// sequence; later, mini-transaction commit words).
	CommitWord Role = "commit-word"
	// LeaseWord holds an item's lease expiry; it is the one word the
	// protocol allows to be rewritten after publication, because
	// renewal is monotonic and readers re-validate the guardian.
	LeaseWord Role = "lease-word"
)

// EdgeKind names a required happens-before edge of a protocol.
type EdgeKind string

const (
	// PayloadBeforeRelease: every payload write sequences before the
	// release store of the publication indicator. From names the
	// publish constant (hydralint:publish) or the publishing function
	// (hydralint:publishes); To names the indicator word.
	PayloadBeforeRelease EdgeKind = "payload-before-release"
	// RetractBeforeFree: a function that frees an item's memory and
	// stores the retraction constant must store the retraction before
	// the first free, so concurrent one-sided readers fail validation
	// instead of reading recycled bytes. From names the retraction
	// constant (hydralint:unpublish); To names the freeing function.
	RetractBeforeFree EdgeKind = "retract-before-free"
	// ApplyAfterReplicate: a commit word may only be stored after the
	// replicated record has been applied. From names the applying
	// function (a bare method name matches any callee with that
	// selector, since appliers are usually interface-typed); To names
	// the commit word.
	ApplyAfterReplicate EdgeKind = "apply-after-replicate"
	// FlushBeforeFlip is reserved for the durability tier: a
	// persistent pointer flip must sequence after the cache-line
	// flush of the out-of-place update it publishes. No site declares
	// it yet; declaring it lints the same way as the other edges, so
	// the NVM work needs no engine changes.
	FlushBeforeFlip EdgeKind = "flush-before-flip"
)

// Word declares one atomic word the protocol owns.
type Word struct {
	// Name is the hydralint nominal word id.
	Name string
	// Role classifies the word.
	Role Role
	// Footprint marks the word for inclusion in the owning model's
	// generated hydramc Footprint.
	Footprint bool
	// Writers lists the functions sanctioned to store the word
	// directly (types.Func.FullName form). Stores outside this list —
	// and outside the publish/retract constants and hydralint:publishes
	// functions the flow pass already understands — are spec-coverage
	// findings. For a LeaseWord, Writers are additionally exempt from
	// the after-publication write check: renewal is the one sanctioned
	// post-release store.
	Writers []string
	// Why records the one-line protocol argument for the word.
	Why string
}

// Edge declares one required happens-before edge.
type Edge struct {
	Kind EdgeKind
	// From and To are edge-kind specific; see the EdgeKind constants.
	From string
	To   string
	Why  string
}

// Guard declares a torn-read / size guard a one-sided reader relies
// on: Reader's body must keep a comparison against Bound.
type Guard struct {
	// Reader is the guarded function (types.Func.FullName form).
	Reader string
	// Bound is the identifier the guard compares against (a field,
	// constant, or parameter name visible in Reader's body).
	Bound string
	Why   string
}

// Reclaim declares a reclamation gate: Reclaimer must call Gate
// (and observe quiescence) before calling any of Frees.
type Reclaim struct {
	Reclaimer string
	Gate      string
	Frees     []string
	Why       string
}

// Spec is one package's declared publication protocol.
type Spec struct {
	// Name identifies the spec in lint findings and SARIF
	// fingerprints ("kv-guardian", "mailbox-ring", ...).
	Name string
	// Model names the hydramc model whose Footprint this spec feeds;
	// empty for specs with no model-checker counterpart.
	Model string
	// Packages lists the import paths the protocol spans, in the
	// order the generated Footprint should list them.
	Packages []string
	// SchedTags lists the invariant.SchedPoint tags the model's
	// scheduler interleaves on.
	SchedTags []string

	Words    []Word
	Edges    []Edge
	Guards   []Guard
	Reclaims []Reclaim
}
