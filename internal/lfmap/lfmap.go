// Package lfmap provides the lock-free hash map backing HydraDB's shared
// remote-pointer cache (paper §4.2.4).
//
// When many client processes are collocated on one machine, they share one
// pointer cache so that a single invalidation (guardian flip observed by any
// client) is seen by all of them, avoiding the cascade of stale RDMA Reads
// the paper describes. The original system uses Michael's dynamic lock-free
// hash table; portable Go has no tagged pointers, so this implementation
// keeps the lock-free read/insert/update paths (atomic pointer CAS on bucket
// chains, atomic value publication) and makes deletion *logical* — nodes are
// tombstoned and revived in place rather than unlinked. For a cache keyed by
// a bounded keyspace this retains the paper's contention behaviour; a
// Sweep() compacts chains when the map is quiescent.
package lfmap

import (
	"sync/atomic"

	"hydradb/internal/hashx"
)

type node[V any] struct {
	key  string
	val  atomic.Pointer[V] // nil while tombstoned
	next atomic.Pointer[node[V]]
}

// Map is a concurrent hash map from string keys to *V values. All methods
// are safe for arbitrary concurrency; Get/Put/Delete never take locks and
// never block each other.
type Map[V any] struct {
	buckets []atomic.Pointer[node[V]]
	mask    uint64
	live    atomic.Int64
}

// New creates a map with at least nBuckets buckets (rounded to a power of
// two). Size it near the expected key population: chains are never split.
func New[V any](nBuckets int) *Map[V] {
	n := 1
	for n < nBuckets {
		n <<= 1
	}
	return &Map[V]{
		buckets: make([]atomic.Pointer[node[V]], n),
		mask:    uint64(n - 1),
	}
}

func (m *Map[V]) bucket(key string) *atomic.Pointer[node[V]] {
	return &m.buckets[hashx.HashString(key)&m.mask]
}

func (m *Map[V]) find(head *atomic.Pointer[node[V]], key string) *node[V] {
	for n := head.Load(); n != nil; n = n.next.Load() {
		if n.key == key {
			return n
		}
	}
	return nil
}

// Get returns the value for key, or nil/false when absent or tombstoned.
func (m *Map[V]) Get(key string) (*V, bool) {
	n := m.find(m.bucket(key), key)
	if n == nil {
		return nil, false
	}
	v := n.val.Load()
	if v == nil {
		return nil, false
	}
	return v, true
}

// Put stores v under key, inserting or overwriting (also reviving a
// tombstoned node). v must not be nil.
func (m *Map[V]) Put(key string, v *V) {
	if v == nil {
		panic("lfmap: nil value")
	}
	head := m.bucket(key)
	for {
		if n := m.find(head, key); n != nil {
			if n.val.Swap(v) == nil {
				m.live.Add(1)
			}
			return
		}
		nn := &node[V]{key: key}
		nn.val.Store(v)
		old := head.Load()
		nn.next.Store(old)
		if head.CompareAndSwap(old, nn) {
			m.live.Add(1)
			return
		}
		// Lost the race to another inserter; retry — the key may now exist.
	}
}

// Delete tombstones key, reporting whether a live entry was removed.
func (m *Map[V]) Delete(key string) bool {
	n := m.find(m.bucket(key), key)
	if n == nil {
		return false
	}
	if n.val.Swap(nil) != nil {
		m.live.Add(-1)
		return true
	}
	return false
}

// CompareAndDelete tombstones key only while it still maps to old — the
// invalidation primitive: a client that discovered a stale pointer removes
// it without clobbering a fresher pointer another client just installed.
func (m *Map[V]) CompareAndDelete(key string, old *V) bool {
	n := m.find(m.bucket(key), key)
	if n == nil {
		return false
	}
	if n.val.CompareAndSwap(old, nil) {
		m.live.Add(-1)
		return true
	}
	return false
}

// Len reports the number of live (non-tombstoned) entries. It is exact when
// the map is quiescent and approximate under concurrency.
func (m *Map[V]) Len() int { return int(m.live.Load()) }

// Range calls fn for each live entry until fn returns false. Entries
// inserted concurrently may or may not be observed.
func (m *Map[V]) Range(fn func(key string, v *V) bool) {
	for i := range m.buckets {
		for n := m.buckets[i].Load(); n != nil; n = n.next.Load() {
			if v := n.val.Load(); v != nil {
				if !fn(n.key, v) {
					return
				}
			}
		}
	}
}

// Sweep physically unlinks tombstoned nodes. It must only be called while no
// concurrent mutators run (e.g. between benchmark phases); readers remain
// safe throughout.
func (m *Map[V]) Sweep() int {
	removed := 0
	for i := range m.buckets {
		head := &m.buckets[i]
		// Rebuild the chain without tombstones.
		var keep []*node[V]
		for n := head.Load(); n != nil; n = n.next.Load() {
			if n.val.Load() != nil {
				keep = append(keep, n)
			} else {
				removed++
			}
		}
		var prev *node[V]
		for j := len(keep) - 1; j >= 0; j-- {
			keep[j].next.Store(prev)
			prev = keep[j]
		}
		head.Store(prev)
	}
	return removed
}
