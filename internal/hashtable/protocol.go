package hashtable

import "hydradb/internal/protocolspec"

// RootSpec declares the root-bucket publication protocol: every store
// into the shared main[] bucket array funnels through setWord
// (slot-before-filter on insert, filter-before-slot on delete), and
// one-sided root probes refuse buckets whose header carries an
// overflow link. Feeds the "readerplane" model footprint together
// with kv.ReadPlaneSpec.
var RootSpec = protocolspec.Spec{
	Name:     "hashtable-root",
	Model:    "readerplane",
	Packages: []string{"hydradb/internal/hashtable"},
	Words: []protocolspec.Word{{
		Name:      "hydradb/internal/hashtable.Table.main[]",
		Role:      protocolspec.PubWord,
		Footprint: true,
		Writers:   []string{"(*hydradb/internal/hashtable.Table).setWord"},
		Why:       "single store funnel keeps the slot/filter ordering argument in one place",
	}},
	Guards: []protocolspec.Guard{{
		Reader: "(*hydradb/internal/hashtable.Table).ProbeRoot",
		Bound:  "headerLink",
		Why:    "a linked bucket means the chain is being walked under the shard owner; a lock-free probe must bail out rather than follow it",
	}},
}
