// Package sim is a deterministic discrete-event simulation engine.
//
// The paper's evaluation runs on an 8-machine InfiniBand cluster; this host
// has one CPU core, so wall-clock measurement cannot exhibit multi-machine
// scaling. The benchmark harness therefore drives the real hydradb
// data-plane code (stores, caches, replication state machines) under
// *virtual* time: actors schedule work on an event heap, contended devices
// (NICs, shard CPUs, worker pools) are FIFO resources with service times,
// and wires are pure delays. Runs are exactly reproducible: the heap breaks
// ties by insertion sequence and all randomness flows from one seeded
// source.
package sim

import (
	"container/heap"
	"math/rand"

	"hydradb/internal/timing"
)

// Engine is the event loop. Not safe for concurrent use: simulations are
// single-threaded by design.
type Engine struct {
	events eventHeap
	clock  *timing.ManualClock
	seq    int64
	rng    *rand.Rand
	ran    int64
}

// NewEngine creates an engine starting at virtual time 0.
func NewEngine(seed int64) *Engine {
	return &Engine{
		clock: timing.NewManualClock(0),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Clock exposes the virtual clock — hand it to kv.Config and friends so the
// data plane lives on simulation time.
func (e *Engine) Clock() *timing.ManualClock { return e.clock }

// Now reports virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.clock.Now() }

// Rand exposes the deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Events reports how many events have executed.
func (e *Engine) Events() int64 { return e.ran }

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t int64, fn func()) {
	if t < e.Now() {
		t = e.Now()
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d int64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.Now()+d, fn)
}

// Step executes the next event; false when the heap is empty.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.clock.Set(ev.t)
	e.ran++
	ev.fn()
	return true
}

// The three step primitives below decompose Run() so a multi-instance
// coordinator (Fleet) can drive several engines in global timestamp order:
// the coordinator peeks every instance's next event time, advances the
// instance holding the globally earliest one, and repeats. Each event still
// executes against its own instance's state only.

// HasPendingEvents reports whether any event is queued.
func (e *Engine) HasPendingEvents() bool { return e.events.Len() > 0 }

// PeekNextEventTime reports the timestamp of the earliest queued event
// without executing it; ok is false when the heap is empty.
func (e *Engine) PeekNextEventTime() (t int64, ok bool) {
	if e.events.Len() == 0 {
		return 0, false
	}
	return e.events[0].t, true
}

// ProcessNextEvent executes exactly the earliest queued event; false when
// the heap is empty. Identical to Step — the alias exists so coordinator
// code reads as the peek/process pair it is.
func (e *Engine) ProcessNextEvent() bool { return e.Step() }

// Run executes events until the heap drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, leaving later events queued, and
// advances the clock to t.
func (e *Engine) RunUntil(t int64) {
	for e.events.Len() > 0 && e.events[0].t <= t {
		e.Step()
	}
	e.clock.Set(t)
}

type event struct {
	t   int64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Resource is a FIFO service center with k parallel servers — a NIC, a
// single-threaded shard CPU (k=1), or a worker pool (k=N). Acquire enqueues
// a job of the given service cost and schedules done() at its completion.
type Resource struct {
	eng     *Engine
	name    string
	servers []int64 // busy-until per server
	busyNs  int64   // accumulated service time (utilization accounting)
	jobs    int64
}

// NewResource creates a k-server resource.
func NewResource(e *Engine, name string, k int) *Resource {
	if k <= 0 {
		k = 1
	}
	return &Resource{eng: e, name: name, servers: make([]int64, k)}
}

// Acquire schedules a job of costNs on the earliest-free server and runs
// done at completion.
func (r *Resource) Acquire(costNs int64, done func()) {
	if costNs < 0 {
		costNs = 0
	}
	best := 0
	for i := 1; i < len(r.servers); i++ {
		if r.servers[i] < r.servers[best] {
			best = i
		}
	}
	start := r.eng.Now()
	if r.servers[best] > start {
		start = r.servers[best]
	}
	finish := start + costNs
	r.servers[best] = finish
	r.busyNs += costNs
	r.jobs++
	r.eng.At(finish, done)
}

// Delay schedules done after a pure latency (infinite-server station).
func (e *Engine) Delay(ns int64, done func()) { e.After(ns, done) }

// BusyNs reports accumulated service time across servers.
func (r *Resource) BusyNs() int64 { return r.busyNs }

// Jobs reports the number of jobs served.
func (r *Resource) Jobs() int64 { return r.jobs }

// Utilization reports busy fraction over elapsed virtual time.
func (r *Resource) Utilization() float64 {
	return r.UtilizationAt(r.eng.Now())
}

// UtilizationAt reports busy fraction over an explicit horizon — callers
// measuring a workload window use its end time rather than whatever
// housekeeping events extended the clock to.
func (r *Resource) UtilizationAt(t int64) float64 {
	if t == 0 {
		return 0
	}
	u := float64(r.busyNs) / float64(t) / float64(len(r.servers))
	if u > 1 {
		u = 1
	}
	return u
}

// Name identifies the resource.
func (r *Resource) Name() string { return r.name }
