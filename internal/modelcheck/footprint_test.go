package modelcheck

import "testing"

// TestFootprintsMatchModels pins the name pairing between the declared
// coverage table and the model registry: every footprint belongs to a
// registered model and every model declares its footprint. hydralint's
// model-conformance pass checks the *contents* (atomic words, sched tags);
// this test checks the index.
func TestFootprintsMatchModels(t *testing.T) {
	models := map[string]bool{}
	for _, m := range Models() {
		models[m.Name] = true
	}
	declared := map[string]bool{}
	for _, fp := range Footprints() {
		if fp.Model == "" {
			t.Errorf("footprint with empty Model name (packages %v)", fp.Packages)
			continue
		}
		if declared[fp.Model] {
			t.Errorf("duplicate footprint for model %q", fp.Model)
		}
		declared[fp.Model] = true
		if !models[fp.Model] {
			t.Errorf("footprint %q does not match any registered model", fp.Model)
		}
		if len(fp.Packages) == 0 {
			t.Errorf("footprint %q covers no packages", fp.Model)
		}
	}
	for name := range models {
		if !declared[name] {
			t.Errorf("model %q has no declared footprint; add one to footprints", name)
		}
	}
}
