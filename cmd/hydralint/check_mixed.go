package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// runMixedAccess is the whole-program mixed-access pass: a memory word that
// is accessed with sync/atomic operations anywhere in the program must never
// be accessed with a plain load or store anywhere else. On the RDMA data
// plane a plain access to a CASed word is not "probably fine" — it is a data
// race the fabric can expose as torn reads of guardian and indicator words
// (§4.2.3), and the Go memory model gives it no semantics at all.
//
// The pass runs in two phases over every loaded package at once. Phase A
// collects the atomic word set: every `&expr` handed to a sync/atomic
// package function, plus — interprocedurally — every argument to a module
// function whose atomic summary proves the callee dereferences that input
// atomically. Phase B finds plain loads and stores of the same words. Words
// are identified nominally ("pkg.Type.field" for fields, "pkg.var" for
// package-level variables, with "[]" appended per indexing level), so the
// identity crosses package boundaries the way go/types object identity
// cannot.
//
// Escape hatch: a deliberately non-atomic access (an init-time store before
// the word is shared, a test poking state single-threadedly) is annotated
//
//	//hydralint:plainread <justification>
//
// on the access line or the line above. The justification is mandatory — a
// bare marker is itself a finding. Typed atomics (atomic.Uint64 and friends)
// need none of this: their fields are unexported, so the type system already
// makes plain access impossible; this pass exists for the function-style
// sync/atomic calls on ordinary words.
//
// Limitations: a word reached only through a stored pointer (`p := &x.f;
// *p = 1`) or a pointer argument the summary layer cannot resolve is not
// tracked; bare address-of without a load or store is not an access.
func runMixedAccess(prog *Program, rep func(*Package) *Reporter) {
	type use struct {
		p    *Package
		pos  token.Pos
		desc string
	}
	atomicUses := map[string][]use{}
	plainUses := map[string][]use{}
	// plainCover maps filename -> line -> true for lines covered by a
	// justified plainread directive (its own line and the next).
	plainCover := map[string]map[int]bool{}

	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					just, isDirective := directiveRest(commentText(c), "hydralint:plainread")
					if !isDirective {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					if just == "" {
						rep(p).report("mixed-access", c.Pos(),
							"hydralint:plainread requires a justification: say why this plain access cannot race the atomic accesses")
						continue
					}
					cover := plainCover[pos.Filename]
					if cover == nil {
						cover = map[int]bool{}
						plainCover[pos.Filename] = cover
					}
					cover[pos.Line] = true
					cover[pos.Line+1] = true
				}
			}

			// Phase A per file: classify atomic-call arguments (and summarized
			// callee arguments), and index assignment targets, so phase B can
			// tell stores from loads and skip consumed subtrees.
			skip := map[ast.Node]bool{}
			stores := map[ast.Node]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isAtomicPkgCall(p, n) && len(n.Args) > 0 {
						if id, ok := mixedWordID(p, addrOperand(n.Args[0])); ok {
							atomicUses[id] = append(atomicUses[id], use{p, n.Pos(), "a sync/atomic call"})
						}
						skip[n.Args[0]] = true
						return true
					}
					if callee, inputs, ok := prog.resolveCallee(p, n); ok {
						sum := prog.atomicSummaryFor(callee.Obj.FullName())
						for idx := range sum.atomicInputs {
							if a := inputs.inputExpr(idx); a != nil {
								if id, ok := mixedWordID(p, addrOperand(a)); ok {
									atomicUses[id] = append(atomicUses[id], use{p, n.Pos(), "an atomic access inside " + callee.Obj.Name() + "()"})
								}
								skip[a] = true
							}
						}
						for idx := range sum.plainInputs {
							if a := inputs.inputExpr(idx); a != nil {
								if id, ok := mixedWordID(p, addrOperand(a)); ok {
									plainUses[id] = append(plainUses[id], use{p, n.Pos(), "plain access inside " + callee.Obj.Name() + "()"})
								}
								skip[a] = true
							}
						}
					}
				case *ast.AssignStmt:
					for _, l := range n.Lhs {
						stores[l] = true
					}
				case *ast.IncDecStmt:
					stores[n.X] = true
				}
				return true
			})

			// Phase B per file: record plain loads/stores of nameable words.
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil || skip[n] {
					return false
				}
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				if un, isU := e.(*ast.UnaryExpr); isU && un.Op == token.AND {
					// A bare address-of is not a load or store of the word;
					// don't descend, or the inner selector reads as a load.
					if _, isWord := mixedWordID(p, un.X); isWord {
						return false
					}
				}
				if sel, isSel := e.(*ast.SelectorExpr); isSel {
					// A method value/call selector is not a word access even
					// when its receiver chain resolves to one (x.word.Load()).
					if s, found := p.Info.Selections[sel]; found && s.Kind() != types.FieldVal {
						return true
					}
				}
				if id, ok := mixedWordID(p, e); ok {
					desc := "plain load"
					if stores[n] {
						desc = "plain store"
					}
					plainUses[id] = append(plainUses[id], use{p, e.Pos(), desc})
					return false
				}
				return true
			})
		}
	}

	var ids []string
	for id := range atomicUses {
		if len(plainUses[id]) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		aud := atomicUses[id][0]
		apos := aud.p.Fset.Position(aud.pos)
		for _, u := range plainUses[id] {
			pos := u.p.Fset.Position(u.pos)
			if plainCover[pos.Filename][pos.Line] {
				continue
			}
			rep(u.p).report("mixed-access", u.pos,
				"%s of %s, which %s at %s:%d also accesses with sync/atomic; use atomics for every access, or annotate //hydralint:plainread <why> if the access provably cannot race",
				u.desc, id, aud.desc, filepath.Base(apos.Filename), apos.Line)
		}
	}
}

// addrOperand strips one level of & from an atomic call's address argument;
// anything else (an already-pointer value) is returned as-is and will fail
// word resolution.
func addrOperand(e ast.Expr) ast.Expr {
	e = unparen(e)
	if un, ok := e.(*ast.UnaryExpr); ok && un.Op == token.AND {
		return unparen(un.X)
	}
	return e
}

// mixedWordID renders an lvalue as a program-wide nominal word identity:
// "pkgpath.Type.field" for struct fields, "pkgpath.var" for package-level
// variables, "[]" appended per indexing level. Locals, derefs of computed
// pointers, and anything else un-nameable return ok=false.
func mixedWordID(p *Package, e ast.Expr) (string, bool) {
	e = unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			tv, ok := p.Info.Types[x.X]
			if !ok {
				return "", false
			}
			t := tv.Type
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			named, isNamed := types.Unalias(t).(*types.Named)
			if !isNamed || named.Obj().Pkg() == nil {
				return "", false
			}
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name, true
		}
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name(), true
				}
			}
		}
		return "", false
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "", false
		}
		return v.Pkg().Path() + "." + v.Name(), true
	case *ast.IndexExpr:
		base, ok := mixedWordID(p, x.X)
		if !ok {
			return "", false
		}
		return base + "[]", true
	}
	return "", false
}
