package bench

import (
	"fmt"
	"time"

	"hydradb"
	"hydradb/internal/stats"
	"hydradb/internal/timing"
)

// PipelineMicro measures the live (real goroutines, simulated verbs) message
// GET path under an increasing pipeline window. Window 1 is the sequential
// synchronous client — the paper's single-slot protocol — and deeper windows
// batch through MultiGet over the slot-ring mailboxes, so the table shows
// directly what the ring depth buys. Run via: hydra-bench -fig pipeline.
func PipelineMicro(s Scale) *stats.Table {
	ops := s.Ops / 4
	if ops < 4000 {
		ops = 4000
	}
	tbl := &stats.Table{
		Title:   "pipelined message GETs — live fabric, window sweep",
		Headers: []string{"window", "ops/s", "ns/op", "vs window=1"},
	}
	var base float64
	for _, w := range []int{1, 2, 4, 8, 16} {
		opts := hydradb.DefaultOptions()
		opts.ShardsPerMachine = 1
		opts.DisableRDMARead = true // isolate the message path
		opts.ArenaBytesPerShard = 16 << 20
		opts.MaxItemsPerShard = 1 << 16
		opts.PipelineWindow = w
		db, err := hydradb.Start(opts)
		if err != nil {
			panic(err)
		}
		c := db.NewClient()
		const batch = 16
		keys := make([][]byte, batch)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("pipekey%03dbytes", i))
			if err := c.Put(keys[i], make([]byte, 32)); err != nil {
				panic(err)
			}
		}
		if _, err := c.MultiGet(keys); err != nil { // warm the scratch
			panic(err)
		}
		clk := timing.Wall() // wall-clock measurement of a live run, not data-plane time
		start := clk.Now()
		done := 0
		for done < ops {
			if w == 1 {
				if _, err := c.Get(keys[done%batch]); err != nil {
					panic(err)
				}
				done++
			} else {
				if _, err := c.MultiGet(keys); err != nil {
					panic(err)
				}
				done += batch
			}
		}
		elapsed := time.Duration(clk.Now() - start)
		db.Close()
		rate := float64(done) / elapsed.Seconds()
		if w == 1 {
			base = rate
		}
		tbl.AddRow(
			fmt.Sprintf("%d", w),
			f1(rate),
			f1(float64(elapsed.Nanoseconds())/float64(done)),
			fmt.Sprintf("%.2fx", rate/base),
		)
	}
	return tbl
}
