package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1000 || h.Max() != 100000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if mean := h.Mean(); mean != 50500 {
		t.Fatalf("mean = %f", mean)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	vals := make([]int64, n)
	for i := range vals {
		v := int64(rng.ExpFloat64() * 20000) // exponential latencies ~20us
		vals[i] = v
		h.Record(v)
	}
	// Relative error of the bucketing is ~1/32; allow 5%.
	for _, p := range []float64{50, 90, 99} {
		got := h.Percentile(p)
		exact := exactPercentile(vals, p)
		if exact == 0 {
			continue
		}
		rel := float64(got-exact) / float64(exact)
		if rel < -0.06 || rel > 0.06 {
			t.Errorf("p%.0f: got %d exact %d (rel %.3f)", p, got, exact, rel)
		}
	}
}

func exactPercentile(vals []int64, p float64) int64 {
	sorted := append([]int64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
		if i%1000 == 0 {
			break // fall through to proper sort below
		}
	}
	// insertion sort is too slow at 100k; use a simple radix-ish approach
	return quickSelect(append([]int64(nil), vals...), int(float64(len(vals))*p/100))
}

func quickSelect(a []int64, k int) int64 {
	if k >= len(a) {
		k = len(a) - 1
	}
	lo, hi := 0, len(a)-1
	for lo < hi {
		pivot := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return a[k]
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 1000; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 1999 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	a.Merge(nil) // must not panic
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample not clamped: min=%d", h.Min())
	}
}

func TestBucketMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<22; v = v*5/4 + 1 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucket index decreased at v=%d", v)
		}
		prev = b
	}
}

func TestBucketLowInvariant(t *testing.T) {
	// Property: every value maps to a bucket whose low bound is <= value and
	// whose relative width is bounded.
	f := func(raw int64) bool {
		v := raw
		if v < 0 {
			v = -v
		}
		v %= 1 << 40
		b := bucketOf(v)
		lo := bucketLow(b)
		if lo > v {
			return false
		}
		if v >= 64 {
			// width bound: lo >= v * 31/32 - 1
			return float64(lo) >= float64(v)*0.96-2
		}
		return lo == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Record(5000)
	s := h.Summarize()
	if s.Count != 1 {
		t.Fatalf("count=%d", s.Count)
	}
	if !strings.Contains(s.String(), "mean=5.0us") {
		t.Fatalf("unexpected summary: %s", s.String())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Headers: []string{"workload", "Mops/s"}}
	tbl.AddRow("zipf-50/50", "1.25")
	tbl.AddRow("unif-100/0", "10.0")
	out := tbl.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "zipf-50/50") {
		t.Fatalf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableSort(t *testing.T) {
	tbl := &Table{Headers: []string{"n", "v"}}
	tbl.AddRow("10", "a")
	tbl.AddRow("2", "b")
	tbl.AddRow("1", "c")
	tbl.SortRowsBy(0)
	if tbl.Rows[0][0] != "1" || tbl.Rows[2][0] != "10" {
		t.Fatalf("numeric sort failed: %v", tbl.Rows)
	}
}

func TestCounters(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d", c.Load())
	}
	if c.Reset() != 5 || c.Load() != 0 {
		t.Fatal("reset failed")
	}
}

func TestOpCountersSnapshotAndAdd(t *testing.T) {
	var o OpCounters
	o.Gets.Add(10)
	o.RDMAReadHits.Add(7)
	o.RDMAReadStale.Add(2)
	s := o.Snapshot()
	if s.Gets != 10 || s.RDMAReadHits != 7 || s.RDMAReadStale != 2 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
	var total OpSnapshot
	total.Add(s)
	total.Add(s)
	if total.Gets != 20 || total.RDMAReadHits != 14 {
		t.Fatalf("add mismatch: %+v", total)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i % 100000))
	}
}
