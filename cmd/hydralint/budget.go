package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The suppression ratchet. Every escape hatch the linter offers (the ignore,
// holds, aliases, and plainread directives) is counted repo-wide and compared
// against a checked-in baseline
// (.hydralint-budget). A run whose count exceeds the baseline fails: new
// suppressions need a reviewer to consciously raise the budget in the same
// change. A run whose count is lower only reports that the baseline can be
// tightened; `hydralint -budget-write` regenerates the file. The
// stale-suppression check closes the loop from the other side by flagging
// ignore directives that no longer filter anything.

// SuppressionCounts is the repo-wide census of linter escape hatches.
type SuppressionCounts struct {
	Ignore    int `json:"ignore"`
	Holds     int `json:"holds"`
	Aliases   int `json:"aliases"`
	Plainread int `json:"plainread"`
}

func (c SuppressionCounts) Total() int {
	return c.Ignore + c.Holds + c.Aliases + c.Plainread
}

// categories orders the budget file deterministically.
func (c SuppressionCounts) categories() []struct {
	Name  string
	Count int
} {
	return []struct {
		Name  string
		Count int
	}{
		{"ignore", c.Ignore},
		{"holds", c.Holds},
		{"aliases", c.Aliases},
		{"plainread", c.Plainread},
	}
}

// countSuppressions counts directive comments across all loaded files. Only
// comments that *start* with a marker count — prose that mentions a marker
// mid-sentence does not. Files shared between a package and its test variant
// are counted once.
func countSuppressions(pkgs []*Package) SuppressionCounts {
	var c SuppressionCounts
	seen := map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Package).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := commentText(cm)
					switch {
					case matchesMarker(text, "hydralint:ignore"):
						c.Ignore++
					case matchesMarker(text, "hydralint:holds"):
						c.Holds++
					case matchesMarker(text, "hydralint:aliases"):
						c.Aliases++
					case matchesMarker(text, "hydralint:plainread"):
						c.Plainread++
					}
				}
			}
		}
	}
	return c
}

func matchesMarker(text, marker string) bool {
	_, ok := directiveRest(text, marker)
	return ok
}

// parseBudget reads a baseline file of "category count" lines ('#' comments
// and blank lines allowed).
func parseBudget(path string) (SuppressionCounts, error) {
	var c SuppressionCounts
	data, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, found := strings.Cut(line, " ")
		if !found {
			return c, fmt.Errorf("%s:%d: malformed line %q (want \"category count\")", path, i+1, line)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return c, fmt.Errorf("%s:%d: bad count %q", path, i+1, val)
		}
		switch name {
		case "ignore":
			c.Ignore = n
		case "holds":
			c.Holds = n
		case "aliases":
			c.Aliases = n
		case "plainread":
			c.Plainread = n
		default:
			return c, fmt.Errorf("%s:%d: unknown category %q", path, i+1, name)
		}
	}
	return c, nil
}

// formatBudget renders the baseline file content.
func formatBudget(c SuppressionCounts) string {
	var b strings.Builder
	b.WriteString("# hydralint suppression budget — the ratchet only goes down.\n")
	b.WriteString("# Regenerate with: go run ./cmd/hydralint -budget-write .hydralint-budget ./...\n")
	for _, cat := range c.categories() {
		fmt.Fprintf(&b, "%s %d\n", cat.Name, cat.Count)
	}
	return b.String()
}

// checkBudget compares the current census against the baseline. It returns
// human-readable failures (count exceeded) and notes (budget can be
// tightened); an empty failures slice means the ratchet holds.
func checkBudget(current, baseline SuppressionCounts) (failures, notes []string) {
	cur, base := current.categories(), baseline.categories()
	for i := range cur {
		switch {
		case cur[i].Count > base[i].Count:
			failures = append(failures, fmt.Sprintf(
				"suppression budget exceeded: %d hydralint:%s directives, baseline allows %d — remove the new suppression or consciously raise .hydralint-budget in this change",
				cur[i].Count, cur[i].Name, base[i].Count))
		case cur[i].Count < base[i].Count:
			notes = append(notes, fmt.Sprintf(
				"budget for hydralint:%s can be tightened: %d in tree, baseline says %d (run -budget-write)",
				cur[i].Name, cur[i].Count, base[i].Count))
		}
	}
	sort.Strings(failures)
	sort.Strings(notes)
	return failures, notes
}
