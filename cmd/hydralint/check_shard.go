package main

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// hotPathPackages are the module-relative packages forming the shard hot
// path: the event loop itself plus the store and index it drives. §4.1.1's
// whole performance argument is that this path is single-threaded and
// lock-free, so concurrency primitives here are design violations, not
// style nits.
var hotPathPackages = map[string]bool{
	"internal/shard":     true,
	"internal/kv":        true,
	"internal/hashtable": true,
}

// shardExclusivityAllowlist names files exempt from the check. The
// pipelined dispatcher/worker variant exists only as the §6.2.1/Fig. 5(a)
// ablation baseline — it is the measured counterexample, so it legitimately
// uses a mutex, goroutines, and a channel-backed work queue. The read plane
// (DESIGN.md §13) is the sanctioned relaxation of shard exclusivity: reader
// goroutines serve GETs through guardian-validated probes while every
// mutation stays on the shard loop, and its fallback channel is part of
// that protocol rather than a work queue.
var shardExclusivityAllowlist = map[string]bool{
	"internal/shard/pipelined.go": true,
	"internal/shard/readplane.go": true,
}

// runShardExclusivity flags go statements, sync.Mutex/RWMutex usage, and
// channel sends inside the hot-path packages.
func runShardExclusivity(p *Package, r *Reporter) {
	if !hotPathPackages[p.RelPath] {
		return
	}
	for _, f := range p.Files {
		if p.isTestFile(f) {
			// Test harnesses drive shards from helper goroutines and
			// channels by design; exclusivity binds the production path.
			continue
		}
		rel := filepath.ToSlash(filepath.Join(p.RelPath, filepath.Base(p.Fset.Position(f.Pos()).Filename)))
		if shardExclusivityAllowlist[rel] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				r.report("shard-exclusivity", n.Pos(),
					"go statement on the shard hot path; the shard thread owns this partition exclusively (§4.1.1)")
			case *ast.SendStmt:
				r.report("shard-exclusivity", n.Pos(),
					"channel send on the shard hot path; requests flow through RDMA mailboxes, not channels (§4.2.1)")
			case *ast.SelectorExpr:
				// Type mention: sync.Mutex / sync.RWMutex in a field or var
				// declaration, composite literal, or conversion.
				if id, ok := n.X.(*ast.Ident); ok {
					if pn, ok := p.Info.Uses[id].(*types.PkgName); ok &&
						pn.Imported().Path() == "sync" &&
						(n.Sel.Name == "Mutex" || n.Sel.Name == "RWMutex") {
						r.report("shard-exclusivity", n.Pos(),
							"sync.%s on the shard hot path; the data path must stay lock-free (§4.1.1)", n.Sel.Name)
						return true
					}
				}
				// Method call on a mutex-typed receiver (covers mutexes
				// embedded in or reached through other structs).
				if sel, ok := p.Info.Selections[n]; ok && isMutexMethod(sel) {
					r.report("shard-exclusivity", n.Pos(),
						"%s on a sync mutex along the shard hot path (§4.1.1)", n.Sel.Name)
				}
			}
			return true
		})
	}
}

// isMutexMethod reports whether the selection resolves to a method declared
// on sync.Mutex or sync.RWMutex — including promoted methods of an embedded
// mutex, where the selection's receiver is the outer struct.
func isMutexMethod(sel *types.Selection) bool {
	if sel.Kind() != types.MethodVal {
		return false
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
