package baselines

import (
	"encoding/binary"

	"hydradb/internal/hashx"
)

// RAMCloudLike models RAMCloud's storage core: all values live in
// append-only log segments and a hash index maps keys to log offsets. The
// harness drives it through a dispatch thread + worker pool with native
// InfiniBand Send/Recv costs ("a single RAMCloud server instance ... with 8
// threads allocated and logging silenced", §6.1).
//
// Entry layout in a segment: [2B keyLen][4B valLen][1B tombstone][key][val].
type RAMCloudLike struct {
	segments   [][]byte
	segSize    int
	index      map[uint64]ramRef // key hash -> latest entry
	liveBytes  int64
	totalBytes int64
}

type ramRef struct {
	seg, off int
}

const ramHeader = 7

// NewRAMCloudLike creates a store with the given segment size (RAMCloud
// uses 8 MB segments).
func NewRAMCloudLike(segSize int) *RAMCloudLike {
	if segSize <= 0 {
		segSize = 8 << 20
	}
	return &RAMCloudLike{
		segSize: segSize,
		index:   make(map[uint64]ramRef),
	}
}

func (s *RAMCloudLike) appendEntry(key, val []byte, tombstone bool) ramRef {
	need := ramHeader + len(key) + len(val)
	if len(s.segments) == 0 || len(s.segments[len(s.segments)-1])+need > s.segSize {
		s.segments = append(s.segments, make([]byte, 0, s.segSize))
	}
	si := len(s.segments) - 1
	seg := s.segments[si]
	off := len(seg)
	var hdr [ramHeader]byte
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(val)))
	if tombstone {
		hdr[6] = 1
	}
	seg = append(seg, hdr[:]...)
	seg = append(seg, key...)
	seg = append(seg, val...)
	s.segments[si] = seg
	s.totalBytes += int64(need)
	return ramRef{seg: si, off: off}
}

func (s *RAMCloudLike) entryAt(r ramRef) (key, val []byte, tombstone bool) {
	seg := s.segments[r.seg]
	keyLen := int(binary.LittleEndian.Uint16(seg[r.off : r.off+2]))
	valLen := int(binary.LittleEndian.Uint32(seg[r.off+2 : r.off+6]))
	tombstone = seg[r.off+6] == 1
	base := r.off + ramHeader
	return seg[base : base+keyLen], seg[base+keyLen : base+keyLen+valLen], tombstone
}

// Get reads the latest version of key.
func (s *RAMCloudLike) Get(key []byte) ([]byte, bool) {
	ref, ok := s.index[hashx.Hash(key)]
	if !ok {
		return nil, false
	}
	k, v, dead := s.entryAt(ref)
	if dead || string(k) != string(key) {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Set appends a new version and repoints the index.
func (s *RAMCloudLike) Set(key, val []byte) {
	ref := s.appendEntry(key, val, false)
	s.index[hashx.Hash(key)] = ref
	s.liveBytes += int64(ramHeader + len(key) + len(val))
}

// Delete appends a tombstone.
func (s *RAMCloudLike) Delete(key []byte) bool {
	h := hashx.Hash(key)
	ref, ok := s.index[h]
	if !ok {
		return false
	}
	if _, _, dead := s.entryAt(ref); dead {
		return false
	}
	s.index[h] = s.appendEntry(key, nil, true)
	return true
}

// Len reports live keys (scan-free approximation via index minus dead).
func (s *RAMCloudLike) Len() int {
	n := 0
	for _, ref := range s.index {
		if _, _, dead := s.entryAt(ref); !dead {
			n++
		}
	}
	return n
}

// LogBytes reports total appended bytes (log growth, pre-cleaning).
func (s *RAMCloudLike) LogBytes() int64 { return s.totalBytes }

// Segments reports the segment count.
func (s *RAMCloudLike) Segments() int { return len(s.segments) }
