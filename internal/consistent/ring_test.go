package consistent

import (
	"fmt"
	"testing"

	"hydradb/internal/hashx"
	"hydradb/internal/testutil"
)

func ids(n int) []uint32 {
	s := make([]uint32, n)
	for i := range s {
		s[i] = uint32(i + 1)
	}
	return s
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Fatal("empty ring built")
	}
	if _, err := Build([]uint32{1, 2, 1}, 0); err == nil {
		t.Fatal("duplicate shard accepted")
	}
}

func TestOwnerDeterministic(t *testing.T) {
	r1 := testutil.Must1(Build(ids(4), 64))
	r2 := testutil.Must1(Build(ids(4), 64))
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("user%08d", i))
		if r1.OwnerOfKey(key) != r2.OwnerOfKey(key) {
			t.Fatal("routing not deterministic across builds")
		}
	}
}

func TestOwnerCoversAllShards(t *testing.T) {
	r := testutil.Must1(Build(ids(8), 0))
	hit := map[uint32]int{}
	for i := 0; i < 100000; i++ {
		key := []byte(fmt.Sprintf("user%08d", i))
		hit[r.OwnerOfKey(key)]++
	}
	if len(hit) != 8 {
		t.Fatalf("only %d shards receive keys", len(hit))
	}
	// Balance: max/mean must stay sane with default vnodes.
	mean := 100000.0 / 8
	for s, n := range hit {
		ratio := float64(n) / mean
		if ratio > 1.35 || ratio < 0.65 {
			t.Fatalf("shard %d load ratio %.2f out of bounds", s, ratio)
		}
	}
}

func TestSingleShardOwnsEverything(t *testing.T) {
	r := testutil.Must1(Build([]uint32{7}, 16))
	for i := 0; i < 100; i++ {
		if r.Owner(hashx.Hash64(uint64(i))) != 7 {
			t.Fatal("single shard must own all keys")
		}
	}
}

func TestMinimalDisruptionOnGrow(t *testing.T) {
	// Adding one shard to n should move ~1/(n+1) of the space.
	rOld := testutil.Must1(Build(ids(7), 0))
	rNew := testutil.Must1(Build(ids(8), 0))
	moved := rOld.MovedArcs(rNew, 20000)
	want := 1.0 / 8
	if moved < want*0.5 || moved > want*1.8 {
		t.Fatalf("moved fraction %.3f, want ≈%.3f", moved, want)
	}
}

func TestMinimalDisruptionOnShardLoss(t *testing.T) {
	rOld := testutil.Must1(Build(ids(8), 0))
	// Drop shard 3.
	var rest []uint32
	for _, s := range ids(8) {
		if s != 3 {
			rest = append(rest, s)
		}
	}
	rNew := testutil.Must1(Build(rest, 0))
	// All keys previously NOT owned by 3 must keep their owner.
	for i := 0; i < 50000; i++ {
		h := hashx.Hash64(uint64(i) * 31)
		old := rOld.Owner(h)
		if old == 3 {
			continue
		}
		if rNew.Owner(h) != old {
			t.Fatalf("key moved between surviving shards: %d -> %d", old, rNew.Owner(h))
		}
	}
}

func TestWrapAround(t *testing.T) {
	r := testutil.Must1(Build(ids(3), 8))
	// A hash above the highest ring point must wrap to the first point.
	maxPt := r.points[len(r.points)-1].hash
	if maxPt != ^uint64(0) {
		owner := r.Owner(maxPt + 1)
		if owner != r.points[0].shard {
			t.Fatalf("wraparound owner %d, want %d", owner, r.points[0].shard)
		}
	}
}

func TestShardsCopy(t *testing.T) {
	r := testutil.Must1(Build(ids(3), 8))
	s := r.Shards()
	s[0] = 999
	if r.Shards()[0] == 999 {
		t.Fatal("Shards leaked internal slice")
	}
	if r.Size() != 3 {
		t.Fatalf("size = %d", r.Size())
	}
}

func BenchmarkOwner(b *testing.B) {
	r := testutil.Must1(Build(ids(28), 0)) // 7 machines x 4 shards
	hs := make([]uint64, 1024)
	for i := range hs {
		hs[i] = hashx.Hash64(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(hs[i&1023])
	}
}

// TestRingEdgeCases walks the reconfiguration corners the SWAT hits in
// production: shrinking to one shard, losing the final shard, and re-adding
// a shard after removal. Routing must be a pure function of the surviving
// shard-ID set — history (the order shards joined, or that one left and came
// back) must not leak into placement.
func TestRingEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		before []uint32
		after  []uint32
		// wantMoved bounds MovedArcs(before, after): exact 0 for identical
		// sets, and (lo, hi) for genuine reconfigurations.
		lo, hi float64
	}{
		{name: "re-add after removal restores routing exactly",
			before: []uint32{1, 2, 3}, after: []uint32{1, 2, 3}, lo: 0, hi: 0},
		{name: "join order does not matter",
			before: []uint32{1, 2, 3}, after: []uint32{3, 1, 2}, lo: 0, hi: 0},
		{name: "shrink to a single shard moves only the lost arcs",
			before: []uint32{1, 2}, after: []uint32{1}, lo: 0.2, hi: 0.8},
		{name: "remove one of three moves about a third",
			before: []uint32{1, 2, 3}, after: []uint32{1, 3}, lo: 0.15, hi: 0.55},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rb := testutil.Must1(Build(tc.before, 64))
			ra := testutil.Must1(Build(tc.after, 64))
			moved := rb.MovedArcs(ra, 8192)
			if moved < tc.lo || moved > tc.hi {
				t.Fatalf("MovedArcs = %.3f, want in [%.2f, %.2f]", moved, tc.lo, tc.hi)
			}
			// Keys moved off a removed shard must land on a survivor, and
			// keys that stay must not change owners.
			surviving := map[uint32]bool{}
			for _, s := range tc.after {
				surviving[s] = true
			}
			for i := 0; i < 2048; i++ {
				h := hashx.Hash64(uint64(i) * 0x633d5f1b8c6e92a7)
				ob, oa := rb.Owner(h), ra.Owner(h)
				if !surviving[oa] {
					t.Fatalf("hash %#x routed to dead shard %d", h, oa)
				}
				if surviving[ob] && oa != ob {
					t.Fatalf("hash %#x moved %d -> %d although %d survived", h, ob, oa, ob)
				}
			}
		})
	}
}

// TestRemoveLastShard pins the degenerate teardown path: a ring cannot go
// below one shard, and the one-shard ring owns the entire hash space.
func TestRemoveLastShard(t *testing.T) {
	if _, err := Build([]uint32{}, 64); err == nil {
		t.Fatal("zero-shard ring built")
	}
	r := testutil.Must1(Build([]uint32{7}, 1))
	for _, h := range []uint64{0, 1, 1 << 63, ^uint64(0)} {
		if got := r.Owner(h); got != 7 {
			t.Fatalf("Owner(%#x) = %d on single-shard ring", h, got)
		}
	}
}
