package consistent

import (
	"fmt"
	"testing"

	"hydradb/internal/testutil"
)

// Scale tests for the fleet simulator's routing substrate: the ring must
// stay balanced and move a bounded key fraction at the 100- and 1000-shard
// sizes the fleet scenarios run.

// TestScaleBalance checks load balance with default vnodes at fleet sizes:
// every shard owns keys, and the heaviest/lightest shard stays within a
// factor of the mean consistent with vnode variance.
func TestScaleBalance(t *testing.T) {
	const samples = 200_000
	for _, shards := range []int{100, 1000} {
		r := testutil.Must1(Build(ids(shards), 0))
		hit := map[uint32]int{}
		for i := 0; i < samples; i++ {
			hit[r.OwnerOfKey([]byte(fmt.Sprintf("u%011d", i)))]++
		}
		if len(hit) != shards {
			t.Fatalf("%d shards: only %d receive keys", shards, len(hit))
		}
		mean := float64(samples) / float64(shards)
		for id, n := range hit {
			if f := float64(n) / mean; f > 1.8 || f < 0.3 {
				t.Errorf("%d shards: shard %d holds %.2fx the mean load", shards, id, f)
			}
		}
	}
}

// TestScaleMovementFraction pins the consistent-hashing contract the
// routing-convergence scenario depends on: adding k shards to an n-shard
// ring moves roughly k/(n+k) of the keyspace — never a wholesale reshuffle.
func TestScaleMovementFraction(t *testing.T) {
	for _, tc := range []struct{ n, add int }{
		{100, 1}, {100, 8}, {1000, 10}, {1000, 50},
	} {
		before := testutil.Must1(Build(ids(tc.n), 0))
		after := testutil.Must1(Build(ids(tc.n+tc.add), 0))
		moved := before.MovedArcs(after, 16384)
		ideal := float64(tc.add) / float64(tc.n+tc.add)
		if moved < 0.25*ideal || moved > 3*ideal {
			t.Errorf("%d+%d shards: moved %.4f, want within [0.25, 3]x ideal %.4f",
				tc.n, tc.add, moved, ideal)
		}
	}
}

// TestScaleMonotoneOwnership is the convergence bound behind WrongShard
// rerouting: when shards are added, a key either keeps its owner or moves
// to one of the new shards — so a stale routing table only ever bounces a
// request toward keys that moved to NEW shards, and one table refresh
// converges the client (no churn among surviving shards).
func TestScaleMonotoneOwnership(t *testing.T) {
	for _, tc := range []struct{ n, add int }{{100, 8}, {1000, 50}} {
		before := testutil.Must1(Build(ids(tc.n), 0))
		after := testutil.Must1(Build(ids(tc.n+tc.add), 0))
		churned := 0
		const samples = 50_000
		for i := 0; i < samples; i++ {
			key := []byte(fmt.Sprintf("u%011d", i))
			oldO, newO := before.OwnerOfKey(key), after.OwnerOfKey(key)
			if oldO != newO && newO <= uint32(tc.n) {
				churned++
			}
		}
		if churned != 0 {
			t.Errorf("%d+%d shards: %d of %d keys churned between surviving shards",
				tc.n, tc.add, churned, samples)
		}
	}
}

// TestScaleCumulativeGrowth bounds total movement across incremental
// growth: growing 100 -> 120 one shard at a time moves no more per step
// than the single-step ideal allows, so rolling reconfigurations converge.
func TestScaleCumulativeGrowth(t *testing.T) {
	prev := testutil.Must1(Build(ids(100), 0))
	total := 0.0
	for n := 101; n <= 120; n++ {
		next := testutil.Must1(Build(ids(n), 0))
		moved := prev.MovedArcs(next, 8192)
		if ideal := 1.0 / float64(n); moved > 3*ideal {
			t.Errorf("step to %d shards moved %.4f > 3x ideal %.4f", n, moved, ideal)
		}
		total += moved
		prev = next
	}
	// Harmonic sum 1/101..1/120 is ~0.18; wholesale reshuffles would blow
	// far past this.
	if total > 0.6 {
		t.Errorf("cumulative movement %.3f over 20 steps, want < 0.6", total)
	}
}
