package invariant

// LockOrder is the module's declared lock-order DAG, consumed by hydralint's
// wait-cycle pass. Each inner slice is one level; nested acquisitions must
// move to a strictly later level, so any two locks ever held together have a
// fixed order and lock-lock wait cycles are impossible by construction.
//
// Keys are nominal — "<import path>.<Type>.<field>" — matching the identity
// the linter renders for a mutex operand, so the declaration survives
// renames of receiver variables but intentionally breaks (and must be
// updated) when a lock moves between types.
//
// The current code base holds at most one of these locks at a time (the
// wait-cycle pass verifies that no undeclared nesting exists either); the
// DAG records the order future nesting MUST follow — control-plane
// containers first, per-component control locks next, leaf bookkeeping
// last. Adding a lock to this table is a reviewed change, exactly like
// raising the suppression budget.
var LockOrder = [][]string{
	// Level 0 — cluster-scoped containers: own the component tables.
	{
		"hydradb/internal/cluster.Cluster.mu",
	},
	// Level 1 — membership, coordination, and namespace services. The DFS
	// namenode lock is coarse: Write holds it across block placement.
	{
		"hydradb/internal/swat.Team.mu",
		"hydradb/internal/coord.Server.mu",
		"hydradb/internal/dfs.NameNode.mu",
	},
	// Level 2 — per-component control planes (the DFS cluster lock guards
	// only the placement cursor, taken under the namenode lock).
	{
		"hydradb/internal/shard.Shard.mu",
		"hydradb/internal/shard.Pipelined.mu",
		"hydradb/internal/client.Renewer.mu",
		"hydradb/internal/rdma.Fabric.mu",
		"hydradb/internal/dfs.Cluster.mu",
		"hydradb/internal/dfs.CacheLayer.mu",
	},
	// Level 3 — leaf bookkeeping: never hold anything else across these.
	{
		"hydradb/internal/history.Recorder.mu",
		"hydradb/internal/chaos.Injector.mu",
		"hydradb/internal/dfs.DataNode.mu",
	},
}
