package main

import (
	"go/ast"
	"go/types"
)

// runAtomicWord flags operations that copy or alias values containing
// sync/atomic types. HydraDB's correctness story leans on guardian words
// and lease timestamps being touched only through atomic operations on the
// one true word (§4.2.3); a struct copy silently forks that word, and every
// subsequent CAS races against a ghost. The Go memory model makes the same
// point: atomics protect an address, not a value.
//
// Flagged, in internal/ packages:
//   - assignments whose right-hand side reads an existing variable, field,
//     or element whose type contains an atomic
//   - range statements binding such a value by copy
//   - function parameters, results, and receivers passing such a type by
//     value
//   - call arguments passing such a value by copy
//   - unsafe.Pointer conversions aliasing such a value
func runAtomicWord(p *Package, r *Reporter) {
	if !p.isInternal() {
		return
	}
	cache := map[types.Type]bool{}
	has := func(t types.Type) bool { return t != nil && containsAtomic(t, cache, nil) }
	// isCopyRead: e is a *value* read of an existing variable/field/element
	// (not a type expression like the argument of new(atomic.Int64)).
	isCopyRead := func(e ast.Expr) bool {
		if !isValueRead(e) {
			return false
		}
		tv, ok := p.Info.Types[e]
		return ok && tv.IsValue()
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if isCopyRead(rhs) && has(p.Info.TypeOf(rhs)) {
						r.report("atomic-word", rhs.Pos(),
							"assignment copies a value containing %s by value; keep a pointer instead (§4.2.3)",
							atomicDesc(p.Info.TypeOf(rhs), cache))
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && has(p.Info.TypeOf(n.Value)) {
					r.report("atomic-word", n.Value.Pos(),
						"range copies elements containing %s by value; range over indices or pointers (§4.2.3)",
						atomicDesc(p.Info.TypeOf(n.Value), cache))
				}
			case *ast.FuncDecl:
				checkFieldList(p, r, n.Recv, has, cache)
				checkFieldList(p, r, n.Type.Params, has, cache)
				checkFieldList(p, r, n.Type.Results, has, cache)
			case *ast.FuncLit:
				checkFieldList(p, r, n.Type.Params, has, cache)
				checkFieldList(p, r, n.Type.Results, has, cache)
			case *ast.CallExpr:
				if isUnsafePointerConv(p, n) {
					if arg := atomicAddrArg(p, n, has); arg != nil {
						r.report("atomic-word", n.Pos(),
							"unsafe.Pointer aliases a value containing %s; atomics protect an address, never alias it (§4.2.3)",
							atomicDesc(p.Info.TypeOf(arg), cache))
					}
					return true
				}
				if isConversion(p, n) {
					return true // conversions don't copy field-by-field semantics we care about beyond assignment
				}
				for _, arg := range n.Args {
					if isCopyRead(arg) && has(p.Info.TypeOf(arg)) {
						r.report("atomic-word", arg.Pos(),
							"call passes a value containing %s by value; pass a pointer (§4.2.3)",
							atomicDesc(p.Info.TypeOf(arg), cache))
					}
				}
			}
			return true
		})
	}
}

// checkFieldList flags by-value parameters/results/receivers whose type
// contains an atomic.
func checkFieldList(p *Package, r *Reporter, fl *ast.FieldList, has func(types.Type) bool, cache map[types.Type]bool) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if has(t) {
			r.report("atomic-word", field.Type.Pos(),
				"signature passes a value containing %s by value; use a pointer (§4.2.3)",
				atomicDesc(t, cache))
		}
	}
}

// isValueRead reports whether e reads an existing addressable value (as
// opposed to constructing a fresh one, taking an address, or calling). Only
// such reads are copies of a *shared* atomic word.
func isValueRead(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "_"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return isValueRead(e.X)
	}
	return false
}

func isConversion(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	return ok && tv.IsType()
}

func isUnsafePointerConv(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}

// atomicAddrArg returns the operand x when the call is unsafe.Pointer(&x)
// (possibly parenthesized) and x's type contains an atomic.
func atomicAddrArg(p *Package, call *ast.CallExpr, has func(types.Type) bool) ast.Expr {
	if len(call.Args) != 1 {
		return nil
	}
	arg := call.Args[0]
	for {
		if par, ok := arg.(*ast.ParenExpr); ok {
			arg = par.X
			continue
		}
		break
	}
	if un, ok := arg.(*ast.UnaryExpr); ok && un.Op.String() == "&" {
		if has(p.Info.TypeOf(un.X)) {
			return un.X
		}
	}
	return nil
}

// containsAtomic reports whether t embeds (transitively, through struct
// fields and array elements) any named type from sync/atomic. path, when
// non-nil, accumulates the field chain for diagnostics.
func containsAtomic(t types.Type, cache map[types.Type]bool, path *[]string) bool {
	if v, ok := cache[t]; ok && path == nil {
		return v
	}
	res := containsAtomicUncached(t, cache, path)
	cache[t] = res
	return res
}

func containsAtomicUncached(t types.Type, cache map[types.Type]bool, path *[]string) bool {
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			if path != nil {
				*path = append(*path, "atomic."+obj.Name())
			}
			return true
		}
		// Guard recursive types: mark in-progress as false; a type cannot
		// contain itself by value anyway.
		cache[t] = false
		return containsAtomic(named.Underlying(), cache, path)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic(u.Field(i).Type(), cache, path) {
				if path != nil {
					*path = append(*path, u.Field(i).Name())
				}
				return true
			}
		}
	case *types.Array:
		return containsAtomic(u.Elem(), cache, path)
	}
	return false
}

// atomicDesc names the atomic type buried in t, e.g. "atomic.Uint64".
func atomicDesc(t types.Type, cache map[types.Type]bool) string {
	if t == nil {
		return "an atomic"
	}
	var path []string
	if !containsAtomic(t, map[types.Type]bool{}, &path) || len(path) == 0 {
		return "an atomic"
	}
	return path[0]
}
