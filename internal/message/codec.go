// Package message defines HydraDB's wire formats: the request/response
// codecs exchanged between clients and shards, and the indicator-
// encapsulated mailbox protocol used to pass them over one-sided RDMA Writes
// with sustained polling (paper §4.2.1).
package message

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hydradb/internal/kv"
)

// Op identifies a request type.
type Op uint8

// Request operations. The server handles all writes (§4.2): INSERT/UPDATE
// arrive as OpPut, and OpGet is the server-aware GET that returns a remote
// pointer + lease enabling later RDMA Reads.
const (
	OpGet Op = iota + 1
	OpPut
	OpDelete
	OpRenewLease
	// OpMigrate carries an item during rebalancing/failover (SWAT-driven).
	OpMigrate
)

// String names the op for diagnostics.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DELETE"
	case OpRenewLease:
		return "RENEW"
	case OpMigrate:
		return "MIGRATE"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Status reports the outcome of a request.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	StatusWrongShard // routing epoch stale: client must refresh and retry
	StatusError
)

// ErrMalformed reports an undecodable message.
var ErrMalformed = errors.New("message: malformed")

// Request is a client-to-shard message.
type Request struct {
	Op    Op
	Seq   uint32
	Epoch uint32 // routing epoch the client used; shard rejects stale epochs
	Key   []byte
	Val   []byte
}

const reqHeader = 1 + 1 + 4 + 4 + 2 + 4 // op, pad, seq, epoch, keyLen, valLen

// EncodedSize reports the wire size of the request.
func (r *Request) EncodedSize() int { return reqHeader + len(r.Key) + len(r.Val) }

// EncodeTo writes the request into buf, returning bytes written.
// buf must hold EncodedSize() bytes.
func (r *Request) EncodeTo(buf []byte) int {
	buf[0] = byte(r.Op)
	buf[1] = 0
	binary.LittleEndian.PutUint32(buf[2:6], r.Seq)
	binary.LittleEndian.PutUint32(buf[6:10], r.Epoch)
	binary.LittleEndian.PutUint16(buf[10:12], uint16(len(r.Key)))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(r.Val)))
	n := copy(buf[reqHeader:], r.Key)
	copy(buf[reqHeader+n:], r.Val)
	return r.EncodedSize()
}

// DecodeRequest parses buf. Key and Val alias buf.
func DecodeRequest(buf []byte) (Request, error) {
	if len(buf) < reqHeader {
		return Request{}, ErrMalformed
	}
	r := Request{
		Op:    Op(buf[0]),
		Seq:   binary.LittleEndian.Uint32(buf[2:6]),
		Epoch: binary.LittleEndian.Uint32(buf[6:10]),
	}
	keyLen := int(binary.LittleEndian.Uint16(buf[10:12]))
	valLen := int(binary.LittleEndian.Uint32(buf[12:16]))
	if reqHeader+keyLen+valLen > len(buf) || r.Op < OpGet || r.Op > OpMigrate {
		return Request{}, ErrMalformed
	}
	r.Key = buf[reqHeader : reqHeader+keyLen]
	r.Val = buf[reqHeader+keyLen : reqHeader+keyLen+valLen]
	return r, nil
}

// Response is a shard-to-client message.
type Response struct {
	Status   Status
	Existed  bool // for PUT: true when an existing key was updated
	Seq      uint32
	Epoch    uint32 // shard's current routing epoch (lets clients refresh)
	LeaseExp int64
	Ptr      kv.RemotePtr
	Val      []byte
}

const respHeader = 1 + 1 + 4 + 4 + 8 + 16 + 4 // status, flags, seq, epoch, lease, ptr, valLen

// EncodedSize reports the wire size of the response.
func (r *Response) EncodedSize() int { return respHeader + len(r.Val) }

// EncodeTo writes the response into buf, returning bytes written.
func (r *Response) EncodeTo(buf []byte) int {
	buf[0] = byte(r.Status)
	flags := byte(0)
	if r.Existed {
		flags |= 1
	}
	buf[1] = flags
	binary.LittleEndian.PutUint32(buf[2:6], r.Seq)
	binary.LittleEndian.PutUint32(buf[6:10], r.Epoch)
	binary.LittleEndian.PutUint64(buf[10:18], uint64(r.LeaseExp))
	binary.LittleEndian.PutUint32(buf[18:22], r.Ptr.ShardID)
	binary.LittleEndian.PutUint32(buf[22:26], r.Ptr.DataOff)
	binary.LittleEndian.PutUint32(buf[26:30], r.Ptr.DataLen)
	binary.LittleEndian.PutUint32(buf[30:34], r.Ptr.MetaIdx)
	binary.LittleEndian.PutUint32(buf[34:38], uint32(len(r.Val)))
	copy(buf[respHeader:], r.Val)
	return r.EncodedSize()
}

// DecodeResponse parses buf. Val aliases buf.
func DecodeResponse(buf []byte) (Response, error) {
	if len(buf) < respHeader {
		return Response{}, ErrMalformed
	}
	r := Response{
		Status:   Status(buf[0]),
		Existed:  buf[1]&1 != 0,
		Seq:      binary.LittleEndian.Uint32(buf[2:6]),
		Epoch:    binary.LittleEndian.Uint32(buf[6:10]),
		LeaseExp: int64(binary.LittleEndian.Uint64(buf[10:18])),
		Ptr: kv.RemotePtr{
			ShardID: binary.LittleEndian.Uint32(buf[18:22]),
			DataOff: binary.LittleEndian.Uint32(buf[22:26]),
			DataLen: binary.LittleEndian.Uint32(buf[26:30]),
			MetaIdx: binary.LittleEndian.Uint32(buf[30:34]),
		},
	}
	valLen := int(binary.LittleEndian.Uint32(buf[34:38]))
	if respHeader+valLen > len(buf) || r.Status < StatusOK || r.Status > StatusError {
		return Response{}, ErrMalformed
	}
	r.Val = buf[respHeader : respHeader+valLen]
	return r, nil
}
