// Command hydramc is HydraDB's exhaustive interleaving checker: it runs
// small models of the lock-free protocols — built on the real
// internal/kv, internal/lease, internal/message and internal/replication
// code — under every thread interleaving up to a bound, asserting the
// invariants of DESIGN.md §9.
//
//	hydramc -list                  enumerate models
//	hydramc -all                   explore every model, then self-test that
//	                               each model's seeded bug is caught
//	hydramc -model mailbox         explore one model
//	hydramc -model mailbox -bug    explore with the seeded protocol bug;
//	                               prints the violating schedule and exits 1
//	hydramc -model mailbox -bug -replay 1,0,2,...
//	                               deterministically re-execute one schedule
//	hydramc -fine ...              word-granularity interleaving (requires a
//	                               -tags hydradebug build)
//	hydramc -footprints            print each model's Footprint as generated
//	                               from the protocolspec.Spec declarations
//	                               (with its SchedPoint hook skeleton) and
//	                               diff it against footprint.go; exits 1 on
//	                               any drift
//
// Exit status: 0 clean, 1 invariant violation (or a seeded bug the checker
// failed to catch), 2 usage or environment error.
package main

import (
	"flag"
	"fmt"
	"os"

	"hydradb/internal/modelcheck"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hydramc", flag.ContinueOnError)
	var (
		list         = fs.Bool("list", false, "list models and exit")
		all          = fs.Bool("all", false, "explore every model, then self-test the seeded bugs")
		model        = fs.String("model", "", "explore a single model by name")
		bug          = fs.Bool("bug", false, "arm the model's seeded protocol bug")
		replay       = fs.String("replay", "", "re-execute one comma-separated schedule (with -model)")
		maxSteps     = fs.Int("maxsteps", 0, "max steps per schedule (0 = default)")
		maxSchedules = fs.Int("maxschedules", 0, "max schedules per exploration (0 = default)")
		fine         = fs.Bool("fine", false, "word-granularity interleaving (needs -tags hydradebug)")
		footprints   = fs.Bool("footprints", false, "print spec-generated model footprints and diff them against footprint.go")
		verbose      = fs.Bool("v", false, "print per-exploration detail")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fine && !modelcheck.FineAvailable {
		fmt.Fprintln(os.Stderr, "hydramc: -fine needs word-level yield points; rebuild with -tags hydradebug")
		return 2
	}
	opts := modelcheck.Options{MaxSteps: *maxSteps, MaxSchedules: *maxSchedules, Fine: *fine}

	switch {
	case *list:
		for _, m := range modelcheck.Models() {
			fmt.Printf("%-12s %s\n", m.Name, m.Desc)
			fmt.Printf("%-12s seeded bug: %s\n", "", m.Bug)
		}
		return 0

	case *replay != "":
		if *model == "" {
			fmt.Fprintln(os.Stderr, "hydramc: -replay needs -model")
			return 2
		}
		m, ok := modelcheck.Lookup(*model)
		if !ok {
			fmt.Fprintf(os.Stderr, "hydramc: unknown model %q (try -list)\n", *model)
			return 2
		}
		sched, err := modelcheck.ParseSchedule(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydramc: %v\n", err)
			return 2
		}
		res, trace := modelcheck.Replay(m, *bug, sched, opts)
		for i, s := range trace {
			fmt.Printf("  step %2d  %s\n", i, s)
		}
		if res.Violation != nil {
			fmt.Printf("%s: %s", m.Name, res.Violation)
			return 1
		}
		fmt.Printf("%s: schedule replayed, no violation\n", m.Name)
		return 0

	case *model != "":
		m, ok := modelcheck.Lookup(*model)
		if !ok {
			fmt.Fprintf(os.Stderr, "hydramc: unknown model %q (try -list)\n", *model)
			return 2
		}
		return report(m, modelcheck.Explore(m, *bug, opts), *bug, *verbose)

	case *footprints:
		// The generation half of the lint <-> model-checker loop: derive
		// every model footprint from the protocolspec.Spec declarations,
		// print it with its SchedPoint hook skeleton, and diff against the
		// hand-written footprint.go table. Any drift is a loud exit 1 —
		// the same agreement TestGeneratedFootprintsMatchHandWritten pins.
		gen := modelcheck.GeneratedFootprints()
		hand := modelcheck.Footprints()
		drift := 0
		for _, fp := range gen {
			fmt.Printf("%s\n", modelcheck.RenderFootprint(fp))
			for _, hook := range modelcheck.SchedSkeleton(fp) {
				fmt.Printf("    %s\n", hook)
			}
		}
		if len(gen) != len(hand) {
			fmt.Printf("DRIFT: specs generate %d footprints, footprint.go declares %d\n", len(gen), len(hand))
			drift++
		} else {
			for i := range gen {
				g, h := modelcheck.RenderFootprint(gen[i]), modelcheck.RenderFootprint(hand[i])
				if g != h {
					fmt.Printf("DRIFT at footprint %d:\n  generated:    %s\n  hand-written: %s\n", i, g, h)
					drift++
				}
			}
		}
		if drift > 0 {
			fmt.Printf("hydramc: %d footprint(s) drifted from the specs; update footprint.go or the owning spec\n", drift)
			return 1
		}
		fmt.Printf("hydramc: %d footprints match the spec-generated table\n", len(gen))
		return 0

	case *all:
		worst := 0
		for _, m := range modelcheck.Models() {
			if rc := report(m, modelcheck.Explore(m, false, opts), false, *verbose); rc > worst {
				worst = rc
			}
			// Self-test: the checker must catch the model's seeded bug —
			// the analogue of hydralint's fixture self-tests.
			selfRes := modelcheck.Explore(m, true, opts)
			if selfRes.Violation == nil {
				fmt.Printf("%-12s SELF-TEST FAILED: seeded bug went undetected (%s) after %d schedules\n",
					m.Name, m.Bug, selfRes.Schedules)
				worst = 1
				continue
			}
			fmt.Printf("%-12s self-test ok: seeded bug caught after %d schedules (%s)\n",
				m.Name, selfRes.Schedules, firstLine(selfRes.Violation.Msg))
		}
		return worst

	default:
		fs.Usage()
		return 2
	}
}

// report prints one exploration result. When the seeded bug was armed
// explicitly, finding the violation is the expected loud failure: the full
// trace and replay line are printed and the exit status is 1.
func report(m modelcheck.Model, res modelcheck.Result, bugArmed, verbose bool) int {
	status := "ok"
	if res.Truncated {
		status = "ok (bounded)"
	}
	if res.Violation != nil {
		fmt.Printf("%-12s schedules=%d steps=%d VIOLATION\n", m.Name, res.Schedules, res.Steps)
		fmt.Printf("%s", res.Violation)
		fmt.Printf("  reproduce: hydramc -model %s%s -replay %s\n",
			m.Name, bugFlag(bugArmed), scheduleCSV(res.Violation.Schedule))
		return 1
	}
	fmt.Printf("%-12s schedules=%d steps=%d %s\n", m.Name, res.Schedules, res.Steps, status)
	if verbose && res.Truncated {
		fmt.Printf("%-12s note: exploration hit a bound; raise -maxsteps/-maxschedules for full coverage\n", "")
	}
	return 0
}

func bugFlag(armed bool) string {
	if armed {
		return " -bug"
	}
	return ""
}

func scheduleCSV(s []int) string {
	out := ""
	for i, c := range s {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d", c)
	}
	return out
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
