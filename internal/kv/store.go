package kv

import (
	"bytes"
	"fmt"
	"runtime"
	"sync/atomic"

	"hydradb/internal/arena"
	"hydradb/internal/hashtable"
	"hydradb/internal/hashx"
	"hydradb/internal/invariant"
	"hydradb/internal/lease"
	"hydradb/internal/stats"
	"hydradb/internal/timing"
)

// Config sizes a Store.
type Config struct {
	// ArenaBytes is the byte capacity of the item region.
	ArenaBytes int
	// MaxItems bounds live + pending-reclaim items (slab and word area size).
	MaxItems int
	// Buckets is the main-branch size of the hash table; defaults to
	// MaxItems/4 (≈4 entries across 7 slots).
	Buckets int
	// Policy is the lease policy; zero value selects lease.DefaultPolicy.
	Policy lease.Policy
	// Clock supplies time; required.
	Clock timing.Clock
	// Counters, when non-nil, receives operation accounting.
	Counters *stats.OpCounters
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.ArenaBytes == 0 {
		cfg.ArenaBytes = 64 << 20
	}
	if cfg.MaxItems == 0 {
		cfg.MaxItems = 1 << 20
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = cfg.MaxItems / 4
		if cfg.Buckets < 8 {
			cfg.Buckets = 8
		}
	}
	if cfg.Policy == (lease.Policy{}) {
		cfg.Policy = lease.DefaultPolicy()
	}
	if cfg.Clock == nil {
		panic("kv: Config.Clock is required")
	}
	if cfg.Counters == nil {
		cfg.Counters = &stats.OpCounters{}
	}
	return cfg
}

type itemRecord struct {
	dataOff uint32
	dataLen uint32
	metaIdx uint32
	access  uint32 // popularity counter, lazily decayed
	epoch   uint32 // decay epoch of the last access
	hash    uint64 // cached key hashcode
}

type reclaimEntry struct {
	due int64
	ref uint64
}

// Store is the single-shard key-value store.
type Store struct {
	cfg    Config
	arena  *arena.Arena
	words  *arena.WordArea
	table  *hashtable.Table
	items  []itemRecord
	free   []uint64
	nextIt uint64

	reclaim reclaimHeap

	// pub holds one publication word per item record (indexed ref-1): the
	// packed arena-offset + meta-index of a published item, zero otherwise
	// (see probe.go). It is the only item metadata the read plane may trust.
	pub []atomic.Uint64
	// gate, when attached, defers reclamation while a probe section is open.
	gate *ReadGate

	probeKey []byte
	match    hashtable.MatchFunc

	clock  timing.Clock
	policy lease.Policy
	ctr    *stats.OpCounters
}

// NewStore creates a store from cfg.
func NewStore(cfg Config) *Store {
	c := cfg.withDefaults()
	s := &Store{
		cfg:    c,
		arena:  arena.New(c.ArenaBytes),
		words:  arena.NewWordArea(c.MaxItems, MetaWordsPerItem),
		table:  hashtable.New(c.Buckets),
		items:  make([]itemRecord, 0, minInt(c.MaxItems, 1<<16)),
		pub:    make([]atomic.Uint64, c.MaxItems),
		clock:  c.Clock,
		policy: c.Policy,
		ctr:    c.Counters,
		nextIt: 1,
	}
	s.match = func(ref uint64) bool {
		rec := &s.items[ref-1]
		data := s.arena.Bytes(rec.dataOff, int(rec.dataLen))
		k, _, ok := DecodeItem(data)
		return ok && bytes.Equal(k, s.probeKey)
	}
	if invariant.Enabled {
		// Guardian words occupy the even slot of every item word group and
		// only ever hold GuardianLive, GuardianDead, or zero (fresh group).
		// Any other value crossing the fabric is a torn or misdirected write.
		s.words.SetValidator(func(idx int, v uint64) {
			if idx%MetaWordsPerItem == 0 && v != GuardianLive && v != GuardianDead {
				panic(fmt.Sprintf("kv: guardian word %d holds invalid value %#x", idx, v))
			}
		})
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Len reports the number of live items.
func (s *Store) Len() int { return s.table.Len() }

// PendingReclaims reports detached items waiting for lease expiry.
func (s *Store) PendingReclaims() int { return len(s.reclaim) }

// ArenaLive reports allocated arena bytes (including pending reclaims).
func (s *Store) ArenaLive() int { return s.arena.Live() }

// Table exposes the hash table for instrumentation (benchmarks only).
func (s *Store) Table() *hashtable.Table { return s.table }

// ArenaData exposes the raw region for NIC registration.
func (s *Store) ArenaData() []byte { return s.arena.Data() }

// Words exposes the metadata word area for NIC registration.
func (s *Store) Words() *arena.WordArea { return s.words }

func (s *Store) allocRecord() (uint64, error) {
	if n := len(s.free); n > 0 {
		ref := s.free[n-1]
		s.free = s.free[:n-1]
		return ref, nil
	}
	if int(s.nextIt) > s.cfg.MaxItems {
		return 0, ErrStoreFull
	}
	s.items = append(s.items, itemRecord{})
	ref := s.nextIt
	s.nextIt++
	return ref, nil
}

func (s *Store) freeRecord(ref uint64) {
	// Retract the publication word first: once the record is on the free
	// list the next Put may repopulate it, and a probe must never decode a
	// half-recycled word. (Probes can no longer hold this ref — the gate
	// was quiescent after the detach — this ordering is belt-and-braces.)
	s.pub[ref-1].Store(0)
	s.items[ref-1] = itemRecord{}
	s.free = append(s.free, ref)
}

// touch updates popularity and lease of a live item and returns the lease
// expiry.
func (s *Store) touch(rec *itemRecord, now int64) int64 {
	ep := s.policy.Epoch(now)
	rec.access = lease.Decay(rec.access, rec.epoch, ep)
	rec.epoch = ep
	if rec.access < ^uint32(0) {
		rec.access++
	}
	leaseIdx := int(rec.metaIdx) + 1
	cur := int64(s.words.Load(leaseIdx))
	exp := s.policy.Extend(cur, now, rec.access)
	if exp != cur {
		s.words.Store(leaseIdx, uint64(exp))
	}
	return exp
}

func (s *Store) remotePtr(rec *itemRecord) RemotePtr {
	return RemotePtr{DataOff: rec.dataOff, DataLen: rec.dataLen, MetaIdx: rec.metaIdx}
}

// GetResult carries everything a server-aware GET returns to the client:
// the value plus the remote pointer + lease that enable future RDMA Reads.
type GetResult struct {
	Value    []byte // aliases the arena; copy before the next store mutation
	Ptr      RemotePtr
	LeaseExp int64
}

// Get performs a server-aware GET: looks the key up through the compact hash
// table, bumps popularity, extends the lease, and returns value + remote
// pointer (§4.2.2). The returned value aliases arena memory.
//
// hydralint:hotpath
func (s *Store) Get(key []byte) (GetResult, bool) {
	s.ctr.Gets.Inc()
	h := hashx.Hash(key)
	s.probeKey = key
	ref, ok := s.table.Lookup(h, s.match)
	if !ok {
		return GetResult{}, false
	}
	rec := &s.items[ref-1]
	now := s.clock.Now()
	exp := s.touch(rec, now)
	data := s.arena.Bytes(rec.dataOff, int(rec.dataLen))
	_, val, _ := DecodeItem(data)
	return GetResult{Value: val, Ptr: s.remotePtr(rec), LeaseExp: exp}, true
}

// Put inserts or updates a key. Updates are strictly out-of-place: a new
// area + fresh guardian/lease words are populated first, then the hash table
// slot is flipped to the new reference, then the old item's guardian is
// flipped and its area queued for reclamation at lease expiry (§4.2.3).
func (s *Store) Put(key, val []byte) (GetResult, bool, error) {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return GetResult{}, false, ErrKeyTooLarge
	}
	if len(val) > MaxValLen {
		return GetResult{}, false, ErrValTooLarge
	}
	size := ItemSize(len(key), len(val))
	now := s.clock.Now()

	dataOff, metaIdx, ref, err := s.allocItem(size, now)
	if err != nil {
		return GetResult{}, false, err
	}
	// Populate everything — payload bytes, then the lease word — before the
	// guardian store publishes the item: a remote Read that wins the race
	// against PUT must observe either no item or a fully formed one (§4.2.3).
	EncodeItem(s.arena.Bytes(dataOff, size), key, val)
	s.words.Store(metaIdx+1, uint64(now+s.policy.Term(0)))
	// The publication word goes in before the guardian: read-plane probes
	// validate pub → guardian, and the item only becomes reachable at the
	// table flip below, so no probe can see a Live guardian behind a zero
	// publication word.
	s.pub[ref-1].Store(pubVal(dataOff, metaIdx))
	s.words.Store(metaIdx, GuardianLive)

	rec := &s.items[ref-1]
	h := hashx.Hash(key)
	*rec = itemRecord{
		dataOff: dataOff,
		dataLen: uint32(size),
		metaIdx: uint32(metaIdx),
		epoch:   s.policy.Epoch(now),
		hash:    h,
	}

	s.probeKey = key
	oldRef, replaced, err := s.table.Insert(h, ref, s.match)
	if err != nil {
		// Reference overflow cannot happen with slab-bounded refs, but roll
		// back defensively — and retract the guardian before recycling the
		// memory, so a racing remote Read of the just-published item cannot
		// validate against a zeroed (hence Live-looking) recycled group.
		s.words.Store(metaIdx, GuardianDead)
		s.arena.Free(dataOff, size)
		s.words.FreeGroup(metaIdx)
		s.freeRecord(ref)
		return GetResult{}, false, err
	}
	if replaced {
		s.ctr.Updates.Inc()
		old := &s.items[oldRef-1]
		// Popularity belongs to the key: carry it over.
		rec.access = old.access
		rec.epoch = old.epoch
		s.detach(oldRef, now)
	} else {
		s.ctr.Inserts.Inc()
	}
	exp := s.touch(rec, now)
	return GetResult{Ptr: s.remotePtr(rec), LeaseExp: exp}, replaced, nil
}

// allocItem reserves arena space, a word group and an item record, running a
// reclamation pass and retrying once when any of them is exhausted.
func (s *Store) allocItem(size int, now int64) (dataOff uint32, metaIdx int, ref uint64, err error) {
	for attempt := 0; ; attempt++ {
		dataOff, err = s.arena.Alloc(size)
		if err == nil {
			metaIdx, err = s.words.AllocGroup()
			if err == nil {
				ref, err = s.allocRecord()
				if err == nil {
					return dataOff, metaIdx, ref, nil
				}
				s.words.FreeGroup(metaIdx)
			}
			s.arena.Free(dataOff, size)
		}
		if attempt > 0 {
			return 0, 0, 0, ErrStoreFull
		}
		// Force-expire nothing; only collect entries already due. If nothing
		// was due, give up: leases guard client RDMA Reads and must not be
		// broken to satisfy allocation. Under memory pressure it is worth
		// waiting a few scheduler yields for probe sections to quiesce
		// rather than reporting a spurious ErrStoreFull.
		if s.reclaimDue(128) == 0 {
			return 0, 0, 0, ErrStoreFull
		}
	}
}

// detach flips the guardian of a replaced/deleted item and schedules its
// memory for reclamation after the lease runs out.
func (s *Store) detach(ref uint64, now int64) {
	rec := &s.items[ref-1]
	s.words.Store(int(rec.metaIdx), GuardianDead)
	exp := int64(s.words.Load(int(rec.metaIdx) + 1))
	s.reclaim.push(reclaimEntry{due: s.policy.ReclaimAt(exp, now), ref: ref})
}

// Delete removes a key. The memory is reclaimed after lease expiry.
func (s *Store) Delete(key []byte) bool {
	s.ctr.Deletes.Inc()
	h := hashx.Hash(key)
	s.probeKey = key
	ref, ok := s.table.Delete(h, s.match)
	if !ok {
		return false
	}
	s.detach(ref, s.clock.Now())
	return true
}

// RenewLease extends the lease of a live key (client-driven renewal,
// §4.2.3). It fails for absent or outdated keys, preventing outdated leases
// from being extended.
func (s *Store) RenewLease(key []byte) (int64, bool) {
	h := hashx.Hash(key)
	s.probeKey = key
	ref, ok := s.table.Lookup(h, s.match)
	if !ok {
		s.ctr.LeaseRejects.Inc()
		return 0, false
	}
	s.ctr.LeaseRenewals.Inc()
	rec := &s.items[ref-1]
	return s.touch(rec, s.clock.Now()), true
}

// ReclaimDue frees every detached item whose lease (plus grace) has expired.
// The live shard loop calls this periodically; it is the amortised
// equivalent of the paper's background reclamation thread.
//
// With a read gate attached, the whole pass is deferred (returns 0) while
// any probe section is open: a section can hold references that were
// detached before it began, and freeing under it would tear the probe
// (readgate.go). Sections last one probe, so deferral is momentary.
func (s *Store) ReclaimDue() int {
	return s.reclaimDue(0)
}

// reclaimDue runs the free pass, spinning up to quiescePolls scheduler
// yields for the gate to quiesce before giving up. The periodic path passes
// 0 (never block the fallback servicing loop); the allocation-pressure path
// waits briefly because the alternative is a spurious ErrStoreFull.
func (s *Store) reclaimDue(quiescePolls int) int {
	now := s.clock.Now()
	if len(s.reclaim) == 0 || s.reclaim[0].due > now {
		return 0
	}
	if s.gate != nil && !s.gate.Quiescent() {
		// Readers close their section before blocking on the fallback
		// handoff this goroutine services, so Gosched here cannot deadlock.
		for i := 0; ; i++ {
			if i >= quiescePolls {
				return 0 // deferred; the next periodic pass retries
			}
			runtime.Gosched()
			if s.gate.Quiescent() {
				break
			}
		}
	}
	n := 0
	for len(s.reclaim) > 0 && s.reclaim[0].due <= now {
		e := s.reclaim.pop()
		rec := &s.items[e.ref-1]
		s.arena.Free(rec.dataOff, int(rec.dataLen))
		s.words.FreeGroup(int(rec.metaIdx))
		s.freeRecord(e.ref)
		n++
	}
	if n > 0 {
		s.ctr.Reclaims.Add(int64(n))
	}
	return n
}

// NextReclaimDue reports when the earliest pending reclaim becomes due, or
// false when none is queued.
func (s *Store) NextReclaimDue() (int64, bool) {
	if len(s.reclaim) == 0 {
		return 0, false
	}
	return s.reclaim[0].due, true
}

// Range iterates over live items, passing arena-aliasing key/value views.
func (s *Store) Range(fn func(key, val []byte) bool) {
	s.table.Range(func(ref uint64) bool {
		rec := &s.items[ref-1]
		data := s.arena.Bytes(rec.dataOff, int(rec.dataLen))
		k, v, ok := DecodeItem(data)
		if !ok {
			return true
		}
		return fn(k, v)
	})
}

// Guardian returns the guardian word of an item by meta index — test and
// simulation hook for validating client-visible state.
func (s *Store) Guardian(metaIdx uint32) uint64 { return s.words.Load(int(metaIdx)) }

// Lease returns the lease expiry word of an item by meta index.
func (s *Store) Lease(metaIdx uint32) int64 { return int64(s.words.Load(int(metaIdx) + 1)) }

// ReadAt simulates the data plane of a one-sided RDMA Read against this
// store's region: it copies the item bytes and atomically loads guardian and
// lease. The caller (fabric or DES actor) charges the latency; no shard CPU
// is involved, mirroring §4.2.2.
func (s *Store) ReadAt(p RemotePtr, dst []byte) (n int, guardian uint64, leaseExp int64, err error) {
	end := int(p.DataOff) + int(p.DataLen)
	if end > s.arena.Capacity() || int(p.MetaIdx)+1 >= s.words.Len() {
		return 0, 0, 0, fmt.Errorf("kv: remote pointer out of range: %v", p)
	}
	// Slice the raw region rather than arena.Bytes: a stale remote pointer
	// may legitimately land on recycled memory (the guardian word catches
	// it), so the hydradebug use-after-free canary must not fire here.
	n = copy(dst, s.arena.Data()[p.DataOff:end])
	guardian = s.words.Load(int(p.MetaIdx))
	leaseExp = int64(s.words.Load(int(p.MetaIdx) + 1))
	return n, guardian, leaseExp, nil
}

// reclaimHeap is a binary min-heap on due time.
type reclaimHeap []reclaimEntry

func (h *reclaimHeap) push(e reclaimEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].due <= (*h)[i].due {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *reclaimHeap) pop() reclaimEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h)[l].due < (*h)[smallest].due {
			smallest = l
		}
		if r < n && (*h)[r].due < (*h)[smallest].due {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
