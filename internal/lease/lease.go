// Package lease implements HydraDB's lease-based deferred memory reclamation
// policy (paper §4.2.3, elaborated in the authors' C-Hint work [31]).
//
// A lease is an agreement between server and clients that an item's memory
// area remains valid for RDMA Read until the lease expires. Every
// server-aware GET extends the lease by a term between 1 and 64 seconds,
// scaled by the approximate popularity the server observes for the key.
// Clients renew leases for keys they deem popular; updates and removals flip
// the guardian word and stop further extension, and the area is reclaimed
// only after the (possibly already granted) lease has run out plus a grace
// window covering clock skew.
package lease

import "math/bits"

// Policy computes lease terms. The zero value is not useful; use
// DefaultPolicy or fill every field.
type Policy struct {
	// BaseTermNs is the term granted to an unpopular key (paper: 1 s).
	BaseTermNs int64
	// MaxShift bounds the popularity scaling: term = Base << min(level,
	// MaxShift) (paper: 64 s = 1 s << 6).
	MaxShift uint8
	// GraceNs is added after expiry before memory is recycled, absorbing
	// client/server clock skew.
	GraceNs int64
	// DecayEpochNs is the width of the popularity half-life epoch: access
	// counts are halved once per elapsed epoch, lazily at touch time.
	DecayEpochNs int64
}

// DefaultPolicy mirrors the paper's parameters, with a 100 ms grace and a
// 10 s popularity half-life.
func DefaultPolicy() Policy {
	return Policy{
		BaseTermNs:   1e9,
		MaxShift:     6,
		GraceNs:      100e6,
		DecayEpochNs: 10e9,
	}
}

// Level maps an access count to a popularity level 0..MaxShift.
func (p Policy) Level(accessCount uint32) uint8 {
	lvl := uint8(bits.Len32(accessCount)) // 0 for 0, 1 for 1, 2 for 2-3, ...
	if lvl > 0 {
		lvl--
	}
	if lvl > p.MaxShift {
		lvl = p.MaxShift
	}
	return lvl
}

// Term returns the lease duration for a key with the given access count.
func (p Policy) Term(accessCount uint32) int64 {
	return p.BaseTermNs << p.Level(accessCount)
}

// Extend computes the new expiry for a lease currently expiring at cur when
// touched at now by a key with the given access count. Leases never shrink.
func (p Policy) Extend(cur, now int64, accessCount uint32) int64 {
	exp := now + p.Term(accessCount)
	if exp < cur {
		return cur
	}
	return exp
}

// ReclaimAt returns the earliest time the memory of an item whose lease
// expires at exp may be recycled.
func (p Policy) ReclaimAt(exp, now int64) int64 {
	at := exp + p.GraceNs
	if min := now + p.GraceNs; at < min {
		at = min
	}
	return at
}

// Epoch returns the popularity decay epoch for time now.
func (p Policy) Epoch(now int64) uint32 {
	if p.DecayEpochNs <= 0 {
		return 0
	}
	return uint32(now / p.DecayEpochNs)
}

// Decay applies the lazy halving: count recorded at epoch `then`, observed at
// epoch `cur`. The subtraction is modular: the epoch counter is a uint32 that
// wraps around, and a wrapped cur must still read as "after" then — comparing
// with <= instead would freeze popularity for a whole counter period after
// the wrap. A backwards epoch step (cannot happen with a monotonic clock)
// lands in the >= 32 branch and zeroes the count, which errs on the safe
// side: an unpopular key just gets the base lease term.
func Decay(count uint32, then, cur uint32) uint32 {
	shift := cur - then
	if shift == 0 {
		return count
	}
	if shift >= 32 {
		return 0
	}
	return count >> shift
}

// ValidForRead reports whether a client holding a lease expiring at exp may
// issue an RDMA Read at time now. A safety margin keeps the client from
// racing reclamation right at the boundary.
func ValidForRead(exp, now, marginNs int64) bool {
	return now+marginNs < exp
}
