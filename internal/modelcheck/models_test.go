package modelcheck

import (
	"testing"
)

// TestModelsExploreClean is the positive half of the protocol proofs: every
// registered model, run without its seeded bug, survives exhaustive
// exploration of its interleaving space.
func TestModelsExploreClean(t *testing.T) {
	for _, m := range Models() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			res := Explore(m, false, Options{})
			if res.Violation != nil {
				t.Fatalf("clean %s model violated its invariant:\n%s", m.Name, res.Violation)
			}
			if res.Truncated {
				t.Fatalf("clean %s model exploration truncated (space larger than expected)", m.Name)
			}
			if res.Schedules == 0 {
				t.Fatalf("clean %s model explored zero schedules", m.Name)
			}
			t.Logf("%s: %d schedules, %d steps", m.Name, res.Schedules, res.Steps)
		})
	}
}

// TestModelsCatchSeededBugs is the self-test half, mirroring hydralint's
// fixture self-tests: each model's deliberately broken variant must be
// caught, and the recorded schedule must replay to the same violation.
func TestModelsCatchSeededBugs(t *testing.T) {
	for _, m := range Models() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			res := Explore(m, true, Options{})
			if res.Violation == nil {
				t.Fatalf("seeded bug (%s) went undetected after %d schedules", m.Bug, res.Schedules)
			}
			if len(res.Violation.Schedule) == 0 {
				t.Fatal("violation carries no replayable schedule")
			}
			rep, _ := Replay(m, true, res.Violation.Schedule, Options{})
			if rep.Violation == nil {
				t.Fatalf("recorded schedule %v did not replay to a violation", res.Violation.Schedule)
			}
			if rep.Violation.Msg != res.Violation.Msg {
				t.Fatalf("replay diverged:\n explore: %s\n replay:  %s", res.Violation.Msg, rep.Violation.Msg)
			}
			t.Logf("%s: caught after %d schedules: %s", m.Name, res.Schedules, res.Violation.Msg)
		})
	}
}

func TestLookup(t *testing.T) {
	for _, m := range Models() {
		got, ok := Lookup(m.Name)
		if !ok || got.Name != m.Name {
			t.Fatalf("Lookup(%q) failed", m.Name)
		}
	}
	if _, ok := Lookup("no-such-model"); ok {
		t.Fatal("Lookup of unknown model succeeded")
	}
}
