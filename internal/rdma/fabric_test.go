package rdma

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"hydradb/internal/testutil"
	"time"

	"hydradb/internal/arena"
)

func pair(t testing.TB, cfg Config) (*QP, *QP, *MemoryRegion, *MemoryRegion) {
	t.Helper()
	f := NewFabric(cfg)
	a := f.NewNIC("client")
	b := f.NewNIC("server")
	qa, qb := Connect(a, b, 8)
	mra := a.Register(make([]byte, 4096), arena.NewWordArea(16, 2))
	mrb := b.Register(make([]byte, 4096), arena.NewWordArea(16, 2))
	return qa, qb, mra, mrb
}

func TestWriteBytesOneSided(t *testing.T) {
	qa, _, _, mrb := pair(t, Config{})
	msg := []byte("hello one-sided world")
	if err := qa.WriteBytes(mrb, 100, msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mrb.Data()[100:100+len(msg)], msg) {
		t.Fatal("payload not delivered")
	}
	if mrb.NIC().Ops.Load() == 0 {
		t.Fatal("target NIC op not accounted")
	}
}

func TestWriteTargetValidation(t *testing.T) {
	qa, _, mra, mrb := pair(t, Config{})
	// Writing to a region on the local NIC through this QP must fail.
	if err := qa.WriteBytes(mra, 0, []byte("x")); err != ErrNotConnected {
		t.Fatalf("want ErrNotConnected, got %v", err)
	}
	if err := qa.WriteBytes(mrb, 4090, []byte("overflow!")); err != ErrOutOfBounds {
		t.Fatalf("want ErrOutOfBounds, got %v", err)
	}
	if err := qa.WriteBytes(mrb, -1, []byte("x")); err != ErrOutOfBounds {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestWriteWordAndRead(t *testing.T) {
	qa, _, _, mrb := pair(t, Config{})
	if err := qa.WriteWord(mrb, 3, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if mrb.Words().Load(3) != 0xDEAD {
		t.Fatal("word not written")
	}
	if err := qa.WriteWord(mrb, 99, 1); err != ErrOutOfBounds {
		t.Fatalf("out-of-range word write: %v", err)
	}
	// One-sided read of bytes + words in a single op.
	copy(mrb.Data()[10:], "payload")
	dst := make([]byte, 7)
	n, words, err := qa.Read(mrb, 10, dst, 3)
	if err != nil || n != 7 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if string(dst) != "payload" || words[0] != 0xDEAD {
		t.Fatalf("read content: %q words=%v", dst, words)
	}
	if _, _, err := qa.Read(mrb, 4000, make([]byte, 200)); err != ErrOutOfBounds {
		t.Fatalf("oob read: %v", err)
	}
	if _, _, err := qa.Read(mrb, 0, dst, -1); err != ErrOutOfBounds {
		t.Fatalf("oob word read: %v", err)
	}
}

func TestWriteIndicatedPublishesInOrder(t *testing.T) {
	qa, _, _, mrb := pair(t, Config{})
	body := []byte("request body")
	const head, tail = 0, 1
	if err := qa.WriteIndicated(mrb, 0, body, tail, head, 0x42); err != nil {
		t.Fatal(err)
	}
	// Poller discipline: head observed => tail and body are visible.
	if mrb.Words().Load(head) != 0x42 || mrb.Words().Load(tail) != 0x42 {
		t.Fatal("indicators not set")
	}
	if !bytes.Equal(mrb.Data()[:len(body)], body) {
		t.Fatal("body not visible after indicator")
	}
}

// TestIndicatorHappensBefore drives a writer and a poller concurrently under
// the race detector: observing the head indicator must guarantee the body is
// fully visible.
func TestIndicatorHappensBefore(t *testing.T) {
	qa, _, _, mrb := pair(t, Config{})
	const head, tail = 0, 1
	const rounds = 2000
	done := make(chan error, 1)
	go func() {
		for i := 1; i <= rounds; i++ {
			// Wait for message i.
			for mrb.Words().Load(head) != uint64(i) {
				runtime.Gosched() // single-core host: let the writer run
			}
			body := mrb.Data()[:8]
			for j, b := range body {
				if b != byte(i) {
					done <- errf("round %d byte %d = %d", i, j, b)
					return
				}
			}
			// Consume: clear indicators (owner side).
			mrb.Words().Store(head, 0)
			mrb.Words().Store(tail, 0)
		}
		done <- nil
	}()
	body := make([]byte, 8)
	for i := 1; i <= rounds; i++ {
		for j := range body {
			body[j] = byte(i)
		}
		// Wait until the poller consumed the previous message.
		for mrb.Words().Load(head) != 0 {
			runtime.Gosched()
		}
		if err := qa.WriteIndicated(mrb, 0, body, tail, head, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func errf(format string, args ...any) error {
	return &testErr{msg: format, args: args}
}

type testErr struct {
	msg  string
	args []any
}

func (e *testErr) Error() string { return e.msg }

func TestSendRecv(t *testing.T) {
	qa, qb, _, _ := pair(t, Config{})
	go func() {
		testutil.Must(qa.Send([]byte("ping")))
	}()
	m, ok := qb.Recv()
	if !ok || string(m) != "ping" {
		t.Fatalf("recv: %q ok=%v", m, ok)
	}
	// TryRecv on empty queue.
	if _, ok := qb.TryRecv(); ok {
		t.Fatal("TryRecv on empty queue succeeded")
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	qa, qb, _, _ := pair(t, Config{})
	msg := []byte("immutable")
	if err := qa.Send(msg); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X' // mutate after send
	got, _ := qb.Recv()
	if string(got) != "immutable" {
		t.Fatalf("send did not copy: %q", got)
	}
}

func TestCloseSemantics(t *testing.T) {
	f := NewFabric(Config{})
	a, b := f.NewNIC("a"), f.NewNIC("b")
	qa, qb := Connect(a, b, 4)
	if a.QPCount() != 1 || b.QPCount() != 1 {
		t.Fatalf("qp counts: %d %d", a.QPCount(), b.QPCount())
	}
	testutil.Must(qa.Send([]byte("last")))
	qa.Close()
	qa.Close() // double close safe
	if a.QPCount() != 0 {
		t.Fatalf("qp count after close: %d", a.QPCount())
	}
	// Peer drains delivered messages, then observes closure.
	if m, ok := qb.Recv(); !ok || string(m) != "last" {
		t.Fatalf("drain after close: %q %v", m, ok)
	}
	if _, ok := qb.Recv(); ok {
		t.Fatal("recv after close and drain succeeded")
	}
	if err := qb.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send to closed peer: %v", err)
	}
	mrb := b.Register(make([]byte, 64), nil)
	if err := qa.WriteBytes(mrb, 0, []byte("x")); err != ErrClosed {
		t.Fatalf("write on closed qp: %v", err)
	}
}

func TestNICAccounting(t *testing.T) {
	qa, _, _, mrb := pair(t, Config{})
	before := qa.LocalNIC().Bytes.Load()
	testutil.Must(qa.WriteBytes(mrb, 0, make([]byte, 100)))
	if got := qa.LocalNIC().Bytes.Load() - before; got != 100 {
		t.Fatalf("byte accounting: %d", got)
	}
}

func TestNICCeilingThrottles(t *testing.T) {
	// With NICOpNs=200us per op, 20 ops must take >= ~3.8ms.
	f := NewFabric(Config{NICOpNs: 200_000})
	a, b := f.NewNIC("a"), f.NewNIC("b")
	qa, _ := Connect(a, b, 4)
	mrb := b.Register(make([]byte, 64), nil)
	start := time.Now()
	for i := 0; i < 10; i++ {
		testutil.Must(qa.WriteBytes(mrb, 0, []byte("x")))
	}
	// 10 ops, each charged on both NICs serially by one initiator:
	// lower-bound the initiator NIC alone: 10*200us = 2ms.
	if el := time.Since(start); el < 1900*time.Microsecond {
		t.Fatalf("ceiling not enforced: 10 ops in %v", el)
	}
}

func TestQPOverheadGrowsWithConnections(t *testing.T) {
	f := NewFabric(Config{QPThreshold: 2, QPExtraNs: 1000})
	a, b := f.NewNIC("a"), f.NewNIC("b")
	Connect(a, b, 1)
	Connect(a, b, 1)
	if s := a.serviceNs(); s != 0 {
		t.Fatalf("below threshold service = %d", s)
	}
	Connect(a, b, 1)
	Connect(a, b, 1)
	if s := a.serviceNs(); s != 2000 {
		t.Fatalf("above threshold service = %d, want 2000", s)
	}
}

func TestConcurrentWritersDistinctOffsets(t *testing.T) {
	qa, qb, _, mrb := pair(t, Config{})
	_ = qb
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte('A' + w)}, 64)
			for i := 0; i < 200; i++ {
				if err := qa.WriteBytes(mrb, w*64, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 4; w++ {
		seg := mrb.Data()[w*64 : w*64+64]
		for _, c := range seg {
			if c != byte('A'+w) {
				t.Fatalf("segment %d corrupted: %c", w, c)
			}
		}
	}
}

func BenchmarkWriteIndicated64(b *testing.B) {
	qa, _, _, mrb := pair(b, Config{})
	body := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		testutil.Must(qa.WriteIndicated(mrb, 0, body, 1, 0, uint64(i+1)))
		mrb.Words().Store(0, 0)
	}
}

func BenchmarkOneSidedRead64(b *testing.B) {
	qa, _, _, mrb := pair(b, Config{})
	dst := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		testutil.Must2(qa.Read(mrb, 0, dst, 0, 1))
	}
}

func BenchmarkSendRecv64(b *testing.B) {
	qa, qb, _, _ := pair(b, Config{})
	msg := make([]byte, 64)
	go func() {
		for {
			if _, ok := qb.Recv(); !ok {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testutil.Must(qa.Send(msg))
	}
	b.StopTimer()
	qa.Close()
}
