package chaos

import (
	"reflect"
	"strings"
	"testing"

	"hydradb/internal/rdma"
	"hydradb/internal/testutil"
)

func TestScheduleRoundTrip(t *testing.T) {
	for _, name := range Scenarios() {
		s := testutil.Must1(ForScenario(name, 42))
		line := s.String()
		back, err := Parse(line)
		if err != nil {
			t.Fatalf("%s: parse %q: %v", name, line, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("%s: round trip lost data:\n  %+v\n  %+v", name, s, back)
		}
	}
}

func TestScheduleStringIsOneLine(t *testing.T) {
	s := testutil.Must1(ForScenario("crash-primary", 7))
	if strings.ContainsAny(s.String(), "\n\r") {
		t.Fatalf("schedule line contains newline: %q", s.String())
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"v2 seed=1",
		"v1 bogus",
		"v1 name=x seed=1 clients=0 ops=10 keys=4",
		"v1 name=x seed=1 clients=1 ops=10 keys=4 drop=20000",
		"v1 name=x seed=1 clients=1 ops=10 keys=4 events=explode@5",
		"v1 name=x seed=1 clients=1 ops=10 keys=4 events=kill:0",
		"v1 name=x seed=1 clients=1 ops=10 keys=4 delay=80",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) succeeded", bad)
		}
	}
}

func TestForScenarioUnknown(t *testing.T) {
	if _, err := ForScenario("nope", 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// fakeLinks builds NIC pairs for injector policy tests.
func fakeLinks(t *testing.T) (cli, srv0, srv1 *rdma.NIC) {
	t.Helper()
	f := rdma.NewFabric(rdma.Config{})
	return f.NewNIC("client-0"), f.NewNIC("server-0"), f.NewNIC("server-1")
}

func TestInjectorDeterministic(t *testing.T) {
	s := testutil.Must1(ForScenario("crash-primary", 99))
	cli, srv, _ := fakeLinks(t)
	outcomes := func(seed uint64) []rdma.FaultOutcome {
		s.Seed = seed
		in := NewInjector(s)
		var out []rdma.FaultOutcome
		for i := 0; i < 5000; i++ {
			out = append(out, in.Hook(rdma.VerbWrite, cli, srv, 64))
		}
		return out
	}
	a, b := outcomes(99), outcomes(99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault decision streams")
	}
	if reflect.DeepEqual(a, outcomes(100)) {
		t.Fatal("different seeds produced identical decision streams")
	}
	injected := 0
	for _, o := range a {
		if o.Drop || o.Duplicate || o.Reorder || o.DelayNs > 0 || o.Err != nil {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("5000 rolls injected nothing; rates are dead")
	}
}

func TestInjectorServerLinkPolicy(t *testing.T) {
	// Even a 100% drop rate must never silently drop a server↔server op.
	s := testutil.Must1(ForScenario("crash-primary", 1))
	s.DropRate, s.DupRate, s.ReorderRate = 10000, 0, 0
	in := NewInjector(s)
	cli, srv0, srv1 := fakeLinks(t)
	for i := 0; i < 200; i++ {
		if o := in.Hook(rdma.VerbWrite, srv0, srv1, 64); o.Drop || o.Duplicate || o.Reorder || o.Err != nil {
			t.Fatalf("server link got probabilistic fault %+v", o)
		}
	}
	if o := in.Hook(rdma.VerbWrite, cli, srv0, 64); !o.Drop {
		t.Fatal("client link with drop=10000 did not drop")
	}

	// Partitions hit server links only, and heal lifts them.
	in.Partition("server-1")
	if o := in.Hook(rdma.VerbWrite, srv0, srv1, 64); o.Err == nil {
		t.Fatal("partitioned server link passed")
	}
	if o := in.Hook(rdma.VerbSend, srv1, srv0, 64); o.Err == nil {
		t.Fatal("partition must cut both directions")
	}
	if o := in.Hook(rdma.VerbWrite, cli, srv1, 64); o.Err != nil {
		t.Fatal("client traffic to a partitioned machine must still flow")
	}
	in.Heal()
	if o := in.Hook(rdma.VerbWrite, srv0, srv1, 64); o.Err != nil {
		t.Fatal("heal did not lift the partition")
	}

	// Quiesce kills everything, including client-link faults.
	in.Quiesce()
	if o := in.Hook(rdma.VerbWrite, cli, srv0, 64); o != (rdma.FaultOutcome{}) {
		t.Fatalf("quiesced injector still injecting: %+v", o)
	}
}

// smallSchedule shrinks a scenario for unit-test runtime.
func smallSchedule(t *testing.T, name string, seed uint64) Schedule {
	t.Helper()
	s := testutil.Must1(ForScenario(name, seed))
	s.Clients = 3
	s.Ops = 80
	s.Keys = 12
	third := int64(s.Clients*s.Ops) / 3
	for i := range s.Events {
		// Rescale event trigger points to the shrunken op count.
		switch {
		case i == 0:
			s.Events[i].AtOp = third / 2
		default:
			s.Events[i].AtOp = third/2 + int64(i)*third/2
		}
	}
	return s
}

func runScenario(t *testing.T, name string, seed uint64) *Result {
	t.Helper()
	s := smallSchedule(t, name, seed)
	res, err := Run(Options{Schedule: s, Logf: t.Logf})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func TestChaosScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs take seconds")
	}
	for _, name := range Scenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := runScenario(t, name, 7)
			if res.Violation != nil {
				t.Fatalf("history violation:\n%s\nreplay: %s", res.Violation, res.Schedule)
			}
			if len(res.LostKeys) > 0 {
				t.Fatalf("acked writes lost: %v\nreplay: %s", res.LostKeys, res.Schedule)
			}
			if res.Ops != int64(res.Schedule.Clients*res.Schedule.Ops) {
				t.Fatalf("ops = %d", res.Ops)
			}
			wantKills := 0
			for _, ev := range res.Schedule.Events {
				if ev.Action == ActKill {
					wantKills++
				}
			}
			if len(res.RecoverNs) != wantKills {
				t.Fatalf("recover samples = %d, want %d", len(res.RecoverNs), wantKills)
			}
			for _, ns := range res.RecoverNs {
				if ns < 0 {
					t.Fatal("a killed shard never promoted")
				}
			}
			if int(res.Promotions) < wantKills {
				t.Fatalf("promotions = %d, want >= %d", res.Promotions, wantKills)
			}
		})
	}
}

func TestSeededBugCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs take seconds")
	}
	// Clean fabric (no faults, no events): the ONLY anomaly is the seeded
	// corruption, and the oracle must find it.
	s := Schedule{Seed: 3, Name: "seeded-bug", Clients: 2, Ops: 60, Keys: 8}
	res, err := Run(Options{Schedule: s, SeededBug: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("seeded corruption not detected")
	}
	if res.Violation == nil {
		t.Fatal("corruption must surface as a linearizability violation")
	}
	if len(res.Violation.Ops) == 0 {
		t.Fatal("violation carries no offending history")
	}
	if len(res.LostKeys) == 0 {
		t.Fatal("corrupted acked key not reported as lost")
	}
	// And the same schedule without the bug is clean.
	clean, err := Run(Options{Schedule: s, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Failed() {
		t.Fatalf("clean run failed: violation=%v lost=%v", clean.Violation, clean.LostKeys)
	}
}

func TestReplayFromParsedLine(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs take seconds")
	}
	orig := smallSchedule(t, "crash-primary", 11)
	parsed, err := Parse(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, parsed) {
		t.Fatalf("replay schedule differs:\n  %+v\n  %+v", orig, parsed)
	}
	res, err := Run(Options{Schedule: parsed, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("replayed run failed: %v %v", res.Violation, res.LostKeys)
	}
}
