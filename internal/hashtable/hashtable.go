// Package hashtable implements HydraDB's compact, cache-friendly hash table
// (paper §4.1.3).
//
// The table stores 48-bit references to key-value items, not the items
// themselves. The main branch is a contiguous array of 64-byte buckets — one
// cache line each. A bucket is eight 8-byte words:
//
//	word 0 (header): bits 0..6  = slot-usage filter (7 bits)
//	                 bits 8..63 = 56-bit link to a dynamically allocated
//	                              overflow bucket (0 = none)
//	words 1..7 (slots): bits 48..63 = 16-bit key signature
//	                    bits  0..47 = 48-bit item reference
//
// A lookup reads one cache line, tests up to seven signatures, and only
// dereferences the full key when a signature matches — cutting pointer
// chasing and full-key comparisons exactly as the paper describes. Overflow
// buckets resolve residual collisions and are merged back after removals.
//
// Mutations are single-threaded by design: each shard loop owns its table
// exclusively (§4.1.1). Message-based requests index through it; RDMA-Read
// GETs bypass it entirely on the server. The read plane (DESIGN.md §13) adds
// a third consumer: reader goroutines probe the *main branch* concurrently
// with the owner through ProbeRoot, which is why every main-branch word write
// funnels through setWord's atomic store. Overflow buckets are never probed
// concurrently — readers bail to the shard loop the moment a bucket grows a
// chain — so overflow writes stay plain.
package hashtable

import (
	"errors"
	"fmt"
	"sync/atomic"

	"hydradb/internal/hashx"
)

// Bucket word geometry. The hydralint layout pass re-derives these facts on
// every lint run, so the constants, the doc comment above, and the Bucket
// spec struct below cannot drift apart silently.
const (
	slotsPerBucket = 7
	wordsPerBucket = 8
	sigBits        = 16
	refBits        = 48
	filterMask     = 0x7f
	refMask        = (uint64(1) << refBits) - 1
)

// SlotsPerBucket is the root-bucket slot count, exported so read-plane
// callers can size candidate arrays without importing the geometry.
const SlotsPerBucket = slotsPerBucket

// hydralint:assert slotsPerBucket+1 == wordsPerBucket
// hydralint:assert 8*wordsPerBucket == 64
// hydralint:assert sigBits+refBits == 64
// hydralint:assert filterMask == (1<<slotsPerBucket)-1

// Bucket is the declarative layout of one table bucket: the 8-byte header
// word followed by seven signature|reference slots — exactly one 64-byte
// cache line, the unit a lookup reads (§4.1.3). The table operates on
// []uint64 windows (bucketWords); this struct exists so the layout linter
// and the golden test pin the wire format those windows assume.
//
// hydralint:layout size=64 align=8
type Bucket struct {
	Header uint64
	Slots  [slotsPerBucket]uint64
}

// ErrRefTooLarge reports an item reference that does not fit in 48 bits.
var ErrRefTooLarge = errors.New("hashtable: reference exceeds 48 bits")

// MatchFunc reports whether the item referenced by ref has the key being
// looked up. It is only invoked on signature matches.
type MatchFunc func(ref uint64) bool

// Table is the compact hash table.
type Table struct {
	main     []uint64 // hydralint:region nBuckets * 8 words
	nBuckets uint64
	overflow []uint64 // hydralint:region overflow bucket pool, 8 words each
	freeOvf  []uint64 // free overflow bucket ids (1-based)
	size     int

	// Cache-behaviour instrumentation for the §4.1.3 ablation benches.
	Lookups       int64
	LinesTouched  int64
	KeyCompares   int64
	OverflowAlloc int64
	OverflowFree  int64
}

// New creates a table with at least nBuckets main buckets (rounded up to a
// power of two).
func New(nBuckets int) *Table {
	n := uint64(1)
	for n < uint64(nBuckets) {
		n <<= 1
	}
	return &Table{
		main:     make([]uint64, n*wordsPerBucket),
		nBuckets: n,
	}
}

// Len reports the number of stored references.
func (t *Table) Len() int { return t.size }

// MainBuckets reports the size of the main branch.
func (t *Table) MainBuckets() int { return int(t.nBuckets) }

// OverflowBuckets reports the number of live overflow buckets.
func (t *Table) OverflowBuckets() int {
	return len(t.overflow)/wordsPerBucket - len(t.freeOvf)
}

func makeSlot(sig uint16, ref uint64) uint64 {
	return uint64(sig)<<refBits | (ref & refMask)
}

func slotSig(w uint64) uint16    { return uint16(w >> refBits) }
func slotRef(w uint64) uint64    { return w & refMask }
func headerLink(h uint64) uint64 { return h >> 8 }
func setHeaderLink(h, link uint64) uint64 {
	return (h & filterMask) | link<<8
}

// bucketWords returns the 8-word window of a bucket. id 0..nBuckets-1 selects
// a main bucket; ids >= nBuckets select overflow bucket (id - nBuckets).
func (t *Table) bucketWords(id uint64) []uint64 {
	if id < t.nBuckets {
		off := id * wordsPerBucket
		//hydralint:ignore region-bounds len(main) is nBuckets*wordsPerBucket by construction and id < nBuckets guards the window
		return t.main[off : off+wordsPerBucket]
	}
	off := (id - t.nBuckets) * wordsPerBucket
	//hydralint:ignore region-bounds overflow ids come from linkToID on 8-bit links; len(overflow) is nOverflow*wordsPerBucket by construction
	return t.overflow[off : off+wordsPerBucket]
}

// linkToID converts a header link value (1-based overflow index) to bucket id.
func (t *Table) linkToID(link uint64) uint64 { return t.nBuckets + link - 1 }

// setWord stores one bucket word. Main-branch words are published with an
// atomic store because read-plane probes (ProbeRoot) load them concurrently
// with the owning shard loop; overflow words are owner-private (readers never
// follow chains) and stay plain. Every element write to t.main in this file
// must go through setWord — hydralint's mixed-access pass enforces the
// pairing against the readerplane model footprint.
func (t *Table) setWord(id uint64, i int, v uint64) {
	if id < t.nBuckets {
		//hydralint:ignore region-bounds callers derive id/i from bucketWords geometry: id < nBuckets and i < wordsPerBucket
		atomic.StoreUint64(&t.main[id*wordsPerBucket+uint64(i)], v)
		return
	}
	t.bucketWords(id)[i] = v
}

// ProbeRoot scans only the root bucket of hashcode h using atomic loads and
// collects the references whose signature matches into cands. It is the one
// table surface safe to call off the owning shard goroutine; the caller must
// hold an open kv.ReadSlot section so candidate references cannot be
// reclaimed mid-validation (DESIGN.md §13).
//
// ok=false means the bucket has an overflow chain: chain walks race compact's
// bucket merging, so the probe refuses and the caller falls back to the shard
// loop. A torn or mid-update bucket can yield stale candidates or spurious
// misses of in-flight inserts — both are resolved downstream by the guardian
// validation and the fallback path, never here.
//
// hydralint:hotpath
func (t *Table) ProbeRoot(h uint64, cands *[SlotsPerBucket]uint64) (n int, ok bool) {
	id := hashx.BucketIndex(h, t.nBuckets)
	sig := hashx.Signature(h)
	off := id * wordsPerBucket
	//hydralint:ignore region-bounds BucketIndex yields id < nBuckets and len(main) is nBuckets*wordsPerBucket by construction
	hdr := atomic.LoadUint64(&t.main[off])
	if headerLink(hdr) != 0 {
		return 0, false
	}
	filter := hdr & filterMask
	for s := uint64(0); s < slotsPerBucket; s++ {
		if filter&(1<<s) == 0 {
			continue
		}
		//hydralint:ignore region-bounds off+1+s < (id+1)*wordsPerBucket <= len(main) since s < slotsPerBucket = wordsPerBucket-1
		slot := atomic.LoadUint64(&t.main[off+1+s])
		if slotSig(slot) != sig {
			continue
		}
		// A racing Delete/Insert can zero the slot between the filter and
		// slot loads; skip rather than hand out ref 0.
		if ref := slotRef(slot); ref != 0 {
			cands[n] = ref
			n++
		}
	}
	return n, true
}

func (t *Table) allocOverflow() uint64 {
	t.OverflowAlloc++
	if n := len(t.freeOvf); n > 0 {
		id := t.freeOvf[n-1]
		t.freeOvf = t.freeOvf[:n-1]
		w := t.bucketWords(t.linkToID(id))
		clear(w)
		return id
	}
	t.overflow = append(t.overflow, make([]uint64, wordsPerBucket)...)
	return uint64(len(t.overflow) / wordsPerBucket) // 1-based
}

func (t *Table) freeOverflow(link uint64) {
	t.OverflowFree++
	t.freeOvf = append(t.freeOvf, link)
}

// Lookup finds the reference stored under hashcode h whose item matches.
//
// hydralint:hotpath
func (t *Table) Lookup(h uint64, match MatchFunc) (uint64, bool) {
	t.Lookups++
	id := hashx.BucketIndex(h, t.nBuckets)
	sig := hashx.Signature(h)
	for {
		t.LinesTouched++
		w := t.bucketWords(id)
		hdr := w[0]
		filter := hdr & filterMask
		for s := 0; s < slotsPerBucket; s++ {
			if filter&(1<<s) == 0 {
				continue
			}
			slot := w[1+s]
			if slotSig(slot) != sig {
				continue
			}
			t.KeyCompares++
			if match(slotRef(slot)) {
				return slotRef(slot), true
			}
		}
		link := headerLink(hdr)
		if link == 0 {
			return 0, false
		}
		id = t.linkToID(link)
	}
}

// Insert stores ref under hashcode h. If an existing entry matches, its
// reference is replaced and the previous reference returned with
// replaced=true (this is the out-of-place update path: the new area was
// already populated before the table is flipped to it).
func (t *Table) Insert(h uint64, ref uint64, match MatchFunc) (old uint64, replaced bool, err error) {
	if ref&^refMask != 0 {
		return 0, false, ErrRefTooLarge
	}
	sig := hashx.Signature(h)
	id := hashx.BucketIndex(h, t.nBuckets)

	var freeBucket uint64
	var freeSlot = -1
	lastID := id
	for {
		w := t.bucketWords(id)
		hdr := w[0]
		filter := hdr & filterMask
		for s := 0; s < slotsPerBucket; s++ {
			if filter&(1<<s) == 0 {
				if freeSlot < 0 {
					freeBucket, freeSlot = id, s
				}
				continue
			}
			slot := w[1+s]
			if slotSig(slot) != sig {
				continue
			}
			t.KeyCompares++
			if match(slotRef(slot)) {
				old = slotRef(slot)
				// Single-word flip: a concurrent probe sees either the old
				// or the new reference, both guardian-validated downstream.
				t.setWord(id, 1+s, makeSlot(sig, ref))
				return old, true, nil
			}
		}
		link := headerLink(hdr)
		if link == 0 {
			lastID = id
			break
		}
		id = t.linkToID(link)
	}

	if freeSlot >= 0 {
		w := t.bucketWords(freeBucket)
		// Slot before filter bit: a probe that sees the bit set must find
		// the populated slot behind it.
		t.setWord(freeBucket, 1+freeSlot, makeSlot(sig, ref))
		t.setWord(freeBucket, 0, w[0]|1<<freeSlot)
		t.size++
		return 0, false, nil
	}

	// Chain exhausted: hang a fresh overflow bucket off the last one. The
	// header-link store is last: once a probe sees a link it falls back, and
	// until then the new entry is invisible (linearized at the link store).
	link := t.allocOverflow()
	newID := t.linkToID(link)
	t.setWord(newID, 1, makeSlot(sig, ref))
	t.setWord(newID, 0, t.bucketWords(newID)[0]|1)
	lw := t.bucketWords(lastID)
	t.setWord(lastID, 0, setHeaderLink(lw[0], link))
	t.size++
	return 0, false, nil
}

// Delete removes the entry under hashcode h that matches, returning its
// reference. After a removal the bucket chain is compacted: entries from the
// tail overflow bucket back-fill holes and empty overflow buckets are
// unlinked and recycled ("our hash table merges multiple buckets together
// after the remove operations", §4.1.3).
func (t *Table) Delete(h uint64, match MatchFunc) (uint64, bool) {
	sig := hashx.Signature(h)
	root := hashx.BucketIndex(h, t.nBuckets)
	id := root
	for {
		w := t.bucketWords(id)
		hdr := w[0]
		filter := hdr & filterMask
		for s := 0; s < slotsPerBucket; s++ {
			if filter&(1<<s) == 0 {
				continue
			}
			slot := w[1+s]
			if slotSig(slot) != sig {
				continue
			}
			t.KeyCompares++
			if !match(slotRef(slot)) {
				continue
			}
			old := slotRef(slot)
			// Filter bit before slot: a probe must never observe a set bit
			// over an already-zeroed slot (ProbeRoot additionally skips
			// zero refs in case it read the filter first).
			t.setWord(id, 0, hdr&^(1<<s))
			t.setWord(id, 1+s, 0)
			t.size--
			t.compact(root)
			return old, true
		}
		link := headerLink(hdr)
		if link == 0 {
			return 0, false
		}
		id = t.linkToID(link)
	}
}

// compact merges a bucket chain after a removal: it moves entries from the
// tail bucket into free slots of earlier buckets, then unlinks the tail if it
// became empty.
func (t *Table) compact(root uint64) {
	for {
		// Find the tail bucket and its predecessor.
		prev := root
		id := root
		for {
			link := headerLink(t.bucketWords(id)[0])
			if link == 0 {
				break
			}
			prev = id
			id = t.linkToID(link)
		}
		if id == root {
			return // no overflow buckets
		}
		tail := t.bucketWords(id)

		// Move tail entries into earlier free slots.
		for s := 0; s < slotsPerBucket; s++ {
			if tail[0]&(1<<s) == 0 {
				continue
			}
			dst, dstSlot, ok := t.findFreeSlotBefore(root, id)
			if !ok {
				return // chain is full up to the tail; nothing to merge
			}
			dw := t.bucketWords(dst)
			// Destination slot before its filter bit (publish order), then
			// retract the tail entry filter-bit-first. A probe racing the
			// move may see the entry twice or — if it read the destination
			// bucket before the move and the tail after — not at all; the
			// not-at-all case only affects chained buckets, which probes
			// already refuse via the header link.
			t.setWord(dst, 1+dstSlot, tail[1+s])
			t.setWord(dst, 0, dw[0]|1<<dstSlot)
			t.setWord(id, 0, tail[0]&^(1<<s))
			t.setWord(id, 1+s, 0)
		}
		if tail[0]&filterMask != 0 {
			return // tail still holds entries
		}
		// Unlink and recycle the now-empty tail.
		pw := t.bucketWords(prev)
		link := headerLink(pw[0])
		t.setWord(prev, 0, setHeaderLink(pw[0], 0))
		t.freeOverflow(link)
		// Loop: the new tail may also be collapsible.
	}
}

// findFreeSlotBefore scans the chain from root up to (excluding) stop for a
// free slot.
func (t *Table) findFreeSlotBefore(root, stop uint64) (uint64, int, bool) {
	id := root
	for id != stop {
		w := t.bucketWords(id)
		filter := w[0] & filterMask
		if filter != filterMask {
			for s := 0; s < slotsPerBucket; s++ {
				if filter&(1<<s) == 0 {
					return id, s, true
				}
			}
		}
		link := headerLink(w[0])
		if link == 0 {
			break
		}
		id = t.linkToID(link)
	}
	return 0, 0, false
}

// Range calls fn for every stored reference until fn returns false. Used for
// data migration and failover replay; order is unspecified.
func (t *Table) Range(fn func(ref uint64) bool) {
	for b := uint64(0); b < t.nBuckets; b++ {
		id := b
		for {
			w := t.bucketWords(id)
			filter := w[0] & filterMask
			for s := 0; s < slotsPerBucket; s++ {
				if filter&(1<<s) != 0 {
					if !fn(slotRef(w[1+s])) {
						return
					}
				}
			}
			link := headerLink(w[0])
			if link == 0 {
				break
			}
			id = t.linkToID(link)
		}
	}
}

// ChainLength reports the number of buckets in the chain holding hashcode h;
// used by tests and the cache-friendliness benchmarks.
func (t *Table) ChainLength(h uint64) int {
	id := hashx.BucketIndex(h, t.nBuckets)
	n := 1
	for {
		link := headerLink(t.bucketWords(id)[0])
		if link == 0 {
			return n
		}
		n++
		id = t.linkToID(link)
	}
}

// CheckInvariants validates internal consistency; tests call it after
// mutation storms.
func (t *Table) CheckInvariants() error {
	count := 0
	seenOvf := make(map[uint64]bool)
	for b := uint64(0); b < t.nBuckets; b++ {
		id := b
		for {
			w := t.bucketWords(id)
			filter := w[0] & filterMask
			for s := 0; s < slotsPerBucket; s++ {
				used := filter&(1<<s) != 0
				if used {
					count++
					if w[1+s] == 0 {
						return fmt.Errorf("bucket %d slot %d marked used but empty", id, s)
					}
				} else if w[1+s] != 0 {
					return fmt.Errorf("bucket %d slot %d marked free but non-zero", id, s)
				}
			}
			link := headerLink(w[0])
			if link == 0 {
				break
			}
			if link > uint64(len(t.overflow)/wordsPerBucket) {
				return fmt.Errorf("bucket %d links to out-of-range overflow %d", id, link)
			}
			if seenOvf[link] {
				return fmt.Errorf("overflow bucket %d linked twice", link)
			}
			seenOvf[link] = true
			id = t.linkToID(link)
		}
	}
	for _, f := range t.freeOvf {
		if seenOvf[f] {
			return fmt.Errorf("overflow bucket %d both free and linked", f)
		}
	}
	if count != t.size {
		return fmt.Errorf("size mismatch: counted %d, recorded %d", count, t.size)
	}
	if got := len(seenOvf) + len(t.freeOvf); got != len(t.overflow)/wordsPerBucket {
		return fmt.Errorf("overflow leak: linked %d + free %d != pool %d",
			len(seenOvf), len(t.freeOvf), len(t.overflow)/wordsPerBucket)
	}
	return nil
}
