package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// runPublishedEscape is an intra-procedural taint pass over consumers of the
// RDMA data plane. A handful of APIs return *views* into registered memory —
// arena bytes, memory-region slabs, decoded item key/value slices, mailbox
// slot bodies, kv.GetResult.Value — that are only safe to dereference while
// the protecting lease/guardian protocol holds (§4.2.2, §4.2.3). Stashing
// such a view in a field, a package-level variable, or a channel, or
// returning it from a function, publishes a pointer whose referent the owner
// may reclaim or rewrite at any moment.
//
// The pass marks those view expressions as taint sources, propagates taint
// through assignments, slicing, and composite literals to a fixpoint, and
// reports taint reaching an escape sink. Copies launder: string(b) and
// []byte(s) conversions, append onto an untainted base, and scalar indexing
// (a byte loaded from a view is a value, not a pointer).
//
// Scope: internal/ consumer packages. The owner packages that implement the
// protocols (arena, rdma, kv, message, hashtable, shard, replication,
// invariant, modelcheck) hold registered memory by design and are exempt, as
// are _test.go files. Functions whose documented contract is to return a
// view carry a `hydralint:aliases` marker in their doc comment.
//
// The pass is interprocedural through escape summaries: a call into a module
// function whose summary proves its result aliases an argument propagates
// taint through the call, a marker-documented view producer taints its result
// wherever it is called, and passing a view to a callee that publishes the
// corresponding parameter is itself a sink. Unknown callees keep the old
// optimistic behaviour (a call boundary launders taint).
var escapeOwnerPackages = map[string]bool{
	"internal/arena":       true,
	"internal/rdma":        true,
	"internal/kv":          true,
	"internal/message":     true,
	"internal/hashtable":   true,
	"internal/shard":       true,
	"internal/replication": true,
	"internal/invariant":   true,
	"internal/modelcheck":  true,
}

func runPublishedEscape(p *Package, r *Reporter) {
	if !p.isInternal() || escapeOwnerPackages[p.RelPath] {
		return
	}
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			e := &escapeFlow{p: p, prog: p.Prog, tainted: map[*types.Var]bool{}}
			e.propagate(fd.Body)
			e.reportSinks(r, fd)
		}
	}
}

// escapeFlow is the per-function taint state. Closures are analyzed as part
// of their enclosing function: captured variables share the same objects.
// summaryMode is set when the flow computes an escape summary rather than
// reporting: taint must then be rooted purely in the seeded input, so the
// ambient view sources (owner-package APIs, hydralint:aliases markers) are
// disabled.
type escapeFlow struct {
	p           *Package
	prog        *Program
	summaryMode bool
	tainted     map[*types.Var]bool
}

// propagate runs assignment-driven taint propagation to a fixpoint.
func (e *escapeFlow) propagate(body *ast.BlockStmt) {
	for round := 0; round < 16; round++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					// Tuple form: x, y := f(buf). When the callee's summary
					// names which result positions may alias, only those
					// bindings are tainted (DecodeResponse's error is not a
					// view); otherwise every reference-typed binding is.
					if e.taintedExpr(n.Rhs[0]) {
						resSet := e.aliasResultSet(n.Rhs[0])
						for li, l := range n.Lhs {
							if resSet == nil || resSet[li] {
								changed = e.taintLHS(l) || changed
							}
						}
					}
					return true
				}
				for i, l := range n.Lhs {
					if i < len(n.Rhs) && e.taintedExpr(n.Rhs[i]) {
						changed = e.taintLHS(l) || changed
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					switch {
					case len(n.Values) == 1 && len(n.Names) > 1:
						if e.taintedExpr(n.Values[0]) {
							changed = e.taintIdent(name) || changed
						}
					case i < len(n.Values):
						if e.taintedExpr(n.Values[i]) {
							changed = e.taintIdent(name) || changed
						}
					}
				}
			case *ast.RangeStmt:
				// Ranging a tainted container taints reference-typed
				// element bindings ([]byte elements are scalars and stay
				// clean).
				if n.Value != nil && e.taintedExpr(n.X) {
					changed = e.taintLHS(n.Value) || changed
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// taintLHS marks an assignment target tainted when it is a local variable;
// non-local targets are sinks, handled separately. Storing a view into a
// field of a value-typed local struct (r.Val = buf[...]) taints the root
// variable — the struct now carries the pointer — rather than escaping.
func (e *escapeFlow) taintLHS(l ast.Expr) bool {
	switch l := l.(type) {
	case *ast.Ident:
		return e.taintIdent(l)
	case *ast.SelectorExpr:
		if s, ok := e.p.Info.Selections[l]; ok && s.Kind() == types.FieldVal && e.localValueBase(l.X) {
			if root, ok := exprRoot(l.X); ok {
				return e.taintIdent(root)
			}
		}
	}
	return false
}

// localValueBase reports whether x is a chain of value-field selections
// rooted at a function-local, non-pointer variable — a store through it
// stays inside the frame.
func (e *escapeFlow) localValueBase(x ast.Expr) bool {
	for {
		switch b := x.(type) {
		case *ast.Ident:
			v := e.localVar(b)
			if v == nil {
				return false
			}
			_, isPtr := v.Type().Underlying().(*types.Pointer)
			return !isPtr
		case *ast.SelectorExpr:
			if s, ok := e.p.Info.Selections[b]; !ok || s.Kind() != types.FieldVal || s.Indirect() {
				return false
			}
			x = b.X
		case *ast.ParenExpr:
			x = b.X
		default:
			return false
		}
	}
}

func (e *escapeFlow) taintIdent(id *ast.Ident) bool {
	if id.Name == "_" {
		return false
	}
	v := e.localVar(id)
	if v == nil || e.tainted[v] || !refType(v.Type()) {
		return false
	}
	e.tainted[v] = true
	return true
}

// localVar resolves an identifier to a function-local variable (params and
// receivers included), or nil for fields, package-level vars, and non-vars.
func (e *escapeFlow) localVar(id *ast.Ident) *types.Var {
	obj := e.p.Info.Defs[id]
	if obj == nil {
		obj = e.p.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return nil
	}
	if v.Parent() == e.p.Pkg.Scope() {
		return nil // package-level
	}
	return v
}

// taintedExpr reports whether evaluating x may yield a reference into
// RDMA-registered memory.
func (e *escapeFlow) taintedExpr(x ast.Expr) bool {
	switch x := x.(type) {
	case *ast.Ident:
		v := e.localVar(x)
		return v != nil && e.tainted[v]
	case *ast.ParenExpr:
		return e.taintedExpr(x.X)
	case *ast.SelectorExpr:
		if e.isGetResultValue(x) {
			return true
		}
		if tv, ok := e.p.Info.Types[x]; ok && !refType(tv.Type) {
			return false // scalar(-struct) field copy carries no pointer
		}
		return e.taintedExpr(x.X)
	case *ast.IndexExpr:
		if tv, ok := e.p.Info.Types[x]; ok && !refType(tv.Type) {
			return false // scalar load from a view is a copy
		}
		return e.taintedExpr(x.X)
	case *ast.SliceExpr:
		return e.taintedExpr(x.X)
	case *ast.StarExpr:
		return e.taintedExpr(x.X)
	case *ast.UnaryExpr:
		return e.taintedExpr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if e.taintedExpr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return e.taintedCall(x)
	}
	return false
}

func (e *escapeFlow) taintedCall(call *ast.CallExpr) bool {
	// Conversions copy (string <-> []byte) or reinterpret a value we can
	// resolve directly.
	if tv, ok := e.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return false
		}
		t := types.Unalias(tv.Type)
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			return false // string(view) copies
		}
		if isByteSlice(t.Underlying()) {
			if at, ok := e.p.Info.Types[call.Args[0]]; ok {
				if b, ok := at.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return false // []byte(string) copies
				}
			}
		}
		return e.taintedExpr(call.Args[0])
	}

	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// append's result aliases its base; appending view bytes onto an
		// untainted base copies them out.
		if fun.Name == "append" {
			if _, ok := e.p.Info.Uses[fun].(*types.Builtin); ok && len(call.Args) > 0 {
				return e.taintedExpr(call.Args[0])
			}
		}
	case *ast.SelectorExpr:
		// kv.DecodeItem(buf) returns key/val slices aliasing buf.
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := e.p.Info.Uses[id].(*types.PkgName); ok {
				path := pn.Imported().Path()
				if strings.HasSuffix(path, "internal/kv") && fun.Sel.Name == "DecodeItem" {
					return len(call.Args) == 1 && e.taintedExpr(call.Args[0])
				}
				if path == "bytes" && fun.Sel.Name == "Clone" {
					return false // explicit copy
				}
			}
		}
		// View-returning methods of the owner packages. These are ambient
		// sources: off in summary mode, where taint must be input-rooted.
		if !e.summaryMode {
			if recv, name, ok := e.methodRecv(fun); ok {
				switch {
				case recv == "internal/arena.Arena" && (name == "Bytes" || name == "Data"),
					recv == "internal/rdma.MemoryRegion" && name == "Data",
					recv == "internal/kv.Store" && name == "ArenaData",
					recv == "internal/message.Mailbox" && name == "Poll":
					return true
				}
			}
		}
	}

	// Interprocedural: a resolved module callee's summary tells whether its
	// result is a view. hydralint:aliases marks a documented view producer
	// (ambient source, consumer mode only); returnsAlias propagates taint
	// from a tainted actual through the call.
	if e.prog != nil {
		if callee, inputs, ok := e.prog.resolveCallee(e.p, call); ok {
			sum := e.prog.escapeSummaryFor(callee.Obj.FullName())
			if !e.summaryMode && sum.aliasesMarker {
				return true
			}
			for idx := range sum.returnsAlias {
				if actual := inputs.inputExpr(idx); actual != nil && e.taintedExpr(actual) {
					return true
				}
			}
		}
	}
	return false
}

// aliasResultSet returns the set of result positions of a summarized callee
// that may alias an input, or nil when the producer is not a call whose
// summary proved that (nil = unknown, caller taints every ref-typed binding).
func (e *escapeFlow) aliasResultSet(x ast.Expr) map[int]bool {
	call, ok := unparen(x).(*ast.CallExpr)
	if !ok || e.prog == nil {
		return nil
	}
	callee, _, ok := e.prog.resolveCallee(e.p, call)
	if !ok {
		return nil
	}
	sum := e.prog.escapeSummaryFor(callee.Obj.FullName())
	if !e.summaryMode && sum.aliasesMarker {
		return nil // marker taints ambiently; which results is unspecified
	}
	if len(sum.resultsThatAlias) == 0 {
		return nil // summary proved nothing about result positions
	}
	return sum.resultsThatAlias
}

// methodRecv resolves a method call's declared receiver to a
// "module-relative package path.TypeName" string.
func (e *escapeFlow) methodRecv(sel *ast.SelectorExpr) (recv, name string, ok bool) {
	s, found := e.p.Info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return "", "", false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn {
		return "", "", false
	}
	rv := fn.Type().(*types.Signature).Recv()
	if rv == nil {
		return "", "", false
	}
	t := rv.Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	path := named.Obj().Pkg().Path()
	if i := strings.Index(path, "internal/"); i >= 0 {
		path = path[i:]
	}
	return path + "." + named.Obj().Name(), fn.Name(), true
}

// isGetResultValue matches `res.Value` on a kv.GetResult — documented as
// aliasing the arena.
func (e *escapeFlow) isGetResultValue(sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Value" {
		return false
	}
	tv, ok := e.p.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/kv") &&
		named.Obj().Name() == "GetResult"
}

// sinkKind classifies where a tainted value escaped to.
type sinkKind int

const (
	sinkStore   sinkKind = iota // field / package-level var / pointer / element store
	sinkSend                    // channel send
	sinkReturn                  // function return value
	sinkCallArg                 // argument to a callee whose summary publishes it
)

// walkSinks walks body and calls emit for every tainted value reaching an
// escape sink. It is the shared core of the reporting pass and the summary
// computation (which maps sinkReturn to returnsAlias and the rest to escapes).
func (e *escapeFlow) walkSinks(body *ast.BlockStmt, emit func(pos token.Pos, kind sinkKind, desc string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			tuple := len(n.Rhs) == 1 && len(n.Lhs) > 1
			for i, l := range n.Lhs {
				var rhs ast.Expr
				if tuple {
					rhs = n.Rhs[0]
				} else if i < len(n.Rhs) {
					rhs = n.Rhs[i]
				}
				if rhs == nil || !e.taintedExpr(rhs) {
					continue
				}
				if sink := e.sinkDesc(l); sink != "" {
					emit(n.Pos(), sinkStore, sink)
				}
			}
		case *ast.SendStmt:
			if e.taintedExpr(n.Value) {
				emit(n.Pos(), sinkSend, "")
			}
		case *ast.ReturnStmt:
			// desc carries the result index so summaries can record which
			// result positions alias (tuple callers taint only those).
			for ri, res := range n.Results {
				if e.taintedExpr(res) {
					emit(n.Pos(), sinkReturn, strconv.Itoa(ri))
				}
			}
		case *ast.CallExpr:
			// A tainted argument handed to a callee that publishes the
			// corresponding input escapes through the call.
			if e.prog == nil {
				return true
			}
			callee, inputs, ok := e.prog.resolveCallee(e.p, n)
			if !ok {
				return true
			}
			sum := e.prog.escapeSummaryFor(callee.Obj.FullName())
			for idx := range sum.escapes {
				if actual := inputs.inputExpr(idx); actual != nil && e.taintedExpr(actual) {
					emit(n.Pos(), sinkCallArg, callee.Obj.Name()+"()")
					break
				}
			}
		}
		return true
	})
}

// reportSinks renders walkSinks findings as diagnostics. Functions whose
// documented contract is to return a view (hydralint:aliases) keep return
// sinks silent; every other sink kind still reports.
func (e *escapeFlow) reportSinks(r *Reporter, fd *ast.FuncDecl) {
	aliases := docHasMarker(fd.Doc, "hydralint:aliases")
	returned := map[token.Pos]bool{} // one finding per return stmt, not per result
	e.walkSinks(fd.Body, func(pos token.Pos, kind sinkKind, desc string) {
		switch kind {
		case sinkStore:
			r.report("published-escape", pos,
				"a view into an RDMA-registered region escapes to %s; copy it out (append to a fresh buffer) before publishing", desc)
		case sinkSend:
			r.report("published-escape", pos,
				"a view into an RDMA-registered region escapes into a channel send; copy it out before handing it to another goroutine")
		case sinkReturn:
			if !aliases && !returned[pos] {
				returned[pos] = true
				r.report("published-escape", pos,
					"returning a view into an RDMA-registered region; copy it out, or mark the function hydralint:aliases if returning a view is its contract")
			}
		case sinkCallArg:
			r.report("published-escape", pos,
				"a view into an RDMA-registered region is passed to %s, which publishes its argument; copy it out before the call", desc)
		}
	})
}

// sinkDesc classifies an assignment target that outlives the protocol
// window; "" means the target is a plain local and not a sink.
func (e *escapeFlow) sinkDesc(l ast.Expr) string {
	switch l := l.(type) {
	case *ast.Ident:
		if l.Name == "_" || e.localVar(l) != nil {
			return ""
		}
		if obj := e.p.Info.Uses[l]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Parent() == e.p.Pkg.Scope() {
				return "package-level variable " + l.Name
			}
		}
		return ""
	case *ast.SelectorExpr:
		// A field store: the struct (and thus the view) outlives this call —
		// unless the struct is itself a value-typed local, in which case the
		// view stays in the frame (taintLHS taints the root instead).
		if s, ok := e.p.Info.Selections[l]; ok && s.Kind() == types.FieldVal {
			if e.localValueBase(l.X) {
				return ""
			}
			return "field " + l.Sel.Name
		}
		// Qualified package-level var (pkg.Var = view).
		if id, ok := l.X.(*ast.Ident); ok {
			if _, isPkg := e.p.Info.Uses[id].(*types.PkgName); isPkg {
				return "package-level variable " + l.Sel.Name
			}
		}
		return ""
	case *ast.StarExpr:
		return "memory behind a pointer"
	case *ast.IndexExpr:
		// Element store into a non-local container.
		if inner := e.sinkDesc(l.X); inner != "" {
			return "an element of " + inner
		}
		return ""
	}
	return ""
}

// refType reports whether values of t can carry a pointer into registered
// memory: slices, pointers, maps, channels, interfaces, unsafe pointers, and
// aggregates containing any of those. Scalars and strings cannot (string
// conversions copy).
func refType(t types.Type) bool {
	return refTypeSeen(t, map[*types.Named]bool{})
}

func refTypeSeen(t types.Type, seen map[*types.Named]bool) bool {
	if named, ok := types.Unalias(t).(*types.Named); ok {
		if seen[named] {
			return false
		}
		seen[named] = true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Array:
		return refTypeSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refTypeSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
