package history

import (
	"strings"
	"testing"
)

// op builders for hand-authored histories.
func get(c int, key, val string, found bool, inv, ret int64) Op {
	return Op{Client: c, Kind: KindGet, Key: key, Output: val, Found: found, Invoke: inv, Return: ret}
}

func putOp(c int, key, val string, inv, ret int64) Op {
	return Op{Client: c, Kind: KindPut, Key: key, Input: val, Invoke: inv, Return: ret}
}

func delOp(c int, key string, found bool, inv, ret int64) Op {
	return Op{Client: c, Kind: KindDelete, Key: key, Found: found, Invoke: inv, Return: ret}
}

func TestSequentialHistoryLinearizable(t *testing.T) {
	h := []Op{
		putOp(0, "k", "v1", 0, 10),
		get(0, "k", "v1", true, 20, 30),
		putOp(0, "k", "v2", 40, 50),
		get(0, "k", "v2", true, 60, 70),
		delOp(0, "k", true, 80, 90),
		get(0, "k", "", false, 100, 110),
	}
	if v := Check(h); v != nil {
		t.Fatalf("sequential history rejected:\n%s", v)
	}
}

func TestEmptyAndAbsentKey(t *testing.T) {
	if v := Check(nil); v != nil {
		t.Fatal("empty history rejected")
	}
	h := []Op{
		get(0, "k", "", false, 0, 10),
		delOp(0, "k", false, 20, 30),
	}
	if v := Check(h); v != nil {
		t.Fatalf("reads of an absent key rejected:\n%s", v)
	}
}

func TestConcurrentPutsAllowEitherOrder(t *testing.T) {
	// Two overlapping puts; a later read may see either value.
	for _, winner := range []string{"a", "b"} {
		h := []Op{
			putOp(0, "k", "a", 0, 100),
			putOp(1, "k", "b", 10, 90),
			get(2, "k", winner, true, 200, 210),
		}
		if v := Check(h); v != nil {
			t.Fatalf("winner %q rejected:\n%s", winner, v)
		}
	}
}

func TestConcurrentReadDuringPut(t *testing.T) {
	// A read concurrent with a put may see old or new.
	for _, val := range []struct {
		v     string
		found bool
	}{{"", false}, {"x", true}} {
		h := []Op{
			putOp(0, "k", "x", 0, 100),
			get(1, "k", val.v, val.found, 50, 60),
		}
		if v := Check(h); v != nil {
			t.Fatalf("concurrent read %+v rejected:\n%s", val, v)
		}
	}
}

// TestStaleReadFlagged is the seeded-bug self-test demanded by the chaos
// harness design: a read that returns an already-overwritten value after
// the overwrite completed MUST be flagged.
func TestStaleReadFlagged(t *testing.T) {
	h := []Op{
		putOp(0, "k", "v1", 0, 10),
		putOp(0, "k", "v2", 20, 30),
		get(1, "k", "v1", true, 40, 50), // stale: v2 fully precedes this read
	}
	v := Check(h)
	if v == nil {
		t.Fatal("stale read not flagged")
	}
	if v.Key != "k" {
		t.Fatalf("violation key = %q", v.Key)
	}
	if len(v.Ops) != 3 {
		t.Fatalf("minimal prefix has %d ops, want 3:\n%s", len(v.Ops), v)
	}
	s := v.String()
	for _, want := range []string{`key "k"`, "v1", "v2", "not linearizable"} {
		if !strings.Contains(s, want) {
			t.Fatalf("violation output missing %q:\n%s", want, s)
		}
	}
}

func TestLostWriteFlagged(t *testing.T) {
	// An acked put whose value then vanishes (read observes absence).
	h := []Op{
		putOp(0, "k", "v", 0, 10),
		get(0, "k", "", false, 20, 30),
	}
	v := Check(h)
	if v == nil {
		t.Fatal("lost acked write not flagged")
	}
	if len(v.Ops) != 2 {
		t.Fatalf("minimal prefix has %d ops, want 2:\n%s", len(v.Ops), v)
	}
}

func TestPhantomReadFlagged(t *testing.T) {
	// A read of a value nobody ever wrote.
	h := []Op{
		putOp(0, "k", "v", 0, 10),
		get(0, "k", "ghost", true, 20, 30),
	}
	if Check(h) == nil {
		t.Fatal("phantom read not flagged")
	}
}

func TestMaybeAppliedPutExplainsRead(t *testing.T) {
	// A timed-out put (maybe applied) justifies a later read of its value...
	h := []Op{
		putOp(0, "k", "v1", 0, 10),
		{Client: 1, Kind: KindPut, Key: "k", Input: "v2", Err: true, Invoke: 20, Return: Infinity},
		get(2, "k", "v2", true, 100, 110),
	}
	if v := Check(h); v != nil {
		t.Fatalf("maybe-applied put rejected as explanation:\n%s", v)
	}
	// ...and equally a read that never sees it (it may never have applied).
	h[2] = get(2, "k", "v1", true, 100, 110)
	if v := Check(h); v != nil {
		t.Fatalf("maybe-applied put forced to apply:\n%s", v)
	}
}

func TestMaybeAppliedCannotTimeTravel(t *testing.T) {
	// A maybe-applied put can linearize only after its invocation: a read
	// completing before the put was issued cannot see its value.
	h := []Op{
		get(0, "k", "v", true, 0, 10),
		{Client: 1, Kind: KindPut, Key: "k", Input: "v", Err: true, Invoke: 20, Return: Infinity},
	}
	if Check(h) == nil {
		t.Fatal("maybe-applied put linearized before its invocation")
	}
}

func TestFailedGetDiscarded(t *testing.T) {
	// An errored read observed nothing and must not constrain the order.
	h := []Op{
		putOp(0, "k", "v", 0, 10),
		{Client: 1, Kind: KindGet, Key: "k", Output: "garbage", Found: true, Err: true, Invoke: 20, Return: 30},
		get(0, "k", "v", true, 40, 50),
	}
	if v := Check(h); v != nil {
		t.Fatalf("failed get constrained the history:\n%s", v)
	}
}

func TestDeleteObservesPresence(t *testing.T) {
	// Delete's OK/NotFound response carries information the checker uses.
	h := []Op{
		putOp(0, "k", "v", 0, 10),
		delOp(0, "k", false, 20, 30), // NotFound right after a completed put
	}
	if Check(h) == nil {
		t.Fatal("delete-notfound after completed put not flagged")
	}
	h[1] = delOp(0, "k", true, 20, 30)
	if v := Check(h); v != nil {
		t.Fatalf("delete-found after put rejected:\n%s", v)
	}
}

func TestPerKeyIsolation(t *testing.T) {
	// A violation on one key names that key even when other keys are clean.
	h := []Op{
		putOp(0, "clean", "v", 0, 10),
		get(0, "clean", "v", true, 20, 30),
		putOp(0, "dirty", "v1", 0, 10),
		get(1, "dirty", "zzz", true, 20, 30),
	}
	v := Check(h)
	if v == nil || v.Key != "dirty" {
		t.Fatalf("violation = %+v, want key dirty", v)
	}
}

func TestManyConcurrentClientsLinearizable(t *testing.T) {
	// A dense valid history: writers write distinct values sequentially,
	// readers always read the latest completed value. Exercises the cache.
	var h []Op
	vals := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, val := range vals {
		base := int64(i * 100)
		h = append(h, putOp(0, "k", val, base, base+10))
		// Three concurrent readers per round, all overlapping the put.
		for c := 1; c <= 3; c++ {
			prev := ""
			found := false
			if i > 0 {
				prev, found = vals[i-1], true
			}
			if c%2 == 0 {
				h = append(h, get(c, "k", val, true, base+5, base+50))
			} else {
				h = append(h, get(c, "k", prev, found, base+1, base+9))
			}
		}
	}
	if v := Check(h); v != nil {
		t.Fatalf("valid dense history rejected:\n%s", v)
	}
}
