package main

// goroutine-lifecycle: every `go` statement in non-test code must have a
// provable stop path.
//
// The proof obligation splits by shape. A spawned body with no unbounded
// loop (counted loops and ranges over data only) terminates on its own — a
// fire-and-forget worker. A body that can loop forever must *observe* a
// cancellation signal — a stop-channel receive (`<-s.stop`, select case,
// `range ch` which ends at close), or an atomic stop-flag load — and that
// signal must have a *trigger* — a close/send/atomic-store on the same
// identity — sitting in the spawning function itself or in code reachable
// from a shutdown surface (a function whose name starts with Stop, Close,
// Shutdown, Kill, ...; reachability runs over the reverse call graph, so
// Stop → helper → close(ch) proves too).
//
// Signals and triggers meet in the nominal key space of liveness.go:
// `<-s.stop` inside (*Shard).Run and `close(s.stop)` inside (*Shard).Stop
// both key as "hydradb/internal/shard.Shard.stop" no matter the receiver
// variable. Channel-typed parameters are mapped through the spawn site's
// arguments (`go r.run(r.stopCh, ...)` lets the callee's `<-stop` count as
// observing Renewer.stopCh), and channel locals that alias a field
// (`stop := r.stopCh; close(stop)`) resolve to the field's key.
//
// The analysis is optimistic about calls it cannot resolve below the entry
// (they are assumed to terminate) and pessimistic about the spawn itself: a
// `go` through a function value or interface method is unprovable and
// reported. `//hydralint:daemon <why>` on the go statement (or the spawned
// function's doc) opts out a deliberately process-lifetime goroutine; the
// marker is counted by the suppression budget.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// spawnFacts is what one spawned-body analysis establishes.
type spawnFacts struct {
	signals   map[string]bool // cancellation identities the body observes
	unbounded bool            // body contains a loop with no structural bound
}

func runGoroutineLifecycle(prog *Program, rep func(*Package) *Reporter) {
	triggers := collectStopTriggers(prog)
	callers := callerIndex(prog)

	for _, p := range prog.Pkgs {
		r := rep(p)
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			daemon := markedLines(p.Fset, f, "hydralint:daemon")
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				spawner := ""
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					spawner = obj.FullName()
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					checkSpawn(prog, p, r, gs, spawner, daemon, triggers, callers)
					return true
				})
			}
		}
	}
}

func checkSpawn(prog *Program, p *Package, r *Reporter, gs *ast.GoStmt, spawner string,
	daemon map[int]bool, triggers map[string][]string, callers map[string]map[string]bool) {

	if daemon[p.Fset.Position(gs.Pos()).Line] {
		return
	}

	var facts spawnFacts
	switch fun := unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		facts = analyzeSpawnBody(prog, p, fun.Body, nil, nil, 0, map[string]bool{}, p.ImportPath)
	default:
		callee, inputs, ok := prog.resolveCallee(p, gs.Call)
		if !ok {
			r.report("goroutine-lifecycle", gs.Pos(),
				"goroutine spawned through a function value or interface method; its lifetime cannot be proven — spawn a declared function observing a stop signal, or mark //hydralint:daemon <why>")
			return
		}
		if docHasMarker(callee.Decl.Doc, "hydralint:daemon") {
			return
		}
		// Map channel/flag arguments at the spawn site into the callee's
		// parameter space so a bare-parameter observation keys nominally.
		argKeys := map[int]string{}
		vars := inputVars(callee)
		aliases := localAliases(p, enclosingBody(p, gs))
		for idx := range vars {
			if arg := inputs.inputExpr(idx); arg != nil {
				if key, ok := keyWithAliases(p, aliases, arg); ok {
					argKeys[idx] = key
				}
			}
		}
		facts = analyzeSpawnBody(prog, callee.Pkg, callee.Decl.Body, callee, argKeys, 0, map[string]bool{}, callee.Pkg.ImportPath)
	}

	if !facts.unbounded {
		return // body provably terminates on its own
	}
	var observed []string
	for key := range facts.signals {
		observed = append(observed, key)
	}
	sort.Strings(observed)
	for _, key := range observed {
		for _, fn := range triggers[key] {
			if reachesStopSurface(callers, fn, spawner) {
				return // provable stop path: signal + shutdown-reachable trigger
			}
		}
	}
	if len(observed) == 0 {
		r.report("goroutine-lifecycle", gs.Pos(),
			"goroutine loops forever without observing any cancellation signal (stop-channel receive, range over a closable channel, or atomic flag load); it will outlive Close/Stop — add one or mark //hydralint:daemon <why>")
		return
	}
	r.report("goroutine-lifecycle", gs.Pos(),
		"goroutine waits on %s but no close/send/store of it is reachable from a Stop/Close surface or from the spawner; the stop path is unprovable — trigger it from shutdown or mark //hydralint:daemon <why>",
		strings.Join(observed, ", "))
}

// enclosingBody returns the top-level function body containing pos — the
// scope whose channel aliases apply at the spawn site.
func enclosingBody(p *Package, gs *ast.GoStmt) *ast.BlockStmt {
	for _, f := range p.Files {
		if gs.Pos() < f.Pos() || gs.Pos() >= f.End() {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if gs.Pos() >= fd.Body.Pos() && gs.Pos() < fd.Body.End() {
				return fd.Body
			}
		}
	}
	return nil
}

// analyzeSpawnBody walks a spawned body collecting observed stop signals and
// the unbounded-loop bit, recursing into resolvable callees within the
// entry's own package (depth- and cycle-bounded). Cross-package callees
// below the entry are assumed to terminate — their internal retry loops are
// bounded by their own package's contracts (deadlines, lease revocation),
// and propagating their structure would drown every spawn in the client
// library's timeout loops. fnInfo/argKeys are the callee declaration and
// its input→key mapping when the body belongs to a named function; both are
// nil for a spawned literal, whose field selectors key nominally on their
// own.
func analyzeSpawnBody(prog *Program, p *Package, body *ast.BlockStmt, fnInfo *FuncInfo,
	argKeys map[int]string, depth int, visited map[string]bool, rootPath string) spawnFacts {

	facts := spawnFacts{signals: map[string]bool{}}
	if body == nil {
		return facts
	}

	// Function literals nested under the spawned body may run on other
	// goroutines (or not at all): their observations still count toward the
	// signal set (over-approximation hurts nothing — a signal still needs a
	// shutdown-reachable trigger), but their loops do not make THIS
	// goroutine unbounded.
	var litRanges []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			litRanges = append(litRanges, lit)
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, lit := range litRanges {
			if pos > lit.Pos() && pos < lit.End() {
				return true
			}
		}
		return false
	}

	signalKey := func(e ast.Expr) (string, bool) {
		e = unparen(e)
		if id, ok := e.(*ast.Ident); ok && fnInfo != nil {
			if idx, isInput := inputIndexOf(fnInfo, id); isInput {
				key, mapped := argKeys[idx]
				return key, mapped
			}
		}
		return livenessKey(p, e)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if !inLit(n.Pos()) && !boundedLoop(p, n) {
				facts.unbounded = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					// range over a channel is an unbounded loop AND an
					// observation: it ends when the channel closes.
					if !inLit(n.Pos()) {
						facts.unbounded = true
					}
					if key, ok := signalKey(n.X); ok {
						facts.signals[key] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if key, ok := signalKey(n.X); ok {
					facts.signals[key] = true
				}
			}
		case *ast.CallExpr:
			if recv, method, ok := atomicMethodOn(p, n); ok {
				if method == "Load" {
					if key, ok := signalKey(recv); ok {
						facts.signals[key] = true
					}
				}
				return true
			}
			callee, inputs, ok := prog.resolveCallee(p, n)
			if !ok || depth >= 6 || visited[callee.Obj.FullName()] ||
				callee.Pkg.ImportPath != rootPath {
				return true
			}
			visited[callee.Obj.FullName()] = true
			childKeys := map[int]string{}
			for idx := range inputVars(callee) {
				if arg := inputs.inputExpr(idx); arg != nil {
					if key, ok := signalKey(arg); ok {
						childKeys[idx] = key
					}
				}
			}
			sub := analyzeSpawnBody(prog, callee.Pkg, callee.Decl.Body, callee, childKeys, depth+1, visited, rootPath)
			for key := range sub.signals {
				facts.signals[key] = true
			}
			if sub.unbounded && !inLit(n.Pos()) {
				facts.unbounded = true
			}
		}
		return true
	})
	return facts
}

// collectStopTriggers indexes every cancellation trigger in non-test code:
// close(ch), a channel send, or an atomic store/swap/CAS, keyed nominally,
// mapped to the FullNames of the top-level functions containing them.
func collectStopTriggers(prog *Program) map[string][]string {
	triggers := map[string][]string{}
	add := func(key, fn string) {
		for _, have := range triggers[key] {
			if have == fn {
				return
			}
		}
		triggers[key] = append(triggers[key], fn)
	}
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := obj.FullName()
				aliases := localAliases(p, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.SendStmt:
						if key, ok := keyWithAliases(p, aliases, n.Chan); ok {
							add(key, fn)
						}
					case *ast.CallExpr:
						if id, isIdent := unparen(n.Fun).(*ast.Ident); isIdent && id.Name == "close" {
							if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
								if key, ok := keyWithAliases(p, aliases, n.Args[0]); ok {
									add(key, fn)
								}
							}
							return true
						}
						if recv, method, ok := atomicMethodOn(p, n); ok && atomicStoreMethod(method) {
							if key, ok := keyWithAliases(p, aliases, recv); ok {
								add(key, fn)
							}
						}
					}
					return true
				})
			}
		}
	}
	return triggers
}
