package lease

import (
	"testing"
	"testing/quick"
)

func TestLevelBounds(t *testing.T) {
	p := DefaultPolicy()
	cases := []struct {
		count uint32
		level uint8
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{63, 5}, {64, 6}, {1 << 20, 6}, {^uint32(0), 6},
	}
	for _, c := range cases {
		if got := p.Level(c.count); got != c.level {
			t.Errorf("Level(%d) = %d, want %d", c.count, got, c.level)
		}
	}
}

func TestTermRange(t *testing.T) {
	p := DefaultPolicy()
	if p.Term(0) != 1e9 {
		t.Fatalf("cold term = %d, want 1s", p.Term(0))
	}
	if p.Term(1<<30) != 64e9 {
		t.Fatalf("hot term = %d, want 64s", p.Term(1<<30))
	}
	// Property: term always within [1s, 64s] and monotone in count.
	f := func(a, b uint32) bool {
		ta, tb := p.Term(a), p.Term(b)
		if ta < 1e9 || ta > 64e9 {
			return false
		}
		if a <= b && ta > tb {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtendNeverShrinks(t *testing.T) {
	p := DefaultPolicy()
	now := int64(100e9)
	cur := now + 50e9 // long lease already granted
	if got := p.Extend(cur, now, 0); got != cur {
		t.Fatalf("extend shrank lease: %d < %d", got, cur)
	}
	cur = now + 1 // nearly expired
	if got := p.Extend(cur, now, 0); got != now+1e9 {
		t.Fatalf("extend = %d, want %d", got, now+1e9)
	}
}

func TestReclaimAtIncludesGrace(t *testing.T) {
	p := DefaultPolicy()
	now := int64(10e9)
	exp := int64(20e9)
	if got := p.ReclaimAt(exp, now); got != exp+p.GraceNs {
		t.Fatalf("reclaim at %d, want %d", got, exp+p.GraceNs)
	}
	// An already-expired lease still waits the grace window from now.
	if got := p.ReclaimAt(5e9, now); got != now+p.GraceNs {
		t.Fatalf("expired reclaim at %d, want %d", got, now+p.GraceNs)
	}
}

func TestDecay(t *testing.T) {
	if Decay(100, 5, 5) != 100 {
		t.Fatal("same epoch must not decay")
	}
	if Decay(100, 5, 6) != 50 {
		t.Fatal("one epoch must halve")
	}
	if Decay(100, 5, 12) != 0 {
		t.Fatal("seven epochs must decay 100 to 0")
	}
	if Decay(100, 9, 5) != 0 {
		// A backwards step is indistinguishable from an almost-full trip
		// around the modular counter; zeroing is the safe reading.
		t.Fatal("backwards epochs must zero the count")
	}
	if Decay(^uint32(0), 0, 40) != 0 {
		t.Fatal("large shift must clamp to zero")
	}
}

func TestDecayEpochWraparound(t *testing.T) {
	// Regression: the epoch counter is a modular uint32. A cur that wrapped
	// past zero is still "after" then; decay used to be skipped entirely
	// (cur <= then), freezing popularity for a whole counter period.
	last := ^uint32(0)
	if got := Decay(100, last, 0); got != 50 {
		t.Fatalf("one epoch across the wrap: %d, want 50", got)
	}
	if got := Decay(1<<10, last-3, 3); got != (1<<10)>>7 {
		t.Fatalf("seven epochs across the wrap: %d, want %d", got, (1<<10)>>7)
	}
	if got := Decay(100, last, last); got != 100 {
		t.Fatalf("same epoch at the counter edge must not decay: %d", got)
	}
	if got := Decay(^uint32(0), last, 40); got != 0 {
		t.Fatalf("large wrap shift must clamp to zero: %d", got)
	}
}

func TestEpoch(t *testing.T) {
	p := DefaultPolicy()
	if p.Epoch(0) != 0 {
		t.Fatal("epoch at t=0")
	}
	if p.Epoch(25e9) != 2 {
		t.Fatalf("epoch(25s) = %d, want 2", p.Epoch(25e9))
	}
	var zero Policy
	if zero.Epoch(1e18) != 0 {
		t.Fatal("zero DecayEpochNs must pin epoch to 0")
	}
}

func TestValidForRead(t *testing.T) {
	exp := int64(10e9)
	margin := int64(1e6)
	if !ValidForRead(exp, 5e9, margin) {
		t.Fatal("mid-lease read must be valid")
	}
	if ValidForRead(exp, exp, margin) {
		t.Fatal("read at expiry must be invalid")
	}
	if ValidForRead(exp, exp-margin, margin) {
		t.Fatal("read inside the margin must be invalid")
	}
	if !ValidForRead(exp, exp-margin-1, margin) {
		t.Fatal("read just outside the margin must be valid")
	}
}
