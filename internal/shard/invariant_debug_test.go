//go:build hydradebug

package shard

import (
	"runtime"
	"testing"

	"hydradb/internal/kv"
	"hydradb/internal/message"
	"hydradb/internal/rdma"
	"hydradb/internal/timing"
)

// TestShardExclusivityViolationPanics drives a request through shard.handle
// from the test goroutine while the shard's own event loop owns the store —
// the exact §4.1.1 violation the goroutine-ownership sanitizer exists to
// catch — and observes the panic.
func TestShardExclusivityViolationPanics(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	fabric := rdma.NewFabric(rdma.Config{})
	nic := fabric.NewNIC("server")
	s := New(Config{ID: 1, NIC: nic, Store: kv.Config{Clock: clk, ArenaBytes: 1 << 20, MaxItems: 1 << 10}})

	go s.Run()
	defer s.Stop()
	// Run acquires ownership before flipping started, so once started is
	// visible the owner is recorded and any foreign handle call must trap.
	for !s.started.Load() {
		runtime.Gosched()
	}

	req := message.Request{Op: message.OpPut, Key: []byte("k"), Val: []byte("v")}
	body := make([]byte, req.EncodedSize())
	req.EncodeTo(body)
	respBuf := make([]byte, 1<<10)

	defer func() {
		if r := recover(); r == nil {
			t.Fatal("foreign-goroutine shard.handle did not panic under hydradebug")
		}
	}()
	s.handle(body, respBuf, s.epoch.Load())
}
