// Package stats provides the measurement plumbing for hydradb benchmarks:
// log-bucketed latency histograms, operation counters, and formatted
// summaries. Histograms are single-writer; concurrent actors each own one and
// merge at the end of a run, mirroring how YCSB clients report.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Histogram records int64 samples (nanoseconds by convention) into
// logarithmically spaced buckets with bounded relative error (~1/32).
//
// Layout: 64 major buckets (one per bit position) × 32 minor buckets, i.e.
// values are grouped by their top 5 bits below the leading bit. This is the
// standard HDR-style trick and keeps Record at a handful of instructions.
type Histogram struct {
	counts [64 * 32]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 32 {
		return int(v)
	}
	// Position of the leading bit.
	lb := 63 - leadingZeros64(uint64(v))
	// Top 5 bits after the leading bit select the minor bucket.
	minor := int((v >> (uint(lb) - 5)) & 31)
	return (lb-4)*32 + minor
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLow returns the lowest value mapped to bucket index i.
func bucketLow(i int) int64 {
	if i < 32 {
		return int64(i)
	}
	major := i/32 + 4
	minor := int64(i % 32)
	return (1 << uint(major)) | (minor << uint(major-5))
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.n > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() int64 { return h.n }

// Mean reports the exact arithmetic mean of recorded samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min reports the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Percentile reports an approximation of the p-th percentile (0 < p <= 100)
// with the histogram's relative bucket error.
func (h *Histogram) Percentile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(float64(h.n) * p / 100))
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// Summary is a compact snapshot of a histogram used in reports.
type Summary struct {
	Count          int64
	Mean, P50, P95 float64
	P99, Max       float64
}

// Summarize produces a Summary with values converted to microseconds.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.n,
		Mean:  h.Mean() / 1e3,
		P50:   float64(h.Percentile(50)) / 1e3,
		P95:   float64(h.Percentile(95)) / 1e3,
		P99:   float64(h.Percentile(99)) / 1e3,
		Max:   float64(h.max) / 1e3,
	}
}

// String renders the summary for logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Table renders aligned rows for benchmark reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, hdr := range t.Headers {
		widths[i] = len(hdr)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// numericPrefix parses the longest numeric prefix of s ("1.5x" -> 1.5,
// "12 QPs" -> 12). Cells with no leading number parse as 0, so they sort
// together and fall through to the string comparison in SortRowsBy.
func numericPrefix(s string) float64 {
	for end := len(s); end > 0; end-- {
		if v, err := strconv.ParseFloat(s[:end], 64); err == nil {
			return v
		}
	}
	return 0
}

// SortRowsBy sorts rows by the given column, parsing numeric prefixes when
// possible so "10" sorts after "9".
func (t *Table) SortRowsBy(col int) {
	sort.SliceStable(t.Rows, func(i, j int) bool {
		a, b := numericPrefix(t.Rows[i][col]), numericPrefix(t.Rows[j][col])
		if a != b {
			return a < b
		}
		return t.Rows[i][col] < t.Rows[j][col]
	})
}
