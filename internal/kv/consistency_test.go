package kv

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"hydradb/internal/lease"
	"hydradb/internal/testutil"
	"hydradb/internal/timing"
)

// TestConcurrentReadersUnderUpdates is the §4.2.3 consistency protocol in
// miniature, run under the race detector: a single-threaded owner updates,
// deletes and reclaims while concurrent "clients" perform one-sided ReadAt
// through published remote pointers, honoring the lease discipline (never
// read within the safety margin of expiry). The protocol guarantees:
//
//   - no data race (out-of-place updates + atomic guardian/lease words +
//     lease-deferred reclamation),
//   - any read with a live guardian yields a complete, internally
//     consistent item whose embedded key matches,
//   - dead guardians and undecodable (reclaimed) areas are detected.
//
// Run with -race to validate the memory-model claims in DESIGN.md.
func TestConcurrentReadersUnderUpdates(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := NewStore(Config{ArenaBytes: 1 << 20, MaxItems: 4096, Clock: clk})

	type published struct {
		ptr      RemotePtr
		leaseExp int64
		genVal   []byte // the value written under this pointer
	}
	const keys = 8
	var ptrs [keys]atomic.Pointer[published]

	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("key%02d", i)) }

	// Seed.
	for i := 0; i < keys; i++ {
		res, _, err := s.Put(keyOf(i), []byte(fmt.Sprintf("val-%02d-gen0", i)))
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i].Store(&published{ptr: res.Ptr, leaseExp: res.LeaseExp,
			genVal: []byte(fmt.Sprintf("val-%02d-gen0", i))})
	}

	const margin = int64(50e6) // 50ms safety margin
	stop := make(chan struct{})
	var readerErr atomic.Pointer[string]
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		readerErr.CompareAndSwap(nil, &msg)
	}

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, 256)
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (r + n) % keys
				p := ptrs[i].Load()
				now := clk.Now()
				if !lease.ValidForRead(p.leaseExp, now, margin) {
					runtime.Gosched()
					continue
				}
				m, guardian, _, err := s.ReadAt(p.ptr, buf[:p.ptr.DataLen])
				if err != nil {
					fail("reader %d: ReadAt error: %v", r, err)
					return
				}
				if guardian != GuardianLive {
					continue // outdated: valid outcome, client would re-fetch
				}
				k, v, ok := DecodeItem(buf[:m])
				if !ok {
					// Guardian live but undecodable would be a protocol
					// violation... except the guardian word may have been
					// read before a concurrent detach; the client-side rule
					// is key validation, so enforce only that decodable
					// items carry the right key.
					continue
				}
				if !bytes.Equal(k, keyOf(i)) {
					// Key mismatch = recycled area; valid detection outcome.
					continue
				}
				// A decodable, key-matching, guardian-live item must be one
				// of this key's published generations, never a torn mix.
				if !bytes.HasPrefix(v, []byte(fmt.Sprintf("val-%02d-gen", i))) {
					fail("reader %d: torn value %q for key %d", r, v, i)
					return
				}
			}
		}(r)
	}

	// Owner: update keys, occasionally delete+reinsert, advance time and
	// reclaim. The store is single-threaded — only this goroutine touches it.
	for gen := 1; gen <= 400; gen++ {
		i := gen % keys
		val := []byte(fmt.Sprintf("val-%02d-gen%d", i, gen))
		if gen%37 == 0 {
			s.Delete(keyOf(i))
		}
		res, _, err := s.Put(keyOf(i), val)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i].Store(&published{ptr: res.Ptr, leaseExp: res.LeaseExp, genVal: val})
		if gen%8 == 0 {
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()
	if msg := readerErr.Load(); msg != nil {
		t.Fatal(*msg)
	}

	// Reclamation is exercised after the readers quiesce: the lease
	// protocol's reclaim-vs-reader safety rests on *continuous* physical
	// time (a DMA read of a few µs cannot straddle a 50 ms margin), which a
	// manual clock that jumps seconds at a time deliberately violates — so
	// jumping time while readers are mid-copy would be a test artifact, not
	// a protocol bug. The time-based exclusion itself is covered by
	// TestReclaimAfterLeaseExpiry and lease.ValidForRead's unit tests.
	clk.Advance(300e9)
	if s.ReclaimDue() == 0 {
		t.Fatal("no areas reclaimed after expiry")
	}
	for i := 0; i < keys; i++ {
		res, ok := s.Get(keyOf(i))
		if i%keys != 0 && !ok {
			continue // may have been deleted in the last generations
		}
		_ = res
	}
}

// TestReadAtNeverTearsWithinLease pins the core guarantee: while a lease is
// valid, the area's bytes are immutable, so two reads of the same pointer
// return identical bytes even across updates to the key.
func TestReadAtNeverTearsWithinLease(t *testing.T) {
	clk := timing.NewManualClock(0)
	s := NewStore(Config{ArenaBytes: 1 << 20, MaxItems: 1024, Clock: clk})
	res, _ := testutil.Must2(s.Put([]byte("k"), []byte("generation-one")))
	buf1 := make([]byte, res.Ptr.DataLen)
	testutil.Must3(s.ReadAt(res.Ptr, buf1))
	// Update twice; the old area must not change while leased.
	testutil.Must2(s.Put([]byte("k"), []byte("generation-two")))
	testutil.Must2(s.Put([]byte("k"), []byte("generation-three")))
	buf2 := make([]byte, res.Ptr.DataLen)
	_, guardian, _ := testutil.Must3(s.ReadAt(res.Ptr, buf2))
	if guardian != GuardianDead {
		t.Fatal("old area guardian must be dead")
	}
	if !bytes.Equal(buf1, buf2) {
		t.Fatal("leased area mutated in place")
	}
}
