// Command hydrachaos drives HydraDB clusters through deterministic fault
// schedules — seeded link faults (drop/duplicate/reorder/delay), scripted
// partitions, primary crashes, SWAT-leader kills, and live migrations — and
// holds every value clients observed against the per-key linearizability
// oracle in internal/history (§5 resilience, §6.5 availability).
//
//	hydrachaos -list                     enumerate scenarios
//	hydrachaos                           all scenarios, one seed each
//	hydrachaos -scenario crash-primary   one scenario
//	hydrachaos -seed 7 -seeds 3          seeds 7, 8, 9 per scenario
//	hydrachaos -clients 8 -ops 500       override the workload shape
//	                                     (scripted events rescale with it)
//	hydrachaos -replay 'v1 name=...'     re-run a printed schedule line
//	hydrachaos -bug                      arm the seeded corruption self-test;
//	                                     the oracle must flag it and exit 1
//	                                     (CI runs `! hydrachaos -bug`)
//
// Every failing run prints the minimal offending per-key history and the
// one-line schedule that reproduces it via -replay.
//
// Exit status: 0 all runs clean, 1 violation or lost acked write (or a
// seeded bug the oracle failed to catch — which also prints loudly),
// 2 usage or environment error.
package main

import (
	"flag"
	"fmt"
	"os"

	"hydradb/internal/chaos"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hydrachaos", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list scenarios and exit")
		scenario = fs.String("scenario", "", "run a single scenario (default: all)")
		seed     = fs.Uint64("seed", 1, "first seed")
		seeds    = fs.Int("seeds", 1, "consecutive seeds per scenario")
		clients  = fs.Int("clients", 0, "override concurrent clients (0: scenario default)")
		ops      = fs.Int("ops", 0, "override operations per client")
		keys     = fs.Int("keys", 0, "override distinct keys")
		replay   = fs.String("replay", "", "re-run a schedule line printed by a failing run")
		bug      = fs.Bool("bug", false, "arm the seeded corruption; the oracle must catch it")
		readers  = fs.Int("readers", 0, "reader goroutines per shard (parallel read plane; 0: off)")
		verbose  = fs.Bool("v", false, "log injected events and run progress")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, name := range chaos.Scenarios() {
			fmt.Println(name)
		}
		return 0
	}

	var schedules []chaos.Schedule
	switch {
	case *replay != "":
		s, err := chaos.Parse(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		schedules = append(schedules, s)
	default:
		names := chaos.Scenarios()
		if *scenario != "" {
			names = []string{*scenario}
		}
		if *seeds < 1 {
			fmt.Fprintln(os.Stderr, "hydrachaos: -seeds must be >= 1")
			return 2
		}
		for _, name := range names {
			for i := 0; i < *seeds; i++ {
				s, err := chaos.ForScenario(name, *seed+uint64(i))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 2
				}
				reshape(&s, *clients, *ops, *keys)
				schedules = append(schedules, s)
			}
		}
	}

	exit := 0
	for _, s := range schedules {
		if code := runOne(s, *bug, *readers, *verbose); code > exit {
			exit = code
		}
	}
	return exit
}

// reshape applies workload overrides, rescaling scripted event trigger
// points to the new total operation count so "crash at one third of the
// run" stays at one third.
func reshape(s *chaos.Schedule, clients, ops, keys int) {
	oldTotal := int64(s.Clients * s.Ops)
	if clients > 0 {
		s.Clients = clients
	}
	if ops > 0 {
		s.Ops = ops
	}
	if keys > 0 {
		s.Keys = keys
	}
	newTotal := int64(s.Clients * s.Ops)
	if newTotal == oldTotal {
		return
	}
	for i := range s.Events {
		s.Events[i].AtOp = s.Events[i].AtOp * newTotal / oldTotal
	}
}

func runOne(s chaos.Schedule, bug bool, readers int, verbose bool) int {
	opts := chaos.Options{Schedule: s, SeededBug: bug, ReaderThreads: readers}
	if verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		}
	}
	res, err := chaos.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydrachaos: %s seed=%d: %v\n", s.Name, s.Seed, err)
		return 2
	}

	verdict := "ok"
	if res.Failed() {
		verdict = "FAILED"
	}
	fmt.Printf("%-20s seed=%-4d ops=%-5d operrs=%-4d promotions=%d recover=%s %s\n",
		s.Name, s.Seed, res.Ops, res.OpErrors, res.Promotions, recoverMillis(res.RecoverNs), verdict)
	if verbose {
		fmt.Printf("  injected: %s\n", res.Injected)
	}

	if !res.Failed() {
		if bug {
			fmt.Printf("  SEEDED BUG NOT CAUGHT: the oracle missed a silently corrupted acked write\n")
			return 1
		}
		return 0
	}
	if res.Violation != nil {
		fmt.Printf("%s", res.Violation)
	}
	if len(res.LostKeys) > 0 {
		fmt.Printf("  lost acked writes: %v\n", res.LostKeys)
	}
	if res.LeakedGoroutines > 0 {
		fmt.Printf("  leaked goroutines: %d\n", res.LeakedGoroutines)
	}
	fmt.Printf("  replay: hydrachaos%s -replay '%s'\n", bugFlag(bug), s)
	return 1
}

func bugFlag(armed bool) string {
	if armed {
		return " -bug"
	}
	return ""
}

// recoverMillis renders crash-to-promotion times, one per scripted kill.
func recoverMillis(ns []int64) string {
	if len(ns) == 0 {
		return "-"
	}
	out := ""
	for i, v := range ns {
		if i > 0 {
			out += ","
		}
		if v < 0 {
			out += "never"
			continue
		}
		out += fmt.Sprintf("%.1fms", float64(v)/1e6)
	}
	return out
}
