//go:build hydradebug

package invariant

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Enabled reports whether the sanitizers are armed (-tags hydradebug).
const Enabled = true

// GoroutineID returns the runtime id of the calling goroutine. It is only
// available under hydradebug; parsing the stack header costs ~1µs, which is
// acceptable for a sanitizer and unacceptable anywhere else.
func GoroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// Header shape: "goroutine 123 [running]:".
	s := buf[:n]
	var id int64
	for i := len("goroutine "); i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	if id == 0 {
		panic("invariant: could not parse goroutine id")
	}
	return id
}

// Owner records which goroutine owns a single-threaded structure and asserts
// that ownership on every operation (shard exclusivity, §4.1.1).
type Owner struct {
	gid atomic.Int64
}

// Acquire records the calling goroutine as owner. Acquiring an owned Owner
// panics: two event loops were started over the same structure.
func (o *Owner) Acquire(what string) {
	id := GoroutineID()
	if !o.gid.CompareAndSwap(0, id) {
		panic(fmt.Sprintf("invariant: %s already owned by goroutine %d, second Acquire from goroutine %d",
			what, o.gid.Load(), id))
	}
}

// Release clears ownership (loop exit or planned hand-off to another
// goroutine, e.g. SWAT promotion adopting a replica store).
func (o *Owner) Release() {
	o.gid.Store(0)
}

// Assert panics when the calling goroutine is not the recorded owner. An
// unowned Owner passes: structures driven without an event loop (tests, the
// pipelined ablation baseline) stay usable.
func (o *Owner) Assert(op string) {
	own := o.gid.Load()
	if own == 0 {
		return
	}
	if id := GoroutineID(); id != own {
		panic(fmt.Sprintf("invariant: %s on goroutine %d violates shard exclusivity (owner goroutine %d)",
			op, id, own))
	}
}

// schedPoint holds the model-checker yield hook installed by SetSchedPoint.
var schedPoint atomic.Pointer[func(string)]

// SchedPoint is a scheduler yield point for the hydramc interleaving checker
// (internal/modelcheck). Instrumented shared-state operations — word-area
// loads, stores and CASes — call it with a tag naming the object touched;
// when a checker is exploring in fine-grained mode it suspends the calling
// model thread here, turning every word access into a scheduling decision.
// With no hook installed (every build except an active fine-grained
// exploration) it is a single atomic load and branch; without -tags
// hydradebug it does not exist at all (see disabled.go).
func SchedPoint(tag string) {
	if f := schedPoint.Load(); f != nil {
		(*f)(tag)
	}
}

// SetSchedPoint installs (or, with nil, removes) the process-wide scheduler
// yield hook. Only the model checker installs one, and only for the duration
// of a fine-grained exploration; the hook itself is responsible for ignoring
// calls from goroutines it does not manage.
func SetSchedPoint(f func(string)) {
	if f == nil {
		schedPoint.Store(nil)
		return
	}
	schedPoint.Store(&f)
}

// AllocTracker canaries an arena's allocation lifecycle.
type AllocTracker struct {
	mu   sync.Mutex
	live map[uint32]int // offset -> class-rounded size
}

// OnAlloc records a live allocation of size bytes at off.
func (t *AllocTracker) OnAlloc(off uint32, size int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.live == nil {
		t.live = make(map[uint32]int)
	}
	if prev, dup := t.live[off]; dup {
		panic(fmt.Sprintf("invariant: arena allocator returned live offset %d twice (live size %d, new size %d)",
			off, prev, size))
	}
	t.live[off] = size
}

// OnFree checks a free against the live set: freeing an unknown offset is a
// double free (or a free of a foreign offset), and freeing with the wrong
// size would return the area to the wrong size-class free list.
func (t *AllocTracker) OnFree(off uint32, size int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	prev, ok := t.live[off]
	if !ok {
		panic(fmt.Sprintf("invariant: double or foreign free of arena offset %d (size %d)", off, size))
	}
	if prev != size {
		panic(fmt.Sprintf("invariant: free of arena offset %d with size %d, allocated with size %d",
			off, size, prev))
	}
	delete(t.live, off)
}

// CheckLive asserts that [off, off+n) lies within a live allocation starting
// at off — the local (CPU-side) access discipline. One-sided RDMA Reads are
// exempt by design: a stale remote read of a recycled area is the documented
// §4.2.3 race, detected by the guardian word, not by this sanitizer.
func (t *AllocTracker) CheckLive(off uint32, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	size, ok := t.live[off]
	if !ok {
		panic(fmt.Sprintf("invariant: local access to non-live arena offset %d (use-after-free?)", off))
	}
	if n > size {
		panic(fmt.Sprintf("invariant: access of %d bytes at arena offset %d exceeds live allocation of %d",
			n, off, size))
	}
}
