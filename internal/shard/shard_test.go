package shard

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hydradb/internal/kv"
	"hydradb/internal/message"
	"hydradb/internal/rdma"
	"hydradb/internal/timing"
)

func testShard(t testing.TB) (*Shard, *rdma.Fabric, *timing.ManualClock) {
	t.Helper()
	clk := timing.NewManualClock(1e9)
	f := rdma.NewFabric(rdma.Config{})
	sh := New(Config{
		ID:  7,
		NIC: f.NewNIC("server"),
		Store: kv.Config{
			ArenaBytes: 1 << 20,
			MaxItems:   4096,
			Clock:      clk,
		},
	})
	return sh, f, clk
}

// exchange performs one synchronous request/response over an endpoint.
func exchange(t testing.TB, ep *Endpoint, req message.Request) message.Response {
	t.Helper()
	buf := make([]byte, 4096)
	n := req.EncodeTo(buf)
	if err := ep.ReqBox.WriteVia(ep.QP, buf[:n], req.Seq); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, _, ok := ep.RespBox.Poll()
		if ok {
			resp, err := message.DecodeResponse(body)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Val) > 0 {
				v := make([]byte, len(resp.Val))
				copy(v, resp.Val)
				resp.Val = v
			}
			ep.RespBox.Consume()
			return resp
		}
		if time.Now().After(deadline) {
			t.Fatal("no response")
		}
		runtime.Gosched()
	}
}

func TestShardServesOps(t *testing.T) {
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)

	put := exchange(t, ep, message.Request{Op: message.OpPut, Seq: 1, Key: []byte("k"), Val: []byte("v")})
	if put.Status != message.StatusOK || put.Existed {
		t.Fatalf("put: %+v", put)
	}
	if put.Ptr.ShardID != 7 || put.Ptr.Zero() {
		t.Fatalf("put pointer: %v", put.Ptr)
	}
	if put.LeaseExp == 0 {
		t.Fatal("put carried no lease")
	}
	get := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 2, Key: []byte("k")})
	if get.Status != message.StatusOK || string(get.Val) != "v" {
		t.Fatalf("get: %+v", get)
	}
	ren := exchange(t, ep, message.Request{Op: message.OpRenewLease, Seq: 3, Key: []byte("k")})
	if ren.Status != message.StatusOK || ren.LeaseExp < get.LeaseExp {
		t.Fatalf("renew: %+v", ren)
	}
	del := exchange(t, ep, message.Request{Op: message.OpDelete, Seq: 4, Key: []byte("k")})
	if del.Status != message.StatusOK {
		t.Fatalf("delete: %+v", del)
	}
	miss := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 5, Key: []byte("k")})
	if miss.Status != message.StatusNotFound {
		t.Fatalf("get after delete: %+v", miss)
	}
}

func TestShardRejectsStaleEpoch(t *testing.T) {
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	sh.SetEpoch(5)
	ep := sh.Connect(f.NewNIC("client"), false)
	resp := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 1, Epoch: 4, Key: []byte("k")})
	if resp.Status != message.StatusWrongShard {
		t.Fatalf("stale epoch: %+v", resp)
	}
	if resp.Epoch != 5 {
		t.Fatalf("response must advertise current epoch, got %d", resp.Epoch)
	}
	ok := exchange(t, ep, message.Request{Op: message.OpPut, Seq: 2, Epoch: 5, Key: []byte("k"), Val: []byte("v")})
	if ok.Status != message.StatusOK {
		t.Fatalf("current epoch rejected: %+v", ok)
	}
}

func TestShardMalformedRequest(t *testing.T) {
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)
	// Write garbage into the request mailbox.
	if err := ep.ReqBox.WriteVia(ep.QP, []byte{0xFF, 0x00, 0x01}, 9); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, _, ok := ep.RespBox.Poll()
		if ok {
			resp, err := message.DecodeResponse(body)
			ep.RespBox.Consume()
			if err != nil || resp.Status != message.StatusError {
				t.Fatalf("garbage must yield StatusError: %+v %v", resp, err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no response to malformed request")
		}
		runtime.Gosched()
	}
}

func TestShardRoundRobinAcrossConnections(t *testing.T) {
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	cli := f.NewNIC("clients")
	const conns = 5
	eps := make([]*Endpoint, conns)
	for i := range eps {
		eps[i] = sh.Connect(cli, false)
	}
	// All connections must be served.
	for round := 0; round < 20; round++ {
		for i, ep := range eps {
			key := []byte(fmt.Sprintf("conn%d-key%d", i, round))
			resp := exchange(t, ep, message.Request{Op: message.OpPut, Seq: uint32(round), Key: key, Val: []byte("v")})
			if resp.Status != message.StatusOK {
				t.Fatalf("conn %d round %d: %+v", i, round, resp)
			}
		}
	}
	if sh.Handled.Load() != conns*20 {
		t.Fatalf("handled %d, want %d", sh.Handled.Load(), conns*20)
	}
}

func TestShardReclaimAmortization(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	f := rdma.NewFabric(rdma.Config{})
	sh := New(Config{
		ID:           1,
		NIC:          f.NewNIC("server"),
		Store:        kv.Config{ArenaBytes: 1 << 20, MaxItems: 4096, Clock: clk},
		ReclaimEvery: 8,
	})
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)
	// Update the same key repeatedly: each update detaches the old area.
	for i := 0; i < 16; i++ {
		exchange(t, ep, message.Request{Op: message.OpPut, Seq: uint32(i), Key: []byte("k"), Val: []byte(fmt.Sprintf("v%d", i))})
	}
	if sh.Store().PendingReclaims() == 0 {
		t.Fatal("expected pending reclaims")
	}
	// Let leases lapse, then drive more requests: the in-loop amortized
	// reclamation must free them.
	clk.Advance(300e9)
	for i := 0; i < 16; i++ {
		exchange(t, ep, message.Request{Op: message.OpGet, Seq: uint32(100 + i), Key: []byte("k")})
	}
	deadline := time.Now().Add(5 * time.Second)
	for sh.Counters.Reclaims.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("amortized reclamation never ran")
		}
		runtime.Gosched()
	}
}

func TestShardMigrateOpDoesNotReplicate(t *testing.T) {
	// OpMigrate applies the item without re-replicating (it IS the
	// replication/migration path).
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)
	resp := exchange(t, ep, message.Request{Op: message.OpMigrate, Seq: 1, Key: []byte("moved"), Val: []byte("v")})
	if resp.Status != message.StatusOK {
		t.Fatalf("migrate: %+v", resp)
	}
	if sh.Counters.Replications.Load() != 0 {
		t.Fatal("migrate must not count as replication")
	}
	get := exchange(t, ep, message.Request{Op: message.OpGet, Seq: 2, Key: []byte("moved")})
	if get.Status != message.StatusOK || string(get.Val) != "v" {
		t.Fatalf("get after migrate: %+v", get)
	}
}

func TestShardKillStopsServing(t *testing.T) {
	sh, f, _ := testShard(t)
	go sh.Run()
	ep := sh.Connect(f.NewNIC("client"), false)
	exchange(t, ep, message.Request{Op: message.OpPut, Seq: 1, Key: []byte("k"), Val: []byte("v")})
	sh.Kill()
	if !sh.Killed() {
		t.Fatal("killed flag")
	}
	// Requests written after the kill are never answered.
	buf := make([]byte, 256)
	req := message.Request{Op: message.OpGet, Seq: 2, Key: []byte("k")}
	n := req.EncodeTo(buf)
	if err := ep.ReqBox.WriteVia(ep.QP, buf[:n], 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, _, ok := ep.RespBox.Poll(); ok {
		t.Fatal("dead shard responded")
	}
}

func TestEndpointArenaReadableViaQP(t *testing.T) {
	// The endpoint's QP + ArenaMR enable one-sided reads of items (the
	// client package builds on this; verify at the shard boundary).
	sh, f, _ := testShard(t)
	go sh.Run()
	defer sh.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)
	put := exchange(t, ep, message.Request{Op: message.OpPut, Seq: 1, Key: []byte("k"), Val: []byte("val-bytes")})
	dst := make([]byte, put.Ptr.DataLen)
	_, words, err := ep.QP.Read(ep.ArenaMR, int(put.Ptr.DataOff), dst,
		int(put.Ptr.MetaIdx), int(put.Ptr.MetaIdx)+1)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != kv.GuardianLive {
		t.Fatal("guardian not live")
	}
	k, v, ok := kv.DecodeItem(dst)
	if !ok || string(k) != "k" || string(v) != "val-bytes" {
		t.Fatalf("one-sided read: %q %q %v", k, v, ok)
	}
}

func TestPipelinedMatchesSingleThreadSemantics(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	f := rdma.NewFabric(rdma.Config{})
	sh := New(Config{
		ID:    1,
		NIC:   f.NewNIC("server"),
		Store: kv.Config{ArenaBytes: 1 << 20, MaxItems: 4096, Clock: clk},
	})
	pipe := NewPipelined(sh, 2, 2)
	go pipe.Run()
	defer pipe.Stop()
	ep := sh.Connect(f.NewNIC("client"), false)
	for i := 0; i < 30; i++ {
		key := []byte(fmt.Sprintf("key%02d", i))
		if r := exchange(t, ep, message.Request{Op: message.OpPut, Seq: uint32(i), Key: key, Val: []byte("v")}); r.Status != message.StatusOK {
			t.Fatalf("put %d: %+v", i, r)
		}
	}
	for i := 0; i < 30; i++ {
		key := []byte(fmt.Sprintf("key%02d", i))
		if r := exchange(t, ep, message.Request{Op: message.OpGet, Seq: uint32(100 + i), Key: key}); r.Status != message.StatusOK {
			t.Fatalf("get %d: %+v", i, r)
		}
	}
}
