package lfmap

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := New[int](16)
	if _, ok := m.Get("a"); ok {
		t.Fatal("get on empty map")
	}
	v := 42
	m.Put("a", &v)
	got, ok := m.Get("a")
	if !ok || *got != 42 {
		t.Fatalf("get: %v %v", got, ok)
	}
	v2 := 43
	m.Put("a", &v2)
	got, _ = m.Get("a")
	if *got != 43 {
		t.Fatal("overwrite failed")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	if !m.Delete("a") {
		t.Fatal("delete failed")
	}
	if m.Delete("a") {
		t.Fatal("double delete succeeded")
	}
	if _, ok := m.Get("a"); ok {
		t.Fatal("get after delete")
	}
	if m.Len() != 0 {
		t.Fatalf("len after delete = %d", m.Len())
	}
}

func TestReviveTombstone(t *testing.T) {
	m := New[string](4)
	s1 := "one"
	m.Put("k", &s1)
	m.Delete("k")
	s2 := "two"
	m.Put("k", &s2)
	got, ok := m.Get("k")
	if !ok || *got != "two" {
		t.Fatalf("revive failed: %v %v", got, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestCompareAndDelete(t *testing.T) {
	m := New[int](4)
	v1, v2 := 1, 2
	m.Put("k", &v1)
	if m.CompareAndDelete("k", &v2) {
		t.Fatal("CAD with wrong old succeeded")
	}
	if !m.CompareAndDelete("k", &v1) {
		t.Fatal("CAD with correct old failed")
	}
	if _, ok := m.Get("k"); ok {
		t.Fatal("entry survived CAD")
	}
	if m.CompareAndDelete("absent", &v1) {
		t.Fatal("CAD on absent key succeeded")
	}
}

func TestRangeAndSweep(t *testing.T) {
	m := New[int](8)
	vals := make([]int, 20)
	for i := range vals {
		vals[i] = i
		m.Put(fmt.Sprintf("k%02d", i), &vals[i])
	}
	for i := 0; i < 10; i++ {
		m.Delete(fmt.Sprintf("k%02d", i))
	}
	seen := 0
	m.Range(func(k string, v *int) bool { seen++; return true })
	if seen != 10 {
		t.Fatalf("range saw %d live entries, want 10", seen)
	}
	if removed := m.Sweep(); removed != 10 {
		t.Fatalf("sweep removed %d, want 10", removed)
	}
	seen = 0
	m.Range(func(k string, v *int) bool {
		seen++
		if *v < 10 {
			t.Fatalf("swept entry %s still visible", k)
		}
		return true
	})
	if seen != 10 {
		t.Fatalf("after sweep range saw %d", seen)
	}
	// Early stop.
	n := 0
	m.Range(func(string, *int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestChainCollisions(t *testing.T) {
	// One bucket: every key collides; the chain must still disambiguate.
	m := New[int](1)
	vals := make([]int, 100)
	for i := range vals {
		vals[i] = i
		m.Put(fmt.Sprintf("key%03d", i), &vals[i])
	}
	for i := range vals {
		got, ok := m.Get(fmt.Sprintf("key%03d", i))
		if !ok || *got != i {
			t.Fatalf("key%03d: %v %v", i, got, ok)
		}
	}
}

// TestConcurrentMixed hammers the map from many goroutines. Run with -race
// this validates the lock-free paths.
func TestConcurrentMixed(t *testing.T) {
	m := New[int64](64)
	const (
		workers = 8
		keys    = 32
		iters   = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("key%02d", (w*31+i)%keys)
				switch i % 4 {
				case 0, 1:
					v := int64(w*iters + i)
					m.Put(k, &v)
				case 2:
					if v, ok := m.Get(k); ok && v == nil {
						t.Error("live entry with nil value")
						return
					}
				default:
					m.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// Post-run: all remaining values must be valid pointers.
	m.Range(func(k string, v *int64) bool {
		if v == nil {
			t.Errorf("nil value for %s", k)
		}
		return true
	})
	if m.Len() < 0 || m.Len() > keys {
		t.Fatalf("implausible len %d", m.Len())
	}
}

func TestConcurrentInsertDistinctKeys(t *testing.T) {
	// All inserts must survive races on the same bucket chain.
	m := New[int](1)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := w*perWorker + i
				m.Put(fmt.Sprintf("w%d-k%d", w, i), &v)
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != workers*perWorker {
		t.Fatalf("lost inserts: len=%d want %d", m.Len(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			got, ok := m.Get(fmt.Sprintf("w%d-k%d", w, i))
			if !ok || *got != w*perWorker+i {
				t.Fatalf("w%d-k%d missing or wrong", w, i)
			}
		}
	}
}

func BenchmarkGetHit(b *testing.B) {
	m := New[int](1 << 12)
	const n = 1 << 10
	vals := make([]int, n)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%08d", i)
		vals[i] = i
		m.Put(keys[i], &vals[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(keys[i&(n-1)])
	}
}

func BenchmarkPutOverwrite(b *testing.B) {
	m := New[int](1 << 10)
	v := 7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put("hot", &v)
	}
}
