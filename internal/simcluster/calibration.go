package simcluster

import (
	_ "embed"
	"encoding/json"
	"fmt"
)

// The fleet simulator's statistical read-path classes are calibrated from
// the repo's live-mode microbenchmarks: each class's service-time mean is a
// sum of checked-in BENCH_PR7.json figures. The calibration is itself
// checked in (calibration.json, embedded below) so simulation results are
// reproducible even when the benchmark snapshot moves; TestCalibration
// asserts the two stay within a declared drift bound and
// `go test -run TestCalibration -update` regenerates the file.

// LatencyClass names one statistical read-path class.
type LatencyClass string

// The five modeled classes (ISSUE: pointer-cache hit / stale / message-path
// / WrongShard bounce / read-plane probe).
const (
	ClassHit     LatencyClass = "hit"     // one-sided RDMA Read through a valid cached pointer
	ClassStale   LatencyClass = "stale"   // invalid hit: one-sided read, guardian miss, message fallback
	ClassMessage LatencyClass = "message" // RDMA-Write message round trip through the shard thread
	ClassBounce  LatencyClass = "bounce"  // WrongShard: message to the old owner, reroute, retry
	ClassProbe   LatencyClass = "probe"   // read-plane guardian-validated probe (ReaderThreads>0)
)

// ClassCalibration records one class's service-time model and provenance.
type ClassCalibration struct {
	// Bench lists the BENCH_PR7.json benchmark names whose ns_per_op sum
	// to MeanNs — the audit trail from simulation back to measurement.
	Bench  []string `json:"bench"`
	MeanNs float64  `json:"mean_ns"`
	Dist   string   `json:"dist"`
	Sigma  float64  `json:"sigma,omitempty"`
}

// Calibration maps every latency class to its calibrated parameters.
type Calibration struct {
	Source  string                            `json:"source"`
	Classes map[LatencyClass]ClassCalibration `json:"classes"`
}

// classRecipes declares, per class, which live benchmarks compose its mean
// and which distribution shape fits it: cache hits are near-deterministic
// (fixed), probe latency is dominated by memoryless retry/backoff
// (exponential), and the message-path classes are right-skewed by queueing
// (lognormal).
var classRecipes = []struct {
	Class LatencyClass
	Bench []string
	Dist  string
	Sigma float64
}{
	{ClassHit, []string{"BenchmarkLiveGet_RDMARead"}, "fixed", 0},
	{ClassStale, []string{"BenchmarkLiveGet_RDMARead", "BenchmarkLiveGet_MessagePath"}, "lognormal", 0.25},
	{ClassMessage, []string{"BenchmarkLiveGet_MessagePath"}, "lognormal", 0.25},
	{ClassBounce, []string{"BenchmarkLiveGet_MessagePath", "BenchmarkLiveGet_MessagePath"}, "lognormal", 0.25},
	{ClassProbe, []string{"BenchmarkLiveGet_ReadPlane/readers=1"}, "exponential", 0},
}

// CalibrationDriftBound is the declared tolerance between the embedded
// calibration and a fresh derivation from BENCH_PR7.json. Within the bound,
// results stay comparable; beyond it, TestCalibration fails and the
// calibration must be regenerated explicitly (drift is never silent).
const CalibrationDriftBound = 0.25

//go:embed calibration.json
var calibrationJSON []byte

var defaultCalibration = func() Calibration {
	c, err := ParseCalibration(calibrationJSON)
	if err != nil {
		panic(fmt.Sprintf("simcluster: embedded calibration.json invalid: %v", err))
	}
	return c
}()

// DefaultCalibration returns the checked-in calibration.
func DefaultCalibration() Calibration { return defaultCalibration }

// ParseCalibration decodes a calibration document.
func ParseCalibration(data []byte) (Calibration, error) {
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		return Calibration{}, fmt.Errorf("simcluster: parse calibration: %w", err)
	}
	for _, r := range classRecipes {
		if _, ok := c.Classes[r.Class]; !ok {
			return Calibration{}, fmt.Errorf("simcluster: calibration missing class %q", r.Class)
		}
	}
	return c, nil
}

// EncodeCalibration renders a calibration document in the canonical form
// -update writes (json.Marshal sorts map keys, so output is stable).
func EncodeCalibration(c Calibration) ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("simcluster: encode calibration: %w", err)
	}
	return append(b, '\n'), nil
}

// benchDoc mirrors the slice of cmd/benchjson output the calibration needs.
type benchDoc struct {
	Benchmarks map[string]struct {
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// DeriveCalibration computes a fresh calibration from a cmd/benchjson
// snapshot (BENCH_PR7.json): each class mean is the sum of its recipe's
// ns_per_op figures.
func DeriveCalibration(benchJSON []byte, source string) (Calibration, error) {
	var doc benchDoc
	if err := json.Unmarshal(benchJSON, &doc); err != nil {
		return Calibration{}, fmt.Errorf("simcluster: parse bench snapshot: %w", err)
	}
	cal := Calibration{Source: source, Classes: map[LatencyClass]ClassCalibration{}}
	for _, r := range classRecipes {
		mean := 0.0
		for _, name := range r.Bench {
			b, ok := doc.Benchmarks[name]
			if !ok {
				return Calibration{}, fmt.Errorf("simcluster: bench snapshot missing %q", name)
			}
			if b.NsPerOp <= 0 {
				return Calibration{}, fmt.Errorf("simcluster: bench %q has non-positive ns_per_op", name)
			}
			mean += b.NsPerOp
		}
		cal.Classes[r.Class] = ClassCalibration{
			Bench:  r.Bench,
			MeanNs: mean,
			Dist:   r.Dist,
			Sigma:  r.Sigma,
		}
	}
	return cal, nil
}
