package client

import (
	"testing"
	"time"

	"hydradb/internal/testutil"
)

func TestRenewerScanOnce(t *testing.T) {
	env := newLiveEnv(t, false)
	shared := NewSharedCache(64)
	worker := env.newClient(t, Options{UseRDMARead: true, Cache: shared})
	renewClient := env.newClient(t, Options{UseRDMARead: true, Cache: shared})

	testutil.Must(worker.Put([]byte("hot"), []byte("v")))
	for i := 0; i < 10; i++ {
		testutil.Must1(worker.Get([]byte("hot")))
	}
	e, ok := shared.Get("hot")
	if !ok {
		t.Fatal("no cached pointer")
	}
	before := e.LeaseExp

	// Move close to expiry, then renew through the agent.
	env.clk.Advance(1500e6)
	r := NewRenewer(renewClient, 10*time.Millisecond, 2, 64*time.Second)
	if n := r.ScanOnce(); n != 1 {
		t.Fatalf("renewed %d keys, want 1", n)
	}
	e2, _ := shared.Get("hot")
	if e2.LeaseExp <= before {
		t.Fatal("lease not extended through the shared cache")
	}
	if r.TotalRenewed() != 1 {
		t.Fatalf("total = %d", r.TotalRenewed())
	}
	// Cold keys (below MinAccess) are skipped.
	testutil.Must(worker.Put([]byte("cold"), []byte("v")))
	env.clk.Advance(1500e6)
	r.ScanOnce()
	if r.TotalRenewed() > 2 { // "hot" may renew again; "cold" must not count extra
		t.Fatalf("renewed too many: %d", r.TotalRenewed())
	}
}

func TestRenewerBackgroundLoop(t *testing.T) {
	env := newLiveEnv(t, false)
	shared := NewSharedCache(64)
	worker := env.newClient(t, Options{UseRDMARead: true, Cache: shared})
	agentClient := env.newClient(t, Options{UseRDMARead: true, Cache: shared})

	testutil.Must(worker.Put([]byte("hot"), []byte("v")))
	for i := 0; i < 10; i++ {
		testutil.Must1(worker.Get([]byte("hot")))
	}
	env.clk.Advance(1900e6) // lease nearly out

	r := NewRenewer(agentClient, time.Millisecond, 2, 64*time.Second)
	r.Start()
	r.Start() // idempotent
	defer r.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for r.TotalRenewed() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background renewer never renewed")
		}
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
	// The worker keeps hitting one-sided past the original expiry: the
	// renewal bought (at least) a fresh base term. Note the renewed term is
	// short — one-sided reads are invisible to the server (§4.2.3), so the
	// server-side popularity driving the term comes from renewals alone.
	env.clk.Advance(1e9)
	if _, err := worker.Get([]byte("hot")); err != nil {
		t.Fatal(err)
	}
	snap := worker.Counters().Snapshot()
	if snap.RDMAReadStale != 0 {
		t.Fatalf("renewed key went stale: %+v", snap)
	}
}
