// Package modelcheck is HydraDB's exhaustive interleaving checker: a
// deterministic, bounded, DPOR-style (sleep-set) scheduler that runs small
// models of the lock-free protocols — guardian-word GET vs. out-of-place PUT,
// lease-based deferred reclamation, the depth-N mailbox slot ring, and the
// replication log's relaxed-ack/rollback rule — under *every* thread
// interleaving up to a bound, asserting the invariants of DESIGN.md §9.
//
// The models are thin drivers over the real implementations in internal/kv,
// internal/lease, internal/message and internal/replication. Each model
// thread is an ordinary goroutine run cooperatively: exactly one thread
// executes at a time, suspended at explicit yield points (Thread.Step /
// Thread.Await), so an execution is fully determined by the sequence of
// scheduling choices. The explorer enumerates those sequences by stateless
// depth-first search with replay: a schedule prefix is re-executed from a
// fresh model instance, the remainder runs under a fixed selection rule, and
// every not-taken choice is pushed for later exploration. Sleep sets
// (Godefroid's partial-order method) prune schedules that only reorder
// adjacent independent steps, with independence declared through step tags.
//
// Under -tags hydradebug the checker can additionally interleave at
// word-access granularity: arena.WordArea routes every Load/Store/CAS through
// invariant.SchedPoint, and an exploring checker in Fine mode suspends the
// running model thread there, exposing torn intermediate states (e.g. a
// mailbox tail indicator published before its head). Production builds
// compile the hook to an empty function.
package modelcheck

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Options bound an exploration.
type Options struct {
	// MaxSteps caps executed steps per schedule (runaway-loop guard).
	// Default 2000.
	MaxSteps int
	// MaxSchedules caps the number of schedules explored. Default 4<<20.
	MaxSchedules int
	// Fine arms word-granularity yield points (requires a hydradebug build;
	// silently ignored otherwise — check FineAvailable).
	Fine bool
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 2000
	}
	if o.MaxSchedules == 0 {
		o.MaxSchedules = 4 << 20
	}
	return o
}

// Violation is a failed invariant plus the schedule that produced it.
type Violation struct {
	// Msg describes the violated invariant.
	Msg string
	// Trace lists the executed steps as "thread:tag", in order.
	Trace []string
	// Schedule is the thread-choice sequence; feed it to Replay to
	// reproduce the violation deterministically.
	Schedule []int
}

// String renders the violation with its replayable trace.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant violated: %s\n", v.Msg)
	for i, s := range v.Trace {
		fmt.Fprintf(&b, "  step %2d  %s\n", i, s)
	}
	fmt.Fprintf(&b, "  replay: %s\n", formatSchedule(v.Schedule))
	return b.String()
}

func formatSchedule(s []int) string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses the comma-separated form printed in violations.
func ParseSchedule(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("modelcheck: bad schedule element %q", f)
		}
		out = append(out, c)
	}
	return out, nil
}

// Result summarizes one exploration.
type Result struct {
	Model     string
	Schedules int
	Steps     int64
	// Truncated reports that a bound (MaxSteps or MaxSchedules) was hit, so
	// the exploration is not a proof over the full space.
	Truncated bool
	Violation *Violation
}

// Model is one checkable protocol model. Setup builds a fresh instance for
// every schedule: it constructs the real protocol objects, spawns the model
// threads, and registers end-of-schedule invariants. With bug=true it seeds
// the deliberate protocol violation described by Bug — the self-test that
// proves the checker can see a broken protocol.
type Model struct {
	Name  string
	Desc  string
	Bug   string
	Setup func(r *Run, bug bool)
}

// Models returns the registered protocol models in display order.
func Models() []Model {
	return []Model{guardianModel, leaseModel, mailboxModel, replicationModel, readerplaneModel}
}

// Lookup finds a model by name.
func Lookup(name string) (Model, bool) {
	for _, m := range Models() {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// Run is one execution of a model under one schedule.
type Run struct {
	threads []*Thread
	atEnd   []func() error
}

// failure is the panic payload of Fail, recovered by the thread wrapper.
type failure struct{ msg string }

// unwind is the panic payload used to abandon suspended threads when a
// schedule ends early (violation, truncation, pruning).
type unwind struct{}

// Spawn registers a model thread and starts it. Spawn returns once the
// thread has reached its first yield point (or finished), so model setup
// stays effectively single-threaded.
func (r *Run) Spawn(name string, body func(t *Thread)) {
	t := &Thread{
		id:      len(r.threads),
		name:    name,
		run:     r,
		resume:  make(chan bool),
		reports: make(chan report),
	}
	r.threads = append(r.threads, t)
	go func() {
		defer func() {
			switch v := recover().(type) {
			case nil:
				t.reports <- report{kind: reportDone}
			case unwind:
				t.reports <- report{kind: reportDone}
			case failure:
				t.reports <- report{kind: reportFail, msg: v.msg}
			default:
				t.reports <- report{kind: reportFail, msg: fmt.Sprintf("model thread %s panicked: %v", t.name, v)}
			}
		}()
		t.gid = goroutineID()
		body(t)
	}()
	t.absorb(<-t.reports)
}

// AtEnd registers an invariant checked when the schedule quiesces (every
// thread done, or every remaining thread blocked). A non-nil error is a
// violation.
func (r *Run) AtEnd(fn func() error) { r.atEnd = append(r.atEnd, fn) }

// Failf aborts the schedule with an invariant violation. It may be called
// from any code executing inside a step (model appliers, hooks); Thread.Fail
// is the conventional entry point.
func (r *Run) Failf(format string, args ...any) {
	panic(failure{fmt.Sprintf(format, args...)})
}

type reportKind int

const (
	reportYield reportKind = iota
	reportDone
	reportFail
)

type report struct {
	kind reportKind
	tag  string
	cond func() bool
	msg  string
}

// Thread is one cooperatively scheduled model thread.
type Thread struct {
	id      int
	name    string
	run     *Run
	resume  chan bool
	reports chan report

	pending *report // declared next step; nil while running or done
	done    bool
	ending  bool // killAll in progress: fine-mode hook must stop yielding
	failMsg string
	gid     int64 // goroutine id under hydradebug (fine-mode filtering)
}

// Step declares one atomic operation on shared state and yields to the
// scheduler; fn runs when (and only when) the scheduler selects this thread.
// tag names the shared state fn touches ("ring", "store", "*" = conflicts
// with everything): two steps with disjoint comma-separated tag sets are
// treated as independent and their reorderings pruned, so an understated tag
// hides interleavings — when unsure, use "*".
func (t *Thread) Step(tag string, fn func()) {
	t.yield(tag, nil)
	fn()
}

// Await is Step gated on an enabling condition: the scheduler selects this
// thread only while cond() returns true. cond must be deterministic,
// side-effect-free, and read only state covered by tag.
func (t *Thread) Await(tag string, cond func() bool, fn func()) {
	t.yield(tag, cond)
	fn()
}

// Fail reports an invariant violation and aborts the schedule.
func (t *Thread) Fail(format string, args ...any) {
	t.run.Failf(format, args...)
}

func (t *Thread) yield(tag string, cond func() bool) {
	t.reports <- report{kind: reportYield, tag: tag, cond: cond}
	if !<-t.resume {
		panic(unwind{})
	}
}

func (t *Thread) absorb(rep report) {
	switch rep.kind {
	case reportYield:
		cp := rep
		t.pending = &cp
	case reportDone:
		t.done = true
		t.pending = nil
	case reportFail:
		t.done = true
		t.pending = nil
		t.failMsg = rep.msg
	}
}

// node is one deferred DFS branch: replay prefix, then the sleep set in
// effect immediately after the prefix's final choice executes.
type node struct {
	prefix []int
	sleep  map[int]string // thread id -> its declared tag when put to sleep
}

// dependent reports whether two step tags conflict: "*" conflicts with
// everything; otherwise the comma-separated sets must intersect.
func dependent(a, b string) bool {
	if a == "*" || b == "*" {
		return true
	}
	if a == b {
		return true
	}
	for _, x := range strings.Split(a, ",") {
		for _, y := range strings.Split(b, ",") {
			if x == y {
				return true
			}
		}
	}
	return false
}

// Explore exhaustively runs model m (with or without its seeded bug) under
// every schedule within the bounds, returning at the first violation.
func Explore(m Model, bug bool, opts Options) Result {
	opts = opts.withDefaults()
	res := Result{Model: m.Name}
	stack := []node{{}}
	for len(stack) > 0 {
		if res.Schedules >= opts.MaxSchedules {
			res.Truncated = true
			break
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out := runSchedule(m, bug, n, opts, &stack)
		res.Schedules++
		res.Steps += int64(out.steps)
		if out.truncated {
			res.Truncated = true
		}
		if out.violation != nil {
			res.Violation = out.violation
			break
		}
	}
	return res
}

// Replay executes exactly one schedule (the recorded choice sequence of a
// violation) and returns its outcome with the full step trace, for
// deterministic reproduction of a reported violation.
func Replay(m Model, bug bool, schedule []int, opts Options) (Result, []string) {
	opts = opts.withDefaults()
	var sink []node
	out := runSchedule(m, bug, node{prefix: schedule}, opts, &sink)
	res := Result{Model: m.Name, Schedules: 1, Steps: int64(out.steps), Truncated: out.truncated, Violation: out.violation}
	return res, out.trace
}

type runOutcome struct {
	steps     int
	truncated bool
	violation *Violation
	trace     []string
}

// runSchedule executes one schedule: a fresh model instance follows
// start.prefix, then the lowest-eligible-thread rule, pushing every sibling
// choice (with its sleep set) onto the DFS stack.
func runSchedule(m Model, bug bool, start node, opts Options, stack *[]node) (out runOutcome) {
	r := &Run{}
	fine := armFine(r, opts.Fine)
	if fine {
		defer disarmFine()
	}
	m.Setup(r, bug)

	var (
		choices []int
		sleep   = map[int]string{}
	)
	defer r.killAll()

	// A thread may fail during Setup (before its first yield).
	for _, t := range r.threads {
		if t.failMsg != "" {
			out.violation = &Violation{Msg: t.failMsg, Trace: out.trace, Schedule: choices}
			return out
		}
	}
	if len(start.prefix) == 0 {
		sleep = cloneSleep(start.sleep)
	}

	for {
		var enabled []int
		allDone := true
		for _, t := range r.threads {
			if t.done {
				continue
			}
			allDone = false
			p := t.pending
			if p == nil {
				continue
			}
			if p.cond == nil || p.cond() {
				enabled = append(enabled, t.id)
			}
		}
		if allDone || len(enabled) == 0 {
			if msg := r.checkEnd(allDone); msg != "" {
				out.violation = &Violation{Msg: msg, Trace: out.trace, Schedule: choices}
			}
			return out
		}

		var cands []int
		for _, id := range enabled {
			if _, asleep := sleep[id]; !asleep {
				cands = append(cands, id)
			}
		}
		if len(cands) == 0 {
			// Every enabled transition is asleep: this path only permutes
			// independent steps of an already-explored schedule.
			return out
		}

		depth := len(choices)
		var chosen int
		if depth < len(start.prefix) {
			chosen = start.prefix[depth]
			if t := r.threads[chosen]; t.done || t.pending == nil {
				panic(fmt.Sprintf("modelcheck: replay diverged: thread %d not runnable at depth %d (nondeterministic model?)", chosen, depth))
			}
		} else {
			chosen = cands[0]
			// Push the siblings right-to-left so DFS visits them in id order;
			// sibling k sleeps on every candidate explored before it.
			for i := len(cands) - 1; i >= 1; i-- {
				alt := cands[i]
				sl := cloneSleep(sleep)
				for _, prev := range cands[:i] {
					sl[prev] = r.threads[prev].pending.tag
				}
				// The sibling's own step executes immediately after the
				// branch; wake whatever it conflicts with now, so the stored
				// set is the one in effect after that step.
				altTag := r.threads[alt].pending.tag
				for id, tg := range sl {
					if dependent(tg, altTag) {
						delete(sl, id)
					}
				}
				pfx := make([]int, 0, len(choices)+1)
				pfx = append(pfx, choices...)
				pfx = append(pfx, alt)
				*stack = append(*stack, node{prefix: pfx, sleep: sl})
			}
		}

		t := r.threads[chosen]
		tag := t.pending.tag
		out.steps++
		if out.steps > opts.MaxSteps {
			out.truncated = true
			return out
		}
		out.trace = append(out.trace, t.name+":"+tag)
		choices = append(choices, chosen)
		t.pending = nil
		setCurrent(t)
		t.resume <- true
		rep := <-t.reports
		clearCurrent()
		t.absorb(rep)
		if t.failMsg != "" {
			out.violation = &Violation{Msg: t.failMsg, Trace: out.trace, Schedule: choices}
			return out
		}

		switch {
		case len(choices) == len(start.prefix):
			// Final prefix choice executed: install the stored sleep set
			// (already woken against that choice's tag at push time).
			sleep = cloneSleep(start.sleep)
		case len(choices) > len(start.prefix):
			for id, tg := range sleep {
				if dependent(tg, tag) {
					delete(sleep, id)
				}
			}
		}
	}
}

func cloneSleep(s map[int]string) map[int]string {
	out := map[int]string{}
	for k, v := range s {
		out[k] = v
	}
	return out
}

// checkEnd evaluates the quiescence invariants; when they pass but threads
// remain blocked, the stall itself is the violation (deadlock).
func (r *Run) checkEnd(allDone bool) string {
	for _, fn := range r.atEnd {
		if err := fn(); err != nil {
			return err.Error()
		}
	}
	if !allDone {
		var stuck []string
		for _, t := range r.threads {
			if !t.done {
				stuck = append(stuck, t.name)
			}
		}
		sort.Strings(stuck)
		return fmt.Sprintf("deadlock: no thread enabled, blocked: %s", strings.Join(stuck, ", "))
	}
	return ""
}

// killAll unwinds every thread still suspended at a yield point so the
// schedule's goroutines terminate before the next schedule starts.
func (r *Run) killAll() {
	for _, t := range r.threads {
		t.ending = true
		for !t.done {
			t.resume <- false
			t.absorb(<-t.reports)
		}
	}
}
