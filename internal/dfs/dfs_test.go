package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hydradb/internal/testutil"
)

func TestWriteReadRoundTrip(t *testing.T) {
	c := NewCluster(3, 1024)
	data := make([]byte, 10_000) // 10 blocks
	testutil.Must1(rand.New(rand.NewSource(1)).Read(data))
	if err := c.Write("input.dat", data); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("input.dat", data); err != ErrExists {
		t.Fatalf("duplicate write: %v", err)
	}
	got, err := c.Read("input.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read mismatch: %d bytes, err=%v", len(got), err)
	}
	n := testutil.Must1(c.Blocks("input.dat"))
	if n != 10 {
		t.Fatalf("blocks = %d", n)
	}
	size := testutil.Must1(c.Size("input.dat"))
	if size != 10_000 {
		t.Fatalf("size = %d", size)
	}
}

func TestPartialLastBlock(t *testing.T) {
	c := NewCluster(2, 1000)
	data := make([]byte, 2500)
	for i := range data {
		data[i] = byte(i)
	}
	testutil.Must(c.Write("f", data))
	n := testutil.Must1(c.Blocks("f"))
	if n != 3 {
		t.Fatalf("blocks = %d", n)
	}
	last, err := c.ReadBlock("f", 2)
	if err != nil || len(last) != 500 {
		t.Fatalf("last block: %d bytes %v", len(last), err)
	}
	got := testutil.Must1(c.Read("f"))
	if !bytes.Equal(got, data) {
		t.Fatal("reassembly mismatch")
	}
}

func TestEmptyFile(t *testing.T) {
	c := NewCluster(2, 1000)
	if err := c.Write("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read("empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty read: %d bytes %v", len(got), err)
	}
}

func TestErrors(t *testing.T) {
	c := NewCluster(2, 1000)
	if _, err := c.Read("nope"); err != ErrNotFound {
		t.Fatalf("read missing: %v", err)
	}
	if _, err := c.Blocks("nope"); err != ErrNotFound {
		t.Fatalf("blocks missing: %v", err)
	}
	testutil.Must(c.Write("f", []byte("x")))
	if _, err := c.ReadBlock("f", 5); err != ErrBadBlock {
		t.Fatalf("bad block: %v", err)
	}
	if err := c.Delete("nope"); err != ErrNotFound {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestDeleteFreesBlocks(t *testing.T) {
	c := NewCluster(2, 100)
	testutil.Must(c.Write("f", make([]byte, 1000)))
	if err := c.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("f"); err != ErrNotFound {
		t.Fatal("file survived delete")
	}
	for _, dn := range c.dns {
		if len(dn.blocks) != 0 {
			t.Fatal("datanode blocks leaked")
		}
	}
}

func TestBlockPlacementSpreads(t *testing.T) {
	c := NewCluster(4, 100)
	testutil.Must(c.Write("f", make([]byte, 100*8)))
	for i, dn := range c.dns {
		if len(dn.blocks) != 2 {
			t.Fatalf("datanode %d holds %d blocks", i, len(dn.blocks))
		}
	}
}

// memKV is an in-memory KV standing in for HydraDB in unit tests (the
// integration test below uses the real thing).
type memKV struct {
	mu   sync.Mutex
	m    map[string][]byte
	fail bool
}

func newMemKV() *memKV { return &memKV{m: map[string][]byte{}} }

func (k *memKV) Put(key, val []byte) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.fail {
		return errors.New("injected")
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	k.m[string(key)] = cp
	return nil
}

func (k *memKV) Get(key []byte) ([]byte, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	v, ok := k.m[string(key)]
	if !ok {
		return nil, errors.New("miss")
	}
	return v, nil
}

func (k *memKV) Delete(key []byte) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.m, string(key))
	return nil
}

func TestCacheLayerHitsAndMisses(t *testing.T) {
	c := NewCluster(2, 1000)
	data := make([]byte, 5000)
	testutil.Must1(rand.New(rand.NewSource(2)).Read(data))
	testutil.Must(c.Write("f", data))

	kv := newMemKV()
	cache := NewCacheLayer(c, kv, 256, 0)

	// First read: miss + populate.
	blk, err := cache.ReadBlock("f", 0)
	if err != nil || !bytes.Equal(blk, data[:1000]) {
		t.Fatalf("first read: %v", err)
	}
	if cache.Misses.Load() != 1 || cache.Hits.Load() != 0 {
		t.Fatalf("counters after miss: h=%d m=%d", cache.Hits.Load(), cache.Misses.Load())
	}
	served := c.TotalServed()
	// Second read: hit, no DFS traffic.
	blk2, err := cache.ReadBlock("f", 0)
	if err != nil || !bytes.Equal(blk2, data[:1000]) {
		t.Fatalf("second read: %v", err)
	}
	if cache.Hits.Load() != 1 {
		t.Fatal("no cache hit")
	}
	if c.TotalServed() != served {
		t.Fatal("cache hit still touched the DFS")
	}
}

func TestCacheChunking(t *testing.T) {
	c := NewCluster(1, 1000)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	testutil.Must(c.Write("f", data))
	kv := newMemKV()
	cache := NewCacheLayer(c, kv, 300, 0) // 4 chunks per block
	if err := cache.Prefetch("f"); err != nil {
		t.Fatal(err)
	}
	if len(kv.m) != 4 {
		t.Fatalf("chunks stored = %d, want 4", len(kv.m))
	}
	blk, err := cache.ReadBlock("f", 0)
	if err != nil || !bytes.Equal(blk, data) {
		t.Fatal("chunked reassembly failed")
	}
	if cache.Hits.Load() != 1 {
		t.Fatal("prefetched block not a hit")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCluster(2, 100)
	data := make([]byte, 100*6)
	testutil.Must(c.Write("f", data))
	kv := newMemKV()
	cache := NewCacheLayer(c, kv, 100, 3) // room for 3 blocks
	for i := 0; i < 6; i++ {
		if _, err := cache.ReadBlock("f", i); err != nil {
			t.Fatal(err)
		}
	}
	if cache.CachedBlocks() != 3 {
		t.Fatalf("cached = %d, want 3", cache.CachedBlocks())
	}
	if cache.Evicts.Load() != 3 {
		t.Fatalf("evicts = %d", cache.Evicts.Load())
	}
	// Oldest blocks are gone from the KV; newest remain.
	if _, err := kv.Get(chunkKey(blockID("f", 0), 0)); err == nil {
		t.Fatal("evicted chunk still present")
	}
	if _, err := kv.Get(chunkKey(blockID("f", 5), 0)); err != nil {
		t.Fatal("resident chunk missing")
	}
	// Re-reading an evicted block repopulates.
	if _, err := cache.ReadBlock("f", 0); err != nil {
		t.Fatal(err)
	}
	if cache.Misses.Load() != 7 {
		t.Fatalf("misses = %d", cache.Misses.Load())
	}
}

func TestCachePutFailurePropagates(t *testing.T) {
	c := NewCluster(1, 100)
	testutil.Must(c.Write("f", make([]byte, 100)))
	kv := newMemKV()
	kv.fail = true
	cache := NewCacheLayer(c, kv, 100, 0)
	if _, err := cache.ReadBlock("f", 0); err == nil {
		t.Fatal("kv failure swallowed")
	}
}

func TestConcurrentCacheReaders(t *testing.T) {
	c := NewCluster(4, 512)
	data := make([]byte, 512*16)
	testutil.Must1(rand.New(rand.NewSource(3)).Read(data))
	testutil.Must(c.Write("f", data))
	kv := newMemKV()
	cache := NewCacheLayer(c, kv, 512, 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				blk, err := cache.ReadBlock("f", (w+i)%16)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				idx := (w + i) % 16
				if !bytes.Equal(blk, data[idx*512:(idx+1)*512]) {
					t.Errorf("block %d corrupted", idx)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if fmt.Sprint(cache.Hits.Load()+cache.Misses.Load()) == "0" {
		t.Fatal("no accounting")
	}
}
