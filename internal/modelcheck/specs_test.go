package modelcheck

import "testing"

// TestGeneratedFootprintsMatchHandWritten is the generation loop's
// runtime side: the footprints derived from the protocolspec.Spec
// declarations must match the hand-written footprint.go table
// byte-for-byte (under the canonical rendering). hydralint's spec-drift
// pass enforces the static side of the same agreement, and
// `hydramc -footprints` exposes the diff on the command line.
func TestGeneratedFootprintsMatchHandWritten(t *testing.T) {
	gen := GeneratedFootprints()
	hand := Footprints()
	if len(gen) != len(hand) {
		t.Fatalf("generated %d footprints, footprint.go declares %d", len(gen), len(hand))
	}
	for i := range gen {
		g, h := RenderFootprint(gen[i]), RenderFootprint(hand[i])
		if g != h {
			t.Errorf("footprint %d drifted:\n  generated:    %s\n  hand-written: %s\n(regenerate with `hydramc -footprints` and update footprint.go or the owning spec)", i, g, h)
		}
	}
}

// TestSpecsDeclareKnownModels pins that every spec's Model matches a
// registered model, so a renamed model cannot silently detach its spec.
func TestSpecsDeclareKnownModels(t *testing.T) {
	known := map[string]bool{}
	for _, m := range Models() {
		known[m.Name] = true
	}
	for _, s := range Specs() {
		if s.Name == "" {
			t.Errorf("spec with model %q has no Name", s.Model)
		}
		if s.Model != "" && !known[s.Model] {
			t.Errorf("spec %s feeds model %q, which Models() does not register", s.Name, s.Model)
		}
	}
}
