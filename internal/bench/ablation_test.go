package bench

import (
	"fmt"
	"testing"

	"hydradb/internal/testutil"
)

func TestAblationSubsharding(t *testing.T) {
	tbl := AblationSubsharding(tiny)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	parse := func(i int) (qps int, mops float64) {
		testutil.Must1(fmt.Sscanf(tbl.Rows[i][1], "%d", &qps))
		testutil.Must1(fmt.Sscanf(tbl.Rows[i][2], "%f", &mops))
		return
	}
	qps8x1, _ := parse(0)
	qps1x8, _ := parse(3)
	if qps8x1 != 480 || qps1x8 != 60 {
		t.Fatalf("QP accounting: 8x1=%d 1x8=%d", qps8x1, qps1x8)
	}
	// Every configuration must complete and produce nonzero throughput.
	for i := range tbl.Rows {
		if _, m := parse(i); m <= 0 {
			t.Fatalf("row %d zero throughput", i)
		}
	}
}

func TestAblationSubshardingRelievesQPBottleneck(t *testing.T) {
	// At a scale where 8 independent shards exceed the QP threshold, the
	// 2x4 configuration (120 QPs, under threshold) must beat 8x1 (480 QPs).
	s := Scale{Name: "subsh", Records: 8000, Ops: 30000, Clients: 20}
	tbl := AblationSubsharding(s)
	var m8x1, m2x4 float64
	for _, row := range tbl.Rows {
		if row[0] == "8x1" {
			testutil.Must1(fmt.Sscanf(row[2], "%f", &m8x1))
		}
		if row[0] == "2x4" {
			testutil.Must1(fmt.Sscanf(row[2], "%f", &m2x4))
		}
	}
	if m2x4 <= m8x1 {
		t.Fatalf("sub-sharding 2x4 (%.3f) did not beat 8x1 (%.3f)", m2x4, m8x1)
	}
}

func TestAblationPointerSharing(t *testing.T) {
	tbl := AblationPointerSharing(tiny)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	get := func(workload, cache, col string) float64 {
		for _, row := range tbl.Rows {
			if row[0] == workload && row[1] == cache {
				var v float64
				idx := map[string]int{"mops": 2, "hits": 3, "invalid": 4, "misses": 5}[col]
				testutil.Must1(fmt.Sscanf(row[idx], "%f", &v))
				return v
			}
		}
		t.Fatalf("row %s/%s missing", workload, cache)
		return 0
	}
	// Sharing accelerates warm-up: fewer misses on the read-heavy workload.
	if get("zipf 90%GET", "shared", "misses") >= get("zipf 90%GET", "private", "misses") {
		t.Fatal("shared cache did not reduce misses")
	}
	// Sharing suppresses the invalidation cascade on the update-heavy one.
	if get("zipf 50%GET", "shared", "invalid") >= get("zipf 50%GET", "private", "invalid") {
		t.Fatal("shared cache did not reduce invalid hits")
	}
}

func TestAblationLeasePolicy(t *testing.T) {
	tbl := AblationLeasePolicy(tiny)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var shortInvalid, longInvalid float64
	testutil.Must1(fmt.Sscanf(tbl.Rows[0][3], "%f", &shortInvalid))
	testutil.Must1(fmt.Sscanf(tbl.Rows[1][3], "%f", &longInvalid))
	if shortInvalid <= longInvalid {
		t.Fatalf("short leases must force more invalid hits: %f vs %f", shortInvalid, longInvalid)
	}
}

func TestAblationNUMA(t *testing.T) {
	tbl := AblationNUMA(tiny)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := 0; i < len(tbl.Rows); i += 2 {
		var aware, interleaved float64
		testutil.Must1(fmt.Sscanf(tbl.Rows[i][2], "%f", &aware))
		testutil.Must1(fmt.Sscanf(tbl.Rows[i+1][2], "%f", &interleaved))
		if aware <= interleaved {
			t.Fatalf("%s: NUMA-aware %.3f !> interleaved %.3f", tbl.Rows[i][0], aware, interleaved)
		}
	}
}
