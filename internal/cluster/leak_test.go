package cluster

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hydradb/internal/client"
	"hydradb/internal/invariant"
	"hydradb/internal/kv"
	"hydradb/internal/testutil"
	"hydradb/internal/timing"
)

// TestClusterCloseNoLeakedGoroutines proves the full setup/teardown cycle —
// replicated groups, pipelined ablation off, parallel read plane on, SWAT
// watching, live traffic — leaves zero goroutines behind. The assertion is a
// plain count delta so it bites in the default build too; under
// -tags hydradebug the spawn registry additionally names any straggler.
func TestClusterCloseNoLeakedGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	clk := timing.NewManualClock(1e9)
	cfg := Config{
		ServerMachines:   3,
		ClientMachines:   2,
		ShardsPerMachine: 1,
		Replicas:         2,
		ReaderThreads:    2,
		Store: kv.Config{
			ArenaBytes: 2 << 20,
			MaxItems:   8192,
			Clock:      clk,
		},
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Traffic plus one graceful move and one crash→promotion, so the stop
	// paths under test include the interesting ones, not just idle spawns.
	c := cl.NewClient(0, client.Options{RequestTimeout: time.Second, MaxRetries: 30})
	for i := 0; i < 50; i++ {
		if err := c.Put([]byte(fmt.Sprintf("leak%08d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ids := cl.ShardIDs()
	if err := cl.MoveShard(ids[0], 1); err != nil {
		t.Fatalf("move: %v", err)
	}
	before := cl.Promotions.Load()
	if err := cl.KillShard(ids[1]); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if !testutil.Eventually(15*time.Second, func() bool { return cl.Promotions.Load() > before }) {
		t.Fatal("promotion never happened after kill")
	}

	cl.Stop()
	invariant.AssertDrained("")

	// The runtime's count lags the final goroutine exits; settle, then judge.
	testutil.Eventually(5*time.Second, func() bool { return runtime.NumGoroutine() <= baseline })
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines: %d baseline, %d after Stop\n%s",
			baseline, n, buf[:runtime.Stack(buf, true)])
	}
}
