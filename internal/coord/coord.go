// Package coord implements the coordination service HydraDB's high-
// availability layer depends on (paper §5.1): a ZooKeeper-style hierarchical
// namespace of znodes with ephemeral and sequential nodes, watches, and
// heartbeat-expired sessions, plus the leader-election recipe the SWAT group
// uses.
//
// The paper deploys a 3–5 machine ZooKeeper ensemble; HydraDB only consumes
// a small slice of its feature set — ephemeral liveness nodes, watches on
// status changes, and leader election — which is exactly what this package
// provides. The service is linearizable by construction (a single mutex
// guards the tree; every mutation is a critical section), standing in for
// the ensemble's replicated consensus.
package coord

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"hydradb/internal/timing"
)

// Errors mirror the ZooKeeper error model.
var (
	ErrNoNode         = errors.New("coord: node does not exist")
	ErrNodeExists     = errors.New("coord: node already exists")
	ErrNotEmpty       = errors.New("coord: node has children")
	ErrBadVersion     = errors.New("coord: version conflict")
	ErrSessionExpired = errors.New("coord: session expired")
	ErrBadPath        = errors.New("coord: malformed path")
)

// CreateFlags modify Create.
type CreateFlags int

// Flag values.
const (
	FlagPersistent CreateFlags = 0
	FlagEphemeral  CreateFlags = 1 << iota
	FlagSequential
)

// EventType identifies a watch notification.
type EventType int

// Event types.
const (
	EventCreated EventType = iota + 1
	EventDeleted
	EventDataChanged
	EventChildrenChanged
	EventSessionExpired
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventDeleted:
		return "deleted"
	case EventDataChanged:
		return "data-changed"
	case EventChildrenChanged:
		return "children-changed"
	case EventSessionExpired:
		return "session-expired"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Event is a watch notification.
type Event struct {
	Type EventType
	Path string
}

type znode struct {
	data     []byte
	version  int64
	children map[string]*znode
	owner    int64 // ephemeral owner session, 0 = persistent
	seqNext  int64 // counter for sequential children
}

type watcher struct {
	path      string // prefix: node itself and its direct children
	ch        chan Event
	sessionID int64
}

// Server is the coordination service.
type Server struct {
	mu       sync.Mutex
	root     *znode
	sessions map[int64]*sessionState
	watchers map[int64]*watcher
	nextSess int64
	nextWat  int64
	clock    timing.Clock
	timeout  int64 // session timeout in ns
}

type sessionState struct {
	id       int64
	lastPing int64
	expired  bool
	ephem    map[string]bool
}

// NewServer creates a service whose sessions expire after timeoutNs without
// a heartbeat, judged against clk.
func NewServer(clk timing.Clock, timeoutNs int64) *Server {
	if timeoutNs <= 0 {
		timeoutNs = 2e9
	}
	return &Server{
		root:     &znode{children: map[string]*znode{}},
		sessions: map[int64]*sessionState{},
		watchers: map[int64]*watcher{},
		clock:    clk,
		timeout:  timeoutNs,
	}
}

// split validates and segments a path like /hydra/shards/s1.
func split(path string) ([]string, error) {
	if path == "/" {
		return nil, nil
	}
	if !strings.HasPrefix(path, "/") || strings.HasSuffix(path, "/") || strings.Contains(path, "//") {
		return nil, ErrBadPath
	}
	return strings.Split(path[1:], "/"), nil
}

func parentOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// lookup walks to a node; caller holds the lock.
func (s *Server) lookup(path string) (*znode, error) {
	parts, err := split(path)
	if err != nil {
		return nil, err
	}
	n := s.root
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return nil, ErrNoNode
		}
		n = child
	}
	return n, nil
}

// notify fires watchers registered on path or its parent; caller holds lock.
func (s *Server) notify(t EventType, path string) {
	parent := parentOf(path)
	for _, w := range s.watchers {
		if w.path == path || w.path == parent {
			ev := Event{Type: t, Path: path}
			select {
			case w.ch <- ev:
			default:
				// Watcher queue overflow: drop the oldest to keep the newest
				// (level-triggered consumers re-read state anyway).
				select {
				case <-w.ch:
				default:
				}
				select {
				case w.ch <- ev:
				default:
				}
			}
		}
	}
}

// Session is a client handle.
type Session struct {
	srv *Server
	id  int64
}

// NewSession opens a session.
func (s *Server) NewSession() *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSess++
	id := s.nextSess
	s.sessions[id] = &sessionState{
		id:       id,
		lastPing: s.clock.Now(),
		ephem:    map[string]bool{},
	}
	return &Session{srv: s, id: id}
}

// ID reports the session identity.
func (c *Session) ID() int64 { return c.id }

func (s *Server) state(id int64) (*sessionState, error) {
	st, ok := s.sessions[id]
	if !ok || st.expired {
		return nil, ErrSessionExpired
	}
	return st, nil
}

// Ping refreshes the session heartbeat.
func (c *Session) Ping() error {
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.state(c.id)
	if err != nil {
		return err
	}
	st.lastPing = s.clock.Now()
	return nil
}

// Create adds a node. With FlagSequential a 10-digit counter is appended and
// the actual path returned. Parents must exist.
func (c *Session) Create(path string, data []byte, flags CreateFlags) (string, error) {
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.state(c.id)
	if err != nil {
		return "", err
	}
	parts, err := split(path)
	if err != nil || len(parts) == 0 {
		return "", ErrBadPath
	}
	parentPath := parentOf(path)
	parent, err := s.lookup(parentPath)
	if err != nil {
		return "", err
	}
	name := parts[len(parts)-1]
	if flags&FlagSequential != 0 {
		name = fmt.Sprintf("%s%010d", name, parent.seqNext)
		parent.seqNext++
		if parentPath == "/" {
			path = "/" + name
		} else {
			path = parentPath + "/" + name
		}
	}
	if _, exists := parent.children[name]; exists {
		return "", ErrNodeExists
	}
	n := &znode{data: append([]byte(nil), data...), children: map[string]*znode{}}
	if flags&FlagEphemeral != 0 {
		n.owner = c.id
		st.ephem[path] = true
	}
	parent.children[name] = n
	s.notify(EventCreated, path)
	s.notify(EventChildrenChanged, parentPath)
	return path, nil
}

// Get reads a node's data and version.
func (c *Session) Get(path string) ([]byte, int64, error) {
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.state(c.id); err != nil {
		return nil, 0, err
	}
	n, err := s.lookup(path)
	if err != nil {
		return nil, 0, err
	}
	return append([]byte(nil), n.data...), n.version, nil
}

// Set updates a node's data. version -1 matches any version.
func (c *Session) Set(path string, data []byte, version int64) (int64, error) {
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.state(c.id); err != nil {
		return 0, err
	}
	n, err := s.lookup(path)
	if err != nil {
		return 0, err
	}
	if version != -1 && version != n.version {
		return 0, ErrBadVersion
	}
	n.data = append([]byte(nil), data...)
	n.version++
	s.notify(EventDataChanged, path)
	return n.version, nil
}

// Delete removes a node. version -1 matches any version.
func (c *Session) Delete(path string, version int64) error {
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.state(c.id)
	if err != nil {
		return err
	}
	return s.deleteLocked(path, version, st)
}

func (s *Server) deleteLocked(path string, version int64, st *sessionState) error {
	n, err := s.lookup(path)
	if err != nil {
		return err
	}
	if version != -1 && version != n.version {
		return ErrBadVersion
	}
	if len(n.children) > 0 {
		return ErrNotEmpty
	}
	parentPath := parentOf(path)
	parent, err := s.lookup(parentPath)
	if err != nil {
		return err
	}
	parts, _ := split(path) //hydralint:ignore error-discipline path already validated by the lookup above
	delete(parent.children, parts[len(parts)-1])
	if n.owner != 0 {
		if owner, ok := s.sessions[n.owner]; ok {
			delete(owner.ephem, path)
		}
	}
	_ = st
	s.notify(EventDeleted, path)
	s.notify(EventChildrenChanged, parentPath)
	return nil
}

// Children lists a node's children, sorted.
func (c *Session) Children(path string) ([]string, error) {
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.state(c.id); err != nil {
		return nil, err
	}
	n, err := s.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Exists reports whether path exists.
func (c *Session) Exists(path string) (bool, error) {
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.state(c.id); err != nil {
		return false, err
	}
	_, err := s.lookup(path)
	if err == ErrNoNode {
		return false, nil
	}
	return err == nil, err
}

// Watch subscribes to events on path: creation/deletion/data changes of the
// node and membership changes of its children. Unlike ZooKeeper's one-shot
// watches these are persistent until Unwatch; under overflow the oldest
// event is dropped (consumers are level-triggered and re-read state).
func (c *Session) Watch(path string) (<-chan Event, func(), error) {
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.state(c.id); err != nil {
		return nil, nil, err
	}
	s.nextWat++
	id := s.nextWat
	w := &watcher{path: path, ch: make(chan Event, 128), sessionID: c.id}
	s.watchers[id] = w
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.watchers, id)
	}
	return w.ch, cancel, nil
}

// Close expires the session immediately, deleting its ephemerals.
func (c *Session) Close() {
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.sessions[c.id]; ok && !st.expired {
		s.expireLocked(st)
	}
}

// Tick expires sessions whose heartbeat lapsed; the live server calls this
// from a ticker goroutine, tests call it after advancing a manual clock.
// It returns the number of sessions expired.
func (s *Server) Tick() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	n := 0
	for _, st := range s.sessions {
		if !st.expired && now-st.lastPing > s.timeout {
			s.expireLocked(st)
			n++
		}
	}
	return n
}

// expireLocked removes a session's ephemerals and notifies its watchers.
func (s *Server) expireLocked(st *sessionState) {
	st.expired = true
	paths := make([]string, 0, len(st.ephem))
	for p := range st.ephem {
		paths = append(paths, p)
	}
	// Delete deepest-first so parents empty out.
	sort.Slice(paths, func(i, j int) bool { return len(paths[i]) > len(paths[j]) })
	for _, p := range paths {
		//hydralint:ignore error-discipline best-effort ephemeral cleanup on session expiry; a non-empty dir is simply kept
		_ = s.deleteLocked(p, -1, st)
	}
	for id, w := range s.watchers {
		if w.sessionID == st.id {
			select {
			case w.ch <- Event{Type: EventSessionExpired}:
			default:
			}
			delete(s.watchers, id)
		}
	}
}

// SessionAlive reports whether a session is live (test/SWAT introspection).
func (s *Server) SessionAlive(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[id]
	return ok && !st.expired
}

// EnsurePath creates every missing component of path as a persistent node.
func (c *Session) EnsurePath(path string) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, p := range parts {
		cur += "/" + p
		if _, err := c.Create(cur, nil, FlagPersistent); err != nil && err != ErrNodeExists {
			return err
		}
	}
	return nil
}
