// Package testutil holds small helpers shared by the package tests.
// hydralint's error-discipline pass covers _test.go files too, and most
// test setup wants "this cannot fail; abort loudly if it does" — these
// helpers make that the one-line default instead of a discarded error.
// They panic rather than taking a testing.TB so a multi-value call can be
// wrapped directly (`v := testutil.Must1(store.Get(k))`); a panic in a test
// fails it with a full stack trace.
package testutil

// Must panics if err is non-nil.
func Must(err error) {
	if err != nil {
		panic(err)
	}
}

// Must1 returns v after panicking if err is non-nil, so setup calls like
// `v := Must1(store.Get(k))` stay one line.
func Must1[T any](v T, err error) T {
	Must(err)
	return v
}

// Must2 is Must1 for two-value results (e.g. watch registration returning a
// channel and a cancel func).
func Must2[A, B any](a A, b B, err error) (A, B) {
	Must(err)
	return a, b
}

// Must3 is Must1 for three-value results (e.g. kv.Store.ReadAt's
// bytes/guardian/lease triple).
func Must3[A, B, C any](a A, b B, c C, err error) (A, B, C) {
	Must(err)
	return a, b, c
}

// Getter is anything that reads a key — client.Client, a recording wrapper,
// or a store adaptor. Declared structurally so testutil does not import the
// client package (whose own tests import testutil).
type Getter interface {
	Get(key []byte) ([]byte, error)
}

// GetString reads key and returns the value as a string. The common test
// shape "fetch and compare" without per-call byte conversions.
func GetString(g Getter, key string) (string, error) {
	v, err := g.Get([]byte(key))
	return string(v), err
}
