package bench

import (
	"fmt"

	"hydradb/internal/sim"
	"hydradb/internal/simcluster"
	"hydradb/internal/stats"
)

// Figure 2 models the MapReduce acceleration experiment (§2.1): Hadoop and
// Spark applications reading their input either from in-memory HDFS or
// through the HydraDB cache layer (over TCP and over RDMA).
//
// The block path is simulated: mapper tasks read 64 MB blocks, each block
// fetched as 16 × 4 MB chunks (the paper's chunking). Per-path byte costs
// reflect the 2015 stacks: in-memory HDFS streams through the JVM DFSClient
// with checksums and protobuf RPCs (~300 MB/s per reader), HydraDB over
// IPoIB-TCP moves ~1.3 GB/s, and HydraDB over RDMA approaches the 40 Gbps
// wire. Application speedup then follows from each app's I/O-time fraction
// (the share of job time spent reading input, chosen per application class),
// via speedup = 1 / ((1-f) + f·(rate_old/rate_new)).
const (
	blockBytes      = 64 << 20
	chunkBytes      = 4 << 20
	hdfsByteNs      = 3.1     // ~320 MB/s effective in-memory HDFS read path
	hydraTCPByteNs  = 0.75    // ~1.3 GB/s over IPoIB TCP
	hydraRDMAByteNs = 0.18    // ~5.5 GB/s one-sided RDMA Reads
	nnRPCNs         = 70_000  // namenode open/locate RPC per block (TCP RT)
	hdfsPerBlockNs  = 450_000 // DFSClient stream setup, checksum finalize
	chunkTCPRTNs    = 66_000  // request/response kernel crossings per chunk
	chunkRDMARTNs   = 2_200   // one-sided read round trip per chunk
)

// fig02App is one application profile: its class and the fraction of its
// in-memory-HDFS runtime spent on input I/O.
type fig02App struct {
	Name   string
	IOFrac float64
}

var fig02Apps = []fig02App{
	{"Hadoop TestDFSIO-read", 0.97},
	{"Hadoop Data Loading", 0.92},
	{"Hadoop WordCount", 0.55},
	{"Hadoop Grep", 0.50},
	{"Spark WordCount", 0.28},
	{"Spark Grep", 0.24},
	{"Spark KMeans", 0.08},
	{"Spark PageRank", 0.05},
}

// fig02BlockRates measures aggregate block throughput (blocks/s) per path
// with a small DES: mappers read blocks in a closed loop against a shared
// server NIC, so contention is included.
func fig02BlockRates(mappers, blocks int) (hdfs, hydraTCP, hydraRDMA float64) {
	run := func(perChunkRT int64, byteNs float64, perBlock int64) float64 {
		eng := sim.NewEngine(1)
		nic := sim.NewResource(eng, "server-nic", 1)
		done := 0
		var read func()
		chunkService := int64(float64(chunkBytes) * byteNs)
		chunks := blockBytes / chunkBytes
		read = func() {
			if done >= blocks {
				return
			}
			done++
			// Namenode / stream setup per block.
			eng.After(perBlock+nnRPCNs, func() {
				remaining := chunks
				var fetch func()
				fetch = func() {
					nic.Acquire(chunkService, func() {
						eng.After(perChunkRT, func() {
							remaining--
							if remaining > 0 {
								fetch()
							} else {
								read()
							}
						})
					})
				}
				fetch()
			})
		}
		for m := 0; m < mappers; m++ {
			eng.After(int64(m), read)
		}
		eng.Run()
		return float64(blocks) / (float64(eng.Now()) / 1e9)
	}
	hdfs = run(0, hdfsByteNs, hdfsPerBlockNs)
	hydraTCP = run(chunkTCPRTNs, hydraTCPByteNs, 0)
	hydraRDMA = run(chunkRDMARTNs, hydraRDMAByteNs, 0)
	return
}

// Fig02 reproduces Figure 2: per-application speedup of the HydraDB cache
// layer over in-memory HDFS, with RDMA and TCP transports.
func Fig02(s Scale) *stats.Table {
	blocks := 64
	if s.Name == "full" {
		blocks = 512
	}
	hdfs, tcp, rdma := fig02BlockRates(4, blocks)
	speedup := func(f, rateNew float64) float64 {
		return 1 / ((1 - f) + f*(hdfs/rateNew))
	}
	t := &stats.Table{
		Title:   "Figure 2 — MapReduce acceleration vs in-memory HDFS (" + s.Name + " scale)",
		Headers: []string{"application", "io frac", "HydraDB(RDMA) speedup", "HydraDB(TCP) speedup"},
	}
	for _, app := range fig02Apps {
		t.AddRow(app.Name,
			fmt.Sprintf("%.2f", app.IOFrac),
			fmt.Sprintf("%.2fx", speedup(app.IOFrac, rdma)),
			fmt.Sprintf("%.2fx", speedup(app.IOFrac, tcp)))
	}
	t.AddRow("(block rates blk/s)", "-",
		fmt.Sprintf("%.0f", rdma), fmt.Sprintf("%.0f (HDFS %.0f)", tcp, hdfs))
	return t
}

// Fig03 reproduces Figure 3: G2 Sensemaking throughput versus engine count,
// HydraDB against an in-memory relational store (§2.2). Each engine is a
// closed-loop actor performing observation processing: entity lookup,
// assertion compute, entity update. The relational baseline serializes
// through a central database engine with SQL-path per-op cost; HydraDB
// spreads lookups/updates across shards with microsecond operations.
func Fig03(s Scale) *stats.Table {
	const (
		computeNs   = 120_000 // per-observation sensemaking compute
		dbOpNs      = 20_000  // relational store per-op (parse/plan/lock)
		hydraOpNs   = 3_000   // HydraDB GET/PUT round trip (measured, Fig. 9)
		hydraShards = 4
		shardSvcNs  = 1_000
		obsPerEng   = 400
	)
	run := func(engines int, hydra bool) float64 {
		eng := sim.NewEngine(1)
		var db *sim.Resource
		var shards []*sim.Resource
		if hydra {
			for i := 0; i < hydraShards; i++ {
				shards = append(shards, sim.NewResource(eng, "shard", 1))
			}
		} else {
			db = sim.NewResource(eng, "db", 1)
		}
		done := 0
		total := engines * obsPerEng
		var observe func(id int, left int)
		kvOp := func(id int, cont func()) {
			if hydra {
				sh := shards[id%hydraShards]
				sh.Acquire(shardSvcNs, func() { eng.After(hydraOpNs, cont) })
			} else {
				db.Acquire(dbOpNs, cont)
			}
		}
		observe = func(id, left int) {
			if left == 0 {
				done++
				return
			}
			// lookup -> compute -> update
			kvOp(id, func() {
				eng.After(computeNs, func() {
					kvOp(id, func() {
						observe(id, left-1)
					})
				})
			})
		}
		for i := 0; i < engines; i++ {
			i := i
			eng.After(int64(i), func() { observe(i, obsPerEng) })
		}
		eng.Run()
		return float64(total) / (float64(eng.Now()) / 1e9)
	}
	t := &stats.Table{
		Title:   "Figure 3 — G2 Sensemaking engines (" + s.Name + " scale)",
		Headers: []string{"engines", "HydraDB obs/s", "in-memory DB obs/s", "ratio"},
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		h := run(n, true)
		d := run(n, false)
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.0f", h), fmt.Sprintf("%.0f", d),
			fmt.Sprintf("%.1fx", h/d))
	}
	return t
}

// ensure simcluster is linked for cost-model documentation cross-refs.
var _ = simcluster.DefaultCostModel
