// Read-plane probe surface (DESIGN.md §13): the concurrent, read-only GET
// path used by shard reader goroutines. It mirrors the client's one-sided
// path — table probe, guardian validation, lease check — but runs in-process
// inside a ReadGate section, which pins every published byte it can reach
// (see readgate.go for the safety argument). The owning shard loop remains
// the only mutator.

package kv

import (
	"bytes"
	"encoding/binary"

	"hydradb/internal/hashtable"
	"hydradb/internal/hashx"
	"hydradb/internal/lease"
)

// ProbeStatus classifies the outcome of a read-plane probe.
type ProbeStatus uint8

const (
	// ProbeHit: the visit callback ran with the live value.
	ProbeHit ProbeStatus = iota
	// ProbeMiss: the key is definitively absent from its (chain-free) root
	// bucket; safe to answer NotFound directly.
	ProbeMiss
	// ProbeTorn: the probe raced a concurrent update (slot flip, detach) and
	// saw a half-transitioned state. The caller may retry or fall back.
	ProbeTorn
	// ProbeFallback: the request needs the owning shard loop — overflow
	// chain on the bucket, or a hit whose lease is due for renewal.
	ProbeFallback
)

// AttachReadGate installs the reader quiescence gate. Must be called before
// any concurrent ProbeGet; from then on ReclaimDue defers whole free passes
// while a probe section is open.
func (s *Store) AttachReadGate(g *ReadGate) { s.gate = g }

// pubVal packs the publication word: arena offset and word-group index of a
// published item, with +1 on the meta index so the zero word means
// "unpublished". Readers trust only this word — never the itemRecord slab,
// which the owner mutates without synchronization.
func pubVal(dataOff uint32, metaIdx int) uint64 {
	return uint64(dataOff)<<32 | uint64(metaIdx+1)
}

// PubWord exposes an item's publication word — model-checker and test hook.
func (s *Store) PubWord(ref uint64) uint64 { return s.pub[ref-1].Load() }

// ProbeGet serves a GET without the owning shard loop: it opens a probe
// section on slot, probes the root bucket, validates the candidate through
// publication word → guardian → key compare → lease, and invokes visit with
// the value while still inside the section (the bytes alias the arena and
// are only pinned until ProbeGet returns, so visit must consume or copy them
// synchronously). visit runs at most once.
//
// hydralint:hotpath
func (s *Store) ProbeGet(slot *ReadSlot, key []byte, visit func(val []byte, ptr RemotePtr, leaseExp int64)) ProbeStatus {
	slot.BeginProbe()
	st := s.probeInSection(key, visit)
	slot.EndProbe()
	return st
}

// hydralint:hotpath
func (s *Store) probeInSection(key []byte, visit func(val []byte, ptr RemotePtr, leaseExp int64)) ProbeStatus {
	var cands [hashtable.SlotsPerBucket]uint64
	n, ok := s.table.ProbeRoot(hashx.Hash(key), &cands)
	if !ok {
		return ProbeFallback
	}
	torn := false
	data := s.arena.Data()
	for i := 0; i < n; i++ {
		ref := cands[i]
		if ref > uint64(len(s.pub)) {
			torn = true // stale slot read beyond the slab
			continue
		}
		pw := s.pub[ref-1].Load()
		if pw == 0 {
			torn = true // detached and reclaimed, or not yet published
			continue
		}
		metaIdx := int(uint32(pw)) - 1
		dataOff := int(uint32(pw >> 32))
		if metaIdx+1 >= s.words.Len() || dataOff+ItemHeaderSize > len(data) {
			torn = true
			continue
		}
		if s.words.Load(metaIdx) != GuardianLive {
			torn = true // detached between slot read and validation
			continue
		}
		// The section pins these bytes (readgate.go): decode directly from
		// the raw region, like ReadAt, so hydradebug canaries cannot fire on
		// a candidate that was detached-but-pinned.
		kl := int(binary.LittleEndian.Uint16(data[dataOff : dataOff+2]))
		vl := int(binary.LittleEndian.Uint32(data[dataOff+2 : dataOff+6]))
		end := dataOff + ItemHeaderSize + kl + vl
		if kl == 0 || kl > MaxKeyLen || vl > MaxValLen || end > len(data) {
			torn = true
			continue
		}
		k, v, okDec := DecodeItem(data[dataOff:end])
		if !okDec {
			torn = true
			continue
		}
		if !bytes.Equal(k, key) {
			continue // signature collision with another key
		}
		leaseExp := int64(s.words.Load(metaIdx + 1))
		if !lease.ValidForRead(leaseExp, s.clock.Now(), 0) {
			// Lease due: only the owner renews leases and popularity, so
			// hand the request over rather than serve reads that would let
			// the client's one-sided pointer cache starve on a stale expiry.
			return ProbeFallback
		}
		visit(v, RemotePtr{
			DataOff: uint32(dataOff),
			DataLen: uint32(end - dataOff),
			MetaIdx: uint32(metaIdx),
		}, leaseExp)
		return ProbeHit
	}
	if torn {
		return ProbeTorn
	}
	return ProbeMiss
}
