// Allocation-budget gates for the request hot paths: the steady-state
// one-sided GET and the pipelined message GET must stay at ≤1 alloc/op.
// These are enforced as tests (not just bench numbers) so a regression
// fails CI rather than silently degrading ns/op.
package hydradb_test

import (
	"testing"

	"hydradb"
)

// TestAllocBudgetOneSidedGet: a warm GetInto into a reused buffer performs
// the RDMA Read, guardian check, and key validation without allocating.
func TestAllocBudgetOneSidedGet(t *testing.T) {
	opts := hydradb.DefaultOptions()
	opts.ShardsPerMachine = 1
	opts.SharedPointerCache = false // private cache: byte-key map interning
	opts.ArenaBytesPerShard = 16 << 20
	opts.MaxItemsPerShard = 1 << 16
	db, err := hydradb.Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c := db.NewClient()
	key := []byte("budgetkey8bytes!")
	if err := c.Put(key, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	// Warm: the first GetInto sizes the read scratch and value buffer.
	buf, err := c.GetInto(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var gerr error
		buf, gerr = c.GetInto(key, buf[:0])
		if gerr != nil || len(buf) != 32 {
			t.Fatalf("get: len=%d err=%v", len(buf), gerr)
		}
	})
	if allocs > 1 {
		t.Fatalf("one-sided GET allocates %.1f/op, budget is 1", allocs)
	}
	// The runs above must actually have exercised the one-sided path.
	snap := c.Counters().Snapshot()
	if snap.RDMAReadHits < 150 {
		t.Fatalf("only %d one-sided hits; path not exercised", snap.RDMAReadHits)
	}
}

// TestAllocBudgetPipelinedGet: a steady-state MultiGet batch on the message
// path amortizes to ≤1 alloc per GET.
func TestAllocBudgetPipelinedGet(t *testing.T) {
	opts := hydradb.DefaultOptions()
	opts.ShardsPerMachine = 1
	opts.DisableRDMARead = true
	opts.SharedPointerCache = false
	opts.ArenaBytesPerShard = 16 << 20
	opts.MaxItemsPerShard = 1 << 16
	db, err := hydradb.Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c := db.NewClient()
	const batch = 16
	keys := make([][]byte, batch)
	for i := range keys {
		keys[i] = []byte{byte('a' + i), 'k', 'e', 'y'}
		if err := c.Put(keys[i], make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm: first batch grows the pipeline scratch.
	if _, err := c.MultiGet(keys); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		vals, gerr := c.MultiGet(keys)
		if gerr != nil || len(vals) != batch || len(vals[0]) != 32 {
			t.Fatalf("multiget: %d results, err=%v", len(vals), gerr)
		}
	})
	if perOp := allocs / batch; perOp > 1 {
		t.Fatalf("pipelined GET allocates %.2f/op, budget is 1", perOp)
	}
}

// TestAllocBudgetReadPlaneGet: a warm message-path GET served by a reader
// goroutine (DESIGN.md §13) stays within the same ≤1 alloc/op budget as the
// shard-loop path. AllocsPerRun counts process-global mallocs, so this pins
// the server-side probe chain — ProbeRoot, publication word, guardian
// check, copy-out, response encode — at zero allocations too: one more
// malloc anywhere on the reader's hit path would blow the budget.
func TestAllocBudgetReadPlaneGet(t *testing.T) {
	opts := hydradb.DefaultOptions()
	opts.ShardsPerMachine = 1
	opts.DisableRDMARead = true
	opts.SharedPointerCache = false
	opts.ReaderThreads = 2
	opts.ArenaBytesPerShard = 16 << 20
	opts.MaxItemsPerShard = 1 << 16
	db, err := hydradb.Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c := db.NewClient()
	key := []byte("budgetkey8bytes!")
	if err := c.Put(key, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	buf, err := c.GetInto(key, nil) // warm: sizes the value buffer
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var gerr error
		buf, gerr = c.GetInto(key, buf[:0])
		if gerr != nil || len(buf) != 32 {
			t.Fatalf("get: len=%d err=%v", len(buf), gerr)
		}
	})
	if allocs > 1 {
		t.Fatalf("read-plane GET allocates %.1f/op, budget is 1", allocs)
	}
	// The runs above must actually have been served by the read plane.
	snap := db.Stats()
	if snap.ReadPlaneHits < 150 {
		t.Fatalf("only %d read-plane hits; probe path not exercised", snap.ReadPlaneHits)
	}
}
