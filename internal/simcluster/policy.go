package simcluster

import "math"

// Pluggable fleet policies. Routing refresh behavior, admission control and
// the failure schedule are interfaces so a policy can be exercised against
// million-client scenarios in simulation before the live cluster adopts it.
// Implementations must be deterministic: same inputs, same outputs.

// AdmissionPolicy decides how much of an offered operation batch proceeds.
// The fleet calls Admit once per machine tick with the cohort's offered op
// count; the remainder is shed (counted, not retried — shed load in an open
// system is the client's problem).
type AdmissionPolicy interface {
	Name() string
	Admit(nowNs int64, offered float64) float64
}

// AlwaysAdmit is the null policy.
type AlwaysAdmit struct{}

// Name identifies the policy.
func (AlwaysAdmit) Name() string { return "always-admit" }

// Admit admits everything.
func (AlwaysAdmit) Admit(_ int64, offered float64) float64 { return offered }

// TokenBucket admits at most RatePerSec operations per second with Burst
// tokens of headroom — the admission-control shape the ROADMAP wants the
// real cluster to adopt once simulation-tested.
type TokenBucket struct {
	RatePerSec float64
	Burst      float64

	tokens float64
	lastNs int64
	primed bool
}

// Name identifies the policy.
func (t *TokenBucket) Name() string { return "token-bucket" }

// Admit refills by elapsed virtual time and admits up to the token balance.
func (t *TokenBucket) Admit(nowNs int64, offered float64) float64 {
	if !t.primed {
		t.tokens = t.Burst
		t.lastNs = nowNs
		t.primed = true
	}
	t.tokens += float64(nowNs-t.lastNs) / 1e9 * t.RatePerSec
	t.lastNs = nowNs
	if t.tokens > t.Burst {
		t.tokens = t.Burst
	}
	admitted := math.Min(offered, t.tokens)
	t.tokens -= admitted
	return admitted
}

// RoutingPolicy governs how a cohort of clients with stale routing tables
// converges after a reconfiguration. Refreshed returns how many of the
// stale clients refresh during one tick in which each stale client issued
// opsPerClient operations against a table whose moved key fraction is
// movedFrac.
type RoutingPolicy interface {
	Name() string
	Refreshed(stale, opsPerClient, movedFrac float64, tickNs int64) float64
}

// BounceRefresh refreshes a client's table the first time one of its
// requests lands on a moved shard and bounces (the paper's WrongShard
// reroute, §4.2): the per-tick refresh probability is the chance of at
// least one bounce, 1-(1-movedFrac)^ops.
type BounceRefresh struct{}

// Name identifies the policy.
func (BounceRefresh) Name() string { return "bounce-refresh" }

// Refreshed applies the at-least-one-bounce probability to the stale set.
func (BounceRefresh) Refreshed(stale, opsPerClient, movedFrac float64, _ int64) float64 {
	if movedFrac <= 0 {
		return 0
	}
	p := 1 - math.Pow(1-movedFrac, opsPerClient)
	return stale * p
}

// PeriodicRefresh re-fetches every client's routing table on a fixed
// period regardless of traffic — convergence is workload-independent but
// costs refresh traffic even in steady state.
type PeriodicRefresh struct{ IntervalNs int64 }

// Name identifies the policy.
func (p PeriodicRefresh) Name() string { return "periodic-refresh" }

// Refreshed lets the tick/interval fraction of stale clients refresh.
func (p PeriodicRefresh) Refreshed(stale, _, _ float64, tickNs int64) float64 {
	if p.IntervalNs <= 0 {
		return stale
	}
	f := float64(tickNs) / float64(p.IntervalNs)
	if f > 1 {
		f = 1
	}
	return stale * f
}

// FleetEventKind tags a scheduled control-plane event.
type FleetEventKind string

// Control-plane event kinds.
const (
	// EventKill fails one machine: its shards become unavailable until the
	// SWAT promotes replacements (a correlated failure is several kills at
	// the same timestamp).
	EventKill FleetEventKind = "kill"
	// EventReconfigure rebuilds the routing ring (shards added/removed) and
	// marks every client's table stale — the convergence experiment.
	EventReconfigure FleetEventKind = "reconfigure"
)

// FleetEvent is one scheduled failure/reconfiguration.
type FleetEvent struct {
	AtNs    int64
	Kind    FleetEventKind
	Machine int // EventKill: which machine dies
	// EventReconfigure: shards removed from / added to the ring.
	RemoveShards int
	AddShards    int
}
