package main

// wait-cycle: build a static wait-for graph and report anything that can
// close into a loop, plus inversions of the declared lock-order DAG.
//
// Nodes are the blockable resources of the module, in the nominal key space
// of liveness.go:
//
//	lock:K  — a sync.Mutex/RWMutex (write and read modes merged into one
//	          node: an RLock still waits behind a writer)
//	chan:K  — a channel identity; rendezvous mailboxes (the read plane's
//	          fallback/done pair) appear here
//	wg:K    — a sync.WaitGroup
//
// Edges mean "making progress on the left may require the right":
//
//	held H, acquire L      →  H → lock:L   (also checked against LockOrder)
//	held H, blocking op K  →  H → chan:K / wg:K
//	blocked send on K      →  chan:K → every lock held at any receive of K
//	blocked recv on K      →  chan:K → every lock held at any send of K
//	wg.Wait on K           →  wg:K → every lock held at any Done/Add of K
//
// A cycle in this graph is a statically possible deadlock; every edge on the
// cycle is reported (each is independently suppressible). The walk tracks
// held locks per function with branch-sensitive merging (a branch that
// returns does not leak its held-set into the fall-through path) and treats
// `defer mu.Unlock()` as holding to function end. It is direct-ops-only:
// a lock acquired inside a callee is attributed to the callee's own context
// — the lease-discipline pass already forces helpers to have clean lock
// summaries, which keeps this approximation honest.
//
// ReadSlot probe sections (BeginProbe/EndProbe) are not graph nodes but a
// contract: their whole point is wait-freedom, so any blocking operation
// inside a section is reported directly.
//
// The lock-order DAG lives in internal/invariant/lockorder.go as ordered
// levels of nominal lock keys; acquiring a lock at a level ≤ a held lock's
// level is an inversion even before it closes a cycle.

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"go/types"
)

type wcHeld struct {
	kind string // "lock" or "gate"
	key  string
}

type wcEdge struct {
	pkg *Package
	pos token.Pos
	why string
}

type wcChanOp struct {
	key      string
	send     bool
	blocking bool
	held     []wcHeld
	pkg      *Package
	pos      token.Pos
}

type wcWgOp struct {
	key  string
	held []wcHeld
	pkg  *Package
	pos  token.Pos
}

type wcGraph struct {
	edges      map[string]map[string]wcEdge
	chanOps    []wcChanOp
	wgDones    []wcWgOp
	wgWaitKeys []string
	levels     map[string]int // lock key → LockOrder level
	rep        func(*Package) *Reporter
}

func (g *wcGraph) addEdge(from, to string, p *Package, pos token.Pos, why string) {
	if from == to && !strings.HasPrefix(from, "lock:") {
		// A goroutine blocking on a channel it also serves elsewhere is not
		// a self-deadlock by itself; only lock re-acquisition self-loops are.
		return
	}
	m := g.edges[from]
	if m == nil {
		m = map[string]wcEdge{}
		g.edges[from] = m
	}
	if _, dup := m[to]; !dup {
		m[to] = wcEdge{pkg: p, pos: pos, why: why}
	}
}

func runWaitCycle(prog *Program, rep func(*Package) *Reporter) {
	g := &wcGraph{
		edges:  map[string]map[string]wcEdge{},
		levels: parseLockOrder(prog),
		rep:    rep,
	}
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			// Every function body — declarations and literals — is its own
			// context with an empty held-set; nested literals are excluded
			// from the enclosing walk and walked separately.
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					g.walkContext(p, fd.Body.List, nil)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
					g.walkContext(p, lit.Body.List, nil)
				}
				return true
			})
		}
	}
	g.peerEdges()
	g.reportCycles()
}

// walkContext processes one function body's statements with branch-aware
// held tracking.
func (g *wcGraph) walkContext(p *Package, stmts []ast.Stmt, held []wcHeld) {
	g.walkStmts(p, stmts, held)
}

func heldCopy(held []wcHeld) []wcHeld {
	out := make([]wcHeld, len(held))
	copy(out, held)
	return out
}

func heldUnion(a, b []wcHeld) []wcHeld {
	out := heldCopy(a)
	for _, h := range b {
		found := false
		for _, have := range out {
			if have == h {
				found = true
				break
			}
		}
		if !found {
			out = append(out, h)
		}
	}
	return out
}

func heldRemoveLast(held []wcHeld, kind, key string) []wcHeld {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].kind == kind && held[i].key == key {
			return append(heldCopy(held[:i]), held[i+1:]...)
		}
	}
	return held
}

// walkStmts walks a statement list, returning the held-set at fall-through
// and whether every path terminated (return / no-return call).
func (g *wcGraph) walkStmts(p *Package, stmts []ast.Stmt, held []wcHeld) ([]wcHeld, bool) {
	for _, s := range stmts {
		var term bool
		held, term = g.walkStmt(p, s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (g *wcGraph) walkStmt(p *Package, s ast.Stmt, held []wcHeld) ([]wcHeld, bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		return g.walkStmts(p, s.List, held)
	case *ast.LabeledStmt:
		return g.walkStmt(p, s.Stmt, held)
	case *ast.IfStmt:
		held, _ = g.walkStmt(p, s.Init, held)
		g.scanExprOps(p, s.Cond, held)
		bodyOut, bodyTerm := g.walkStmts(p, s.Body.List, heldCopy(held))
		elseOut, elseTerm := heldCopy(held), false
		if s.Else != nil {
			elseOut, elseTerm = g.walkStmt(p, s.Else, heldCopy(held))
		}
		switch {
		case bodyTerm && elseTerm:
			return held, true
		case bodyTerm:
			return elseOut, false
		case elseTerm:
			return bodyOut, false
		default:
			return heldUnion(bodyOut, elseOut), false
		}
	case *ast.ForStmt:
		held, _ = g.walkStmt(p, s.Init, held)
		g.scanExprOps(p, s.Cond, held)
		bodyOut, _ := g.walkStmts(p, s.Body.List, heldCopy(held))
		if s.Post != nil {
			bodyOut, _ = g.walkStmt(p, s.Post, bodyOut)
		}
		return heldUnion(held, bodyOut), false
	case *ast.RangeStmt:
		if tv, ok := p.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				if key, ok := livenessKey(p, s.X); ok {
					g.chanOp(p, s.X.Pos(), key, false, true, held)
				}
			}
		}
		g.scanExprOps(p, s.X, held)
		bodyOut, _ := g.walkStmts(p, s.Body.List, heldCopy(held))
		return heldUnion(held, bodyOut), false
	case *ast.SwitchStmt:
		held, _ = g.walkStmt(p, s.Init, held)
		g.scanExprOps(p, s.Tag, held)
		out := heldCopy(held)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					g.scanExprOps(p, e, held)
				}
				clOut, clTerm := g.walkStmts(p, cc.Body, heldCopy(held))
				if !clTerm {
					out = heldUnion(out, clOut)
				}
			}
		}
		return out, false
	case *ast.TypeSwitchStmt:
		held, _ = g.walkStmt(p, s.Init, held)
		out := heldCopy(held)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				clOut, clTerm := g.walkStmts(p, cc.Body, heldCopy(held))
				if !clTerm {
					out = heldUnion(out, clOut)
				}
			}
		}
		return out, false
	case *ast.SelectStmt:
		blocking := !selectHasDefault(s)
		out := heldCopy(held)
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			if comm.Comm != nil {
				g.selectCommOp(p, comm.Comm, blocking, held)
			}
			clOut, clTerm := g.walkStmts(p, comm.Body, heldCopy(held))
			if !clTerm {
				out = heldUnion(out, clOut)
			}
		}
		return out, false
	case *ast.SendStmt:
		g.scanExprOps(p, s.Value, held)
		if key, ok := livenessKey(p, s.Chan); ok {
			g.chanOp(p, s.Pos(), key, true, true, held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			g.scanExprOps(p, e, held)
		}
		for _, e := range s.Lhs {
			g.scanExprOps(p, e, held)
		}
	case *ast.ExprStmt:
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			var term bool
			held, term = g.callOp(p, call, held)
			g.scanCallArgs(p, call, held)
			return held, term
		}
		g.scanExprOps(p, s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end (no action);
		// defer wg.Done() runs at exit where locks are normally released.
		if recv, ok := isWaitGroupMethod(p, s.Call, "Done"); ok {
			if key, ok := livenessKey(p, recv); ok {
				g.wgDones = append(g.wgDones, wcWgOp{key: key, pkg: p, pos: s.Pos()})
			}
		}
		g.scanCallArgs(p, s.Call, held)
	case *ast.GoStmt:
		// The spawned call runs in another context; its literal body was
		// already collected as a separate context. Arguments evaluate here.
		g.scanCallArgs(p, s.Call, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			g.scanExprOps(p, e, held)
		}
		return held, true
	case *ast.IncDecStmt:
		g.scanExprOps(p, s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						g.scanExprOps(p, e, held)
					}
				}
			}
		}
	default:
		// BranchStmt, EmptyStmt, etc: no wait semantics.
	}
	return held, false
}

// callOp handles a call in statement position: lock ops mutate the held-set,
// WaitGroup and probe-section ops record waits. Returns the new held-set and
// whether the call never returns.
func (g *wcGraph) callOp(p *Package, call *ast.CallExpr, held []wcHeld) ([]wcHeld, bool) {
	if isNoReturnCall(p, call) {
		return held, true
	}
	if recv, mode, dir, ok := lockOpPkg(p, call); ok && mode != "" {
		key, renders := livenessKey(p, recv)
		if !renders {
			return held, false
		}
		if dir > 0 {
			g.acquireLock(p, call.Pos(), key, held)
			return append(heldCopy(held), wcHeld{kind: "lock", key: key}), false
		}
		return heldRemoveLast(held, "lock", key), false
	}
	if recv, ok := isWaitGroupMethod(p, call, "Wait"); ok {
		if key, renders := livenessKey(p, recv); renders {
			g.blockCheckGate(p, call.Pos(), held, "sync.WaitGroup Wait")
			for _, h := range held {
				if h.kind == "lock" {
					g.addEdge("lock:"+h.key, "wg:"+key, p, call.Pos(),
						"waiting on WaitGroup "+key+" while holding "+h.key)
				}
			}
			g.wgWaitKeys = append(g.wgWaitKeys, key)
		}
		return held, false
	}
	for _, m := range []string{"Done", "Add"} {
		if recv, ok := isWaitGroupMethod(p, call, m); ok {
			if key, renders := livenessKey(p, recv); renders {
				g.wgDones = append(g.wgDones, wcWgOp{key: key, held: heldCopy(held), pkg: p, pos: call.Pos()})
			}
			return held, false
		}
	}
	if dir, ok := isProbeSectionMethod(p, call); ok {
		if dir > 0 {
			return append(heldCopy(held), wcHeld{kind: "gate", key: "probe"}), false
		}
		return heldRemoveLast(held, "gate", "probe"), false
	}
	return held, false
}

// acquireLock emits held→lock edges and the lock-order check for one
// acquisition.
func (g *wcGraph) acquireLock(p *Package, pos token.Pos, key string, held []wcHeld) {
	g.blockCheckGate(p, pos, held, "mutex acquisition")
	for _, h := range held {
		if h.kind != "lock" {
			continue
		}
		g.addEdge("lock:"+h.key, "lock:"+key, p, pos,
			"acquiring "+key+" while holding "+h.key)
		lvlHeld, okHeld := g.levels[h.key]
		lvlNew, okNew := g.levels[key]
		if okHeld && okNew && h.key != key && lvlHeld >= lvlNew {
			g.rep(p).report("wait-cycle", pos,
				"lock-order inversion: acquiring %s (level %d) while holding %s (level %d); the declared order in internal/invariant/lockorder.go requires strictly increasing levels",
				key, lvlNew, h.key, lvlHeld)
		}
	}
	if g.heldHas(held, "lock", key) {
		g.addEdge("lock:"+key, "lock:"+key, p, pos, "re-acquiring "+key+" already held")
	}
}

func (g *wcGraph) heldHas(held []wcHeld, kind, key string) bool {
	for _, h := range held {
		if h.kind == kind && h.key == key {
			return true
		}
	}
	return false
}

// chanOp records a channel operation and, when blocking, its held→chan
// edges and the probe-section contract.
func (g *wcGraph) chanOp(p *Package, pos token.Pos, key string, send, blocking bool, held []wcHeld) {
	g.chanOps = append(g.chanOps, wcChanOp{key: key, send: send, blocking: blocking, held: heldCopy(held), pkg: p, pos: pos})
	if !blocking {
		return
	}
	op := "receive from"
	if send {
		op = "send to"
	}
	g.blockCheckGate(p, pos, held, "channel "+op+" "+key)
	for _, h := range held {
		if h.kind == "lock" {
			g.addEdge("lock:"+h.key, "chan:"+key, p, pos,
				"blocking "+op+" "+key+" while holding "+h.key)
		}
	}
}

// blockCheckGate reports a blocking operation inside a ReadSlot probe
// section — the read plane's sections are wait-free by contract.
func (g *wcGraph) blockCheckGate(p *Package, pos token.Pos, held []wcHeld, what string) {
	if g.heldHas(held, "gate", "probe") {
		g.rep(p).report("wait-cycle", pos,
			"%s inside a ReadSlot probe section; probe sections must never block (DESIGN.md §13)", what)
	}
}

// selectCommOp records the communication op of one select clause.
func (g *wcGraph) selectCommOp(p *Package, comm ast.Stmt, blocking bool, held []wcHeld) {
	switch comm := comm.(type) {
	case *ast.SendStmt:
		if key, ok := livenessKey(p, comm.Chan); ok {
			g.chanOp(p, comm.Pos(), key, true, blocking, held)
		}
	case *ast.ExprStmt:
		g.selectRecvOp(p, comm.X, blocking, held)
	case *ast.AssignStmt:
		for _, e := range comm.Rhs {
			g.selectRecvOp(p, e, blocking, held)
		}
	}
}

func (g *wcGraph) selectRecvOp(p *Package, e ast.Expr, blocking bool, held []wcHeld) {
	if ue, ok := unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
		if key, ok := livenessKey(p, ue.X); ok {
			g.chanOp(p, ue.Pos(), key, false, blocking, held)
		}
	}
}

// scanExprOps finds blocking receives embedded in an expression (outside
// select statements a receive always blocks). Function literals are separate
// contexts and skipped.
func (g *wcGraph) scanExprOps(p *Package, e ast.Expr, held []wcHeld) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if key, ok := livenessKey(p, n.X); ok {
					g.chanOp(p, n.Pos(), key, false, true, held)
				}
			}
		}
		return true
	})
}

func (g *wcGraph) scanCallArgs(p *Package, call *ast.CallExpr, held []wcHeld) {
	for _, a := range call.Args {
		g.scanExprOps(p, a, held)
	}
}

// peerEdges adds the cross-goroutine direction: a blocked op on a channel
// (or WaitGroup) depends on the locks held wherever the matching op runs.
func (g *wcGraph) peerEdges() {
	bySendBlocked := map[string]wcChanOp{}
	byRecvBlocked := map[string]wcChanOp{}
	for _, op := range g.chanOps {
		if !op.blocking {
			continue
		}
		if op.send {
			if _, ok := bySendBlocked[op.key]; !ok {
				bySendBlocked[op.key] = op
			}
		} else if _, ok := byRecvBlocked[op.key]; !ok {
			byRecvBlocked[op.key] = op
		}
	}
	for _, op := range g.chanOps {
		if op.send {
			if blocked, ok := byRecvBlocked[op.key]; ok {
				for _, h := range op.held {
					if h.kind == "lock" {
						g.addEdge("chan:"+op.key, "lock:"+h.key, blocked.pkg, blocked.pos,
							"a receive on "+op.key+" waits for a sender that holds "+h.key)
					}
				}
			}
		} else {
			if blocked, ok := bySendBlocked[op.key]; ok {
				for _, h := range op.held {
					if h.kind == "lock" {
						g.addEdge("chan:"+op.key, "lock:"+h.key, blocked.pkg, blocked.pos,
							"a send on "+op.key+" waits for a receiver that holds "+h.key)
					}
				}
			}
		}
	}
	waited := map[string]bool{}
	for _, key := range g.wgWaitKeys {
		waited[key] = true
	}
	for _, done := range g.wgDones {
		if !waited[done.key] {
			continue
		}
		for _, h := range done.held {
			if h.kind == "lock" {
				g.addEdge("wg:"+done.key, "lock:"+h.key, done.pkg, done.pos,
					"WaitGroup "+done.key+" completes only after code holding "+h.key+" runs Done")
			}
		}
	}
}

// reportCycles runs SCC over the wait-for graph and reports every edge that
// sits inside a strongly connected component (or a lock self-loop).
func (g *wcGraph) reportCycles() {
	nodes := make([]string, 0, len(g.edges))
	for n := range g.edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	// Tarjan SCC, iterative enough for our graph sizes via recursion.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	counter, comps := 0, 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(g.edges[v]))
		for to := range g.edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if _, seen := index[to]; !seen {
				strong(to)
				if low[to] < low[v] {
					low[v] = low[to]
				}
			} else if onStack[to] && index[to] < low[v] {
				low[v] = index[to]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = comps
				if w == v {
					break
				}
			}
			comps++
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}

	// Component membership count (a component is cyclic when it has ≥2
	// members, or a self-loop).
	size := map[int]int{}
	for _, c := range comp {
		size[c]++
	}
	members := map[int][]string{}
	for n, c := range comp {
		members[c] = append(members[c], n)
	}
	for _, from := range nodes {
		tos := make([]string, 0, len(g.edges[from]))
		for to := range g.edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			cyclic := from == to ||
				(comp[from] == comp[to] && size[comp[from]] >= 2)
			if !cyclic {
				continue
			}
			e := g.edges[from][to]
			ms := members[comp[from]]
			sort.Strings(ms)
			g.rep(e.pkg).report("wait-cycle", e.pos,
				"wait-for edge %s → %s closes a static wait cycle through {%s}: %s — break the cycle or reorder the waits",
				from, to, strings.Join(ms, ", "), e.why)
		}
	}
}

// parseLockOrder reads the declared lock-order DAG: the LockOrder variable
// in the module's internal/invariant package, a [][]string of nominal lock
// keys grouped by level, earlier levels acquired first.
func parseLockOrder(prog *Program) map[string]int {
	levels := map[string]int{}
	for _, p := range prog.Pkgs {
		if p.RelPath != "internal/invariant" {
			continue
		}
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if name.Name != "LockOrder" || i >= len(vs.Values) {
							continue
						}
						outer, ok := vs.Values[i].(*ast.CompositeLit)
						if !ok {
							continue
						}
						for lvl, elt := range outer.Elts {
							inner, ok := elt.(*ast.CompositeLit)
							if !ok {
								continue
							}
							for _, se := range inner.Elts {
								lit, ok := se.(*ast.BasicLit)
								if !ok || lit.Kind != token.STRING {
									continue
								}
								if key, err := strconv.Unquote(lit.Value); err == nil {
									levels[key] = lvl
								}
							}
						}
					}
				}
			}
		}
	}
	return levels
}
