package baselines

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestMemcachedLikeBasics(t *testing.T) {
	s := NewMemcachedLike(16)
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("empty get")
	}
	s.Set([]byte("a"), []byte("1"))
	v, ok := s.Get([]byte("a"))
	if !ok || string(v) != "1" {
		t.Fatalf("get: %q %v", v, ok)
	}
	s.Set([]byte("a"), []byte("2"))
	v, _ = s.Get([]byte("a"))
	if string(v) != "2" {
		t.Fatal("overwrite failed")
	}
	if !s.Delete([]byte("a")) || s.Delete([]byte("a")) {
		t.Fatal("delete semantics")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestMemcachedLikeCopies(t *testing.T) {
	s := NewMemcachedLike(4)
	val := []byte("mutable")
	s.Set([]byte("k"), val)
	val[0] = 'X'
	got, _ := s.Get([]byte("k"))
	if string(got) != "mutable" {
		t.Fatal("set did not copy")
	}
	got[0] = 'Y'
	got2, _ := s.Get([]byte("k"))
	if string(got2) != "mutable" {
		t.Fatal("get did not copy")
	}
}

func TestMemcachedLikeConcurrent(t *testing.T) {
	s := NewMemcachedLike(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("key%03d", (w*13+i)%200))
				switch i % 3 {
				case 0:
					s.Set(k, []byte{byte(i)})
				case 1:
					s.Get(k)
				default:
					s.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestRedisLikeShardingStable(t *testing.T) {
	r := NewRedisLike(8)
	if r.Instances() != 8 {
		t.Fatal("instances")
	}
	key := []byte("user123")
	inst := r.InstanceOf(key)
	for i := 0; i < 10; i++ {
		if r.InstanceOf(key) != inst {
			t.Fatal("routing unstable")
		}
	}
	r.Set(inst, key, []byte("v"))
	v, ok := r.Get(inst, key)
	if !ok || string(v) != "v" {
		t.Fatalf("get: %q %v", v, ok)
	}
	// Other instances do not see the key.
	other := (inst + 1) % 8
	if _, ok := r.Get(other, key); ok {
		t.Fatal("cross-instance leak")
	}
	if !r.Delete(inst, key) || r.Delete(inst, key) {
		t.Fatal("delete semantics")
	}
}

func TestRedisLikeSpread(t *testing.T) {
	r := NewRedisLike(8)
	for i := 0; i < 4000; i++ {
		k := []byte(fmt.Sprintf("user%08d", i))
		r.Set(r.InstanceOf(k), k, []byte("v"))
	}
	if r.Len() != 4000 {
		t.Fatalf("len = %d", r.Len())
	}
	for i, m := range r.instances {
		if len(m) < 250 || len(m) > 750 {
			t.Fatalf("instance %d holds %d keys", i, len(m))
		}
	}
}

func TestRAMCloudLikeBasics(t *testing.T) {
	s := NewRAMCloudLike(1 << 16)
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("empty get")
	}
	s.Set([]byte("a"), []byte("one"))
	v, ok := s.Get([]byte("a"))
	if !ok || string(v) != "one" {
		t.Fatalf("get: %q %v", v, ok)
	}
	// Log-structured: update appends, old bytes remain in the log.
	before := s.LogBytes()
	s.Set([]byte("a"), []byte("two"))
	if s.LogBytes() <= before {
		t.Fatal("update did not append")
	}
	v, _ = s.Get([]byte("a"))
	if string(v) != "two" {
		t.Fatal("latest version not returned")
	}
	if !s.Delete([]byte("a")) {
		t.Fatal("delete failed")
	}
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("get after tombstone")
	}
	if s.Delete([]byte("a")) {
		t.Fatal("double delete")
	}
	// Re-insert after tombstone.
	s.Set([]byte("a"), []byte("three"))
	if v, _ := s.Get([]byte("a")); string(v) != "three" {
		t.Fatal("reinsert failed")
	}
}

func TestRAMCloudLikeSegmentRollover(t *testing.T) {
	s := NewRAMCloudLike(256)
	val := bytes.Repeat([]byte("x"), 50)
	for i := 0; i < 50; i++ {
		s.Set([]byte(fmt.Sprintf("key%04d", i)), val)
	}
	if s.Segments() < 10 {
		t.Fatalf("segments = %d, expected rollover", s.Segments())
	}
	for i := 0; i < 50; i++ {
		if _, ok := s.Get([]byte(fmt.Sprintf("key%04d", i))); !ok {
			t.Fatalf("key%04d lost across segments", i)
		}
	}
	if s.Len() != 50 {
		t.Fatalf("len = %d", s.Len())
	}
}

func BenchmarkMemcachedLikeGet(b *testing.B) {
	s := NewMemcachedLike(64)
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%012d", i))
		s.Set(keys[i], bytes.Repeat([]byte("v"), 32))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(keys[i&1023])
	}
}

func BenchmarkRAMCloudLikeSet(b *testing.B) {
	s := NewRAMCloudLike(8 << 20)
	val := bytes.Repeat([]byte("v"), 32)
	key := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(key, fmt.Sprintf("user%012d", i&0xFFFFF))
		s.Set(key, val)
	}
}
