package shard

import (
	"runtime"

	"hydradb/internal/timing"
)

// idleBackoff is the adaptive idle policy of the poll loops (§4.2.1),
// replacing the fixed IdleSpins-then-Gosched pattern: the first IdleSpins
// empty rounds yield the processor and re-poll immediately, so a fresh
// request arriving during a burst is picked up at poll latency; after that
// the loop naps, doubling the nap from NapNs up to NapMaxNs. An idle shard
// therefore converges to one wakeup per NapMaxNs (negligible CPU), and the
// worst-case pickup delay for a fresh request after an arbitrarily long idle
// period stays bounded by one nap cap.
type idleBackoff struct {
	spins    int
	napNs    int64
	napMaxNs int64

	rounds int   // empty rounds since the last progress
	nap    int64 // current nap length; 0 while still in the spin phase
}

func (s *Shard) newBackoff() idleBackoff {
	return idleBackoff{spins: s.cfg.IdleSpins, napNs: s.cfg.NapNs, napMaxNs: s.cfg.NapMaxNs}
}

// reset returns to the spin phase after a productive poll round.
func (b *idleBackoff) reset() { b.rounds, b.nap = 0, 0 }

// idle records one empty poll round, blocks according to the current phase,
// and reports whether it napped — nap rounds are where the poll loops run
// housekeeping (reclamation) since the request path is provably quiet.
func (b *idleBackoff) idle() bool {
	if b.rounds < b.spins {
		b.rounds++
		// Yield rather than pure-spin: keeps single-core hosts live and
		// lets sibling readers and clients run between polls.
		runtime.Gosched()
		return false
	}
	if b.nap == 0 {
		b.nap = b.napNs
		if b.nap < 1 {
			b.nap = 1
		}
	} else if b.nap < b.napMaxNs {
		b.nap <<= 1
	}
	if b.nap > b.napMaxNs {
		b.nap = b.napMaxNs
	}
	timing.Sleep(b.nap)
	return true
}
