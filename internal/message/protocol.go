package message

import "hydradb/internal/protocolspec"

// RingSpec declares the mailbox ring's indicator protocol: a slot's
// body copy completes before WriteLocal releases the head indicator
// word, Consume retires the indicator before the slot is reused, and
// Poll size-guards the indicator against torn reads so a half-written
// length can never over-slice into the neighbouring slot. Feeds the
// "mailbox" model footprint.
var RingSpec = protocolspec.Spec{
	Name:      "mailbox-ring",
	Model:     "mailbox",
	Packages:  []string{"hydradb/internal/message", "hydradb/internal/arena"},
	SchedTags: []string{"word"},
	Words: []protocolspec.Word{{
		Name:      "hydradb/internal/arena.WordArea.words[]",
		Role:      protocolspec.ReadyWord,
		Footprint: true,
		Writers: []string{
			"(*hydradb/internal/arena.WordArea).AllocGroup",
			"(*hydradb/internal/arena.WordArea).Store",
			"(*hydradb/internal/arena.WordArea).CompareAndSwap",
		},
		Why: "ring indicator words live in the same registered word area as the kv guardians; the area methods are the only direct stores",
	}},
	Edges: []protocolspec.Edge{{
		Kind: protocolspec.PayloadBeforeRelease,
		From: "(*hydradb/internal/message.Mailbox).WriteLocal",
		To:   "hydradb/internal/arena.WordArea.words[]",
		Why:  "the remote peer polls the head indicator one-sidedly; the body bytes must be complete before the indicator is released",
	}},
	Guards: []protocolspec.Guard{{
		Reader: "(*hydradb/internal/message.Mailbox).Poll",
		Bound:  "slotCap",
		Why:    "the size field of a torn indicator must not slice past the slot's capacity",
	}},
}
