package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// runLeaseDiscipline is a dataflow pass on the function CFG: every lock or
// lease acquire — sync.Mutex/sync.RWMutex Lock/RLock (including promoted
// methods of an embedded mutex) and invariant.Owner Acquire — must be matched
// by the paired release on every path to a function exit, either directly or
// through a defer anywhere in the function.
//
// The analysis abstractly executes the statement tree, tracking the set of
// possibly-held locks per path (keyed by the printed receiver expression, so
// `s.mu` pairs with `s.mu` regardless of position). Branches fork the state,
// joins union it, loops run to a fixpoint over state fingerprints. A return
// while a lock may still be held is reported at the acquire site. Exits that
// cannot resume the caller — panic, os.Exit, runtime.Goexit, log.Fatal*, and
// the testing.T/B/F abort family — are exempt: deferred cleanup runs on
// panic, and crash paths don't leak locks into live code.
//
// The pass is interprocedural through call summaries: a statement-position
// call into a module function whose lock summary proves a constant net
// effect ("releases s.mu on every exit", "acquires mu for the caller") is
// stepped over with that effect applied, so release helpers and handoff
// acquirers no longer stop the analysis at the function boundary. Calls
// without a provable summary keep the old behaviour (no modeled effect).
//
// Escape hatches: a function whose contract is to return while holding a
// lock (handoff APIs) carries a `hydralint:holds` marker in its doc comment.
// Functions using goto, TryLock/TryRLock, or a lock receiver the analysis
// cannot name (e.g. computed via a call) are skipped as unanalyzable rather
// than guessed at.
func runLeaseDiscipline(p *Package, r *Reporter) {
	if !p.isInternal() {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if docHasMarker(fd.Doc, "hydralint:holds") {
				continue
			}
			checkLockFlow(p, r, fd.Body)
			// Function literals get their own independent analysis (their
			// statements are invisible to the enclosing walk): a goroutine
			// body that locks without unlocking is just as much a leak.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkLockFlow(p, r, fl.Body)
				}
				return true
			})
		}
	}
}

func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// acq records one acquire: where it happened and how to describe it.
type acq struct {
	pos  token.Pos
	what string
}

// held is the may-hold state along one path: lock key -> its acquire.
type held map[string]acq

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h held) fingerprint() string {
	if len(h) == 0 {
		return ""
	}
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x00")
}

// pathSet is a set of held states, deduplicated by key fingerprint. The
// acquire positions of the first state seen win — good enough for reporting.
type pathSet []held

func (s pathSet) union(more ...held) pathSet {
	seen := map[string]bool{}
	for _, h := range s {
		seen[h.fingerprint()] = true
	}
	for _, h := range more {
		if fp := h.fingerprint(); !seen[fp] {
			seen[fp] = true
			s = append(s, h)
		}
	}
	return s
}

// flowOut is the abstract result of executing a statement: the held-state
// sets leaving on each kind of control edge.
type flowOut struct {
	normal pathSet            // fall-through
	brk    map[string]pathSet // break targets; "" = innermost enclosing
	cont   map[string]pathSet // continue targets
	rets   []retState         // return statements, checked at report time
}

type retState struct {
	pos token.Pos
	h   held
}

func addEdge(m map[string]pathSet, label string, states pathSet) map[string]pathSet {
	if len(states) == 0 {
		return m
	}
	if m == nil {
		m = map[string]pathSet{}
	}
	m[label] = m[label].union(states...)
	return m
}

// lockFlow carries the per-function analysis state.
type lockFlow struct {
	p        *Package
	deferred map[string]bool // keys released by a defer somewhere in the body
	bad      bool            // unanalyzable: suppress all findings
}

// stateCap bounds the per-edge state-set size; past it the function is too
// branchy to analyze faithfully and the pass bails silently.
const stateCap = 64

func checkLockFlow(p *Package, r *Reporter, body *ast.BlockStmt) {
	a := &lockFlow{p: p, deferred: map[string]bool{}}

	// Pre-scan: collect deferred releases (directly deferred or inside a
	// deferred func literal) and bail on constructs the flow walk cannot
	// model soundly.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.GOTO {
				a.bad = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "TryLock" || n.Sel.Name == "TryRLock" {
				a.bad = true
			}
		case *ast.CallExpr:
			// A lock method on an un-nameable receiver poisons pairing.
			if sel, isSel := n.Fun.(*ast.SelectorExpr); isSel &&
				lockMethodName(sel.Sel.Name) && a.isLockRecv(sel) {
				if _, renderable := exprKey(sel.X); !renderable {
					a.bad = true
				}
			}
		case *ast.DeferStmt:
			if key, acquire, _, ok := a.lockOp(n.Call); ok && !acquire {
				a.deferred[key] = true
			} else if deltas, _, ok := a.summaryDeltas(n.Call); ok {
				for key, d := range deltas {
					if d < 0 {
						a.deferred[key] = true
					}
				}
			}
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if key, acquire, _, ok := a.lockOp(call); ok && !acquire {
							a.deferred[key] = true
						} else if deltas, _, ok := a.summaryDeltas(call); ok {
							for key, d := range deltas {
								if d < 0 {
									a.deferred[key] = true
								}
							}
						}
					}
					return true
				})
			}
		}
		return true
	})
	if a.bad {
		return
	}

	out := a.stmt(body, pathSet{held{}}, "")
	if a.bad {
		return
	}

	// Every function exit — explicit returns plus falling off the end — must
	// hold nothing that a defer doesn't discharge.
	exits := out.rets
	for _, h := range out.normal {
		exits = append(exits, retState{pos: body.Rbrace, h: h})
	}
	reported := map[token.Pos]bool{}
	for _, e := range exits {
		for key, ac := range e.h {
			if a.deferred[key] || reported[ac.pos] {
				continue
			}
			reported[ac.pos] = true
			line := p.Fset.Position(e.pos).Line
			r.report("lease-discipline", ac.pos,
				"%s acquired here may still be held at the function exit on line %d; release it on every path, defer the release, or mark the function hydralint:holds",
				ac.what, line)
		}
	}
}

// stmt abstractly executes s from every state in `in`. label is the label
// attached to s when it is the direct child of a LabeledStmt (so labeled
// break/continue resolve).
func (a *lockFlow) stmt(s ast.Stmt, in pathSet, label string) flowOut {
	if a.bad || len(in) == 0 {
		return flowOut{normal: in}
	}
	if len(in) > stateCap {
		a.bad = true
		return flowOut{}
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return a.block(s.List, in)

	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return flowOut{normal: in}
		}
		if key, acquire, what, ok := a.lockOp(call); ok {
			var next pathSet
			for _, h := range in {
				h2 := h.clone()
				if acquire {
					h2[key] = acq{pos: call.Pos(), what: what}
				} else {
					delete(h2, key)
				}
				next = next.union(h2)
			}
			return flowOut{normal: next}
		}
		if deltas, callee, ok := a.summaryDeltas(call); ok {
			// Interprocedural step: apply the callee's proven net lock
			// effect — releases discharge the caller's hold, acquires
			// create a release obligation at the call site.
			var next pathSet
			for _, h := range in {
				h2 := h.clone()
				for key, d := range deltas {
					if d < 0 {
						delete(h2, key)
					} else if d > 0 {
						h2[key] = acq{pos: call.Pos(), what: descForKey(key) + " (acquired inside " + callee + ")"}
					}
				}
				next = next.union(h2)
			}
			return flowOut{normal: next}
		}
		if isNoReturnCall(a.p, call) {
			return flowOut{} // exempt exit: panic/Fatal paths don't leak
		}
		return flowOut{normal: in}

	case *ast.ReturnStmt:
		out := flowOut{}
		for _, h := range in {
			out.rets = append(out.rets, retState{pos: s.Pos(), h: h})
		}
		return out

	case *ast.BranchStmt:
		lbl := ""
		if s.Label != nil {
			lbl = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			return flowOut{brk: addEdge(nil, lbl, in)}
		case token.CONTINUE:
			return flowOut{cont: addEdge(nil, lbl, in)}
		}
		// FALLTHROUGH is consumed by the switch handler; GOTO was bailed on.
		return flowOut{normal: in}

	case *ast.IfStmt:
		out := a.stmt(s.Body, in, "")
		if s.Else != nil {
			out = joinOut(out, a.stmt(s.Else, in, ""))
		} else {
			out.normal = out.normal.union(in...)
		}
		return out

	case *ast.ForStmt:
		// A conditional loop may run zero times; `for {}` exits only via
		// break or return.
		return a.loop(s.Body, in, label, s.Cond != nil)

	case *ast.RangeStmt:
		return a.loop(s.Body, in, label, true)

	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, in, s.Label.Name)

	case *ast.SwitchStmt:
		return a.switchFlow(s.Body, in, label, true)

	case *ast.TypeSwitchStmt:
		return a.switchFlow(s.Body, in, label, false)

	case *ast.SelectStmt:
		out := flowOut{}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			out = joinOut(out, a.block(clause.Body, in))
		}
		if len(s.Body.List) == 0 {
			return flowOut{} // empty select never proceeds
		}
		// break (bare or labeled with this select's label) exits the select.
		out.normal = out.normal.union(consumeEdge(out.brk, "")...)
		out.normal = out.normal.union(consumeEdge(out.brk, label)...)
		return out

	default:
		// Assignments, declarations, sends, go/defer, inc/dec: no effect on
		// the lock state (lock calls are statements, handled above).
		return flowOut{normal: in}
	}
}

// loop runs a for/range body to a fixpoint over held-state fingerprints.
// canSkip marks loops that may execute zero times (range, conditional for);
// a bare `for {}` only exits through break or return.
func (a *lockFlow) loop(body *ast.BlockStmt, in pathSet, label string, canSkip bool) flowOut {
	out := flowOut{}
	if canSkip {
		out.normal = out.normal.union(in...)
	}
	cur := in
	seen := map[string]bool{}
	for _, h := range cur {
		seen[h.fingerprint()] = true
	}
	for round := 0; ; round++ {
		if round > 8 {
			a.bad = true
			return flowOut{}
		}
		bodyOut := a.stmt(body, cur, "")
		if a.bad {
			return flowOut{}
		}
		// continue (bare or this loop's label) and normal fall-through both
		// reach the next iteration; break exits; other labels propagate.
		iterEnd := bodyOut.normal.
			union(consumeEdge(bodyOut.cont, "")...).
			union(consumeEdge(bodyOut.cont, label)...)
		out.rets = append(out.rets, bodyOut.rets...)
		for l, st := range bodyOut.brk {
			if l == "" || l == label {
				out.normal = out.normal.union(st...)
			} else {
				out.brk = addEdge(out.brk, l, st)
			}
		}
		for l, st := range bodyOut.cont {
			out.cont = addEdge(out.cont, l, st)
		}
		if canSkip {
			out.normal = out.normal.union(iterEnd...)
		}
		var fresh pathSet
		for _, h := range iterEnd {
			if fp := h.fingerprint(); !seen[fp] {
				seen[fp] = true
				fresh = append(fresh, h)
			}
		}
		if len(fresh) == 0 {
			return out
		}
		cur = fresh
	}
}

// switchFlow handles switch and type-switch clause bodies; only plain
// switches permit fallthrough.
func (a *lockFlow) switchFlow(body *ast.BlockStmt, in pathSet, label string, allowFall bool) flowOut {
	out := flowOut{}
	hasDefault := false
	var fall pathSet // states flowing into the next clause via fallthrough
	for _, cc := range body.List {
		clause := cc.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		clauseIn := in.union(fall...)
		fall = nil
		stmts := clause.Body
		fellThrough := false
		if allowFall && len(stmts) > 0 {
			if b, ok := stmts[len(stmts)-1].(*ast.BranchStmt); ok && b.Tok == token.FALLTHROUGH {
				stmts = stmts[:len(stmts)-1]
				fellThrough = true
			}
		}
		co := a.block(stmts, clauseIn)
		out.rets = append(out.rets, co.rets...)
		for l, st := range co.brk {
			if l == "" || l == label {
				out.normal = out.normal.union(st...)
			} else {
				out.brk = addEdge(out.brk, l, st)
			}
		}
		for l, st := range co.cont {
			out.cont = addEdge(out.cont, l, st)
		}
		if fellThrough {
			fall = co.normal
		} else {
			out.normal = out.normal.union(co.normal...)
		}
	}
	if !hasDefault {
		out.normal = out.normal.union(in...)
	}
	return out
}

func (a *lockFlow) block(list []ast.Stmt, in pathSet) flowOut {
	out := flowOut{normal: in}
	for _, s := range list {
		if a.bad {
			return flowOut{}
		}
		if len(out.normal) == 0 {
			break // unreachable tail
		}
		so := a.stmt(s, out.normal, "")
		out.normal = so.normal
		out.rets = append(out.rets, so.rets...)
		for l, st := range so.brk {
			out.brk = addEdge(out.brk, l, st)
		}
		for l, st := range so.cont {
			out.cont = addEdge(out.cont, l, st)
		}
	}
	return out
}

func joinOut(a, b flowOut) flowOut {
	a.normal = a.normal.union(b.normal...)
	a.rets = append(a.rets, b.rets...)
	for l, st := range b.brk {
		a.brk = addEdge(a.brk, l, st)
	}
	for l, st := range b.cont {
		a.cont = addEdge(a.cont, l, st)
	}
	return a
}

// consumeEdge removes and returns the states parked on one break/continue
// label.
func consumeEdge(m map[string]pathSet, label string) pathSet {
	st := m[label]
	delete(m, label)
	return st
}

func lockMethodName(name string) bool {
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock", "Acquire", "Release":
		return true
	}
	return false
}

// lockOp classifies a call as an acquire or release of a trackable lock.
// Returns the pairing key (receiver rendering plus a /w or /r mode so RLock
// pairs with RUnlock, not Unlock), the direction, and a human description.
func (a *lockFlow) lockOp(call *ast.CallExpr) (key string, acquire bool, what string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || !lockMethodName(sel.Sel.Name) {
		return "", false, "", false
	}
	kind := lockRecvKind(a.p, sel)
	if kind == lockNone {
		return "", false, "", false
	}
	recv, renderable := exprKey(sel.X)
	if !renderable {
		return "", false, "", false
	}
	switch sel.Sel.Name {
	case "Lock":
		return recv + "/w", true, "lock " + recv, true
	case "Unlock":
		return recv + "/w", false, "", true
	case "RLock":
		return recv + "/r", true, "read lock " + recv, true
	case "RUnlock":
		return recv + "/r", false, "", true
	case "Acquire":
		if kind != lockOwner {
			return "", false, "", false
		}
		return recv, true, "ownership of " + recv, true
	case "Release":
		if kind != lockOwner {
			return "", false, "", false
		}
		return recv, false, "", true
	}
	return "", false, "", false
}

// summaryDeltas resolves a statement-position call to a module function with
// a proven lock summary and maps the callee's input-rooted effects into the
// caller's syntactic key space. ok=false means the call has no modeled
// effect (unknown callee, no summary, or an unmappable actual argument).
func (a *lockFlow) summaryDeltas(call *ast.CallExpr) (map[string]int, string, bool) {
	prog := a.p.Prog
	if prog == nil {
		return nil, "", false
	}
	callee, inputs, ok := prog.resolveCallee(a.p, call)
	if !ok {
		return nil, "", false
	}
	sum := prog.lockSummaryFor(callee.Obj.FullName())
	if sum == nil || len(sum.effects) == 0 {
		return nil, "", false
	}
	out := map[string]int{}
	for _, eff := range sum.effects {
		actual := inputs.inputExpr(eff.input)
		if actual == nil {
			return nil, "", false
		}
		if un, isAddr := actual.(*ast.UnaryExpr); isAddr && un.Op == token.AND {
			actual = un.X
		}
		key, renderable := exprKey(actual)
		if !renderable {
			return nil, "", false
		}
		out[key+eff.path+eff.mode] += eff.n
	}
	return out, callee.Obj.Name() + "()", true
}

// descForKey turns a lock key back into the human phrasing the acquire-site
// reports use ("s.mu/w" -> "lock s.mu").
func descForKey(key string) string {
	switch {
	case strings.HasSuffix(key, "/w"):
		return "lock " + strings.TrimSuffix(key, "/w")
	case strings.HasSuffix(key, "/r"):
		return "read lock " + strings.TrimSuffix(key, "/r")
	}
	return "ownership of " + key
}

type lockKind int

const (
	lockNone lockKind = iota
	lockSync
	lockOwner
)

func (a *lockFlow) isLockRecv(sel *ast.SelectorExpr) bool {
	return lockRecvKind(a.p, sel) != lockNone
}

// lockRecvKind resolves the method's declared receiver (so promoted methods
// of an embedded mutex are still attributed to the mutex) and classifies it.
func lockRecvKind(p *Package, sel *ast.SelectorExpr) lockKind {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return lockNone
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return lockNone
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return lockNone
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return lockNone
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return lockNone
	}
	switch {
	case obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex"):
		return lockSync
	case strings.HasSuffix(obj.Pkg().Path(), "internal/invariant") && obj.Name() == "Owner":
		return lockOwner
	}
	return lockNone
}

// exprKey renders a lock receiver as a stable pairing key. Only shapes whose
// identity is syntactically evident qualify; anything computed (a call, a
// complex index) is unrenderable and makes the function unanalyzable.
func exprKey(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		x, ok := exprKey(e.X)
		return x + "." + e.Sel.Name, ok
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		x, ok := exprKey(e.X)
		return "*" + x, ok
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			x, ok := exprKey(e.X)
			return "&" + x, ok
		}
	case *ast.IndexExpr:
		switch idx := e.Index.(type) {
		case *ast.BasicLit:
			x, ok := exprKey(e.X)
			return x + "[" + idx.Value + "]", ok
		case *ast.Ident:
			x, ok := exprKey(e.X)
			return x + "[" + idx.Name + "]", ok
		}
	}
	return "", false
}

// isNoReturnCall recognizes calls that never resume the caller, which makes
// the current path exempt from release obligations.
func isNoReturnCall(p *Package, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, builtin := p.Info.Uses[fun].(*types.Builtin)
			return builtin
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
				switch path := pn.Imported().Path(); {
				case path == "os" && name == "Exit",
					path == "runtime" && name == "Goexit",
					path == "log" && (strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")):
					return true
				}
			}
		}
		if s, ok := p.Info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			switch name {
			case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
				if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "testing" {
					return true
				}
			}
		}
	}
	return false
}
