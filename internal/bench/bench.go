// Package bench regenerates every table and figure of the paper's
// evaluation (§2 and §6). Each FigNN function runs the corresponding
// experiment — workload generation, deployment, parameter sweep, baselines —
// and returns formatted tables with the same rows/series the paper reports.
//
// Experiments run on the deterministic virtual-time testbed (see
// internal/sim and internal/simcluster and DESIGN.md §2): absolute numbers
// are not expected to match the authors' hardware, but the shapes — who
// wins, by what factor, where crossovers and saturation points fall — are
// the reproduction targets recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"sync"

	"hydradb/internal/simcluster"
	"hydradb/internal/ycsb"
)

// Scale selects experiment sizing. The paper uses 60 M requests over 60 M
// records with 50 clients; Full is a laptop-sized rendition preserving the
// request:record ratio, Quick keeps CI fast.
type Scale struct {
	Name    string
	Records int64
	Ops     int
	Clients int
}

// Predefined scales.
var (
	Quick = Scale{Name: "quick", Records: 20_000, Ops: 60_000, Clients: 20}
	Full  = Scale{Name: "full", Records: 400_000, Ops: 1_200_000, Clients: 50}
)

// The paper's six YCSB workloads in Figure 9/10 order:
// (a) 50% GET zipfian, (b) 90% GET zipfian, (c) 100% GET zipfian,
// (d) 50% GET uniform, (e) 90% GET uniform, (f) 100% GET uniform.
type workloadDef struct {
	Tag     string
	ReadPct int
	Dist    ycsb.Distribution
}

var sixWorkloads = []workloadDef{
	{"(a) zipf 50%GET", 50, ycsb.Zipfian},
	{"(b) zipf 90%GET", 90, ycsb.Zipfian},
	{"(c) zipf 100%GET", 100, ycsb.Zipfian},
	{"(d) unif 50%GET", 50, ycsb.Uniform},
	{"(e) unif 90%GET", 90, ycsb.Uniform},
	{"(f) unif 100%GET", 100, ycsb.Uniform},
}

var (
	wlMu    sync.Mutex
	wlCache = map[string]*ycsb.Workload{}
)

// workload returns (and caches) a generated workload.
func workload(s Scale, readPct int, dist ycsb.Distribution) *ycsb.Workload {
	key := fmt.Sprintf("%s/%d/%v", s.Name, readPct, dist)
	wlMu.Lock()
	defer wlMu.Unlock()
	if w, ok := wlCache[key]; ok {
		return w
	}
	w, err := ycsb.Generate(ycsb.StandardSpec(s.Records, s.Ops, readPct, dist, 20150415))
	if err != nil {
		panic(err)
	}
	wlCache[key] = w
	return w
}

// insertWorkload builds the INSERT-only stream of the Fig. 13 experiment.
func insertWorkload(s Scale, ops int) *ycsb.Workload {
	key := fmt.Sprintf("%s/ins/%d", s.Name, ops)
	wlMu.Lock()
	defer wlMu.Unlock()
	if w, ok := wlCache[key]; ok {
		return w
	}
	w, err := ycsb.Generate(ycsb.Spec{
		Records: 1024, Operations: ops, InsertProportion: 1,
		Dist: ycsb.Uniform, KeyLen: 16, ValueLen: 32, Seed: 20150415,
	})
	if err != nil {
		panic(err)
	}
	wlCache[key] = w
	return w
}

// paperTestbed is the §6 single-server setup: 8 machines, machine 0 runs 4
// shards, clients spread over machines 2..7 (machine 1 hosts
// ZooKeeper/SWAT in the paper).
func paperTestbed(s Scale, w *ycsb.Workload, mode simcluster.Mode) simcluster.HydraConfig {
	return simcluster.HydraConfig{
		Machines:         8,
		ServerMachines:   []int{0},
		ShardsPerMachine: 4,
		Clients:          s.Clients,
		ClientMachines:   []int{2, 3, 4, 5, 6, 7},
		Mode:             mode,
		SharedCache:      true,
		Workload:         w,
		Seed:             1,
	}
}

func runHydra(cfg simcluster.HydraConfig, label string) simcluster.Result {
	h, err := simcluster.NewHydraSim(cfg)
	if err != nil {
		panic(err)
	}
	return h.Run(label)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pct(new, old float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new/old-1)*100)
}
