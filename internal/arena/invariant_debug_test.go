//go:build hydradebug

package arena

import "testing"

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic under hydradebug", what)
		}
	}()
	fn()
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(1 << 16)
	off, err := a.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(off, 40)
	mustPanic(t, "double free", func() { a.Free(off, 40) })
}

func TestForeignFreePanics(t *testing.T) {
	a := New(1 << 16)
	if _, err := a.Alloc(40); err != nil {
		t.Fatal(err)
	}
	// Offset 8 is inside the first allocation but is not an allocation start.
	mustPanic(t, "foreign free", func() { a.Free(8, 40) })
}

func TestFreeSizeMismatchPanics(t *testing.T) {
	a := New(1 << 16)
	off, err := a.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	// 40 rounds to the 48-byte class; freeing as 200 would return the area
	// to a different class free list.
	mustPanic(t, "size-class mismatch free", func() { a.Free(off, 200) })
}

func TestUseAfterFreePanics(t *testing.T) {
	a := New(1 << 16)
	off, err := a.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Bytes(off, 40) // live access passes
	a.Free(off, 40)
	mustPanic(t, "use-after-free Bytes", func() { _ = a.Bytes(off, 40) })
}
