//go:build hydradebug

package modelcheck

import (
	"sync"

	"hydradb/internal/invariant"
)

// FineAvailable reports whether word-granularity interleaving is compiled in.
const FineAvailable = true

// fineMu serializes fine-grained explorations: the invariant.SchedPoint hook
// is process-wide, so only one checker may have it installed at a time.
// fineCurrent is the model thread the scheduler most recently resumed; it is
// written by the scheduler goroutine before the resume-channel send and read
// by the model thread after the receive, so the channel handshake orders the
// accesses without further synchronization.
var (
	fineMu      sync.Mutex
	fineCurrent *Thread
)

// armFine installs the word-granularity yield hook for this run when
// requested. Every arena.WordArea Load/Store/CAS executed by the currently
// scheduled model thread then becomes a scheduling decision of its own,
// exposing torn intermediate states (e.g. a mailbox tail indicator published
// before its head). Calls from other goroutines — the scheduler evaluating
// Await conditions, unrelated test goroutines — are ignored, as are calls
// from a thread being unwound at schedule end.
func armFine(r *Run, want bool) bool {
	if !want {
		return false
	}
	fineMu.Lock()
	invariant.SetSchedPoint(func(tag string) {
		t := fineCurrent
		if t == nil || t.ending {
			return
		}
		if invariant.GoroutineID() != t.gid {
			return
		}
		// "*": word accesses from different steps may touch the same area,
		// which coarse tags cannot express, so fine steps conflict with
		// everything. This disables sleep-set pruning across them — sound,
		// just slower, which is why fine explorations stay tightly bounded.
		t.yield("*", nil)
	})
	return true
}

func disarmFine() {
	invariant.SetSchedPoint(nil)
	fineCurrent = nil
	fineMu.Unlock()
}

func setCurrent(t *Thread) { fineCurrent = t }
func clearCurrent()        { fineCurrent = nil }

func goroutineID() int64 { return invariant.GoroutineID() }
