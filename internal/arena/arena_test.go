package arena

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hydradb/internal/testutil"
)

func TestClassesMonotonic(t *testing.T) {
	prev := 0
	for _, s := range classSizes {
		if s <= prev {
			t.Fatalf("class sizes not strictly increasing: %d after %d", s, prev)
		}
		prev = s
	}
	if classSizes[0] != 32 {
		t.Fatalf("smallest class = %d, want 32", classSizes[0])
	}
	if MaxAlloc() < 4<<20 {
		t.Fatalf("max class %d cannot hold the 4MB MapReduce chunks", MaxAlloc())
	}
}

func TestClassOfBounds(t *testing.T) {
	if classOf(1) != 0 {
		t.Fatal("1 byte should use the smallest class")
	}
	if classOf(32) != 0 {
		t.Fatal("exactly 32 bytes should use class 0")
	}
	if classOf(33) != 1 {
		t.Fatal("33 bytes should use class 1")
	}
	if classOf(MaxAlloc()+1) != -1 {
		t.Fatal("oversized allocation must map to -1")
	}
}

func TestClassFragmentationBound(t *testing.T) {
	// Internal fragmentation must stay below ~52% for any size (worst case
	// right above a class boundary).
	for n := 1; n <= 1<<16; n += 7 {
		c := ClassSize(n)
		if c < n {
			t.Fatalf("class %d smaller than request %d", c, n)
		}
		if float64(c) > float64(n)*2.05 && n > 16 {
			t.Fatalf("fragmentation too high: n=%d class=%d", n, c)
		}
	}
}

func TestAllocFreeReuse(t *testing.T) {
	a := New(1 << 16)
	off1, err := a.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(off1, 40)
	off2, err := a.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != off2 {
		t.Fatalf("free-list reuse failed: %d vs %d", off1, off2)
	}
	if a.Allocs() != 2 || a.Frees() != 1 {
		t.Fatalf("counters: allocs=%d frees=%d", a.Allocs(), a.Frees())
	}
}

func TestFreeZeroesMemory(t *testing.T) {
	a := New(1 << 12)
	off := testutil.Must1(a.Alloc(64))
	b := a.Bytes(off, 64)
	for i := range b {
		b[i] = 0xAB
	}
	a.Free(off, 64)
	// Inspect through the raw region view: Bytes would (correctly) trip the
	// hydradebug use-after-free canary on freed memory.
	b2 := a.Data()[off : int(off)+64]
	for i, v := range b2 {
		if v != 0 {
			t.Fatalf("byte %d not zeroed after free: %x", i, v)
		}
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := New(128)
	if _, err := a.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(64); err != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestAllocInvalidSizes(t *testing.T) {
	a := New(1024)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("Alloc(0) must fail")
	}
	if _, err := a.Alloc(-3); err == nil {
		t.Fatal("Alloc(-3) must fail")
	}
	if _, err := a.Alloc(MaxAlloc() + 1); err == nil {
		t.Fatal("oversized Alloc must fail")
	}
}

func TestLiveAccounting(t *testing.T) {
	a := New(1 << 14)
	off := testutil.Must1(a.Alloc(100)) // class 128
	if a.Live() != ClassSize(100) {
		t.Fatalf("live = %d, want %d", a.Live(), ClassSize(100))
	}
	a.Free(off, 100)
	if a.Live() != 0 {
		t.Fatalf("live after free = %d", a.Live())
	}
}

// TestNoOverlapProperty allocates and frees randomly and asserts that live
// allocations never overlap — the core safety invariant for out-of-place
// updates sharing one region.
func TestNoOverlapProperty(t *testing.T) {
	a := New(1 << 18)
	rng := rand.New(rand.NewSource(42))
	type alloc struct {
		off uint32
		n   int
		tag byte
	}
	var live []alloc
	check := func() {
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				x, y := live[i], live[j]
				xs, xe := int(x.off), int(x.off)+ClassSize(x.n)
				ys, ye := int(y.off), int(y.off)+ClassSize(y.n)
				if xs < ye && ys < xe {
					t.Fatalf("overlap: [%d,%d) and [%d,%d)", xs, xe, ys, ye)
				}
			}
		}
	}
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			n := 1 + rng.Intn(500)
			off, err := a.Alloc(n)
			if err != nil {
				continue // exhausted; fine
			}
			tag := byte(step)
			b := a.Bytes(off, n)
			for i := range b {
				b[i] = tag
			}
			live = append(live, alloc{off, n, tag})
		} else {
			i := rng.Intn(len(live))
			// Verify the content survived (no other allocation scribbled it).
			v := live[i]
			b := a.Bytes(v.off, v.n)
			for j, c := range b {
				if c != v.tag {
					t.Fatalf("allocation corrupted at byte %d: %x != %x", j, c, v.tag)
				}
			}
			a.Free(v.off, v.n)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%500 == 0 {
			check()
		}
	}
	check()
}

func TestClassSizeProperty(t *testing.T) {
	f := func(raw int16) bool {
		n := int(raw)
		if n <= 0 {
			return ClassSize(1) == 32
		}
		c := ClassSize(n)
		return c >= n && c <= MaxAlloc()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordArea(t *testing.T) {
	w := NewWordArea(4, 2)
	i1, err := w.AllocGroup()
	if err != nil {
		t.Fatal(err)
	}
	i2, err := w.AllocGroup()
	if err != nil {
		t.Fatal(err)
	}
	if i1 == i2 {
		t.Fatal("groups must be distinct")
	}
	w.Store(i1, 42)
	w.Store(i1+1, 43)
	if w.Load(i1) != 42 || w.Load(i1+1) != 43 {
		t.Fatal("word store/load mismatch")
	}
	if !w.CompareAndSwap(i1, 42, 99) || w.Load(i1) != 99 {
		t.Fatal("CAS failed")
	}
	if w.CompareAndSwap(i1, 42, 7) {
		t.Fatal("CAS with stale old must fail")
	}
	w.FreeGroup(i1)
	i3, err := w.AllocGroup()
	if err != nil {
		t.Fatal(err)
	}
	if i3 != i1 {
		t.Fatalf("expected recycled group %d, got %d", i1, i3)
	}
	if w.Load(i3) != 0 || w.Load(i3+1) != 0 {
		t.Fatal("recycled group must be zeroed")
	}
}

func TestWordAreaExhaustion(t *testing.T) {
	w := NewWordArea(2, 2)
	if _, err := w.AllocGroup(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AllocGroup(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AllocGroup(); err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a := New(1 << 24)
	for i := 0; i < b.N; i++ {
		off, err := a.Alloc(56) // 16B key + 32B value + header
		if err != nil {
			b.Fatal(err)
		}
		a.Free(off, 56)
	}
}
