package modelcheck

import (
	"errors"
	"fmt"

	"hydradb/internal/message"
	"hydradb/internal/rdma"
	"hydradb/internal/replication"
)

// replicationModel checks DESIGN.md invariant (4): the replication log's
// relaxed-acknowledgement protocol (§5.2) — rollback and re-send after a
// secondary-side failure — never lets the primary treat a lost record as
// durable.
//
// The model runs a real replication.Primary/Secondary pair over the
// simulated fabric, replicating repRecords records with a processing failure
// injected on record 3. In the correct mode the primary marks a record
// durable only once MinAcked covers it; the secondary nacks at the next
// ack-request, the primary rolls back and re-sends, and everything
// converges. The seeded bug is a fire-and-forget primary: it marks every
// record durable as soon as the one-sided write is posted and never polls
// acks — so the nack is never seen, records 3..4 are never re-sent, and the
// checker reports records acknowledged as durable that no secondary applied.
var replicationModel = Model{
	Name:  "replication",
	Desc:  "relaxed-ack log rollback/re-send never acks a lost record",
	Bug:   "primary marks records durable on send and never polls acks (no rollback)",
	Setup: setupReplication,
}

const repRecords = 4

func setupReplication(r *Run, bug bool) {
	cfg := replication.LogConfig{Slots: 8, SlotSize: 64, AckEvery: 2}
	fabric := rdma.NewFabric(rdma.Config{})
	priNIC := fabric.NewNIC("primary")
	secNIC := fabric.NewNIC("secondary")
	priQP, secQP := rdma.Connect(priNIC, secNIC, cfg.Slots)

	pri := replication.NewPrimary(priNIC, cfg, 1)
	log := replication.NewLog(secNIC, cfg)
	ackIdx, err := pri.AddSecondary(priQP, log)
	if err != nil {
		r.Failf("AddSecondary: %v", err)
	}

	var applied []uint64
	applier := replication.ApplierFunc(func(seq uint64, rec replication.Record) error {
		want := uint64(len(applied)) + 1
		if seq != want {
			r.Failf("secondary applied seq %d out of order (want %d)", seq, want)
		}
		wantKey, wantVal := repPayload(seq)
		if string(rec.Key) != wantKey || string(rec.Val) != wantVal {
			r.Failf("secondary applied seq %d with payload %q=%q, want %q=%q",
				seq, rec.Key, rec.Val, wantKey, wantVal)
		}
		applied = append(applied, seq)
		return nil
	})
	sec := replication.NewSecondary(log, applier, secQP, pri.AckRegion(), ackIdx)

	// One injected processing failure on record 3, in both modes: the
	// invariant is about how the primary handles the resulting nack.
	failedOnce := false
	sec.FailureHook = func(seq uint64, rec replication.Record) error {
		if seq == 3 && !failedOnce {
			failedOnce = true
			return errors.New("injected processing failure")
		}
		return nil
	}

	durable := make(map[uint64]bool)
	ackWord := func() bool { return pri.AckRegion().Words().Load(ackIdx) != 0 }

	r.Spawn("primary", func(t *Thread) {
		for i := 1; i <= repRecords; i++ {
			seq := uint64(i)
			key, val := repPayload(seq)
			t.Await("rep", func() bool {
				// Window room: Replicate would otherwise spin in its
				// internal wait-for-ack-progress loop, which a cooperative
				// scheduler must never enter.
				return pri.Seq()-pri.MinAcked() < uint64(cfg.Slots)
			}, func() {
				rec := replication.Record{Op: message.OpPut, Key: []byte(key), Val: []byte(val)}
				if err := pri.Replicate(rec); err != nil {
					t.Fail("Replicate(%d): %v", seq, err)
				}
				if bug {
					// Fire-and-forget: relaxed acks without the rollback
					// obligation. The write was posted, so call it durable.
					durable[seq] = true
				}
			})
		}
		if bug {
			return // never polls acks, never sees the nack
		}
		t.Step("rep", func() { pri.SolicitAcks() })
		for pri.MinAcked() < repRecords {
			t.Await("rep", ackWord, func() {
				before := pri.MinAcked()
				pri.PollAcksOnce() // absorbs acks; on a nack, rolls back and re-sends
				for s := before + 1; s <= pri.MinAcked(); s++ {
					durable[s] = true
				}
			})
		}
	})

	r.Spawn("secondary", func(t *Thread) {
		for len(applied) < repRecords {
			t.Await("rep", sec.Pending, func() {
				if !sec.PollOnce() {
					t.Fail("secondary: Pending() but PollOnce made no progress")
				}
			})
		}
	})

	r.AtEnd(func() error {
		for seq := uint64(1); seq <= repRecords; seq++ {
			if durable[seq] && !contains(applied, seq) {
				return fmt.Errorf("record %d acknowledged as durable but never applied by the secondary (lost after failure)", seq)
			}
		}
		if !bug {
			if got := len(applied); got != repRecords {
				return fmt.Errorf("secondary applied %d of %d records", got, repRecords)
			}
			for seq := uint64(1); seq <= repRecords; seq++ {
				if !durable[seq] {
					return fmt.Errorf("record %d never became durable", seq)
				}
			}
		}
		return nil
	})
}

func repPayload(seq uint64) (key, val string) {
	return fmt.Sprintf("key-%d", seq), fmt.Sprintf("val-%d", seq)
}

func contains(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
