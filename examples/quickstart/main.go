// Quickstart: start an in-process HydraDB cluster, do basic KV operations,
// and watch the RDMA-Read fast path take over on repeat GETs.
package main

import (
	"fmt"
	"log"

	"hydradb"
)

func main() {
	// A single "server machine" with 4 single-threaded shards — the paper's
	// default deployment unit (§6).
	db, err := hydradb.Start(hydradb.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println("started:", db)

	c := db.NewClient()

	// Writes are handled by the owning shard: the request travels as an
	// indicator-encapsulated message in a single one-sided RDMA Write and
	// the shard's polling thread picks it up (§4.2.1).
	if err := c.Put([]byte("greeting"), []byte("hello, RDMA world")); err != nil {
		log.Fatal(err)
	}

	// The PUT response carried a remote pointer + lease; this GET fetches
	// the item with a single one-sided RDMA Read — zero server CPU (§4.2.2).
	v, err := c.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get: %q\n", v)

	for i := 0; i < 1000; i++ {
		if _, err := c.Get([]byte("greeting")); err != nil {
			log.Fatal(err)
		}
	}
	snap := c.Counters().Snapshot()
	fmt.Printf("client counters: one-sided hits=%d invalid=%d message-path=%d\n",
		snap.RDMAReadHits, snap.RDMAReadStale, snap.PointerMisses)

	// An update is out-of-place: the old area's guardian word flips, so any
	// client holding the old pointer detects staleness and re-fetches.
	if err := c.Put([]byte("greeting"), []byte("updated value")); err != nil {
		log.Fatal(err)
	}
	v, _ = c.Get([]byte("greeting"))
	fmt.Printf("after update: %q\n", v)

	if err := c.Delete([]byte("greeting")); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Get([]byte("greeting")); err == hydradb.ErrNotFound {
		fmt.Println("deleted: key is gone")
	}

	srv := db.Stats()
	fmt.Printf("server counters: gets=%d inserts=%d updates=%d deletes=%d\n",
		srv.Gets, srv.Inserts, srv.Updates, srv.Deletes)
	fmt.Println("note: almost every read bypassed the server — that is the point.")
}
