// Read-plane quiescence gate (DESIGN.md §13).
//
// The guardian protocol makes remote one-sided reads safe because a detached
// item's memory survives until its lease expires plus a grace period. The
// in-process read plane gets a stronger, cheaper guarantee: each reader
// brackets every probe in a ReadSlot section, and the owning shard loop
// simply defers reclamation while any section is open. Reclaim-heap entries
// were detached (table slot flipped away, guardian dead) strictly before
// ReclaimDue runs, so a probe section that *begins after* the owner's
// quiescence check can only find post-detach buckets and never reaches a
// dying reference; a section holding an old reference keeps the whole free
// pass deferred. Within a section, therefore, any published reference points
// at bytes that cannot be freed or overwritten — no torn reads, no
// generation counters, no post-copy validation.
//
// The Exit increment is a release store that the owner's Quiescent loads
// acquire, ordering every byte read inside the section strictly before the
// free that recycles it.

package kv

import "sync/atomic"

// ReadSlot is one reader goroutine's quiescence cell. The sequence word is
// odd while a probe section is open and even otherwise, seqlock-style.
// Padding keeps each slot on its own cache line so readers never contend.
type ReadSlot struct {
	_   [64]byte
	sec atomic.Uint64
	_   [56]byte
}

// BeginProbe opens a probe section. Must be paired with EndProbe on the same
// goroutine; sections must be short (one probe) and must never block.
func (s *ReadSlot) BeginProbe() { s.sec.Add(1) }

// EndProbe closes the section opened by BeginProbe.
func (s *ReadSlot) EndProbe() { s.sec.Add(1) }

// ReadGate is the set of reader slots attached to a Store. The owner polls
// Quiescent before freeing reclaimed items.
type ReadGate struct {
	slots []ReadSlot
}

// NewReadGate creates a gate with n reader slots.
func NewReadGate(n int) *ReadGate {
	return &ReadGate{slots: make([]ReadSlot, n)}
}

// Slot returns reader i's quiescence cell.
func (g *ReadGate) Slot(i int) *ReadSlot { return &g.slots[i] }

// Quiescent reports whether no probe section is currently open. A section
// that begins after the last load here returns true is harmless: it started
// after everything the caller is about to free was already detached.
func (g *ReadGate) Quiescent() bool {
	for i := range g.slots {
		if g.slots[i].sec.Load()&1 == 1 {
			return false
		}
	}
	return true
}
