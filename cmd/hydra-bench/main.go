// Command hydra-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hydra-bench -fig all            # everything, quick scale
//	hydra-bench -fig 9,10 -scale full
//	hydra-bench -fig 12
//
// Output is the set of aligned tables the harness produces; EXPERIMENTS.md
// records a captured run side by side with the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hydradb/internal/bench"
	"hydradb/internal/ycsb"
)

func main() {
	figs := flag.String("fig", "all", "comma-separated figures: 2,3,9,10,11,12,13,claims,ablations,pipeline or 'all'")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	flag.Parse()

	var scale bench.Scale
	switch *scaleName {
	case "quick":
		scale = bench.Quick
	case "full":
		scale = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleName)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	run := func(name string, fn func()) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		fn()
		fmt.Printf("(%s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("hydradb benchmark harness — scale=%s records=%d ops=%d clients=%d\n\n",
		scale.Name, scale.Records, scale.Ops, scale.Clients)

	run("2", func() { fmt.Println(bench.Fig02(scale)) })
	run("3", func() { fmt.Println(bench.Fig03(scale)) })
	run("9", func() { fmt.Println(bench.Fig09(scale)) })
	run("10", func() { fmt.Println(bench.Fig10(scale)) })
	run("11", func() { fmt.Println(bench.Fig11(scale)) })
	run("claims", func() { fmt.Println(bench.SectionClaims(scale)) })
	run("12", func() {
		fmt.Println(bench.Fig12ScaleOut(scale, ycsb.Uniform))
		fmt.Println(bench.Fig12ScaleOut(scale, ycsb.Zipfian))
		fmt.Println(bench.Fig12ScaleUp(scale, ycsb.Uniform))
		fmt.Println(bench.Fig12ScaleUp(scale, ycsb.Zipfian))
	})
	run("13", func() { fmt.Println(bench.Fig13(scale)) })
	run("pipeline", func() { fmt.Println(bench.PipelineMicro(scale)) })
	run("ablations", func() {
		fmt.Println(bench.AblationSubsharding(scale))
		fmt.Println(bench.AblationPointerSharing(scale))
		fmt.Println(bench.AblationLeasePolicy(scale))
		fmt.Println(bench.AblationNUMA(scale))
	})
}
