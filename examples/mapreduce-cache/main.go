// MapReduce cache example — the paper's §2.1 scenario (Fig. 1): HydraDB as
// a cache layer on top of a mini HDFS. Input blocks are prefetched into
// HydraDB as chunked key-value pairs; a WordCount-style job then reads its
// input through the cache, and repeat passes (iterative jobs, multiple
// frameworks sharing input) never touch the DFS again.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"hydradb"
	"hydradb/internal/dfs"
)

const (
	blockSize = 256 << 10
	numBlocks = 16
	chunkSize = 64 << 10
)

func main() {
	// The storage substrate: a 4-datanode mini DFS.
	fs := dfs.NewCluster(4, blockSize)
	input := synthesizeCorpus(blockSize * numBlocks)
	if err := fs.Write("job/input.txt", input); err != nil {
		log.Fatal(err)
	}
	nBlocks, _ := fs.Blocks("job/input.txt")
	fmt.Printf("DFS: %d blocks of %d KB\n", nBlocks, blockSize>>10)

	// The cache layer: HydraDB holding 4MB-style chunks (scaled down).
	opts := hydradb.DefaultOptions()
	opts.ArenaBytesPerShard = 32 << 20
	opts.MaxItemsPerShard = 1 << 14
	opts.MailboxBytes = 256 << 10 // chunk values exceed the default 64 KB
	db, err := hydradb.Start(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	cache := dfs.NewCacheLayer(fs, db.NewClient(), chunkSize, 0)

	// Prefetch, as the Fig. 1 system does for upcoming jobs.
	t0 := time.Now()
	if err := cache.Prefetch("job/input.txt"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefetched %d blocks into HydraDB in %v\n", cache.CachedBlocks(), time.Since(t0))

	// Run WordCount twice: pass 1 is served from the cache (populated by
	// the prefetch), pass 2 demonstrates the one-sided read fast path.
	for pass := 1; pass <= 2; pass++ {
		t := time.Now()
		counts := wordCount(cache, "job/input.txt", nBlocks)
		fmt.Printf("pass %d: %d distinct words in %v (cache hits=%d misses=%d, DFS reads=%d)\n",
			pass, len(counts), time.Since(t),
			cache.Hits.Load(), cache.Misses.Load(), fs.TotalServed())
	}

	// Verify against a direct DFS read.
	direct, _ := fs.Read("job/input.txt")
	if !bytes.Equal(direct, input) {
		log.Fatal("DFS corruption")
	}
	fmt.Println("verification: cache-served data matches the DFS bytes")
}

// wordCount maps over blocks through the cache layer.
func wordCount(cache *dfs.CacheLayer, file string, blocks int) map[string]int {
	counts := map[string]int{}
	var carry string
	for i := 0; i < blocks; i++ {
		blk, err := cache.ReadBlock(file, i)
		if err != nil {
			log.Fatal(err)
		}
		text := carry + string(blk)
		if cut := strings.LastIndexByte(text, ' '); cut >= 0 {
			carry = text[cut+1:]
			text = text[:cut]
		} else {
			carry = ""
		}
		for _, w := range strings.Fields(text) {
			counts[w]++
		}
	}
	if carry != "" {
		counts[carry]++
	}
	return counts
}

var lexicon = []string{
	"rdma", "write", "read", "lease", "guardian", "shard", "mailbox",
	"pointer", "replica", "zipfian", "uniform", "infiniband", "hydra",
}

func synthesizeCorpus(n int) []byte {
	rng := rand.New(rand.NewSource(42))
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(lexicon[rng.Intn(len(lexicon))])
		b.WriteByte(' ')
	}
	return b.Bytes()[:n]
}
