package modelcheck

import (
	"bytes"
	"fmt"

	"hydradb/internal/kv"
	"hydradb/internal/lease"
	"hydradb/internal/timing"
)

// The two store models share one small world: a real kv.Store under a manual
// clock, one key, a server thread performing out-of-place updates and
// reclamation, a reader thread performing the client's one-sided GET protocol
// against raw store memory, and a clock thread advancing time.
//
// The reader deliberately re-implements the client's read path
// (client.readViaPointerInto) over direct memory access instead of calling
// it, split into separate scheduler steps — validity check, data copy,
// guardian check — because the interleaving of those steps with the server's
// update/reclaim steps is exactly what is being checked.
//
// Environment assumption (DESIGN.md §9): a one-sided read completes within
// ReadMargin + Grace of its validity check. The clock thread's enabling
// condition enforces it — time never advances beyond readStart+margin+grace
// while a read is in flight. Under that assumption the lease algebra
// guarantees safety: validity gives readStart+margin < exp, and reclamation
// is due no earlier than exp+grace > readStart+margin+grace.

const (
	smBase   = 100 // lease base term
	smGrace  = 50  // reclamation grace after expiry
	smMargin = 10  // client read margin (ValidForRead slack)
	smCap    = smMargin + smGrace
)

func smPolicy() lease.Policy {
	return lease.Policy{
		BaseTermNs:   smBase,
		MaxShift:     0, // popularity never stretches terms: keeps the space small
		GraceNs:      smGrace,
		DecayEpochNs: 1 << 40, // one epoch for the whole run
	}
}

// storeWorld is the shared state of the guardian and lease models.
type storeWorld struct {
	st    *kv.Store
	clock *timing.ManualClock
	key   []byte

	// tick is a logical step counter: every step function bumps it first,
	// giving the invariant bookkeeping a total order aligned with the trace.
	tick int

	// liveStart/liveEnd record, per value, the tick window in which it was
	// the attached (guardian-live, reachable) value of the key. A read is
	// linearizable iff the value it returns was attached at some tick
	// between its data copy and its guardian check.
	liveStart map[string]int
	liveEnd   map[string]int

	// Reader state visible to the clock's enabling condition.
	midRead    bool
	readStart  int64
	readerDone bool

	accepted []string
}

func newStoreWorld(r *Run, v0 string) *storeWorld {
	w := &storeWorld{
		clock:     timing.NewManualClock(1),
		key:       []byte("k"),
		liveStart: map[string]int{},
		liveEnd:   map[string]int{},
	}
	w.st = kv.NewStore(kv.Config{
		ArenaBytes: 1 << 12,
		MaxItems:   8,
		Policy:     smPolicy(),
		Clock:      w.clock,
	})
	if _, _, err := w.st.Put(w.key, []byte(v0)); err != nil {
		r.Failf("setup Put(%q): %v", v0, err)
	}
	w.liveStart[v0] = 0
	return w
}

// put performs an out-of-place update and moves the liveness window.
func (w *storeWorld) put(r *Run, prev, next string) kv.GetResult {
	res, _, err := w.st.Put(w.key, []byte(next))
	if err != nil {
		r.Failf("Put(%q): %v", next, err)
	}
	w.liveEnd[prev] = w.tick
	w.liveStart[next] = w.tick
	return res
}

// liveDuring reports whether v was the attached value at some tick in [a, b].
func (w *storeWorld) liveDuring(v string, a, b int) bool {
	start, known := w.liveStart[v]
	if !known || start > b {
		return false
	}
	end, ended := w.liveEnd[v]
	return !ended || end > a
}

// clockThread advances time in fixed increments, never past the in-flight
// read's completion bound (the environment assumption above).
func (w *storeWorld) clockThread(steps int, delta int64) func(*Thread) {
	return func(t *Thread) {
		for i := 0; i < steps; i++ {
			t.Await("clock", func() bool {
				return !w.midRead || w.clock.Now()+delta <= w.readStart+smCap
			}, func() {
				w.tick++
				w.clock.Advance(delta)
			})
		}
	}
}

// accept records a value returned to the "application".
func (w *storeWorld) accept(v string) { w.accepted = append(w.accepted, v) }

// readerAttempt is one one-sided GET attempt against ptr/exp. It returns the
// refreshed (ptr, exp, done): done=false means the read came back stale and
// the caller should retry or fall back. skipValidity seeds the guardian-model
// bug: the reader dereferences without checking its lease first.
func (w *storeWorld) readerAttempt(t *Thread, ptr kv.RemotePtr, exp int64, skipValidity bool) (kv.RemotePtr, int64, bool) {
	valid := false
	t.Step("clock", func() {
		w.tick++
		now := w.clock.Now()
		valid = skipValidity || lease.ValidForRead(exp, now, smMargin)
		if valid {
			w.midRead = true
			w.readStart = now
		}
	})
	if !valid {
		// Lease too old for a one-sided read: fall back to the messaging
		// path, modeled by a server-side Get (atomic in one step).
		done := false
		t.Step("store", func() {
			w.tick++
			res, ok := w.st.Get(w.key)
			if !ok {
				t.Fail("fallback Get(%q) missed a key that is never deleted", w.key)
			}
			w.accept(string(res.Value))
			ptr, exp = res.Ptr, res.LeaseExp
			done = true
		})
		return ptr, exp, done
	}

	var data []byte
	var readTick int
	t.Step("store", func() {
		w.tick++
		readTick = w.tick
		end := int(ptr.DataOff) + int(ptr.DataLen)
		data = append([]byte(nil), w.st.ArenaData()[ptr.DataOff:end]...)
	})

	done := false
	t.Step("store,clock", func() {
		w.tick++
		w.midRead = false
		guardian := w.st.Guardian(ptr.MetaIdx)
		leaseExp := w.st.Lease(ptr.MetaIdx)
		if guardian != kv.GuardianLive {
			return // detached or reclaimed: stale read, retry
		}
		k, v, ok := kv.DecodeItem(data)
		if !ok || !bytes.Equal(k, w.key) {
			return // torn or reused bytes that no longer decode to our key
		}
		val := string(v)
		if !w.liveDuring(val, readTick, w.tick) {
			t.Fail("one-sided GET returned %q, a torn or reclaimed value (copied at tick %d, guardian checked at tick %d)",
				val, readTick, w.tick)
		}
		w.accept(val)
		exp = leaseExp
		done = true
	})
	return ptr, exp, done
}

// readerLoop is the full client read path: up to two one-sided attempts,
// then a messaging fallback, then the reader-done handshake that releases
// the server and clock threads.
func (w *storeWorld) readerLoop(t *Thread, ptr kv.RemotePtr, exp int64, skipValidity bool) {
	done := false
	for attempt := 0; attempt < 2 && !done; attempt++ {
		ptr, exp, done = w.readerAttempt(t, ptr, exp, skipValidity)
	}
	if !done {
		t.Step("store", func() {
			w.tick++
			res, ok := w.st.Get(w.key)
			if !ok {
				t.Fail("final fallback Get(%q) missed", w.key)
			}
			w.accept(string(res.Value))
		})
	}
	t.Step("store,clock", func() {
		w.tick++
		w.readerDone = true
	})
}

// guardianModel checks DESIGN.md invariant (1): a guardian-word GET racing
// out-of-place PUTs never returns a torn or reclaimed value.
//
// The server updates k twice with a reclamation pass in between, so the
// second update reuses the first value's arena block and guardian/lease word
// group (both free lists are LIFO) — the ABA scenario the guardian+lease
// protocol must survive. The seeded bug removes the reader's lease-validity
// check, allowing the read to straddle reclamation: the reader copies the old
// bytes, the server reclaims and reuses the block, and the guardian — now
// live again for the new item — approves a value that was never current
// during the read.
var guardianModel = Model{
	Name:  "guardian",
	Desc:  "one-sided GET vs. out-of-place PUT + reclaim: no torn or reclaimed value",
	Bug:   "reader skips the lease-validity check before the one-sided read",
	Setup: setupGuardian,
}

func setupGuardian(r *Run, bug bool) {
	w := newStoreWorld(r, "v0")
	res0, ok := w.st.Get(w.key)
	if !ok {
		r.Failf("setup Get missed")
	}

	r.Spawn("server", func(t *Thread) {
		t.Step("store", func() {
			w.tick++
			w.put(r, "v0", "v1")
		})
		reclaimed := false
		t.Await("store,clock", func() bool {
			if w.readerDone {
				return true
			}
			due, ok := w.st.NextReclaimDue()
			return ok && due <= w.clock.Now()
		}, func() {
			w.tick++
			if due, ok := w.st.NextReclaimDue(); ok && due <= w.clock.Now() {
				w.st.ReclaimDue()
				reclaimed = true
			}
		})
		if reclaimed {
			// Reuses v0's arena block and word group: ABA.
			t.Step("store", func() {
				w.tick++
				w.put(r, "v1", "v2")
			})
		}
	})

	r.Spawn("reader", func(t *Thread) {
		w.readerLoop(t, res0.Ptr, res0.LeaseExp, bug)
	})

	r.Spawn("clock", w.clockThread(3, 60))

	r.AtEnd(func() error {
		if len(w.accepted) == 0 {
			return fmt.Errorf("reader never obtained a value")
		}
		return nil
	})
}

// leaseModel checks DESIGN.md invariant (2): lease reclamation never frees an
// item a reader may still dereference. "May still dereference" is exactly
// what a valid lease means, so the model checks, at the moment of
// reclamation, that the item's lease word has truly lapsed — and that no
// reader is mid-read believing otherwise.
//
// The store enforces this through RenewLease, which refuses to extend the
// lease of a detached (outdated) item. The seeded bug is a reader renewing
// its lease by writing the expiry word directly, bypassing that liveness
// check: the reclaim deadline was computed from the pre-renewal expiry, so
// the item is freed while its lease — and the reader trusting it — is still
// valid.
var leaseModel = Model{
	Name:  "lease",
	Desc:  "reclamation never frees an item a reader holding a valid lease may dereference",
	Bug:   "reader extends its lease by writing the expiry word, bypassing RenewLease's liveness check",
	Setup: setupLease,
}

func setupLease(r *Run, bug bool) {
	w := newStoreWorld(r, "v0")
	res0, ok := w.st.Get(w.key)
	if !ok {
		r.Failf("setup Get missed")
	}

	r.Spawn("server", func(t *Thread) {
		t.Step("store", func() {
			w.tick++
			w.put(r, "v0", "v1") // detaches v0, scheduling its reclamation
		})
		t.Await("store,clock", func() bool {
			if w.readerDone {
				return true
			}
			due, ok := w.st.NextReclaimDue()
			return ok && due <= w.clock.Now()
		}, func() {
			w.tick++
			due, pending := w.st.NextReclaimDue()
			now := w.clock.Now()
			if !pending || due > now {
				return // reader finished first; nothing due within the run
			}
			// The only queued reclaim is v0, the item the reader points at.
			expw := w.st.Lease(res0.Ptr.MetaIdx)
			if lease.ValidForRead(expw, now, smMargin) {
				t.Fail("reclaiming an item whose lease is still valid (expiry %d, now %d): a reader may still dereference it", expw, now)
			}
			if w.midRead {
				t.Fail("reclaiming an item while a reader that validated its lease is mid-read (read started at %d, now %d)", w.readStart, now)
			}
			w.st.ReclaimDue()
		})
	})

	r.Spawn("reader", func(t *Thread) {
		ptr, exp := res0.Ptr, res0.LeaseExp
		t.Step("store,clock", func() {
			w.tick++
			if bug {
				// Rogue renewal: extend the expiry word of the (possibly
				// already detached) item directly instead of asking the
				// store, which would refuse an outdated item.
				newExp := w.clock.Now() + smBase
				w.st.Words().Store(int(ptr.MetaIdx)+1, uint64(newExp))
				exp = newExp
			} else if _, ok := w.st.RenewLease(w.key); !ok {
				t.Fail("RenewLease(%q) refused a key that is never deleted", w.key)
			}
		})
		w.readerLoop(t, ptr, exp, false)
	})

	r.Spawn("clock", w.clockThread(5, 40))

	r.AtEnd(func() error {
		if len(w.accepted) == 0 {
			return fmt.Errorf("reader never obtained a value")
		}
		return nil
	})
}
