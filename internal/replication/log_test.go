package replication

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hydradb/internal/kv"
	"hydradb/internal/message"
	"hydradb/internal/rdma"
	"hydradb/internal/testutil"
	"hydradb/internal/timing"
)

func TestRecordRoundTrip(t *testing.T) {
	f := func(key, val []byte, del bool) bool {
		if len(key) == 0 || len(key) > 500 || len(val) > 500 {
			return true
		}
		op := message.OpPut
		if del {
			op = message.OpDelete
		}
		r := Record{Op: op, Key: key, Val: val}
		buf := make([]byte, r.EncodedSize())
		r.EncodeTo(buf)
		got, err := DecodeRecord(buf)
		return err == nil && got.Op == op && bytes.Equal(got.Key, key) && bytes.Equal(got.Val, val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordDecodeMalformed(t *testing.T) {
	if _, err := DecodeRecord(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, err := DecodeRecord(make([]byte, 64)); err == nil {
		t.Fatal("zeroed slot decoded")
	}
	r := Record{Op: message.OpGet, Key: []byte("k")} // GET is not replicable
	buf := make([]byte, r.EncodedSize())
	r.EncodeTo(buf)
	if _, err := DecodeRecord(buf); err == nil {
		t.Fatal("non-mutation op decoded")
	}
}

func TestReadyWordEncoding(t *testing.T) {
	f := func(rawSeq uint64, rawSize uint16, flag bool) bool {
		seq := rawSeq & seqMask
		size := int(rawSize & 0x7fff)
		w := makeReady(seq, size, flag)
		gs, gz, gf := splitReady(w)
		return gs == seq && gz == size && gf == flag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAckWordEncoding(t *testing.T) {
	s, c, n := splitAck(makeAck(42))
	if s != 42 || c != 0 || n {
		t.Fatalf("ack: %d %d %v", s, c, n)
	}
	s, c, n = splitAck(makeNack(17, 9))
	if s != 17 || c != 9 || !n {
		t.Fatalf("nack: %d %d %v", s, c, n)
	}
}

// mapApplier applies records into a plain map and tracks sequence order.
type mapApplier struct {
	mu   sync.Mutex
	m    map[string]string
	seqs []uint64
}

func newMapApplier() *mapApplier { return &mapApplier{m: map[string]string{}} }

func (a *mapApplier) Apply(seq uint64, r Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seqs = append(a.seqs, seq)
	switch r.Op {
	case message.OpPut:
		a.m[string(r.Key)] = string(r.Val)
	case message.OpDelete:
		delete(a.m, string(r.Key))
	}
	return nil
}

func (a *mapApplier) get(k string) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.m[k]
	return v, ok
}

func (a *mapApplier) len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.m)
}

type replEnv struct {
	fabric  *rdma.Fabric
	primary *Primary
	secs    []*Secondary
	apps    []*mapApplier
}

func newReplEnv(t testing.TB, cfg LogConfig, nSecs int) *replEnv {
	t.Helper()
	f := rdma.NewFabric(rdma.Config{})
	pnic := f.NewNIC("primary")
	p := NewPrimary(pnic, cfg, nSecs)
	env := &replEnv{fabric: f, primary: p}
	for i := 0; i < nSecs; i++ {
		snic := f.NewNIC(fmt.Sprintf("sec%d", i))
		qpP, qpS := rdma.Connect(pnic, snic, 8)
		log := NewLog(snic, cfg)
		ackIdx, err := p.AddSecondary(qpP, log)
		if err != nil {
			t.Fatal(err)
		}
		app := newMapApplier()
		sec := NewSecondary(log, app, qpS, p.AckRegion(), ackIdx)
		env.secs = append(env.secs, sec)
		env.apps = append(env.apps, app)
	}
	return env
}

// drain runs secondaries inline until no progress (single-threaded testing).
func (e *replEnv) drain() {
	for {
		progress := false
		for _, s := range e.secs {
			if s.PollOnce() {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

func put(k, v string) Record {
	return Record{Op: message.OpPut, Key: []byte(k), Val: []byte(v)}
}

func TestReplicateNoSecondariesIsNoop(t *testing.T) {
	f := rdma.NewFabric(rdma.Config{})
	p := NewPrimary(f.NewNIC("p"), LogConfig{}, 2)
	if err := p.Replicate(put("k", "v")); err != nil {
		t.Fatal(err)
	}
	if p.Seq() != 0 {
		t.Fatal("sequence advanced with no secondaries")
	}
}

func TestLoggingReplicationBasic(t *testing.T) {
	env := newReplEnv(t, LogConfig{Slots: 16, SlotSize: 128, AckEvery: 4}, 1)
	for i := 0; i < 10; i++ {
		if err := env.primary.Replicate(put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		env.drain()
	}
	if got := env.apps[0].len(); got != 10 {
		t.Fatalf("secondary applied %d keys, want 10", got)
	}
	if v, _ := env.apps[0].get("k7"); v != "v7" {
		t.Fatalf("k7 = %q", v)
	}
	// Applied in strict sequence order.
	for i, s := range env.apps[0].seqs {
		if s != uint64(i+1) {
			t.Fatalf("out-of-order apply at %d: %d", i, s)
		}
	}
}

func TestReplicationFanOut(t *testing.T) {
	env := newReplEnv(t, LogConfig{Slots: 32, SlotSize: 128}, 2)
	for i := 0; i < 20; i++ {
		testutil.Must(env.primary.Replicate(put(fmt.Sprintf("k%d", i), "v")))
		env.drain()
	}
	for si, app := range env.apps {
		if app.len() != 20 {
			t.Fatalf("secondary %d applied %d, want 20", si, app.len())
		}
	}
}

func TestDeleteReplicated(t *testing.T) {
	env := newReplEnv(t, LogConfig{Slots: 16, SlotSize: 128}, 1)
	testutil.Must(env.primary.Replicate(put("k", "v")))
	testutil.Must(env.primary.Replicate(Record{Op: message.OpDelete, Key: []byte("k")}))
	env.drain()
	if _, ok := env.apps[0].get("k"); ok {
		t.Fatal("delete not applied")
	}
}

func TestWindowBackpressure(t *testing.T) {
	// Slots=8: the 9th unacked record must block until the secondary drains.
	cfg := LogConfig{Slots: 8, SlotSize: 128, AckEvery: 4}
	env := newReplEnv(t, cfg, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := env.primary.Replicate(put(fmt.Sprintf("k%02d", i), "v")); err != nil {
				t.Error(err)
				return
			}
		}
		if err := env.primary.Flush(); err != nil {
			t.Error(err)
		}
	}()
	// Drain concurrently (the dedicated secondary thread).
	for {
		select {
		case <-done:
			env.drain()
			if env.apps[0].len() != 50 {
				t.Fatalf("applied %d, want 50", env.apps[0].len())
			}
			if env.primary.AckWaits.Load() == 0 {
				t.Fatal("window backpressure never engaged")
			}
			return
		default:
			env.secs[0].PollOnce()
			runtime.Gosched()
		}
	}
}

func TestStrictModeWaitsEveryRecord(t *testing.T) {
	cfg := LogConfig{Slots: 16, SlotSize: 128, Strict: true}
	env := newReplEnv(t, cfg, 1)
	go env.secs[0].Run()
	defer env.secs[0].Stop()
	for i := 0; i < 20; i++ {
		if err := env.primary.Replicate(put(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
		// Strict: by the time Replicate returns, the record is applied.
		if got := env.primary.MinAcked(); got != uint64(i+1) {
			t.Fatalf("record %d: minAcked=%d", i, got)
		}
	}
}

func TestFailureRollbackResend(t *testing.T) {
	cfg := LogConfig{Slots: 16, SlotSize: 128, AckEvery: 4}
	env := newReplEnv(t, cfg, 1)
	// Inject a single transient failure at seq 6.
	failed := false
	env.secs[0].FailureHook = func(seq uint64, r Record) error {
		if seq == 6 && !failed {
			failed = true
			return fmt.Errorf("injected transient failure")
		}
		return nil
	}
	go env.secs[0].Run()
	defer env.secs[0].Stop()
	for i := 0; i < 30; i++ {
		if err := env.primary.Replicate(put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.primary.Flush(); err != nil {
		t.Fatal(err)
	}
	if env.apps[0].len() != 30 {
		t.Fatalf("applied %d keys, want 30", env.apps[0].len())
	}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%02d", i)
		if v, ok := env.apps[0].get(k); !ok || v != fmt.Sprintf("v%02d", i) {
			t.Fatalf("%s = %q ok=%v", k, v, ok)
		}
	}
	if env.primary.Rollbacks.Load() == 0 {
		t.Fatal("no rollback recorded")
	}
	if env.secs[0].Nacks.Load() == 0 {
		t.Fatal("no nack recorded")
	}
	// Applied sequences: monotone, exactly 1..30 with no gaps once done.
	seen := map[uint64]bool{}
	for _, s := range env.apps[0].seqs {
		seen[s] = true
	}
	for s := uint64(1); s <= 30; s++ {
		if !seen[s] {
			t.Fatalf("sequence %d never applied", s)
		}
	}
}

func TestRepeatedNackKeepsDiscardCount(t *testing.T) {
	// Regression: a doorbell arriving while the secondary awaits a re-send
	// must repeat the nack with the discard count recorded when the slots
	// were zeroed. nack() resets nextSeq to firstFailed, so recomputing the
	// count at repeat time yields 0 — the primary would "re-send" an empty
	// range, mark the nack handled, and the discarded records would be lost
	// until some later doorbell cycle.
	cfg := LogConfig{Slots: 16, SlotSize: 128, AckEvery: 4}
	env := newReplEnv(t, cfg, 1)
	sec := env.secs[0]
	failed := false
	sec.FailureHook = func(seq uint64, r Record) error {
		if seq == 5 && !failed {
			failed = true
			return fmt.Errorf("injected transient failure")
		}
		return nil
	}
	// Publish seqs 1..8 before the secondary runs at all: 1..4 apply (4 is
	// acked mid-batch), 5 fails, 6..8 are discarded, and the ack request on
	// 8 publishes nack(firstFailed=5, count=4).
	for i := 0; i < 8; i++ {
		testutil.Must(env.primary.Replicate(put(fmt.Sprintf("k%d", i), "v")))
	}
	for sec.PollOnce() {
	}
	w := sec.ackMR.Words().Load(sec.ackIdx)
	if seq, count, nack := splitAck(w); !nack || seq != 5 || count != 4 {
		t.Fatalf("first nack = (seq=%d count=%d nack=%v), want (5, 4, true)", seq, count, nack)
	}

	// The primary consumes (and clears) the nack, but its re-send has not
	// arrived yet when the next doorbell rings.
	sec.ackMR.Words().Store(sec.ackIdx, 0)
	sec.log.mr.Words().Store(sec.log.doorbellIdx(), 0xDEAD)
	if !sec.PollOnce() {
		t.Fatal("doorbell not processed")
	}
	w = sec.ackMR.Words().Load(sec.ackIdx)
	if seq, count, nack := splitAck(w); !nack || seq != 5 || count != 4 {
		t.Fatalf("repeated nack = (seq=%d count=%d nack=%v), want (5, 4, true)", seq, count, nack)
	}

	// End to end: the primary acts on the repeated nack and recovery
	// converges with every record applied exactly once, in order. Flush
	// blocks until fully acked, so the secondary now runs concurrently.
	go sec.Run()
	defer sec.Stop()
	testutil.Must(env.primary.Flush())
	if env.apps[0].len() != 8 {
		t.Fatalf("applied %d records, want 8", env.apps[0].len())
	}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, ok := env.apps[0].get(k); !ok {
			t.Fatalf("record %s lost across the rollback", k)
		}
	}
}

func TestTwoFailuresDifferentSeqs(t *testing.T) {
	cfg := LogConfig{Slots: 16, SlotSize: 128, AckEvery: 4}
	env := newReplEnv(t, cfg, 1)
	failedAt := map[uint64]bool{}
	env.secs[0].FailureHook = func(seq uint64, r Record) error {
		if (seq == 5 || seq == 13) && !failedAt[seq] {
			failedAt[seq] = true
			return fmt.Errorf("injected")
		}
		return nil
	}
	go env.secs[0].Run()
	defer env.secs[0].Stop()
	for i := 0; i < 40; i++ {
		if err := env.primary.Replicate(put(fmt.Sprintf("k%02d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.primary.Flush(); err != nil {
		t.Fatal(err)
	}
	if env.apps[0].len() != 40 {
		t.Fatalf("applied %d, want 40", env.apps[0].len())
	}
	if env.primary.Rollbacks.Load() < 2 {
		t.Fatalf("rollbacks = %d, want >= 2", env.primary.Rollbacks.Load())
	}
}

func TestFailureWithTwoSecondaries(t *testing.T) {
	cfg := LogConfig{Slots: 16, SlotSize: 128, AckEvery: 4}
	env := newReplEnv(t, cfg, 2)
	failed := false
	env.secs[1].FailureHook = func(seq uint64, r Record) error {
		if seq == 3 && !failed {
			failed = true
			return fmt.Errorf("injected")
		}
		return nil
	}
	go env.secs[0].Run()
	go env.secs[1].Run()
	defer env.secs[0].Stop()
	defer env.secs[1].Stop()
	for i := 0; i < 25; i++ {
		if err := env.primary.Replicate(put(fmt.Sprintf("k%02d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.primary.Flush(); err != nil {
		t.Fatal(err)
	}
	for si, app := range env.apps {
		if app.len() != 25 {
			t.Fatalf("secondary %d applied %d, want 25", si, app.len())
		}
	}
}

func TestRecordTooLarge(t *testing.T) {
	env := newReplEnv(t, LogConfig{Slots: 8, SlotSize: 64}, 1)
	big := Record{Op: message.OpPut, Key: []byte("k"), Val: make([]byte, 128)}
	if err := env.primary.Replicate(big); err != ErrRecordTooLarge {
		t.Fatalf("want ErrRecordTooLarge, got %v", err)
	}
}

func TestGeometryMismatchRejected(t *testing.T) {
	f := rdma.NewFabric(rdma.Config{})
	pnic, snic := f.NewNIC("p"), f.NewNIC("s")
	p := NewPrimary(pnic, LogConfig{Slots: 16, SlotSize: 128}, 1)
	qp, _ := rdma.Connect(pnic, snic, 4)
	log := NewLog(snic, LogConfig{Slots: 32, SlotSize: 128})
	if _, err := p.AddSecondary(qp, log); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestKVApplierIntegration(t *testing.T) {
	// A secondary applying into a real kv.Store — the failover substrate.
	clk := timing.NewManualClock(0)
	store := kv.NewStore(kv.Config{ArenaBytes: 1 << 20, MaxItems: 1024, Clock: clk})
	applier := ApplierFunc(func(seq uint64, r Record) error {
		switch r.Op {
		case message.OpPut:
			_, _, err := store.Put(r.Key, r.Val)
			return err
		case message.OpDelete:
			store.Delete(r.Key)
			return nil
		}
		return fmt.Errorf("bad op")
	})
	f := rdma.NewFabric(rdma.Config{})
	pnic, snic := f.NewNIC("p"), f.NewNIC("s")
	cfg := LogConfig{Slots: 32, SlotSize: 256}
	p := NewPrimary(pnic, cfg, 1)
	qpP, qpS := rdma.Connect(pnic, snic, 4)
	log := NewLog(snic, cfg)
	ackIdx := testutil.Must1(p.AddSecondary(qpP, log))
	sec := NewSecondary(log, applier, qpS, p.AckRegion(), ackIdx)

	for i := 0; i < 100; i++ {
		testutil.Must(p.Replicate(put(fmt.Sprintf("user%04d", i), fmt.Sprintf("val%04d", i))))
		for sec.PollOnce() {
		}
	}
	p.ringBehind(p.seq)
	for sec.PollOnce() {
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 100 {
		t.Fatalf("secondary store has %d items, want 100", store.Len())
	}
	res, ok := store.Get([]byte("user0042"))
	if !ok || string(res.Value) != "val0042" {
		t.Fatalf("user0042: %q %v", res.Value, ok)
	}
	if sec.AppliedSeq() != 100 {
		t.Fatalf("applied seq = %d", sec.AppliedSeq())
	}
}

func BenchmarkLoggingReplicate(b *testing.B) {
	cfg := LogConfig{Slots: 256, SlotSize: 128, AckEvery: 32}
	env := newReplEnv(b, cfg, 1)
	go env.secs[0].Run()
	defer env.secs[0].Stop()
	rec := put("user0000000000001", "valuevaluevaluevaluevalueval")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.primary.Replicate(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrictReplicate(b *testing.B) {
	cfg := LogConfig{Slots: 256, SlotSize: 128, Strict: true}
	env := newReplEnv(b, cfg, 1)
	go env.secs[0].Run()
	defer env.secs[0].Stop()
	rec := put("user0000000000001", "valuevaluevaluevaluevalueval")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.primary.Replicate(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// secLinkDown installs a fault hook failing every one-sided write whose
// target is the named secondary NIC (a one-way partition of the record
// stream; acks from the secondary still flow).
func secLinkDown(f *rdma.Fabric, secNIC string) {
	f.SetFaultHook(func(v rdma.Verb, local, remote *rdma.NIC, nbytes int) rdma.FaultOutcome {
		if v == rdma.VerbWrite && remote.Name() == secNIC {
			return rdma.FaultOutcome{Err: rdma.ErrInjected}
		}
		return rdma.FaultOutcome{}
	})
}

// TestWriteFailureGapCatchesUp covers the transient-partition hole: a failed
// writeRecord must not leave a permanent gap in the secondary's ring. The
// next successful Replicate has to re-send the missing range first, because
// the secondary consumes strictly in sequence order.
func TestWriteFailureGapCatchesUp(t *testing.T) {
	env := newReplEnv(t, LogConfig{Slots: 16, SlotSize: 128, AckEvery: 4}, 1)
	for i := 0; i < 3; i++ {
		testutil.Must(env.primary.Replicate(put(fmt.Sprintf("pre%d", i), "v")))
	}
	env.drain()

	secLinkDown(env.fabric, "sec0")
	if err := env.primary.Replicate(put("gap", "lost?")); err == nil {
		t.Fatal("replicate through a dead link succeeded")
	}
	if env.primary.Seq() != 4 {
		t.Fatalf("seq = %d, want 4 (assigned before the failure)", env.primary.Seq())
	}
	env.drain()
	if got := env.secs[0].AppliedSeq(); got != 3 {
		t.Fatalf("applied = %d, want 3 while partitioned", got)
	}

	env.fabric.SetFaultHook(nil) // heal
	testutil.Must(env.primary.Replicate(put("after", "v")))
	env.drain()
	if got := env.secs[0].AppliedSeq(); got != 5 {
		t.Fatalf("applied = %d, want 5 after heal (gap re-sent)", got)
	}
	if v, ok := env.apps[0].get("gap"); !ok || v != "lost?" {
		t.Fatalf("gap record not recovered: %q %v", v, ok)
	}
	// Strictly in-order apply across the gap fill.
	for i, s := range env.apps[0].seqs {
		if s != uint64(i+1) {
			t.Fatalf("out-of-order apply at %d: %d", i, s)
		}
	}
}

// TestFlushCatchesUpGap: Flush alone (promotion / graceful-stop path) must
// repair a write gap, not just wait for acks that can never come.
func TestFlushCatchesUpGap(t *testing.T) {
	env := newReplEnv(t, LogConfig{Slots: 16, SlotSize: 128, AckEvery: 4}, 1)
	testutil.Must(env.primary.Replicate(put("a", "1")))
	env.drain()

	secLinkDown(env.fabric, "sec0")
	if err := env.primary.Replicate(put("b", "2")); err == nil {
		t.Fatal("replicate through a dead link succeeded")
	}
	env.fabric.SetFaultHook(nil) // heal before flush

	go env.secs[0].Run()
	defer env.secs[0].Stop()
	testutil.Must(env.primary.Flush())
	if got := env.secs[0].AppliedSeq(); got != 2 {
		t.Fatalf("applied = %d, want 2 after Flush", got)
	}
}

// TestFlushTimeoutPartitionedSecondary: a bounded flush against a secondary
// that never polls gives up with ErrFlushTimeout instead of spinning forever
// (the chaos stop-drain hang: Shard.Stop → Flush → waitAcked with the mesh
// cut), and succeeds once the secondary drains.
func TestFlushTimeoutPartitionedSecondary(t *testing.T) {
	env := newReplEnv(t, LogConfig{Slots: 16, SlotSize: 128, AckEvery: 4}, 1)
	testutil.Must(env.primary.Replicate(put("a", "1")))

	// The secondary never runs: acks can't arrive. The bounded flush must
	// return promptly with the sentinel rather than hang.
	start := timing.Wall().Now()
	if err := env.primary.FlushTimeout(int64(50 * time.Millisecond)); err != ErrFlushTimeout {
		t.Fatalf("FlushTimeout = %v, want ErrFlushTimeout", err)
	}
	if took := timing.Wall().Now() - start; took > int64(5*time.Second) {
		t.Fatalf("bounded flush took %dns", took)
	}

	// Once the secondary is live and answering doorbells, the same bounded
	// flush succeeds well within its budget.
	go env.secs[0].Run()
	defer env.secs[0].Stop()
	if err := env.primary.FlushTimeout(int64(5 * time.Second)); err != nil {
		t.Fatalf("FlushTimeout with live secondary = %v", err)
	}
	if got := env.secs[0].AppliedSeq(); got != 1 {
		t.Fatalf("applied = %d, want 1", got)
	}
}

// TestGapCatchUpWithTwoSecondaries: only the partitioned secondary lags; the
// healthy one keeps receiving, and the catch-up repairs exactly the hole.
func TestGapCatchUpWithTwoSecondaries(t *testing.T) {
	env := newReplEnv(t, LogConfig{Slots: 32, SlotSize: 128, AckEvery: 4}, 2)
	testutil.Must(env.primary.Replicate(put("k0", "v")))
	env.drain()

	secLinkDown(env.fabric, "sec1")
	// The write to sec0 lands before sec1's fails: the record is visible on
	// sec0 even though Replicate reports the failure.
	if err := env.primary.Replicate(put("k1", "v")); err == nil {
		t.Fatal("replicate through a dead link succeeded")
	}
	env.fabric.SetFaultHook(nil)
	testutil.Must(env.primary.Replicate(put("k2", "v")))
	env.drain()
	for si, sec := range env.secs {
		if got := sec.AppliedSeq(); got != 3 {
			t.Fatalf("secondary %d applied %d, want 3", si, got)
		}
	}
}
