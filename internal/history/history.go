// Package history records concurrent client operations and checks the
// per-key histories for linearizability against a register model.
//
// The recorder timestamps every operation's invocation and response with the
// wall clock; the checker (check.go) then decides, per key, whether some
// total order of the operations is consistent with both the timestamps and
// register semantics. The chaos harness (internal/chaos) uses this as its
// correctness oracle: faults may slow clients down or force retries, but the
// observable history must still linearize.
//
// Failed operations need care:
//
//   - A Get that returns an error (timeout, injected fault) observed
//     nothing, so it is discarded at check time.
//   - A Put or Delete that returns an error is *maybe applied* — the request
//     may have executed on the shard before the response was lost. Such ops
//     are kept with Return = +inf and an unconstrained output, so the
//     checker is free to linearize them anywhere after their invocation
//     (including "effectively never", at the very end of the history).
//
// Batched operations (MultiGet/MultiPut) are recorded as one op per key, all
// sharing the batch's invocation window. The shared window is a superset of
// each sub-operation's true window, which only makes the checker more
// permissive — a sound direction for a bug-finding oracle.
package history

import (
	"sync"

	"hydradb/internal/client"
	"hydradb/internal/timing"
)

// Kind is the operation type of a recorded Op.
type Kind uint8

// Operation kinds.
const (
	KindGet Kind = iota
	KindPut
	KindDelete
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindGet:
		return "get"
	case KindPut:
		return "put"
	case KindDelete:
		return "del"
	default:
		return "op?"
	}
}

// Infinity is the Return timestamp of an operation whose response never
// arrived (or arrived as an error for a mutating op): the op is concurrent
// with everything after its invocation.
const Infinity = int64(1<<63 - 1)

// Op is one recorded client operation.
type Op struct {
	Client int    // recording client's id
	Kind   Kind   //
	Key    string //
	Input  string // value written (puts)
	Output string // value read (gets that found the key)
	Found  bool   // get: key present; delete: key existed (OK vs NotFound)
	Err    bool   // op failed (maybe-applied for put/delete)
	Invoke int64  // invocation timestamp, ns
	Return int64  // response timestamp, ns; Infinity when Err on a mutation
}

// Recorder accumulates ops from any number of goroutines.
type Recorder struct {
	mu  sync.Mutex
	ops []Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add appends one completed op.
func (r *Recorder) Add(op Op) {
	r.mu.Lock()
	r.ops = append(r.ops, op)
	r.mu.Unlock()
}

// Ops snapshots the recorded history.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Len reports the number of recorded ops.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// RecordingClient wraps a client.Client, timestamping every operation into a
// shared Recorder. Like the wrapped client it is NOT safe for concurrent
// use; create one per goroutine, all sharing one Recorder.
type RecordingClient struct {
	C  *client.Client
	R  *Recorder
	ID int
}

// now reads the wall clock (fault delays are real busy-waits, so the
// recorded windows must be real time too).
func now() int64 { return timing.Wall().Now() }

// Get performs and records a read.
func (rc *RecordingClient) Get(key []byte) ([]byte, error) {
	op := Op{Client: rc.ID, Kind: KindGet, Key: string(key), Invoke: now()}
	v, err := rc.C.Get(key)
	op.Return = now()
	switch err {
	case nil:
		op.Found = true
		op.Output = string(v)
	case client.ErrNotFound:
		// A successful response observing absence.
	default:
		op.Err = true // observed nothing; discarded by the checker
	}
	rc.R.Add(op)
	return v, err
}

// Put performs and records a write.
func (rc *RecordingClient) Put(key, val []byte) error {
	op := Op{Client: rc.ID, Kind: KindPut, Key: string(key), Input: string(val), Invoke: now()}
	err := rc.C.Put(key, val)
	op.Return = now()
	if err != nil {
		op.Err = true
		op.Return = Infinity // maybe applied
	}
	rc.R.Add(op)
	return err
}

// Delete performs and records a delete.
func (rc *RecordingClient) Delete(key []byte) error {
	op := Op{Client: rc.ID, Kind: KindDelete, Key: string(key), Invoke: now()}
	err := rc.C.Delete(key)
	op.Return = now()
	switch err {
	case nil:
		op.Found = true
	case client.ErrNotFound:
		// Applied; the key was already absent.
	default:
		op.Err = true
		op.Return = Infinity // maybe applied
	}
	rc.R.Add(op)
	return err
}

// MultiGet performs and records a batched read: one Get op per key, all
// sharing the batch window.
func (rc *RecordingClient) MultiGet(keys [][]byte) ([][]byte, error) {
	invoke := now()
	vals, err := rc.C.MultiGet(keys)
	ret := now()
	for i, k := range keys {
		op := Op{Client: rc.ID, Kind: KindGet, Key: string(k), Invoke: invoke, Return: ret}
		if err != nil {
			op.Err = true
		} else if vals[i] != nil {
			op.Found = true
			op.Output = string(vals[i])
		}
		rc.R.Add(op)
	}
	return vals, err
}

// MultiPut performs and records a batched write: one Put op per pair, all
// sharing the batch window.
func (rc *RecordingClient) MultiPut(pairs []client.KV) error {
	invoke := now()
	err := rc.C.MultiPut(pairs)
	ret := now()
	for _, p := range pairs {
		op := Op{Client: rc.ID, Kind: KindPut, Key: string(p.Key), Input: string(p.Val), Invoke: invoke, Return: ret}
		if err != nil {
			op.Err = true
			op.Return = Infinity
		}
		rc.R.Add(op)
	}
	return err
}
