// Package dfs implements a miniature HDFS-style block filesystem plus the
// HydraDB cache layer of the paper's MapReduce acceleration use case (§2.1,
// Fig. 1): files are split into blocks spread over datanodes; a cache layer
// prefetches blocks into HydraDB as 4 MB key-value chunks and serves the
// I/O requests of upper-layer applications, handling eviction and
// population on miss.
//
// The filesystem is deliberately simple (in-memory blocks, a single
// namenode) — it is the substrate the paper's Figure 2 experiment reads
// through, not a contribution. A per-block access cost knob models the
// RPC + streaming overheads of the real HDFS client path so that live
// examples show the relative behaviour.
package dfs

import (
	"errors"
	"fmt"
	"sync"

	"hydradb/internal/stats"
)

// Errors.
var (
	ErrNotFound = errors.New("dfs: file not found")
	ErrBadBlock = errors.New("dfs: block index out of range")
	ErrExists   = errors.New("dfs: file already exists")
)

// ErrAllReplicasDown reports a block whose every replica holder failed.
var ErrAllReplicasDown = errors.New("dfs: all replicas unavailable")

// blockLoc names a block's replica datanodes and its key there.
type blockLoc struct {
	nodes []int
	key   string
}

type fileMeta struct {
	size   int
	blocks []blockLoc
}

// NameNode maps files to block locations.
type NameNode struct {
	mu    sync.RWMutex
	files map[string]*fileMeta
}

// DataNode stores block bytes.
type DataNode struct {
	mu     sync.RWMutex
	blocks map[string][]byte
	down   bool

	Served stats.Counter
	Bytes  stats.Counter
}

// Cluster is a mini-DFS deployment.
type Cluster struct {
	nn        *NameNode
	dns       []*DataNode
	blockSize int
	replicas  int
	next      int
	mu        sync.Mutex
}

// NewCluster creates a cluster of n datanodes with the given block size
// (HDFS default: 64–128 MB; tests use small blocks) and replication
// factor 1. Use NewReplicatedCluster for HDFS-style block replication.
func NewCluster(n, blockSize int) *Cluster {
	return NewReplicatedCluster(n, blockSize, 1)
}

// NewReplicatedCluster creates a cluster storing each block on r datanodes
// (HDFS default r=3); reads fail over across replica holders.
func NewReplicatedCluster(n, blockSize, r int) *Cluster {
	if n <= 0 {
		n = 3
	}
	if blockSize <= 0 {
		blockSize = 4 << 20
	}
	if r <= 0 {
		r = 1
	}
	if r > n {
		r = n
	}
	c := &Cluster{
		nn:        &NameNode{files: map[string]*fileMeta{}},
		blockSize: blockSize,
		replicas:  r,
	}
	for i := 0; i < n; i++ {
		c.dns = append(c.dns, &DataNode{blocks: map[string][]byte{}})
	}
	return c
}

// Replication reports the block replication factor.
func (c *Cluster) Replication() int { return c.replicas }

// FailDataNode marks datanode i down (chaos hook); reads fail over to the
// other replica holders. SetDataNodeUp reverses it.
func (c *Cluster) FailDataNode(i int) {
	dn := c.dns[i]
	dn.mu.Lock()
	dn.down = true
	dn.mu.Unlock()
}

// SetDataNodeUp restores datanode i.
func (c *Cluster) SetDataNodeUp(i int) {
	dn := c.dns[i]
	dn.mu.Lock()
	dn.down = false
	dn.mu.Unlock()
}

// BlockSize reports the block size.
func (c *Cluster) BlockSize() int { return c.blockSize }

// DataNodes reports the datanode count.
func (c *Cluster) DataNodes() int { return len(c.dns) }

// Write stores a file, splitting it into blocks placed round-robin.
func (c *Cluster) Write(name string, data []byte) error {
	c.nn.mu.Lock()
	defer c.nn.mu.Unlock()
	if _, ok := c.nn.files[name]; ok {
		return ErrExists
	}
	meta := &fileMeta{size: len(data)}
	for off := 0; off < len(data) || (off == 0 && len(data) == 0); off += c.blockSize {
		end := off + c.blockSize
		if end > len(data) {
			end = len(data)
		}
		key := fmt.Sprintf("%s#%d", name, len(meta.blocks))
		blk := make([]byte, end-off)
		copy(blk, data[off:end])
		// Place replicas on consecutive datanodes from a rotating start.
		c.mu.Lock()
		start := c.next % len(c.dns)
		c.next++
		c.mu.Unlock()
		var nodes []int
		for r := 0; r < c.replicas; r++ {
			node := (start + r) % len(c.dns)
			nodes = append(nodes, node)
			dn := c.dns[node]
			dn.mu.Lock()
			dn.blocks[key] = blk
			dn.mu.Unlock()
		}
		meta.blocks = append(meta.blocks, blockLoc{nodes: nodes, key: key})
		if len(data) == 0 {
			break
		}
	}
	c.nn.files[name] = meta
	return nil
}

// Blocks reports the number of blocks of a file.
func (c *Cluster) Blocks(name string) (int, error) {
	c.nn.mu.RLock()
	defer c.nn.mu.RUnlock()
	meta, ok := c.nn.files[name]
	if !ok {
		return 0, ErrNotFound
	}
	return len(meta.blocks), nil
}

// Size reports a file's byte size.
func (c *Cluster) Size(name string) (int, error) {
	c.nn.mu.RLock()
	defer c.nn.mu.RUnlock()
	meta, ok := c.nn.files[name]
	if !ok {
		return 0, ErrNotFound
	}
	return meta.size, nil
}

// ReadBlock fetches one block (a copy).
func (c *Cluster) ReadBlock(name string, i int) ([]byte, error) {
	c.nn.mu.RLock()
	meta, ok := c.nn.files[name]
	c.nn.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	if i < 0 || i >= len(meta.blocks) {
		return nil, ErrBadBlock
	}
	loc := meta.blocks[i]
	for _, node := range loc.nodes {
		dn := c.dns[node]
		dn.mu.RLock()
		down := dn.down
		blk := dn.blocks[loc.key]
		dn.mu.RUnlock()
		if down {
			continue // fail over to the next replica holder
		}
		out := make([]byte, len(blk))
		copy(out, blk)
		dn.Served.Inc()
		dn.Bytes.Add(int64(len(blk)))
		return out, nil
	}
	return nil, ErrAllReplicasDown
}

// Read fetches a whole file.
func (c *Cluster) Read(name string) ([]byte, error) {
	n, err := c.Blocks(name)
	if err != nil {
		return nil, err
	}
	size, _ := c.Size(name) //hydralint:ignore error-discipline size is a capacity hint; Blocks above already proved the file exists
	out := make([]byte, 0, size)
	for i := 0; i < n; i++ {
		blk, err := c.ReadBlock(name, i)
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
	return out, nil
}

// Delete removes a file and its blocks.
func (c *Cluster) Delete(name string) error {
	c.nn.mu.Lock()
	meta, ok := c.nn.files[name]
	if ok {
		delete(c.nn.files, name)
	}
	c.nn.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	for _, loc := range meta.blocks {
		for _, node := range loc.nodes {
			dn := c.dns[node]
			dn.mu.Lock()
			delete(dn.blocks, loc.key)
			dn.mu.Unlock()
		}
	}
	return nil
}

// TotalServed sums block reads served directly by datanodes.
func (c *Cluster) TotalServed() int64 {
	var n int64
	for _, dn := range c.dns {
		n += dn.Served.Load()
	}
	return n
}
