package hashtable

import (
	"fmt"
	"math/rand"
	"testing"

	"hydradb/internal/hashx"
	"hydradb/internal/testutil"
)

// refStore is a tiny item store for tests: ref -> key.
type refStore struct {
	keys map[uint64]string
	next uint64
}

func newRefStore() *refStore {
	return &refStore{keys: make(map[uint64]string), next: 1}
}

func (r *refStore) add(key string) uint64 {
	ref := r.next
	r.next++
	r.keys[ref] = key
	return ref
}

func (r *refStore) matcher(key string) MatchFunc {
	return func(ref uint64) bool { return r.keys[ref] == key }
}

func TestInsertLookupDelete(t *testing.T) {
	tb := New(8)
	rs := newRefStore()
	key := "hello"
	h := hashx.HashString(key)
	ref := rs.add(key)

	if _, ok := tb.Lookup(h, rs.matcher(key)); ok {
		t.Fatal("lookup on empty table succeeded")
	}
	if _, replaced, err := tb.Insert(h, ref, rs.matcher(key)); err != nil || replaced {
		t.Fatalf("insert: replaced=%v err=%v", replaced, err)
	}
	got, ok := tb.Lookup(h, rs.matcher(key))
	if !ok || got != ref {
		t.Fatalf("lookup: got %d ok=%v", got, ok)
	}
	old, ok := tb.Delete(h, rs.matcher(key))
	if !ok || old != ref {
		t.Fatalf("delete: got %d ok=%v", old, ok)
	}
	if tb.Len() != 0 {
		t.Fatalf("len after delete = %d", tb.Len())
	}
	if _, ok := tb.Lookup(h, rs.matcher(key)); ok {
		t.Fatal("lookup after delete succeeded")
	}
}

func TestInsertReplaceReturnsOld(t *testing.T) {
	tb := New(8)
	rs := newRefStore()
	key := "k"
	h := hashx.HashString(key)
	ref1 := rs.add(key)
	ref2 := rs.next
	rs.keys[ref2] = key // same key, new area (out-of-place update)
	rs.next++

	testutil.Must2(tb.Insert(h, ref1, rs.matcher(key)))
	old, replaced, err := tb.Insert(h, ref2, rs.matcher(key))
	if err != nil || !replaced || old != ref1 {
		t.Fatalf("replace: old=%d replaced=%v err=%v", old, replaced, err)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d, want 1", tb.Len())
	}
	got, _ := tb.Lookup(h, rs.matcher(key))
	if got != ref2 {
		t.Fatalf("lookup after replace = %d, want %d", got, ref2)
	}
}

func TestRefTooLarge(t *testing.T) {
	tb := New(8)
	_, _, err := tb.Insert(1, 1<<48, func(uint64) bool { return false })
	if err != ErrRefTooLarge {
		t.Fatalf("want ErrRefTooLarge, got %v", err)
	}
}

func TestOverflowChainGrowth(t *testing.T) {
	// Force every key into one bucket by using a 1-bucket table.
	tb := New(1)
	rs := newRefStore()
	const n = 50
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%04d", i)
		ref := rs.add(key)
		if _, _, err := tb.Insert(hashx.HashString(key), ref, rs.matcher(key)); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Len() != n {
		t.Fatalf("len = %d", tb.Len())
	}
	if tb.OverflowBuckets() == 0 {
		t.Fatal("expected overflow buckets")
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%04d", i)
		if _, ok := tb.Lookup(hashx.HashString(key), rs.matcher(key)); !ok {
			t.Fatalf("key %s lost in overflow chain", key)
		}
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOverflowMergeAfterDelete(t *testing.T) {
	tb := New(1)
	rs := newRefStore()
	const n = 40
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
		testutil.Must2(tb.Insert(hashx.HashString(keys[i]), rs.add(keys[i]), rs.matcher(keys[i])))
	}
	grown := tb.OverflowBuckets()
	if grown < 4 {
		t.Fatalf("setup expected >=4 overflow buckets, got %d", grown)
	}
	// Remove most entries; compaction must recycle overflow buckets.
	for i := 0; i < n-5; i++ {
		if _, ok := tb.Delete(hashx.HashString(keys[i]), rs.matcher(keys[i])); !ok {
			t.Fatalf("delete %s failed", keys[i])
		}
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tb.OverflowBuckets() != 0 {
		t.Fatalf("expected full merge after deletes, still %d overflow buckets (chain len %d)",
			tb.OverflowBuckets(), tb.ChainLength(hashx.HashString(keys[n-1])))
	}
	// Remaining keys still reachable.
	for i := n - 5; i < n; i++ {
		if _, ok := tb.Lookup(hashx.HashString(keys[i]), rs.matcher(keys[i])); !ok {
			t.Fatalf("key %s lost after compaction", keys[i])
		}
	}
}

func TestSignatureCollisionDisambiguation(t *testing.T) {
	// Two different keys forced into the same bucket with the same forged
	// signature must be disambiguated by the match callback.
	tb := New(1)
	keyByRef := map[uint64]string{1: "alpha", 2: "beta"}
	match := func(want string) MatchFunc {
		return func(ref uint64) bool { return keyByRef[ref] == want }
	}
	h := uint64(0xABCD) << 48 // same signature for both inserts
	testutil.Must2(tb.Insert(h, 1, match("alpha")))
	testutil.Must2(tb.Insert(h, 2, match("beta")))
	if got, ok := tb.Lookup(h, match("alpha")); !ok || got != 1 {
		t.Fatalf("alpha: %d %v", got, ok)
	}
	if got, ok := tb.Lookup(h, match("beta")); !ok || got != 2 {
		t.Fatalf("beta: %d %v", got, ok)
	}
	if tb.KeyCompares < 3 {
		t.Fatalf("expected extra key comparisons on signature collision, got %d", tb.KeyCompares)
	}
}

func TestRangeVisitsAll(t *testing.T) {
	tb := New(4)
	rs := newRefStore()
	want := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key%04d", i)
		ref := rs.add(key)
		want[ref] = true
		testutil.Must2(tb.Insert(hashx.HashString(key), ref, rs.matcher(key)))
	}
	got := make(map[uint64]bool)
	tb.Range(func(ref uint64) bool {
		if got[ref] {
			t.Fatalf("ref %d visited twice", ref)
		}
		got[ref] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("range visited %d of %d", len(got), len(want))
	}
	// Early termination.
	n := 0
	tb.Range(func(uint64) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestRandomizedAgainstModel runs a mixed workload against map-based model
// state and checks full agreement plus invariants.
func TestRandomizedAgainstModel(t *testing.T) {
	tb := New(16) // small main branch to exercise overflow heavily
	rng := rand.New(rand.NewSource(7))
	model := make(map[string]uint64)
	keyOf := make(map[uint64]string)
	nextRef := uint64(1)
	matcher := func(key string) MatchFunc {
		return func(ref uint64) bool { return keyOf[ref] == key }
	}
	keyspace := func(i int) string { return fmt.Sprintf("user%05d", i) }

	for step := 0; step < 20000; step++ {
		key := keyspace(rng.Intn(400))
		h := hashx.HashString(key)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // insert/update
			ref := nextRef
			nextRef++
			keyOf[ref] = key
			old, replaced, err := tb.Insert(h, ref, matcher(key))
			if err != nil {
				t.Fatal(err)
			}
			prev, existed := model[key]
			if existed != replaced || (existed && prev != old) {
				t.Fatalf("step %d insert %s: model (%d,%v) table (%d,%v)",
					step, key, prev, existed, old, replaced)
			}
			if existed {
				delete(keyOf, prev)
			}
			model[key] = ref
		case 5, 6, 7: // lookup
			ref, ok := tb.Lookup(h, matcher(key))
			mref, mok := model[key]
			if ok != mok || (ok && ref != mref) {
				t.Fatalf("step %d lookup %s: model (%d,%v) table (%d,%v)",
					step, key, mref, mok, ref, ok)
			}
		default: // delete
			ref, ok := tb.Delete(h, matcher(key))
			mref, mok := model[key]
			if ok != mok || (ok && ref != mref) {
				t.Fatalf("step %d delete %s: model (%d,%v) table (%d,%v)",
					step, key, mref, mok, ref, ok)
			}
			if mok {
				delete(model, key)
				delete(keyOf, mref)
			}
		}
		if step%2500 == 0 {
			if err := tb.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != len(model) {
		t.Fatalf("final len %d != model %d", tb.Len(), len(model))
	}
}

func TestLinesTouchedStaysLow(t *testing.T) {
	// With a properly sized table, the average lookup must touch ~1 cache
	// line — the central claim of §4.1.3.
	const n = 10000
	tb := New(n / 4) // load factor ~4 entries/bucket of 7 slots
	rs := newRefStore()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user%016d", i)
		testutil.Must2(tb.Insert(hashx.HashString(key), rs.add(key), rs.matcher(key)))
	}
	tb.Lookups, tb.LinesTouched = 0, 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user%016d", i)
		if _, ok := tb.Lookup(hashx.HashString(key), rs.matcher(key)); !ok {
			t.Fatalf("missing %s", key)
		}
	}
	avg := float64(tb.LinesTouched) / float64(tb.Lookups)
	if avg > 1.3 {
		t.Fatalf("average cache lines per lookup %.2f, want ~1", avg)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	const n = 1 << 16
	tb := New(n / 4)
	keys := make([][]byte, n)
	hs := make([]uint64, n)
	keyOf := make(map[uint64]string, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%016d", i))
		hs[i] = hashx.Hash(keys[i])
		ref := uint64(i + 1)
		keyOf[ref] = string(keys[i])
		testutil.Must2(tb.Insert(hs[i], ref, func(r uint64) bool { return keyOf[r] == string(keys[i]) }))
	}
	match := func(r uint64) bool { return true } // signature filter does the work
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(hs[i&(n-1)], match)
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	tb := New(1 << 12)
	match := func(r uint64) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := hashx.Hash64(uint64(i))
		testutil.Must2(tb.Insert(h, uint64(i&refMaskInt), match))
		tb.Delete(h, match)
	}
}

const refMaskInt = 1<<48 - 1
