package simcluster

import (
	"fmt"

	"hydradb/internal/stats"
)

// Result summarizes one simulated run.
type Result struct {
	Label     string
	Ops       int64
	VirtualNs int64
	// ThroughputMops is completed operations per virtual second, in
	// millions.
	ThroughputMops float64
	// Latencies in microseconds.
	GetMeanUs, GetP99Us float64
	UpdMeanUs, UpdP99Us float64
	// Remote-pointer hit analysis (Fig. 11).
	Hits, Stale, Misses int64
	// MaxShardUtil is the utilization of the busiest serialized resource
	// (hot-shard pressure under zipfian skew).
	MaxShardUtil float64
	// NICUtil is the server NIC utilization (device saturation, §6.3).
	NICUtil float64
	// Replication accounting.
	Replicated int64
	// PutErrors counts writes rejected for store exhaustion — nonzero
	// means the run was under-provisioned and its numbers are suspect.
	PutErrors int64
	// MaxPendingReclaims is the peak count of detached items awaiting
	// lease expiry on any one shard (the memory price of leases, §4.2.3).
	MaxPendingReclaims int
}

// String renders a compact summary.
func (r Result) String() string {
	return fmt.Sprintf("%s: %.3f Mops/s get=%.1fus upd=%.1fus (hits=%d stale=%d miss=%d)",
		r.Label, r.ThroughputMops, r.GetMeanUs, r.UpdMeanUs, r.Hits, r.Stale, r.Misses)
}

// finalize computes derived fields from histograms.
func finalize(label string, ops int64, virtualNs int64, get, upd *stats.Histogram) Result {
	r := Result{Label: label, Ops: ops, VirtualNs: virtualNs}
	if virtualNs > 0 {
		r.ThroughputMops = float64(ops) / (float64(virtualNs) / 1e9) / 1e6
	}
	gs, us := get.Summarize(), upd.Summarize()
	r.GetMeanUs, r.GetP99Us = gs.Mean, gs.P99
	r.UpdMeanUs, r.UpdP99Us = us.Mean, us.P99
	return r
}
