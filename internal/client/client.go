// Package client implements the HydraDB client library (paper §4):
// consistent-hash routing, RDMA-Write message passing with response polling,
// remote-pointer caching with RDMA-Read GETs, stale-read detection via the
// guardian word, lease tracking and renewal, and optional pointer sharing
// among collocated clients through a lock-free cache (§4.2.2–§4.2.4).
package client

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"hydradb/internal/consistent"
	"hydradb/internal/kv"
	"hydradb/internal/lease"
	"hydradb/internal/lfmap"
	"hydradb/internal/message"
	"hydradb/internal/shard"
	"hydradb/internal/stats"
	"hydradb/internal/timing"
)

// Errors surfaced to applications.
var (
	ErrNotFound = errors.New("hydradb: key not found")
	ErrUnrouted = errors.New("hydradb: no shard owns this key")
	ErrRemote   = errors.New("hydradb: server error")
	ErrRetries  = errors.New("hydradb: routing retries exhausted")
	// ErrMaybeApplied reports a write whose request was delivered but whose
	// response never arrived (AtMostOnceWrites mode): the mutation may or
	// may not have executed, and the caller owns the ambiguity.
	ErrMaybeApplied = errors.New("hydradb: write may or may not have been applied")
)

// PtrEntry is a cached remote pointer plus its lease (§4.2.2).
type PtrEntry struct {
	Ptr      kv.RemotePtr
	LeaseExp int64
	Access   atomic.Uint32 // client-side popularity for renewal decisions
}

// PtrCache abstracts the pointer cache: a private per-client cache or the
// shared lock-free cache of collocated clients (§4.2.4).
type PtrCache interface {
	Get(key string) (*PtrEntry, bool)
	Put(key string, e *PtrEntry)
	CompareAndDelete(key string, old *PtrEntry) bool
	Range(fn func(key string, e *PtrEntry) bool)
	Len() int
}

// NewSharedCache builds the machine-wide lock-free cache.
func NewSharedCache(buckets int) PtrCache {
	return sharedCache{m: lfmap.New[PtrEntry](buckets)}
}

type sharedCache struct{ m *lfmap.Map[PtrEntry] }

func (s sharedCache) Get(key string) (*PtrEntry, bool) { return s.m.Get(key) }
func (s sharedCache) Put(key string, e *PtrEntry)      { s.m.Put(key, e) }
func (s sharedCache) CompareAndDelete(key string, old *PtrEntry) bool {
	return s.m.CompareAndDelete(key, old)
}
func (s sharedCache) Range(fn func(string, *PtrEntry) bool) { s.m.Range(fn) }
func (s sharedCache) Len() int                              { return s.m.Len() }

// NewPrivateCache builds a single-client map cache (used when secure access
// requires cache isolation, §4.2.4).
func NewPrivateCache() PtrCache { return &privateCache{m: map[string]*PtrEntry{}} }

type privateCache struct{ m map[string]*PtrEntry }

func (p *privateCache) Get(key string) (*PtrEntry, bool) { e, ok := p.m[key]; return e, ok }
func (p *privateCache) Put(key string, e *PtrEntry)      { p.m[key] = e }
func (p *privateCache) CompareAndDelete(key string, old *PtrEntry) bool {
	if cur, ok := p.m[key]; ok && cur == old {
		delete(p.m, key)
		return true
	}
	return false
}
func (p *privateCache) Range(fn func(string, *PtrEntry) bool) {
	for k, e := range p.m {
		if !fn(k, e) {
			return
		}
	}
}
func (p *privateCache) Len() int { return len(p.m) }

// RouteTable snapshots the cluster topology under one epoch.
type RouteTable struct {
	Epoch     uint32
	Ring      *consistent.Ring
	Endpoints map[uint32]*shard.Endpoint
}

// Options tune a client.
type Options struct {
	// Clock is required (shared with the cluster for lease arithmetic).
	Clock timing.Clock
	// Cache holds remote pointers; nil selects a private cache.
	Cache PtrCache
	// UseRDMARead enables the one-sided GET path (§4.2.2); disabled it
	// degenerates to pure message passing ("RDMA Write Only", Fig. 10).
	UseRDMARead bool
	// ReadMarginNs is the lease safety margin for RDMA Reads.
	ReadMarginNs int64
	// Refresh is called on StatusWrongShard to obtain a newer RouteTable;
	// nil disables rerouting.
	Refresh func() *RouteTable
	// MaxRetries bounds rerouting attempts.
	MaxRetries int
	// RequestTimeout bounds the wall-clock wait for a response; on expiry the
	// client refreshes its routing table and retries (the shard may have
	// failed and been promoted elsewhere). Zero selects 2 s.
	RequestTimeout time.Duration
	// WallClock supplies the liveness time base for RequestTimeout. It is
	// distinct from Clock: lease arithmetic must follow the (possibly
	// virtual) data-plane clock, while failure detection must keep moving
	// even when that clock is a stalled ManualClock. Nil selects the shared
	// real clock, timing.Wall(); deterministic harnesses may inject a
	// ManualClock and drive timeouts explicitly.
	WallClock timing.Clock
	// AtMostOnceWrites makes a timed-out Put/Delete return ErrMaybeApplied
	// instead of transparently retrying. The default (false) retries after a
	// routing refresh, which is at-LEAST-once: the first attempt's request
	// may have executed with only its response lost, so a retry can apply
	// the same mutation twice — observable as a resurrected value when
	// other writes landed in between. Reads always retry (idempotent).
	// History-checking harnesses set this so every recorded operation
	// executes at most once and timeouts surface as "maybe applied".
	AtMostOnceWrites bool
	// Counters, when non-nil, receives operation accounting (shared across
	// clients when aggregating a machine).
	Counters *stats.OpCounters
	// PipelineWindow bounds the in-flight requests per connection for
	// Pipeline/MultiGet/MultiPut. It is clamped to the mailbox ring depth at
	// issue time; zero selects the full ring depth.
	PipelineWindow int
}

// Client is a HydraDB client instance. A client issues synchronous requests
// and is not safe for concurrent use — run one per goroutine, exactly like
// the paper's client processes; clients may share a PtrCache and counters.
type Client struct {
	opts   Options
	table  *RouteTable
	cache  PtrCache
	clock  timing.Clock
	wall   timing.Clock
	ctr    *stats.OpCounters
	seq    uint32
	reqBuf []byte
	rdBuf  []byte

	// Scratch state reused across calls so steady-state paths stay
	// allocation-free: the word buffer for one-sided reads, a request header
	// scratch for GETs, renewal pass slices, and the pipeline machinery.
	wordBuf     [2]uint64
	getReq      message.Request
	renewKeys   []string
	renewKeyBuf []byte
	pipe        pipeScratch
}

// New creates a client over the given routing snapshot.
func New(table *RouteTable, opts Options) *Client {
	if opts.Clock == nil {
		panic("client: Options.Clock required")
	}
	if opts.ReadMarginNs == 0 {
		opts.ReadMarginNs = 10e6 // 10 ms skew margin
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 8
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 2 * time.Second
	}
	if opts.WallClock == nil {
		opts.WallClock = timing.Wall()
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewPrivateCache()
	}
	ctr := opts.Counters
	if ctr == nil {
		ctr = &stats.OpCounters{}
	}
	return &Client{
		opts:   opts,
		table:  table,
		cache:  cache,
		clock:  opts.Clock,
		wall:   opts.WallClock,
		ctr:    ctr,
		reqBuf: make([]byte, 64<<10),
		rdBuf:  make([]byte, 64<<10),
	}
}

// Counters exposes the client's accounting.
func (c *Client) Counters() *stats.OpCounters { return c.ctr }

// Cache exposes the pointer cache (hit analysis, Fig. 11).
func (c *Client) Cache() PtrCache { return c.cache }

// Table reports the current routing snapshot.
func (c *Client) Table() *RouteTable { return c.table }

// SetTable installs a new routing snapshot (epoch change).
func (c *Client) SetTable(t *RouteTable) { c.table = t }

func (c *Client) endpointFor(key []byte) (*shard.Endpoint, error) {
	sid := c.table.Ring.OwnerOfKey(key)
	ep, ok := c.table.Endpoints[sid]
	if !ok {
		return nil, ErrUnrouted
	}
	return ep, nil
}

// mutates reports whether op changes server state (the ops AtMostOnceWrites
// refuses to blind-retry).
func mutates(op message.Op) bool {
	return op == message.OpPut || op == message.OpDelete
}

// request performs one synchronous message exchange with the shard owning
// key, handling epoch-stale rerouting.
func (c *Client) request(req *message.Request) (message.Response, error) {
	resp, _, err := c.requestAppend(req, nil)
	return resp, err
}

// requestAppend is request with caller-controlled value memory: a response
// value is appended to dst before the mailbox slot is released, resp.Val is
// re-pointed at the appended region, and the (possibly grown) dst is returned
// so callers can reuse one buffer across calls. dst == nil reproduces the
// old copy-out behavior.
//
// Responses whose seq does not match the outstanding request are dropped:
// after a timeout-triggered retry, the late response of the abandoned
// attempt may still land, and without the check it would be misattributed to
// the current request.
func (c *Client) requestAppend(req *message.Request, dst []byte) (message.Response, []byte, error) {
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		ep, err := c.endpointFor(req.Key)
		if err != nil {
			return message.Response{}, dst, err
		}
		req.Epoch = c.table.Epoch
		c.seq++
		req.Seq = c.seq

		need := req.EncodedSize()
		if cap(c.reqBuf) < need {
			c.reqBuf = make([]byte, need)
		}
		n := req.EncodeTo(c.reqBuf[:need])

		var resp message.Response
		if ep.SendRecv {
			if err := ep.QP.Send(c.reqBuf[:n]); err != nil {
				// The request never left: nothing executed, so even a
				// mutation retries safely. A dead shard's revoked mailbox
				// surfaces here, turning a 150 ms-class timeout into an
				// immediate reroute.
				if c.opts.Refresh != nil {
					c.ctr.RoutingRetries.Inc()
					c.refreshTable()
					continue
				}
				return message.Response{}, dst, err
			}
			deadline := c.wall.Now() + int64(c.opts.RequestTimeout)
			var body []byte
			for {
				var ok bool
				body, ok = ep.QP.TryRecv()
				if ok {
					r, derr := message.DecodeResponse(body)
					if derr != nil {
						return message.Response{}, dst, derr
					}
					if r.Seq != req.Seq {
						continue // stale response of an abandoned attempt
					}
					resp = r
					break
				}
				if ep.QP.Closed() {
					return message.Response{}, dst, ErrRemote
				}
				if c.wall.Now() > deadline {
					if c.opts.AtMostOnceWrites && mutates(req.Op) {
						// Surface the ambiguity, but still refresh: the
						// timeout is routing's failure signal, and the next
						// operation must not re-target a dead shard.
						if c.opts.Refresh != nil {
							c.refreshTable()
						}
						return message.Response{}, dst, ErrMaybeApplied
					}
					if c.opts.Refresh == nil {
						return message.Response{}, dst, ErrRemote
					}
					c.ctr.RoutingRetries.Inc()
					c.refreshTable()
					body = nil
					break
				}
				runtime.Gosched()
			}
			if body == nil {
				continue // timed out: retry against the refreshed table
			}
			if len(resp.Val) > 0 {
				base := len(dst)
				dst = append(dst, resp.Val...)
				resp.Val = dst[base:]
			}
		} else {
			if err := ep.ReqBox.WriteVia(ep.QP, c.reqBuf[:n], req.Seq); err != nil {
				// Same as the two-sided send: the request write failed whole,
				// so refresh and retry without at-most-once concern.
				if c.opts.Refresh != nil {
					c.ctr.RoutingRetries.Inc()
					c.refreshTable()
					continue
				}
				return message.Response{}, dst, err
			}
			// Sustained polling for the response (§4.2.1): the client CPU
			// polls its response buffer. A real-time deadline covers shard
			// failure: on expiry, refresh routing and retry.
			var body []byte
			deadline := c.wall.Now() + int64(c.opts.RequestTimeout)
			timedOut := false
			for spins := 0; ; spins++ {
				var seq uint32
				var ok bool
				body, seq, ok = ep.RespBox.Poll()
				if ok {
					if seq != req.Seq {
						// Stale response of an abandoned attempt: release the
						// slot and keep polling for ours.
						ep.RespBox.Consume()
						continue
					}
					break
				}
				if spins&1023 == 1023 && c.wall.Now() > deadline {
					timedOut = true
					break
				}
				runtime.Gosched()
			}
			if timedOut {
				if c.opts.AtMostOnceWrites && mutates(req.Op) {
					// Same refresh-on-timeout as above: keep the ambiguity,
					// drop the stale routing.
					if c.opts.Refresh != nil {
						c.refreshTable()
					}
					return message.Response{}, dst, ErrMaybeApplied
				}
				if c.opts.Refresh == nil {
					return message.Response{}, dst, ErrRemote
				}
				c.ctr.RoutingRetries.Inc()
				c.refreshTable()
				continue
			}
			resp, err = message.DecodeResponse(body)
			if err != nil {
				ep.RespBox.Consume()
				return message.Response{}, dst, err
			}
			if resp.Seq != req.Seq {
				// Indicator seq matched but the framed header disagrees —
				// treat like any mismatch and drop the message.
				ep.RespBox.Consume()
				continue
			}
			// Copy the value out before releasing the mailbox.
			if len(resp.Val) > 0 {
				base := len(dst)
				dst = append(dst, resp.Val...)
				resp.Val = dst[base:]
			}
			ep.RespBox.Consume()
		}

		if resp.Status == message.StatusWrongShard {
			c.ctr.RoutingRetries.Inc()
			if c.opts.Refresh == nil {
				// hydralint:ignore published-escape resp.Val re-pointed at the private dst copy before Consume
				return resp, dst, ErrRetries
			}
			c.refreshTable()
			continue
		}
		// hydralint:ignore published-escape resp.Val re-pointed at the private dst copy before Consume
		return resp, dst, nil
	}
	return message.Response{}, dst, ErrRetries
}

// refreshTable installs a fresh routing table. When the refresh reveals a
// new routing epoch, every cached pointer was minted under superseded
// placement (§5.1: promotion and migration bump the epoch), so the pointer
// cache is dropped wholesale — offsets into a reshuffled arena must not be
// revalidated item by item.
func (c *Client) refreshTable() {
	old := c.table
	c.table = c.opts.Refresh()
	if c.table.Epoch == old.Epoch {
		return
	}
	c.cache.Range(func(key string, e *PtrEntry) bool {
		c.cache.CompareAndDelete(key, e)
		return true
	})
}

// cachePointer installs/overwrites the pointer for key.
func (c *Client) cachePointer(key string, ptr kv.RemotePtr, leaseExp int64) {
	if ptr.Zero() {
		return
	}
	e := &PtrEntry{Ptr: ptr, LeaseExp: leaseExp}
	e.Access.Store(1)
	c.cache.Put(key, e)
}

// cacheGet looks up key's pointer without materializing a string: on the
// private cache the map index expression string-interns the byte key for
// free, so the steady-state GET path stays allocation-free. The shared
// lock-free cache needs a real string.
func (c *Client) cacheGet(key []byte) (*PtrEntry, bool) {
	if p, ok := c.cache.(*privateCache); ok {
		e, ok := p.m[string(key)]
		return e, ok
	}
	return c.cache.Get(string(key))
}

// cacheDrop removes key's pointer if it still maps to old (byte-key twin of
// CompareAndDelete, same interning trick as cacheGet).
func (c *Client) cacheDrop(key []byte, old *PtrEntry) {
	if p, ok := c.cache.(*privateCache); ok {
		if cur, ok := p.m[string(key)]; ok && cur == old {
			delete(p.m, string(key))
		}
		return
	}
	c.cache.CompareAndDelete(string(key), old)
}

// Get returns the value for key. Previously accessed keys with a valid
// lease are fetched with a single one-sided RDMA Read that bypasses the
// shard CPU entirely; the guardian word and embedded key validate the fetch,
// falling back to a message GET on any staleness (§4.2.2, §4.2.3).
func (c *Client) Get(key []byte) ([]byte, error) {
	return c.GetInto(key, nil)
}

// GetInto is Get with caller-controlled value memory: the value is appended
// to dst and the grown slice returned, so steady-state readers can reuse one
// buffer and pay zero allocations per one-sided GET. A nil dst allocates a
// fresh value exactly like Get. Not-found returns (dst, ErrNotFound).
//
// hydralint:hotpath
func (c *Client) GetInto(key, dst []byte) ([]byte, error) {
	c.ctr.Gets.Inc()
	if c.opts.UseRDMARead {
		if e, ok := c.cacheGet(key); ok {
			out, ok, err := c.readViaPointerInto(key, e, dst)
			if err == nil && ok {
				c.ctr.RDMAReadHits.Inc()
				e.Access.Add(1)
				return out, nil
			}
			// Invalid hit: outdated item observed — drop the pointer and
			// issue a message GET for the latest version (§4.2.3).
			c.ctr.RDMAReadStale.Inc()
			c.cacheDrop(key, e)
		} else {
			c.ctr.PointerMisses.Inc()
		}
	} else {
		c.ctr.PointerMisses.Inc()
	}
	return c.getViaMessage(key, dst)
}

// getViaMessage issues the two-sided GET and caches the returned pointer.
func (c *Client) getViaMessage(key, dst []byte) ([]byte, error) {
	c.getReq = message.Request{Op: message.OpGet, Key: key}
	resp, out, err := c.requestAppend(&c.getReq, dst)
	c.getReq.Key = nil
	if err != nil {
		return dst, err
	}
	switch resp.Status {
	case message.StatusOK:
		if c.opts.UseRDMARead {
			c.cachePointer(string(key), resp.Ptr, resp.LeaseExp)
		}
		return out, nil
	case message.StatusNotFound:
		return dst, ErrNotFound
	default:
		return dst, ErrRemote
	}
}

// readViaPointer attempts the one-sided fetch. ok=false flags a stale or
// lease-expired pointer.
func (c *Client) readViaPointer(key []byte, e *PtrEntry) ([]byte, bool, error) {
	return c.readViaPointerInto(key, e, nil)
}

// readViaPointerInto is readViaPointer appending into dst. It reuses the
// client's read scratch and word buffer so a hit performs no allocations.
//
// hydralint:hotpath
func (c *Client) readViaPointerInto(key []byte, e *PtrEntry, dst []byte) ([]byte, bool, error) {
	now := c.clock.Now()
	if !lease.ValidForRead(e.LeaseExp, now, c.opts.ReadMarginNs) {
		return dst, false, nil
	}
	ep, ok := c.table.Endpoints[e.Ptr.ShardID]
	if !ok {
		return dst, false, nil
	}
	buf := c.readBuf(int(e.Ptr.DataLen))
	// One RDMA Read fetches payload + guardian + lease (§4.2.3).
	_, err := ep.QP.ReadInto(ep.ArenaMR, int(e.Ptr.DataOff), buf, c.wordBuf[:],
		int(e.Ptr.MetaIdx), int(e.Ptr.MetaIdx)+1)
	if err != nil {
		return dst, false, err
	}
	if c.wordBuf[0] != kv.GuardianLive {
		return dst, false, nil // guardian flipped: outdated
	}
	gotKey, gotVal, okDec := kv.DecodeItem(buf)
	if !okDec || !bytes.Equal(gotKey, key) {
		// Recycled area republished for another key: treat as stale.
		return dst, false, nil
	}
	// Refresh the lease view fetched with the item.
	if exp := int64(c.wordBuf[1]); exp > e.LeaseExp {
		e.LeaseExp = exp
	}
	dst = append(dst, gotVal...)
	return dst, true, nil
}

// readBuf returns the read scratch sized for n bytes, growing it as needed.
func (c *Client) readBuf(n int) []byte {
	if cap(c.rdBuf) < n {
		c.rdBuf = make([]byte, n)
	}
	return c.rdBuf[:n]
}

// Put inserts or updates key. The returned pointer is cached so subsequent
// GETs can go one-sided immediately.
func (c *Client) Put(key, val []byte) error {
	c.ctr.Updates.Inc()
	resp, err := c.request(&message.Request{Op: message.OpPut, Key: key, Val: val})
	if err != nil {
		return err
	}
	if resp.Status != message.StatusOK {
		return ErrRemote
	}
	if c.opts.UseRDMARead {
		c.cachePointer(string(key), resp.Ptr, resp.LeaseExp)
	}
	return nil
}

// Delete removes key.
func (c *Client) Delete(key []byte) error {
	c.ctr.Deletes.Inc()
	resp, err := c.request(&message.Request{Op: message.OpDelete, Key: key})
	if err != nil {
		return err
	}
	if e, ok := c.cacheGet(key); ok {
		c.cacheDrop(key, e)
	}
	switch resp.Status {
	case message.StatusOK:
		return nil
	case message.StatusNotFound:
		return ErrNotFound
	default:
		return ErrRemote
	}
}

// Renew extends the lease of key on the server (periodic renewal of popular
// keys, §4.2.3). It updates the cached entry in place.
func (c *Client) Renew(key []byte) error {
	resp, err := c.request(&message.Request{Op: message.OpRenewLease, Key: key})
	if err != nil {
		return err
	}
	if resp.Status != message.StatusOK {
		// Outdated or deleted: drop the pointer.
		if e, ok := c.cacheGet(key); ok {
			c.cacheDrop(key, e)
		}
		return ErrNotFound
	}
	c.ctr.LeaseRenewals.Inc()
	if e, ok := c.cacheGet(key); ok {
		e.LeaseExp = resp.LeaseExp
	}
	return nil
}

// RenewPopular renews every cached key whose client-side access count is at
// least minAccess and whose lease expires within windowNs — the paper's
// periodic renewal pass. Returns the number of keys renewed.
func (c *Client) RenewPopular(minAccess uint32, windowNs int64) int {
	now := c.clock.Now()
	keys := c.renewKeys[:0]
	c.cache.Range(func(key string, e *PtrEntry) bool {
		if e.Access.Load() >= minAccess && e.LeaseExp-now < windowNs {
			keys = append(keys, key)
		}
		return true
	})
	n := 0
	for _, k := range keys {
		// One scratch byte slice serves every renewal of the pass.
		c.renewKeyBuf = append(c.renewKeyBuf[:0], k...)
		if err := c.Renew(c.renewKeyBuf); err == nil {
			n++
		}
	}
	// Keep the grown backing for the next pass, but release the key strings.
	for i := range keys {
		keys[i] = ""
	}
	c.renewKeys = keys[:0]
	return n
}

// String identifies the client by its routing epoch.
func (c *Client) String() string {
	return fmt.Sprintf("client{epoch=%d shards=%d}", c.table.Epoch, c.table.Ring.Size())
}
