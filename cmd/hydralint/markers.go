package main

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// The def-use layer is steered by declaration-site markers, all sharing the
// //hydralint: prefix of the existing pragma family:
//
//	//hydralint:region <why>         slice field/var whose backing store is a
//	                                 registered RDMA region; indexing it is a
//	                                 region-bounds proof obligation
//	//hydralint:region-view <why>    func/method whose result aliases a region
//	                                 (Data(), Bytes(), ...); slicing the result
//	                                 carries the same obligation
//	//hydralint:offset-source <why>  field/var/func producing offsets already
//	                                 validated against its region (constructor
//	                                 checks, allocator invariants)
//	//hydralint:aligned <n> <why>    field/var/func whose value is always a
//	                                 multiple of n; stores must prove it,
//	                                 reads may assume it
//	//hydralint:publish <why>        const whose store to a guardian word
//	                                 makes an item remotely visible
//	//hydralint:unpublish <why>      const whose store retracts visibility
//	//hydralint:publishes <why>      func whose first indicator store is the
//	                                 publication point for its payload
//	//hydralint:unpublishes <why>    func that retracts visibility (clears
//	                                 indicators, stores a dead guardian);
//	                                 writes after it are allowed again
//
// The markers are collected once per run into a program-wide table keyed by
// the same nominal identities the mixed-access pass uses ("pkgpath.Type.field",
// "pkgpath.var") plus types.Func full names, so they resolve across package
// boundaries without shared object identity.
type progMarkers struct {
	regionKeys        map[string]bool  // region-backed slice fields / vars
	regionViewFuncs   map[string]bool  // funcs returning region views
	offsetSourceKeys  map[string]bool  // validated-offset fields / vars
	offsetSourceFuncs map[string]bool  // validated-offset producers
	alignedKeys       map[string]int64 // field/var -> required multiple
	alignedFuncs      map[string]int64 // func result -> required multiple
	// offsetSinkFuncs maps a func to the parameter names its
	// //hydralint:offset-sink marker lists as region offsets (the leading
	// marker words that match declared parameter names; the rest is prose).
	// An empty list means every integer parameter.
	offsetSinkFuncs  map[string][]string
	publishConsts    map[string]bool // "pkgpath.Name" of publish constants
	unpublishConsts  map[string]bool
	publishesFuncs   map[string]bool
	unpublishesFuncs map[string]bool
}

// markersFor collects (once) every def-use marker in the loaded program.
func (prog *Program) markersFor() *progMarkers {
	if prog.markers != nil {
		return prog.markers
	}
	m := &progMarkers{
		regionKeys:        map[string]bool{},
		regionViewFuncs:   map[string]bool{},
		offsetSourceKeys:  map[string]bool{},
		offsetSourceFuncs: map[string]bool{},
		alignedKeys:       map[string]int64{},
		alignedFuncs:      map[string]int64{},
		offsetSinkFuncs:   map[string][]string{},
		publishConsts:     map[string]bool{},
		unpublishConsts:   map[string]bool{},
		publishesFuncs:    map[string]bool{},
		unpublishesFuncs:  map[string]bool{},
	}
	prog.markers = m
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					m.collectFunc(p, d)
				case *ast.GenDecl:
					m.collectGen(p, d)
				}
			}
		}
	}
	return m
}

func (m *progMarkers) collectFunc(p *Package, fd *ast.FuncDecl) {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	name := fn.FullName()
	if docHasMarker(fd.Doc, "hydralint:publishes") {
		m.publishesFuncs[name] = true
	}
	if docHasMarker(fd.Doc, "hydralint:unpublishes") {
		m.unpublishesFuncs[name] = true
	}
	if docHasMarker(fd.Doc, "hydralint:offset-source") {
		m.offsetSourceFuncs[name] = true
	}
	if docHasMarker(fd.Doc, "hydralint:region-view") {
		m.regionViewFuncs[name] = true
	}
	if rest, _, ok := markerLine(fd.Doc, "hydralint:offset-sink"); ok {
		declared := map[string]bool{}
		if fd.Type.Params != nil {
			for _, f := range fd.Type.Params.List {
				for _, n := range f.Names {
					declared[n.Name] = true
				}
			}
		}
		params := []string{}
		for _, word := range strings.Fields(rest) {
			if !declared[word] {
				break // first non-parameter word starts the prose
			}
			params = append(params, word)
		}
		m.offsetSinkFuncs[name] = params
	}
	if n, ok := alignedArg(fd.Doc); ok {
		m.alignedFuncs[name] = n
	}
}

func (m *progMarkers) collectGen(p *Package, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		switch spec := spec.(type) {
		case *ast.TypeSpec:
			st, ok := spec.Type.(*ast.StructType)
			if !ok {
				continue
			}
			tn, ok := p.Info.Defs[spec.Name].(*types.TypeName)
			if !ok || tn.Pkg() == nil {
				continue
			}
			prefix := tn.Pkg().Path() + "." + tn.Name() + "."
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					m.collectKeyed(prefix+name.Name, field.Doc, field.Comment)
				}
			}
		case *ast.ValueSpec:
			for _, name := range spec.Names {
				obj := p.Info.Defs[name]
				switch obj := obj.(type) {
				case *types.Var:
					if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
						continue
					}
					m.collectKeyed(obj.Pkg().Path()+"."+obj.Name(), spec.Doc, spec.Comment, gd.Doc)
				case *types.Const:
					if obj.Pkg() == nil {
						continue
					}
					key := obj.Pkg().Path() + "." + obj.Name()
					if anyHasMarker("hydralint:publish", spec.Doc, spec.Comment) {
						m.publishConsts[key] = true
					}
					if anyHasMarker("hydralint:unpublish", spec.Doc, spec.Comment) {
						m.unpublishConsts[key] = true
					}
				}
			}
		}
	}
}

// collectKeyed records the field/var markers found in any of the groups.
func (m *progMarkers) collectKeyed(key string, groups ...*ast.CommentGroup) {
	if anyHasMarker("hydralint:region", groups...) {
		m.regionKeys[key] = true
	}
	if anyHasMarker("hydralint:offset-source", groups...) {
		m.offsetSourceKeys[key] = true
	}
	for _, g := range groups {
		if n, ok := alignedArg(g); ok {
			m.alignedKeys[key] = n
			break
		}
	}
}

// anyHasMarker reports whether any comment group carries the marker.
// directiveRest (via markerLine) requires a word boundary after the marker,
// so "hydralint:region" never matches the longer "hydralint:region-view".
func anyHasMarker(marker string, groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if _, _, ok := markerLine(g, marker); ok {
			return true
		}
	}
	return false
}

// alignedArg extracts n from a "hydralint:aligned <n> <why>" marker.
func alignedArg(g *ast.CommentGroup) (int64, bool) {
	rest, _, ok := markerLine(g, "hydralint:aligned")
	if !ok {
		return 0, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, false
	}
	n, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// constKeyOf resolves an expression naming a declared constant to its
// "pkgpath.Name" key (for publish/unpublish matching); literals and
// non-constant expressions return ok=false.
func constKeyOf(p *Package, e ast.Expr) (string, bool) {
	e = unparen(e)
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[x.Sel]
	default:
		return "", false
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil {
		return "", false
	}
	return c.Pkg().Path() + "." + c.Name(), true
}
