package dfs_test

import (
	"bytes"
	"math/rand"
	"testing"

	"hydradb"
	"hydradb/internal/dfs"
	"hydradb/internal/testutil"
)

// TestCacheLayerOverRealHydraDB wires the DFS cache layer to an actual
// HydraDB deployment — the full Fig. 1 stack: blocks are chunked into
// key-value pairs, served via RDMA-accelerated GETs on re-reads.
func TestCacheLayerOverRealHydraDB(t *testing.T) {
	opts := hydradb.DefaultOptions()
	opts.ShardsPerMachine = 2
	opts.ArenaBytesPerShard = 16 << 20
	opts.MaxItemsPerShard = 4096
	db, err := hydradb.Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	fs := dfs.NewCluster(3, 64<<10)
	data := make([]byte, 8*64<<10)
	testutil.Must1(rand.New(rand.NewSource(7)).Read(data))
	if err := fs.Write("part-00000", data); err != nil {
		t.Fatal(err)
	}

	cli := db.NewClient()
	cache := dfs.NewCacheLayer(fs, cli, 16<<10, 0) // 4 chunks per block
	if err := cache.Prefetch("part-00000"); err != nil {
		t.Fatal(err)
	}

	served := fs.TotalServed()
	for i := 0; i < 8; i++ {
		blk, err := cache.ReadBlock("part-00000", i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blk, data[i*64<<10:(i+1)*64<<10]) {
			t.Fatalf("block %d corrupted through the cache", i)
		}
	}
	if fs.TotalServed() != served {
		t.Fatal("cached reads reached the DFS")
	}
	if cache.Hits.Load() != 8 {
		t.Fatalf("hits = %d, want 8", cache.Hits.Load())
	}
	// Chunk GETs go one-sided on re-read: second pass must produce RDMA
	// Read hits on the client.
	before := cli.Counters().Snapshot().RDMAReadHits
	for i := 0; i < 8; i++ {
		if _, err := cache.ReadBlock("part-00000", i); err != nil {
			t.Fatal(err)
		}
	}
	after := cli.Counters().Snapshot().RDMAReadHits
	if after-before < 8 {
		t.Fatalf("one-sided chunk reads = %d, want >= 8", after-before)
	}
}
