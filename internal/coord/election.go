package coord

import (
	"sort"
	"strings"
)

// Election is the standard ZooKeeper leader-election recipe used by the SWAT
// group (§5.1): each candidate creates an ephemeral-sequential node under a
// common path; the lowest sequence number leads; on any membership change
// candidates re-evaluate. "In the case of SWAT leader failure, a new leader
// from the SWAT group is elected and takes over."
type Election struct {
	sess   *Session
	path   string
	myNode string
	events <-chan Event
	cancel func()
}

// NewElection enrols the session as a candidate under electionPath, creating
// the path if needed. name tags the candidate (diagnostics only).
func NewElection(sess *Session, electionPath, name string) (*Election, error) {
	if err := sess.EnsurePath(electionPath); err != nil {
		return nil, err
	}
	node, err := sess.Create(electionPath+"/cand-", []byte(name), FlagEphemeral|FlagSequential)
	if err != nil {
		return nil, err
	}
	events, cancel, err := sess.Watch(electionPath)
	if err != nil {
		return nil, err
	}
	return &Election{sess: sess, path: electionPath, myNode: node, events: events, cancel: cancel}, nil
}

// IsLeader reports whether this candidate currently holds leadership.
func (e *Election) IsLeader() (bool, error) {
	kids, err := e.sess.Children(e.path)
	if err != nil {
		return false, err
	}
	if len(kids) == 0 {
		return false, nil
	}
	sort.Strings(kids)
	return e.path+"/"+kids[0] == e.myNode, nil
}

// Leader reports the name of the current leader.
func (e *Election) Leader() (string, error) {
	kids, err := e.sess.Children(e.path)
	if err != nil {
		return "", err
	}
	if len(kids) == 0 {
		return "", ErrNoNode
	}
	sort.Strings(kids)
	data, _, err := e.sess.Get(e.path + "/" + kids[0])
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Events exposes membership-change notifications; consumers re-check
// IsLeader when one arrives.
func (e *Election) Events() <-chan Event { return e.events }

// Resign withdraws the candidacy.
func (e *Election) Resign() {
	e.cancel()
	//hydralint:ignore error-discipline best-effort resign; session expiry removes the ephemeral node regardless
	_ = e.sess.Delete(e.myNode, -1)
}

// Node reports this candidate's election node path.
func (e *Election) Node() string { return e.myNode }

// CandidateName extracts the candidate tag from an election node path.
func CandidateName(sess *Session, nodePath string) string {
	data, _, err := sess.Get(nodePath)
	if err != nil {
		return ""
	}
	return string(data)
}

// IsElectionNode reports whether path is a candidate node under base.
func IsElectionNode(base, path string) bool {
	return strings.HasPrefix(path, base+"/cand-")
}
